// Quickstart: the paper's Figure-1 worked example, end to end, through the
// unified emm::Compiler API.
//
// Compiles the two-statement affine block from Figure 1 with the Section-3
// scratchpad data-management pipeline (scratchpadOnly mode), prints the
// structured analysis and the generated code, and proves semantic
// equivalence by executing both the original block and the generated code
// on real arrays.
//
//   ./examples/quickstart
#include <cstdio>

#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/blocks.h"

using namespace emm;

int main() {
  CompileResult r = Compiler(buildFigure1Block())
                        .scratchpadOnly()             // Section-3 flow only (no tiling)
                        .stageEverything(true)        // Cell-style: everything via scratchpad
                        .partition(PartitionMode::PerArrayUnion)  // one buffer per array
                        .backend("c")
                        .compile();
  if (!r.ok) {
    std::fprintf(stderr, "%s", renderDiagnostics(r.diagnostics).c_str());
    return 1;
  }

  std::printf("---- analysis ----\n");
  const DataPlan& plan = *r.dataPlan();
  for (size_t p = 0; p < plan.partitions.size(); ++p) {
    const PartitionPlan& part = plan.partitions[p];
    std::printf("array %s -> buffer %s, %zu references, move-in bound %lld elems, "
                "move-out bound %lld elems\n",
                r.block().arrays[part.arrayId].name.c_str(), part.bufferName.c_str(),
                part.refs.size(), plan.moveInVolumeBound(static_cast<int>(p), {}),
                plan.moveOutVolumeBound(static_cast<int>(p), {}));
  }

  std::printf("\n---- generated code ----\n%s", r.artifact.c_str());

  // Execute both versions and compare every array element.
  ArrayStore viaScratchpad(r.block().arrays), reference(r.block().arrays);
  viaScratchpad.fillAllPattern(7);
  reference.fillAllPattern(7);
  MemTrace trace = executeCodeUnit(*r.unit(), {}, viaScratchpad);
  executeReference(r.block(), {}, reference);

  std::printf("\n---- execution ----\n");
  std::printf("global reads %lld, global writes %lld, scratchpad accesses %lld\n",
              trace.globalReads, trace.globalWrites, trace.localReads + trace.localWrites);
  double diff = ArrayStore::maxAbsDiff(viaScratchpad, reference);
  std::printf("max |generated - reference| = %g  (%s)\n", diff, diff == 0 ? "OK" : "MISMATCH");
  return diff == 0 ? 0 : 1;
}
