// Quickstart: the paper's Figure-1 worked example, end to end.
//
// Builds the two-statement affine block from Figure 1, runs the Section-3
// scratchpad data-management framework on it, prints the generated code
// (buffer declarations, move-in loops, rewritten computation, move-out
// loops), and proves semantic equivalence by executing both the original
// block and the generated code on real arrays.
//
//   ./examples/quickstart
#include <cstdio>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "smem/data_manage.h"

using namespace emm;

int main() {
  ProgramBlock block = buildFigure1Block();

  SmemOptions options;
  options.onlyBeneficial = false;  // Cell-style: everything goes through the scratchpad
  options.partitionMode = PartitionMode::PerArrayUnion;  // one buffer per array, as in Fig. 1

  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, options, plan);

  std::printf("---- analysis ----\n");
  for (size_t p = 0; p < plan.partitions.size(); ++p) {
    const PartitionPlan& part = plan.partitions[p];
    std::printf("array %s -> buffer %s, %zu references, move-in bound %lld elems, "
                "move-out bound %lld elems\n",
                block.arrays[part.arrayId].name.c_str(), part.bufferName.c_str(),
                part.refs.size(), plan.moveInVolumeBound(static_cast<int>(p), {}),
                plan.moveOutVolumeBound(static_cast<int>(p), {}));
  }

  std::printf("\n---- generated code ----\n%s", emitC(unit).c_str());

  // Execute both versions and compare every array element.
  ArrayStore viaScratchpad(block.arrays), reference(block.arrays);
  viaScratchpad.fillAllPattern(7);
  reference.fillAllPattern(7);
  MemTrace trace = executeCodeUnit(unit, {}, viaScratchpad);
  executeReference(block, {}, reference);

  std::printf("\n---- execution ----\n");
  std::printf("global reads %lld, global writes %lld, scratchpad accesses %lld\n",
              trace.globalReads, trace.globalWrites, trace.localReads + trace.localWrites);
  double diff = ArrayStore::maxAbsDiff(viaScratchpad, reference);
  std::printf("max |generated - reference| = %g  (%s)\n", diff, diff == 0 ? "OK" : "MISMATCH");
  return diff == 0 ? 0 : 1;
}
