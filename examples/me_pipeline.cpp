// Motion-estimation pipeline: the full compiler stack on the paper's main
// kernel, at a size small enough to execute through the interpreter.
//
// Steps shown:
//   1. polyhedral block construction (Figure-2 loop nest),
//   2. one emm::Compiler invocation covering dependence analysis,
//      parallelism detection (space loops i, j), tile-size search under the
//      scratchpad limit (Section 4.3), and per-pass timings,
//   3. the mapped ME kernel (multi-level tiling + scratchpad management,
//      Figure 3) built over the same driver,
//   4. execution + verification against the plain reference,
//   5. simulated time on the 8800 GTX-like machine.
//
//   ./examples/me_pipeline [--size=NI,NJ,W]
#include <cstdio>

#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/me_pipeline.h"
#include "support/cli.h"

using namespace emm;

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  std::vector<i64> sizes = args.intList("size");
  if (!args.validate("usage: me_pipeline [--size=NI,NJ,W]\n")) return 2;
  const i64 ni = sizes.size() > 0 ? sizes[0] : 64;
  const i64 nj = sizes.size() > 1 ? sizes[1] : 32;
  const i64 w = sizes.size() > 2 ? sizes[2] : 8;

  // 1-2. Block + the full pipeline through the driver.
  CompileResult r = Compiler(buildMeBlock(ni, nj, w))
                        .parameters({ni, nj, w})
                        .memoryLimitBytes(2048 * 4)
                        .innerProcs(32)
                        .tileCandidates({{8, 16, 32}, {8, 16, 32}, {4, 8}, {4, 8}})
                        .skipPass("tiling")  // the mapped kernel below does the tiling
                        .skipPass("smem")
                        .skipPass("codegen")
                        .compile();
  if (!r.ok) {
    std::fprintf(stderr, "%s", renderDiagnostics(r.diagnostics).c_str());
    return 1;
  }
  std::printf("space loops:");
  for (int l : r.plan.spaceLoops) std::printf(" %d", l);
  std::printf("  (inter-block sync needed: %s)\n", r.plan.needsInterBlockSync ? "yes" : "no");
  std::printf("tile search: (%lld,%lld,%lld,%lld), cost %.0f, footprint %lld elems, "
              "%d evaluations\n",
              r.search.subTile[0], r.search.subTile[1], r.search.subTile[2],
              r.search.subTile[3], r.search.eval.cost, r.search.eval.footprint,
              r.search.evaluations);
  std::printf("pipeline timing:");
  for (const PassTiming& t : r.timings)
    if (t.ran) std::printf(" %s %.2fms", t.pass.c_str(), t.millis);
  std::printf("\n");

  // 3. The mapped ME kernel (block-tile layout per Section 6) over the same
  //    driver, with the searched sub-tile.
  MeConfig config;
  config.ni = ni;
  config.nj = nj;
  config.w = w;
  config.numBlocks = 8;
  config.numThreads = 64;
  config.subTile = r.search.subTile;
  MePipeline pipeline = buildMePipeline(config);
  std::printf("\nbuffers per block (%lld scratchpad elements):\n",
              pipeline.kernel.footprintPerBlock(pipeline.paramValues));
  for (const LocalBuffer& b : pipeline.kernel.unit.localBuffers)
    std::printf("  %s (%d-d)\n", b.name.c_str(), b.ndim);

  // 4. Execute + verify.
  ArrayStore store(pipeline.block.arrays);
  store.fillAllPattern(11);
  std::vector<double> cur = store.raw(0), ref = store.raw(1), out = store.raw(2);
  IntVec ext = pipeline.paramValues;
  ext.resize(pipeline.kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace trace = executeCodeUnit(pipeline.kernel.unit, ext, store);
  referenceMe(cur, ref, out, ni, nj, w);
  double worst = 0;
  for (i64 i = 0; i < ni; ++i)
    for (i64 j = 0; j < nj; ++j)
      worst = std::max(worst, std::abs(store.get(2, {i, j}) - out[i * nj + j]));
  std::printf("\nexecuted %lld statement instances; global traffic %lld elems; "
              "verification max diff %g (%s)\n",
              trace.stmtInstances, trace.globalReads + trace.globalWrites, worst,
              worst == 0 ? "OK" : "MISMATCH");

  // 5. Simulated performance at paper scale.
  MeConfig paperScale;
  paperScale.ni = 8192;
  paperScale.nj = 1024;
  paperScale.w = 16;
  paperScale.subTile = {32, 16, 16, 16};
  KernelModel km = modelMe(paperScale);
  Machine m = Machine::geforce8800gtx();
  SimResult sim = simulateLaunch(m, km.launch, km.perBlock);
  paperScale.useScratchpad = false;
  KernelModel kmNo = modelMe(paperScale);
  SimResult simNo = simulateLaunch(m, kmNo.launch, kmNo.perBlock);
  std::printf("simulated 8M-point frame: %.0f ms with scratchpad, %.0f ms without (%.1fx)\n",
              sim.milliseconds, simNo.milliseconds, simNo.milliseconds / sim.milliseconds);
  return worst == 0 ? 0 : 1;
}
