// Motion-estimation pipeline: the full compiler stack on the paper's main
// kernel, at a size small enough to execute through the interpreter.
//
// Steps shown:
//   1. polyhedral block construction (Figure-2 loop nest),
//   2. dependence analysis + parallelism detection (space loops i, j),
//   3. tile-size search under the scratchpad limit (Section 4.3),
//   4. multi-level tiling with automatic scratchpad management (Figure 3),
//   5. execution + verification against the plain reference,
//   6. simulated time on the 8800 GTX-like machine.
//
//   ./examples/me_pipeline
#include <cstdio>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/me_pipeline.h"
#include "tilesearch/tilesearch.h"

using namespace emm;

int main() {
  const i64 ni = 64, nj = 32, w = 8;

  // 1-2. Block + parallelism.
  ProgramBlock block = buildMeBlock(ni, nj, w);
  TransformResult tr = makeTilable(block);
  std::printf("space loops:");
  for (int l : tr.plan.spaceLoops) std::printf(" %d", l);
  std::printf("  (inter-block sync needed: %s)\n", tr.plan.needsInterBlockSync ? "yes" : "no");

  // 3. Tile-size search for the sequential (memory-level) tiles.
  SmemOptions smem;
  smem.sampleParams = {ni, nj, w};
  TileSearchOptions opts;
  opts.paramValues = {ni, nj, w};
  opts.memLimitElems = 2048;
  opts.innerProcs = 32;
  opts.candidates = {{8, 16, 32}, {8, 16, 32}, {4, 8}, {4, 8}};
  TileSearchResult search = searchTileSizes(tr.block, tr.plan, opts, smem);
  if (!search.eval.feasible) {
    std::printf("tile search found no feasible tile\n");
    return 1;
  }
  std::printf("tile search: (%lld,%lld,%lld,%lld), cost %.0f, footprint %lld elems, "
              "%d evaluations\n",
              search.subTile[0], search.subTile[1], search.subTile[2], search.subTile[3],
              search.eval.cost, search.eval.footprint, search.evaluations);

  // 4. Multi-level tiling + scratchpad codegen.
  MeConfig config;
  config.ni = ni;
  config.nj = nj;
  config.w = w;
  config.numBlocks = 8;
  config.numThreads = 64;
  config.subTile = search.subTile;
  MePipeline pipeline = buildMePipeline(config);
  std::printf("\nbuffers per block (%lld scratchpad elements):\n",
              pipeline.kernel.footprintPerBlock(pipeline.paramValues));
  for (const LocalBuffer& b : pipeline.kernel.unit.localBuffers)
    std::printf("  %s (%d-d)\n", b.name.c_str(), b.ndim);

  // 5. Execute + verify.
  ArrayStore store(pipeline.block.arrays);
  store.fillAllPattern(11);
  std::vector<double> cur = store.raw(0), ref = store.raw(1), out = store.raw(2);
  IntVec ext = pipeline.paramValues;
  ext.resize(pipeline.kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace trace = executeCodeUnit(pipeline.kernel.unit, ext, store);
  referenceMe(cur, ref, out, ni, nj, w);
  double worst = 0;
  for (i64 i = 0; i < ni; ++i)
    for (i64 j = 0; j < nj; ++j)
      worst = std::max(worst, std::abs(store.get(2, {i, j}) - out[i * nj + j]));
  std::printf("\nexecuted %lld statement instances; global traffic %lld elems; "
              "verification max diff %g (%s)\n",
              trace.stmtInstances, trace.globalReads + trace.globalWrites, worst,
              worst == 0 ? "OK" : "MISMATCH");

  // 6. Simulated performance at paper scale.
  MeConfig paperScale;
  paperScale.ni = 8192;
  paperScale.nj = 1024;
  paperScale.w = 16;
  paperScale.subTile = {32, 16, 16, 16};
  KernelModel km = modelMe(paperScale);
  Machine m = Machine::geforce8800gtx();
  SimResult sim = simulateLaunch(m, km.launch, km.perBlock);
  paperScale.useScratchpad = false;
  KernelModel kmNo = modelMe(paperScale);
  SimResult simNo = simulateLaunch(m, kmNo.launch, kmNo.perBlock);
  std::printf("simulated 8M-point frame: %.0f ms with scratchpad, %.0f ms without (%.1fx)\n",
              sim.milliseconds, simNo.milliseconds, simNo.milliseconds / sim.milliseconds);
  return worst == 0 ? 0 : 1;
}
