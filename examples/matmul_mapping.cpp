// Matrix-multiplication mapping: a workload beyond the paper's evaluation
// that exercises the same public API — useful as a template for mapping
// your own affine kernel.
//
// Shows: Algorithm-1 classification (all three references have rank 2 < 3,
// i.e. order-of-magnitude reuse), tile-size search, multi-level tiling,
// verified execution, and the Cell-style mode where *every* reference must
// be staged through the local store (onlyBeneficial = false).
//
//   ./examples/matmul_mapping
#include <cstdio>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "tilesearch/tilesearch.h"

using namespace emm;

int main() {
  const i64 n = 48, mdim = 32, k = 40;
  ProgramBlock block = buildMatmulBlock(n, mdim, k);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  std::printf("matmul space loops:");
  for (int l : plan.spaceLoops) std::printf(" %d", l);
  std::printf("\n");

  SmemOptions smem;
  smem.sampleParams = {n, mdim, k};

  // Tile-size search.
  TileSearchOptions opts;
  opts.paramValues = {n, mdim, k};
  opts.memLimitElems = 1536;
  opts.innerProcs = 32;
  opts.candidates = {{4, 8, 16}, {4, 8, 16}, {4, 8, 16, 40}};
  TileSearchResult search = searchTileSizes(block, plan, opts, smem);
  if (!search.eval.feasible) {
    std::printf("no feasible tile\n");
    return 1;
  }
  std::printf("chosen sub-tile (%lld,%lld,%lld), footprint %lld elems\n", search.subTile[0],
              search.subTile[1], search.subTile[2], search.eval.footprint);
  for (const auto& term : search.eval.terms)
    std::printf("  buffer %-6s copies %lld times, %lld elems in / %lld out, hoist level %d\n",
                term.name.c_str(), term.occurrences, term.volumeIn, term.volumeOut,
                term.hoistLevel);

  // Build the tiled kernel and verify.
  TileConfig tc;
  tc.subTile = search.subTile;
  tc.blockTile = {search.subTile[0] * 2, search.subTile[1]};
  tc.threadTile = {2, 2};
  TiledKernel kernel = buildTiledKernel(block, plan, tc, smem);

  ArrayStore store(block.arrays);
  store.fillAllPattern(19);
  std::vector<double> a = store.raw(0), b = store.raw(1), c = store.raw(2);
  IntVec ext = {n, mdim, k};
  ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace trace = executeCodeUnit(kernel.unit, ext, store);
  referenceMatmul(a, b, c, n, mdim, k);
  double worst = 0;
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < mdim; ++j)
      worst = std::max(worst, std::abs(store.get(2, {i, j}) - c[i * mdim + j]));
  std::printf("\ntiled execution: %lld instances, %lld global elems, %lld scratchpad elems; "
              "max diff %g (%s)\n",
              trace.stmtInstances, trace.globalReads + trace.globalWrites,
              trace.localReads + trace.localWrites, worst, worst == 0 ? "OK" : "MISMATCH");

  // Cell-style staging: on architectures where global memory cannot be
  // touched during compute, disable the benefit filter; the framework then
  // buffers everything (Section 3: "the framework optimally moves only data
  // that have sufficient reuse" applies to GPU-like targets only).
  SmemOptions cellMode = smem;
  cellMode.onlyBeneficial = false;
  CodeUnit cellUnit = buildScratchpadUnit(block, cellMode);
  ArrayStore cellStore(block.arrays);
  cellStore.fillAllPattern(19);
  MemTrace cellTrace = executeCodeUnit(cellUnit, {n, mdim, k}, cellStore);
  std::printf("cell-style whole-block staging: %lld global elems (all compute accesses hit "
              "the local store)\n",
              cellTrace.globalReads + cellTrace.globalWrites);
  return worst == 0 ? 0 : 1;
}
