// Matrix-multiplication mapping: a workload beyond the paper's evaluation
// that exercises the unified emm::Compiler API — useful as a template for
// mapping your own affine kernel.
//
// Shows: builder configuration, Algorithm-1 classification (all three
// references have rank 2 < 3, i.e. order-of-magnitude reuse), tile-size
// search, multi-level tiling, verified execution, and the Cell-style mode
// where *every* reference must be staged through the local store.
//
//   ./examples/matmul_mapping [--size=N,M,K]
#include <cstdio>

#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "support/cli.h"

using namespace emm;

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  std::vector<i64> sizes = args.intList("size");
  if (!args.validate("usage: matmul_mapping [--size=N,M,K]\n")) return 2;
  const i64 n = sizes.size() > 0 ? sizes[0] : 48;
  const i64 mdim = sizes.size() > 1 ? sizes[1] : 32;
  const i64 k = sizes.size() > 2 ? sizes[2] : 40;

  // Full pipeline: deps -> transform -> tilesearch -> tiling -> smem.
  Compiler compiler(buildMatmulBlock(n, mdim, k));
  compiler.parameters({n, mdim, k})
      .memoryLimitBytes(1536 * 4)
      .innerProcs(32)
      .tileCandidates({{4, 8, 16}, {4, 8, 16}, {4, 8, 16, 40}})
      .threadTileSizes({2, 2})  // block tiles default to 2x the sub-tile
      .skipPass("codegen");
  CompileResult r = compiler.compile();
  if (!r.ok) {
    std::fprintf(stderr, "%s", renderDiagnostics(r.diagnostics).c_str());
    return 1;
  }

  std::printf("matmul space loops:");
  for (int l : r.plan.spaceLoops) std::printf(" %d", l);
  std::printf("\n");
  std::printf("chosen sub-tile (%lld,%lld,%lld), footprint %lld elems\n", r.search.subTile[0],
              r.search.subTile[1], r.search.subTile[2], r.search.eval.footprint);
  for (const auto& term : r.search.eval.terms)
    std::printf("  buffer %-6s copies %lld times, %lld elems in / %lld out, hoist level %d\n",
                term.name.c_str(), term.occurrences, term.volumeIn, term.volumeOut,
                term.hoistLevel);

  // Execute the tiled kernel and verify against the plain reference.
  const TiledKernel& kernel = *r.kernel;
  ArrayStore store(r.block().arrays);
  store.fillAllPattern(19);
  std::vector<double> a = store.raw(0), b = store.raw(1), c = store.raw(2);
  IntVec ext = {n, mdim, k};
  ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace trace = executeCodeUnit(kernel.unit, ext, store);
  referenceMatmul(a, b, c, n, mdim, k);
  double worst = 0;
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < mdim; ++j)
      worst = std::max(worst, std::abs(store.get(2, {i, j}) - c[i * mdim + j]));
  std::printf("\ntiled execution: %lld instances, %lld global elems, %lld scratchpad elems; "
              "max diff %g (%s)\n",
              trace.stmtInstances, trace.globalReads + trace.globalWrites,
              trace.localReads + trace.localWrites, worst, worst == 0 ? "OK" : "MISMATCH");

  // Cell-style staging: on architectures where global memory cannot be
  // touched during compute, stage everything; the framework then buffers
  // every reference (Section 3: "the framework optimally moves only data
  // that have sufficient reuse" applies to GPU-like targets only).
  CompileResult cell = Compiler(buildMatmulBlock(n, mdim, k))
                           .parameters({n, mdim, k})
                           .scratchpadOnly()
                           .stageEverything(true)
                           .compile();
  if (!cell.ok) {
    std::fprintf(stderr, "%s", renderDiagnostics(cell.diagnostics).c_str());
    return 1;
  }
  ArrayStore cellStore(cell.block().arrays);
  cellStore.fillAllPattern(19);
  MemTrace cellTrace = executeCodeUnit(*cell.unit(), {n, mdim, k}, cellStore);
  std::printf("cell-style whole-block staging: %lld global elems (all compute accesses hit "
              "the local store)\n",
              cellTrace.globalReads + cellTrace.globalWrites);
  return worst == 0 ? 0 : 1;
}
