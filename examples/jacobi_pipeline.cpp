// Jacobi pipeline: the stencil path of the paper, driven through
// emm::Compiler — the transformation framework (shift + skew to make the
// band permutable) and the block-level scratchpad analysis the driver falls
// back to when the band is pipeline-parallel, then the concurrent-start
// mapped kernel of Section 6 and the block-count study of Figure 7 in
// miniature.
//
//   ./examples/jacobi_pipeline
#include <cstdio>
#include <string>

#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "kernels/jacobi_mapped.h"

using namespace emm;

int main() {
  const i64 n = 4096, t = 256;

  // 1. One driver invocation: the (t, i) band is not permutable as written;
  //    the transform pass shifts the copy statement and skews i by t, then
  //    reports pipeline parallelism and falls back to the Section-3
  //    analysis of the block (both arrays show rank 1 < dim 2 reuse).
  CompileResult r = Compiler(buildJacobiBlock(n, t)).parameters({n, t}).compile();
  if (!r.ok) {
    std::fprintf(stderr, "%s", renderDiagnostics(r.diagnostics).c_str());
    return 1;
  }
  std::printf("applied transformations:");
  for (const auto& [target, srcFactor] : r.appliedSkews)
    std::printf(" loop %d skewed by loop %d (factor %lld)", target, srcFactor.first,
                srcFactor.second);
  std::printf("\nband size %zu, inter-block sync: %s\n", r.plan.band.size(),
              r.plan.needsInterBlockSync ? "yes" : "no");

  // 2. Block-level scratchpad verdicts from the fallback analysis.
  for (const PartitionPlan& p : r.dataPlan()->partitions)
    std::printf("array %s: rank-based reuse %s -> %s\n",
                r.block().arrays[p.arrayId].name.c_str(), p.orderReuse ? "yes" : "no",
                p.beneficial ? "buffered" : "left in global memory");

  // 3. Concurrent-start mapped kernel (the [27]-style code the paper used):
  //    execute and verify against the reference.
  JacobiConfig config;
  config.n = n;
  config.timeSteps = t;
  config.timeTile = 32;
  config.spaceTile = 256;
  config.numBlocks = 16;
  config.numThreads = 64;
  std::vector<double> a(n), b(n), ar(n), br(n);
  for (i64 i = 0; i < n; ++i) a[i] = ar[i] = static_cast<double>((i * 31) % 97);
  JacobiCounters counters = runJacobiMapped(config, a, b);
  referenceJacobi(ar, br, n, t);
  double worst = 0;
  for (i64 i = 0; i < n; ++i) worst = std::max(worst, std::abs(a[i] - ar[i]));
  std::printf("\nmapped kernel: %lld global elems, %lld scratchpad elems, %lld global "
              "barriers; verification max diff %g (%s)\n",
              counters.globalElems, counters.smemElems, counters.interBlockSyncs, worst,
              worst < 1e-9 ? "OK" : "MISMATCH");

  // 4. Block-count study (Figure 7 in miniature).
  Machine m = Machine::geforce8800gtx();
  std::printf("\nblocks  simulated ms (N=32k, T=4096)\n");
  for (i64 blocks : {32, 64, 96, 128, 192, 250}) {
    JacobiConfig c;
    c.n = 32 << 10;
    c.timeSteps = 4096;
    c.timeTile = 32;
    c.spaceTile = std::max<i64>(1, (c.n - 2 + blocks - 1) / blocks);
    c.numBlocks = blocks;
    c.numThreads = 64;
    KernelModelJacobi km = jacobiMachineModel(c);
    SimResult r2 = simulateLaunch(m, km.launch, km.perBlock);
    std::printf("%6lld  %s\n", blocks, r2.feasible ? std::to_string(r2.milliseconds).c_str()
                                                   : r2.infeasibleReason.c_str());
  }
  return worst < 1e-9 ? 0 : 1;
}
