#!/usr/bin/env python3
"""Soft throughput diff for the service stress harness.

Compares the JSON lines of a fresh `bench_svc_stress --quick` run against
the checked-in baseline (bench/baselines/svc_stress.json, same JSON-lines
format with the leading "JSON " prefix stripped). Configs are matched on
(mode, shards, dist, threads) and their ops_per_sec compared.

This is a SOFT gate: CI machines differ wildly in speed and noise, so the
script always exits 0 — it prints `WARN` lines for configs that fall below
the warn ratio (default 0.5x baseline) and a summary table, and the CI step
records both as a workflow artifact. A hard regression shows up as a wall
of WARNs in the PR's logs, not a red build that flakes on a slow runner.

Usage: diff_stress_baseline.py BASELINE CURRENT [--warn-ratio=0.5]
CURRENT may be the raw bench output; lines not starting with "JSON {" or
"{" are ignored.
"""

import json
import sys


def load_lines(path):
    runs = {}
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line.startswith("JSON "):
                line = line[len("JSON "):]
            if not line.startswith("{"):
                continue
            rec = json.loads(line)
            key = (rec.get("mode"), rec.get("shards"), rec.get("dist"), rec.get("threads"))
            runs[key] = rec
    return runs


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 0
    warn_ratio = 0.5
    for arg in argv[3:]:
        if arg.startswith("--warn-ratio="):
            warn_ratio = float(arg.split("=", 1)[1])
    baseline = load_lines(argv[1])
    current = load_lines(argv[2])

    warns = 0
    print(f"{'config':<34} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key in sorted(baseline, key=str):
        name = "mode={} shards={} dist={} thr={}".format(*key)
        if key not in current:
            print(f"{name:<34} {'-':>12} {'MISSING':>12}")
            warns += 1
            print(f"WARN {name}: config missing from current run")
            continue
        base = baseline[key].get("ops_per_sec", 0)
        cur = current[key].get("ops_per_sec", 0)
        ratio = cur / base if base else float("inf")
        print(f"{name:<34} {base:>12.0f} {cur:>12.0f} {ratio:>6.2f}x")
        if base and ratio < warn_ratio:
            warns += 1
            print(f"WARN {name}: throughput {cur:.0f} < {warn_ratio}x baseline {base:.0f}")
    for key in sorted(set(current) - set(baseline), key=str):
        print("note: config {} not in baseline (new?)".format(key))
    print(f"{warns} warning(s); soft gate, exiting 0")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
