// emmfuzz: differential fuzzing driver for the compilation pipeline.
//
// Generates seeded random affine programs (src/testgen) and checks each one
// end to end against the interpreter oracle: transformed+tiled execution,
// the parametric/concrete tile-analysis toggle, plan serialization round
// trips, and (by default) compile-over-the-wire through an in-process
// ServiceServer on a private socket. Divergences are delta-minimized and
// dumped as .emmrepro files for replay.
//
//   emmfuzz --programs=500 --seed=7            # sweep; exit 1 on divergence
//   emmfuzz --programs=2000 --time-budget=300  # nightly budgeted run
//   emmfuzz --replay=finding.emmrepro          # re-check one reproducer
//   emmfuzz --plant-bug --programs=200         # self-test: must find+shrink
//
// The bind view (on by default) additionally compiles each parametric
// program against a private plan cache and binds the family's size-generic
// record at downscaled sizes, element-exact against the oracle.
//
// Same seed => byte-identical program stream and identical verdicts, on any
// host: the generator owns its PRNG and the pipeline is deterministic.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "service/server.h"
#include "support/cli.h"
#include "support/diagnostics.h"
#include "testgen/diff_runner.h"
#include "testgen/minimize.h"
#include "testgen/planted_bug.h"
#include "testgen/repro.h"

namespace fs = std::filesystem;
using namespace emm;
using namespace emm::testgen;

namespace {

constexpr const char* kUsage =
    "usage: emmfuzz [--programs=N] [--seed=S] [--time-budget=SECONDS]\n"
    "               [--out-dir=DIR] [--max-statements=N] [--no-wire]\n"
    "               [--no-parametric] [--no-serialize] [--no-bind] [--no-minimize]\n"
    "               [--wire=SOCKET] [--plant-bug] [--replay=FILE] [--quiet]\n";

/// Private in-process daemon for the wire check; socket removed on exit.
struct InProcessServer {
  std::string socketPath;
  svc::ServiceServer server;

  explicit InProcessServer(std::string path)
      : socketPath(std::move(path)), server({socketPath, /*jobs=*/2, "", 256, 1}) {
    ::unlink(socketPath.c_str());
    server.start();
  }
  ~InProcessServer() {
    server.stop();
    ::unlink(socketPath.c_str());
  }
};

int replay(const std::string& path, DiffOptions diff, bool quiet) {
  Repro repro = readReproFile(path);
  if (!quiet) {
    std::printf("replaying %s (recorded check: %s)\n%s", path.c_str(),
                repro.failedCheck.empty() ? "?" : repro.failedCheck.c_str(),
                describeProgram(repro.program).c_str());
    if (!repro.detail.empty()) std::printf("  recorded detail: %s\n", repro.detail.c_str());
  }
  DiffRunner runner(diff);
  const DiffResult result = runner.run(repro.program);
  if (result.ok) {
    std::printf("emmfuzz: replay PASSES now (%s)\n",
                result.fellBack ? "clean fallback" : "compiled and matched the oracle");
    return 0;
  }
  std::printf("emmfuzz: replay still diverges [%s] %s\n", result.failedCheck.c_str(),
              result.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  const i64 programs = args.integer("programs", 200);
  const u64 seed = static_cast<u64>(args.integer("seed", 1));
  const i64 timeBudget = args.integer("time-budget", 0);
  const std::string outDir = args.str("out-dir", ".");
  const i64 maxStatements = args.integer("max-statements", 3);
  const bool noWire = args.flag("no-wire");
  const bool noParametric = args.flag("no-parametric");
  const bool noSerialize = args.flag("no-serialize");
  const bool noBind = args.flag("no-bind");
  const bool noMinimize = args.flag("no-minimize");
  const std::string wireSocket = args.str("wire", "");
  const bool plantBug = args.flag("plant-bug");
  const std::string replayFile = args.str("replay", "");
  const bool quiet = args.flag("quiet");
  if (!args.validate(kUsage)) return 2;

  try {
    SweepOptions sweep;
    sweep.gen.seed = seed;
    sweep.gen.maxStatements = static_cast<int>(maxStatements);
    sweep.programs = static_cast<u64>(programs);
    sweep.timeBudgetSeconds = static_cast<double>(timeBudget);
    sweep.minimize = !noMinimize;
    sweep.diff.checkParametric = !noParametric;
    sweep.diff.checkSerialize = !noSerialize;
    sweep.diff.checkBind = !noBind;
    if (plantBug) {
      // Self-test mode: the planted tiler bug exists only in the local
      // pipeline, so the wire view (a clean server) stays out of the loop.
      sweep.diff.configureCompiler = plantTilerBug;
      sweep.diff.checkWire = false;
    }

    // Wire view: an external daemon when --wire=SOCK is given, otherwise a
    // private in-process server (unless --no-wire).
    std::unique_ptr<InProcessServer> server;
    if (!plantBug && !wireSocket.empty()) {
      sweep.diff.checkWire = true;
      sweep.diff.wireSocket = wireSocket;
    } else if (!plantBug && !noWire) {
      const std::string path =
          (fs::temp_directory_path() / ("emmfuzz_" + std::to_string(::getpid()) + ".sock"))
              .string();
      server = std::make_unique<InProcessServer>(path);
      sweep.diff.checkWire = true;
      sweep.diff.wireSocket = path;
    }

    if (!replayFile.empty()) return replay(replayFile, sweep.diff, quiet);

    fs::create_directories(outDir);
    i64 findings = 0;
    sweep.onFinding = [&](const SweepFinding& finding) {
      ++findings;
      const std::string file =
          (fs::path(outDir) / ("finding_s" + std::to_string(finding.program.seed) + "_p" +
                               std::to_string(finding.program.index) + ".emmrepro"))
              .string();
      writeReproFile(file, {finding.minimized, finding.result.failedCheck, finding.result.detail});
      std::printf("emmfuzz: DIVERGENCE [%s] %s\n", finding.result.failedCheck.c_str(),
                  finding.result.detail.c_str());
      std::printf("  reproducer written to %s (%zu -> %zu statements)\n", file.c_str(),
                  finding.program.block.statements.size(),
                  finding.minimized.block.statements.size());
      if (!quiet) std::fputs(describeProgram(finding.minimized).c_str(), stdout);
    };

    const SweepStats stats = runDifferentialSweep(sweep);
    std::printf("emmfuzz: seed=%llu programs=%lld compiled=%lld fallbacks=%lld "
                "divergences=%lld bound_sizes=%lld\n",
                static_cast<unsigned long long>(seed), stats.programs, stats.compiled,
                stats.fallbacks, stats.divergences, stats.boundSizes);
    return stats.divergences == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emmfuzz: fatal: %s\n", e.what());
    return 2;
  }
}
