// emmapc — command-line driver for the emmap toolchain.
//
// Runs the full pipeline (parallelism detection, tile-size search,
// multi-level tiling, scratchpad planning) on one of the built-in kernels
// and prints the requested artifact.
//
// Usage:
//   emmapc --kernel=me|jacobi|jacobi2d|matmul|figure1
//          [--size=N[,M[,K]]]          problem sizes (defaults per kernel)
//          [--tile=t0,t1,...]          sub-tile sizes (default: search)
//          [--mem=BYTES]               scratchpad limit (default 16384)
//          [--emit=c|cuda|plan|stats]  artifact to print (default plan)
//          [--no-hoist]                disable Section-4.2 hoisting
//          [--machine=gpu|cell]        simulated target (default gpu)
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/emit_cuda.h"
#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "tilesearch/tilesearch.h"

using namespace emm;

namespace {

struct Args {
  std::string kernel = "me";
  std::vector<i64> size;
  std::vector<i64> tile;
  i64 memBytes = 16 * 1024;
  std::string emit = "plan";
  bool hoist = true;
  std::string machine = "gpu";
};

std::vector<i64> parseList(const std::string& s) {
  std::vector<i64> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  return out;
}

bool parseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return a.substr(std::strlen(prefix));
    };
    if (a.rfind("--kernel=", 0) == 0)
      args.kernel = value("--kernel=");
    else if (a.rfind("--size=", 0) == 0)
      args.size = parseList(value("--size="));
    else if (a.rfind("--tile=", 0) == 0)
      args.tile = parseList(value("--tile="));
    else if (a.rfind("--mem=", 0) == 0)
      args.memBytes = std::stoll(value("--mem="));
    else if (a.rfind("--emit=", 0) == 0)
      args.emit = value("--emit=");
    else if (a == "--no-hoist")
      args.hoist = false;
    else if (a.rfind("--machine=", 0) == 0)
      args.machine = value("--machine=");
    else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

ProgramBlock makeKernel(const Args& args, IntVec& params) {
  if (args.kernel == "me") {
    i64 ni = args.size.size() > 0 ? args.size[0] : 256;
    i64 nj = args.size.size() > 1 ? args.size[1] : 128;
    i64 w = args.size.size() > 2 ? args.size[2] : 16;
    params = {ni, nj, w};
    return buildMeBlock(ni, nj, w);
  }
  if (args.kernel == "jacobi") {
    i64 n = args.size.size() > 0 ? args.size[0] : 4096;
    i64 t = args.size.size() > 1 ? args.size[1] : 64;
    params = {n, t};
    return buildJacobiBlock(n, t);
  }
  if (args.kernel == "jacobi2d") {
    i64 n = args.size.size() > 0 ? args.size[0] : 128;
    i64 m = args.size.size() > 1 ? args.size[1] : 128;
    i64 t = args.size.size() > 2 ? args.size[2] : 16;
    params = {n, m, t};
    return buildJacobi2dBlock(n, m, t);
  }
  if (args.kernel == "matmul") {
    i64 n = args.size.size() > 0 ? args.size[0] : 128;
    i64 m = args.size.size() > 1 ? args.size[1] : 128;
    i64 k = args.size.size() > 2 ? args.size[2] : 128;
    params = {n, m, k};
    return buildMatmulBlock(n, m, k);
  }
  if (args.kernel == "figure1") {
    params = {};
    return buildFigure1Block();
  }
  throw ApiError("unknown kernel '" + args.kernel + "'");
}

int run(const Args& args) {
  IntVec params;
  ProgramBlock block = makeKernel(args, params);
  SmemOptions smem;
  smem.sampleParams = params;
  smem.onlyBeneficial = args.machine != "cell";  // Cell must stage everything

  // Figure-1-style blocks (no parallel mapping): block-level scratchpad only.
  if (args.kernel == "figure1") {
    smem.onlyBeneficial = false;
    smem.partitionMode = PartitionMode::PerArrayUnion;
    CodeUnit unit = buildScratchpadUnit(block, smem);
    if (args.emit == "cuda") {
      CudaEmitOptions co;
      co.kernelName = args.kernel;
      std::fputs(emitCuda(unit, co).c_str(), stdout);
    } else {
      std::fputs(emitC(unit).c_str(), stdout);
    }
    return 0;
  }

  TransformResult tr = makeTilable(block);
  std::printf("// kernel %s, space loops:", args.kernel.c_str());
  for (int l : tr.plan.spaceLoops) std::printf(" %d", l);
  std::printf(", inter-block sync: %s\n", tr.plan.needsInterBlockSync ? "yes" : "no");

  if (tr.plan.needsInterBlockSync) {
    // Stencil-style kernels: after skewing, band loops are no longer
    // rectangular, so (as in the paper, which used the concurrent-start
    // framework of [27] for Jacobi) the generic Figure-3 tiler does not
    // apply. Report the Section-3 analysis of the block instead.
    std::printf("// pipeline-parallel band: use the concurrent-start mapped kernels in\n"
                "// src/kernels (jacobi_mapped, jacobi2d_mapped); showing the Section-3\n"
                "// scratchpad analysis of the block:\n");
    SmemOptions so = smem;
    so.onlyBeneficial = false;
    DataPlan plan = analyzeBlock(block, so);
    for (const PartitionPlan& part : plan.partitions)
      std::printf("array %-6s : %s  [%s]\n", block.arrays[part.arrayId].name.c_str(),
                  part.hasBuffer ? part.bufferName.c_str() : "(global)",
                  part.orderReuse ? "order-of-magnitude reuse" : "constant reuse");
    return 0;
  }

  TileSearchOptions topts;
  topts.paramValues = params;
  topts.memLimitElems = args.memBytes / 4;
  topts.innerProcs = args.machine == "cell" ? 4 : 32;
  topts.hoistCopies = args.hoist;
  std::vector<i64> tile = args.tile;
  if (tile.empty()) {
    TileSearchResult sr = searchTileSizes(tr.block, tr.plan, topts, smem);
    if (!sr.eval.feasible) {
      std::fprintf(stderr, "tile search found no feasible tile: %s\n", sr.eval.reason.c_str());
      return 1;
    }
    tile = sr.subTile;
    std::printf("// searched tile:");
    for (i64 t : tile) std::printf(" %lld", t);
    std::printf("  (cost %.4g, footprint %lld elems, %d evaluations)\n", sr.eval.cost,
                sr.eval.footprint, sr.evaluations);
  }

  TileConfig tc;
  tc.subTile = tile;
  for (size_t s = 0; s < tr.plan.spaceLoops.size(); ++s) {
    tc.blockTile.push_back(tile[tr.plan.spaceLoops[s]] * 2);
    tc.threadTile.push_back(1);
  }
  tc.hoistCopies = args.hoist;
  TiledKernel kernel = buildTiledKernel(tr.block, tr.plan, tc, smem);

  if (args.emit == "c") {
    std::fputs(emitC(kernel.unit).c_str(), stdout);
  } else if (args.emit == "cuda") {
    CudaEmitOptions co;
    co.paramValues = params;
    co.numBoundParams = static_cast<int>(params.size());
    co.kernelName = args.kernel + "_kernel";
    std::fputs(emitCuda(kernel.unit, co).c_str(), stdout);
  } else if (args.emit == "stats") {
    ArrayStore store(block.arrays);
    store.fillAllPattern(1);
    IntVec ext = params;
    ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
    MemTrace t = executeCodeUnit(kernel.unit, ext, store);
    std::printf("statement instances : %lld\n", t.stmtInstances);
    std::printf("global reads/writes : %lld / %lld\n", t.globalReads, t.globalWrites);
    std::printf("local reads/writes  : %lld / %lld\n", t.localReads, t.localWrites);
    std::printf("copies / syncs      : %lld / %lld\n", t.copyElements, t.syncs);
    std::printf("footprint per block : %lld elems\n", kernel.footprintPerBlock(params));
  } else {  // plan
    for (size_t p = 0; p < kernel.analysis.plan.partitions.size(); ++p) {
      const PartitionPlan& part = kernel.analysis.plan.partitions[p];
      std::printf("array %-6s : %s", block.arrays[part.arrayId].name.c_str(),
                  part.hasBuffer ? part.bufferName.c_str() : "(global)");
      if (part.hasBuffer) {
        std::printf("  offset (");
        for (size_t d = 0; d < part.offset.size(); ++d)
          std::printf("%s%s", d ? ", " : "", part.offset[d].str().c_str());
        std::printf(")  size (");
        std::vector<std::pair<std::string, i64>> env;
        IntVec ext = params;
        ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
        for (size_t j = 0; j < kernel.analysis.tileBlock->paramNames.size(); ++j)
          env.emplace_back(kernel.analysis.tileBlock->paramNames[j], ext[j]);
        for (size_t d = 0; d < part.sizeExpr.size(); ++d)
          std::printf("%s%lld", d ? " x " : "", part.sizeExpr[d].eval(env));
        std::printf(")  hoist level %d", kernel.analysis.hoistLevel[p]);
      }
      std::printf("  [%s]\n", part.orderReuse          ? "order-of-magnitude reuse"
                              : part.beneficial        ? "constant reuse"
                                                       : "no beneficial reuse");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, args)) return 2;
  try {
    return run(args);
  } catch (const ApiError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
