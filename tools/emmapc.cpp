// emmapc — command-line driver for the emmap toolchain.
//
// A thin shell over emm::Compiler: builds one of the built-in kernels,
// compiles it through the unified pipeline, and prints the requested
// artifact.
//
// Usage:
//   emmapc --kernel=me|jacobi|jacobi2d|matmul|figure1
//          [--size=N[,M[,K]]]          problem sizes (defaults per kernel)
//          [--tile=t0,t1,...]          sub-tile sizes (default: search)
//          [--mem=BYTES]               scratchpad limit (default 16384)
//          [--emit=c|cuda|plan|stats]  artifact to print (default plan)
//          [--no-hoist]                disable Section-4.2 hoisting
//          [--machine=gpu|cell]        simulated target (default gpu)
//          [--verbose]                 print all pipeline diagnostics
#include <cstdio>
#include <string>

#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "support/cli.h"

using namespace emm;

namespace {

constexpr const char* kUsage =
    "usage: emmapc --kernel=me|jacobi|jacobi2d|matmul|figure1 [--size=N,M,..]\n"
    "              [--tile=t0,t1,..] [--mem=BYTES] [--emit=c|cuda|plan|stats]\n"
    "              [--no-hoist] [--machine=gpu|cell] [--verbose]\n";

void printPartitions(const ProgramBlock& block, const DataPlan& plan) {
  for (const PartitionPlan& part : plan.partitions)
    std::printf("array %-6s : %s  [%s]\n", block.arrays[part.arrayId].name.c_str(),
                part.hasBuffer ? part.bufferName.c_str() : "(global)",
                part.orderReuse ? "order-of-magnitude reuse" : "constant reuse");
}

void printTiledPlan(const CompileResult& r, const IntVec& params) {
  const TiledKernel& kernel = *r.kernel;
  const ProgramBlock& block = *r.input;
  for (size_t p = 0; p < kernel.analysis.plan.partitions.size(); ++p) {
    const PartitionPlan& part = kernel.analysis.plan.partitions[p];
    std::printf("array %-6s : %s", block.arrays[part.arrayId].name.c_str(),
                part.hasBuffer ? part.bufferName.c_str() : "(global)");
    if (part.hasBuffer) {
      std::printf("  offset (");
      for (size_t d = 0; d < part.offset.size(); ++d)
        std::printf("%s%s", d ? ", " : "", part.offset[d].str().c_str());
      std::printf(")  size (");
      std::vector<std::pair<std::string, i64>> env;
      IntVec ext = params;
      ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
      for (size_t j = 0; j < kernel.analysis.tileBlock->paramNames.size(); ++j)
        env.emplace_back(kernel.analysis.tileBlock->paramNames[j], ext[j]);
      for (size_t d = 0; d < part.sizeExpr.size(); ++d)
        std::printf("%s%lld", d ? " x " : "", part.sizeExpr[d].eval(env));
      std::printf(")  hoist level %d", kernel.analysis.hoistLevel[p]);
    }
    std::printf("  [%s]\n", part.orderReuse          ? "order-of-magnitude reuse"
                            : part.beneficial        ? "constant reuse"
                                                     : "no beneficial reuse");
  }
}

void printStats(const CompileResult& r, const IntVec& params) {
  ArrayStore store(r.input->arrays);
  store.fillAllPattern(1);
  IntVec ext = params;
  ext.resize(r.kernel->analysis.tileBlock->paramNames.size(), 0);
  MemTrace t = executeCodeUnit(*r.unit(), ext, store);
  std::printf("statement instances : %lld\n", t.stmtInstances);
  std::printf("global reads/writes : %lld / %lld\n", t.globalReads, t.globalWrites);
  std::printf("local reads/writes  : %lld / %lld\n", t.localReads, t.localWrites);
  std::printf("copies / syncs      : %lld / %lld\n", t.copyElements, t.syncs);
  std::printf("footprint per block : %lld elems\n", r.kernel->footprintPerBlock(params));
  std::printf("pipeline timing     :");
  for (const PassTiming& pt : r.timings)
    if (pt.ran) std::printf(" %s %.2fms", pt.pass.c_str(), pt.millis);
  std::printf("\n");
}

int run(cli::Args& args) {
  const std::string kernelArg = args.str("kernel", "me");
  const std::string emit = args.str("emit", "plan");
  const std::string machine = args.str("machine", "gpu");
  const bool hoist = !args.flag("no-hoist");
  const bool verbose = args.flag("verbose");
  if (emit != "c" && emit != "cuda" && emit != "plan" && emit != "stats") {
    std::fprintf(stderr, "unknown --emit mode '%s'\n%s", emit.c_str(), kUsage);
    return 2;
  }
  const std::vector<i64> tile = args.intList("tile");
  IntVec params;
  ProgramBlock block = buildKernelByName(kernelArg, args.intList("size"), params);

  Compiler compiler(std::move(block));
  compiler.parameters(params)
      .memoryLimitBytes(args.integer("mem", 16 * 1024))
      .innerProcs(machine == "cell" ? 4 : 32)
      .stageEverything(machine == "cell")  // Cell must stage everything
      .hoistCopies(hoist)
      .tileSizes(tile)
      .backend(emit == "cuda" ? "cuda" : "c")
      .kernelName(kernelArg == "figure1" ? kernelArg : kernelArg + "_kernel");
  if (kernelArg == "figure1") {
    // Figure-1-style block (no parallel mapping): block-level scratchpad only.
    compiler.scratchpadOnly().stageEverything(true).partition(PartitionMode::PerArrayUnion);
  }
  if (emit == "plan" || emit == "stats") compiler.skipPass("codegen");
  if (!args.validate(kUsage)) return 2;

  CompileResult r = compiler.compile();
  // Warnings and errors always reach the user (e.g. an explicit --tile that
  // violates --mem); notes only under --verbose.
  for (const Diagnostic& d : r.diagnostics)
    if (verbose || d.severity != Severity::Note)
      std::fprintf(stderr, "%s\n", d.str().c_str());
  if (!r.ok) return 1;

  if (r.havePlan) {
    std::printf("// kernel %s, space loops:", kernelArg.c_str());
    for (int l : r.plan.spaceLoops) std::printf(" %d", l);
    std::printf(", inter-block sync: %s\n", r.plan.needsInterBlockSync ? "yes" : "no");
  }

  if (r.havePlan && r.plan.needsInterBlockSync) {
    // Stencil-style kernels: the band is pipeline-parallel, so (as in the
    // paper, which used the concurrent-start framework of [27] for Jacobi)
    // the generic Figure-3 tiler does not apply. Report the Section-3
    // analysis the driver fell back to.
    std::printf("// pipeline-parallel band: use the concurrent-start mapped kernels in\n"
                "// src/kernels (jacobi_mapped, jacobi2d_mapped); showing the Section-3\n"
                "// scratchpad analysis of the block:\n");
    printPartitions(r.block(), *r.blockPlan);
    return 0;
  }

  if (r.kernel && tile.empty()) {
    std::printf("// searched tile:");
    for (i64 t : r.search.subTile) std::printf(" %lld", t);
    std::printf("  (cost %.4g, footprint %lld elems, %d evaluations)\n", r.search.eval.cost,
                r.search.eval.footprint, r.search.evaluations);
  }

  if (emit == "c" || emit == "cuda") {
    std::fputs(r.artifact.c_str(), stdout);
  } else if (emit == "stats") {
    if (!r.kernel) {
      std::fprintf(stderr, "--emit=stats needs the tiled pipeline path\n");
      return 1;
    }
    printStats(r, params);
  } else if (emit == "plan") {
    if (r.kernel)
      printTiledPlan(r, params);
    else if (r.dataPlan() != nullptr)
      printPartitions(r.block(), *r.dataPlan());
  } else {
    std::fprintf(stderr, "unknown --emit mode '%s'\n%s", emit.c_str(), kUsage);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  try {
    return run(args);
  } catch (const ApiError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
