// emmapc — command-line driver for the emmap toolchain.
//
// A thin shell over emm::Compiler: builds one or more of the built-in
// kernels, compiles them through the unified pipeline (batched over a
// thread pool when several are given), and prints the requested artifact.
//
// Usage:
//   emmapc --kernel=me|jacobi|jacobi2d|matmul|figure1[,more...]
//          [--size=N[,M[,K]]]          problem sizes (defaults per kernel);
//                                      entries may be named: --size=Ni=1024,W=16
//          [--warm="kernel:sizes[;..]"] precompile a kernel x size matrix into
//                                      --cache-dir (family plan built once)
//          [--tile=t0,t1,...]          sub-tile sizes (default: search)
//          [--mem=BYTES]               scratchpad limit (default 16384)
//          [--emit=c|cuda|cell|plan|stats]  artifact to print (default plan)
//          [--no-hoist]                disable Section-4.2 hoisting
//          [--machine=gpu|cell]        simulated target (default gpu)
//          [--jobs=N]                  pool workers for multi-kernel batches
//          [--cache=on|off]            process-wide plan cache (default off)
//          [--cache-dir=PATH]          persistent on-disk plan cache
//          [--verbose]                 print all pipeline diagnostics
//          [--help]                    full flag reference
//
// With a comma-separated --kernel list, the blocks are compiled as one
// batch over --jobs workers and one summary line is printed per kernel
// (--emit=stats adds per-kernel search/timing lines; artifacts and
// interpreter counters are printed for single-kernel runs only). Repeating
// a kernel with --cache=on --jobs=1 demonstrates a warm plan-cache hit in
// a single process; running twice with the same --cache-dir demonstrates a
// disk hit across processes (the second run skips the pipeline entirely
// and replays the stored plan).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "driver/backend.h"
#include "driver/compiler.h"
#include "driver/disk_cache.h"
#include "driver/plan_cache.h"
#include "gpusim/bank_conflicts.h"
#include "ir/interp.h"
#include "smem/buffer_layout.h"
#include "kernels/blocks.h"
#include "service/client.h"
#include "support/cli.h"

using namespace emm;

namespace {

constexpr const char* kUsage =
    "usage: emmapc --kernel=me|jacobi|jacobi2d|matmul|figure1[,more...] [--size=N,K=V,..]\n"
    "              [--tile=t0,t1,..] [--mem=BYTES] [--emit=c|cuda|cell|plan|stats]\n"
    "              [--no-hoist] [--machine=gpu|cell] [--jobs=N] [--cache=on|off]\n"
    "              [--cache-dir=PATH] [--warm=\"kernel:sizes[;...]\"] [--connect=SOCK]\n"
    "              [--verbose] [--help]\n";

constexpr const char* kHelp =
    "emmapc — command-line driver for the emmap toolchain.\n"
    "\n"
    "  --kernel=NAME[,NAME...]  built-in kernel(s) to compile (default me):\n"
    "                           me, jacobi, jacobi2d, matmul, figure1. A comma-\n"
    "                           separated list compiles as one batch over --jobs\n"
    "                           workers, one summary line per kernel.\n"
    "  --size=N[,M[,K]]         problem sizes; per-kernel defaults fill the rest.\n"
    "                           Entries may bind parameters by name (the block's\n"
    "                           parameter names): --size=Ni=1024,W=16 — positional\n"
    "                           and named entries mix freely\n"
    "  --warm=SPEC              precompile a kernel x size matrix into --cache-dir\n"
    "                           (required). SPEC = kernel:sizes[,sizes...][;kernel:...],\n"
    "                           each sizes = XxYxZ (e.g. me:256x128x16,512x128x16).\n"
    "                           The kernel-family plan is built once per kernel and\n"
    "                           every further size is a cheap family instantiation;\n"
    "                           per-size .emmplan and per-family .emmfam records\n"
    "                           land in the cache directory\n"
    "  --tile=t0,t1,...         explicit sub-tile sizes (default: the Section-4.3\n"
    "                           tile-size search under the --mem budget)\n"
    "  --mem=BYTES              scratchpad capacity in bytes (default 16384)\n"
    "  --emit=MODE              artifact to print (default plan):\n"
    "                           c | cuda | cell  rendered source for that backend\n"
    "                           plan             scratchpad plan summary\n"
    "                           stats            interpreter counters + timings\n"
    "  --no-hoist               disable Section-4.2 copy hoisting\n"
    "  --machine=gpu|cell       simulated target (default gpu); cell stages every\n"
    "                           reference through the local store\n"
    "  --jobs=N                 thread-pool workers for multi-kernel batches\n"
    "  --cache=on|off           process-wide in-memory plan cache (default off);\n"
    "                           hit/miss counters shown under --emit=stats\n"
    "  --cache-dir=PATH         persistent on-disk plan cache (created if absent):\n"
    "                           memory hit -> disk hit -> family hit -> cold\n"
    "                           compile; a second run with the same flags replays\n"
    "                           the stored plan without running the pipeline, and\n"
    "                           a run at a NEW size of a known kernel reuses the\n"
    "                           family plan (.emmfam) instead of re-analyzing.\n"
    "                           Disk counters are shown under --emit=stats.\n"
    "                           Format: docs/PLAN_FORMAT.md\n"
    "  --connect=SOCK           compile through a running emmapcd daemon on the\n"
    "                           given unix-domain socket instead of locally. The\n"
    "                           daemon's shared plan store acts as a third,\n"
    "                           networked cache tier: a fresh process whose kernel\n"
    "                           family the daemon has seen is served by the cheap\n"
    "                           bind-and-emit path. Each summary line carries the\n"
    "                           SERVER-side tier attribution (memory/disk/family/\n"
    "                           cold) plus server and round-trip times;\n"
    "                           --emit=stats adds the daemon's cache counters.\n"
    "                           Local --cache/--cache-dir tiers are not consulted;\n"
    "                           --warm and --connect are mutually exclusive\n"
    "  --verbose                print every pipeline diagnostic (notes included)\n"
    "  --help                   this text\n";

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t at = s.find(sep, start);
    if (at == std::string::npos) at = s.size();
    if (at > start) out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
  return out;
}

std::vector<std::string> splitList(const std::string& s) { return splitOn(s, ','); }

i64 parseSizeValue(const std::string& text) {
  try {
    size_t used = 0;
    i64 v = std::stoll(text, &used);
    EMM_REQUIRE(used == text.size() && v > 0, "bad size value '" + text + "'");
    return v;
  } catch (const std::logic_error&) {
    throw ApiError("bad size value '" + text + "'");
  }
}

/// Resolves --size entries for one kernel: positional values fill parameter
/// slots in order, NAME=V entries bind by the block's parameter names
/// (e.g. Ni=1024 for me), and per-kernel defaults fill the rest. Surplus
/// positional entries are ignored (historical behavior); unknown names are
/// an error.
std::vector<i64> resolveSizes(const std::string& kernel,
                              const std::vector<std::string>& entries) {
  // Parameter names and defaults are size-independent per kernel; build
  // each kernel's shape block once per process instead of once per
  // resolution (a --warm sweep resolves many sizes of the same kernel).
  struct KernelShape {
    std::vector<std::string> paramNames;
    IntVec defaults;
  };
  static std::map<std::string, KernelShape> shapes;
  auto it = shapes.find(kernel);
  if (it == shapes.end()) {
    KernelShape shape;
    shape.paramNames = buildKernelByName(kernel, {}, shape.defaults).paramNames;
    it = shapes.emplace(kernel, std::move(shape)).first;
  }
  const KernelShape& shape = it->second;
  std::vector<i64> sizes(shape.defaults.begin(), shape.defaults.end());
  size_t positional = 0;
  for (const std::string& entry : entries) {
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      if (positional < sizes.size()) sizes[positional] = parseSizeValue(entry);
      ++positional;
      continue;
    }
    const std::string name = entry.substr(0, eq);
    size_t idx = 0;
    while (idx < shape.paramNames.size() && shape.paramNames[idx] != name) ++idx;
    if (idx == shape.paramNames.size()) {
      std::string known;
      for (const std::string& n : shape.paramNames) known += (known.empty() ? "" : ", ") + n;
      throw ApiError("kernel '" + kernel + "' has no size parameter '" + name +
                     "' (parameters: " + (known.empty() ? "none" : known) + ")");
    }
    sizes[idx] = parseSizeValue(entry.substr(eq + 1));
  }
  return sizes;
}

void printPartitions(const ProgramBlock& block, const DataPlan& plan) {
  for (const PartitionPlan& part : plan.partitions)
    std::printf("array %-6s : %s  [%s]\n", block.arrays[part.arrayId].name.c_str(),
                part.hasBuffer ? part.bufferName.c_str() : "(global)",
                part.orderReuse ? "order-of-magnitude reuse" : "constant reuse");
}

void printTiledPlan(const CompileResult& r, const IntVec& params) {
  const TiledKernel& kernel = *r.kernel;
  const ProgramBlock& block = *r.input;
  for (size_t p = 0; p < kernel.analysis.plan.partitions.size(); ++p) {
    const PartitionPlan& part = kernel.analysis.plan.partitions[p];
    std::printf("array %-6s : %s", block.arrays[part.arrayId].name.c_str(),
                part.hasBuffer ? part.bufferName.c_str() : "(global)");
    if (part.hasBuffer) {
      std::printf("  offset (");
      for (size_t d = 0; d < part.offset.size(); ++d)
        std::printf("%s%s", d ? ", " : "", part.offset[d].str().c_str());
      std::printf(")  size (");
      std::vector<std::pair<std::string, i64>> env;
      IntVec ext = params;
      ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
      for (size_t j = 0; j < kernel.analysis.tileBlock->paramNames.size(); ++j)
        env.emplace_back(kernel.analysis.tileBlock->paramNames[j], ext[j]);
      for (size_t d = 0; d < part.sizeExpr.size(); ++d)
        std::printf("%s%lld", d ? " x " : "", part.sizeExpr[d].eval(env));
      std::printf(")  hoist level %d", kernel.analysis.hoistLevel[p]);
    }
    std::printf("  [%s]\n", part.orderReuse          ? "order-of-magnitude reuse"
                            : part.beneficial        ? "constant reuse"
                                                     : "no beneficial reuse");
  }
}

void printStats(const CompileResult& r, const IntVec& params) {
  ArrayStore store(r.input->arrays);
  store.fillAllPattern(1);
  IntVec ext = params;
  ext.resize(r.kernel->analysis.tileBlock->paramNames.size(), 0);
  MemTrace t = executeCodeUnit(*r.unit(), ext, store);
  std::printf("statement instances : %lld\n", t.stmtInstances);
  std::printf("global reads/writes : %lld / %lld\n", t.globalReads, t.globalWrites);
  std::printf("local reads/writes  : %lld / %lld\n", t.localReads, t.localWrites);
  std::printf("copies / syncs      : %lld / %lld\n", t.copyElements, t.syncs);
  std::printf("footprint per block : %lld elems\n", r.kernel->footprintPerBlock(params));
  if (r.bufferLayout.has_value()) {
    const BufferLayout& lo = *r.bufferLayout;
    i64 rawBytes = 0;
    for (const BufferLayoutEntry& e : lo.buffers) {
      i64 elems = e.extent.empty() ? 0 : 1;
      for (const SymPtr& s : e.extent) elems = mulChecked(elems, std::max<i64>(0, s->eval(ext)));
      rawBytes = addChecked(rawBytes, elems);
    }
    rawBytes = mulChecked(rawBytes, lo.elementBytes);
    BankConflictOptions bc;
    bc.banks = static_cast<int>(lo.bank.banks);
    bc.bankWidthBytes = lo.bank.widthBytes;
    bc.elementBytes = lo.elementBytes;
    const BankConflictStats cs = countBankConflicts(*r.unit(), ext, bc);
    std::printf("buffer layout       : %s%s%s\n",
                lo.padded ? "packed (conflict-padded rows)" : "unpadded",
                lo.note.empty() ? "" : " -- ", lo.note.c_str());
    std::printf("  padding overhead  : %lld bytes (%lld padded vs %lld raw)\n",
                lo.paddingBytes(ext), lo.totalBytes(ext), rawBytes);
    std::printf("  conflict estimate : %.1f%% of scratchpad access cycles serialized "
                "(%lld banks x %lld-byte words)\n",
                100.0 * cs.serializedFraction(), lo.bank.banks, lo.bank.widthBytes);
  }
  std::printf("pipeline timing     :");
  for (const PassTiming& pt : r.timings)
    if (pt.ran) std::printf(" %s %.2fms", pt.pass.c_str(), pt.millis);
  std::printf("\n");
}

/// Per-kernel configuration shared by the single and batch paths.
void configureForKernel(Compiler& compiler, const std::string& kernel,
                        const std::string& machine) {
  compiler.kernelName(kernel == "figure1" ? kernel : kernel + "_kernel");
  const bool fig1 = kernel == "figure1";
  // Figure-1-style block (no parallel mapping): block-level scratchpad only.
  compiler.scratchpadOnly(fig1)
      .stageEverything(machine == "cell" || fig1)  // Cell must stage everything
      .partition(fig1 ? PartitionMode::PerArrayUnion : PartitionMode::MaximalDisjoint);
}

int runBatch(Compiler& compiler, const std::vector<std::string>& kernels,
             const std::vector<std::string>& sizeEntries, const std::string& machine,
             const std::string& emit, bool verbose, bool cacheOn) {
  const std::uint64_t emitsBefore = emitterInvocations();
  std::vector<std::future<CompileResult>> futures;
  futures.reserve(kernels.size());
  for (const std::string& kernel : kernels) {
    IntVec params;
    ProgramBlock block = buildKernelByName(kernel, resolveSizes(kernel, sizeEntries), params);
    configureForKernel(compiler.parameters(params), kernel, machine);
    futures.push_back(compiler.compileAsync(std::move(block)));
  }
  int failures = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    CompileResult r = futures[i].get();
    for (const Diagnostic& d : r.diagnostics)
      if (verbose || d.severity == Severity::Error)
        std::fprintf(stderr, "[%s] %s\n", kernels[i].c_str(), d.str().c_str());
    std::string tile;
    for (i64 t : r.search.subTile) tile += (tile.empty() ? "" : ",") + std::to_string(t);
    std::printf("%-10s %-5s tile (%s)  artifact %zu bytes%s%s%s%s\n", kernels[i].c_str(),
                r.ok ? "ok" : "FAIL", tile.c_str(), r.artifact.size(),
                r.cacheHit ? "  [cache hit]" : "", r.diskHit ? "  [disk hit]" : "",
                r.familyHit ? "  [family hit]" : "", r.artifactBound ? "  [bound]" : "");
    if (emit == "stats") {
      // Runtime-bound results: the record's artifact served this size with
      // no emission; show the bind cost next to the pipeline timings it
      // replaced.
      if (r.artifactBound) {
        double bindMs = 0;
        for (const PassTiming& pt : r.timings)
          if (pt.pass == "bind") bindMs = pt.millis;
        std::printf("           bind %.3fms: %zu runtime args filled, no emission\n", bindMs,
                    r.boundArgs.size());
      }
      // Per-kernel summary stats (full interpreter counters need the
      // single-kernel path).
      std::printf("           tile search %d evaluations (%d memo hits)%s%s",
                  r.search.evaluations, r.search.memoHits,
                  r.search.parametric ? ", parametric" : "",
                  r.search.familyAdopted ? " (family plan)" : "");
      if (r.search.prunedBoxes > 0)
        std::printf(", %d boxes pruned", r.search.prunedBoxes);
      std::printf("; timings:");
      for (const PassTiming& pt : r.timings)
        if (pt.ran) std::printf(" %s %.2fms", pt.pass.c_str(), pt.millis);
      std::printf("%s\n", r.cacheHit ? " (cached run)" : "");
      // Size-symbolic fallback diagnostics: a family that degrades to
      // per-size compiles must be visible per kernel.
      if (!r.search.parametric && !r.search.parametricReason.empty())
        std::printf("           parametric fallback: %s\n",
                    r.search.parametricReason.c_str());
    }
    if (!r.ok) ++failures;
  }
  // One artifact per kernel family is the v4 contract: sizes served beyond
  // the emitted count came from cache replays or runtime-bound records.
  std::printf("emission   : %llu artifacts emitted / %zu sizes served\n",
              static_cast<unsigned long long>(emitterInvocations() - emitsBefore),
              kernels.size());
  if (cacheOn) {
    PlanCache::Stats s = PlanCache::global().stats();
    std::printf("plan cache : %lld hits / %lld misses / %lld entries\n", s.hits, s.misses,
                s.entries);
    std::printf("family tier: %lld hits / %lld misses / %lld families\n", s.familyHits,
                s.familyMisses, s.familyEntries);
  }
  if (compiler.diskPlanCache() != nullptr) {
    DiskPlanCache::Stats s = compiler.diskPlanCache()->stats();
    std::printf("disk cache : %lld hits / %lld misses / %lld rejects / %lld evictions; "
                "%lld entries (%lld bytes)\n",
                s.hits, s.misses, s.rejects, s.evictions, s.entries, s.bytes);
    std::printf("disk family: %lld hits / %lld misses / %lld rejects; %lld families "
                "(%lld bytes)\n",
                s.familyHits, s.familyMisses, s.familyRejects, s.familyEntries,
                s.familyBytes);
  }
  return failures == 0 ? 0 : 1;
}

/// --connect: route every compile through a running emmapcd daemon. The
/// compiler is used only as an options builder — the exact effective option
/// set (problem binding included) ships in the request, so daemon-side
/// results match what a local compile would have produced. Prints one
/// summary line per kernel with the SERVER-side tier attribution next to
/// the client-observed round trip.
int runConnect(const std::string& sock, const std::vector<std::string>& kernels,
               const std::vector<std::string>& sizeEntries, const std::string& machine,
               const std::string& emit, Compiler compiler, bool verbose) {
  svc::ServiceClient client(sock);
  const bool single = kernels.size() == 1;
  int failures = 0;
  for (const std::string& kernel : kernels) {
    std::vector<i64> sizes = resolveSizes(kernel, sizeEntries);
    IntVec params;
    buildKernelByName(kernel, sizes, params);  // validates; params for printing
    configureForKernel(compiler.parameters(params), kernel, machine);
    svc::CompileRequest req;
    req.kernel = kernel;
    req.sizes = sizes;
    req.options = compiler.opts();
    if (emit == "plan" || emit == "stats") req.skipPasses = {"codegen"};
    svc::WireCompileReply reply = client.compile(std::move(req));
    const CompileResult& r = reply.result;
    for (const Diagnostic& d : r.diagnostics)
      if (verbose || d.severity == Severity::Error)
        std::fprintf(stderr, "[%s] %s\n", kernel.c_str(), d.str().c_str());
    const char* tier = reply.serverCacheHit    ? "memory hit"
                       : reply.serverDiskHit   ? "disk hit"
                       : reply.serverFamilyHit ? "family hit"
                                               : "cold compile";
    std::printf("%-10s %-5s server %s %.2fms, round-trip %.2fms\n", kernel.c_str(),
                r.ok ? "ok" : "FAIL", tier, reply.serverMillis, reply.roundTripMillis);
    if (!r.ok) {
      ++failures;
      continue;
    }
    if (single && (emit == "c" || emit == "cuda" || emit == "cell")) {
      std::fputs(r.artifact.c_str(), stdout);
    } else if (single && emit == "plan") {
      if (r.kernel)
        printTiledPlan(r, params);
      else if (r.dataPlan() != nullptr)
        printPartitions(r.block(), *r.dataPlan());
    } else if (emit == "stats") {
      std::printf("           tile search %d evaluations (%d memo hits)%s%s\n",
                  r.search.evaluations, r.search.memoHits,
                  r.search.parametric ? ", parametric" : "",
                  r.search.familyAdopted ? " (family plan)" : "");
    }
  }
  if (emit == "stats") {
    // Client-observed attribution is on the per-kernel lines above; this
    // section is the SERVER's view of its shared store.
    svc::WireStats s = client.stats();
    std::printf("daemon      : %lld connections, %lld requests, %lld compiles "
                "(%lld errors, %lld protocol errors)\n",
                s.connections, s.requests, s.compiles, s.compileErrors, s.protocolErrors);
    std::printf("daemon bind : %lld requests served by the family fast path (record bound "
                "on the connection thread, no emission)\n",
                s.familyFastPath);
    std::printf("server mem  : %lld hits / %lld misses / %lld entries; family %lld hits / "
                "%lld misses / %lld families\n",
                s.memory.hits, s.memory.misses, s.memory.entries, s.memory.familyHits,
                s.memory.familyMisses, s.memory.familyEntries);
    if (s.haveDisk)
      std::printf("server disk : %lld hits / %lld misses; family %lld hits / %lld misses; "
                  "%lld entries (%lld bytes)\n",
                  s.disk.hits, s.disk.misses, s.disk.familyHits, s.disk.familyMisses,
                  s.disk.entries, s.disk.bytes);
  }
  return failures == 0 ? 0 : 1;
}

/// --warm: precompile a kernel x size matrix into the disk cache, one
/// pipeline run per kernel family plus a cheap instantiation per size.
int runWarm(Compiler& compiler, const std::string& spec, const std::string& machine,
            bool verbose) {
  if (compiler.diskPlanCache() == nullptr) {
    std::fprintf(stderr, "--warm needs --cache-dir to populate\n%s", kUsage);
    return 2;
  }
  // Family reuse inside the warming run itself needs the memory tier.
  compiler.cache(&PlanCache::global());
  const std::uint64_t emitsBefore = emitterInvocations();
  int failures = 0;
  i64 total = 0;
  for (const std::string& entry : splitOn(spec, ';')) {
    const size_t colon = entry.find(':');
    const std::string kernel = colon == std::string::npos ? entry : entry.substr(0, colon);
    std::vector<std::string> tuples =
        colon == std::string::npos ? std::vector<std::string>{}
                                   : splitList(entry.substr(colon + 1));
    if (tuples.empty()) tuples.push_back("");  // defaults-only warm
    for (const std::string& tuple : tuples) {
      std::vector<i64> sizes = resolveSizes(kernel, splitOn(tuple, 'x'));
      IntVec params;
      ProgramBlock block = buildKernelByName(kernel, sizes, params);
      configureForKernel(compiler.parameters(params), kernel, machine);
      CompileResult r = compiler.compile(std::move(block));
      for (const Diagnostic& d : r.diagnostics)
        if (verbose || d.severity == Severity::Error)
          std::fprintf(stderr, "[%s] %s\n", kernel.c_str(), d.str().c_str());
      std::string label;
      for (i64 v : sizes) label += (label.empty() ? "" : "x") + std::to_string(v);
      std::printf("warm %-10s %-18s %-5s%s%s%s%s\n", kernel.c_str(), label.c_str(),
                  r.ok ? "ok" : "FAIL", r.familyHit ? "  [family hit]" : "",
                  r.diskHit ? "  [disk hit]" : "", r.cacheHit ? "  [cache hit]" : "",
                  r.artifactBound ? "  [bound]" : "");
      if (!r.ok) ++failures;
      ++total;
    }
  }
  PlanCache::Stats ms = PlanCache::global().stats();
  DiskPlanCache::Stats ds = compiler.diskPlanCache()->stats();
  std::printf("warmed %lld entries: family tier %lld hits / %lld misses; disk %lld plans + "
              "%lld families (%lld bytes)\n",
              total, ms.familyHits, ms.familyMisses, ds.insertions + ds.hits,
              ds.familyEntries, ds.bytes + ds.familyBytes);
  // The headline of runtime-size-bound codegen: a kernel x size matrix is
  // one emitted artifact per family, every further size a record bind.
  std::printf("emission: %llu artifacts emitted / %lld sizes served\n",
              static_cast<unsigned long long>(emitterInvocations() - emitsBefore), total);
  return failures == 0 ? 0 : 1;
}

int run(cli::Args& args) {
  if (args.flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  const std::string kernelArg = args.str("kernel", "me");
  const std::string emit = args.str("emit", "plan");
  const std::string machine = args.str("machine", "gpu");
  const std::string cacheArg = args.str("cache", "off");
  const std::string cacheDir = args.str("cache-dir", "");
  const i64 jobsArg = args.integer("jobs", 1);
  const bool hoist = !args.flag("no-hoist");
  const bool verbose = args.flag("verbose");
  if (emit != "c" && emit != "cuda" && emit != "cell" && emit != "plan" && emit != "stats") {
    std::fprintf(stderr, "unknown --emit mode '%s'\n%s", emit.c_str(), kUsage);
    return 2;
  }
  if (cacheArg != "on" && cacheArg != "off") {
    std::fprintf(stderr, "unknown --cache mode '%s'\n%s", cacheArg.c_str(), kUsage);
    return 2;
  }
  const bool cacheOn = cacheArg == "on";
  const std::vector<std::string> kernels = splitList(kernelArg);
  if (kernels.empty()) {
    std::fprintf(stderr, "empty --kernel list\n%s", kUsage);
    return 2;
  }
  const std::vector<i64> tile = args.intList("tile");
  const std::vector<std::string> sizeEntries = splitList(args.str("size", ""));
  const std::string warmSpec = args.str("warm", "");
  const std::string connectSock = args.str("connect", "");
  if (!connectSock.empty() && !warmSpec.empty()) {
    std::fprintf(stderr, "--warm and --connect are mutually exclusive\n%s", kUsage);
    return 2;
  }

  Compiler compiler;
  compiler.memoryLimitBytes(args.integer("mem", 16 * 1024))
      .innerProcs(machine == "cell" ? 4 : 32)
      .hoistCopies(hoist)
      .tileSizes(tile)
      .backend(emit == "cuda" || emit == "cell" ? emit : "c")
      .jobs(static_cast<int>(jobsArg));
  if (cacheOn) compiler.cache(&PlanCache::global());
  if (!cacheDir.empty()) compiler.diskCache(cacheDir);
  if (!args.validate(kUsage)) return 2;

  // Warm runs always compile end-to-end (codegen included) so the cached
  // per-size plans can serve later emitting runs; plan/stats runs skip
  // codegen and rely on the family tier, whose key ignores codegen-only
  // differences.
  if (!warmSpec.empty()) return runWarm(compiler, warmSpec, machine, verbose);
  if (!connectSock.empty())
    return runConnect(connectSock, kernels, sizeEntries, machine, emit, compiler, verbose);
  if (emit == "plan" || emit == "stats") compiler.skipPass("codegen");

  if (kernels.size() > 1)
    return runBatch(compiler, kernels, sizeEntries, machine, emit, verbose, cacheOn);

  IntVec params;
  ProgramBlock block = buildKernelByName(kernels[0], resolveSizes(kernels[0], sizeEntries),
                                         params);
  configureForKernel(compiler.parameters(params), kernels[0], machine);
  CompileResult r = compiler.compile(std::move(block));
  // Warnings and errors always reach the user (e.g. an explicit --tile that
  // violates --mem); notes only under --verbose.
  for (const Diagnostic& d : r.diagnostics)
    if (verbose || d.severity != Severity::Note)
      std::fprintf(stderr, "%s\n", d.str().c_str());
  if (!r.ok) return 1;

  if (r.havePlan) {
    std::printf("// kernel %s, space loops:", kernels[0].c_str());
    for (int l : r.plan.spaceLoops) std::printf(" %d", l);
    std::printf(", inter-block sync: %s\n", r.plan.needsInterBlockSync ? "yes" : "no");
  }

  if (r.havePlan && r.plan.needsInterBlockSync) {
    // Stencil-style kernels: the band is pipeline-parallel, so (as in the
    // paper, which used the concurrent-start framework of [27] for Jacobi)
    // the generic Figure-3 tiler does not apply. Report the Section-3
    // analysis the driver fell back to.
    std::printf("// pipeline-parallel band: use the concurrent-start mapped kernels in\n"
                "// src/kernels (jacobi_mapped, jacobi2d_mapped); showing the Section-3\n"
                "// scratchpad analysis of the block:\n");
    printPartitions(r.block(), *r.blockPlan);
    return 0;
  }

  if (r.kernel && tile.empty()) {
    std::printf("// searched tile:");
    for (i64 t : r.search.subTile) std::printf(" %lld", t);
    std::printf("  (cost %.4g, footprint %lld elems, %d evaluations)\n", r.search.eval.cost,
                r.search.eval.footprint, r.search.evaluations);
  }
  if (r.artifactBound) {
    double bindMs = 0;
    for (const PassTiming& pt : r.timings)
      if (pt.pass == "bind") bindMs = pt.millis;
    std::printf("// bound family artifact: %zu runtime args filled in %.3fms, no emission\n",
                r.boundArgs.size(), bindMs);
  }

  if (emit == "c" || emit == "cuda" || emit == "cell") {
    std::fputs(r.artifact.c_str(), stdout);
  } else if (emit == "stats") {
    if (!r.kernel) {
      std::fprintf(stderr, "--emit=stats needs the tiled pipeline path\n");
      return 1;
    }
    printStats(r, params);
    std::printf("tile search         : %d evaluations (%d memo hits)\n", r.search.evaluations,
                r.search.memoHits);
    if (r.search.parametric)
      std::printf("parametric plan     : %s in %.2f ms; candidate evaluation %.2f ms total\n",
                  r.search.familyAdopted ? "adopted from the family tier" : "built",
                  r.search.planBuildMillis, r.search.evalMillis);
    else if (!r.search.parametricReason.empty())
      std::printf("parametric plan     : fallback (%s)\n", r.search.parametricReason.c_str());
    if (r.search.prunedBoxes > 0)
      std::printf("pruned boxes        : %d candidate boxes discarded by the footprint "
                  "interval\n",
                  r.search.prunedBoxes);
    if (cacheOn) {
      PlanCache::Stats s = PlanCache::global().stats();
      std::printf("plan cache          : %s; %lld hits / %lld misses / %lld entries\n",
                  r.cacheHit ? "hit" : "miss", s.hits, s.misses, s.entries);
      // r.familyHit says the compile was family-instantiated (from either
      // tier); the counters below are the MEMORY tier's — a fresh process
      // served from disk shows hit here with a memory-tier miss, and the
      // disk family counters further down carry the attribution.
      std::printf("family tier         : %s\n",
                  r.familyHit ? "hit (bind-and-emit run)" : "miss");
      std::printf("family cache (mem)  : %lld hits / %lld misses / %lld families\n",
                  s.familyHits, s.familyMisses, s.familyEntries);
    }
    if (compiler.diskPlanCache() != nullptr) {
      DiskPlanCache::Stats s = compiler.diskPlanCache()->stats();
      std::printf("disk cache          : %s; %lld hits / %lld misses / %lld rejects / "
                  "%lld evictions; %lld entries (%lld bytes)\n",
                  r.diskHit ? "hit (pipeline skipped)" : "miss", s.hits, s.misses, s.rejects,
                  s.evictions, s.entries, s.bytes);
    }
  } else if (emit == "plan") {
    if (r.kernel)
      printTiledPlan(r, params);
    else if (r.dataPlan() != nullptr)
      printPartitions(r.block(), *r.dataPlan());
  } else {
    std::fprintf(stderr, "unknown --emit mode '%s'\n%s", emit.c_str(), kUsage);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  try {
    return run(args);
  } catch (const ApiError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
