#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# resolves to an existing file or directory. External links (http/https/
# mailto) and pure in-page anchors are skipped; a `#fragment` suffix on a
# relative link is stripped before the existence check. Exits non-zero and
# lists every broken link. Run from anywhere; paths resolve against the
# repo root.
set -u
cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
  [ -e "$f" ] || continue
  dir=$(dirname "$f")
  # Extract the (target) of every [text](target) markdown link.
  while IFS= read -r link; do
    case "$link" in
      http://* | https://* | mailto:* | "#"*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK in $f: ($link)"
      fail=1
    fi
  done < <(grep -o '\[[^][]*\]([^()]*)' "$f" | sed 's/^.*(\(.*\))$/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc links OK"
