#!/usr/bin/env sh
# Dry-run clang-format over the C++ sources; fails on any formatting diff.
# Skips (successfully) when clang-format is not installed, so local builds
# on minimal containers are not blocked.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not found; skipping"
  exit 0
fi

FILES=$(find src tools examples bench tests \
  \( -name '*.cpp' -o -name '*.h' \) -type f)

# --dry-run --Werror: non-zero exit on any file that would be reformatted.
clang-format --style=file --dry-run --Werror $FILES
echo "format_check: OK"
