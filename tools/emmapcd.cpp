// emmapcd — the emmap compile-service daemon.
//
// Hosts a shared, networked plan store (service/server.h) on a unix-domain
// socket. Every `emmapc --connect=SOCK` (or ServiceClient) process that
// connects compiles through the daemon's single-flight tiered caches, so
// the family/plan warmth accumulated by one client serves all the others:
// a fresh client whose kernel family the daemon has already seen gets the
// cheap bind-and-emit path instead of a cold pipeline run.
//
// Usage:
//   emmapcd --socket=PATH                 unix-domain socket to serve
//           [--jobs=N]                    compile workers (default: hardware)
//           [--cache-dir=PATH]            persistent on-disk plan store
//           [--cache-capacity=N]          in-memory result-tier capacity
//           [--cache-shards=N]            cache shards (default: hardware;
//                                         1 = single-mutex baseline)
//           [--help]
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight compiles finish and
// deliver their replies, idle clients get a "server shutting down"
// ErrorReply instead of ECONNRESET, the disk store is left consistent, and
// the socket file is removed before exit.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

#include "service/server.h"
#include "support/cli.h"
#include "support/diagnostics.h"
#include "support/thread_pool.h"

using namespace emm;

namespace {

constexpr const char* kUsage =
    "usage: emmapcd --socket=PATH [--jobs=N] [--cache-dir=PATH]\n"
    "               [--cache-capacity=N] [--cache-shards=N] [--help]\n";

constexpr const char* kHelp =
    "emmapcd — the emmap compile-service daemon.\n"
    "\n"
    "Serves compile requests over a unix-domain socket so that many emmapc\n"
    "processes share one warm plan store (memory result + family tiers,\n"
    "optionally backed by a disk cache). Point clients at it with\n"
    "`emmapc --connect=PATH`.\n"
    "\n"
    "  --socket=PATH          unix-domain socket path to serve (required).\n"
    "                         A stale socket file from a crashed daemon is\n"
    "                         replaced; a live daemon on the path is an error.\n"
    "  --jobs=N               compile workers on the shared pool (default:\n"
    "                         hardware concurrency). Client connections are\n"
    "                         unbounded; CPU use is capped by this.\n"
    "  --cache-dir=PATH       persistent on-disk plan store shared with\n"
    "                         offline `emmapc --cache-dir` runs (created if\n"
    "                         missing).\n"
    "  --cache-capacity=N     in-memory result-tier capacity (default 1024).\n"
    "  --cache-shards=N       in-memory cache shards (default: one per\n"
    "                         hardware thread, rounded up to a power of two;\n"
    "                         1 reproduces the single-mutex baseline).\n"
    "  --help                 this text.\n"
    "\n"
    "Send SIGINT or SIGTERM to drain gracefully: in-flight compiles finish,\n"
    "idle clients are told \"server shutting down\", and the socket file is\n"
    "removed.\n";

// Self-pipe for signal-safe shutdown: the handler only write()s one byte.
int gSignalPipe[2] = {-1, -1};

void onTermSignal(int) {
  const char byte = 1;
  // Best effort; a full pipe already has a wakeup pending.
  (void)!::write(gSignalPipe[1], &byte, 1);
}

int run(cli::Args& args) {
  if (args.flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  svc::ServiceServer::Options opts;
  opts.socketPath = args.str("socket");
  opts.jobs = static_cast<int>(args.integer("jobs", 0));
  opts.cacheDir = args.str("cache-dir");
  opts.cacheCapacity = static_cast<size_t>(args.integer("cache-capacity", 1024));
  opts.cacheShards = static_cast<size_t>(args.integer("cache-shards", 0));
  if (!args.validate(kUsage)) return 2;
  if (opts.socketPath.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  EMM_REQUIRE(::pipe(gSignalPipe) == 0, "cannot create the signal pipe");
  struct sigaction sa = {};
  sa.sa_handler = onTermSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  svc::ServiceServer server(opts);
  server.start();
  std::printf("emmapcd: serving %s (jobs=%d%s%s)\n", server.socketPath().c_str(),
              opts.jobs > 0 ? opts.jobs : ThreadPool::defaultConcurrency(),
              opts.cacheDir.empty() ? "" : ", cache-dir=",
              opts.cacheDir.empty() ? "" : opts.cacheDir.c_str());
  std::fflush(stdout);

  // Block until a termination signal arrives.
  char byte = 0;
  while (::read(gSignalPipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("emmapcd: draining...\n");
  std::fflush(stdout);
  server.stop();

  svc::WireStats s = server.stats();
  std::printf("emmapcd: served %lld connections, %lld requests, %lld compiles "
              "(%lld errors, %lld protocol errors)\n",
              static_cast<long long>(s.connections), static_cast<long long>(s.requests),
              static_cast<long long>(s.compiles), static_cast<long long>(s.compileErrors),
              static_cast<long long>(s.protocolErrors));
  std::printf("emmapcd: family fast path served %lld requests on the connection thread\n",
              static_cast<long long>(s.familyFastPath));
  std::printf("emmapcd: memory cache %lld hits / %lld misses, family %lld hits / %lld misses\n",
              static_cast<long long>(s.memory.hits), static_cast<long long>(s.memory.misses),
              static_cast<long long>(s.memory.familyHits),
              static_cast<long long>(s.memory.familyMisses));
  if (s.haveDisk)
    std::printf("emmapcd: disk cache %lld hits / %lld misses, family %lld hits / %lld misses\n",
                static_cast<long long>(s.disk.hits), static_cast<long long>(s.disk.misses),
                static_cast<long long>(s.disk.familyHits),
                static_cast<long long>(s.disk.familyMisses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  try {
    return run(args);
  } catch (const ApiError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
