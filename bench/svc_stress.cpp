// Service S4: cache-tier and daemon stress harness.
//
// The sharded PlanCache exists because at daemon traffic levels the cache
// mutex, not the pipeline, was the throughput ceiling. This harness
// measures exactly that claim, setbench-style, and guards the concurrency
// semantics the sharding must preserve:
//
//  1. warm-hit scaling — threads (1 .. max(8, 2x hardware)) hammer a warm
//     cache with uniform and Zipfian (s = 0.99) key mixes, against BOTH the
//     sharded cache and the single-mutex baseline (`shards = 1`, the exact
//     pre-sharding implementation). Reports throughput, p50/p99/p999
//     latency, hit rate, entry count and peak RSS per config.
//  2. single-flight hammer — threads race getOrCompute over a Zipfian
//     keyspace with a deliberately slow compute; asserts exactly ONE cold
//     compute per unique key, byte-identical artifacts on every path, and
//     exact hit/miss counter totals.
//  3. daemon stress — the same load shapes against a live service over its
//     real unix socket (an in-process ServiceServer by default, or any
//     external daemon via --connect=SOCK), mixing warm compile requests
//     with STATS probes, which after this PR never contend with replies.
//
// Every measured config also emits one machine-readable JSON line
// (`{"bench":"svc_stress",...}`) so future PRs can track the scaling curve
// the way the fig-style benches track the paper's plots.
//
// Exit status covers CORRECTNESS only (single-flight, byte-identity, clean
// daemon). Scaling is reported but only enforced under --assert-scaling
// (needs >= 8 hardware threads to be meaningful; CI boxes vary).
//
// Flags: --quick (CI-sized run), --threads=a,b,... (override the sweep),
//        --no-daemon, --connect=SOCK, --assert-scaling, --keys=N, --ops=N.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "kernels/blocks.h"
#include "service/client.h"
#include "service/server.h"
#include "support/cli.h"

using namespace emm;

namespace {

using Clock = std::chrono::steady_clock;

// ---- distributions ---------------------------------------------------------

/// Zipfian sampler over [0, n) with exponent s (defaults to the classic
/// 0.99), via an inverse-CDF table: rank k is drawn with probability
/// proportional to 1 / (k+1)^s. O(log n) per sample, deterministic.
class ZipfSampler {
public:
  ZipfSampler(size_t n, double s = 0.99) : cdf_(n) {
    double sum = 0;
    for (size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t operator()(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

private:
  std::vector<double> cdf_;
};

// ---- measurement helpers ---------------------------------------------------

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t at = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[at];
}

long maxRssKb() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

struct RunResult {
  double opsPerSec = 0;
  double p50us = 0, p99us = 0, p999us = 0;
  i64 ops = 0;
  double secs = 0;
};

/// Runs `threads` workers, each performing `opsPerThread` calls of `op(rng)`
/// and recording per-op latency; returns aggregate throughput + tails.
template <typename Op>
RunResult runLoad(int threads, i64 opsPerThread, const Op& op) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(0x5eed5eedULL + static_cast<u64>(t));
      std::vector<double>& mine = lat[static_cast<size_t>(t)];
      mine.reserve(static_cast<size_t>(opsPerThread));
      for (i64 i = 0; i < opsPerThread; ++i) {
        const auto t0 = Clock::now();
        op(rng);
        mine.push_back(std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
      }
    });
  for (std::thread& w : workers) w.join();
  RunResult r;
  r.secs = std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (const std::vector<double>& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  r.ops = static_cast<i64>(all.size());
  r.opsPerSec = r.secs > 0 ? static_cast<double>(r.ops) / r.secs : 0;
  r.p50us = percentile(all, 0.50);
  r.p99us = percentile(all, 0.99);
  r.p999us = percentile(all, 0.999);
  return r;
}

void jsonLine(const char* mode, size_t shards, const char* dist, int threads,
              const RunResult& r, double hitRate, i64 entries) {
  std::printf("JSON {\"bench\":\"svc_stress\",\"mode\":\"%s\",\"shards\":%zu,"
              "\"dist\":\"%s\",\"threads\":%d,\"ops\":%lld,\"secs\":%.3f,"
              "\"ops_per_sec\":%.0f,\"p50_us\":%.2f,\"p99_us\":%.2f,"
              "\"p999_us\":%.2f,\"hit_rate\":%.4f,\"entries\":%lld,"
              "\"maxrss_kb\":%ld}\n",
              mode, shards, dist, threads, static_cast<long long>(r.ops), r.secs,
              r.opsPerSec, r.p50us, r.p99us, r.p999us, hitRate,
              static_cast<long long>(entries), maxRssKb());
}

/// A tiny but clonable CompileResult whose artifact witnesses its key, so
/// every replay can be checked byte-for-byte.
CompileResult syntheticResult(size_t key) {
  CompileResult r;
  r.ok = true;
  r.input = std::make_unique<ProgramBlock>();
  r.artifact = "plan-artifact-" + std::to_string(key) + "-" +
               std::string(128, static_cast<char>('a' + key % 26));
  return r;
}

PlanKey keyAt(size_t i) {
  PlanKey k;
  k.block = 0x9e3779b97f4a7c15ULL * (static_cast<u64>(i) + 1);
  k.options = static_cast<u64>(i);
  return k;
}

// ---- phase 1: warm-hit scaling --------------------------------------------

struct Phase1Outcome {
  bool identical = true;
  /// Throughput at 1 thread and at `topThreads` (8, or the sweep maximum
  /// when the sweep stays below 8) per shard config, uniform mix.
  double sharded1 = 0, shardedTop = 0, baseline1 = 0, baselineTop = 0;
  int topThreads = 1;
};

void warmHitScaling(const std::vector<int>& threadSweep, size_t keys, i64 opsPerThread,
                    size_t shardsOverride, Phase1Outcome& out) {
  for (int t : threadSweep)
    if (t <= 8) out.topThreads = std::max(out.topThreads, t);
  std::printf("\n-- warm-hit scaling: sharded vs single-mutex baseline --\n");
  std::printf("  %-9s %-8s %-8s %12s %10s %10s %10s\n", "cache", "dist", "threads",
              "ops/sec", "p50 us", "p99 us", "p999 us");
  for (const size_t shards : {shardsOverride, size_t(1)}) {
    PlanCache cache(4096, shards);
    std::vector<std::string> expected(keys);
    for (size_t i = 0; i < keys; ++i) {
      CompileResult r = syntheticResult(i);
      expected[i] = r.artifact;
      cache.insert(keyAt(i), r);
    }
    const char* label = shards == 1 ? "baseline" : "sharded";
    for (const char* dist : {"uniform", "zipf"}) {
      ZipfSampler zipf(keys);
      const bool useZipf = std::string(dist) == "zipf";
      for (int threads : threadSweep) {
        const PlanCache::Stats before = cache.stats();
        std::atomic<bool> mismatch{false};
        RunResult r = runLoad(threads, opsPerThread, [&](std::mt19937_64& rng) {
          const size_t i = useZipf ? zipf(rng)
                                   : std::uniform_int_distribution<size_t>(0, keys - 1)(rng);
          std::optional<CompileResult> hit = cache.lookup(keyAt(i));
          if (!hit || hit->artifact != expected[i]) mismatch.store(true);
        });
        const PlanCache::Stats after = cache.stats();
        const double denom = static_cast<double>((after.hits - before.hits) +
                                                 (after.misses - before.misses));
        const double hitRate =
            denom > 0 ? static_cast<double>(after.hits - before.hits) / denom : 0;
        if (mismatch.load()) out.identical = false;
        std::printf("  %-9s %-8s %-8d %12.0f %10.2f %10.2f %10.2f\n", label, dist, threads,
                    r.opsPerSec, r.p50us, r.p99us, r.p999us);
        jsonLine("mem", cache.shardCount(), dist, threads, r, hitRate, after.entries);
        if (useZipf) continue;  // scaling factors quoted on the uniform mix
        if (threads == 1) (shards == 1 ? out.baseline1 : out.sharded1) = r.opsPerSec;
        if (threads == out.topThreads)
          (shards == 1 ? out.baselineTop : out.shardedTop) = r.opsPerSec;
      }
    }
  }
}

// ---- phase 2: single-flight hammer ----------------------------------------

bool singleFlightHammer(int threads, size_t keys, i64 opsPerThread) {
  std::printf("\n-- single-flight hammer: %d threads, Zipfian over %zu cold keys --\n",
              threads, keys);
  PlanCache cache(4096, 0);
  std::vector<std::string> expected(keys);
  for (size_t i = 0; i < keys; ++i) expected[i] = syntheticResult(i).artifact;
  std::vector<std::atomic<int>> computes(keys);
  std::atomic<bool> mismatch{false};
  ZipfSampler zipf(keys);
  RunResult r = runLoad(threads, opsPerThread, [&](std::mt19937_64& rng) {
    const size_t i = zipf(rng);
    CompileResult got = cache.getOrCompute(keyAt(i), [&] {
      computes[i].fetch_add(1);
      // Widen the race window: a broken latch would let two leaders in.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return syntheticResult(i);
    });
    if (!got.ok || got.artifact != expected[i]) mismatch.store(true);
  });
  i64 uniqueComputed = 0, doubleComputed = 0;
  for (size_t i = 0; i < keys; ++i) {
    if (computes[i].load() > 0) ++uniqueComputed;
    if (computes[i].load() > 1) ++doubleComputed;
  }
  const PlanCache::Stats s = cache.stats();
  const bool exactCounts =
      s.misses == uniqueComputed && s.hits + s.misses == r.ops && s.entries == uniqueComputed;
  std::printf("  %lld ops, %lld unique keys computed, %lld computed twice\n",
              static_cast<long long>(r.ops), static_cast<long long>(uniqueComputed),
              static_cast<long long>(doubleComputed));
  std::printf("  exactly one cold compute per key: %s\n", doubleComputed == 0 ? "yes" : "NO");
  std::printf("  artifacts byte-identical: %s\n", !mismatch.load() ? "yes" : "NO");
  std::printf("  counter totals exact (hits %lld + misses %lld == ops, entries == uniques): "
              "%s\n",
              static_cast<long long>(s.hits), static_cast<long long>(s.misses),
              exactCounts ? "yes" : "NO");
  jsonLine("hammer", cache.shardCount(), "zipf", threads, r,
           static_cast<double>(s.hits) / static_cast<double>(s.hits + s.misses), s.entries);
  return doubleComputed == 0 && !mismatch.load() && exactCounts;
}

// ---- phase 3: daemon stress ------------------------------------------------

svc::CompileRequest meRequest(const std::vector<i64>& sizes) {
  IntVec params;
  buildKernelByName("me", sizes, params);
  Compiler c;
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("cuda").kernelName("me_kernel");
  svc::CompileRequest req;
  req.kernel = "me";
  req.sizes = sizes;
  req.options = c.opts();
  return req;
}

bool daemonStress(const std::string& connectTo, const std::vector<int>& threadSweep,
                  i64 requestsPerClient) {
  std::printf("\n-- daemon stress: warm compiles + STATS probes over the socket --\n");
  std::unique_ptr<svc::ServiceServer> server;
  std::string sock = connectTo;
  if (sock.empty()) {
    sock = "/tmp/emm_svc_stress_" + std::to_string(::getpid()) + ".sock";
    server = std::make_unique<svc::ServiceServer>(
        svc::ServiceServer::Options{sock, /*jobs=*/0, /*cacheDir=*/"",
                                    /*cacheCapacity=*/1024, /*cacheShards=*/0});
    server->start();
  }
  const std::vector<std::vector<i64>> sizes = {
      {256, 128, 16}, {512, 128, 16}, {1024, 128, 16}, {256, 256, 16}};
  std::string warmArtifact;
  {
    svc::ServiceClient warmup(sock);
    for (const std::vector<i64>& sz : sizes) {
      svc::WireCompileReply rep = warmup.compile(meRequest(sz));
      if (!rep.result.ok) {
        std::printf("  WARMUP FAILED: %s\n", rep.result.firstError().c_str());
        return false;
      }
      if (sz == sizes[0]) warmArtifact = rep.result.artifact;
    }
  }
  std::atomic<bool> failed{false}, mismatch{false};
  for (int threads : threadSweep) {
    std::vector<std::vector<double>> lat(static_cast<size_t>(threads));
    std::vector<std::thread> clients;
    const auto start = Clock::now();
    for (int t = 0; t < threads; ++t)
      clients.emplace_back([&, t] {
        svc::ServiceClient client(sock);
        std::vector<double>& mine = lat[static_cast<size_t>(t)];
        for (i64 i = 0; i < requestsPerClient; ++i) {
          const auto t0 = Clock::now();
          // One STATS probe per 8 compiles: the reply path and the counter
          // snapshot must not contend.
          if (i % 8 == 7) {
            client.stats();
          } else {
            const std::vector<i64>& sz = sizes[static_cast<size_t>(t + i) % sizes.size()];
            svc::WireCompileReply rep = client.compile(meRequest(sz));
            if (!rep.result.ok) failed.store(true);
            if (sz == sizes[0] && rep.result.artifact != warmArtifact) mismatch.store(true);
          }
          mine.push_back(std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        }
      });
    for (std::thread& c : clients) c.join();
    RunResult r;
    r.secs = std::chrono::duration<double>(Clock::now() - start).count();
    std::vector<double> all;
    for (const std::vector<double>& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    r.ops = static_cast<i64>(all.size());
    r.opsPerSec = r.secs > 0 ? static_cast<double>(r.ops) / r.secs : 0;
    r.p50us = percentile(all, 0.50);
    r.p99us = percentile(all, 0.99);
    r.p999us = percentile(all, 0.999);
    std::printf("  clients=%-3d %10.0f req/sec   p50 %8.0f us  p99 %8.0f us  p999 %8.0f us\n",
                threads, r.opsPerSec, r.p50us, r.p99us, r.p999us);
    jsonLine("daemon", 0, "rotate", threads, r, 1.0, 0);
  }
  bool clean = !failed.load() && !mismatch.load();
  if (server != nullptr) {
    svc::WireStats s = server->stats();
    clean = clean && s.protocolErrors == 0 && s.compileErrors == 0;
    std::printf("  daemon served %lld requests (%lld compiles, %lld protocol errors)\n",
                static_cast<long long>(s.requests), static_cast<long long>(s.compiles),
                static_cast<long long>(s.protocolErrors));
    server->stop();
  }
  std::printf("  warm replies byte-identical, all served cleanly: %s\n", clean ? "yes" : "NO");
  return clean;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  const bool quick = args.flag("quick");
  const bool noDaemon = args.flag("no-daemon");
  const bool assertScaling = args.flag("assert-scaling");
  const std::string connectTo = args.str("connect");
  const size_t keys = static_cast<size_t>(args.integer("keys", quick ? 512 : 2048));
  const i64 ops = args.integer("ops", quick ? 4000 : 50000);
  // 0 = the library default (next pow2 of the hardware concurrency).
  const size_t shards = static_cast<size_t>(args.integer("shards", 0));
  std::vector<int> threadSweep;
  for (i64 t : args.intList("threads")) threadSweep.push_back(static_cast<int>(t));
  if (threadSweep.empty()) {
    const int hw = std::max(1u, std::thread::hardware_concurrency());
    for (int t = 1; t <= std::max(8, 2 * hw); t *= 2) threadSweep.push_back(t);
  }
  if (!args.validate("usage: bench_svc_stress [--quick] [--threads=a,b,...] [--keys=N] "
                     "[--ops=N] [--shards=N] [--no-daemon] [--connect=SOCK] "
                     "[--assert-scaling]\n"))
    return 2;

  bench::header("Service S4: sharded-cache + daemon stress",
                "ROADMAP contention-free cache tiers; setbench-style microbench");
  std::printf("   hardware threads: %u\n", std::thread::hardware_concurrency());

  Phase1Outcome p1;
  warmHitScaling(threadSweep, keys, ops, shards, p1);
  const double shardedScale = p1.sharded1 > 0 ? p1.shardedTop / p1.sharded1 : 0;
  const double baselineScale = p1.baseline1 > 0 ? p1.baselineTop / p1.baseline1 : 0;
  std::printf("\n  warm-hit scaling 1 -> %d threads (uniform): sharded %.2fx, baseline %.2fx\n",
              p1.topThreads, shardedScale, baselineScale);

  const int hammerThreads = std::min(threadSweep.back(), 16);
  const bool flightOk = singleFlightHammer(std::max(hammerThreads, 4), quick ? 128 : 512,
                                           quick ? 500 : 4000);

  bool daemonOk = true;
  if (!noDaemon) {
    std::vector<int> daemonSweep = {1, std::min(4, threadSweep.back())};
    daemonOk = daemonStress(connectTo, daemonSweep, quick ? 24 : 96);
  }

  bool ok = p1.identical && flightOk && daemonOk;
  std::printf("\n  artifacts byte-identical: %s\n", p1.identical ? "yes" : "NO");
  if (assertScaling) {
    const bool scales = shardedScale >= 4.0 && p1.topThreads >= 8;
    std::printf("  sharded warm-hit scaling >= 4x (1 -> 8 threads): %s\n",
                scales ? "yes" : "NO");
    ok = ok && scales;
  }
  return ok ? 0 : 1;
}
