// Shared helpers for the figure-replication drivers.
#pragma once

#include <cstdio>
#include <string>

#include "gpusim/machine.h"

namespace emm::bench {

/// Formats byte/point counts the way the paper labels its x axes
/// (256k, 1M, 16M, ...).
inline std::string sizeLabel(i64 n) {
  if (n % (1 << 20) == 0) return std::to_string(n >> 20) + "M";
  if (n % (1 << 10) == 0) return std::to_string(n >> 10) + "k";
  return std::to_string(n);
}

inline void header(const char* title, const char* paperRef) {
  std::printf("== %s ==\n", title);
  std::printf("   reproduces: %s\n", paperRef);
}

inline void row(const std::string& label, double ms, const char* note = "") {
  std::printf("  %-10s %12.2f ms  %s\n", label.c_str(), ms, note);
}

}  // namespace emm::bench
