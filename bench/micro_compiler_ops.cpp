// Google-benchmark microbenchmarks of the compiler substrate: the
// polyhedral operations dominating compile time (Fourier-Motzkin
// projection, images, set difference, scanning), dependence analysis and
// the Section-3 block analysis.
#include <benchmark/benchmark.h>

#include "codegen/scan.h"
#include "deps/dependence.h"
#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "poly/enumerate.h"
#include "smem/data_manage.h"
#include "tiling/multilevel.h"

namespace emm {
namespace {

Polyhedron simplex(int dim, i64 n) {
  Polyhedron p(dim, 0);
  for (int d = 0; d < dim; ++d) {
    IntVec row(p.cols(), 0);
    row[d] = 1;
    p.addInequality(row);
  }
  IntVec cap(p.cols(), 0);
  for (int d = 0; d < dim; ++d) cap[d] = -1;
  cap.back() = n;
  p.addInequality(cap);
  return p;
}

void BM_FourierMotzkin(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  Polyhedron p = simplex(dim, 100);
  for (auto _ : state) {
    Polyhedron q = p.projectedOnto(1);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_FourierMotzkin)->Arg(3)->Arg(5)->Arg(7);

void BM_Image(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  Polyhedron p = simplex(dim, 50);
  IntMat f(2, dim + 1);
  for (int d = 0; d < dim; ++d) {
    f.at(0, d) = 1;
    f.at(1, d) = d % 2;
  }
  for (auto _ : state) {
    Polyhedron img = p.image(f);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_Image)->Arg(3)->Arg(5);

void BM_SetDifference(benchmark::State& state) {
  Polyhedron a(2, 0), b(2, 0);
  a.addRange(0, 0, 100);
  a.addRange(1, 0, 100);
  b.addRange(0, 25, 75);
  b.addRange(1, 25, 75);
  for (auto _ : state) {
    PolySet d = setDifference(a, b);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_SetDifference);

void BM_CountPoints(benchmark::State& state) {
  Polyhedron p = simplex(3, static_cast<i64>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(countPoints(p, {}));
}
BENCHMARK(BM_CountPoints)->Arg(16)->Arg(48);

void BM_DependenceAnalysis(benchmark::State& state) {
  ProgramBlock block = buildJacobiBlock(64, 16);
  for (auto _ : state) {
    auto deps = computeDependences(block);
    benchmark::DoNotOptimize(deps);
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_SmemAnalysis(benchmark::State& state) {
  ProgramBlock block = buildMeBlock(64, 64, 8);
  SmemOptions o;
  o.sampleParams = {64, 64, 8};
  for (auto _ : state) {
    DataPlan plan = analyzeBlock(block, o);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_SmemAnalysis);

void BM_TileAnalysis(benchmark::State& state) {
  ProgramBlock block = buildMeBlock(64, 64, 8);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  SmemOptions o;
  o.sampleParams = {64, 64, 8};
  for (auto _ : state) {
    TileAnalysis ta = analyzeTile(block, plan, {16, 16, 8, 8}, o);
    benchmark::DoNotOptimize(ta);
  }
}
BENCHMARK(BM_TileAnalysis);

void BM_ScanUnion(benchmark::State& state) {
  Polyhedron a(2, 0), b(2, 0);
  a.addRange(0, 0, 31);
  a.addRange(1, 0, 15);
  b.addRange(0, 16, 47);
  b.addRange(1, 8, 23);
  for (auto _ : state) {
    AstPtr root = scanUnion({a, b}, {"i", "j"}, {}, [&](const std::vector<std::string>&) {
      return AstNode::comment("x");
    });
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(BM_ScanUnion);

void BM_DriverFullPipeline(benchmark::State& state) {
  // End-to-end emm::Compiler cost (deps through CUDA codegen) with explicit
  // tile sizes — the per-request latency a compile service would pay.
  ProgramBlock block = buildMeBlock(64, 64, 8);
  for (auto _ : state) {
    CompileResult r = Compiler(block)
                          .parameters({64, 64, 8})
                          .tileSizes({16, 16, 8, 8})
                          .skipPass("tilesearch")
                          .backend("cuda")
                          .compile();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DriverFullPipeline);

}  // namespace
}  // namespace emm

BENCHMARK_MAIN();
