// Figure 5: execution time of 1-D Jacobi for various problem sizes — GPU
// without scratchpad, GPU with scratchpad, CPU.
//
// Paper setup: T = 4096 time steps, time tile 32, problem sizes 8k..512k.
// Expected shape: scratchpad version ~10x faster than DRAM-only and ~15x
// faster than CPU.
//
// The second table compiles the jacobi block in SHARED-PLAN mode. Jacobi's
// band is pipeline-parallel, so there is no tile search to share — but the
// cell artifact is size-generic (runtime size arguments, guarded geometry),
// so the first size emits the family record and every further size binds it
// with zero emitter invocations. Jacobi's staged local-store extents are
// pinned to the SPACE dimension n by BufExtentEq guards (the whole rows live
// in the local store), so the family envelope spans the TIME dimension: the
// sweep fixes n and varies the time-step count. It FAILS (exit 1) on any
// per-size artifact mismatch against an isolated cold compile, a missing
// family hit, or more than one emission.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "driver/backend.h"
#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "kernels/blocks.h"
#include "kernels/jacobi_mapped.h"

using namespace emm;

namespace {

void require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "FIG5 SHARED-PLAN CHECK FAILED: %s\n", what);
    std::exit(1);
  }
}

double millisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One-size jacobi compile: scratchpad-only flow (the Figure-1 pipeline the
/// paper applies to this kernel) rendered through the cell backend. The
/// artifact is size-generic, but its folded local-store extents pin n.
CompileResult compileJacobi(i64 n, i64 t, PlanCache* cache, double* ms) {
  Compiler c(buildJacobiBlock(n, t));
  c.parameters({n, t})
      .scratchpadOnly(true)
      .stageEverything(true)
      .memoryLimitBytes(16 * 1024)
      .backend("cell");
  if (cache != nullptr) c.cache(cache);
  const auto t0 = std::chrono::steady_clock::now();
  CompileResult r = c.compile();
  if (ms != nullptr) *ms = millisSince(t0);
  return r;
}

}  // namespace

int main() {
  bench::header("Figure 5: 1-D Jacobi execution time vs problem size",
                "Baskaran et al. PPoPP'08, Fig. 5");
  Machine m = Machine::geforce8800gtx();

  std::printf("  %-10s %14s %14s %14s %10s %10s\n", "size", "gpu-noSmem", "gpu-smem", "cpu",
              "smem-spdp", "cpu-spdp");
  std::vector<i64> sizes = {8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10,
                            512 << 10};
  for (i64 n : sizes) {
    JacobiConfig c;
    c.n = n;
    c.timeSteps = 4096;
    c.timeTile = 32;
    c.spaceTile = 256;
    c.numBlocks = 128;
    c.numThreads = 64;

    KernelModelJacobi with = jacobiMachineModel(c);
    c.useScratchpad = false;
    KernelModelJacobi without = jacobiMachineModel(c);

    SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
    SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
    double cpu = simulateCpuMs(m, with.cpuOps, with.cpuMemElems);
    if (!rw.feasible || !rwo.feasible) {
      std::printf("  %-10s infeasible: %s%s\n", bench::sizeLabel(n).c_str(),
                  rw.infeasibleReason.c_str(), rwo.infeasibleReason.c_str());
      continue;
    }
    std::printf("  %-10s %14.1f %14.1f %14.1f %9.1fx %9.1fx\n", bench::sizeLabel(n).c_str(),
                rwo.milliseconds, rw.milliseconds, cpu, rwo.milliseconds / rw.milliseconds,
                cpu / rw.milliseconds);
  }
  std::printf("\n  paper reports: smem speedup ~10x over DRAM-only, ~15x over CPU\n");

  // ---- Shared-plan compilation sweep (size-generic family tier) ----------
  // Buffer geometry is a function of n alone, so the one emitted artifact
  // covers every time-step count; the sweep varies t at a fixed n that fits
  // the 16 KB local store.
  std::printf("\n  shared-plan compilation sweep: family tier on the no-search pipeline\n");
  std::printf("  (fixed n=2k, sweeping time steps: local-store geometry is n-bound)\n");
  std::printf("  %-10s %10s %10s %8s\n", "steps", "cold-ms", "warm-ms", "spdp");
  const i64 kSweepN = 2 << 10;
  std::vector<i64> steps = {512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10};
  PlanCache cache;
  double coldTotal = 0, warmTotal = 0;
  std::uint64_t warmEmits = 0;
  bool first = true;
  for (i64 t : steps) {
    double coldMs = 0, warmMs = 0;
    CompileResult cold = compileJacobi(kSweepN, t, nullptr, &coldMs);
    const std::uint64_t emitsBefore = emitterInvocations();
    CompileResult warm = compileJacobi(kSweepN, t, &cache, &warmMs);
    warmEmits += emitterInvocations() - emitsBefore;
    require(cold.ok && warm.ok, "compile failed");
    require(!cold.artifact.empty(), "scratchpad-only flow must emit an artifact");
    require(warm.artifact == cold.artifact, "per-size artifact mismatch");
    require(warm.familyHit == !first, first ? "first size must build the family"
                                            : "missing family hit");
    require(warm.artifactBound == !first, first ? "first size must emit the record"
                                                : "warm size must bind, not re-emit");
    coldTotal += coldMs;
    warmTotal += warmMs;
    std::printf("  %-10s %10.2f %10.2f %7.1fx\n", bench::sizeLabel(t).c_str(), coldMs,
                warmMs, coldMs / warmMs);
    first = false;
  }
  PlanCache::Stats s = cache.stats();
  require(s.familyMisses == 1, "sweep must perform exactly one cold pipeline run");
  require(s.familyHits == static_cast<i64>(steps.size()) - 1, "family hit per warm size");
  require(warmEmits == 1, "warm sweep must invoke the emitter exactly once per family");
  std::printf("  sweep totals: %.1f ms cold vs %.1f ms shared-plan; "
              "%lld family hits / %lld misses; %llu artifact emitted for %zu sizes\n",
              coldTotal, warmTotal, s.familyHits, s.familyMisses,
              static_cast<unsigned long long>(warmEmits), steps.size());
  return 0;
}
