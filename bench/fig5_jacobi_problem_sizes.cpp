// Figure 5: execution time of 1-D Jacobi for various problem sizes — GPU
// without scratchpad, GPU with scratchpad, CPU.
//
// Paper setup: T = 4096 time steps, time tile 32, problem sizes 8k..512k.
// Expected shape: scratchpad version ~10x faster than DRAM-only and ~15x
// faster than CPU.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kernels/jacobi_mapped.h"

using namespace emm;

int main() {
  bench::header("Figure 5: 1-D Jacobi execution time vs problem size",
                "Baskaran et al. PPoPP'08, Fig. 5");
  Machine m = Machine::geforce8800gtx();

  std::printf("  %-10s %14s %14s %14s %10s %10s\n", "size", "gpu-noSmem", "gpu-smem", "cpu",
              "smem-spdp", "cpu-spdp");
  std::vector<i64> sizes = {8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10,
                            512 << 10};
  for (i64 n : sizes) {
    JacobiConfig c;
    c.n = n;
    c.timeSteps = 4096;
    c.timeTile = 32;
    c.spaceTile = 256;
    c.numBlocks = 128;
    c.numThreads = 64;

    KernelModelJacobi with = jacobiMachineModel(c);
    c.useScratchpad = false;
    KernelModelJacobi without = jacobiMachineModel(c);

    SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
    SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
    double cpu = simulateCpuMs(m, with.cpuOps, with.cpuMemElems);
    if (!rw.feasible || !rwo.feasible) {
      std::printf("  %-10s infeasible: %s%s\n", bench::sizeLabel(n).c_str(),
                  rw.infeasibleReason.c_str(), rwo.infeasibleReason.c_str());
      continue;
    }
    std::printf("  %-10s %14.1f %14.1f %14.1f %9.1fx %9.1fx\n", bench::sizeLabel(n).c_str(),
                rwo.milliseconds, rw.milliseconds, cpu, rwo.milliseconds / rw.milliseconds,
                cpu / rw.milliseconds);
  }
  std::printf("\n  paper reports: smem speedup ~10x over DRAM-only, ~15x over CPU\n");
  return 0;
}
