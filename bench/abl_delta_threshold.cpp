// Ablation A1: sensitivity of Algorithm 1's delta threshold.
//
// The paper fixes delta = 30% empirically. This ablation sweeps delta over
// a family of shifted-window blocks (two reads of A offset by `shift`,
// constant reuse fraction = overlap/total) and reports which partitions
// each threshold admits to the scratchpad, plus the resulting global
// traffic measured by the interpreter.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "driver/compiler.h"
#include "ir/interp.h"

using namespace emm;

namespace {

ProgramBlock shiftedWindow(i64 shift, i64 range) {
  ProgramBlock block;
  block.name = "win";
  block.arrays = {{"A", {192}}, {"B", {64}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, range - 1);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, 0}}, false};
  Access r2{0, IntMat{{1, shift}}, false};
  s.accesses = {w, r1, r2};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::load(2));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));
  return block;
}

}  // namespace

int main() {
  bench::header("Ablation A1: Algorithm-1 delta threshold sensitivity",
                "Section 3.1.1 (delta fixed at 30% in the paper)");
  const i64 range = 64;
  std::vector<i64> shifts = {4, 16, 32, 48, 80};
  std::vector<double> deltas = {0.1, 0.3, 0.5, 0.7};

  std::printf("  %-8s %-10s", "shift", "reuse");
  for (double d : deltas) std::printf("  d=%.1f globalRds", d);
  std::printf("\n");

  for (i64 shift : shifts) {
    std::printf("  %-8lld", shift);
    bool printedReuse = false;
    for (double d : deltas) {
      // Scratchpad-only pipeline with the benefit filter active and the
      // threshold under test.
      CompileResult r = Compiler(shiftedWindow(shift, range))
                            .scratchpadOnly()
                            .delta(d)
                            .skipPass("codegen")
                            .compile();
      double reuse = 0;
      for (const PartitionPlan& p : r.dataPlan()->partitions)
        if (p.arrayId == 0) reuse = p.constReuseFraction;
      if (!printedReuse) {
        std::printf(" %-10.3f", reuse);
        printedReuse = true;
      }
      ArrayStore store(r.block().arrays);
      store.fillAllPattern(3);
      MemTrace t = executeCodeUnit(*r.unit(), {}, store);
      std::printf("  %10lld      ", t.globalReads);
    }
    std::printf("\n");
  }
  std::printf("\n  reading: admitting a partition replaces repeated global reads by a\n"
              "  single buffered transfer; high thresholds forfeit that when reuse is\n"
              "  moderate, low thresholds buffer even reuse-free streams\n");
  return 0;
}
