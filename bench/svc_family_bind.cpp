// Family-tier runtime binding vs bind-and-emit: the warm-path price of one
// size served from a warmed family.
//
// The family tier stores ONE size-generic record per kernel family (runtime
// size arguments, guarded buffer geometry). Serving a new size from a
// warmed family is a pure lookup-and-bind: validate the guard predicates,
// re-certify the tile argmin plan-only, fill the argument struct — no AST
// rebuild, no emission. This harness measures that path against the full
// bind-and-emit pipeline at the same sizes and FAILS (exit 1) if
//
//   - the warm per-size cost is not >= 10x below bind-and-emit,
//   - the sweep invokes the emitter more than once for the family, or
//   - any bound artifact differs byte-for-byte from a per-size compile.
//
// Emits one machine-readable line per measured mode:
//   JSON {"bench":"svc_family_bind","mode":...,"ops_per_sec":...}
// diffed against bench/baselines/svc_family_bind.json by
// tools/diff_stress_baseline.py (soft gate; configs match on
// mode/shards/dist/threads).
//
// Flags: --quick (fewer rounds, CI-friendly).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench_util.h"
#include "driver/backend.h"
#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "kernels/me_pipeline.h"

using namespace emm;
using Clock = std::chrono::steady_clock;

namespace {

void require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "SVC_FAMILY_BIND CHECK FAILED: %s\n", what);
    std::exit(1);
  }
}

long maxRssKb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t i = std::min(sorted.size() - 1,
                            static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[i];
}

struct RunResult {
  double opsPerSec = 0;
  double p50us = 0, p99us = 0, p999us = 0;
  i64 ops = 0;
  double secs = 0;
};

void jsonLine(const char* mode, const RunResult& r) {
  std::printf("JSON {\"bench\":\"svc_family_bind\",\"mode\":\"%s\",\"shards\":1,"
              "\"dist\":\"rotate\",\"threads\":1,\"ops\":%lld,\"secs\":%.3f,"
              "\"ops_per_sec\":%.0f,\"p50_us\":%.2f,\"p99_us\":%.2f,"
              "\"p999_us\":%.2f,\"hit_rate\":1.0000,\"entries\":1,"
              "\"maxrss_kb\":%ld}\n",
              mode, static_cast<long long>(r.ops), r.secs, r.opsPerSec, r.p50us, r.p99us,
              r.p999us, maxRssKb());
}

/// The ME family at (ni, nj, w): same pipeline configuration as the Figure-4
/// sweep, so every size below shares one tile argmin and one artifact.
CompileResult compileMe(i64 ni, i64 nj, i64 w, PlanCache* cache) {
  Compiler c(buildMeBlock(ni, nj, w));
  c.parameters({ni, nj, w}).memoryLimitBytes(16 * 1024).backend("cuda");
  if (cache != nullptr) c.cache(cache);
  return c.compile();
}

/// Times `ops` calls of `oneCompile(i)`.
template <typename Fn>
RunResult timeSweep(size_t ops, const Fn& oneCompile) {
  std::vector<double> lat;
  lat.reserve(ops);
  const auto start = Clock::now();
  for (size_t i = 0; i < ops; ++i) {
    const auto t0 = Clock::now();
    oneCompile(i);
    lat.push_back(std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
  }
  RunResult r;
  r.secs = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(lat.begin(), lat.end());
  r.ops = static_cast<i64>(lat.size());
  r.opsPerSec = r.secs > 0 ? static_cast<double>(r.ops) / r.secs : 0;
  r.p50us = percentile(lat, 0.50);
  r.p99us = percentile(lat, 0.99);
  r.p999us = percentile(lat, 0.999);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const size_t bindOps = quick ? 40 : 120;
  const size_t emitOps = quick ? 6 : 12;

  bench::header("Service family-bind: warm lookup vs bind-and-emit",
                "runtime-size-bound codegen, one artifact per family");

  const i64 nj = 1024, w = 16;
  const std::vector<i64> checkNis = {256, 1024, 2048, 4096, 9216, 16384};

  // Per-size references: an isolated full pipeline at every check size, kept
  // for the byte-identity check below.
  std::vector<CompileResult> reference;
  for (i64 ni : checkNis) {
    reference.push_back(compileMe(ni, nj, w, nullptr));
    require(reference.back().ok, "reference compile failed");
  }

  // Warm the family: exactly one cold pipeline builds the size-generic
  // record; everything after is a bind.
  PlanCache cache;
  const std::uint64_t emitsBefore = emitterInvocations();
  CompileResult seed = compileMe(512, nj, w, &cache);
  require(seed.ok && !seed.familyHit, "seed compile must be the family's cold run");

  // Fidelity: each check size binds the family record byte-identically to
  // its isolated per-size compile (untimed; a repeat size would ride the
  // result tier, so the timed sweep below uses fresh sizes only).
  for (size_t i = 0; i < checkNis.size(); ++i) {
    CompileResult r = compileMe(checkNis[i], nj, w, &cache);
    require(r.ok && r.familyHit && r.artifactBound, "check size must bind the family record");
    require(r.artifact == reference[i].artifact, "bound artifact differs from per-size compile");
    require(r.search.subTile == reference[i].search.subTile, "bound tile differs");
  }

  // Warm path: every op binds a NEVER-SEEN size against the warmed family
  // (a repeated size would be a result-tier hit, not a bind). The stride
  // keeps the sweep inside the envelope where the record's tile choice stays
  // the argmin, and off the check sizes and the seed.
  RunResult bind = timeSweep(bindOps, [&](size_t i) {
    CompileResult r = compileMe(1536 + 1024 * static_cast<i64>(i), nj, w, &cache);
    require(r.ok && r.familyHit && r.artifactBound, "warm size must bind the family record");
  });
  const std::uint64_t sweepEmits = emitterInvocations() - emitsBefore;
  require(sweepEmits == 1, "warmed sweep must invoke the emitter exactly once");

  // Bind-and-emit: fresh sizes through the full pipeline, no cache.
  RunResult emit = timeSweep(emitOps, [&](size_t i) {
    require(compileMe(1536 + 1024 * static_cast<i64>(i), nj, w, nullptr).ok,
            "bind-and-emit compile failed");
  });

  std::printf("  %-14s %10s %10s %10s %10s\n", "mode", "ops/s", "p50-us", "p99-us", "ops");
  std::printf("  %-14s %10.0f %10.2f %10.2f %10lld\n", "bind", bind.opsPerSec, bind.p50us,
              bind.p99us, static_cast<long long>(bind.ops));
  std::printf("  %-14s %10.0f %10.2f %10.2f %10lld\n", "bind-and-emit", emit.opsPerSec,
              emit.p50us, emit.p99us, static_cast<long long>(emit.ops));
  const double speedup = bind.p50us > 0 ? emit.p50us / bind.p50us : 0;
  std::printf("  warm bind is %.1fx cheaper per size (p50); "
              "%llu artifact emitted for %zu warm sizes\n",
              speedup, static_cast<unsigned long long>(sweepEmits),
              bindOps + checkNis.size());
  require(speedup >= 10.0, "warm bind must be >= 10x cheaper than bind-and-emit");

  jsonLine("bind", bind);
  jsonLine("bind-and-emit", emit);
  return 0;
}
