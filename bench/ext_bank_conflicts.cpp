// Extension E4: bank-conflict-aware buffer packing.
//
// The paper's Section-5 discussion notes that scratchpad layouts must avoid
// bank conflicts for the per-element access cost the evaluation assumes to
// hold. This driver measures that claim on the framework's own generated
// units: the static conflict counter (gpusim/bank_conflicts.h) grades the
// packed (padded) and unpacked layouts of the ME tiled kernel and a 2-D
// Jacobi scratchpad unit under a G80-style 16-bank half-warp model, and the
// interpreter oracle certifies that padding changed no result byte.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "driver/compiler.h"
#include "gpusim/bank_conflicts.h"
#include "ir/interp.h"
#include "kernels/blocks.h"

using namespace emm;

namespace {

/// Lane dimension for the scratchpad-only Jacobi unit: thread-per-row
/// mapping, so the lane stride through a buffer is the ROW PITCH — the
/// tile-strided case conflict padding exists for.
void markThreadParallel(AstNode& n, const std::string& iter) {
  if (n.kind == AstNode::Kind::For && n.iter == iter) n.loopKind = LoopKind::ThreadParallel;
  for (const AstPtr& c : n.children) markThreadParallel(*c, iter);
}

/// Max |difference| between the unit's output and the reference execution
/// of the source block; 0.0 means byte-identical results.
double oracleDiff(const ProgramBlock& block, const CodeUnit& unit, const IntVec& params) {
  ArrayStore ref(block.arrays), got(block.arrays);
  ref.fillAllPattern(17);
  got.fillAllPattern(17);
  executeReference(block, params, ref);
  IntVec ext = params;
  ext.resize(unit.source->paramNames.size(), 0);
  executeCodeUnit(unit, ext, got);
  return ArrayStore::maxAbsDiff(ref, got);
}

void report(const char* kernel, const BankConflictStats& flat, const BankConflictStats& packed,
            double flatDiff, double packedDiff) {
  const double reduction =
      flat.excessCycles() > 0
          ? 100.0 * (1.0 - static_cast<double>(packed.excessCycles()) /
                               static_cast<double>(flat.excessCycles()))
          : 0.0;
  std::printf("  %-9s unpacked: %8lld excess cycles (%4.1f%% of %lld serialized)\n", kernel,
              flat.excessCycles(), 100.0 * flat.serializedFraction(), flat.bankCycles);
  std::printf("  %-9s packed:   %8lld excess cycles (%4.1f%% of %lld serialized)"
              "  -> %.1f%% conflict reduction\n",
              "", packed.excessCycles(), 100.0 * packed.serializedFraction(), packed.bankCycles,
              reduction);
  std::printf("  %-9s oracle max|diff| vs reference: unpacked %g, packed %g%s\n", "", flatDiff,
              packedDiff,
              flatDiff == 0.0 && packedDiff == 0.0 ? "  (byte-identical)" : "  ** MISMATCH **");
}

/// ME through the full tiled pipeline: the t0 thread loop walks Lout2's
/// OUTER dimension, so unpadded lanes stride by the row pitch (a multiple
/// of the bank count at these tile sizes) and serialize 16-ways.
void runMe(bool packed, BankConflictStats& stats, double& diff) {
  const i64 ni = 64, nj = 64, w = 16;
  Compiler c(buildMeBlock(ni, nj, w));
  c.parameters({ni, nj, w}).tileSizes({32, 16, 16, 4}).backend("cuda");
  c.opts().packBuffers = packed;
  CompileResult r = c.compile();
  if (!r.ok || !r.kernel.has_value()) {
    std::printf("  me: compile failed: %s\n", r.firstError().c_str());
    return;
  }
  BankConflictOptions bc;  // G80: 16 banks, half-warp of 16 lanes
  IntVec ext = {ni, nj, w};
  ext.resize(r.kernel->unit.source->paramNames.size(), 0);
  stats = countBankConflicts(r.kernel->unit, ext, bc);
  diff = oracleDiff(buildMeBlock(ni, nj, w), r.kernel->unit, {ni, nj, w});
}

/// 2-D Jacobi through the Figure-1 scratchpad flow. Sizes are chosen so the
/// natural pitches share factors with the bank count: LB1's interior row is
/// 16 wide (16-way conflicts), LA0's full row 18 (2-way).
void runJacobi2d(bool packed, BankConflictStats& stats, double& diff) {
  const i64 n = 18, m = 18, t = 2;
  Compiler c(buildJacobi2dBlock(n, m, t));
  c.parameters({n, m, t}).scratchpadOnly(true).stageEverything(true).memoryLimitBytes(64 * 1024);
  c.opts().packBuffers = packed;
  CompileResult r = c.compile();
  if (!r.ok || !r.scratchpadUnit.has_value()) {
    std::printf("  jacobi2d: compile failed: %s\n", r.firstError().c_str());
    return;
  }
  markThreadParallel(*r.scratchpadUnit->root, "c1");
  BankConflictOptions bc;
  stats = countBankConflicts(*r.scratchpadUnit, {n, m, t}, bc);
  diff = oracleDiff(buildJacobi2dBlock(n, m, t), *r.scratchpadUnit, {n, m, t});
}

}  // namespace

int main() {
  bench::header("Extension E4: bank-conflict-aware buffer packing",
                "Section 5's banked-scratchpad access cost assumption");
  std::printf("  model: 16 banks x 4-byte words, 16-lane half-warps\n\n");

  BankConflictStats meFlat, mePacked, jFlat, jPacked;
  double meFlatDiff = -1, mePackedDiff = -1, jFlatDiff = -1, jPackedDiff = -1;
  runMe(false, meFlat, meFlatDiff);
  runMe(true, mePacked, mePackedDiff);
  report("me", meFlat, mePacked, meFlatDiff, mePackedDiff);
  runJacobi2d(false, jFlat, jFlatDiff);
  runJacobi2d(true, jPacked, jPackedDiff);
  report("jacobi2d", jFlat, jPacked, jFlatDiff, jPackedDiff);

  std::printf("\n  reading: coprime row pitches spread tile-strided warp accesses\n"
              "  across all banks; padding rescues the flat per-element scratchpad\n"
              "  cost the simulator charges, at a few words of local memory\n");
  return 0;
}
