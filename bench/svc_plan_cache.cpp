// Service-layer benchmark: plan cache and threaded batch compilation.
//
// Three measurements back the compilation-service claims:
//  1. cold vs. warm compile latency for the ME block — a warm hit costs one
//     deep clone of the cached plan instead of the full pipeline,
//  2. batch throughput over the thread pool as the worker count grows
//     (distinct problem sizes, cache off, so every compile is real work),
//  3. the tile-evaluator's memoization counters for the cold search (probes
//     answered without re-running the Section-3 analysis).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "kernels/blocks.h"

using namespace emm;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

Compiler meCompiler(PlanCache* cache) {
  Compiler c(buildMeBlock(2048, 1024, 16));
  c.parameters({2048, 1024, 16}).memoryLimitBytes(16 * 1024).cache(cache);
  return c;
}

void coldVsWarm() {
  std::printf("\n-- cold vs. warm compile (ME 2048x1024, w=16) --\n");
  PlanCache cache;
  Compiler compiler = meCompiler(&cache);

  auto t0 = Clock::now();
  CompileResult cold = compiler.compile();
  double coldMs = msSince(t0);

  auto t1 = Clock::now();
  CompileResult warm = compiler.compile();
  double warmMs = msSince(t1);

  if (!cold.ok || !warm.ok) {
    std::printf("  compile failed: %s\n", cold.firstError().c_str());
    return;
  }
  std::printf("  cold  %10.2f ms  (miss, %d tile candidates evaluated, %d memo hits)\n",
              coldMs, cold.search.evaluations, cold.search.memoHits);
  std::printf("  warm  %10.2f ms  (%s)\n", warmMs, warm.cacheHit ? "hit" : "MISS?!");
  std::printf("  speedup %.1fx, artifacts byte-identical: %s\n",
              warmMs > 0 ? coldMs / warmMs : 0.0,
              cold.artifact == warm.artifact ? "yes" : "NO");
}

void batchThroughput() {
  std::printf("\n-- batch throughput vs. worker count (12 distinct matmul blocks) --\n");
  for (int jobs : {1, 2, 4, 8}) {
    std::vector<ProgramBlock> blocks;
    for (int i = 0; i < 12; ++i) {
      i64 n = 32 + 4 * i;
      blocks.push_back(buildMatmulBlock(n, n, n));
    }
    Compiler compiler;
    compiler.memoryLimitBytes(4 * 1024).jobs(jobs).skipPass("codegen");
    // Each block needs its own parameter binding, so schedule through
    // compileAsync (which snapshots the configuration per call) instead of
    // compileBatch (which shares one option set).
    std::vector<std::future<CompileResult>> futures;
    auto t0 = Clock::now();
    for (size_t i = 0; i < blocks.size(); ++i) {
      i64 n = 32 + 4 * static_cast<i64>(i);
      compiler.parameters({n, n, n});
      futures.push_back(compiler.compileAsync(std::move(blocks[i])));
    }
    int ok = 0;
    for (std::future<CompileResult>& f : futures) ok += f.get().ok ? 1 : 0;
    double ms = msSince(t0);
    std::printf("  jobs=%d  %10.2f ms total  %6.2f compiles/s  (%d/%zu ok)\n", jobs, ms,
                ms > 0 ? 1000.0 * static_cast<double>(futures.size()) / ms : 0.0, ok,
                futures.size());
  }
}

void warmBatch() {
  std::printf("\n-- warm batch: 16 repeats of one ME block through the cache --\n");
  PlanCache cache;
  Compiler compiler = meCompiler(&cache);
  CompileResult seed = compiler.compile();  // populate
  if (!seed.ok) {
    std::printf("  compile failed: %s\n", seed.firstError().c_str());
    return;
  }
  std::vector<ProgramBlock> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(buildMeBlock(2048, 1024, 16));
  compiler.jobs(2);
  auto t0 = Clock::now();
  std::vector<CompileResult> results = compiler.compileBatch(std::move(blocks));
  double ms = msSince(t0);
  int hits = 0;
  for (const CompileResult& r : results) hits += r.cacheHit ? 1 : 0;
  PlanCache::Stats s = cache.stats();
  std::printf("  %zu compiles in %.2f ms (%.2f ms/compile), %d cache hits\n", results.size(),
              ms, ms / static_cast<double>(results.size()), hits);
  std::printf("  cache: %lld hits / %lld misses / %lld entries\n", s.hits, s.misses, s.entries);
}

}  // namespace

int main() {
  bench::header("Service S1: plan cache and threaded batch compilation",
                "ROADMAP service layer; repeated-traffic scenario");
  coldVsWarm();
  batchThroughput();
  warmBatch();
  std::printf("\n  reading: a warm hit replays the cached plan for the price of a deep\n"
              "  copy; batch throughput scales with workers until cores saturate\n");
  return 0;
}
