// Extension E1: the Cell-like target (the paper's other architecture class).
//
// On Cell-style machines global memory cannot be touched during compute
// (Section 3: "any data that is accessed ... has to be moved into
// scratchpad memory before access"), so every reference is staged
// (onlyBeneficial = false) and the 256 KB local store admits far larger
// tiles than the GPU's 16 KB. This driver maps ME onto both machine
// profiles and reports how the bigger local store changes the chosen tiles
// and the resulting time.
#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"
#include "kernels/me_pipeline.h"

using namespace emm;

namespace {

void runTarget(const char* name, const Machine& machine, i64 memBytes, i64 innerProcs) {
  // Selecting the registered "cell" backend by name forces stageEverything
  // (required on Cell); the GPU profile keeps the default selective staging
  // flow but is pinned to stageEverything here so the two targets differ in
  // Mup and process count alone, as in the paper's comparison.
  CompileResult cr = Compiler(buildMeBlock(2048, 1024, 16))
                         .parameters({2048, 1024, 16})
                         .backend(std::string(name) == "cell" ? "cell" : "c")
                         .stageEverything(true)  // pin the GPU profile too (see above)
                         .memoryLimitBytes(memBytes)
                         .innerProcs(innerProcs)
                         .tileCandidates({{16, 32, 64, 128}, {16, 32, 64, 128}, {16}, {16}})
                         .skipPass("tiling")
                         .skipPass("smem")
                         .skipPass("codegen")
                         .compile();
  const TileSearchResult& r = cr.search;
  if (!cr.ok || !r.eval.feasible) {
    std::printf("  %-6s no feasible tile\n", name);
    return;
  }
  MeConfig c;
  c.ni = 2048;
  c.nj = 1024;
  c.w = 16;
  c.numBlocks = machine.numSMs * 2;
  c.numThreads = innerProcs;
  c.subTile = r.subTile;
  KernelModel km = modelMe(c);
  SimResult sim = simulateLaunch(machine, km.launch, km.perBlock);
  std::printf("  %-6s tile (%lld,%lld,%lld,%lld) footprint %6lld elems -> %s\n", name,
              r.subTile[0], r.subTile[1], r.subTile[2], r.subTile[3], r.eval.footprint,
              sim.feasible ? (std::to_string(sim.milliseconds) + " ms").c_str()
                           : sim.infeasibleReason.c_str());
}

}  // namespace

int main() {
  bench::header("Extension E1: GPU-like vs Cell-like target for ME",
                "Section 3's Cell discussion; local store 16 KB vs 256 KB");
  runTarget("gpu", Machine::geforce8800gtx(), 16 * 1024, 32);
  runTarget("cell", Machine::cellLike(), 256 * 1024, 4);
  std::printf("\n  reading: the 16x larger local store admits tiles with far better\n"
              "  halo amortization; the framework adapts through Mup alone\n");
  return 0;
}
