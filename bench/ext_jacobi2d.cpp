// Extension E2: 2-D Jacobi (5-point stencil) under the same mapping scheme
// as the paper's 1-D experiment — per time band, overlapped 2-D tiles with
// a halo ring of width Tt staged in the scratchpad, one global barrier per
// band. Sweeps tile shapes and reports the scratchpad-vs-DRAM-only ratio.
#include <cstdio>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "kernels/jacobi2d_mapped.h"

using namespace emm;

int main() {
  bench::header("Extension E2: 2-D Jacobi tile-shape sweep",
                "2-D analogue of Figures 5/8");
  Machine m = Machine::geforce8800gtx();

  std::vector<std::tuple<i64, i64, i64>> tiles = {
      {4, 16, 16}, {4, 32, 32}, {8, 16, 16}, {8, 32, 32}, {8, 48, 48}, {16, 16, 16}};
  std::vector<i64> sizes = {256, 512, 1024};

  std::printf("  %-14s", "tile (Tt,Si,Sj)");
  for (i64 s : sizes) std::printf(" %10lldx%-4lld", s, s);
  std::printf(" (ms)\n");

  std::vector<double> best(sizes.size(), 1e300);
  std::vector<int> bestT(sizes.size(), -1);
  for (size_t t = 0; t < tiles.size(); ++t) {
    auto [tt, si, sj] = tiles[t];
    std::printf("  %2lld,%2lld,%-7lld", tt, si, sj);
    for (size_t s = 0; s < sizes.size(); ++s) {
      Jacobi2dConfig c;
      c.n = c.m = sizes[s];
      c.timeSteps = 256;
      c.timeTile = tt;
      c.spaceTileI = si;
      c.spaceTileJ = sj;
      c.numBlocks = 128;
      c.numThreads = 64;
      KernelModelJacobi2d km = jacobi2dMachineModel(c);
      SimResult r = simulateLaunch(m, km.launch, km.perBlock);
      if (!r.feasible) {
        std::printf(" %15s", "infeasible");
        continue;
      }
      std::printf(" %15.1f", r.milliseconds);
      if (r.milliseconds < best[s]) {
        best[s] = r.milliseconds;
        bestT[s] = static_cast<int>(t);
      }
    }
    std::printf("\n");
  }
  for (size_t s = 0; s < sizes.size(); ++s)
    if (bestT[s] >= 0) {
      auto [tt, si, sj] = tiles[bestT[s]];
      std::printf("  best at %4lld^2: (%lld,%lld,%lld)\n", sizes[s], tt, si, sj);
    }

  // Scratchpad benefit at the largest size.
  Jacobi2dConfig c;
  c.n = c.m = 1024;
  c.timeSteps = 256;
  c.timeTile = 4;
  c.spaceTileI = c.spaceTileJ = 32;
  c.numBlocks = 128;
  c.numThreads = 64;
  KernelModelJacobi2d with = jacobi2dMachineModel(c);
  c.useScratchpad = false;
  KernelModelJacobi2d without = jacobi2dMachineModel(c);
  SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
  SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
  if (rw.feasible && rwo.feasible)
    std::printf("\n  1024^2: %.1f ms with scratchpad vs %.1f ms without (%.1fx)\n",
                rw.milliseconds, rwo.milliseconds, rwo.milliseconds / rw.milliseconds);
  return 0;
}
