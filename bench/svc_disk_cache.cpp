// Service-layer benchmark: the persistent on-disk plan cache.
//
// Measures the three tiers of the plan-cache hierarchy for the ME block:
//  1. cold      — full pipeline run (empty caches),
//  2. disk-warm — fresh process simulated by a new Compiler with only the
//                 DiskPlanCache attached: one file read + header checks +
//                 payload deserialization replaces the whole pipeline,
//  3. mem-warm  — in-memory PlanCache hit: one deep clone.
//
// Correctness lines assert that all three tiers emit byte-identical CUDA
// source and choose the same tile, and that corrupting the entry degrades
// to a cold compile instead of failing.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_util.h"
#include "driver/compiler.h"
#include "driver/disk_cache.h"
#include "driver/plan_cache.h"
#include "kernels/blocks.h"

using namespace emm;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

Compiler meCompiler() {
  Compiler c(buildMeBlock(2048, 1024, 16));
  c.parameters({2048, 1024, 16}).memoryLimitBytes(16 * 1024).backend("cuda");
  return c;
}

void tiers(const std::string& dir) {
  std::printf("\n-- cold vs. disk-warm vs. memory-warm (ME 2048x1024, w=16, cuda) --\n");
  DiskPlanCache disk(dir);
  PlanCache memory;

  Compiler coldC = meCompiler();
  coldC.diskCache(&disk);
  auto t0 = Clock::now();
  CompileResult cold = coldC.compile();  // runs the pipeline, writes the entry
  double coldMs = msSince(t0);
  if (!cold.ok) {
    std::printf("  compile failed: %s\n", cold.firstError().c_str());
    return;
  }

  // New Compiler, empty memory tier: the plan comes back from disk.
  Compiler diskC = meCompiler();
  diskC.cache(&memory).diskCache(&disk);
  auto t1 = Clock::now();
  CompileResult diskWarm = diskC.compile();
  double diskMs = msSince(t1);

  // Same Compiler again: the promoted entry now hits in memory.
  auto t2 = Clock::now();
  CompileResult memWarm = diskC.compile();
  double memMs = msSince(t2);

  DiskPlanCache::Stats ds = disk.stats();
  std::printf("  cold       %10.2f ms  (pipeline; entry written: %lld bytes on disk)\n",
              coldMs, ds.bytes);
  std::printf("  disk-warm  %10.2f ms  (%s; %.0fx vs cold)\n", diskMs,
              diskWarm.diskHit ? "disk hit" : "MISS?!", diskMs > 0 ? coldMs / diskMs : 0.0);
  std::printf("  mem-warm   %10.2f ms  (%s; %.0fx vs cold)\n", memMs,
              memWarm.cacheHit ? "memory hit" : "MISS?!", memMs > 0 ? coldMs / memMs : 0.0);

  const bool sameArtifact =
      cold.artifact == diskWarm.artifact && cold.artifact == memWarm.artifact;
  const bool sameTile = cold.search.subTile == diskWarm.search.subTile &&
                        cold.search.subTile == memWarm.search.subTile;
  std::printf("  artifacts byte-identical: %s; tiles identical: %s; cost bit-identical: %s\n",
              sameArtifact ? "yes" : "NO", sameTile ? "yes" : "NO",
              cold.search.eval.cost == diskWarm.search.eval.cost ? "yes" : "NO");
}

void corruptionFallback(const std::string& dir) {
  std::printf("\n-- corruption: a damaged entry degrades to a cold compile --\n");
  DiskPlanCache disk(dir);
  for (const fs::directory_entry& de : fs::directory_iterator(dir))
    if (de.path().extension() == ".emmplan") {
      std::fstream f(de.path(), std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(static_cast<std::streamoff>(fs::file_size(de.path()) / 2));
      f.put('\x5A');
    }
  Compiler c = meCompiler();
  c.diskCache(&disk);
  auto t0 = Clock::now();
  CompileResult r = c.compile();
  double ms = msSince(t0);
  DiskPlanCache::Stats s = disk.stats();
  std::printf("  recompile  %10.2f ms  (ok: %s, disk hit: %s, rejects: %lld)\n", ms,
              r.ok ? "yes" : "NO", r.diskHit ? "yes?!" : "no", s.rejects);
}

}  // namespace

int main() {
  bench::header("Service S2: persistent on-disk plan cache",
                "ROADMAP cache sharing across processes; emmapc --cache-dir");
  const std::string dir =
      (fs::temp_directory_path() / ("emmplan_bench_" + std::to_string(::getpid()))).string();
  fs::remove_all(dir);
  tiers(dir);
  corruptionFallback(dir);
  fs::remove_all(dir);
  std::printf("\n  reading: a disk-warm start replaces the pipeline with one file read +\n"
              "  checksummed deserialization; memory-warm remains the fastest tier; a\n"
              "  corrupt entry costs one cold compile, never a failure\n");
  return 0;
}
