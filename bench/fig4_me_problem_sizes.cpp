// Figure 4: execution time of MPEG-4 Motion Estimation for various problem
// sizes — GPU without scratchpad, GPU with scratchpad, CPU.
//
// Paper setup: NVIDIA 8800 GTX, 32 thread blocks, 256 threads, W = 16,
// tile sizes (32, 16, 16, 16) from the Section-4.3 search. Expected shape:
// scratchpad version ~8x faster than DRAM-only; >100x faster than CPU.
//
// The second table exercises the compilation service in SHARED-PLAN mode:
// the whole size sweep is compiled with one kernel-family plan (problem
// sizes stay symbolic end-to-end), so exactly one cold pipeline runs and
// every further size is a bind-and-emit instantiation. The sweep FAILS
// (exit 1) on any per-size artifact/tile mismatch against an isolated cold
// compile or on a missing family hit — CI runs it as a smoke test.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "driver/backend.h"
#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "kernels/me_pipeline.h"

using namespace emm;

namespace {

void require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "FIG4 SHARED-PLAN CHECK FAILED: %s\n", what);
    std::exit(1);
  }
}

double millisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One-size ME compile through the unified pipeline (cuda backend folds the
/// problem sizes, so artifact bytes are size-specific).
CompileResult compileMe(i64 ni, i64 nj, i64 w, PlanCache* cache, double* ms) {
  Compiler c(buildMeBlock(ni, nj, w));
  c.parameters({ni, nj, w}).memoryLimitBytes(16 * 1024).backend("cuda");
  if (cache != nullptr) c.cache(cache);
  const auto t0 = std::chrono::steady_clock::now();
  CompileResult r = c.compile();
  if (ms != nullptr) *ms = millisSince(t0);
  return r;
}

}  // namespace

int main() {
  bench::header("Figure 4: Mpeg4 ME execution time vs problem size",
                "Baskaran et al. PPoPP'08, Fig. 4");
  Machine m = Machine::geforce8800gtx();

  std::printf("  %-10s %14s %14s %14s %10s %10s\n", "size", "gpu-noSmem", "gpu-smem", "cpu",
              "smem-spdp", "cpu-spdp");
  std::vector<i64> sizes = {256 << 10, 1 << 20, 2 << 20, 4 << 20, 9 << 20, 16 << 20, 64 << 20};
  for (i64 points : sizes) {
    MeConfig c;
    c.nj = 1024;
    c.ni = points / c.nj;
    c.w = 16;
    c.numBlocks = 32;
    c.numThreads = 256;
    c.subTile = {32, 16, 16, 16};

    KernelModel with = modelMe(c);
    c.useScratchpad = false;
    KernelModel without = modelMe(c);

    SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
    SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
    double cpu = simulateCpuMs(m, with.cpuOps, with.cpuMemElems);
    if (!rw.feasible || !rwo.feasible) {
      std::printf("  %-10s infeasible: %s%s\n", bench::sizeLabel(points).c_str(),
                  rw.infeasibleReason.c_str(), rwo.infeasibleReason.c_str());
      continue;
    }
    std::printf("  %-10s %14.1f %14.1f %14.1f %9.1fx %9.1fx\n",
                bench::sizeLabel(points).c_str(), rwo.milliseconds, rw.milliseconds, cpu,
                rwo.milliseconds / rw.milliseconds, cpu / rw.milliseconds);
  }
  std::printf("\n  paper reports: smem speedup ~8x over DRAM-only, >100x over CPU\n");

  // ---- Shared-plan compilation sweep (size-generic family tier) ----------
  std::printf("\n  shared-plan compilation sweep: one family plan, per-size bind-and-emit\n");
  std::printf("  %-10s %10s %10s %8s  %s\n", "size", "cold-ms", "warm-ms", "spdp",
              "tile");
  PlanCache cache;
  double coldTotal = 0, warmTotal = 0;
  std::uint64_t warmEmits = 0;
  bool first = true;
  for (i64 points : sizes) {
    const i64 nj = 1024, ni = points / nj, w = 16;
    double coldMs = 0, warmMs = 0;
    CompileResult cold = compileMe(ni, nj, w, nullptr, &coldMs);
    const std::uint64_t emitsBefore = emitterInvocations();
    CompileResult warm = compileMe(ni, nj, w, &cache, &warmMs);
    warmEmits += emitterInvocations() - emitsBefore;
    require(cold.ok && warm.ok, "compile failed");
    require(warm.artifact == cold.artifact, "per-size artifact mismatch");
    require(warm.search.subTile == cold.search.subTile, "chosen tile mismatch");
    require(warm.familyHit == !first, first ? "first size must build the family"
                                            : "missing family hit");
    require(warm.search.familyAdopted == !first, "family plan not adopted");
    require(warm.artifactBound == !first, first ? "first size must emit the record"
                                                : "warm size must bind, not re-emit");
    coldTotal += coldMs;
    warmTotal += warmMs;
    std::string tile;
    for (i64 t : warm.search.subTile) tile += (tile.empty() ? "" : ",") + std::to_string(t);
    std::printf("  %-10s %10.2f %10.2f %7.1fx  (%s)\n", bench::sizeLabel(points).c_str(),
                coldMs, warmMs, coldMs / warmMs, tile.c_str());
    first = false;
  }
  PlanCache::Stats s = cache.stats();
  require(s.familyMisses == 1, "sweep must perform exactly one cold pipeline run");
  require(s.familyHits == static_cast<i64>(sizes.size()) - 1, "family hit per warm size");
  require(warmEmits == 1, "warm sweep must invoke the emitter exactly once per family");
  std::printf("  sweep totals: %.1f ms cold vs %.1f ms shared-plan (%.1fx); "
              "%lld family hits / %lld misses; %llu artifact emitted for %zu sizes\n",
              coldTotal, warmTotal, coldTotal / warmTotal, s.familyHits, s.familyMisses,
              static_cast<unsigned long long>(warmEmits), sizes.size());
  return 0;
}
