// Figure 4: execution time of MPEG-4 Motion Estimation for various problem
// sizes — GPU without scratchpad, GPU with scratchpad, CPU.
//
// Paper setup: NVIDIA 8800 GTX, 32 thread blocks, 256 threads, W = 16,
// tile sizes (32, 16, 16, 16) from the Section-4.3 search. Expected shape:
// scratchpad version ~8x faster than DRAM-only; >100x faster than CPU.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kernels/me_pipeline.h"

using namespace emm;

int main() {
  bench::header("Figure 4: Mpeg4 ME execution time vs problem size",
                "Baskaran et al. PPoPP'08, Fig. 4");
  Machine m = Machine::geforce8800gtx();

  std::printf("  %-10s %14s %14s %14s %10s %10s\n", "size", "gpu-noSmem", "gpu-smem", "cpu",
              "smem-spdp", "cpu-spdp");
  std::vector<i64> sizes = {256 << 10, 1 << 20, 2 << 20, 4 << 20, 9 << 20, 16 << 20, 64 << 20};
  for (i64 points : sizes) {
    MeConfig c;
    c.nj = 1024;
    c.ni = points / c.nj;
    c.w = 16;
    c.numBlocks = 32;
    c.numThreads = 256;
    c.subTile = {32, 16, 16, 16};

    KernelModel with = modelMe(c);
    c.useScratchpad = false;
    KernelModel without = modelMe(c);

    SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
    SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
    double cpu = simulateCpuMs(m, with.cpuOps, with.cpuMemElems);
    if (!rw.feasible || !rwo.feasible) {
      std::printf("  %-10s infeasible: %s%s\n", bench::sizeLabel(points).c_str(),
                  rw.infeasibleReason.c_str(), rwo.infeasibleReason.c_str());
      continue;
    }
    std::printf("  %-10s %14.1f %14.1f %14.1f %9.1fx %9.1fx\n",
                bench::sizeLabel(points).c_str(), rwo.milliseconds, rw.milliseconds, cpu,
                rwo.milliseconds / rw.milliseconds, cpu / rw.milliseconds);
  }
  std::printf("\n  paper reports: smem speedup ~8x over DRAM-only, >100x over CPU\n");
  return 0;
}
