// Figure 8: execution time of 1-D Jacobi for larger problem sizes (which
// must be tiled to fit the scratchpad) for varying tile sizes.
//
// Paper setup: 128 thread blocks, 64 threads, active scratchpad per block
// limited to 2^11 bytes; legend lists (time,space) tiles (32,64), (32,128),
// (16,256), (32,256), (64,256). The Section-4.3 search picked space 256 /
// time 32, which the measurements confirmed.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kernels/jacobi_mapped.h"

using namespace emm;

int main() {
  bench::header("Figure 8: 1-D Jacobi time for varying tile sizes (large sizes)",
                "Baskaran et al. PPoPP'08, Fig. 8");
  Machine m = Machine::geforce8800gtx();

  // (timeTile, spaceTile) pairs from the paper's legend.
  std::vector<std::pair<i64, i64>> tiles = {{32, 64}, {32, 128}, {16, 256}, {32, 256},
                                            {64, 256}};
  std::vector<i64> sizes = {64 << 10, 128 << 10, 256 << 10, 512 << 10};

  std::printf("  %-14s", "tile (Tt,S)");
  for (i64 s : sizes) std::printf(" %11s", bench::sizeLabel(s).c_str());
  std::printf("   (ms per problem size)\n");

  std::vector<double> best(sizes.size(), 1e300);
  std::vector<int> bestT(sizes.size(), -1);
  for (size_t t = 0; t < tiles.size(); ++t) {
    std::printf("  %3lld,%-9lld", tiles[t].first, tiles[t].second);
    for (size_t s = 0; s < sizes.size(); ++s) {
      JacobiConfig c;
      c.n = sizes[s];
      c.timeSteps = 4096;
      c.timeTile = tiles[t].first;
      c.spaceTile = tiles[t].second;
      c.numBlocks = 128;
      c.numThreads = 64;
      KernelModelJacobi km = jacobiMachineModel(c);
      SimResult r = simulateLaunch(m, km.launch, km.perBlock);
      if (!r.feasible) {
        std::printf(" %11s", "infeasible");
        continue;
      }
      std::printf(" %11.1f", r.milliseconds);
      if (r.milliseconds < best[s]) {
        best[s] = r.milliseconds;
        bestT[s] = static_cast<int>(t);
      }
    }
    std::printf("\n");
  }
  for (size_t s = 0; s < sizes.size(); ++s)
    if (bestT[s] >= 0)
      std::printf("  best at %-6s: tile (%lld,%lld)\n", bench::sizeLabel(sizes[s]).c_str(),
                  tiles[bestT[s]].first, tiles[bestT[s]].second);
  std::printf("\n  paper reports: space tile 256 with time tile 32 optimal\n");
  return 0;
}
