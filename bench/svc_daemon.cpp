// Service-layer benchmark: the emmapcd compile-service daemon.
//
// Drives an in-process ServiceServer over its real unix-domain socket (the
// same frames `emmapc --connect` speaks) and measures:
//  1. fresh-client warmth — client A compiles one ME size cold; a brand-new
//     client B then requests a DIFFERENT size of the same kernel family and
//     must be served warm (server-side family hit, bind-and-emit only),
//  2. sustained load — N concurrent clients (default 4) hammer the warm
//     store; reports compiles/sec plus p50/p99 round-trip latency.
//
// Correctness lines assert the fresh client's first family-member request
// was a family hit, that warm round trips replay the identical artifact,
// and that the daemon served every request without protocol errors.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "service/client.h"
#include "service/server.h"

using namespace emm;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 50;

/// The exact option set `emmapc --kernel=me --emit=cuda` would ship.
svc::CompileRequest meRequest(const std::vector<i64>& sizes) {
  IntVec params;
  buildKernelByName("me", sizes, params);
  Compiler c;
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("cuda").kernelName("me_kernel");
  svc::CompileRequest req;
  req.kernel = "me";
  req.sizes = sizes;
  req.options = c.opts();
  return req;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t at = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[at];
}

}  // namespace

int main() {
  bench::header("Service S3: compile-service daemon (emmapcd)",
                "ROADMAP shared networked plan store; emmapc --connect");
  const std::string sock = "/tmp/emm_svc_daemon_" + std::to_string(::getpid()) + ".sock";
  svc::ServiceServer server({sock, /*jobs=*/0, /*cacheDir=*/"", /*cacheCapacity=*/256});
  server.start();

  // -- 1. fresh-client warmth ------------------------------------------------
  std::printf("\n-- fresh client is served from the shared family tier --\n");
  auto t0 = Clock::now();
  svc::WireCompileReply cold;
  {
    svc::ServiceClient a(sock);
    cold = a.compile(meRequest({256, 128, 16}));
  }
  double coldMs = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  // A brand-new connection, a size the daemon has never seen: the kernel
  // FAMILY is warm, so this must be a bind-and-emit family hit.
  svc::ServiceClient b(sock);
  svc::WireCompileReply fresh = b.compile(meRequest({512, 128, 16}));
  std::printf("  cold       %10.2f ms  (client A, 256x128x16; server %s)\n", coldMs,
              cold.serverFamilyHit ? "family hit?!" : "cold compile");
  std::printf("  fresh      %10.2f ms  (client B, NEW size 512x128x16; server %.2f ms)\n",
              fresh.roundTripMillis, fresh.serverMillis);
  std::printf("  fresh client family hit: %s\n", fresh.serverFamilyHit ? "yes" : "NO");

  // Warm replay of an exact size must return the identical artifact.
  svc::WireCompileReply replay = b.compile(meRequest({512, 128, 16}));
  std::printf("  warm replay identical artifact: %s (server memory hit: %s)\n",
              replay.result.artifact == fresh.result.artifact ? "yes" : "NO",
              replay.serverCacheHit ? "yes" : "NO");

  // -- 2. sustained concurrent load ------------------------------------------
  std::printf("\n-- %d concurrent clients, %d warm compiles each --\n", kClients,
              kRequestsPerClient);
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<std::thread> threads;
  auto loadStart = Clock::now();
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      svc::ServiceClient client(sock);
      // Rotate over a small warm working set so the run measures service
      // overhead and cache replay, not pipeline time.
      const std::vector<std::vector<i64>> sizes = {
          {256, 128, 16}, {512, 128, 16}, {1024, 128, 16}, {256, 256, 16}};
      for (int i = 0; i < kRequestsPerClient; ++i) {
        svc::WireCompileReply r = client.compile(meRequest(sizes[(c + i) % sizes.size()]));
        latencies[c].push_back(r.roundTripMillis);
        if (!r.result.ok) std::printf("  REQUEST FAILED: %s\n", r.result.firstError().c_str());
      }
    });
  for (std::thread& t : threads) t.join();
  double loadSec =
      std::chrono::duration<double>(Clock::now() - loadStart).count();

  std::vector<double> all;
  for (const std::vector<double>& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const double total = static_cast<double>(all.size());
  std::printf("  throughput %10.0f compiles/sec  (%zu compiles in %.2f s)\n",
              loadSec > 0 ? total / loadSec : 0.0, all.size(), loadSec);
  std::printf("  p50        %10.2f ms\n", percentile(all, 0.50));
  std::printf("  p99        %10.2f ms\n", percentile(all, 0.99));

  svc::WireStats s = server.stats();
  std::printf("\n  daemon: %lld connections, %lld requests, %lld compiles "
              "(%lld errors, %lld protocol errors)\n",
              s.connections, s.requests, s.compiles, s.compileErrors, s.protocolErrors);
  std::printf("  store : memory %lld hits / %lld misses; family %lld hits / %lld misses\n",
              s.memory.hits, s.memory.misses, s.memory.familyHits, s.memory.familyMisses);
  const bool clean = s.protocolErrors == 0 && s.compileErrors == 0;
  std::printf("  fresh-client family hit: %s; all requests served cleanly: %s\n",
              fresh.serverFamilyHit ? "yes" : "NO", clean ? "yes" : "NO");
  server.stop();
  return fresh.serverFamilyHit && clean ? 0 : 1;
}
