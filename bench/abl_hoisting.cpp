// Ablation A2: hoisting of data-movement code (Section 4.2) on/off.
//
// For the ME kernel, the out-array buffer does not depend on the k/l tile
// origins, so its copies hoist above those loops. This ablation compares
// the Section-4.3 cost, the interpreter-measured copy counts, and the
// simulated time with and without hoisting — both variants driven through
// emm::Compiler.
#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/me_pipeline.h"

using namespace emm;

int main() {
  bench::header("Ablation A2: data-movement hoisting (Section 4.2) on/off",
                "Section 4.2 placement optimization");

  // Cost-model view at paper scale: with explicit tile sizes the driver's
  // tilesearch pass evaluates the Section-4.3 objective instead of
  // searching, which is exactly the number this ablation compares.
  {
    auto evaluate = [](bool hoist) {
      return Compiler(buildMeBlock(8192, 1024, 16))
          .parameters({8192, 1024, 16})
          .memoryLimitBytes(4096 * 4)
          .innerProcs(32)
          .tileSizes({32, 16, 8, 8})
          .hoistCopies(hoist)
          .skipPass("tiling")
          .skipPass("smem")
          .skipPass("codegen")
          .compile();
    };
    CompileResult on = evaluate(true);
    CompileResult off = evaluate(false);
    std::printf("  cost model (tile 32,16,8,8):  hoisted %.3g  unhoisted %.3g  (%.2fx)\n",
                on.search.eval.cost, off.search.eval.cost,
                off.search.eval.cost / on.search.eval.cost);
    for (const auto& t : on.search.eval.terms)
      std::printf("    hoisted   %-8s occurrences %-8lld level %d\n", t.name.c_str(),
                  t.occurrences, t.hoistLevel);
    for (const auto& t : off.search.eval.terms)
      std::printf("    unhoisted %-8s occurrences %-8lld level %d\n", t.name.c_str(),
                  t.occurrences, t.hoistLevel);
  }

  // Interpreter view at a small size (real executed copies).
  {
    MeConfig c;
    c.ni = 32;
    c.nj = 16;
    c.w = 8;
    c.numBlocks = 4;
    c.numThreads = 32;
    c.subTile = {8, 8, 4, 4};
    MePipeline on = buildMePipeline(c);
    c.hoistCopies = false;
    MePipeline off = buildMePipeline(c);

    auto run = [](MePipeline& p) {
      ArrayStore store(p.block.arrays);
      store.fillAllPattern(5);
      IntVec ext = p.paramValues;
      ext.resize(p.kernel.analysis.tileBlock->paramNames.size(), 0);
      return executeCodeUnit(p.kernel.unit, ext, store);
    };
    MemTrace tOn = run(on), tOff = run(off);
    std::printf("\n  interpreter (32x16, w=8): copies %lld vs %lld, global reads %lld vs %lld\n",
                tOn.copyElements, tOff.copyElements, tOn.globalReads, tOff.globalReads);
  }
  std::printf("\n  reading: hoisting removes the out-buffer copies from the k/l sub-tile\n"
              "  loops, cutting copy executions and the P*S sync term\n");
  return 0;
}
