// Figure 7: execution time of 1-D Jacobi (small problem sizes that fit the
// device's total scratchpad) for varying numbers of thread blocks.
//
// Paper setup: N in {8k, 16k, 32k}, T = 4096, time tile 32, 64 threads per
// block. Expected shape: U-curve — time falls as blocks add parallelism,
// then rises once the per-band inter-block synchronization cost dominates
// the shrinking per-block computation. The paper picked 128 blocks from
// this experiment.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kernels/jacobi_mapped.h"

using namespace emm;

int main() {
  bench::header("Figure 7: 1-D Jacobi time vs number of thread blocks (small sizes)",
                "Baskaran et al. PPoPP'08, Fig. 7");
  Machine m = Machine::geforce8800gtx();

  std::vector<i64> ns = {8 << 10, 16 << 10, 32 << 10};
  std::vector<i64> blocks = {16, 32, 48, 64, 96, 128, 160, 192, 224, 250};

  std::printf("  %-8s", "blocks");
  for (i64 n : ns) std::printf(" %12s", ("N=" + bench::sizeLabel(n)).c_str());
  std::printf("   (ms)\n");

  std::vector<double> best(ns.size(), 1e300);
  std::vector<i64> bestB(ns.size(), 0);
  for (i64 b : blocks) {
    std::printf("  %-8lld", b);
    for (size_t i = 0; i < ns.size(); ++i) {
      JacobiConfig c;
      c.n = ns[i];
      c.timeSteps = 4096;
      c.timeTile = 32;
      // Small sizes: the space tile is the per-block share of the problem.
      c.spaceTile = std::max<i64>(1, (c.n - 2 + b - 1) / b);
      c.numBlocks = b;
      c.numThreads = 64;
      KernelModelJacobi km = jacobiMachineModel(c);
      SimResult r = simulateLaunch(m, km.launch, km.perBlock);
      if (!r.feasible) {
        std::printf(" %12s", "infeasible");
        continue;
      }
      std::printf(" %12.2f", r.milliseconds);
      if (r.milliseconds < best[i]) {
        best[i] = r.milliseconds;
        bestB[i] = b;
      }
    }
    std::printf("\n");
  }
  for (size_t i = 0; i < ns.size(); ++i)
    std::printf("  minimum for N=%-5s at %lld blocks (%.2f ms)\n",
                bench::sizeLabel(ns[i]).c_str(), bestB[i], best[i]);
  std::printf("\n  paper reports: time falls with added blocks then rises when sync cost\n"
              "  dominates; 128 blocks chosen for the large-size experiments\n");
  return 0;
}
