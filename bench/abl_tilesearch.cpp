// Ablation A3: tile-size search solver vs exhaustive oracle.
//
// Validates that the multi-start coordinate-descent solver (the SQP+rounding
// stand-in) finds the oracle optimum with far fewer evaluations, on both the
// ME and matmul cost surfaces.
#include <cstdio>

#include "bench_util.h"
#include "kernels/blocks.h"
#include "tilesearch/tilesearch.h"

using namespace emm;

namespace {

void compare(const char* name, const ProgramBlock& block, const TileSearchOptions& opts,
             const SmemOptions& smem) {
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  TileSearchResult fast = searchTileSizes(block, plan, opts, smem);
  TileSearchResult oracle = exhaustiveTileSearch(block, plan, opts, smem);
  std::printf("  %-8s solver: cost %-10.4g evals %-5d  oracle: cost %-10.4g evals %-5d %s\n",
              name, fast.eval.cost, fast.evaluations, oracle.eval.cost, oracle.evaluations,
              fast.eval.cost == oracle.eval.cost ? "MATCH" : "MISMATCH");
  if (fast.eval.feasible) {
    std::printf("    chosen tile:");
    for (i64 t : fast.subTile) std::printf(" %lld", t);
    std::printf("  footprint %lld elems\n", fast.eval.footprint);
  }
}

}  // namespace

int main() {
  bench::header("Ablation A3: tile-size search vs exhaustive oracle", "Section 4.3 solver");
  {
    ProgramBlock block = buildMeBlock(512, 256, 16);
    SmemOptions smem;
    smem.sampleParams = {512, 256, 16};
    TileSearchOptions opts;
    opts.paramValues = {512, 256, 16};
    opts.memLimitElems = 4096;
    opts.innerProcs = 32;
    opts.candidates = {{4, 8, 16, 32, 64}, {4, 8, 16, 32}, {4, 8, 16}, {4, 8, 16}};
    compare("ME", block, opts, smem);
  }
  {
    ProgramBlock block = buildMatmulBlock(256, 256, 256);
    SmemOptions smem;
    smem.sampleParams = {256, 256, 256};
    TileSearchOptions opts;
    opts.paramValues = {256, 256, 256};
    opts.memLimitElems = 4096;
    opts.innerProcs = 32;
    opts.candidates = {{4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}};
    compare("matmul", block, opts, smem);
  }
  return 0;
}
