// Ablation A3: tile-size search solver vs exhaustive oracle.
//
// Validates that the multi-start coordinate-descent solver (the SQP+rounding
// stand-in) finds the oracle optimum with far fewer evaluations, on both the
// ME and matmul cost surfaces. Both solvers run through emm::Compiler; only
// TileSearchMode differs.
#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"
#include "kernels/blocks.h"

using namespace emm;

namespace {

CompileResult searchOnly(const ProgramBlock& block, const IntVec& params,
                         std::vector<std::vector<i64>> candidates, bool exhaustive) {
  return Compiler(block)
      .parameters(params)
      .memoryLimitBytes(4096 * 4)
      .innerProcs(32)
      .tileCandidates(std::move(candidates))
      .exhaustiveSearch(exhaustive)
      .skipPass("tiling")
      .skipPass("smem")
      .skipPass("codegen")
      .compile();
}

void compare(const char* name, const ProgramBlock& block, const IntVec& params,
             const std::vector<std::vector<i64>>& candidates) {
  CompileResult fast = searchOnly(block, params, candidates, false);
  CompileResult oracle = searchOnly(block, params, candidates, true);
  std::printf("  %-8s solver: cost %-10.4g evals %-5d  oracle: cost %-10.4g evals %-5d %s\n",
              name, fast.search.eval.cost, fast.search.evaluations, oracle.search.eval.cost,
              oracle.search.evaluations,
              fast.search.eval.cost == oracle.search.eval.cost ? "MATCH" : "MISMATCH");
  if (fast.search.eval.feasible) {
    std::printf("    chosen tile:");
    for (i64 t : fast.search.subTile) std::printf(" %lld", t);
    std::printf("  footprint %lld elems\n", fast.search.eval.footprint);
  }
}

}  // namespace

int main() {
  bench::header("Ablation A3: tile-size search vs exhaustive oracle", "Section 4.3 solver");
  compare("ME", buildMeBlock(512, 256, 16), {512, 256, 16},
          {{4, 8, 16, 32, 64}, {4, 8, 16, 32}, {4, 8, 16}, {4, 8, 16}});
  compare("matmul", buildMatmulBlock(256, 256, 256), {256, 256, 256},
          {{4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}});
  return 0;
}
