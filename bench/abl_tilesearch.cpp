// Ablation A3: tile-size search solver vs exhaustive oracle, and the
// parametric evaluator vs the concrete per-candidate analysis.
//
// Validates that the multi-start coordinate-descent solver (the SQP+rounding
// stand-in) finds the oracle optimum with far fewer evaluations, on both the
// ME and matmul cost surfaces, and that the parametric tile plan (Section-3
// analysis built once, symbolically) reproduces the concrete evaluator's
// choice while cutting the tilesearch pass time. Both solvers run through
// emm::Compiler; only TileSearchMode / parametricTileAnalysis differ.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"
#include "kernels/blocks.h"

using namespace emm;

namespace {

CompileResult searchOnly(const ProgramBlock& block, const IntVec& params,
                         std::vector<std::vector<i64>> candidates, bool exhaustive,
                         bool parametric = true) {
  Compiler compiler(block);
  compiler.parameters(params)
      .memoryLimitBytes(4096 * 4)
      .innerProcs(32)
      .tileCandidates(std::move(candidates))
      .exhaustiveSearch(exhaustive)
      .skipPass("tiling")
      .skipPass("smem")
      .skipPass("codegen");
  compiler.opts().parametricTileAnalysis = parametric;
  return compiler.compile();
}

/// Best-of-N tilesearch pass time for one evaluator mode.
double searchMillis(const ProgramBlock& block, const IntVec& params,
                    const std::vector<std::vector<i64>>& candidates, bool exhaustive,
                    bool parametric, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    CompileResult r = searchOnly(block, params, candidates, exhaustive, parametric);
    if (const PassTiming* t = r.timing("tilesearch")) best = std::min(best, t->millis);
  }
  return best;
}

void evaluatorAblation(const char* name, const ProgramBlock& block, const IntVec& params,
                       const std::vector<std::vector<i64>>& candidates, bool exhaustive) {
  CompileResult para = searchOnly(block, params, candidates, exhaustive, true);
  CompileResult conc = searchOnly(block, params, candidates, exhaustive, false);
  double paraMs = searchMillis(block, params, candidates, exhaustive, true);
  double concMs = searchMillis(block, params, candidates, exhaustive, false);
  bool sameTile = para.search.subTile == conc.search.subTile;
  std::printf("  %-8s %-10s parametric %8.2f ms  concrete %8.2f ms  speedup %5.2fx  %s\n",
              name, exhaustive ? "(oracle)" : "(solver)", paraMs, concMs,
              paraMs > 0 ? concMs / paraMs : 0.0,
              sameTile && para.search.parametric ? "SAME TILE" : "MISMATCH");
}

void compare(const char* name, const ProgramBlock& block, const IntVec& params,
             const std::vector<std::vector<i64>>& candidates) {
  CompileResult fast = searchOnly(block, params, candidates, false);
  CompileResult oracle = searchOnly(block, params, candidates, true);
  std::printf("  %-8s solver: cost %-10.4g evals %-5d  oracle: cost %-10.4g evals %-5d %s\n",
              name, fast.search.eval.cost, fast.search.evaluations, oracle.search.eval.cost,
              oracle.search.evaluations,
              fast.search.eval.cost == oracle.search.eval.cost ? "MATCH" : "MISMATCH");
  if (fast.search.eval.feasible) {
    std::printf("    chosen tile:");
    for (i64 t : fast.search.subTile) std::printf(" %lld", t);
    std::printf("  footprint %lld elems\n", fast.search.eval.footprint);
  }
}

}  // namespace

int main() {
  bench::header("Ablation A3: tile-size search vs exhaustive oracle", "Section 4.3 solver");
  compare("ME", buildMeBlock(512, 256, 16), {512, 256, 16},
          {{4, 8, 16, 32, 64}, {4, 8, 16, 32}, {4, 8, 16}, {4, 8, 16}});
  compare("matmul", buildMatmulBlock(256, 256, 256), {256, 256, 256},
          {{4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}});

  std::printf("\n  parametric evaluator vs concrete per-candidate analysis\n");
  evaluatorAblation("ME", buildMeBlock(512, 256, 16), {512, 256, 16},
                    {{4, 8, 16, 32, 64}, {4, 8, 16, 32}, {4, 8, 16}, {4, 8, 16}}, true);
  evaluatorAblation("ME", buildMeBlock(512, 256, 16), {512, 256, 16},
                    {{4, 8, 16, 32, 64}, {4, 8, 16, 32}, {4, 8, 16}, {4, 8, 16}}, false);
  evaluatorAblation("matmul", buildMatmulBlock(256, 256, 256), {256, 256, 256},
                    {{4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}, {4, 8, 16, 32, 64}}, true);
  return 0;
}
