// Figure 6: execution time of the Mpeg4 ME kernel for varying tile sizes.
//
// Paper setup: 32 blocks, 256 threads, W = 16, problem sizes 8M..64M; the
// Section-4.3 search picked (32, 16, 16, 16), which beat the alternatives.
// This driver replays the paper's tile-size legend, prints the simulated
// time for each, and runs the actual tile-size search to confirm it selects
// the winning configuration.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "driver/compiler.h"
#include "kernels/me_pipeline.h"

using namespace emm;

int main() {
  bench::header("Figure 6: Mpeg4 ME execution time for varying tile sizes",
                "Baskaran et al. PPoPP'08, Fig. 6");
  Machine m = Machine::geforce8800gtx();

  std::vector<std::vector<i64>> tiles = {{8, 8, 16, 16},   {16, 8, 16, 16}, {16, 16, 16, 16},
                                         {32, 16, 16, 16}, {32, 32, 16, 16}, {64, 16, 16, 16}};
  std::vector<i64> sizes = {8 << 20, 16 << 20, 32 << 20, 64 << 20};

  std::printf("  %-16s", "tile (i,j,k,l)");
  for (i64 s : sizes) std::printf(" %11s", bench::sizeLabel(s).c_str());
  std::printf("   (ms per problem size)\n");

  std::vector<double> bestMs(sizes.size(), 1e300);
  std::vector<int> bestTile(sizes.size(), -1);
  for (size_t t = 0; t < tiles.size(); ++t) {
    std::printf("  %2lld,%2lld,%2lld,%2lld      ", tiles[t][0], tiles[t][1], tiles[t][2],
                tiles[t][3]);
    for (size_t s = 0; s < sizes.size(); ++s) {
      MeConfig c;
      c.nj = 1024;
      c.ni = sizes[s] / c.nj;
      c.w = 16;
      c.numBlocks = 32;
      c.numThreads = 256;
      c.subTile = tiles[t];
      KernelModel km = modelMe(c);
      SimResult r = simulateLaunch(m, km.launch, km.perBlock);
      if (!r.feasible) {
        std::printf(" %11s", "infeasible");
        continue;
      }
      std::printf(" %11.1f", r.milliseconds);
      if (r.milliseconds < bestMs[s]) {
        bestMs[s] = r.milliseconds;
        bestTile[s] = static_cast<int>(t);
      }
    }
    std::printf("\n");
  }
  for (size_t s = 0; s < sizes.size(); ++s)
    if (bestTile[s] >= 0)
      std::printf("  best at %-6s: tile (%lld,%lld,%lld,%lld)\n",
                  bench::sizeLabel(sizes[s]).c_str(), tiles[bestTile[s]][0],
                  tiles[bestTile[s]][1], tiles[bestTile[s]][2], tiles[bestTile[s]][3]);

  // The real tile-size search over the same candidate grid (Section 4.3),
  // through the unified driver (codegen stages skipped: only the search
  // outcome is needed here).
  {
    Compiler compiler(buildMeBlock(8192, 1024, 16));
    compiler.parameters({8192, 1024, 16})
        .memoryLimitBytes(16 * 1024)  // 16 KB of 4-byte elements
        .innerProcs(32)               // warp size = Plow (Section 5)
        .tileCandidates({{8, 16, 32, 64}, {8, 16, 32}, {16}, {16}})
        .skipPass("tiling")
        .skipPass("smem")
        .skipPass("codegen");
    compiler.opts().syncCost = Machine::geforce8800gtx().syncBaseCycles;
    compiler.opts().transferCost = 4;
    CompileResult r = compiler.compile();
    if (r.ok && r.search.eval.feasible)
      std::printf("\n  tile-size search (Sec 4.3) picks (%lld,%lld,%lld,%lld), footprint %lld "
                  "elems, %d evaluations\n",
                  r.search.subTile[0], r.search.subTile[1], r.search.subTile[2],
                  r.search.subTile[3], r.search.eval.footprint, r.search.evaluations);
  }
  std::printf("  paper reports: (32,16,16,16) chosen by the search performs best\n");
  return 0;
}
