// Extension E3: double-buffering headroom.
//
// The paper's generated code copies synchronously (move-in, barrier,
// compute, barrier, move-out); Section 4.3 notes that overlap of
// computation with loads/stores is poor when too few inner-level processes
// run. This driver sweeps the machine model's copy/compute overlap factor
// to bound what software pipelining of the scratchpad copies could add on
// top of the paper's scheme.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kernels/jacobi_mapped.h"
#include "kernels/me_pipeline.h"

using namespace emm;

int main() {
  bench::header("Extension E3: double-buffering (copy/compute overlap) headroom",
                "software pipelining on top of the Section-3 copies");

  std::printf("  overlap   ME 8M (ms)   Jacobi 256k (ms)\n");
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    Machine m = Machine::geforce8800gtx();
    m.copyComputeOverlap = overlap;

    MeConfig me;
    me.ni = 8192;
    me.nj = 1024;
    me.w = 16;
    me.subTile = {32, 16, 16, 16};
    KernelModel kme = modelMe(me);
    SimResult rme = simulateLaunch(m, kme.launch, kme.perBlock);

    JacobiConfig jc;
    jc.n = 256 << 10;
    jc.timeSteps = 4096;
    jc.timeTile = 32;
    jc.spaceTile = 256;
    jc.numBlocks = 128;
    jc.numThreads = 64;
    KernelModelJacobi kj = jacobiMachineModel(jc);
    SimResult rj = simulateLaunch(m, kj.launch, kj.perBlock);

    std::printf("  %5.2f   %10.1f   %14.1f\n", overlap,
                rme.feasible ? rme.milliseconds : -1.0, rj.feasible ? rj.milliseconds : -1.0);
  }
  std::printf("\n  reading: the scratchpad versions are compute/scratchpad bound, so\n"
              "  hiding copies buys a bounded improvement -- consistent with the paper\n"
              "  treating synchronous copies as acceptable\n");
  return 0;
}
