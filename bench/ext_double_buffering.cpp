// Extension E3: the double-buffered DMA pipeline on the Cell-like target.
//
// The paper's generated code copies synchronously (move-in, fence, compute,
// fence, move-out); Section 4.3 notes the overlap this leaves on the table.
// This driver compiles ME for the Cell backend twice — synchronous and with
// CompileOptions::doubleBuffer — checks the emitted artifacts structurally
// (tag-rotated prefetch pipeline vs plain fences, plus the small-budget
// fallback), and then costs both schedules with the machine model: the
// pipelined schedule realizes the machine's copy/compute overlap while the
// synchronous one forfeits it. Double-buffering halves the tile budget, so
// the pipelined variant pays slightly more halo traffic for the transfer
// time it hides.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "driver/compiler.h"
#include "kernels/me_pipeline.h"

using namespace emm;

namespace {

constexpr i64 kNi = 2048, kNj = 1024, kW = 16;
constexpr i64 kLocalStore = 256 * 1024;

CompileResult compileCellMe(bool doubleBuffer) {
  Compiler c(buildMeBlock(kNi, kNj, kW));
  c.parameters({kNi, kNj, kW})
      .backend("cell")
      .memoryLimitBytes(kLocalStore)
      .innerProcs(4)
      .tileCandidates({{16, 32, 64, 128}, {16, 32, 64, 128}, {16}, {16}});
  c.opts().doubleBuffer = doubleBuffer;
  return c.compile();
}

/// Forces the emitter's fallback: explicit tiles sized so one copy of the
/// buffers fits the local store but the rotated pair does not.
CompileResult compileOversizedDb() {
  Compiler c(buildMeBlock(kNi, kNj, kW));
  c.parameters({kNi, kNj, kW})
      .backend("cell")
      .memoryLimitBytes(kLocalStore)
      .innerProcs(4)
      .tileSizes({128, 128, 16, 16});
  c.opts().doubleBuffer = true;
  return c.compile();
}

bool has(const std::string& artifact, const char* marker) {
  return artifact.find(marker) != std::string::npos;
}

/// Machine-model time of one schedule at the given overlap factor. The
/// synchronous schedule cannot overlap, so it is always costed at 0.
double scheduleMs(const CompileResult& r, double overlap) {
  Machine m = Machine::cellLike();
  m.copyComputeOverlap = overlap;
  MeConfig c;
  c.ni = kNi;
  c.nj = kNj;
  c.w = kW;
  c.numBlocks = m.numSMs * 2;
  c.numThreads = 1;  // one context per SPE
  c.subTile = r.search.subTile;
  KernelModel km = modelMe(c);
  SimResult sim = simulateLaunch(m, km.launch, km.perBlock);
  return sim.feasible ? sim.milliseconds : -1.0;
}

}  // namespace

int main() {
  bench::header("Extension E3: double-buffered DMA pipeline (Cell target)",
                "software pipelining of the Section-3 copies, emitted for real");

  CompileResult sync = compileCellMe(false);
  CompileResult db = compileCellMe(true);
  CompileResult tight = compileOversizedDb();
  if (!sync.ok || !db.ok || !tight.ok) {
    std::printf("  compile failed: %s%s%s\n", sync.firstError().c_str(),
                db.firstError().c_str(), tight.firstError().c_str());
    return 1;
  }

  const bool pipelined = has(db.artifact, "software-pipelined") &&
                         has(db.artifact, "double-buffered") &&
                         has(db.artifact, "emm_db = 1 - emm_db");
  const bool syncPlain = !has(sync.artifact, "emm_db") &&
                         has(sync.artifact, "mfc_read_tag_status_all");
  const bool fellBack = has(tight.artifact, "synchronous schedule emitted") &&
                        !has(tight.artifact, "software-pipelined");
  std::printf("  artifact checks: pipelined[%s]  synchronous[%s]  oversized-fallback[%s]\n",
              pipelined ? "ok" : "FAIL", syncPlain ? "ok" : "FAIL", fellBack ? "ok" : "FAIL");
  std::printf("  tiles: sync (%lld,%lld,%lld,%lld) full budget, pipelined "
              "(%lld,%lld,%lld,%lld) half budget\n\n",
              sync.search.subTile[0], sync.search.subTile[1], sync.search.subTile[2],
              sync.search.subTile[3], db.search.subTile[0], db.search.subTile[1],
              db.search.subTile[2], db.search.subTile[3]);

  // Two baselines. "sync same-tile" is the schedule comparison proper: the
  // emitter's fallback for this exact kernel (identical tiles and traffic,
  // fences instead of prefetch), so the delta is purely the hidden DMA time.
  // "sync full-tile" is the end-to-end compiler comparison: without
  // doubleBuffer the search keeps the whole store, so its bigger tiles
  // amortize halos better and the pipeline must out-hide that head start.
  std::printf("  overlap   sync same-tile   pipelined   speedup   | sync full-tile   speedup\n");
  bool wins = true;
  const double tSyncSame = scheduleMs(db, 0.0);
  const double tSyncFull = scheduleMs(sync, 0.0);
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    const double tDb = scheduleMs(db, overlap);
    std::printf("  %5.2f   %11.1f ms   %6.1f ms   %6.2fx   |    %8.1f ms   %6.2fx\n", overlap,
                tSyncSame, tDb, tSyncSame / tDb, tSyncFull, tSyncFull / tDb);
    if (overlap > 0.0 && tDb >= tSyncSame) wins = false;
    if (overlap == 0.0 && tDb != tSyncSame) wins = false;
  }
  std::printf("\n  reading: the emitted pipeline prefetches tile i+1 on the opposite DMA\n"
              "  tag while computing tile i, so any overlap the memory system offers\n"
              "  turns into time; against the full-store synchronous tiles the halved\n"
              "  budget costs halo traffic first, and overlap must repay it\n");
  if (!(pipelined && syncPlain && fellBack && wins)) {
    std::printf("  ** CHECK FAILED **\n");
    return 1;
  }
  return 0;
}
