// Tests for the bank-conflict-aware buffer packing planner
// (smem/buffer_layout.h), the static conflict counter
// (gpusim/bank_conflicts.h) that grades its layouts, and the Cell
// double-buffer emitter that consumes the halved budget. The planner
// invariants — disjoint bank-aligned placements, symbolic footprints that
// match concrete enumeration at randomized sizes and tiles, unpadded
// fallback under budget pressure — are checked on real compiled units, not
// synthetic buffers, so the formulas are exercised with the tile-origin
// parameters the pipeline actually produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "gpusim/bank_conflicts.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "smem/buffer_layout.h"

namespace emm {
namespace {

struct MeCase {
  i64 ni, nj, w;
  IntVec tile;
};

/// Size/tile combinations chosen so natural pitches hit several residues
/// mod the bank count (multiples, coprimes, shared factors).
const std::vector<MeCase> kMeCases = {
    {64, 64, 16, {32, 16, 16, 4}},
    {48, 96, 8, {16, 32, 8, 8}},
    {80, 64, 16, {16, 16, 16, 16}},
    {96, 48, 8, {32, 48, 8, 4}},
};

CompileResult compileMe(const MeCase& c, bool packed = true) {
  Compiler comp(buildMeBlock(c.ni, c.nj, c.w));
  comp.parameters({c.ni, c.nj, c.w}).tileSizes(c.tile).backend("cuda");
  comp.opts().packBuffers = packed;
  return comp.compile();
}

/// Sample binding of every source parameter (problem sizes, origins zero).
IntVec sampleParams(const CodeUnit& unit, const IntVec& params) {
  IntVec sample = params;
  sample.resize(unit.source->paramNames.size(), 0);
  return sample;
}

std::vector<std::pair<std::string, i64>> sampleEnv(const CodeUnit& unit, const IntVec& sample) {
  std::vector<std::pair<std::string, i64>> env;
  for (size_t j = 0; j < unit.source->paramNames.size(); ++j)
    env.emplace_back(unit.source->paramNames[j], sample[j]);
  return env;
}

TEST(BufferLayoutPlanner, PlacementsAreDisjointBankAlignedAndInsideTheArena) {
  for (const MeCase& c : kMeCases) {
    SCOPED_TRACE(c.ni);
    CompileResult r = compileMe(c);
    ASSERT_TRUE(r.ok) << r.firstError();
    ASSERT_TRUE(r.bufferLayout.has_value());
    const BufferLayout& lo = *r.bufferLayout;
    const IntVec sample = sampleParams(*r.unit(), {c.ni, c.nj, c.w});

    std::vector<std::pair<i64, i64>> spans;  // [offset, end)
    for (const BufferLayoutEntry& e : lo.buffers) {
      const i64 off = e.offsetElems->eval(sample);
      const i64 len = e.footprintElems->eval(sample);
      ASSERT_GE(len, 0);
      // In the packed arena (no fallback note) base offsets land on
      // bank-row multiples, so packing never rotates a buffer's bank
      // assignment; the flat fallback packs back to back instead.
      if (lo.note.empty()) EXPECT_EQ(off % lo.bank.banks, 0) << e.name;
      spans.emplace_back(off, off + len);
    }
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].second, spans[i].first) << "overlap at buffer " << i;
    EXPECT_LE(spans.back().second, lo.totalElems->eval(sample));
  }
}

TEST(BufferLayoutPlanner, SymbolicFootprintsMatchConcreteEnumeration) {
  for (const MeCase& c : kMeCases) {
    SCOPED_TRACE(c.ni);
    CompileResult r = compileMe(c);
    ASSERT_TRUE(r.ok) << r.firstError();
    ASSERT_TRUE(r.bufferLayout.has_value());
    const BufferLayout& lo = *r.bufferLayout;
    const CodeUnit& unit = *r.unit();
    const IntVec sample = sampleParams(unit, {c.ni, c.nj, c.w});
    const auto env = sampleEnv(unit, sample);

    // Each buffer's footprint formula must equal the product of the padded
    // extents the unit allocates (the interpreter and every emitter use
    // LocalBuffer::paddedExtent, so this ties formula to allocation).
    ASSERT_EQ(lo.buffers.size(), unit.localBuffers.size());
    for (size_t i = 0; i < lo.buffers.size(); ++i) {
      const LocalBuffer& b = unit.localBuffers[i];
      i64 concrete = 1;
      for (int d = 0; d < b.ndim; ++d) concrete = mulChecked(concrete, b.paddedExtent(d, env));
      EXPECT_EQ(lo.buffers[i].footprintElems->eval(sample), concrete) << b.name;
    }
    // The interval enclosure at the point box agrees with the point value.
    std::vector<SymInterval> box;
    for (i64 v : sample) box.push_back({v, v});
    const SymInterval total = lo.totalElemsInterval(box);
    EXPECT_EQ(total.lo, total.hi);
    EXPECT_EQ(total.lo, lo.totalElems->eval(sample));
  }
}

TEST(BufferLayoutPlanner, BudgetOverflowFallsBackToUnpadded) {
  const MeCase c = kMeCases[0];
  CompileResult r = compileMe(c);
  ASSERT_TRUE(r.ok) << r.firstError();
  ASSERT_TRUE(r.bufferLayout.has_value());
  const IntVec sample = sampleParams(*r.unit(), {c.ni, c.nj, c.w});
  const i64 paddedBytes = r.bufferLayout->totalBytes(sample);
  ASSERT_GT(r.bufferLayout->paddingBytes(sample), 0) << "case no longer pads; pick another";

  // Re-plan the same unit with a budget one byte short of the padded
  // arena: the planner must fall back to the unpadded layout (zero pads,
  // a smaller arena) and say why, never exceed the budget with padding.
  BufferLayoutOptions lo;
  lo.bank = r.bufferLayout->bank;
  lo.elementBytes = r.bufferLayout->elementBytes;
  lo.paramValues = {c.ni, c.nj, c.w};
  lo.memLimitBytes = paddedBytes - 1;
  BufferLayout tight = planBufferLayout(*r.unit(), lo);
  EXPECT_FALSE(tight.padded);
  EXPECT_FALSE(tight.note.empty());
  for (const BufferLayoutEntry& e : tight.buffers) EXPECT_EQ(e.rowPadElems, 0) << e.name;
  EXPECT_LT(tight.totalBytes(sample), paddedBytes);
}

TEST(BankConflicts, PaddingEliminatesWarpSerializationOnMe) {
  const MeCase c = kMeCases[0];
  CompileResult flat = compileMe(c, /*packed=*/false);
  CompileResult packed = compileMe(c, /*packed=*/true);
  ASSERT_TRUE(flat.ok && packed.ok);

  const IntVec ext = sampleParams(*flat.unit(), {c.ni, c.nj, c.w});
  BankConflictOptions bc;  // G80: 16 banks, 16-lane half-warps
  const BankConflictStats before = countBankConflicts(*flat.unit(), ext, bc);
  const BankConflictStats after = countBankConflicts(*packed.unit(), ext, bc);
  EXPECT_GT(before.excessCycles(), 0) << "unpadded ME no longer conflicts; test is vacuous";
  EXPECT_EQ(after.excessCycles(), 0);
  EXPECT_EQ(after.conflictedAccesses, 0);
  // Same instruction stream either way: padding changes strides, not code.
  EXPECT_EQ(before.warpAccesses, after.warpAccesses);

  // The oracle: padded and unpadded units compute byte-identical results.
  ArrayStore a(flat.input->arrays), b(packed.input->arrays);
  a.fillAllPattern(17);
  b.fillAllPattern(17);
  executeCodeUnit(*flat.unit(), ext, a);
  executeCodeUnit(*packed.unit(), ext, b);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);
}

TEST(BankConflicts, UnbankedStoreNeverConflicts) {
  const MeCase c = kMeCases[0];
  CompileResult flat = compileMe(c, /*packed=*/false);
  ASSERT_TRUE(flat.ok);
  BankConflictOptions bc;
  bc.banks = 1;  // Cell-style unbanked local store
  const BankConflictStats s =
      countBankConflicts(*flat.unit(), sampleParams(*flat.unit(), {c.ni, c.nj, c.w}), bc);
  EXPECT_EQ(s.excessCycles(), 0);
  EXPECT_EQ(s.conflictedAccesses, 0);
}

// ---- Cell double-buffer emitter. ----

CompileResult compileCellMe(bool doubleBuffer, IntVec tile = {}) {
  Compiler c(buildMeBlock(256, 256, 16));
  c.parameters({256, 256, 16}).backend("cell").memoryLimitBytes(256 * 1024).innerProcs(4);
  if (tile.empty())
    c.tileCandidates({{16, 32, 64}, {16, 32, 64}, {16}, {8, 16}});
  else
    c.tileSizes(tile);
  c.opts().doubleBuffer = doubleBuffer;
  return c.compile();
}

bool contains(const std::string& s, const char* marker) {
  return s.find(marker) != std::string::npos;
}

TEST(CellDoubleBuffer, EmitsTagRotatedPipeline) {
  CompileResult r = compileCellMe(true);
  ASSERT_TRUE(r.ok) << r.firstError();
  // Rotated declarations, the prologue/steady-state pipeline, per-stage DMA
  // tags and the buffer-flip all present; the fences inside the pipelined
  // loop are replaced by tag waits.
  EXPECT_TRUE(contains(r.artifact, "double-buffered"));
  EXPECT_TRUE(contains(r.artifact, "software-pipelined"));
  EXPECT_TRUE(contains(r.artifact, "int emm_db = 0;"));
  EXPECT_TRUE(contains(r.artifact, "emm_db = 1 - emm_db;"));
  EXPECT_TRUE(contains(r.artifact, "mfc_write_tag_mask(1 << emm_db);"));
}

TEST(CellDoubleBuffer, SynchronousCompileHasNoPipelineMarkers) {
  CompileResult r = compileCellMe(false);
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_FALSE(contains(r.artifact, "emm_db"));
  EXPECT_FALSE(contains(r.artifact, "software-pipelined"));
  EXPECT_TRUE(contains(r.artifact, "mfc_read_tag_status_all"));  // plain fences
}

TEST(CellDoubleBuffer, OversizedFootprintFallsBackToSynchronous) {
  // Explicit tiles whose single-copy footprint fits the store but whose
  // rotated pair does not: the emitter must refuse, explain, and emit the
  // synchronous schedule — never exceed the local store.
  CompileResult r = compileCellMe(true, {128, 128, 16, 16});
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_TRUE(contains(r.artifact, "double-buffering requested, but"));
  EXPECT_FALSE(contains(r.artifact, "emm_db"));
  EXPECT_FALSE(contains(r.artifact, "software-pipelined"));
}

}  // namespace
}  // namespace emm
