// Tests for the compile-service wire protocol (service/protocol.h).
//
//  - Round trips: every frame type and payload struct encodes and decodes
//    losslessly, including the full-fidelity CompileResult inside a
//    CompileReply.
//  - Hostile input: truncated frames (every prefix), bad magic, stale
//    protocol versions, unknown message types, oversized length prefixes
//    (rejected BEFORE allocation), checksum mismatches, trailing garbage,
//    and malformed payloads all throw SerializeError instead of crashing —
//    the same discipline support/serialize enforces for plan files.
//  - Socket framing: writeFrame/readFrame over a socketpair, including
//    clean EOF vs. mid-frame truncation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "service/protocol.h"
#include "support/serialize.h"

namespace emm::svc {
namespace {

CompileRequest sampleKernelRequest() {
  CompileRequest req;
  req.schemaFingerprint = serializeSchemaFingerprint();
  req.kernel = "me";
  req.sizes = {256, 128, 16};
  IntVec params;
  buildKernelByName("me", req.sizes, params);
  Compiler c;
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("cuda");
  req.options = c.opts();
  req.skipPasses = {"codegen"};
  return req;
}

// ---- frame envelope -------------------------------------------------------

TEST(WireFrame, RoundTripsEveryMessageType) {
  for (MsgType type : {MsgType::CompileRequest, MsgType::StatsRequest, MsgType::CompileReply,
                       MsgType::StatsReply, MsgType::ErrorReply}) {
    std::string frame = encodeFrame(type, "payload bytes");
    auto [gotType, gotPayload] = decodeFrame(frame);
    EXPECT_EQ(gotType, type);
    EXPECT_EQ(gotPayload, "payload bytes");
  }
}

TEST(WireFrame, EmptyPayloadRoundTrips) {
  auto [type, payload] = decodeFrame(encodeFrame(MsgType::StatsRequest, ""));
  EXPECT_EQ(type, MsgType::StatsRequest);
  EXPECT_TRUE(payload.empty());
}

TEST(WireFrame, EveryTruncationThrowsCleanly) {
  std::string frame = encodeFrame(MsgType::ErrorReply, encodeErrorReply({false, "boom"}));
  for (size_t n = 0; n < frame.size(); ++n)
    EXPECT_THROW(decodeFrame(frame.substr(0, n)), SerializeError) << "prefix " << n;
}

TEST(WireFrame, BadMagicThrows) {
  std::string frame = encodeFrame(MsgType::StatsRequest, "");
  frame[0] ^= 0x5A;
  EXPECT_THROW(decodeFrame(frame), SerializeError);
}

TEST(WireFrame, StaleVersionIsRejectedWithDiagnostic) {
  std::string frame = encodeFrame(MsgType::StatsRequest, "");
  frame[4] = static_cast<char>(kWireVersion + 1);  // version field, little-endian
  try {
    decodeFrame(frame);
    FAIL() << "stale version accepted";
  } catch (const SerializeError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(WireFrame, UnknownMessageTypeThrows) {
  for (unsigned char bad : {0, 6, 200, 255}) {
    std::string frame = encodeFrame(MsgType::StatsRequest, "");
    frame[8] = static_cast<char>(bad);  // type byte
    EXPECT_THROW(decodeFrameHeader(frame.substr(0, kFrameHeaderBytes)), SerializeError)
        << "type " << int(bad);
  }
}

TEST(WireFrame, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // A hostile peer claims a payload far beyond the cap; the header decoder
  // must throw before any buffer of that size could be sized.
  std::string frame = encodeFrame(MsgType::CompileRequest, "");
  for (size_t i = 0; i < 8; ++i) frame[9 + i] = '\xFF';  // length = 2^64-1
  EXPECT_THROW(decodeFrameHeader(frame.substr(0, kFrameHeaderBytes)), SerializeError);
  // Just past the cap is rejected too; exactly at the cap is a length check,
  // not a header error.
  FrameHeader ok;
  ok.payloadBytes = kMaxFramePayloadBytes;
  EXPECT_THROW(verifyFramePayload(ok, "short"), SerializeError);
}

TEST(WireFrame, ChecksumMismatchThrows) {
  std::string frame = encodeFrame(MsgType::ErrorReply, encodeErrorReply({false, "x"}));
  frame.back() ^= 0x01;  // flip one payload bit; header checksum now stale
  EXPECT_THROW(decodeFrame(frame), SerializeError);
}

TEST(WireFrame, GarbageAfterValidFrameIsRejected) {
  std::string frame = encodeFrame(MsgType::StatsRequest, "");
  EXPECT_THROW(decodeFrame(frame + "tail"), SerializeError);
}

// ---- payload structs ------------------------------------------------------

TEST(WirePayload, KernelCompileRequestRoundTrips) {
  CompileRequest req = sampleKernelRequest();
  CompileRequest got = decodeCompileRequest(encodeCompileRequest(req));
  EXPECT_EQ(got.schemaFingerprint, req.schemaFingerprint);
  EXPECT_EQ(got.kernel, "me");
  EXPECT_EQ(got.sizes, req.sizes);
  EXPECT_FALSE(got.block.has_value());
  EXPECT_EQ(hashCompileOptions(got.options), hashCompileOptions(req.options));
  EXPECT_EQ(got.skipPasses, req.skipPasses);
}

TEST(WirePayload, BlockCompileRequestRoundTrips) {
  CompileRequest req;
  req.schemaFingerprint = serializeSchemaFingerprint();
  IntVec params;
  req.block = buildKernelByName("matmul", {128, 64, 32}, params);
  Compiler c;
  c.parameters(params).backend("c");
  req.options = c.opts();
  CompileRequest got = decodeCompileRequest(encodeCompileRequest(req));
  ASSERT_TRUE(got.block.has_value());
  EXPECT_EQ(hashProgramBlock(*got.block), hashProgramBlock(*req.block));
  EXPECT_TRUE(got.kernel.empty());
}

TEST(WirePayload, RequestMustNameKernelXorCarryBlock) {
  CompileRequest neither;
  neither.schemaFingerprint = serializeSchemaFingerprint();
  EXPECT_THROW(decodeCompileRequest(encodeCompileRequest(neither)), SerializeError);
  CompileRequest both = sampleKernelRequest();
  IntVec params;
  both.block = buildKernelByName("me", both.sizes, params);
  EXPECT_THROW(decodeCompileRequest(encodeCompileRequest(both)), SerializeError);
}

TEST(WirePayload, CompileRequestTruncationsThrowCleanly) {
  std::string payload = encodeCompileRequest(sampleKernelRequest());
  for (size_t n = 0; n < payload.size(); ++n)
    EXPECT_THROW(decodeCompileRequest(std::string_view(payload).substr(0, n)), SerializeError)
        << "prefix " << n;
  EXPECT_THROW(decodeCompileRequest(payload + "x"), SerializeError);
}

TEST(WirePayload, CompileReplyCarriesResultAndAttribution) {
  Compiler c;
  IntVec params;
  c.source(buildKernelByName("me", {64, 64, 8}, params));
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("cuda");
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  r.familyHit = true;  // transport flag: carried by the reply, not the result
  WireCompileReply got = decodeCompileReply(encodeCompileReply(r, 12.5));
  EXPECT_FALSE(got.serverCacheHit);
  EXPECT_FALSE(got.serverDiskHit);
  EXPECT_TRUE(got.serverFamilyHit);
  EXPECT_EQ(got.serverMillis, 12.5);
  EXPECT_TRUE(got.result.ok);
  EXPECT_EQ(got.result.artifact, r.artifact);
  EXPECT_EQ(got.result.search.subTile, r.search.subTile);
}

TEST(WirePayload, StatsReplyRoundTrips) {
  WireStats s;
  s.connections = 3;
  s.requests = 17;
  s.compiles = 11;
  s.compileErrors = 1;
  s.protocolErrors = 2;
  s.memory.hits = 5;
  s.memory.misses = 6;
  s.memory.familyHits = 7;
  s.memory.familyMisses = 8;
  s.haveDisk = true;
  s.disk.hits = 9;
  s.disk.familyBytes = 1234;
  WireStats got = decodeStatsReply(encodeStatsReply(s));
  EXPECT_EQ(got.connections, 3);
  EXPECT_EQ(got.requests, 17);
  EXPECT_EQ(got.compiles, 11);
  EXPECT_EQ(got.compileErrors, 1);
  EXPECT_EQ(got.protocolErrors, 2);
  EXPECT_EQ(got.memory.hits, 5);
  EXPECT_EQ(got.memory.misses, 6);
  EXPECT_EQ(got.memory.familyHits, 7);
  EXPECT_EQ(got.memory.familyMisses, 8);
  EXPECT_TRUE(got.haveDisk);
  EXPECT_EQ(got.disk.hits, 9);
  EXPECT_EQ(got.disk.familyBytes, 1234);
}

TEST(WirePayload, ErrorReplyRoundTrips) {
  WireError got = decodeErrorReply(encodeErrorReply({true, "server shutting down"}));
  EXPECT_TRUE(got.shuttingDown);
  EXPECT_EQ(got.message, "server shutting down");
}

TEST(WirePayload, WrongPayloadTagThrows) {
  std::string stats = encodeStatsReply(WireStats{});
  EXPECT_THROW(decodeErrorReply(stats), SerializeError);
  EXPECT_THROW(decodeCompileRequest(stats), SerializeError);
}

// ---- socket framing -------------------------------------------------------

TEST(WireSocket, WriteThenReadRoundTrips) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string sent = encodeErrorReply({false, "hello"});
  ASSERT_TRUE(writeFrame(fds[0], MsgType::ErrorReply, sent));
  MsgType type = MsgType::CompileRequest;
  std::string payload;
  std::string error;
  EXPECT_EQ(readFrame(fds[1], type, payload, error), ReadStatus::Ok) << error;
  EXPECT_EQ(type, MsgType::ErrorReply);
  EXPECT_EQ(payload, sent);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireSocket, CleanCloseIsEofNotError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  MsgType type;
  std::string payload;
  std::string error;
  EXPECT_EQ(readFrame(fds[1], type, payload, error), ReadStatus::Eof);
  ::close(fds[1]);
}

TEST(WireSocket, MidFrameTruncationIsAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string frame = encodeFrame(MsgType::ErrorReply, encodeErrorReply({false, "cut"}));
  // Ship only half the frame, then close: the reader must report an error
  // (not EOF, not a hang).
  ASSERT_GT(::send(fds[0], frame.data(), frame.size() / 2, 0), 0);
  ::close(fds[0]);
  MsgType type;
  std::string payload;
  std::string error;
  EXPECT_EQ(readFrame(fds[1], type, payload, error), ReadStatus::Error);
  EXPECT_FALSE(error.empty());
  ::close(fds[1]);
}

TEST(WireSocket, GarbageBytesAreAnErrorWithDiagnostic) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string garbage(kFrameHeaderBytes, '\x42');
  ASSERT_TRUE(::send(fds[0], garbage.data(), garbage.size(), 0) > 0);
  ::close(fds[0]);
  MsgType type;
  std::string payload;
  std::string error;
  EXPECT_EQ(readFrame(fds[1], type, payload, error), ReadStatus::Error);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  ::close(fds[1]);
}

// ---- the block/options deserializers the protocol leans on ----------------

TEST(WireDeserializers, ProgramBlockRoundTripsAndRejectsHostileBytes) {
  IntVec params;
  ProgramBlock block = buildKernelByName("jacobi", {4096, 8}, params);
  std::string bytes = serializeProgramBlock(block);
  ProgramBlock got = deserializeProgramBlock(bytes);
  EXPECT_EQ(hashProgramBlock(got), hashProgramBlock(block));
  for (size_t n : {size_t(0), size_t(1), bytes.size() / 2, bytes.size() - 1})
    EXPECT_THROW(deserializeProgramBlock(std::string_view(bytes).substr(0, n)),
                 SerializeError);
  EXPECT_THROW(deserializeProgramBlock(bytes + "z"), SerializeError);
}

TEST(WireDeserializers, CompileOptionsRoundTripAndRejectHostileBytes) {
  Compiler c;
  c.parameters({9, 9, 9})
      .memoryLimitBytes(4096)
      .innerProcs(4)
      .hoistCopies(false)
      .tileSizes({8, 8})
      .backend("cell")
      .kernelName("weird_name");
  std::string bytes = serializeCompileOptions(c.opts());
  CompileOptions got = deserializeCompileOptions(bytes);
  EXPECT_EQ(hashCompileOptions(got), hashCompileOptions(c.opts()));
  for (size_t n = 0; n < bytes.size(); ++n)
    EXPECT_THROW(deserializeCompileOptions(std::string_view(bytes).substr(0, n)),
                 SerializeError)
        << "prefix " << n;
  EXPECT_THROW(deserializeCompileOptions(bytes + "z"), SerializeError);
}

}  // namespace
}  // namespace emm::svc
