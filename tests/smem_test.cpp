// Tests for the Section-3 scratchpad data-management framework: data-space
// computation, partitioning, Algorithm 1 (reuse benefit), Algorithm 2
// (buffer allocation), access rewriting, move-in/move-out code, the
// Figure-1 worked example, volume bounds, and the Section-3.1.4 copy-set
// optimization.
#include <gtest/gtest.h>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "poly/enumerate.h"
#include "smem/data_manage.h"

namespace emm {
namespace {

SmemOptions basicOptions(IntVec sample = {}) {
  SmemOptions o;
  o.sampleParams = std::move(sample);
  o.onlyBeneficial = false;  // most structural tests want buffers regardless
  return o;
}

/// The framework's output must preserve semantics: executing the
/// scratchpad unit leaves the global arrays exactly as the reference does.
void expectSemanticsPreserved(const ProgramBlock& block, const IntVec& params,
                              const SmemOptions& options) {
  CodeUnit unit = buildScratchpadUnit(block, options);
  ArrayStore got(block.arrays), want(block.arrays);
  got.fillAllPattern(41);
  want.fillAllPattern(41);
  executeCodeUnit(unit, params, got);
  executeReference(block, params, want);
  EXPECT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0) << emitC(unit);
}

// ---- Figure 1 worked example. ----

/// Figure 1 allocates one buffer per array (convex union of all of the
/// array's data spaces) — the PerArrayUnion mode; see DESIGN.md.
SmemOptions figure1Options() {
  SmemOptions o = basicOptions();
  o.partitionMode = PartitionMode::PerArrayUnion;
  return o;
}

TEST(Figure1, PartitionsAndBufferGeometry) {
  ProgramBlock block = buildFigure1Block();
  DataPlan plan = analyzeBlock(block, figure1Options());

  // Paper: one local array each for A and B.
  ASSERT_EQ(plan.partitions.size(), 2u);
  const PartitionPlan* pa = nullptr;
  const PartitionPlan* pb = nullptr;
  for (const PartitionPlan& p : plan.partitions)
    (p.arrayId == 0 ? pa : pb) = &p;
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);

  // Paper Figure 1: LA[19][10] with offsets (10, 11); LB[19][24] with
  // offsets (10, 11).
  std::vector<std::pair<std::string, i64>> env;  // no parameters
  ASSERT_TRUE(pa->hasBuffer);
  EXPECT_EQ(pa->offset[0].evalExact(env), 10);
  EXPECT_EQ(pa->offset[1].evalExact(env), 11);
  EXPECT_EQ(pa->sizeExpr[0].eval(env), 19);
  EXPECT_EQ(pa->sizeExpr[1].eval(env), 10);
  ASSERT_TRUE(pb->hasBuffer);
  EXPECT_EQ(pb->offset[0].evalExact(env), 10);
  EXPECT_EQ(pb->offset[1].evalExact(env), 11);
  EXPECT_EQ(pb->sizeExpr[0].eval(env), 19);
  EXPECT_EQ(pb->sizeExpr[1].eval(env), 24);
}

TEST(Figure1, SemanticsPreservedBothModes) {
  expectSemanticsPreserved(buildFigure1Block(), {}, figure1Options());
  expectSemanticsPreserved(buildFigure1Block(), {}, basicOptions());
}

TEST(Figure1, DisjointModeSplitsAndShrinksFootprint) {
  // Under the Section-3.1 algorithm text, A splits into {write, S2-read}
  // vs the far S1 read, and B splits similarly: 4 partitions total, with a
  // strictly smaller total footprint than the per-array-union buffers.
  ProgramBlock block = buildFigure1Block();
  DataPlan disjoint = analyzeBlock(block, basicOptions());
  DataPlan unioned = analyzeBlock(block, figure1Options());
  EXPECT_EQ(disjoint.partitions.size(), 4u);
  auto footprint = [](const DataPlan& p) {
    i64 total = 0;
    for (size_t i = 0; i < p.partitions.size(); ++i)
      total += p.bufferFootprint(static_cast<int>(i), {});
    return total;
  };
  EXPECT_LT(footprint(disjoint), footprint(unioned));
}

TEST(Figure1, SingleTransferOfOverlappingData) {
  // The move-in code must load each element exactly once even though the
  // data spaces of A's references overlap (paper Section 3.1.3).
  ProgramBlock block = buildFigure1Block();
  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, figure1Options(), plan);

  ArrayStore store(block.arrays);
  MemTrace trace = executeCodeUnit(unit, {}, store);
  // Expected global reads: |union of read spaces| of A + of B.
  i64 expected = 0;
  for (const PartitionPlan& p : plan.partitions) expected += countUnion(p.readSpaces(), {});
  EXPECT_EQ(trace.globalReads, expected);
}

TEST(Figure1, MoveOutCountsMatchWriteSpaces) {
  ProgramBlock block = buildFigure1Block();
  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, figure1Options(), plan);
  ArrayStore store(block.arrays);
  MemTrace trace = executeCodeUnit(unit, {}, store);
  i64 expected = 0;
  for (const PartitionPlan& p : plan.partitions) expected += countUnion(p.writeSpaces(), {});
  EXPECT_EQ(trace.globalWrites, expected);
}

TEST(Figure1, EmitterShowsBuffersAndCopies) {
  ProgramBlock block = buildFigure1Block();
  CodeUnit unit = buildScratchpadUnit(block, figure1Options());
  std::string code = emitC(unit);
  EXPECT_NE(code.find("LA0[19][10]"), std::string::npos) << code;
  EXPECT_NE(code.find("LB1[19][24]"), std::string::npos) << code;
  EXPECT_NE(code.find("move-in"), std::string::npos);
  EXPECT_NE(code.find("move-out"), std::string::npos);
}

// ---- Algorithm 1 (reuse benefit). ----

TEST(Algorithm1, OrderOfMagnitudeReuseByRank) {
  // ME: out/cur/ref all have rank 2 < dim 4: every partition beneficial.
  ProgramBlock block = buildMeBlock(8, 8, 4);
  SmemOptions o;
  o.sampleParams = {8, 8, 4};
  DataPlan plan = analyzeBlock(block, o);
  ASSERT_EQ(plan.partitions.size(), 3u);
  for (const PartitionPlan& p : plan.partitions) {
    EXPECT_TRUE(p.orderReuse);
    EXPECT_TRUE(p.beneficial);
    EXPECT_TRUE(p.hasBuffer);
  }
}

TEST(Algorithm1, NoReuseNotBeneficial) {
  // B[i] = A[i]: rank 1 == dim 1, no overlap: not beneficial.
  ProgramBlock block;
  block.name = "stream";
  block.arrays = {{"A", {64}}, {"B", {64}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 63);
  Access w{1, IntMat{{1, 0}}, true};
  Access r{0, IntMat{{1, 0}}, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  SmemOptions o;
  o.sampleParams = {};
  o.onlyBeneficial = true;
  DataPlan plan = analyzeBlock(block, o);
  for (const PartitionPlan& p : plan.partitions) {
    EXPECT_FALSE(p.orderReuse);
    EXPECT_FALSE(p.beneficial);
    EXPECT_FALSE(p.hasBuffer);
  }
  // No buffers: unit must still be semantically correct (all global).
  expectSemanticsPreserved(block, {}, o);
}

TEST(Algorithm1, ConstantReuseAboveDelta) {
  // Two shifted reads of A: A[i] and A[i+2] over [0, 19]: overlap 18 of 40
  // total volume = 45% > 30%: beneficial.
  ProgramBlock block;
  block.name = "shift2";
  block.arrays = {{"A", {32}}, {"B", {32}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 19);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, 0}}, false};
  Access r2{0, IntMat{{1, 2}}, false};
  s.accesses = {w, r1, r2};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::load(2));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  SmemOptions o;
  o.onlyBeneficial = true;
  DataPlan plan = analyzeBlock(block, o);
  const PartitionPlan* pa = nullptr;
  for (const PartitionPlan& p : plan.partitions)
    if (p.arrayId == 0) pa = &p;
  ASSERT_NE(pa, nullptr);
  EXPECT_FALSE(pa->orderReuse);
  EXPECT_NEAR(pa->constReuseFraction, 18.0 / 40.0, 1e-9);
  EXPECT_TRUE(pa->beneficial);
}

TEST(Algorithm1, ConstantReuseBelowDelta) {
  // A[i] and A[i+15] over [0, 19]: overlap 5 of 40 = 12.5% < 30%.
  ProgramBlock block;
  block.name = "shift15";
  block.arrays = {{"A", {64}}, {"B", {64}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 19);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, 0}}, false};
  Access r2{0, IntMat{{1, 15}}, false};
  s.accesses = {w, r1, r2};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::load(2));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  SmemOptions o;
  o.onlyBeneficial = true;
  DataPlan plan = analyzeBlock(block, o);
  const PartitionPlan* pa = nullptr;
  for (const PartitionPlan& p : plan.partitions)
    if (p.arrayId == 0) pa = &p;
  ASSERT_NE(pa, nullptr);
  EXPECT_FALSE(pa->beneficial);
  // Delta is configurable: with delta = 0.1 it becomes beneficial.
  o.delta = 0.10;
  plan = analyzeBlock(block, o);
  for (const PartitionPlan& p : plan.partitions)
    if (p.arrayId == 0) { EXPECT_TRUE(p.beneficial); }
}

// ---- Partitioning. ----

TEST(Partitioning, DisjointRegionsGetSeparateBuffers) {
  // Reads A[i] (i in [0,9]) and A[i+100] (i.e. [100,109]): two partitions.
  ProgramBlock block;
  block.name = "twofar";
  block.arrays = {{"A", {256}}, {"B", {16}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 9);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, 0}}, false};
  Access r2{0, IntMat{{1, 100}}, false};
  s.accesses = {w, r1, r2};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::load(2));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  DataPlan plan = analyzeBlock(block, basicOptions());
  int aPartitions = 0;
  for (const PartitionPlan& p : plan.partitions)
    if (p.arrayId == 0) ++aPartitions;
  EXPECT_EQ(aPartitions, 2);
  expectSemanticsPreserved(block, {}, basicOptions());
}

TEST(Partitioning, TransitiveOverlapMerges) {
  // A[i], A[i+5], A[i+10] over [0,9]: pairwise chains merge into one
  // partition even though A[i] and A[i+10] themselves do not overlap.
  ProgramBlock block;
  block.name = "chain3";
  block.arrays = {{"A", {64}}, {"B", {16}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 9);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, 0}}, false};
  Access r2{0, IntMat{{1, 5}}, false};
  Access r3{0, IntMat{{1, 10}}, false};
  s.accesses = {w, r1, r2, r3};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::add(Expr::load(2), Expr::load(3)));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  DataPlan plan = analyzeBlock(block, basicOptions());
  int aPartitions = 0;
  const PartitionPlan* pa = nullptr;
  for (const PartitionPlan& p : plan.partitions)
    if (p.arrayId == 0) {
      ++aPartitions;
      pa = &p;
    }
  EXPECT_EQ(aPartitions, 1);
  ASSERT_NE(pa, nullptr);
  std::vector<std::pair<std::string, i64>> env;
  EXPECT_EQ(pa->sizeExpr[0].eval(env), 20);  // [0, 19]
}

// ---- Parametric buffers. ----

TEST(Parametric, BufferSizeTracksParams) {
  // Read A[i..i+W-1] style window: buffer bounds are parametric in W... use
  // matmul row access A[i][p] in a (i,j,p) nest with params (N,M,K).
  ProgramBlock block = buildMatmulBlock(6, 5, 4);
  SmemOptions o;
  o.sampleParams = {6, 5, 4};
  DataPlan plan = analyzeBlock(block, o);
  ASSERT_EQ(plan.partitions.size(), 3u);
  // Footprints at the sample: A: 6x4, B: 4x5, C: 6x5.
  i64 total = 0;
  for (size_t p = 0; p < plan.partitions.size(); ++p)
    total += plan.bufferFootprint(static_cast<int>(p), {6, 5, 4});
  EXPECT_EQ(total, 24 + 20 + 30);
  // Different binding, same plan: footprints re-evaluate.
  total = 0;
  for (size_t p = 0; p < plan.partitions.size(); ++p)
    total += plan.bufferFootprint(static_cast<int>(p), {8, 3, 2});
  EXPECT_EQ(total, 16 + 6 + 24);
}

TEST(Parametric, MatmulSemanticsPreserved) {
  ProgramBlock block = buildMatmulBlock(5, 4, 6);
  SmemOptions o;
  o.sampleParams = {5, 4, 6};
  expectSemanticsPreserved(block, {5, 4, 6}, o);
}

TEST(Parametric, MeSemanticsPreserved) {
  ProgramBlock block = buildMeBlock(6, 5, 3);
  SmemOptions o;
  o.sampleParams = {6, 5, 3};
  expectSemanticsPreserved(block, {6, 5, 3}, o);
}

TEST(Parametric, JacobiSemanticsPreserved) {
  ProgramBlock block = buildJacobiBlock(18, 4);
  SmemOptions o;
  o.sampleParams = {18, 4};
  o.onlyBeneficial = false;
  expectSemanticsPreserved(block, {18, 4}, o);
}

// ---- Volume bounds (Section 3.1.3). ----

TEST(VolumeBounds, MatchHandComputation) {
  ProgramBlock block = buildFigure1Block();
  DataPlan plan = analyzeBlock(block, basicOptions());
  for (size_t p = 0; p < plan.partitions.size(); ++p) {
    const PartitionPlan& part = plan.partitions[p];
    i64 vin = plan.moveInVolumeBound(static_cast<int>(p), {});
    i64 vout = plan.moveOutVolumeBound(static_cast<int>(p), {});
    // Bounds dominate the exact union volumes.
    EXPECT_GE(vin, countUnion(part.readSpaces(), {}));
    EXPECT_GE(vout, countUnion(part.writeSpaces(), {}));
    // And are no larger than the full buffer box per non-overlapping subset
    // (sanity: bound is finite and not absurd).
    EXPECT_LE(vout, plan.bufferFootprint(static_cast<int>(p), {}));
  }
}

// ---- Section 3.1.4 copy-set optimization. ----

TEST(CopySetOpt, ProducerConsumerSkipsMoveIn) {
  // S1: T[i] = A[i] + 1;  S2: B[i] = T[i] * 2.  T's reads are fully covered
  // by in-block flow deps: with the optimization, T is written to the local
  // buffer by S1 and never loaded from global memory.
  ProgramBlock block;
  block.name = "prodcons";
  block.arrays = {{"A", {32}}, {"T", {32}}, {"B", {32}}};
  {
    Statement s1;
    s1.name = "S1";
    s1.domain = Polyhedron(1, 0);
    s1.domain.addRange(0, 0, 15);
    Access w{1, IntMat{{1, 0}}, true};
    Access r{0, IntMat{{1, 0}}, false};
    s1.accesses = {w, r};
    s1.writeAccess = 0;
    s1.rhs = Expr::add(Expr::load(1), Expr::constant(1));
    s1.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
    block.statements.push_back(std::move(s1));
  }
  {
    Statement s2;
    s2.name = "S2";
    s2.domain = Polyhedron(1, 0);
    s2.domain.addRange(0, 0, 15);
    Access w{2, IntMat{{1, 0}}, true};
    Access r{1, IntMat{{1, 0}}, false};
    s2.accesses = {w, r};
    s2.writeAccess = 0;
    s2.rhs = Expr::mul(Expr::load(1), Expr::constant(2));
    s2.schedule = ProgramBlock::interleavedSchedule(1, 0, {1, 0});
    block.statements.push_back(std::move(s2));
  }
  block.validate();

  SmemOptions o = basicOptions();
  DataPlan planNoOpt;
  CodeUnit noOpt = buildScratchpadUnit(block, o, planNoOpt);
  o.optimizeCopySets = true;
  DataPlan planOpt;
  CodeUnit opt = buildScratchpadUnit(block, o, planOpt);

  ArrayStore s1(block.arrays), s2(block.arrays), ref(block.arrays);
  s1.fillAllPattern(9);
  s2.fillAllPattern(9);
  ref.fillAllPattern(9);
  MemTrace tNo = executeCodeUnit(noOpt, {}, s1);
  MemTrace tOpt = executeCodeUnit(opt, {}, s2);
  executeReference(block, {}, ref);
  EXPECT_EQ(ArrayStore::maxAbsDiff(s1, ref), 0.0);
  EXPECT_EQ(ArrayStore::maxAbsDiff(s2, ref), 0.0);
  // T's 16 move-in loads disappear.
  EXPECT_EQ(tNo.globalReads - tOpt.globalReads, 16);
}

TEST(CopySetOpt, DeadArraySkipsMoveOut) {
  // Same block; mark T dead after the block: its move-out disappears too.
  ProgramBlock block;
  block.name = "deadtmp";
  block.arrays = {{"A", {32}}, {"T", {32}}, {"B", {32}}};
  {
    Statement s1;
    s1.name = "S1";
    s1.domain = Polyhedron(1, 0);
    s1.domain.addRange(0, 0, 15);
    Access w{1, IntMat{{1, 0}}, true};
    Access r{0, IntMat{{1, 0}}, false};
    s1.accesses = {w, r};
    s1.writeAccess = 0;
    s1.rhs = Expr::add(Expr::load(1), Expr::constant(1));
    s1.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
    block.statements.push_back(std::move(s1));
  }
  {
    Statement s2;
    s2.name = "S2";
    s2.domain = Polyhedron(1, 0);
    s2.domain.addRange(0, 0, 15);
    Access w{2, IntMat{{1, 0}}, true};
    Access r{1, IntMat{{1, 0}}, false};
    s2.accesses = {w, r};
    s2.writeAccess = 0;
    s2.rhs = Expr::mul(Expr::load(1), Expr::constant(2));
    s2.schedule = ProgramBlock::interleavedSchedule(1, 0, {1, 0});
    block.statements.push_back(std::move(s2));
  }
  block.validate();

  SmemOptions o = basicOptions();
  o.optimizeCopySets = true;
  o.deadAfterBlock = {1};  // T
  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, o, plan);
  ArrayStore store(block.arrays), ref(block.arrays);
  store.fillAllPattern(4);
  ref.fillAllPattern(4);
  MemTrace t = executeCodeUnit(unit, {}, store);
  executeReference(block, {}, ref);
  // B must be correct; T may differ (dead).
  for (i64 i = 0; i < 32; ++i) EXPECT_EQ(store.get(2, {i}), ref.get(2, {i}));
  // Global writes: only B's 16 elements.
  EXPECT_EQ(t.globalWrites, 16);
}

// ---- Property sweep: shifted-window blocks across shift amounts. ----

class ShiftedWindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShiftedWindowProperty, SemanticsAndSingleTransfer) {
  int shift = GetParam();
  ProgramBlock block;
  block.name = "win" + std::to_string(shift);
  block.arrays = {{"A", {96}}, {"B", {64}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 31);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, 0}}, false};
  Access r2{0, IntMat{{1, shift}}, false};
  s.accesses = {w, r1, r2};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::load(2));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));
  block.validate();

  SmemOptions o = basicOptions();
  CodeUnit unit = buildScratchpadUnit(block, o);
  ArrayStore got(block.arrays), want(block.arrays);
  got.fillAllPattern(13);
  want.fillAllPattern(13);
  MemTrace trace = executeCodeUnit(unit, {}, got);
  executeReference(block, {}, want);
  EXPECT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0);
  // Union of A-reads: [0, 31] and [shift, 31+shift].
  i64 unionA = shift <= 32 ? 32 + shift : 64;
  EXPECT_EQ(trace.globalReads, unionA);
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftedWindowProperty,
                         ::testing::Values(0, 1, 3, 8, 31, 32, 40));

}  // namespace
}  // namespace emm
