// Tests for the transformation framework: bands, space/time classification,
// skewing legality and semantics preservation.
#include <gtest/gtest.h>

#include "codegen/scan.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "transform/transform.h"

namespace emm {
namespace {

TEST(Transform, MeParallelism) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  // i and j are communication-free space loops (paper Section 6).
  EXPECT_EQ(plan.spaceLoops, (std::vector<int>{0, 1}));
  EXPECT_FALSE(plan.needsInterBlockSync);
  // The band includes at least i, j, k.
  EXPECT_GE(plan.band.size(), 3u);
}

TEST(Transform, MatmulParallelism) {
  ProgramBlock block = buildMatmulBlock(6, 6, 6);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  EXPECT_EQ(plan.spaceLoops, (std::vector<int>{0, 1}));
  EXPECT_FALSE(plan.needsInterBlockSync);
}

TEST(Transform, JacobiNeedsSkewThenPipeline) {
  ProgramBlock block = buildJacobiBlock(32, 8);
  TransformResult tr = makeTilable(block);
  // The i loop must have been repaired (shift of the copy statement plus a
  // skew by t) to make the band permutable.
  ASSERT_EQ(tr.appliedSkews.size(), 1u);
  EXPECT_EQ(tr.appliedSkews[0].first, 1);          // target loop i
  EXPECT_EQ(tr.appliedSkews[0].second.first, 0);   // skewed by t
  EXPECT_GE(tr.appliedSkews[0].second.second, 1);  // positive factor
  // After skewing there is no communication-free loop: pipeline parallelism
  // with inter-block synchronization (the paper's Jacobi case).
  EXPECT_TRUE(tr.plan.needsInterBlockSync);
  EXPECT_EQ(tr.plan.band.size(), 2u);

  // The transformed block still computes Jacobi.
  ArrayStore a(block.arrays), b(tr.block.arrays);
  a.fillAllPattern(3);
  b.fillAllPattern(3);
  executeReference(block, {32, 8}, a);
  executeReference(tr.block, {32, 8}, b);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);
}

TEST(Transform, SkewPreservesSemantics) {
  ProgramBlock block = buildJacobiBlock(24, 6);
  ProgramBlock skewed = skewLoop(block, 1, 0, 1);

  // Execute both through the reference executor; final arrays must agree.
  ArrayStore a(block.arrays), b(skewed.arrays);
  a.fillAllPattern(3);
  b.fillAllPattern(3);
  executeReference(block, {24, 6}, a);
  executeReference(skewed, {24, 6}, b);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);
}

TEST(Transform, SkewedDomainShape) {
  ProgramBlock block = buildJacobiBlock(16, 4);
  ProgramBlock skewed = skewLoop(block, 1, 0, 1);
  // New domain: t in [0,T-1], i' = i + t in [1 + t, N - 2 + t].
  const Polyhedron& d = skewed.statements[0].domain;
  EXPECT_TRUE(d.contains({0, 1, 16, 4}));    // t=0, i'=1
  EXPECT_FALSE(d.contains({1, 1, 16, 4}));   // t=1 needs i' >= 2
  EXPECT_TRUE(d.contains({1, 2, 16, 4}));
  EXPECT_TRUE(d.contains({3, 17, 16, 4}));   // t=3, i' = 14+3
  EXPECT_FALSE(d.contains({3, 18, 16, 4}));
}

TEST(Transform, ShiftPlusSkewMakesJacobiSignsNonNegative) {
  // Skew alone cannot repair two-statement Jacobi: the same-timestep anti
  // dependence between the stencil and the copy statement has distance
  // (0, -1), untouched by skewing against t.
  ProgramBlock block = buildJacobiBlock(32, 8);
  EXPECT_EQ(findSkewFactor(block, 1, 0), -1);
  // Shifting the copy statement by one repairs it with skew factor 2
  // (the classic (t, 2t+i) / (t, 2t+i+1) Pluto transformation).
  ProgramBlock shifted = shiftStatementLoop(block, 1, 1, 1);
  EXPECT_EQ(findSkewFactor(shifted, 1, 0), 2);
  ProgramBlock fixed = skewLoop(shifted, 1, 0, 2);
  auto deps = computeDependences(fixed);
  auto sums = summarizeLoops(fixed, deps, 2);
  EXPECT_NE(sums[1].sign, SignRange::Mixed);
  EXPECT_NE(sums[1].sign, SignRange::Negative);
  EXPECT_NE(sums[1].sign, SignRange::NonPositive);
}

TEST(Transform, ShiftPreservesSemantics) {
  ProgramBlock block = buildJacobiBlock(20, 5);
  ProgramBlock shifted = shiftStatementLoop(block, 1, 1, 1);
  ArrayStore a(block.arrays), b(shifted.arrays);
  a.fillAllPattern(7);
  b.fillAllPattern(7);
  executeReference(block, {20, 5}, a);
  executeReference(shifted, {20, 5}, b);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);
}

TEST(Transform, NoSkewNeededReturnsZero) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  EXPECT_EQ(findSkewFactor(block, 2, 0), 0);
}

TEST(Transform, MakeTilableIdempotentOnMe) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TransformResult tr = makeTilable(block);
  EXPECT_TRUE(tr.appliedSkews.empty());
  EXPECT_EQ(tr.plan.spaceLoops, (std::vector<int>{0, 1}));
}

TEST(Transform, CommonLoopDepth) {
  EXPECT_EQ(commonLoopDepth(buildJacobiBlock(8, 2)), 2);
  EXPECT_EQ(commonLoopDepth(buildMeBlock(4, 4, 2)), 4);
  EXPECT_EQ(commonLoopDepth(buildFigure1Block()), 2);
}

class SkewFactorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SkewFactorProperty, WiderStencilsNeedLargerFactors) {
  // Single-statement in-place stencil A[i] = A[i-r] + A[i+r] over (t, i).
  // The cross-timestep flow dependence write A[i] -> read A[i'+r] with
  // i' = i - r at t+1 has distance (1, -r); repairing it needs factor >= r.
  int r = GetParam();
  ProgramBlock block;
  block.name = "wide";
  block.paramNames = {"N", "T"};
  i64 n = 64;
  block.arrays = {{"A", {n}}};
  const int np = 2, dim = 2;
  Polyhedron d(dim, np);
  {
    IntVec tlo(dim + np + 1, 0), thi(dim + np + 1, 0), ilo(dim + np + 1, 0),
        ihi(dim + np + 1, 0);
    tlo[0] = 1;  // t >= 0
    d.addInequality(tlo);
    thi[0] = -1;  // t <= T - 1
    thi[dim + 1] = 1;
    thi.back() = -1;
    d.addInequality(thi);
    ilo[1] = 1;  // i >= r
    ilo.back() = -r;
    d.addInequality(ilo);
    ihi[1] = -1;  // i <= N - 1 - r
    ihi[dim] = 1;
    ihi.back() = -1 - r;
    d.addInequality(ihi);
  }
  Statement s;
  s.name = "S";
  s.domain = d;
  Access w{0, IntMat(1, dim + np + 1), true};
  w.fn.at(0, 1) = 1;
  Access rl = w;
  rl.isWrite = false;
  rl.fn.at(0, dim + np) = -r;
  Access rr = rl;
  rr.fn.at(0, dim + np) = r;
  s.accesses = {w, rl, rr};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::load(2));
  s.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 0, 0});
  block.statements.push_back(std::move(s));
  block.validate();
  EXPECT_EQ(findSkewFactor(block, 1, 0, 8), r);
}

INSTANTIATE_TEST_SUITE_P(Radii, SkewFactorProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace emm
