// Cross-module integration tests: whole-pipeline invariants that no single
// module test can check.
//
//  - transform -> tiling -> smem -> interpreter round trips on every kernel,
//  - plan-level volume bounds vs interpreter-measured traffic,
//  - cost-model occurrence counts vs interpreter-measured copy executions,
//  - footprint accounting vs simulator feasibility,
//  - tile-size search choices actually being the fastest under simulation.
#include <gtest/gtest.h>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/jacobi_mapped.h"
#include "kernels/me_pipeline.h"
#include "tilesearch/tilesearch.h"

namespace emm {
namespace {

// ---- Pipeline round trips. ----

struct PipelineCase {
  i64 ni, nj, w;
  std::vector<i64> subTile;
  i64 blocks, threads;
};

class MePipelineRoundTrip : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(MePipelineRoundTrip, SemanticsAndCounters) {
  const PipelineCase& pc = GetParam();
  MeConfig c;
  c.ni = pc.ni;
  c.nj = pc.nj;
  c.w = pc.w;
  c.subTile = pc.subTile;
  c.numBlocks = pc.blocks;
  c.numThreads = pc.threads;
  MePipeline p = buildMePipeline(c);

  ArrayStore store(p.block.arrays);
  store.fillAllPattern(3);
  std::vector<double> cur = store.raw(0), ref = store.raw(1), out = store.raw(2);
  IntVec ext = p.paramValues;
  ext.resize(p.kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace t = executeCodeUnit(p.kernel.unit, ext, store);
  referenceMe(cur, ref, out, c.ni, c.nj, c.w);
  for (i64 i = 0; i < c.ni; ++i)
    for (i64 j = 0; j < c.nj; ++j)
      ASSERT_NEAR(store.get(2, {i, j}), out[i * c.nj + j], 1e-9);

  // Counter model agrees with the measured trace.
  KernelModel m = modelMe(c);
  i64 blocks = p.kernel.numBlockTiles(p.paramValues);
  EXPECT_EQ(m.perBlock.globalElems * blocks, t.globalReads + t.globalWrites);
  EXPECT_EQ(m.perBlock.smemElems * blocks, t.localReads + t.localWrites);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MePipelineRoundTrip,
    ::testing::Values(PipelineCase{16, 8, 4, {4, 4, 4, 4}, 4, 32},
                      PipelineCase{32, 16, 4, {8, 8, 4, 4}, 4, 64},
                      PipelineCase{16, 16, 8, {8, 8, 8, 8}, 2, 32},
                      PipelineCase{24, 12, 4, {4, 4, 2, 2}, 6, 32}));

// ---- Volume bounds dominate measured traffic. ----

TEST(Integration, VolumeBoundsDominateMeasuredTraffic) {
  ProgramBlock block = buildMeBlock(16, 8, 4);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  SmemOptions smem;
  smem.sampleParams = {16, 8, 4};
  TileAnalysis ta = analyzeTile(block, plan, {4, 4, 4, 4}, smem);

  // Per partition: interpreter-measured copy elements for one tile must be
  // <= the Section-3.1.3 bound.
  IntVec ext = {16, 8, 4};
  for (int l = 0; l < ta.depth; ++l) ext.push_back(0);  // origins at 0
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    if (!ta.plan.partitions[p].hasBuffer) continue;
    AstPtr in = buildCopyCode(ta.plan, static_cast<int>(p), true);
    CodeUnit unit;
    unit.source = ta.tileBlock.get();
    // Buffer table must line up with buffer ids used by the copy code.
    for (const PartitionPlan& part : ta.plan.partitions) {
      if (!part.hasBuffer) continue;
      LocalBuffer buf;
      buf.name = part.bufferName;
      buf.ndim = ta.tileBlock->arrays[part.arrayId].ndim();
      buf.offset = part.offset;
      buf.sizeExpr = part.sizeExpr;
      unit.localBuffers.push_back(std::move(buf));
    }
    unit.root = std::move(in);
    ArrayStore store(ta.tileBlock->arrays);
    MemTrace t = executeCodeUnit(unit, ext, store);
    EXPECT_LE(t.copyElements, ta.plan.moveInVolumeBound(static_cast<int>(p), ext))
        << "partition " << p;
    EXPECT_GT(t.copyElements, 0) << "partition " << p;
  }
}

// ---- Cost-model occurrences equal interpreter copy-fragment executions. ----

TEST(Integration, OccurrenceCountsMatchInterpreter) {
  ProgramBlock block = buildMeBlock(16, 16, 4);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  SmemOptions smem;
  smem.sampleParams = {16, 16, 4};
  TileSearchOptions opts;
  opts.paramValues = {16, 16, 4};
  opts.memLimitElems = 1 << 20;
  opts.innerProcs = 1;
  std::vector<i64> tile = {4, 4, 2, 2};
  TileEvaluation ev = evaluateTileSizes(block, plan, tile, opts, smem);
  ASSERT_TRUE(ev.feasible);

  TileConfig tc;
  tc.subTile = tile;
  tc.blockTile = {16, 16};  // single block: occurrences are global counts
  tc.threadTile = {1, 1};
  TiledKernel k = buildTiledKernel(block, plan, tc, smem);
  ArrayStore store(block.arrays);
  IntVec ext = {16, 16, 4};
  ext.resize(k.analysis.tileBlock->paramNames.size(), 0);
  MemTrace t = executeCodeUnit(k.unit, ext, store);

  // Total copied elements == sum over buffers of occurrences * measured
  // per-occurrence volume; with exact (box-filling) ME spaces the bound is
  // exact, so the totals must match.
  i64 expected = 0;
  for (const auto& term : ev.terms)
    expected += term.occurrences * (term.volumeIn + term.volumeOut);
  EXPECT_EQ(t.copyElements, expected);
}

// ---- Footprint accounting matches the simulator's occupancy rule. ----

TEST(Integration, FootprintDrivesOccupancy) {
  MeConfig c;
  c.ni = 64;
  c.nj = 64;
  c.w = 8;
  c.numBlocks = 32;
  c.numThreads = 64;
  c.subTile = {16, 16, 8, 8};
  MePipeline p = buildMePipeline(c);
  KernelModel m = modelMe(c);
  EXPECT_EQ(m.launch.smemBytesPerBlock, 4 * p.kernel.footprintPerBlock(p.paramValues));

  Machine machine = Machine::geforce8800gtx();
  SimResult r = simulateLaunch(machine, m.launch, m.perBlock);
  ASSERT_TRUE(r.feasible);
  i64 expectPerSM = std::min<i64>(machine.maxBlocksPerSM,
                                  machine.smemBytesPerSM / m.launch.smemBytesPerBlock);
  EXPECT_EQ(r.concurrentBlocks, std::min<i64>(c.numBlocks, expectPerSM * machine.numSMs));
}

// ---- The searched tile is the fastest simulated configuration. ----

TEST(Integration, SearchedTileWinsSimulation) {
  // Candidate grid from Figure 6; the search minimizes data-movement cost,
  // and under the machine model the same configuration must win end to end.
  std::vector<std::vector<i64>> tiles = {{8, 8, 16, 16}, {16, 8, 16, 16}, {16, 16, 16, 16},
                                         {32, 16, 16, 16}};
  Machine m = Machine::geforce8800gtx();
  double bestMs = 1e300;
  size_t bestIdx = 0;
  for (size_t t = 0; t < tiles.size(); ++t) {
    MeConfig c;
    c.ni = 2048;
    c.nj = 1024;
    c.w = 16;
    c.subTile = tiles[t];
    KernelModel km = modelMe(c);
    SimResult r = simulateLaunch(m, km.launch, km.perBlock);
    ASSERT_TRUE(r.feasible);
    if (r.milliseconds < bestMs) {
      bestMs = r.milliseconds;
      bestIdx = t;
    }
  }
  EXPECT_EQ(tiles[bestIdx], (std::vector<i64>{32, 16, 16, 16}));

  ProgramBlock block = buildMeBlock(2048, 1024, 16);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  SmemOptions smem;
  smem.sampleParams = {2048, 1024, 16};
  TileSearchOptions opts;
  opts.paramValues = {2048, 1024, 16};
  opts.memLimitElems = 4096;
  opts.innerProcs = 32;
  opts.candidates = {{8, 16, 32}, {8, 16}, {16}, {16}};
  TileSearchResult r = searchTileSizes(block, plan, opts, smem);
  ASSERT_TRUE(r.eval.feasible);
  EXPECT_EQ(r.subTile, (std::vector<i64>{32, 16, 16, 16}));
}

// ---- Jacobi: mapped kernel + simulator reproduce the Figure 5 ratio. ----

TEST(Integration, JacobiScratchpadSpeedupInPaperRange) {
  Machine m = Machine::geforce8800gtx();
  JacobiConfig c;
  c.n = 256 << 10;
  c.timeSteps = 4096;
  c.timeTile = 32;
  c.spaceTile = 256;
  c.numBlocks = 128;
  c.numThreads = 64;
  KernelModelJacobi with = jacobiMachineModel(c);
  c.useScratchpad = false;
  KernelModelJacobi without = jacobiMachineModel(c);
  SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
  SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
  ASSERT_TRUE(rw.feasible && rwo.feasible);
  double speedup = rwo.milliseconds / rw.milliseconds;
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 20.0);  // paper: ~10x
  double cpuRatio = simulateCpuMs(m, with.cpuOps, with.cpuMemElems) / rw.milliseconds;
  EXPECT_GT(cpuRatio, 8.0);
  EXPECT_LT(cpuRatio, 25.0);  // paper: ~15x
}

TEST(Integration, MeScratchpadSpeedupInPaperRange) {
  Machine m = Machine::geforce8800gtx();
  MeConfig c;
  c.ni = 4096;
  c.nj = 1024;
  c.w = 16;
  c.subTile = {32, 16, 16, 16};
  KernelModel with = modelMe(c);
  c.useScratchpad = false;
  KernelModel without = modelMe(c);
  SimResult rw = simulateLaunch(m, with.launch, with.perBlock);
  SimResult rwo = simulateLaunch(m, without.launch, without.perBlock);
  ASSERT_TRUE(rw.feasible && rwo.feasible);
  double speedup = rwo.milliseconds / rw.milliseconds;
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 12.0);  // paper: ~8x
  double cpuRatio = simulateCpuMs(m, with.cpuOps, with.cpuMemElems) / rw.milliseconds;
  EXPECT_GT(cpuRatio, 50.0);  // paper: >100x
}

// ---- Emitted code contains the complete Figure-3 structure. ----

TEST(Integration, EmittedTiledCodeIsComplete) {
  MeConfig c;
  c.ni = 16;
  c.nj = 8;
  c.w = 4;
  c.numBlocks = 2;
  c.numThreads = 32;
  c.subTile = {4, 4, 4, 4};
  MePipeline p = buildMePipeline(c);
  std::string code = emitC(p.kernel.unit);
  // All three buffers declared.
  EXPECT_NE(code.find("Lcur0"), std::string::npos);
  EXPECT_NE(code.find("Lref1"), std::string::npos);
  EXPECT_NE(code.find("Lout2"), std::string::npos);
  // Two parallel levels.
  EXPECT_NE(code.find("FORALL_BLOCKS"), std::string::npos);
  EXPECT_NE(code.find("FORALL_THREADS"), std::string::npos);
  // The SAD statement body with rewritten (buffer-relative) indices.
  EXPECT_NE(code.find("fabs("), std::string::npos);
}

}  // namespace
}  // namespace emm
