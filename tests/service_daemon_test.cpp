// End-to-end tests for the emmapcd compile-service daemon (service/server.h
// + service/client.h) over its real unix-domain socket.
//
//  - Fidelity: results compiled through the daemon are byte-identical to
//    local compiles of the same request.
//  - Shared store: N threads x M short-lived clients compiling a mix of
//    kernel families and sizes all succeed, and the daemon's family-tier
//    misses equal the number of DISTINCT families (one cold pipeline per
//    family, everything else served warm from the shared store).
//  - Protocol defense: malformed frames and stale schema fingerprints get
//    diagnostic ErrorReplies and count as protocol errors; the connection
//    drops without disturbing other clients.
//  - Graceful shutdown: stop() drains in-flight work, tells clients
//    "server shutting down" (never ECONNRESET), removes the socket file,
//    and refuses to usurp a live daemon's socket while replacing a stale
//    one.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "service/client.h"
#include "service/server.h"
#include "support/diagnostics.h"

namespace fs = std::filesystem;

namespace emm::svc {
namespace {

/// Fresh unique socket path per test (unlinked on destruction).
struct TempSocket {
  std::string path;
  TempSocket() {
    static std::atomic<int> counter{0};
    path = (fs::temp_directory_path() /
            ("emmsvc_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)) + ".sock"))
               .string();
    ::unlink(path.c_str());
  }
  ~TempSocket() { ::unlink(path.c_str()); }
};

CompileRequest request(const std::string& kernel, const std::vector<i64>& sizes) {
  IntVec params;
  buildKernelByName(kernel, sizes, params);
  Compiler c;
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("cuda");
  if (kernel == "figure1") c.scratchpadOnly(true).stageEverything(true);
  CompileRequest req;
  req.kernel = kernel;
  req.sizes = sizes;
  req.options = c.opts();
  return req;
}

CompileResult localReference(const CompileRequest& req) {
  IntVec params;
  Compiler c;
  c.source(buildKernelByName(req.kernel, req.sizes, params)).options(req.options);
  return c.compile();
}

TEST(ServiceDaemonTest, DaemonResultMatchesLocalCompile) {
  TempSocket sock;
  ServiceServer server({sock.path, 2, "", 64});
  server.start();
  ServiceClient client(sock.path);
  CompileRequest req = request("me", {256, 128, 16});
  WireCompileReply reply = client.compile(req);
  ASSERT_TRUE(reply.result.ok) << reply.result.firstError();
  EXPECT_FALSE(reply.serverCacheHit);  // first request: cold on the server
  CompileResult local = localReference(req);
  ASSERT_TRUE(local.ok);
  EXPECT_EQ(reply.result.artifact, local.artifact);  // byte-identical
  EXPECT_EQ(reply.result.search.subTile, local.search.subTile);
  EXPECT_GT(reply.roundTripMillis, 0.0);
  server.stop();
}

TEST(ServiceDaemonTest, ManyThreadsManyClientsMissOncePerFamily) {
  TempSocket sock;
  ServiceServer server({sock.path, 0, "", 256});
  server.start();

  // The working set: three families (me, matmul, figure1), several sizes
  // each. Warm each family once, sequentially — single-flight collapses
  // per-size duplicates, but two concurrent sizes of a never-seen family
  // would legitimately race two cold pipelines.
  struct Work {
    const char* kernel;
    std::vector<i64> sizes;
  };
  const std::vector<Work> work = {
      {"me", {256, 128, 16}},   {"me", {512, 128, 16}},  {"me", {256, 256, 16}},
      {"matmul", {128, 64, 32}}, {"matmul", {256, 64, 32}}, {"figure1", {64, 64}},
  };
  const i64 kFamilies = 3;
  {
    ServiceClient warmer(sock.path);
    for (const Work& w : work)
      ASSERT_TRUE(warmer.compile(request(w.kernel, w.sizes)).result.ok) << w.kernel;
  }

  // N threads x M short-lived clients each, hammering the warm store.
  constexpr int kThreads = 4;
  constexpr int kClientsPerThread = 3;
  std::atomic<int> failures{0};
  std::atomic<int> coldServed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int c = 0; c < kClientsPerThread; ++c) {
        ServiceClient client(sock.path);  // fresh connection each time
        for (size_t i = 0; i < work.size(); ++i) {
          const Work& w = work[(t + c + i) % work.size()];
          WireCompileReply r = client.compile(request(w.kernel, w.sizes));
          if (!r.result.ok) failures.fetch_add(1);
          // Everything was warmed above: no request may compile cold.
          if (!r.serverCacheHit && !r.serverFamilyHit && !r.serverDiskHit)
            coldServed.fetch_add(1);
        }
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(coldServed.load(), 0);

  WireStats s = server.stats();
  // Each DISTINCT family misses the family tier exactly twice, both on its
  // one cold pass: the connection-thread fast-path probe, then the
  // in-pipeline lookup. Every later size binds the family record on the
  // fast path and never reaches the result tier, so the result tier sees
  // one miss per family — not one per size.
  EXPECT_EQ(s.memory.familyMisses, 2 * kFamilies);
  EXPECT_EQ(s.memory.misses, kFamilies);
  const i64 totalRequests = static_cast<i64>(work.size() * (1 + kThreads * kClientsPerThread));
  EXPECT_EQ(s.compiles, totalRequests);
  // Every non-cold request was served by exactly one of: a fast-path record
  // bind (no pool dispatch, no emission) or a result-tier snapshot hit.
  EXPECT_EQ(s.familyFastPath + s.memory.hits, totalRequests - kFamilies);
  EXPECT_GT(s.familyFastPath, 0);
  EXPECT_EQ(s.compileErrors, 0);
  EXPECT_EQ(s.protocolErrors, 0);
  EXPECT_EQ(s.connections, 1 + kThreads * kClientsPerThread);
  server.stop();
}

TEST(ServiceDaemonTest, MalformedFramesGetDiagnosticsNotCrashes) {
  TempSocket sock;
  ServiceServer server({sock.path, 1, "", 16});
  server.start();

  // Raw socket speaking garbage: the server must reply with an ErrorReply
  // and close, counting a protocol error — and keep serving other clients.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock.path.c_str(), sock.path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::string garbage(kFrameHeaderBytes, '\x7F');
  ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
  MsgType type;
  std::string payload;
  std::string error;
  ASSERT_EQ(readFrame(fd, type, payload, error), ReadStatus::Ok) << error;
  ASSERT_EQ(type, MsgType::ErrorReply);
  WireError e = decodeErrorReply(payload);
  EXPECT_FALSE(e.shuttingDown);
  EXPECT_FALSE(e.message.empty());
  ::close(fd);

  // A stale schema fingerprint is refused with a diagnostic, not misparsed.
  int fd2 = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  CompileRequest req = request("me", {64, 64, 8});
  req.schemaFingerprint = 0xBADBADBADull;
  ASSERT_TRUE(writeFrame(fd2, MsgType::CompileRequest, encodeCompileRequest(req)));
  ASSERT_EQ(readFrame(fd2, type, payload, error), ReadStatus::Ok) << error;
  ASSERT_EQ(type, MsgType::ErrorReply);
  EXPECT_NE(decodeErrorReply(payload).message.find("fingerprint"), std::string::npos);
  ::close(fd2);

  // The daemon is unharmed: a well-formed client still compiles.
  ServiceClient client(sock.path);
  EXPECT_TRUE(client.compile(request("me", {64, 64, 8})).result.ok);
  WireStats s = server.stats();
  EXPECT_EQ(s.protocolErrors, 2);
  server.stop();
}

TEST(ServiceDaemonTest, UnknownKernelGetsDiagnosticReply) {
  TempSocket sock;
  ServiceServer server({sock.path, 1, "", 16});
  server.start();
  ServiceClient client(sock.path);
  CompileRequest req = request("me", {64, 64, 8});
  req.kernel = "no_such_kernel";
  try {
    client.compile(std::move(req));
    FAIL() << "unknown kernel accepted";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_kernel"), std::string::npos) << e.what();
  }
  server.stop();
}

TEST(ServiceDaemonTest, GracefulShutdownSaysSoInsteadOfResetting) {
  TempSocket sock;
  auto server = std::make_unique<ServiceServer>(ServiceServer::Options{sock.path, 1, "", 16});
  server->start();
  ServiceClient idle(sock.path);  // connected, no request in flight
  ASSERT_TRUE(idle.compile(request("me", {64, 64, 8})).result.ok);
  server->stop();
  // The drained server told the idle connection why before closing; the
  // next request surfaces that as a clean diagnostic, not ECONNRESET.
  try {
    idle.compile(request("me", {64, 64, 8}));
    FAIL() << "compile succeeded against a stopped server";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("shutting down"), std::string::npos) << e.what();
  }
  // The socket file is gone after a graceful stop.
  EXPECT_FALSE(fs::exists(sock.path));
  server.reset();

  // A stale socket FILE (no daemon behind it) is replaced on start...
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock.path.c_str(), sock.path.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ::close(fd);  // bound then closed: the file remains, nobody listens
  ASSERT_TRUE(fs::exists(sock.path));
  ServiceServer replacement({sock.path, 1, "", 16});
  replacement.start();
  ServiceClient again(sock.path);
  EXPECT_TRUE(again.compile(request("me", {64, 64, 8})).result.ok);

  // ...but a LIVE daemon's socket is never usurped.
  ServiceServer usurper({sock.path, 1, "", 16});
  EXPECT_THROW(usurper.start(), ApiError);
  replacement.stop();
}

TEST(ServiceDaemonTest, StopIsIdempotentAndStatsSurviveIt) {
  TempSocket sock;
  ServiceServer server({sock.path, 1, "", 16});
  server.start();
  {
    ServiceClient client(sock.path);
    ASSERT_TRUE(client.compile(request("matmul", {64, 64, 32})).result.ok);
  }
  server.stop();
  server.stop();  // second stop is a no-op
  WireStats s = server.stats();
  EXPECT_EQ(s.compiles, 1);
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace emm::svc
