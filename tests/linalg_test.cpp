// Tests for exact integer linear algebra.
#include <gtest/gtest.h>

#include "linalg/matrix.h"

namespace emm {
namespace {

TEST(IntMat, ConstructionAndAccess) {
  IntMat m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(1, 2), 6);
  m.at(0, 0) = 9;
  EXPECT_EQ(m.at(0, 0), 9);
}

TEST(IntMat, Identity) {
  IntMat id = IntMat::identity(3);
  EXPECT_EQ(id.at(0, 0), 1);
  EXPECT_EQ(id.at(0, 1), 0);
  EXPECT_EQ(id * id, id);
}

TEST(IntMat, Product) {
  IntMat a{{1, 2}, {3, 4}};
  IntMat b{{5, 6}, {7, 8}};
  IntMat c = a * b;
  EXPECT_EQ(c, (IntMat{{19, 22}, {43, 50}}));
}

TEST(IntMat, ApplyVector) {
  IntMat a{{1, 0, 2}, {0, 3, -1}};
  IntVec v{4, 5, 6};
  EXPECT_EQ(a.apply(v), (IntVec{16, 9}));
}

TEST(IntMat, RowOps) {
  IntMat m{{1, 2}, {3, 4}};
  m.appendRow({5, 6});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.row(2), (IntVec{5, 6}));
  m.removeRow(0);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.row(0), (IntVec{3, 4}));
}

TEST(IntMat, Transpose) {
  IntMat m{{1, 2, 3}, {4, 5, 6}};
  IntMat t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.at(2, 1), 6);
  EXPECT_EQ(t.transposed(), m);
}

TEST(IntMat, RankFullAndDeficient) {
  EXPECT_EQ((IntMat{{1, 0}, {0, 1}}).rank(), 2);
  EXPECT_EQ((IntMat{{1, 2}, {2, 4}}).rank(), 1);
  EXPECT_EQ((IntMat{{0, 0}, {0, 0}}).rank(), 0);
  // The Algorithm-1 shape: access out[i][j] in a 4-deep nest has rank 2 < 4.
  IntMat meOut{{1, 0, 0, 0}, {0, 1, 0, 0}};
  EXPECT_EQ(meOut.rank(), 2);
  // cur[i+k][j+l]: rank 2 as well (rows span 2 dims).
  IntMat meCur{{1, 0, 1, 0}, {0, 1, 0, 1}};
  EXPECT_EQ(meCur.rank(), 2);
}

TEST(IntMat, RankRectangular) {
  IntMat wide{{1, 2, 3, 4}};
  EXPECT_EQ(wide.rank(), 1);
  IntMat tall{{1}, {2}, {3}};
  EXPECT_EQ(tall.rank(), 1);
  IntMat mixed{{1, 0, 1}, {0, 1, 1}, {1, 1, 2}};
  EXPECT_EQ(mixed.rank(), 2);  // row3 = row1 + row2
}

TEST(Vectors, NormalizeByGcd) {
  IntVec v{4, -6, 8};
  normalizeByGcd(v);
  EXPECT_EQ(v, (IntVec{2, -3, 4}));
  IntVec zero{0, 0};
  normalizeByGcd(zero);
  EXPECT_EQ(zero, (IntVec{0, 0}));
}

TEST(Vectors, Dot) {
  EXPECT_EQ(dot({1, 2, 3}, {4, 5, 6}), 32);
  EXPECT_EQ(dot({}, {}), 0);
}

TEST(Solve, ConsistentSystem) {
  IntMat a{{2, 0}, {0, 3}};
  std::vector<Rat> x;
  ASSERT_TRUE(solveRational(a, {4, 9}, x));
  EXPECT_EQ(x[0], Rat(2));
  EXPECT_EQ(x[1], Rat(3));
}

TEST(Solve, InconsistentSystem) {
  IntMat a{{1, 1}, {1, 1}};
  std::vector<Rat> x;
  EXPECT_FALSE(solveRational(a, {1, 2}, x));
}

TEST(Solve, Underdetermined) {
  IntMat a{{1, 1}};
  std::vector<Rat> x;
  ASSERT_TRUE(solveRational(a, {5}, x));
  EXPECT_EQ(x[0] + x[1], Rat(5));
}

TEST(Nullspace, RankDeficient) {
  IntMat a{{1, 2}, {2, 4}};
  auto basis = nullspace(a);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(dot(a.row(0), basis[0]), 0);
}

TEST(Nullspace, FullRank) {
  EXPECT_TRUE(nullspace(IntMat{{1, 0}, {0, 1}}).empty());
}

TEST(Nullspace, WideMatrix) {
  IntMat a{{1, 1, 1}};
  auto basis = nullspace(a);
  ASSERT_EQ(basis.size(), 2u);
  for (const IntVec& v : basis) EXPECT_EQ(dot(a.row(0), v), 0);
}

TEST(Hnf, DiagonalizesSimpleCases) {
  IntMat a{{2, 4}, {0, 3}};
  IntMat h = hermiteNormalForm(a);
  // Pivots positive; above-left entries reduced.
  EXPECT_GT(h.at(0, 0), 0);
  EXPECT_GT(h.at(1, 1), 0);
}

TEST(Hnf, PreservesColumnLattice) {
  // HNF of a unimodular matrix of determinant 1 is the identity.
  IntMat u{{1, 1}, {0, 1}};
  EXPECT_EQ(hermiteNormalForm(u), IntMat::identity(2));
}

class RankProperty : public ::testing::TestWithParam<int> {};

TEST_P(RankProperty, OuterProductHasRankOne) {
  int n = GetParam();
  IntMat m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = mulChecked(i + 1, 2 * j + 1);
  EXPECT_EQ(m.rank(), 1);
}

TEST_P(RankProperty, IdentityPlusNilpotentIsFullRank) {
  int n = GetParam();
  IntMat m = IntMat::identity(n);
  for (int i = 0; i + 1 < n; ++i) m.at(i, i + 1) = 7;
  EXPECT_EQ(m.rank(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankProperty, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace emm
