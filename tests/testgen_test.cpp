// Tests for the differential verification subsystem (src/testgen): generator
// determinism and executability, the end-to-end differential sweep against
// the interpreter oracle (including the over-the-wire view through a live
// in-process ServiceServer), delta-minimizer convergence, the planted-bug
// self-test ("would the harness catch a real miscompile?"), and hostile-input
// safety of the .emmrepro reproducer format.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ir/program.h"
#include "service/server.h"
#include "support/serialize.h"
#include "testgen/diff_runner.h"
#include "testgen/generator.h"
#include "testgen/minimize.h"
#include "testgen/planted_bug.h"
#include "testgen/repro.h"

namespace emm::testgen {
namespace {

namespace fs = std::filesystem;

// ---- Generator. ----

TEST(ProgramGenerator, SameSeedAndIndexIsByteIdentical) {
  ProgramGenerator a, b;  // independent instances, same default options
  for (u64 i : {u64(0), u64(1), u64(7), u64(33), u64(258)}) {
    SCOPED_TRACE(i);
    const GeneratedProgram pa = a.generate(i);
    const GeneratedProgram pb = b.generate(i);
    EXPECT_EQ(serializeProgramBlock(pa.block), serializeProgramBlock(pb.block));
    EXPECT_EQ(pa.paramValues, pb.paramValues);
    EXPECT_EQ(describeProgram(pa), describeProgram(pb));
  }
}

TEST(ProgramGenerator, DifferentIndexOrSeedChangesTheProgram) {
  ProgramGenerator a;
  GeneratorOptions o2;
  o2.seed = 2;
  ProgramGenerator c(o2);
  EXPECT_NE(serializeProgramBlock(a.generate(0).block),
            serializeProgramBlock(a.generate(1).block));
  EXPECT_NE(serializeProgramBlock(a.generate(0).block),
            serializeProgramBlock(c.generate(0).block));
}

TEST(ProgramGenerator, ProgramsValidateAndTheOracleExecutesThem) {
  // The generator's contract: every program passes validate() (checked
  // inside generate()) and every access stays inside the declared extents,
  // so the reference interpreter must run without tripping bounds checks.
  ProgramGenerator gen;
  for (u64 i = 0; i < 50; ++i) {
    SCOPED_TRACE(i);
    const GeneratedProgram p = gen.generate(i);
    EXPECT_FALSE(describeProgram(p).empty());
    EXPECT_EQ(p.paramValues.size(), static_cast<size_t>(p.block.nparam()));
    ArrayStore store(p.block.arrays);
    store.fillAllPattern(5);
    executeReference(p.block, p.paramValues, store);
  }
}

// ---- Differential sweep. ----

TEST(Differential, TwoHundredProgramSweepIsClean) {
  SweepOptions sweep;  // pipeline + parametric + serialize views
  sweep.programs = 200;
  SweepStats stats;
  sweep.onFinding = [](const SweepFinding& f) {
    ADD_FAILURE() << "divergence at index " << f.program.index << " [" << f.result.failedCheck
                  << "] " << f.result.detail << "\n"
                  << describeProgram(f.minimized);
  };
  stats = runDifferentialSweep(sweep);
  EXPECT_EQ(stats.programs, 200);
  EXPECT_EQ(stats.divergences, 0);
  // The sweep must exercise both sides of the pipeline: programs that
  // compile to an executable unit and programs that fall back cleanly.
  EXPECT_GT(stats.compiled, 0);
  EXPECT_GT(stats.fallbacks, 0);
}

TEST(Differential, BindViewServesScaledSizesFromTheFamilyRecord) {
  // A tight scratchpad budget pins the tile argmin to the budget rather
  // than the trip counts, so scaled probes of a generated family tend to
  // re-certify to the record's tile and bind it instead of re-emitting.
  // The sweep must stay divergence-free AND actually exercise record binds
  // — if the guards rejected every probe the view would be vacuous.
  SweepOptions sweep;
  sweep.programs = 120;
  sweep.gen.minTrip = 12;
  sweep.gen.maxTrip = 16;
  sweep.gen.parametricPercent = 100;
  sweep.diff.baseOptions.memLimitBytes = 256;
  sweep.minimize = false;
  sweep.onFinding = [](const SweepFinding& f) {
    ADD_FAILURE() << "divergence at index " << f.program.index << " [" << f.result.failedCheck
                  << "] " << f.result.detail << "\n"
                  << describeProgram(f.minimized);
  };
  const SweepStats stats = runDifferentialSweep(sweep);
  EXPECT_EQ(stats.divergences, 0);
  EXPECT_GT(stats.compiled, 0);
  EXPECT_GT(stats.boundSizes, 0);  // the bind view served real record binds
}

TEST(Differential, WireViewAgreesWithLocalCompile) {
  const std::string socket =
      (fs::temp_directory_path() / ("testgen_wire_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ::unlink(socket.c_str());
  svc::ServiceServer server({socket, /*jobs=*/2, /*cacheDir=*/"", /*cacheCapacity=*/128,
                             /*cacheShards=*/1});
  server.start();

  SweepOptions sweep;
  sweep.programs = 40;
  sweep.diff.checkWire = true;
  sweep.diff.wireSocket = socket;
  const SweepStats stats = runDifferentialSweep(sweep);
  server.stop();
  ::unlink(socket.c_str());

  EXPECT_EQ(stats.divergences, 0);
  EXPECT_GT(stats.compiled, 0);  // the wire check ran on real kernels
}

// ---- Minimizer. ----

TEST(Minimizer, ConvergesToTheSmallestProgramUnderATrivialPredicate) {
  // An always-failing predicate makes every reduction acceptable, so the
  // fixpoint is the floor of the reduction system: one statement with its
  // write and a single read, the body a bare load.
  ProgramGenerator gen;
  const GeneratedProgram p = gen.generate(0);
  ASSERT_GT(p.block.statements.size(), 1u);
  const MinimizeResult m =
      minimizeProgram(p, [](const GeneratedProgram&) { return true; });
  EXPECT_TRUE(m.changed);
  EXPECT_GT(m.attempts, 0);
  ASSERT_EQ(m.program.block.statements.size(), 1u);
  EXPECT_LE(m.program.block.statements[0].accesses.size(), 2u);
  m.program.block.validate();  // reductions kept the block well-formed
}

TEST(Minimizer, RespectsThePredicateAndTheBudget) {
  ProgramGenerator gen;
  const GeneratedProgram p = gen.generate(0);
  const std::string original = serializeProgramBlock(p.block);

  // A never-failing predicate must leave the program untouched.
  const MinimizeResult untouched =
      minimizeProgram(p, [](const GeneratedProgram&) { return false; });
  EXPECT_FALSE(untouched.changed);
  EXPECT_EQ(serializeProgramBlock(untouched.program.block), original);

  // A zero budget performs no predicate evaluations at all.
  int calls = 0;
  const MinimizeResult none = minimizeProgram(
      p, [&](const GeneratedProgram&) { ++calls; return true; }, /*maxAttempts=*/0);
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(none.changed);
}

// ---- Planted-bug self-test. ----

TEST(Differential, PlantedTilerBugIsCaughtAndShrunk) {
  // The acceptance test for the whole subsystem: with a classic copy-loop
  // off-by-one planted into the final pass, the sweep must report pipeline
  // divergences (wrong answers, not crashes) and shrink each finding to a
  // tiny reproducer.
  SweepOptions sweep;
  sweep.programs = 60;
  sweep.diff.configureCompiler = plantTilerBug;
  sweep.diff.checkWire = false;  // the planted bug exists only locally
  std::vector<SweepFinding> findings;
  sweep.onFinding = [&](const SweepFinding& f) { findings.push_back(f); };
  const SweepStats stats = runDifferentialSweep(sweep);

  ASSERT_GT(stats.divergences, 0);
  ASSERT_EQ(static_cast<i64>(findings.size()), stats.divergences);
  for (const SweepFinding& f : findings) {
    SCOPED_TRACE(f.program.index);
    EXPECT_EQ(f.result.failedCheck, "pipeline");
    EXPECT_LE(f.minimized.block.statements.size(), 3u);
    // The minimized program still reproduces the divergence...
    DiffOptions planted;
    planted.configureCompiler = plantTilerBug;
    EXPECT_FALSE(DiffRunner(planted).run(f.minimized).ok);
    // ...and is clean under the unmodified pipeline: the finding indicts
    // the planted pass, not the generator.
    EXPECT_TRUE(DiffRunner().run(f.minimized).ok);
  }
}

TEST(ReproFormat, FindingsRoundTripThroughEmmreproFiles) {
  ProgramGenerator gen;
  Repro repro{gen.generate(17), "pipeline", "maxAbsDiff=3.5"};
  const std::string path =
      (fs::temp_directory_path() / ("testgen_repro_" + std::to_string(::getpid()) + ".emmrepro"))
          .string();
  writeReproFile(path, repro);
  const Repro back = readReproFile(path);
  fs::remove(path);
  EXPECT_EQ(serializeProgramBlock(back.program.block),
            serializeProgramBlock(repro.program.block));
  EXPECT_EQ(back.program.paramValues, repro.program.paramValues);
  EXPECT_EQ(back.program.seed, repro.program.seed);
  EXPECT_EQ(back.program.index, repro.program.index);
  EXPECT_EQ(back.failedCheck, repro.failedCheck);
  EXPECT_EQ(back.detail, repro.detail);
}

TEST(ReproFormat, HostileBytesAreRejectedCleanly) {
  ProgramGenerator gen;
  const std::string bytes = serializeRepro({gen.generate(5), "pipeline", "detail"});
  ASSERT_NO_THROW(deserializeRepro(bytes));

  // Every strict prefix must throw: the reader is bounds-checked end to end.
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_THROW(deserializeRepro(std::string_view(bytes).substr(0, keep)), SerializeError)
        << "prefix " << keep;
  }
  // Trailing garbage.
  EXPECT_THROW(deserializeRepro(bytes + "x"), SerializeError);
  // Bad magic.
  {
    std::string m = bytes;
    m[0] ^= 0x20;
    EXPECT_THROW(deserializeRepro(m), SerializeError);
  }
  // Corrupted payload: the digest check catches a single flipped bit even
  // when the flip yields a structurally decodable stream.
  {
    std::string m = bytes;
    m.back() ^= 0x01;
    EXPECT_THROW(deserializeRepro(m), SerializeError);
  }
  // Version and schema bytes directly after the 8-byte magic.
  for (size_t pos = 8; pos < std::min<size_t>(bytes.size(), 16); ++pos) {
    std::string m = bytes;
    m[pos] ^= 0x7F;
    EXPECT_THROW(deserializeRepro(m), SerializeError) << "byte " << pos;
  }
}

}  // namespace
}  // namespace emm::testgen
