// Tests for the parametric tile analysis: the SymExpr layer, the
// ParametricTilePlan's equivalence with the concrete per-candidate
// evaluator (ME, jacobi 1-D/2-D, matmul; randomized candidate points), the
// fallback diagnostics, and byte-identical pipeline artifacts across the
// two evaluation paths.
#include <gtest/gtest.h>

#include <random>

#include "deps/dependence.h"
#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "sym/sym_expr.h"
#include "tilesearch/tile_evaluator.h"
#include "transform/transform.h"

namespace emm {
namespace {

// ---- SymExpr layer. ----

TEST(SymExprTest, ConstantFoldingAndIdentities) {
  SymPtr five = SymExpr::add(SymExpr::constant(2), SymExpr::constant(3));
  ASSERT_EQ(five->kind(), SymExpr::Kind::Const);
  EXPECT_EQ(five->constValue(), 5);
  SymPtr t = SymExpr::param(0, "T");
  EXPECT_EQ(SymExpr::mul(SymExpr::constant(1), t).get(), t.get());
  EXPECT_EQ(SymExpr::add(t, SymExpr::constant(0)).get(), t.get());
  EXPECT_EQ(SymExpr::mul(t, SymExpr::constant(0))->constValue(), 0);
  EXPECT_EQ(SymExpr::floorDiv(t, SymExpr::constant(1)).get(), t.get());
  EXPECT_EQ(SymExpr::ceilDiv(SymExpr::constant(7), SymExpr::constant(2))->constValue(), 4);
  EXPECT_EQ(SymExpr::floorDiv(SymExpr::constant(-7), SymExpr::constant(2))->constValue(), -4);
}

TEST(SymExprTest, EvaluatesAffineMinMaxAndDivisions) {
  SymPtr t0 = SymExpr::param(0, "T0");
  SymPtr t1 = SymExpr::param(1, "T1");
  // e = min(3*T0 + T1 - 1, 40) and occ = ceil(100 / T0)
  SymPtr e = SymExpr::min(SymExpr::affine(-1, {{3, t0}, {1, t1}}), SymExpr::constant(40));
  SymPtr occ = SymExpr::ceilDiv(SymExpr::constant(100), t0);
  EXPECT_EQ(e->eval({4, 8}), 19);
  EXPECT_EQ(e->eval({16, 8}), 40);  // capped by the min
  EXPECT_EQ(occ->eval({16, 8}), 7);
  EXPECT_EQ(occ->eval({3, 8}), 34);
  EXPECT_EQ(e->maxParamIndex(), 1);
  EXPECT_EQ(occ->maxParamIndex(), 0);
  EXPECT_NE(e->str().find("min("), std::string::npos);
}

TEST(SymExprTest, RationalEvaluationRoundsDivisionsExactly) {
  SymPtr t = SymExpr::param(0, "T");
  SymPtr e = SymExpr::ceilDiv(SymExpr::affine(1, {{1, t}}), SymExpr::constant(2));
  // At T = 5/2: ceil((5/2 + 1) / 2) = ceil(7/4) = 2, an exact integer Rat.
  Rat v = e->evalRat({Rat(5, 2)});
  EXPECT_TRUE(v.isInteger());
  EXPECT_EQ(v.num(), 2);
  // Plain affine arithmetic stays rational: (T + 1) at T=5/2 is 7/2.
  Rat a = SymExpr::affine(1, {{1, t}})->evalRat({Rat(5, 2)});
  EXPECT_EQ(a, Rat(7, 2));
}

TEST(SymExprTest, IntervalEnclosureIsTightForMonotoneOps) {
  SymPtr t0 = SymExpr::param(0, "T0");
  SymPtr t1 = SymExpr::param(1, "T1");
  // footprint-shaped: (T0 + 2) * T1
  SymPtr fp = SymExpr::mul(SymExpr::affine(2, {{1, t0}}), t1);
  SymInterval box0{1, 32}, box1{2, 8};
  SymInterval r = fp->evalInterval({box0, box1});
  EXPECT_EQ(r.lo, 3 * 2);
  EXPECT_EQ(r.hi, 34 * 8);
  // trip-count-shaped: ceil(100 / T0) is antitone in T0.
  SymInterval occ = SymExpr::ceilDiv(SymExpr::constant(100), t0)->evalInterval({box0, box1});
  EXPECT_EQ(occ.lo, 4);   // at T0 = 32
  EXPECT_EQ(occ.hi, 100);  // at T0 = 1
  // min/max combine endpoint-wise.
  SymInterval m = SymExpr::min(t0, t1)->evalInterval({box0, box1});
  EXPECT_EQ(m.lo, 1);
  EXPECT_EQ(m.hi, 8);
}

TEST(SymExprTest, RejectsNonPositiveDivisors) {
  EXPECT_THROW(SymExpr::ceilDiv(SymExpr::constant(4), SymExpr::constant(0)), ApiError);
  EXPECT_THROW(SymExpr::floorDiv(SymExpr::constant(4), SymExpr::constant(-2)), ApiError);
}

TEST(SymExprTest, DivisionIntervalsStaySoundForNegativeNumerators) {
  // Regression: for a negative numerator the quotient grows with the
  // divisor, so the enclosure must come from the four corners, not from a
  // fixed monotonicity assumption.
  SymPtr n = SymExpr::param(0, "n");
  SymPtr d = SymExpr::param(1, "d");
  SymInterval f = SymExpr::floorDiv(n, d)->evalInterval({{-10, -4}, {1, 5}});
  EXPECT_EQ(f.lo, -10);  // floor(-10 / 1)
  EXPECT_EQ(f.hi, -1);   // floor(-4 / 5)
  SymInterval c = SymExpr::ceilDiv(n, d)->evalInterval({{-10, -4}, {1, 5}});
  EXPECT_EQ(c.lo, -10);
  EXPECT_EQ(c.hi, 0);  // ceil(-4 / 5)
  // Mixed-sign numerator spans zero.
  SymInterval m = SymExpr::floorDiv(n, d)->evalInterval({{-3, 7}, {2, 2}});
  EXPECT_EQ(m.lo, -2);
  EXPECT_EQ(m.hi, 3);
}

// ---- Parametric vs concrete evaluator equivalence. ----

void expectSameEvaluation(const TileEvaluation& a, const TileEvaluation& b,
                          const std::vector<i64>& tile) {
  std::string at = "tile (";
  for (size_t i = 0; i < tile.size(); ++i) at += (i ? "," : "") + std::to_string(tile[i]);
  at += ")";
  EXPECT_EQ(a.feasible, b.feasible) << at;
  EXPECT_EQ(a.reason, b.reason) << at;
  EXPECT_EQ(a.footprint, b.footprint) << at;
  // Bit-identical, not merely close: both paths combine identical integers
  // with the same floating-point expression.
  EXPECT_EQ(a.cost, b.cost) << at;
  ASSERT_EQ(a.terms.size(), b.terms.size()) << at;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].name, b.terms[i].name) << at;
    EXPECT_EQ(a.terms[i].occurrences, b.terms[i].occurrences) << at;
    EXPECT_EQ(a.terms[i].volumeIn, b.terms[i].volumeIn) << at;
    EXPECT_EQ(a.terms[i].volumeOut, b.terms[i].volumeOut) << at;
    EXPECT_EQ(a.terms[i].hoistLevel, b.terms[i].hoistLevel) << at;
  }
}

/// Evaluates ladder corners plus `randomProbes` random candidate points
/// through both evaluation paths and asserts identical results everywhere.
void runEquivalence(const ProgramBlock& block, const ParallelismPlan& plan, const IntVec& params,
                    i64 memLimitElems, unsigned seed, int randomProbes = 30) {
  TileSearchOptions opts;
  opts.paramValues = params;
  opts.memLimitElems = memLimitElems;
  opts.innerProcs = 4;  // small P: most random candidates survive the cheap cut
  SmemOptions smem;
  smem.sampleParams = params;

  TileSearchOptions concreteOpts = opts;
  concreteOpts.parametric = false;
  TileEvaluator parametric(block, plan, opts, smem);
  TileEvaluator concrete(block, plan, concreteOpts, smem);

  const int depth = parametric.depth();
  std::vector<std::vector<i64>> tiles;
  // Ladder corners and midpoints stress the boundary formulas.
  std::vector<i64> lo(depth), mid(depth), hi(depth);
  for (int l = 0; l < depth; ++l) {
    const std::vector<i64>& c = parametric.candidates()[l];
    lo[l] = c.front();
    mid[l] = c[c.size() / 2];
    hi[l] = c.back();
  }
  tiles.push_back(lo);
  tiles.push_back(mid);
  tiles.push_back(hi);
  std::mt19937 rng(seed);
  for (int i = 0; i < randomProbes; ++i) {
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) {
      i64 range = std::max<i64>(parametric.loopRange(l), 1);
      tile[l] = std::uniform_int_distribution<i64>(1, range)(rng);
    }
    tiles.push_back(std::move(tile));
  }

  int feasibleSeen = 0;
  for (const std::vector<i64>& tile : tiles) {
    const TileEvaluation& a = parametric.evaluate(tile);
    const TileEvaluation& b = concrete.evaluate(tile);
    expectSameEvaluation(a, b, tile);
    feasibleSeen += a.feasible ? 1 : 0;
  }
  ASSERT_GT(feasibleSeen, 0) << "equivalence run never exercised the feasible path";
  EXPECT_EQ(parametric.parametricState(), TileEvaluator::ParametricState::Active)
      << parametric.fallbackReason();
  EXPECT_EQ(concrete.parametricState(), TileEvaluator::ParametricState::Fallback);
  // The parametric path pays for exactly the two validation probes.
  EXPECT_LE(parametric.analysesRun(), 2);
  EXPECT_GT(concrete.analysesRun(), 2);

  // Interval sanity: every evaluated footprint lies inside the plan's
  // enclosure over the full tile box.
  const ParametricTilePlan* symPlan = parametric.parametricPlan();
  ASSERT_NE(symPlan, nullptr);
  std::vector<SymInterval> box(depth);
  for (int l = 0; l < depth; ++l) box[l] = {1, std::max<i64>(parametric.loopRange(l), 1)};
  SymInterval enclosure = symPlan->footprintInterval(box);
  for (const std::vector<i64>& tile : tiles) {
    const TileEvaluation& ev = parametric.evaluate(tile);
    if (ev.footprint == 0) continue;  // cheap-rejected candidates carry none
    EXPECT_GE(ev.footprint, enclosure.lo);
    EXPECT_LE(ev.footprint, enclosure.hi);
  }
}

TEST(ParametricEquivalence, MeKernelMatchesConcreteEvaluationEverywhere) {
  ProgramBlock block = buildMeBlock(32, 32, 8);
  std::vector<Dependence> deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  runEquivalence(block, plan, {32, 32, 8}, 2048, /*seed=*/1);
}

TEST(ParametricEquivalence, Jacobi1dMatchesConcreteEvaluationEverywhere) {
  // The driver maps Jacobi through the concurrent-start kernels, but the
  // Section-3/4.3 machinery itself is well-defined on the block; both
  // evaluation paths must agree on it all the same.
  ProgramBlock block = buildJacobiBlock(64, 8);
  runEquivalence(block, ParallelismPlan{}, {64, 8}, 4096, /*seed=*/2);
}

TEST(ParametricEquivalence, Jacobi2dMatchesConcreteEvaluationEverywhere) {
  ProgramBlock block = buildJacobi2dBlock(24, 20, 6);
  runEquivalence(block, ParallelismPlan{}, {24, 20, 6}, 8192, /*seed=*/3);
}

TEST(ParametricEquivalence, MatmulMatchesConcreteEvaluationEverywhere) {
  ProgramBlock block = buildMatmulBlock(48, 40, 32);
  std::vector<Dependence> deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  runEquivalence(block, plan, {48, 40, 32}, 4096, /*seed=*/4);
}

TEST(ParametricEquivalence, StageEverythingModeMatchesToo) {
  // Cell-style staging (onlyBeneficial = false) buffers every partition;
  // the parametric path must reproduce that configuration as well.
  ProgramBlock block = buildMeBlock(32, 32, 8);
  TileSearchOptions opts;
  opts.paramValues = {32, 32, 8};
  opts.memLimitElems = 4096;
  opts.innerProcs = 4;
  SmemOptions smem;
  smem.sampleParams = {32, 32, 8};
  smem.onlyBeneficial = false;
  TileSearchOptions concreteOpts = opts;
  concreteOpts.parametric = false;
  TileEvaluator parametric(block, ParallelismPlan{}, opts, smem);
  TileEvaluator concrete(block, ParallelismPlan{}, concreteOpts, smem);
  for (const std::vector<i64>& tile :
       {std::vector<i64>{8, 8, 8, 8}, {4, 4, 8, 8}, {16, 8, 4, 4}, {32, 32, 8, 8}})
    expectSameEvaluation(parametric.evaluate(tile), concrete.evaluate(tile), tile);
  EXPECT_EQ(parametric.parametricState(), TileEvaluator::ParametricState::Active)
      << parametric.fallbackReason();
}

/// Interleaved symbolic components with asymmetric members: A's references
/// in discovery order are r0=A[0][j], r1=A[1][0], r2=A[0][j+1]; the
/// symbolic overlap components {r0,r2} and {r1} INTERLEAVE by reference
/// index, and {r0,r2} splits at T_j = 1. Partition discovery order (and
/// with it buffer naming and the per-term stats) must match the concrete
/// analysis exactly: r1 hoists to level 0 (its data space ignores both
/// origins) while r0/r2 stay innermost, so emitting groups component by
/// component would visibly swap the second and third terms.
ProgramBlock buildInterleavedBlock(i64 n) {
  ProgramBlock block;
  block.name = "interleaved";
  block.paramNames = {"N", "Tt"};
  block.arrays = {{"A", {2, n + 1}}, {"B", {n}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(2, 2);
  // Rows over [t, j, N, Tt, 1]: 0 <= t <= Tt-1, 0 <= j <= N-1.
  s.domain.addInequality({1, 0, 0, 0, 0});
  s.domain.addInequality({-1, 0, 0, 1, -1});
  s.domain.addInequality({0, 1, 0, 0, 0});
  s.domain.addInequality({0, -1, 1, 0, -1});
  auto accessTo = [](int arrayId, bool isWrite, std::vector<IntVec> rows) {
    Access a;
    a.arrayId = arrayId;
    a.isWrite = isWrite;
    a.fn = IntMat(0, 5);
    for (const IntVec& r : rows) a.fn.appendRow(r);
    return a;
  };
  s.accesses = {
      accessTo(1, true, {{0, 1, 0, 0, 0}}),                    // B[j]
      accessTo(0, false, {{0, 0, 0, 0, 0}, {0, 1, 0, 0, 0}}),  // A[0][j]
      accessTo(0, false, {{0, 0, 0, 0, 1}, {0, 0, 0, 0, 0}}),  // A[1][0]
      accessTo(0, false, {{0, 0, 0, 0, 0}, {0, 1, 0, 0, 1}}),  // A[0][j+1]
  };
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::add(Expr::load(2), Expr::load(3)));
  s.schedule = ProgramBlock::interleavedSchedule(2, 2, {0, 0, 0});
  block.statements.push_back(std::move(s));
  block.validate();
  return block;
}

TEST(ParametricEquivalence, InterleavedComponentsRefineInConcreteOrder) {
  ProgramBlock block = buildInterleavedBlock(32);
  TileSearchOptions opts;
  opts.paramValues = {32, 8};
  opts.memLimitElems = 4096;
  opts.innerProcs = 2;
  SmemOptions smem;
  smem.sampleParams = {32, 8};
  TileSearchOptions concreteOpts = opts;
  concreteOpts.parametric = false;
  TileEvaluator parametric(block, ParallelismPlan{}, opts, smem);
  TileEvaluator concrete(block, ParallelismPlan{}, concreteOpts, smem);
  // T_j = 1 splits {r0,r2}; partition order must come out in global
  // discovery order (r0, r1, r2), not component-by-component (r0, r2, r1).
  for (const std::vector<i64>& tile :
       {std::vector<i64>{8, 1}, {4, 1}, {2, 1}, {5, 1}, {8, 2}, {3, 3}, {8, 8}, {2, 32}})
    expectSameEvaluation(parametric.evaluate(tile), concrete.evaluate(tile), tile);
  EXPECT_EQ(parametric.parametricState(), TileEvaluator::ParametricState::Active)
      << parametric.fallbackReason();
  const TileEvaluation& split = parametric.evaluate({8, 1});
  ASSERT_TRUE(split.feasible) << split.reason;
  ASSERT_EQ(split.terms.size(), 4u);  // A split into three + B
  // terms[1] must be the A[1][0] partition: hoisted all the way out.
  EXPECT_EQ(split.terms[1].name, "LA1");
  EXPECT_EQ(split.terms[1].hoistLevel, 0);
  EXPECT_EQ(split.terms[2].hoistLevel, 2);
}

// ---- Fallback diagnostics. ----

/// A plain 2-D copy kernel: every access has rank == iteration dim, so no
/// partition has order-of-magnitude reuse and the benefit verdict needs the
/// sampled constant-reuse test — which depends on tile sizes.
ProgramBlock buildCopyBlock(i64 n) {
  ProgramBlock block;
  block.name = "copy2d";
  block.paramNames = {"N"};
  block.arrays = {{"A", {n, n}}, {"B", {n, n}}};
  Statement s;
  s.name = "Scopy";
  s.domain = Polyhedron(2, 1);
  // 0 <= i,j <= N-1.
  for (int v = 0; v < 2; ++v) {
    IntVec lo(4, 0), hi(4, 0);
    lo[v] = 1;
    s.domain.addInequality(lo);
    hi[v] = -1;
    hi[2] = 1;
    hi[3] = -1;
    s.domain.addInequality(hi);
  }
  IntMat fn(0, 4);
  {
    IntVec r0(4, 0), r1(4, 0);
    r0[0] = 1;
    r1[1] = 1;
    fn.appendRow(r0);
    fn.appendRow(r1);
  }
  Access w;
  w.arrayId = 1;
  w.isWrite = true;
  w.fn = fn;
  Access r;
  r.arrayId = 0;
  r.isWrite = false;
  r.fn = fn;
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(2, 1, {0, 0, 0});
  block.statements.push_back(std::move(s));
  block.validate();
  return block;
}

TEST(ParametricFallback, RectangularBenefitVerdictCompilesSymbolically) {
  // Every access has rank == iteration dim, so the Algorithm-1 verdict
  // needs the sampled constant-reuse test. The data spaces are axis-aligned
  // boxes, so the capped point counts are exact closed forms and the plan
  // compiles the verdict instead of falling back.
  ProgramBlock block = buildCopyBlock(32);
  TileSearchOptions opts;
  opts.paramValues = {32};
  opts.memLimitElems = 4096;
  opts.innerProcs = 1;
  SmemOptions smem;
  smem.sampleParams = {32};
  TileSearchOptions concreteOpts = opts;
  concreteOpts.parametric = false;
  TileEvaluator parametric(block, ParallelismPlan{}, opts, smem);
  TileEvaluator concrete(block, ParallelismPlan{}, concreteOpts, smem);
  for (const std::vector<i64>& tile :
       {std::vector<i64>{8, 8}, {1, 1}, {4, 16}, {32, 32}, {2, 8}})
    expectSameEvaluation(parametric.evaluate(tile), concrete.evaluate(tile), tile);
  EXPECT_EQ(parametric.parametricState(), TileEvaluator::ParametricState::Active)
      << parametric.fallbackReason();
}

TEST(ParametricFallback, NonRectangularBenefitVerdictFallsBackWithAReason) {
  // Skew the read to A[i+j][j]: its data space is a parallelogram, not an
  // axis-aligned box, so the box point count stops being exact and the
  // tile-dependent verdict is no longer compilable — the evaluator must
  // fall back with a reason instead of serving wrong counts.
  ProgramBlock block = buildCopyBlock(32);
  block.arrays[0].extents = {64, 32};  // room for the skewed footprint
  for (Statement& s : block.statements)
    for (Access& a : s.accesses)
      if (!a.isWrite) a.fn.at(0, 1) = 1;  // row 0: i + j
  block.validate();
  TileSearchOptions opts;
  opts.paramValues = {32};
  opts.memLimitElems = 4096;
  opts.innerProcs = 1;
  SmemOptions smem;
  smem.sampleParams = {32};
  TileEvaluator evaluator(block, ParallelismPlan{}, opts, smem);
  const TileEvaluation& ev = evaluator.evaluate({8, 8});
  EXPECT_EQ(evaluator.parametricState(), TileEvaluator::ParametricState::Fallback);
  EXPECT_NE(evaluator.fallbackReason().find("order-of-magnitude"), std::string::npos)
      << evaluator.fallbackReason();
  // The fallback still evaluates candidates (concretely).
  EXPECT_TRUE(ev.feasible || !ev.reason.empty());
}

TEST(ParametricFallback, DisablingTheOptionPinsTheConcretePath) {
  ProgramBlock block = buildMeBlock(32, 32, 8);
  TileSearchOptions opts;
  opts.paramValues = {32, 32, 8};
  opts.parametric = false;
  SmemOptions smem;
  smem.sampleParams = {32, 32, 8};
  TileEvaluator evaluator(block, ParallelismPlan{}, opts, smem);
  evaluator.evaluate({8, 8, 8, 8});
  EXPECT_EQ(evaluator.parametricState(), TileEvaluator::ParametricState::Fallback);
  EXPECT_NE(evaluator.fallbackReason().find("disabled"), std::string::npos);
}

// ---- Full-pipeline equivalence (chosen tiles, geometry hints, artifacts). ----

CompileResult compileKernel(ProgramBlock block, const IntVec& params, bool parametric,
                            const std::string& backend) {
  Compiler compiler(std::move(block));
  compiler.parameters(params).memoryLimitBytes(8 * 1024).backend(backend);
  compiler.opts().parametricTileAnalysis = parametric;
  return compiler.compile();
}

TEST(ParametricPipeline, ArtifactsByteIdenticalAcrossEvaluationPaths) {
  struct Case {
    const char* name;
    ProgramBlock block;
    IntVec params;
  };
  std::vector<Case> cases;
  cases.push_back({"me", buildMeBlock(64, 64, 8), {64, 64, 8}});
  cases.push_back({"matmul", buildMatmulBlock(64, 48, 32), {64, 48, 32}});
  for (Case& c : cases) {
    for (const std::string& backend : {"c", "cuda"}) {
      CompileResult on = compileKernel(c.block, c.params, true, backend);
      CompileResult off = compileKernel(c.block, c.params, false, backend);
      ASSERT_TRUE(on.ok) << c.name << ": " << on.firstError();
      ASSERT_TRUE(off.ok) << c.name << ": " << off.firstError();
      EXPECT_TRUE(on.search.parametric) << c.name << ": " << on.search.parametricReason;
      EXPECT_FALSE(off.search.parametric);
      EXPECT_EQ(on.search.subTile, off.search.subTile) << c.name;
      EXPECT_EQ(on.search.eval.cost, off.search.eval.cost) << c.name;
      EXPECT_EQ(on.search.eval.footprint, off.search.eval.footprint) << c.name;
      ASSERT_FALSE(on.artifact.empty()) << c.name;
      EXPECT_EQ(on.artifact, off.artifact) << c.name << " backend " << backend;
      // The parametric route handed the tiler instantiated geometry hints.
      EXPECT_FALSE(on.geometryHints.empty()) << c.name;
      EXPECT_TRUE(off.geometryHints.empty()) << c.name;
    }
  }
}

TEST(ParametricPipeline, SurfacesPlanVsEvalTimings) {
  CompileResult r = compileKernel(buildMeBlock(64, 64, 8), {64, 64, 8}, true, "c");
  ASSERT_TRUE(r.ok) << r.firstError();
  const PassTiming* plan = r.timing("tilesearch.plan");
  const PassTiming* eval = r.timing("tilesearch.eval");
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(eval, nullptr);
  EXPECT_TRUE(plan->ran);
  EXPECT_GT(plan->millis, 0.0);
  EXPECT_GE(eval->millis, 0.0);
  EXPECT_GT(r.search.planBuildMillis, 0.0);
}

TEST(ParametricPipeline, JacobiPipelinesUnaffectedByTheKnob) {
  // Jacobi rides the pipeline-parallel fallback (no tile search); flipping
  // the knob must not change anything.
  for (const char* kernel : {"jacobi", "jacobi2d"}) {
    IntVec params;
    ProgramBlock on = buildKernelByName(kernel, {}, params);
    ProgramBlock off = on;
    CompileResult a = compileKernel(std::move(on), params, true, "c");
    CompileResult b = compileKernel(std::move(off), params, false, "c");
    ASSERT_TRUE(a.ok) << kernel << ": " << a.firstError();
    ASSERT_TRUE(b.ok) << kernel;
    EXPECT_EQ(a.artifact, b.artifact) << kernel;
  }
}

}  // namespace
}  // namespace emm
