// Tests for the versioned plan serialization layer: primitive encodings,
// hostile-input rejection, and full CompileResult round-trips over every
// built-in kernel (the products must replay byte-identically — same
// artifact, costs, tile choices, diagnostics, and timings — and the
// deserialized code unit must execute identically in the interpreter).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "driver/compiler.h"
#include "driver/family_plan.h"
#include "driver/plan_cache.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "support/serialize.h"
#include "testgen/generator.h"

namespace emm {
namespace {

// ---- Primitive encodings. ----

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32v(0xDEADBEEF);
  w.u64v(0x0123456789ABCDEFull);
  w.i64v(-42);
  w.boolean(true);
  w.boolean(false);
  w.f64(-0.0);
  w.f64(3.14159);
  w.str("hello");
  w.str("");

  ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32v(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64v(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64v(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  double negZero = r.f64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteCodec, EncodingIsLittleEndianByteByByte) {
  ByteWriter w;
  w.u32v(0x01020304);
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(ByteCodec, NaNBitPatternSurvives) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.buffer());
  EXPECT_TRUE(std::isnan(r.f64()));
}

TEST(ByteCodec, TruncatedReadsThrowInsteadOfCrashing) {
  ByteWriter w;
  w.u64v(7);
  std::string bytes = w.take();
  bytes.resize(3);
  ByteReader r(bytes);
  EXPECT_THROW(r.u64v(), SerializeError);
}

TEST(ByteCodec, HugeCountIsRejectedBeforeAllocation) {
  ByteWriter w;
  w.u64v(std::numeric_limits<u64>::max() / 2);  // absurd element count
  ByteReader r(w.buffer());
  EXPECT_THROW(r.count(8), SerializeError);
}

TEST(ByteCodec, StringLengthBeyondInputThrows) {
  ByteWriter w;
  w.u64v(1000);  // claims 1000 bytes follow
  w.u8('x');
  ByteReader r(w.buffer());
  EXPECT_THROW(r.str(), SerializeError);
}

TEST(ByteCodec, ExpectEndFlagsTrailingGarbage) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expectEnd(), SerializeError);
}

// ---- Schema identity. ----

TEST(Schema, FingerprintIsStableWithinABuild) {
  EXPECT_EQ(serializeSchemaFingerprint(), serializeSchemaFingerprint());
  EXPECT_NE(serializeSchemaFingerprint(), 0u);
}

TEST(Schema, BlockAndOptionEncodingsAreCanonical) {
  EXPECT_EQ(serializeProgramBlock(buildMeBlock(64, 32, 8)),
            serializeProgramBlock(buildMeBlock(64, 32, 8)));
  EXPECT_NE(serializeProgramBlock(buildMeBlock(64, 32, 8)),
            serializeProgramBlock(buildMeBlock(64, 32, 16)));
  CompileOptions a, b;
  EXPECT_EQ(serializeCompileOptions(a), serializeCompileOptions(b));
  b.memLimitBytes += 1;
  EXPECT_NE(serializeCompileOptions(a), serializeCompileOptions(b));
}

// ---- Full-plan round trips. ----

/// Compiles a built-in kernel the way emmapc would configure it.
CompileResult compileKernel(const std::string& name, const std::string& backend) {
  IntVec params;
  ProgramBlock block = buildKernelByName(name, {}, params);
  Compiler c(std::move(block));
  const bool fig1 = name == "figure1";
  c.parameters(params)
      .memoryLimitBytes(16 * 1024)
      .backend(backend)
      .scratchpadOnly(fig1)
      .stageEverything(fig1)
      .partition(fig1 ? PartitionMode::PerArrayUnion : PartitionMode::MaximalDisjoint);
  return c.compile();
}

/// The strong oracle: re-serializing the deserialized result must reproduce
/// the original byte stream exactly — any field dropped or altered by the
/// reader shows up as a byte difference.
void expectRoundTripIdentity(const CompileResult& r) {
  const std::string bytes = serializeCompileResult(r);
  CompileResult back = deserializeCompileResult(bytes);
  EXPECT_EQ(serializeCompileResult(back), bytes);

  // Field-level spot checks (redundant with the byte identity, but they
  // localize a failure).
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.artifact, r.artifact);
  EXPECT_EQ(back.search.subTile, r.search.subTile);
  EXPECT_EQ(back.search.eval.cost, r.search.eval.cost);  // bit-identical double
  EXPECT_EQ(back.search.eval.footprint, r.search.eval.footprint);
  EXPECT_EQ(back.diagnostics.size(), r.diagnostics.size());
  EXPECT_EQ(back.timings.size(), r.timings.size());
  EXPECT_EQ(back.kernel.has_value(), r.kernel.has_value());
  EXPECT_EQ(back.scratchpadUnit.has_value(), r.scratchpadUnit.has_value());
  EXPECT_EQ(back.blockPlan.has_value(), r.blockPlan.has_value());

  // Back-pointers must land on the deserialized blocks, not the originals.
  if (back.kernel) {
    EXPECT_EQ(back.kernel->unit.source, back.kernel->analysis.tileBlock.get());
    EXPECT_EQ(back.kernel->analysis.plan.block, back.kernel->analysis.tileBlock.get());
  }
  if (back.blockPlan && r.blockPlan && r.blockPlan->block != nullptr) {
    EXPECT_NE(back.blockPlan->block, r.blockPlan->block);
    EXPECT_TRUE(back.blockPlan->block == back.input.get() ||
                back.blockPlan->block == back.transformed.get());
  }
}

TEST(PlanRoundTrip, EveryBuiltinKernelReplaysByteIdentically) {
  for (const std::string& name : builtinKernelNames()) {
    SCOPED_TRACE(name);
    CompileResult r = compileKernel(name, "c");
    ASSERT_TRUE(r.ok) << r.firstError();
    expectRoundTripIdentity(r);
  }
}

TEST(PlanRoundTrip, CudaAndCellArtifactsSurvive) {
  for (const std::string& backend : {std::string("cuda"), std::string("cell")}) {
    SCOPED_TRACE(backend);
    CompileResult r = compileKernel("me", backend);
    ASSERT_TRUE(r.ok) << r.firstError();
    EXPECT_FALSE(r.artifact.empty());
    expectRoundTripIdentity(r);
  }
}

TEST(PlanRoundTrip, DeserializedUnitExecutesIdentically) {
  const IntVec params = {16, 16, 4};  // small so the interpreter run is fast
  Compiler c(buildMeBlock(params[0], params[1], params[2]));
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("c");
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  ASSERT_TRUE(r.kernel.has_value());
  CompileResult back = deserializeCompileResult(serializeCompileResult(r));

  IntVec ext = params;
  ext.resize(r.kernel->analysis.tileBlock->paramNames.size(), 0);

  ArrayStore storeA(r.input->arrays);
  storeA.fillAllPattern(1);
  MemTrace a = executeCodeUnit(*r.unit(), ext, storeA);

  ArrayStore storeB(back.input->arrays);
  storeB.fillAllPattern(1);
  MemTrace b = executeCodeUnit(*back.unit(), ext, storeB);

  EXPECT_EQ(a.stmtInstances, b.stmtInstances);
  EXPECT_EQ(a.globalReads, b.globalReads);
  EXPECT_EQ(a.globalWrites, b.globalWrites);
  EXPECT_EQ(a.copyElements, b.copyElements);
  EXPECT_EQ(a.syncs, b.syncs);
  EXPECT_EQ(ArrayStore::maxAbsDiff(storeA, storeB), 0.0);
}

TEST(PlanRoundTrip, BufferLayoutSurvivesWithPadsAndFormulas) {
  // packBuffers defaults on, so the cuda ME plan carries a BufferLayout
  // with nonzero pads; the byte-identity oracle above already covers it,
  // but these checks localize a layout-codec failure to the field.
  CompileResult r = compileKernel("me", "cuda");
  ASSERT_TRUE(r.ok) << r.firstError();
  ASSERT_TRUE(r.bufferLayout.has_value());
  CompileResult back = deserializeCompileResult(serializeCompileResult(r));
  ASSERT_TRUE(back.bufferLayout.has_value());
  const BufferLayout& a = *r.bufferLayout;
  const BufferLayout& b = *back.bufferLayout;
  EXPECT_EQ(b.padded, a.padded);
  EXPECT_EQ(b.note, a.note);
  EXPECT_EQ(b.bank.banks, a.bank.banks);
  EXPECT_EQ(b.bank.widthBytes, a.bank.widthBytes);
  EXPECT_EQ(b.elementBytes, a.elementBytes);
  ASSERT_EQ(b.buffers.size(), a.buffers.size());
  IntVec sample(r.unit()->source->paramNames.size(), 0);
  sample[0] = 64;
  sample[1] = 64;
  sample[2] = 8;
  for (size_t i = 0; i < a.buffers.size(); ++i) {
    SCOPED_TRACE(a.buffers[i].name);
    EXPECT_EQ(b.buffers[i].name, a.buffers[i].name);
    EXPECT_EQ(b.buffers[i].rowPadElems, a.buffers[i].rowPadElems);
    // The symbolic formulas evaluate identically after the round trip.
    EXPECT_EQ(b.buffers[i].offsetElems->eval(sample), a.buffers[i].offsetElems->eval(sample));
    EXPECT_EQ(b.buffers[i].footprintElems->eval(sample),
              a.buffers[i].footprintElems->eval(sample));
  }
  EXPECT_EQ(b.totalElems->eval(sample), a.totalElems->eval(sample));
  // The pads reach the deserialized unit's LocalBuffers too (the layout is
  // applied, not just carried).
  ASSERT_EQ(back.unit()->localBuffers.size(), r.unit()->localBuffers.size());
  for (size_t i = 0; i < r.unit()->localBuffers.size(); ++i)
    EXPECT_EQ(back.unit()->localBuffers[i].pad, r.unit()->localBuffers[i].pad);
}

TEST(PlanDecode, TruncationAnywhereInsideTheLayoutThrowsCleanly) {
  // Dense truncation sweep over the whole payload (every 7th byte, plus
  // the exact tail) — the BufferLayout codec sits mid-stream, so this
  // drags the cut point through every one of its fields.
  const std::string bytes = serializeCompileResult(compileKernel("me", "cuda"));
  for (size_t keep = 1; keep < bytes.size(); keep += 7) {
    EXPECT_THROW(deserializeCompileResult(std::string_view(bytes).substr(0, keep)),
                 SerializeError)
        << "at " << keep;
  }
  EXPECT_THROW(deserializeCompileResult(std::string_view(bytes).substr(0, bytes.size() - 1)),
               SerializeError);
}

TEST(PlanRoundTrip, FailedResultsRoundTripToo) {
  // An infeasible memory budget fails in tilesearch; the diagnostics-only
  // result must survive (the disk cache never stores these, but the codec
  // should not care).
  Compiler c(buildMeBlock(64, 64, 8));
  c.parameters({64, 64, 8}).memoryLimitBytes(1);
  CompileResult r = c.compile();
  ASSERT_FALSE(r.ok);
  expectRoundTripIdentity(r);
}

// ---- Hostile payloads. ----

TEST(PlanDecode, EmptyInputThrows) {
  EXPECT_THROW(deserializeCompileResult(std::string_view{}), SerializeError);
}

TEST(PlanDecode, WrongLeadingTagThrows) {
  std::string bytes = serializeCompileResult(compileKernel("matmul", "c"));
  bytes[0] ^= 0x5A;
  EXPECT_THROW(deserializeCompileResult(bytes), SerializeError);
}

TEST(PlanDecode, AnyTruncationThrowsCleanly) {
  std::string bytes = serializeCompileResult(compileKernel("matmul", "c"));
  // Chop at several depths: header, mid-products, one byte short.
  for (size_t keep : {size_t(1), bytes.size() / 3, bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE(keep);
    EXPECT_THROW(deserializeCompileResult(std::string_view(bytes).substr(0, keep)),
                 SerializeError);
  }
}

TEST(PlanDecode, TrailingGarbageIsRejected) {
  std::string bytes = serializeCompileResult(compileKernel("matmul", "c"));
  bytes += "extra";
  EXPECT_THROW(deserializeCompileResult(bytes), SerializeError);
}

// ---- Structure-aware mutation fuzzing. ----
//
// The decoders' contract is total: for ANY byte string, deserialization
// either succeeds or throws SerializeError — no other exception type, no
// crash, no UB (the CI sanitizer jobs run this file under ASan+UBSan).
// Mutating real encodings probes much deeper than random bytes: most
// mutants keep a valid prefix, so the corruption lands mid-stream on
// length fields, tags, and counts.

/// Applies one seeded structural mutation: bit flip, byte overwrite,
/// truncation, range duplication (stretches lengths), or range deletion.
std::string mutateBytes(const std::string& base, std::mt19937_64& rng) {
  std::string m = base;
  const auto pos = [&](size_t n) { return static_cast<size_t>(rng() % std::max<size_t>(n, 1)); };
  switch (rng() % 5) {
    case 0:  // single bit flip
      m[pos(m.size())] ^= static_cast<char>(1u << (rng() % 8));
      break;
    case 1:  // byte overwrite with an interesting value
      m[pos(m.size())] = static_cast<char>(std::array<unsigned char, 6>{
          0x00, 0xFF, 0x7F, 0x80, 0x01, 0xFE}[rng() % 6]);
      break;
    case 2:  // truncate
      m.resize(pos(m.size()));
      break;
    case 3: {  // duplicate a short range in place
      const size_t at = pos(m.size());
      const size_t len = 1 + pos(16);
      m.insert(at, m.substr(at, std::min(len, m.size() - at)));
      break;
    }
    default: {  // delete a short range
      const size_t at = pos(m.size());
      m.erase(at, 1 + pos(8));
      break;
    }
  }
  return m;
}

/// Every mutant must decode cleanly or throw SerializeError; anything else
/// (std::bad_alloc, std::length_error, a sanitizer abort) fails the test.
template <typename Decode>
void expectTotalDecoder(const std::string& base, u64 seed, int mutants, Decode decode) {
  std::mt19937_64 rng(seed);
  int rejected = 0, accepted = 0;
  for (int i = 0; i < mutants; ++i) {
    const std::string m = mutateBytes(base, rng);
    try {
      decode(m);
      ++accepted;
    } catch (const SerializeError&) {
      ++rejected;
    }
  }
  // Sanity: the corpus is actually adversarial — the vast majority of
  // mutants must be rejections, not silent accepts of corrupt data.
  EXPECT_GT(rejected, accepted);
  EXPECT_GT(rejected, mutants / 2);
}

TEST(PlanDecodeFuzz, MutatedCompileResultsNeverEscapeSerializeError) {
  // Bases from both hand-built kernels and generator-produced programs:
  // generated blocks carry odd shapes (transposed writes, broadcast rows,
  // parametric bounds) that the kernel corpus alone never encodes.
  std::vector<std::string> bases;
  bases.push_back(serializeCompileResult(compileKernel("matmul", "c")));
  bases.push_back(serializeCompileResult(compileKernel("me", "cuda")));
  {
    // A cell artifact carries the full v4 surface: formula bind slots plus
    // SymLe and BufExtentEq family guards — so the sweep lands mutations on
    // guard kinds, symbolic operand trees, and slot formulas too.
    CompileResult cell = compileKernel("figure1", "cell");
    ASSERT_TRUE(cell.ok) << cell.firstError();
    ASSERT_TRUE(cell.artifactInfo.has_value());
    ASSERT_FALSE(cell.artifactInfo->guards.empty());
    ASSERT_FALSE(cell.artifactInfo->slots.empty());
    bases.push_back(serializeCompileResult(cell));
  }
  testgen::ProgramGenerator gen;
  for (u64 i : {u64(3), u64(9)}) {  // indices that compile to full plans
    testgen::GeneratedProgram p = gen.generate(i);
    Compiler c(p.block);
    c.opts().innerProcs = 4;
    c.parameters(p.paramValues);
    CompileResult r = c.compile();
    ASSERT_TRUE(r.ok) << r.firstError();
    bases.push_back(serializeCompileResult(r));
  }
  u64 seed = 0xfeedULL;
  for (const std::string& base : bases) {
    SCOPED_TRACE(base.size());
    expectTotalDecoder(base, seed++, 300,
                       [](const std::string& m) { (void)deserializeCompileResult(m); });
  }
}

TEST(PlanDecodeFuzz, MutatedFamilyPlansNeverEscapeSerializeError) {
  // The .emmfam encoding embeds the family's size-generic compiled record
  // (options + full CompileResult with its ArtifactInfo) after the
  // parametric tile plan — the deepest v4 payload. Build a real one through
  // the disk tier, confirm the record and its guard predicates are actually
  // present in the base bytes, then mutate.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("emmfam_fuzz_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    Compiler c(buildMeBlock(64, 64, 8));
    c.parameters({64, 64, 8}).memoryLimitBytes(16 * 1024);
    PlanCache memory;
    c.cache(&memory).diskCache(dir.string());
    ASSERT_TRUE(c.compile().ok);
  }
  std::string base;
  for (const fs::directory_entry& de : fs::directory_iterator(dir))
    if (de.path().extension() == ".emmfam") {
      std::ifstream f(de.path(), std::ios::binary);
      std::ostringstream os;
      os << f.rdbuf();
      base = os.str();
    }
  fs::remove_all(dir);
  ASSERT_FALSE(base.empty());

  // Strip the disk-tier envelope (magic, version, schema fingerprint, key
  // echo, collision digests, length-prefixed payload, checksum) down to the
  // raw FamilyPlan payload the decoder under test consumes.
  ASSERT_GT(base.size(), 8u);
  {
    ByteReader header(std::string_view(base).substr(8));
    header.u32v();                                    // format version
    for (int i = 0; i < 6; ++i) header.u64v();        // schema, key echo, digests
    const u64 payloadLen = header.u64v();
    ASSERT_LE(payloadLen + 8, header.remaining());
    base = base.substr(8 + header.position(), payloadLen);
  }

  std::shared_ptr<const FamilyPlan> plan = deserializeFamilyPlan(base);
  ASSERT_TRUE(plan->haveRecord && plan->record != nullptr);
  ASSERT_TRUE(plan->record->artifactInfo.has_value());
  EXPECT_FALSE(plan->record->artifactInfo->slots.empty());

  expectTotalDecoder(base, 0xfa4ULL, 400,
                     [](const std::string& m) { (void)deserializeFamilyPlan(m); });
}

TEST(PlanDecodeFuzz, MutatedProgramBlocksNeverEscapeSerializeError) {
  testgen::ProgramGenerator gen;
  u64 seed = 0xbeadULL;
  for (u64 i = 0; i < 4; ++i) {
    const std::string base = serializeProgramBlock(gen.generate(i).block);
    SCOPED_TRACE(i);
    expectTotalDecoder(base, seed++, 300,
                       [](const std::string& m) { (void)deserializeProgramBlock(m); });
  }
}

}  // namespace
}  // namespace emm
