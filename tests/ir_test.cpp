// Tests for the program IR, reference executor, AST, emitter, interpreter.
#include <gtest/gtest.h>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"

namespace emm {
namespace {

TEST(Expr, ConstructionAndPrint) {
  ExprPtr e = Expr::add(Expr::load(0), Expr::mul(Expr::constant(2), Expr::load(1)));
  EXPECT_EQ(e->str({"A[i]", "B[i]"}), "(A[i] + (2 * B[i]))");
  EXPECT_EQ(Expr::abs(Expr::load(0))->str({"x"}), "fabs(x)");
}

TEST(ArrayStore, GetSetAndBoundsCheck) {
  ArrayStore store({{"A", {4, 5}}});
  store.set(0, {1, 2}, 42.0);
  EXPECT_EQ(store.get(0, {1, 2}), 42.0);
  EXPECT_EQ(store.get(0, {0, 0}), 0.0);
  EXPECT_DEATH(store.get(0, {4, 0}), "out of bounds");
}

TEST(ArrayStore, FillPatternDeterministic) {
  ArrayStore a({{"A", {100}}}), b({{"A", {100}}});
  a.fillPattern(0, 7);
  b.fillPattern(0, 7);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);
  b.fillPattern(0, 8);
  EXPECT_GT(ArrayStore::maxAbsDiff(a, b), 0.0);
}

TEST(ReferenceExec, SimpleCopyBlock) {
  // S: B[i] = A[i] for i in [0, 9].
  ProgramBlock block;
  block.name = "copy";
  block.arrays = {{"A", {10}}, {"B", {10}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 9);
  Access w;
  w.arrayId = 1;
  w.isWrite = true;
  w.fn = IntMat{{1, 0}};
  Access r;
  r.arrayId = 0;
  r.isWrite = false;
  r.fn = IntMat{{1, 0}};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  ArrayStore store(block.arrays);
  store.fillPattern(0, 3);
  executeReference(block, {}, store);
  for (i64 i = 0; i < 10; ++i) EXPECT_EQ(store.get(1, {i}), store.get(0, {i}));
}

TEST(ReferenceExec, ScheduleOrderMatters) {
  // Two statements write the same cell; the one scheduled later wins.
  ProgramBlock block;
  block.name = "order";
  block.arrays = {{"A", {1}}};
  for (int v = 0; v < 2; ++v) {
    Statement s;
    s.name = "S" + std::to_string(v);
    s.domain = Polyhedron(0, 0);
    Access w;
    w.arrayId = 0;
    w.isWrite = true;
    w.fn = IntMat(1, 1);  // A[0]
    s.accesses = {w};
    s.writeAccess = 0;
    s.rhs = Expr::constant(v + 1);
    s.schedule = IntMat(1, 1);
    s.schedule.at(0, 0) = v == 0 ? 5 : 3;  // S1 runs first (3 < 5)
    block.statements.push_back(std::move(s));
  }
  ArrayStore store(block.arrays);
  executeReference(block, {}, store);
  EXPECT_EQ(store.get(0, {0}), 1.0);  // S0 (time 5) wrote last
}

TEST(ReferenceExec, JacobiMatchesDirectReference) {
  const i64 n = 20, t = 5;
  ProgramBlock block = buildJacobiBlock(n, t);
  ArrayStore store(block.arrays);
  store.fillPattern(0, 11);
  std::vector<double> a = store.raw(0), b = store.raw(1);
  executeReference(block, {n, t}, store);
  referenceJacobi(a, b, n, t);
  for (i64 i = 0; i < n; ++i) EXPECT_NEAR(store.get(0, {i}), a[i], 1e-9) << "i=" << i;
}

TEST(ReferenceExec, MeMatchesDirectReference) {
  const i64 ni = 6, nj = 5, w = 3;
  ProgramBlock block = buildMeBlock(ni, nj, w);
  ArrayStore store(block.arrays);
  store.fillAllPattern(5);
  std::vector<double> cur = store.raw(0), ref = store.raw(1), out = store.raw(2);
  executeReference(block, {ni, nj, w}, store);
  referenceMe(cur, ref, out, ni, nj, w);
  for (i64 i = 0; i < ni; ++i)
    for (i64 j = 0; j < nj; ++j) EXPECT_NEAR(store.get(2, {i, j}), out[i * nj + j], 1e-9);
}

TEST(ReferenceExec, MatmulMatchesDirectReference) {
  const i64 n = 4, m = 5, k = 3;
  ProgramBlock block = buildMatmulBlock(n, m, k);
  ArrayStore store(block.arrays);
  store.fillAllPattern(2);
  std::vector<double> a = store.raw(0), b = store.raw(1), c = store.raw(2);
  executeReference(block, {n, m, k}, store);
  referenceMatmul(a, b, c, n, m, k);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < m; ++j) EXPECT_NEAR(store.get(2, {i, j}), c[i * m + j], 1e-9);
}

TEST(AffExprAst, EvalAndPrint) {
  AffExpr e = AffExpr::var("i", 2);
  e.terms.emplace_back("j", -1);
  e.cnst = 5;
  std::vector<std::pair<std::string, i64>> env{{"i", 3}, {"j", 4}};
  EXPECT_EQ(e.evalExact(env), 7);
  EXPECT_EQ(e.str(), "2*i - j + 5");
  AffExpr d = e;
  d.den = 2;
  EXPECT_EQ(d.evalFloor(env), 3);
  EXPECT_EQ(d.evalCeil(env), 4);
  EXPECT_EQ(d.str(false), "floord(2*i - j + 5, 2)");
}

TEST(AffExprAst, ShadowedBindingUsesInnermost) {
  AffExpr e = AffExpr::var("i");
  std::vector<std::pair<std::string, i64>> env{{"i", 1}, {"i", 9}};
  EXPECT_EQ(e.evalExact(env), 9);
}

TEST(BoundExprAst, MaxMinEval) {
  BoundExpr lb{{AffExpr::constant(3), AffExpr::var("n")}, true};
  std::vector<std::pair<std::string, i64>> env{{"n", 7}};
  EXPECT_EQ(lb.eval(env), 7);
  BoundExpr ub{{AffExpr::constant(10), AffExpr::var("n")}, false};
  EXPECT_EQ(ub.eval(env), 7);
  EXPECT_EQ(ub.str(), "min(10, n)");
}

TEST(Interp, ForLoopWithCopies) {
  // Unit: for i in [0, 7]: B[i] = A[i], on global arrays only.
  ProgramBlock block;
  block.name = "g";
  block.arrays = {{"A", {8}}, {"B", {8}}};
  CodeUnit unit;
  unit.source = &block;
  unit.root = AstNode::block();
  AstNode* loop = unit.root->addChild(AstNode::forLoop(
      "i", BoundExpr::single(AffExpr::constant(0), true),
      BoundExpr::single(AffExpr::constant(7), false)));
  loop->addChild(AstNode::copy(1, {AffExpr::var("i")}, 0, {AffExpr::var("i")}));

  ArrayStore store(block.arrays);
  store.fillPattern(0, 1);
  MemTrace trace = executeCodeUnit(unit, {}, store);
  EXPECT_EQ(trace.globalReads, 8);
  EXPECT_EQ(trace.globalWrites, 8);
  EXPECT_EQ(trace.copyElements, 8);
  for (i64 i = 0; i < 8; ++i) EXPECT_EQ(store.get(1, {i}), store.get(0, {i}));
}

TEST(Interp, LocalBufferRoundTrip) {
  // move A into L (shifted by 2), then out to B.
  ProgramBlock block;
  block.name = "l";
  block.paramNames = {};
  block.arrays = {{"A", {8}}, {"B", {8}}};
  CodeUnit unit;
  unit.source = &block;
  LocalBuffer buf;
  buf.name = "L";
  buf.ndim = 1;
  buf.offset = {AffExpr::constant(2)};
  buf.sizeExpr = {BoundExpr::single(AffExpr::constant(4), false)};
  unit.localBuffers.push_back(buf);

  unit.root = AstNode::block();
  AstNode* in = unit.root->addChild(AstNode::forLoop(
      "i", BoundExpr::single(AffExpr::constant(2), true),
      BoundExpr::single(AffExpr::constant(5), false)));
  in->addChild(AstNode::copy(2, {AffExpr::var("i").plus(-2)}, 0, {AffExpr::var("i")}));
  AstNode* out = unit.root->addChild(AstNode::forLoop(
      "i", BoundExpr::single(AffExpr::constant(2), true),
      BoundExpr::single(AffExpr::constant(5), false)));
  out->addChild(AstNode::copy(1, {AffExpr::var("i")}, 2, {AffExpr::var("i").plus(-2)}));

  ArrayStore store(block.arrays);
  store.fillPattern(0, 9);
  MemTrace trace = executeCodeUnit(unit, {}, store);
  EXPECT_EQ(trace.globalReads, 4);
  EXPECT_EQ(trace.globalWrites, 4);
  EXPECT_EQ(trace.localReads, 4);
  EXPECT_EQ(trace.localWrites, 4);
  for (i64 i = 2; i <= 5; ++i) EXPECT_EQ(store.get(1, {i}), store.get(0, {i}));
  EXPECT_EQ(scratchpadFootprint(unit, {}), 4);
}

TEST(Interp, GuardSkipsBody) {
  ProgramBlock block;
  block.name = "g";
  block.arrays = {{"A", {4}}, {"B", {4}}};
  CodeUnit unit;
  unit.source = &block;
  unit.root = AstNode::block();
  AstNode* loop = unit.root->addChild(AstNode::forLoop(
      "i", BoundExpr::single(AffExpr::constant(0), true),
      BoundExpr::single(AffExpr::constant(3), false)));
  // Guard i - 2 >= 0: only i in {2, 3} copy.
  AstNode* g = loop->addChild(AstNode::guard({AffExpr::var("i").plus(-2)}));
  g->addChild(AstNode::copy(1, {AffExpr::var("i")}, 0, {AffExpr::var("i")}));
  ArrayStore store(block.arrays);
  MemTrace trace = executeCodeUnit(unit, {}, store);
  EXPECT_EQ(trace.copyElements, 2);
}

TEST(Interp, SyncCounting) {
  ProgramBlock block;
  block.name = "s";
  CodeUnit unit;
  unit.source = &block;
  unit.root = AstNode::block();
  AstNode* loop = unit.root->addChild(AstNode::forLoop(
      "i", BoundExpr::single(AffExpr::constant(0), true),
      BoundExpr::single(AffExpr::constant(4), false)));
  loop->addChild(AstNode::sync());
  ArrayStore store(block.arrays);
  EXPECT_EQ(executeCodeUnit(unit, {}, store).syncs, 5);
}

TEST(Interp, StepLoop) {
  ProgramBlock block;
  block.name = "st";
  block.arrays = {{"A", {16}}, {"B", {16}}};
  CodeUnit unit;
  unit.source = &block;
  unit.root = AstNode::block();
  AstNode* loop = unit.root->addChild(
      AstNode::forLoop("i", BoundExpr::single(AffExpr::constant(0), true),
                       BoundExpr::single(AffExpr::constant(15), false), 4));
  loop->addChild(AstNode::copy(1, {AffExpr::var("i")}, 0, {AffExpr::var("i")}));
  ArrayStore store(block.arrays);
  EXPECT_EQ(executeCodeUnit(unit, {}, store).copyElements, 4);  // i = 0,4,8,12
}

TEST(Emit, RendersLoopAndCopy) {
  ProgramBlock block;
  block.name = "e";
  block.arrays = {{"A", {8}}, {"B", {8}}};
  CodeUnit unit;
  unit.source = &block;
  unit.root = AstNode::block();
  AstNode* loop = unit.root->addChild(AstNode::forLoop(
      "i", BoundExpr::single(AffExpr::constant(0), true),
      BoundExpr::single(AffExpr::constant(7), false)));
  loop->addChild(AstNode::copy(1, {AffExpr::var("i")}, 0, {AffExpr::var("i")}));
  std::string code = emitC(unit);
  EXPECT_NE(code.find("for (i = 0; i <= 7; i++)"), std::string::npos) << code;
  EXPECT_NE(code.find("B[i] = A[i];"), std::string::npos) << code;
}

TEST(Emit, RendersCallWithComposedIndices) {
  ProgramBlock block = buildJacobiBlock(16, 4);
  CodeUnit unit;
  unit.source = &block;
  unit.statements = block.statements;
  unit.root = AstNode::block();
  unit.root->addChild(AstNode::call(0, {AffExpr::var("t"), AffExpr::var("i")}));
  std::string code = emitC(unit);
  EXPECT_NE(code.find("B[i] ="), std::string::npos) << code;
  EXPECT_NE(code.find("A[i - 1]"), std::string::npos) << code;
}

}  // namespace
}  // namespace emm
