// Tests for the CUDA source backend, the Cell backend's DMA coalescing, the
// Cell-like machine profile, and the 2-D Jacobi extension kernel.
#include <gtest/gtest.h>

#include "codegen/emit_cell.h"
#include "codegen/emit_cuda.h"
#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "kernels/jacobi2d_mapped.h"
#include "kernels/me_pipeline.h"
#include "smem/data_manage.h"

namespace emm {
namespace {

// ---- CUDA backend. ----

TEST(CudaBackend, Figure1BlockStructure) {
  ProgramBlock block = buildFigure1Block();
  SmemOptions o;
  o.onlyBeneficial = false;
  o.partitionMode = PartitionMode::PerArrayUnion;
  CodeUnit unit = buildScratchpadUnit(block, o);
  CudaEmitOptions copts;
  copts.kernelName = "figure1";
  std::string cu = emitCuda(unit, copts);
  EXPECT_NE(cu.find("__global__ void figure1("), std::string::npos) << cu;
  EXPECT_NE(cu.find("__shared__ float LA0[19][10];"), std::string::npos) << cu;
  EXPECT_NE(cu.find("__shared__ float LB1[19][24];"), std::string::npos) << cu;
  // Global arrays are linearized: A[i][j] -> A[(i) * 200 + (j)].
  EXPECT_NE(cu.find("* 200 +"), std::string::npos) << cu;
}

TEST(CudaBackend, TiledMeKernel) {
  MeConfig c;
  c.ni = 16;
  c.nj = 8;
  c.w = 4;
  c.numBlocks = 2;
  c.numThreads = 32;
  c.subTile = {4, 4, 4, 4};
  MePipeline p = buildMePipeline(c);
  CudaEmitOptions copts;
  copts.paramValues = {c.ni, c.nj, c.w};
  copts.numBoundParams = 3;  // origins stay loop-bound
  copts.kernelName = "me_sad";
  std::string cu = emitCuda(p.kernel.unit, copts);
  // Two block-parallel loops -> blockIdx.x and blockIdx.y.
  EXPECT_NE(cu.find("blockIdx.x"), std::string::npos) << cu;
  EXPECT_NE(cu.find("blockIdx.y"), std::string::npos) << cu;
  // Thread-parallel loops -> threadIdx strided loops.
  EXPECT_NE(cu.find("threadIdx.x"), std::string::npos);
  EXPECT_NE(cu.find("blockDim.x"), std::string::npos);
  // Barriers survive.
  EXPECT_NE(cu.find("__syncthreads();"), std::string::npos);
  // Shared buffers have constant extents (7 = 4+4-1).
  EXPECT_NE(cu.find("__shared__ float Lcur0[7][7];"), std::string::npos) << cu;
  // Launch stub names every array.
  EXPECT_NE(cu.find("d_cur, d_ref, d_out"), std::string::npos) << cu;
}

TEST(CudaBackend, RequiresPositiveExtents) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  SmemOptions o;
  o.sampleParams = {8, 8, 4};
  CodeUnit unit = buildScratchpadUnit(block, o);
  CudaEmitOptions copts;
  copts.paramValues = {0, 0, 0};  // folds extents to zero
  EXPECT_DEATH(emitCuda(unit, copts), "positive");
}

// ---- Cell-like machine. ----

TEST(CellMachine, ProfileShape) {
  Machine cell = Machine::cellLike();
  EXPECT_EQ(cell.numSMs, 8);
  EXPECT_EQ(cell.smemBytesPerSM, 256 * 1024);
  EXPECT_EQ(cell.maxBlocksPerSM, 1);
}

TEST(CellMachine, LocalStoreFitsLargeTiles) {
  // 256 KB local store admits tiles the GPU's 16 KB cannot.
  Machine cell = Machine::cellLike();
  Machine gpu = Machine::geforce8800gtx();
  LaunchConfig l;
  l.numBlocks = 8;
  l.threadsPerBlock = 1;
  l.smemBytesPerBlock = 100 * 1024;
  BlockWork w;
  w.computeOps = 1000;
  EXPECT_TRUE(simulateLaunch(cell, l, w).feasible);
  EXPECT_FALSE(simulateLaunch(gpu, l, w).feasible);
}

TEST(CellMachine, StagedMeRunsFasterThanDma) {
  // Whole-block staging (onlyBeneficial=false semantics) vs element-wise
  // DMA: the staged version wins on the Cell profile too.
  Machine cell = Machine::cellLike();
  MeConfig c;
  c.ni = 1024;
  c.nj = 512;
  c.w = 16;
  c.numBlocks = 8;
  c.numThreads = 1;
  c.subTile = {32, 16, 16, 16};
  KernelModel with = modelMe(c);
  c.useScratchpad = false;
  KernelModel without = modelMe(c);
  SimResult rw = simulateLaunch(cell, with.launch, with.perBlock);
  SimResult rwo = simulateLaunch(cell, without.launch, without.perBlock);
  ASSERT_TRUE(rw.feasible) << rw.infeasibleReason;
  ASSERT_TRUE(rwo.feasible);
  EXPECT_GT(rwo.milliseconds, rw.milliseconds);
}

// ---- 2-D Jacobi extension. ----

TEST(Jacobi2d, ReferenceExecutorAgreesWithDirect) {
  const i64 n = 10, m = 12, t = 3;
  ProgramBlock block = buildJacobi2dBlock(n, m, t);
  ArrayStore store(block.arrays);
  store.fillAllPattern(3);
  std::vector<double> a = store.raw(0), b = store.raw(1);
  executeReference(block, {n, m, t}, store);
  referenceJacobi2d(a, b, n, m, t);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < m; ++j) ASSERT_NEAR(store.get(0, {i, j}), a[i * m + j], 1e-9);
}

TEST(Jacobi2d, ScratchpadFrameworkPreservesSemantics) {
  const i64 n = 8, m = 9, t = 2;
  ProgramBlock block = buildJacobi2dBlock(n, m, t);
  SmemOptions o;
  o.sampleParams = {n, m, t};
  o.onlyBeneficial = false;
  CodeUnit unit = buildScratchpadUnit(block, o);
  ArrayStore got(block.arrays), want(block.arrays);
  got.fillAllPattern(9);
  want.fillAllPattern(9);
  executeCodeUnit(unit, {n, m, t}, got);
  executeReference(block, {n, m, t}, want);
  EXPECT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0);
}

TEST(Jacobi2d, MappedKernelMatchesReference) {
  Jacobi2dConfig c;
  c.n = 40;
  c.m = 36;
  c.timeSteps = 10;
  c.timeTile = 4;
  c.spaceTileI = 8;
  c.spaceTileJ = 12;
  std::vector<double> a(c.n * c.m), ar(c.n * c.m), b(c.n * c.m);
  for (i64 i = 0; i < c.n * c.m; ++i) a[i] = ar[i] = static_cast<double>((i * 13) % 101);
  runJacobi2dMapped(c, a);
  referenceJacobi2d(ar, b, c.n, c.m, c.timeSteps);
  for (i64 i = 0; i < c.n * c.m; ++i) ASSERT_NEAR(a[i], ar[i], 1e-9) << "i=" << i;
}

TEST(Jacobi2d, ModelMatchesExecution) {
  Jacobi2dConfig c;
  c.n = 30;
  c.m = 26;
  c.timeSteps = 9;
  c.timeTile = 4;
  c.spaceTileI = 8;
  c.spaceTileJ = 8;
  std::vector<double> a(c.n * c.m, 1.0);
  Jacobi2dCounters run = runJacobi2dMapped(c, a);
  Jacobi2dCounters model = modelJacobi2d(c);
  EXPECT_EQ(run.globalElems, model.globalElems);
  EXPECT_EQ(run.smemElems, model.smemElems);
  EXPECT_EQ(run.computeOps, model.computeOps);
  EXPECT_EQ(run.interBlockSyncs, model.interBlockSyncs);
}

TEST(Jacobi2d, ScratchpadCutsTraffic) {
  Jacobi2dConfig c;
  c.n = 256;
  c.m = 256;
  c.timeSteps = 32;
  c.timeTile = 8;
  c.spaceTileI = 32;
  c.spaceTileJ = 32;
  Jacobi2dCounters with = modelJacobi2d(c);
  c.useScratchpad = false;
  Jacobi2dCounters without = modelJacobi2d(c);
  EXPECT_LT(with.globalElems * 2, without.globalElems);
  EXPECT_LT(with.interBlockSyncs, without.interBlockSyncs);
}

class Jacobi2dShapeSweep
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64>> {};

TEST_P(Jacobi2dShapeSweep, AlwaysMatchesReference) {
  auto [n, m, t, tt] = GetParam();
  Jacobi2dConfig c;
  c.n = n;
  c.m = m;
  c.timeSteps = t;
  c.timeTile = tt;
  c.spaceTileI = 7;
  c.spaceTileJ = 9;
  std::vector<double> a(c.n * c.m), ar(c.n * c.m), b(c.n * c.m);
  for (i64 i = 0; i < c.n * c.m; ++i) a[i] = ar[i] = static_cast<double>((i * 7) % 50);
  runJacobi2dMapped(c, a);
  referenceJacobi2d(ar, b, c.n, c.m, c.timeSteps);
  for (i64 i = 0; i < c.n * c.m; ++i) ASSERT_NEAR(a[i], ar[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Jacobi2dShapeSweep,
    ::testing::Values(std::tuple<i64, i64, i64, i64>{20, 20, 5, 2},
                      std::tuple<i64, i64, i64, i64>{33, 17, 7, 3},
                      std::tuple<i64, i64, i64, i64>{16, 48, 6, 6},
                      std::tuple<i64, i64, i64, i64>{25, 25, 11, 4}));

// ---- Cell backend DMA coalescing. ----

size_t countOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(CellBackend, CoalescesContiguousRowCopiesIntoStridedDma) {
  // The tiled ME kernel stages 2-D windows: its move-in/move-out scanners
  // end in unit-stride inner loops, so coalescing must replace the
  // per-element dma_get/dma_put with one strided transfer per row.
  CompileResult r = Compiler(buildMeBlock(32, 32, 8))
                        .parameters({32, 32, 8})
                        .memoryLimitBytes(8 * 1024)
                        .backend("cell")
                        .compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  ASSERT_NE(r.unit(), nullptr);

  CellEmitOptions opts;
  opts.paramValues = {32, 32, 8};
  opts.coalesceDma = false;
  std::string elementWise = emitCell(*r.unit(), opts);
  opts.coalesceDma = true;
  std::string coalesced = emitCell(*r.unit(), opts);

  // The transfer count drops from one DMA per element to one per row: the
  // innermost copy loops disappear (each dma site loses its enclosing
  // element loop) and every remaining transfer is row-sized — no transfer
  // of exactly sizeof(float) survives.
  ASSERT_GT(countOccurrences(elementWise, "dma_get("), 0u);
  ASSERT_GT(countOccurrences(coalesced, "dma_get("), 0u);
  size_t dmaSites = countOccurrences(elementWise, "dma_get(") +
                    countOccurrences(elementWise, "dma_put(");
  EXPECT_EQ(countOccurrences(elementWise, "for ("),
            countOccurrences(coalesced, "for (") + dmaSites);
  EXPECT_NE(coalesced.find("// coalesced row"), std::string::npos) << coalesced;
  // Element-granularity transfers (size exactly sizeof(float)) are gone.
  EXPECT_NE(elementWise.find("sizeof(float));"), std::string::npos);
  EXPECT_EQ(coalesced.find("sizeof(float));"), std::string::npos) << coalesced;
}

TEST(CellBackend, DriverArtifactUsesCoalescedTransfers) {
  CompileResult r = Compiler(buildMeBlock(32, 32, 8))
                        .parameters({32, 32, 8})
                        .memoryLimitBytes(8 * 1024)
                        .backend("cell")
                        .compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_NE(r.artifact.find("// coalesced row"), std::string::npos);
  EXPECT_NE(r.artifact.find("dma_get("), std::string::npos);
}

}  // namespace
}  // namespace emm
