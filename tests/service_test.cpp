// Tests for the compilation-service layer: structural fingerprints, the
// plan cache (hit/miss accounting, byte-identical warm artifacts, clone
// integrity), the thread pool, async/batch compilation, and the memoized
// tile evaluator.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "support/fingerprint.h"
#include "support/thread_pool.h"
#include "tilesearch/tile_evaluator.h"

namespace emm {
namespace {

// ---- Structural fingerprints. ----

TEST(Fingerprint, SameBlockBuiltTwiceHashesEqual) {
  EXPECT_EQ(hashProgramBlock(buildMeBlock(64, 64, 8)), hashProgramBlock(buildMeBlock(64, 64, 8)));
  EXPECT_EQ(hashProgramBlock(buildMatmulBlock(32, 32, 32)),
            hashProgramBlock(buildMatmulBlock(32, 32, 32)));
  EXPECT_EQ(hashProgramBlock(buildFigure1Block()), hashProgramBlock(buildFigure1Block()));
}

TEST(Fingerprint, DistinctBlocksHashDifferently) {
  u64 me = hashProgramBlock(buildMeBlock(64, 64, 8));
  EXPECT_NE(me, hashProgramBlock(buildMeBlock(64, 64, 16)));  // extents differ
  EXPECT_NE(me, hashProgramBlock(buildMatmulBlock(64, 64, 8)));
}

TEST(Fingerprint, AnyStructuralMutationChangesTheHash) {
  ProgramBlock base = buildMatmulBlock(16, 16, 16);
  const u64 h = hashProgramBlock(base);

  ProgramBlock b = base;
  b.name = "other";
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;
  b.paramNames[0] = "Q";
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;
  b.arrays[0].extents[0] += 1;
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;
  b.statements[0].name = "other";
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;  // mutate a domain bound
  {
    IntVec row(b.statements[0].domain.cols(), 0);
    row[0] = 1;
    row.back() = -1;  // i >= 1
    b.statements[0].domain.addInequality(row);
  }
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;  // mutate an access function entry
  b.statements[0].accesses[0].fn.at(0, 0) += 1;
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;  // flip an access direction
  b.statements[0].accesses[0].isWrite = !b.statements[0].accesses[0].isWrite;
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;  // mutate the schedule
  b.statements[0].schedule.at(0, b.statements[0].schedule.cols() - 1) += 1;
  EXPECT_NE(hashProgramBlock(b), h);

  b = base;  // replace the statement body
  b.statements[0].rhs = Expr::constant(42);
  EXPECT_NE(hashProgramBlock(b), h);
}

TEST(Fingerprint, OptionsHashCoversEveryKnob) {
  CompileOptions base;
  base.paramValues = {64, 64, 8};
  const u64 h = hashCompileOptions(base);

  auto mutated = [&](auto&& mutate) {
    CompileOptions o = base;
    mutate(o);
    return hashCompileOptions(o);
  };
  EXPECT_NE(mutated([](CompileOptions& o) { o.paramValues[0] = 65; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.mode = PipelineMode::ScratchpadOnly; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.delta = 0.5; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.partitionMode = PartitionMode::PerArrayUnion; }),
            h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.stageEverything = true; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.subTile = {8, 8, 8}; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.hoistCopies = false; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.searchMode = TileSearchMode::Exhaustive; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.memLimitBytes = 8 * 1024; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.innerProcs = 16; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.tileCandidates = {{4}, {4}, {4}}; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.parametricTileAnalysis = false; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.backendName = "cuda"; }), h);
  EXPECT_NE(mutated([](CompileOptions& o) { o.kernelName = "k2"; }), h);
  EXPECT_EQ(hashCompileOptions(base), h);  // hashing is pure
}

// ---- Thread pool. ----

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  // The pool stays usable after a wait.
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, ClampsWorkerCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

// ---- Memoized tile evaluator. ----

struct EvalSetup {
  ProgramBlock block;
  ParallelismPlan plan;
  SmemOptions smem;
  TileSearchOptions opts;

  EvalSetup() {
    block = buildMeBlock(32, 32, 8);
    auto deps = computeDependences(block);
    plan = findParallelism(block, deps);
    smem.sampleParams = {32, 32, 8};
    opts.paramValues = {32, 32, 8};
    opts.memLimitElems = 2048;
    opts.innerProcs = 32;
  }
};

TEST(TileEvaluatorTest, MatchesDirectEvaluation) {
  EvalSetup s;
  TileEvaluator evaluator(s.block, s.plan, s.opts, s.smem);
  for (const std::vector<i64>& tile :
       {std::vector<i64>{8, 8, 8, 8}, {16, 16, 8, 8}, {1, 1, 2, 2}, {64, 16, 8, 8}}) {
    TileEvaluation direct = evaluateTileSizes(s.block, s.plan, tile, s.opts, s.smem);
    const TileEvaluation& memo = evaluator.evaluate(tile);
    EXPECT_EQ(direct.feasible, memo.feasible);
    EXPECT_EQ(direct.reason, memo.reason);
    EXPECT_DOUBLE_EQ(direct.cost, memo.cost);
    EXPECT_EQ(direct.footprint, memo.footprint);
    ASSERT_EQ(direct.terms.size(), memo.terms.size());
    for (size_t i = 0; i < direct.terms.size(); ++i) {
      EXPECT_EQ(direct.terms[i].occurrences, memo.terms[i].occurrences);
      EXPECT_EQ(direct.terms[i].volumeIn, memo.terms[i].volumeIn);
      EXPECT_EQ(direct.terms[i].volumeOut, memo.terms[i].volumeOut);
      EXPECT_EQ(direct.terms[i].hoistLevel, memo.terms[i].hoistLevel);
    }
  }
}

TEST(TileEvaluatorTest, MemoizesRepeatedProbes) {
  EvalSetup s;
  s.opts.parametric = false;  // pin the concrete path: exact miss accounting
  TileEvaluator evaluator(s.block, s.plan, s.opts, s.smem);
  evaluator.evaluate({8, 8, 8, 8});
  EXPECT_EQ(evaluator.evaluations(), 1);
  EXPECT_EQ(evaluator.memoHits(), 0);
  evaluator.evaluate({8, 8, 8, 8});
  evaluator.evaluate({8, 8, 8, 8});
  EXPECT_EQ(evaluator.evaluations(), 1);
  EXPECT_EQ(evaluator.memoHits(), 2);
}

TEST(TileEvaluatorTest, CheapConstraintsSkipTheAnalysis) {
  EvalSetup s;
  s.opts.parametric = false;  // pin the concrete path: exact analysis counts
  TileEvaluator evaluator(s.block, s.plan, s.opts, s.smem);
  // Volume < innerProcs and out-of-range tiles never pay for Section 3.
  EXPECT_FALSE(evaluator.evaluate({1, 1, 2, 2}).feasible);
  EXPECT_FALSE(evaluator.evaluate({64, 16, 8, 8}).feasible);
  EXPECT_EQ(evaluator.evaluations(), 2);
  EXPECT_EQ(evaluator.analysesRun(), 0);
  EXPECT_TRUE(evaluator.evaluate({8, 8, 8, 8}).feasible);
  EXPECT_EQ(evaluator.analysesRun(), 1);
}

TEST(TileEvaluatorTest, SolversShareOneMemo) {
  EvalSetup s;
  s.opts.candidates = {{4, 8, 16, 32}, {4, 8, 16, 32}, {4, 8}, {4, 8}};
  s.opts.parametric = false;  // pin the concrete path: exact miss accounting
  TileEvaluator evaluator(s.block, s.plan, s.opts, s.smem);
  TileSearchResult fast = searchTileSizes(evaluator);
  const int afterDescent = evaluator.evaluations();
  TileSearchResult oracle = exhaustiveTileSearch(evaluator);
  ASSERT_TRUE(fast.eval.feasible);
  ASSERT_TRUE(oracle.eval.feasible);
  EXPECT_DOUBLE_EQ(fast.eval.cost, oracle.eval.cost);
  // The oracle's sweep re-used every candidate the descent had analyzed.
  EXPECT_EQ(evaluator.evaluations(), 4 * 4 * 2 * 2);
  EXPECT_EQ(oracle.evaluations, 4 * 4 * 2 * 2 - afterDescent);
  EXPECT_GT(oracle.memoHits, 0);
}

TEST(TileEvaluatorTest, ExplicitTileIgnoresUnrelatedCandidateArity) {
  // Regression: the explicit-subTile path never reads tileCandidates, so a
  // mismatched candidate arity must not fail the compile.
  CompileResult r = Compiler(buildMeBlock(32, 32, 8))
                        .parameters({32, 32, 8})
                        .tileSizes({8, 8, 8, 8})
                        .tileCandidates({{4}, {4}})  // wrong arity, unused
                        .compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_EQ(r.search.subTile, (std::vector<i64>{8, 8, 8, 8}));
}

// ---- Plan cache. ----

Compiler cachedMeCompiler(PlanCache* cache, const std::string& backend = "c") {
  Compiler c(buildMeBlock(32, 32, 8));
  c.parameters({32, 32, 8}).memoryLimitBytes(8 * 1024).backend(backend).cache(cache);
  return c;
}

TEST(PlanCacheTest, WarmHitIsByteIdenticalAcrossBackends) {
  for (const std::string& backend : {"c", "cuda", "cell"}) {
    PlanCache cache;
    Compiler compiler = cachedMeCompiler(&cache, backend);
    CompileResult cold = compiler.compile();
    CompileResult warm = compiler.compile();
    ASSERT_TRUE(cold.ok) << backend << ": " << cold.firstError();
    ASSERT_TRUE(warm.ok);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_TRUE(warm.cacheHit) << backend;
    EXPECT_FALSE(cold.artifact.empty());
    EXPECT_EQ(cold.artifact, warm.artifact) << backend;
    PlanCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1);
    EXPECT_EQ(s.misses, 1);
    EXPECT_EQ(s.entries, 1);
  }
}

TEST(PlanCacheTest, WarmResultIsSemanticallyUsable) {
  PlanCache cache;
  Compiler compiler = cachedMeCompiler(&cache);
  CompileResult cold = compiler.compile();
  CompileResult warm = compiler.compile();
  ASSERT_TRUE(warm.cacheHit);
  ASSERT_TRUE(warm.kernel.has_value());  // the clone carries the full plan
  ASSERT_NE(warm.unit(), nullptr);
  ASSERT_NE(warm.dataPlan(), nullptr);

  // Executing the cloned unit produces the same memory state and trace as
  // the cold one.
  ArrayStore a(cold.block().arrays), b(warm.block().arrays);
  a.fillAllPattern(3);
  b.fillAllPattern(3);
  IntVec ext = {32, 32, 8};
  ext.resize(cold.kernel->analysis.tileBlock->paramNames.size(), 0);
  MemTrace ta = executeCodeUnit(*cold.unit(), ext, a);
  MemTrace tb = executeCodeUnit(*warm.unit(), ext, b);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);
  EXPECT_EQ(ta.stmtInstances, tb.stmtInstances);
  EXPECT_EQ(ta.copyElements, tb.copyElements);
  EXPECT_EQ(ta.syncs, tb.syncs);
}

TEST(PlanCacheTest, KeyCoversOptionsAndSkippedPasses) {
  PlanCache cache;
  Compiler compiler = cachedMeCompiler(&cache);
  CompileResult first = compiler.compile();
  ASSERT_TRUE(first.ok);
  // Different options: miss.
  CompileResult other = compiler.memoryLimitBytes(4 * 1024).compile();
  EXPECT_FALSE(other.cacheHit);
  // Same options again: hit.
  CompileResult again = compiler.compile();
  EXPECT_TRUE(again.cacheHit);
  // Same options but a skipped pass: different key, and the artifact-less
  // result is cached under it.
  compiler.skipPass("codegen");
  CompileResult skipped = compiler.compile();
  EXPECT_FALSE(skipped.cacheHit);
  EXPECT_TRUE(skipped.artifact.empty());
  CompileResult skippedWarm = compiler.compile();
  EXPECT_TRUE(skippedWarm.cacheHit);
  EXPECT_TRUE(skippedWarm.artifact.empty());
}

TEST(PlanCacheTest, ScratchpadOnlyPipelineIsCached) {
  PlanCache cache;
  Compiler compiler(buildFigure1Block());
  compiler.scratchpadOnly().stageEverything(true).partition(PartitionMode::PerArrayUnion);
  compiler.cache(&cache);
  CompileResult cold = compiler.compile();
  CompileResult warm = compiler.compile();
  ASSERT_TRUE(cold.ok) << cold.firstError();
  ASSERT_TRUE(warm.cacheHit);
  EXPECT_EQ(cold.artifact, warm.artifact);
  ASSERT_TRUE(warm.scratchpadUnit.has_value());
  ASSERT_NE(warm.dataPlan(), nullptr);
}

TEST(PlanCacheTest, ReplacedPassesBypassTheCache) {
  class FixedTilePass : public Pass {
  public:
    FixedTilePass() : Pass("tilesearch") {}
    void run(CompileState& s) override {
      s.search.subTile = {4, 4, 8, 8};
      s.search.eval.feasible = true;
    }
  };
  PlanCache cache;
  Compiler compiler = cachedMeCompiler(&cache);
  compiler.replacePass("tilesearch", std::make_shared<FixedTilePass>());
  CompileResult first = compiler.compile();
  CompileResult second = compiler.compile();
  ASSERT_TRUE(first.ok) << first.firstError();
  EXPECT_FALSE(first.cacheHit);
  EXPECT_FALSE(second.cacheHit);
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 0);  // never consulted
  EXPECT_EQ(s.entries, 0);
}

TEST(PlanCacheTest, FailedCompilesAreNotCached) {
  PlanCache cache;
  Compiler compiler = cachedMeCompiler(&cache);
  compiler.memoryLimitBytes(4);  // nothing fits: tile search fails
  CompileResult first = compiler.compile();
  CompileResult second = compiler.compile();
  EXPECT_FALSE(first.ok);
  EXPECT_FALSE(second.cacheHit);  // the failure re-ran the pipeline
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.entries, 0);
}

TEST(PlanCacheTest, CapacityEvictsOldestEntries) {
  // Single shard: global insertion order is deterministic (per-shard
  // eviction is covered by sharded_cache_test.cpp).
  PlanCache cache(2, 1);
  Compiler compiler;
  compiler.cache(&cache).memoryLimitBytes(2 * 1024).skipPass("codegen");
  for (i64 n : {16, 20, 24}) {
    CompileResult r = compiler.parameters({n, n, n}).compile(buildMatmulBlock(n, n, n));
    ASSERT_TRUE(r.ok) << r.firstError();
  }
  EXPECT_EQ(cache.size(), 2u);
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  // The oldest (16) was evicted; the newer two still hit.
  EXPECT_FALSE(compiler.parameters({16, 16, 16}).compile(buildMatmulBlock(16, 16, 16)).cacheHit);
  EXPECT_TRUE(compiler.parameters({24, 24, 24}).compile(buildMatmulBlock(24, 24, 24)).cacheHit);
}

TEST(CellBackendTest, SelectionByNameForcesStaging) {
  // delta(0.99) makes Figure 1's constant-reuse partitions fail Algorithm
  // 1, so a partition only gets a buffer here if the backend forces
  // staging. The "c" control proves the test can fail: without the forcing
  // at least one partition stays in global memory.
  auto compileWith = [](const std::string& backend) {
    Compiler c(buildFigure1Block());
    c.scratchpadOnly().delta(0.99).backend(backend);
    return c.compile();
  };
  CompileResult unforced = compileWith("c");
  ASSERT_TRUE(unforced.ok) << unforced.firstError();
  bool anyGlobal = false;
  for (const auto& part : unforced.dataPlan()->partitions) anyGlobal |= !part.hasBuffer;
  ASSERT_TRUE(anyGlobal) << "control lost its teeth: raise delta";

  CompileResult cell = compileWith("cell");
  ASSERT_TRUE(cell.ok) << cell.firstError();
  for (const auto& part : cell.dataPlan()->partitions) EXPECT_TRUE(part.hasBuffer);
  // (The block-level unit has no Sync nodes, so no DMA fence appears here;
  // the tiled-kernel test below covers it.)
  EXPECT_NE(cell.artifact.find("dma_get("), std::string::npos) << cell.artifact;
  EXPECT_NE(cell.artifact.find("dma_put("), std::string::npos);
}

TEST(CellBackendTest, TiledKernelRendersDmaStagedCopies) {
  CompileResult r = Compiler(buildMeBlock(32, 32, 8))
                        .parameters({32, 32, 8})
                        .memoryLimitBytes(8 * 1024)
                        .backend("cell")
                        .compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  ASSERT_TRUE(r.kernel.has_value());
  // Forced staging: every partition is buffered in the local store.
  for (const auto& part : r.kernel->analysis.plan.partitions) EXPECT_TRUE(part.hasBuffer);
  EXPECT_NE(r.artifact.find("_spe("), std::string::npos);
  EXPECT_NE(r.artifact.find("dma_get("), std::string::npos);
  EXPECT_NE(r.artifact.find("dma_put("), std::string::npos);
  EXPECT_NE(r.artifact.find("mfc_read_tag_status_all"), std::string::npos);
  EXPECT_NE(r.artifact.find("distributed across SPEs"), std::string::npos);
}

// ---- Async and batch compilation. ----

TEST(CompileAsyncTest, MatchesSynchronousCompile) {
  Compiler compiler(buildMatmulBlock(24, 24, 24));
  compiler.parameters({24, 24, 24}).tileSizes({4, 4, 8}).jobs(2);
  CompileResult sync = compiler.compile();
  CompileResult async = compiler.compileAsync().get();
  ASSERT_TRUE(sync.ok) << sync.firstError();
  ASSERT_TRUE(async.ok) << async.firstError();
  EXPECT_EQ(sync.artifact, async.artifact);
  EXPECT_EQ(sync.search.subTile, async.search.subTile);
}

TEST(CompileAsyncTest, WithoutSourceThrows) {
  Compiler compiler;
  EXPECT_THROW(compiler.compileAsync(), ApiError);
}

TEST(CompileAsyncTest, SnapshotsTheConfiguration) {
  Compiler compiler(buildMatmulBlock(24, 24, 24));
  compiler.parameters({24, 24, 24}).tileSizes({4, 4, 8}).jobs(1);
  std::future<CompileResult> f = compiler.compileAsync();
  compiler.kernelName("mutated_after_submit").backend("cuda");  // must not affect the task
  CompileResult r = f.get();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.artifact.find("mutated_after_submit"), std::string::npos);
}

TEST(CompileBatchTest, PreservesInputOrder) {
  std::vector<ProgramBlock> blocks;
  blocks.push_back(buildMatmulBlock(16, 16, 16));
  blocks.push_back(buildMatmulBlock(16, 16, 16));
  blocks.push_back(buildMatmulBlock(16, 16, 16));
  blocks[1].name = "marker_block";  // structural difference in the middle
  Compiler compiler;
  compiler.parameters({16, 16, 16}).tileSizes({4, 4, 4}).jobs(2).skipPass("codegen");
  std::vector<CompileResult> results = compiler.compileBatch(std::move(blocks));
  ASSERT_EQ(results.size(), 3u);
  for (const CompileResult& r : results) ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_NE(results[0].block().name, "marker_block");
  EXPECT_EQ(results[1].block().name, "marker_block");
  EXPECT_NE(results[2].block().name, "marker_block");
}

TEST(CompileBatchTest, SequentialDuplicatesHitTheCache) {
  PlanCache cache;
  std::vector<ProgramBlock> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(buildMeBlock(32, 32, 8));
  Compiler compiler;
  compiler.parameters({32, 32, 8}).memoryLimitBytes(8 * 1024).jobs(1).cache(&cache);
  std::vector<CompileResult> results = compiler.compileBatch(std::move(blocks));
  ASSERT_EQ(results.size(), 4u);
  int hits = 0;
  for (const CompileResult& r : results) {
    ASSERT_TRUE(r.ok) << r.firstError();
    hits += r.cacheHit ? 1 : 0;
  }
  // jobs(1) runs the batch in order: the first compile fills the cache, the
  // other three replay it. All four artifacts are identical either way.
  EXPECT_EQ(hits, 3);
  for (const CompileResult& r : results) EXPECT_EQ(r.artifact, results[0].artifact);
}

TEST(CompileBatchTest, ConcurrentCompilesShareTheCacheSafely) {
  PlanCache cache;
  std::vector<ProgramBlock> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(buildMeBlock(32, 32, 8));
  Compiler compiler;
  compiler.parameters({32, 32, 8}).memoryLimitBytes(8 * 1024).jobs(4).cache(&cache);
  std::vector<CompileResult> results = compiler.compileBatch(std::move(blocks));
  ASSERT_EQ(results.size(), 8u);
  int pipelineRuns = 0;
  for (const CompileResult& r : results) {
    ASSERT_TRUE(r.ok) << r.firstError();
    EXPECT_EQ(r.artifact, results[0].artifact);
    pipelineRuns += r.cacheHit ? 0 : 1;
  }
  // Single-flight: concurrent misses on the one key collapse onto one
  // leader; the other seven block on the in-flight latch (or hit the
  // finished entry) and are served the leader's plan as cache hits.
  EXPECT_EQ(pipelineRuns, 1);
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 7);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CompileBatchTest, FamilyAwareSchedulingRunsOneLeaderPerFamily) {
  PlanCache cache;
  std::vector<ProgramBlock> blocks;
  // Two families interleaved. Family-aware scheduling submits one leader
  // per family FIRST and gates the rest, so every follower deterministically
  // replays its leader's plan — no reliance on the single-flight race.
  for (int i = 0; i < 4; ++i) {
    blocks.push_back(buildMeBlock(32, 32, 8));
    blocks.push_back(buildMatmulBlock(32, 32, 8));
  }
  Compiler compiler;
  compiler.parameters({32, 32, 8}).memoryLimitBytes(8 * 1024).jobs(4).cache(&cache);
  std::vector<CompileResult> results = compiler.compileBatch(std::move(blocks));
  ASSERT_EQ(results.size(), 8u);
  int pipelineRuns = 0;
  for (const CompileResult& r : results) {
    ASSERT_TRUE(r.ok) << r.firstError();
    pipelineRuns += r.cacheHit ? 0 : 1;
  }
  EXPECT_EQ(pipelineRuns, 2);  // exactly the two leaders
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.hits, 6);
  EXPECT_EQ(s.familyMisses, 2);  // one cold family build each, no races
}

TEST(PlanCacheTest, SingleFlightRetriesAfterALeaderFailure) {
  PlanCache cache;
  PlanKey key{1, 2, 3};
  std::atomic<int> computes{0};
  // A failing leader must not poison the key: the next caller recomputes.
  CompileResult failed = cache.getOrCompute(key, [&] {
    ++computes;
    return CompileResult{};  // ok = false
  });
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(cache.size(), 0u);
  CompileResult good = cache.getOrCompute(key, [&] {
    ++computes;
    CompileResult r;
    r.ok = true;
    r.artifact = "art";
    return r;
  });
  EXPECT_TRUE(good.ok);
  EXPECT_FALSE(good.cacheHit);
  EXPECT_EQ(computes.load(), 2);
  // Third call is a plain hit.
  CompileResult warm = cache.getOrCompute(key, [&] {
    ++computes;
    return CompileResult{};
  });
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.artifact, "art");
  EXPECT_EQ(computes.load(), 2);
}

}  // namespace
}  // namespace emm
