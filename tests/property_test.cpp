// Property-based suites over generated affine blocks and polyhedral
// algebra. Inputs are generated deterministically from seeds; every
// property is a law that must hold for all inputs:
//
//  P1  set algebra: |A| = |A\B| + |A∩B|; pieces of A\B are disjoint from B
//  P2  image/preimage adjunction on boxes
//  P3  scratchpad framework preserves semantics on randomized 2-array blocks
//  P4  move-in traffic equals the exact union volume of read spaces
//  P5  tiled execution preserves semantics for random tile shapes (matmul)
//  P6  simulator monotonicity: more work never takes less time
#include <gtest/gtest.h>

#include "gpusim/machine.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "poly/enumerate.h"
#include "smem/data_manage.h"
#include "tiling/multilevel.h"

namespace emm {
namespace {

/// Deterministic value stream for test-case generation.
struct Gen {
  std::uint64_t state;
  explicit Gen(unsigned seed) : state(seed * 2654435761u + 1) {}
  i64 next(i64 lo, i64 hi) {  // inclusive
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<i64>((state >> 33) % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

Polyhedron randomBox(Gen& g, int dim, i64 maxCoord) {
  Polyhedron p(dim, 0);
  for (int d = 0; d < dim; ++d) {
    i64 lo = g.next(0, maxCoord - 1);
    i64 hi = g.next(lo, maxCoord - 1);
    p.addRange(d, lo, hi);
  }
  return p;
}

class SetAlgebraProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SetAlgebraProperty, DifferencePartitionsTheSet) {
  Gen g(GetParam());
  int dim = static_cast<int>(g.next(1, 3));
  Polyhedron a = randomBox(g, dim, 12);
  Polyhedron b = randomBox(g, dim, 12);

  i64 total = countPoints(a, {});
  i64 inter = countIntersection(a, b, {});
  PolySet diff = setDifference(a, b);
  i64 diffCount = 0;
  for (const Polyhedron& piece : diff) {
    diffCount += countPoints(piece, {});
    EXPECT_FALSE(overlaps(piece, b));
  }
  EXPECT_EQ(total, diffCount + inter);
  // Pieces are pairwise disjoint.
  for (size_t i = 0; i < diff.size(); ++i)
    for (size_t j = i + 1; j < diff.size(); ++j) EXPECT_FALSE(overlaps(diff[i], diff[j]));
}

TEST_P(SetAlgebraProperty, UnionCountIsInclusionExclusion) {
  Gen g(GetParam() + 1000);
  Polyhedron a = randomBox(g, 2, 10);
  Polyhedron b = randomBox(g, 2, 10);
  i64 u = countUnion({a, b}, {});
  EXPECT_EQ(u, countPoints(a, {}) + countPoints(b, {}) - countIntersection(a, b, {}));
}

TEST_P(SetAlgebraProperty, ImagePreimageAdjunction) {
  // For y = x + c on a box: preimage(image(B)) == B.
  Gen g(GetParam() + 2000);
  Polyhedron box = randomBox(g, 1, 20);
  i64 c = g.next(-5, 5);
  IntMat f{{1, c}};
  Polyhedron img = box.image(f);
  Polyhedron back = img.preimage(f, 1);
  EXPECT_EQ(countPoints(box, {}), countPoints(img, {}));
  EXPECT_EQ(countPoints(back, {}), countPoints(box, {}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetAlgebraProperty, ::testing::Range(1u, 13u));

// ---- Randomized affine blocks through the scratchpad framework. ----

/// Builds a two-array block: B[i] = f(A[i+s1], A[i+s2], B-read?) with random
/// shifts and extent; exercises partitioning, benefit analysis, rewriting
/// and copy generation.
ProgramBlock randomBlock(Gen& g) {
  i64 range = g.next(4, 24);
  i64 s1 = g.next(0, 12);
  i64 s2 = g.next(0, 12);
  ProgramBlock block;
  block.name = "rand";
  block.arrays = {{"A", {64}}, {"B", {64}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, range - 1);
  Access w{1, IntMat{{1, 0}}, true};
  Access r1{0, IntMat{{1, s1}}, false};
  Access r2{0, IntMat{{1, s2}}, false};
  s.accesses = {w, r1, r2};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::mul(Expr::load(2), Expr::constant(2)));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));
  // Sometimes add a second statement reading what the first wrote.
  if (g.next(0, 1) == 1) {
    Statement s2s;
    s2s.name = "T";
    s2s.domain = Polyhedron(1, 0);
    s2s.domain.addRange(0, 0, range - 1);
    Access w2{0, IntMat{{1, 30}}, true};
    Access r{1, IntMat{{1, 0}}, false};
    s2s.accesses = {w2, r};
    s2s.writeAccess = 0;
    s2s.rhs = Expr::sub(Expr::load(1), Expr::constant(1));
    s2s.schedule = ProgramBlock::interleavedSchedule(1, 0, {1, 0});
    block.statements.push_back(std::move(s2s));
  }
  block.validate();
  return block;
}

class RandomBlockProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomBlockProperty, ScratchpadPreservesSemantics) {
  Gen g(GetParam());
  ProgramBlock block = randomBlock(g);
  for (bool onlyBeneficial : {false, true}) {
    for (bool optimize : {false, true}) {
      SmemOptions o;
      o.onlyBeneficial = onlyBeneficial;
      o.optimizeCopySets = optimize;
      CodeUnit unit = buildScratchpadUnit(block, o);
      ArrayStore got(block.arrays), want(block.arrays);
      got.fillAllPattern(GetParam());
      want.fillAllPattern(GetParam());
      executeCodeUnit(unit, {}, got);
      executeReference(block, {}, want);
      ASSERT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0)
          << "onlyBeneficial=" << onlyBeneficial << " optimize=" << optimize;
    }
  }
}

TEST_P(RandomBlockProperty, MoveInTrafficEqualsUnionVolume) {
  Gen g(GetParam() + 500);
  ProgramBlock block = randomBlock(g);
  SmemOptions o;
  o.onlyBeneficial = false;
  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, o, plan);
  ArrayStore store(block.arrays);
  MemTrace t = executeCodeUnit(unit, {}, store);
  i64 expected = 0;
  for (const PartitionPlan& p : plan.partitions)
    if (p.hasBuffer) expected += countUnion(p.readSpaces(), {});
  EXPECT_EQ(t.globalReads, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlockProperty, ::testing::Range(1u, 17u));

// ---- Random tile shapes on matmul. ----

class RandomTileProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomTileProperty, TiledMatmulAlwaysCorrect) {
  Gen g(GetParam());
  i64 n = g.next(3, 10), m = g.next(3, 10), k = g.next(3, 10);
  ProgramBlock block = buildMatmulBlock(n, m, k);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  TileConfig tc;
  tc.subTile = {g.next(1, n), g.next(1, m), g.next(1, k)};
  tc.blockTile = {tc.subTile[0] * g.next(1, 2), tc.subTile[1] * g.next(1, 2)};
  tc.threadTile = {g.next(1, 4), g.next(1, 4)};
  SmemOptions smem;
  smem.sampleParams = {n, m, k};

  TiledKernel kernel = buildTiledKernel(block, plan, tc, smem);
  ArrayStore store(block.arrays);
  store.fillAllPattern(GetParam());
  std::vector<double> a = store.raw(0), b = store.raw(1), c = store.raw(2);
  IntVec ext = {n, m, k};
  ext.resize(kernel.analysis.tileBlock->paramNames.size(), 0);
  executeCodeUnit(kernel.unit, ext, store);
  referenceMatmul(a, b, c, n, m, k);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < m; ++j)
      ASSERT_NEAR(store.get(2, {i, j}), c[i * m + j], 1e-9)
          << "n,m,k=" << n << "," << m << "," << k << " tile=" << tc.subTile[0] << ","
          << tc.subTile[1] << "," << tc.subTile[2];
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTileProperty, ::testing::Range(1u, 21u));

// ---- Simulator monotonicity laws. ----

class SimMonotonicity : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimMonotonicity, MoreWorkNeverFaster) {
  Gen g(GetParam());
  Machine m = Machine::geforce8800gtx();
  LaunchConfig l;
  l.numBlocks = g.next(1, 256);
  l.threadsPerBlock = g.next(1, 8) * 32;
  l.smemBytesPerBlock = g.next(0, 16) * 1024;
  BlockWork w;
  w.computeOps = g.next(0, 1'000'000);
  w.smemElems = g.next(0, 1'000'000);
  w.globalElems = g.next(0, 1'000'000);
  w.intraSyncs = g.next(0, 1000);
  SimResult base = simulateLaunch(m, l, w);
  if (!base.feasible) return;

  BlockWork more = w;
  more.computeOps += g.next(1, 100000);
  more.globalElems += g.next(1, 100000);
  SimResult heavier = simulateLaunch(m, l, more);
  ASSERT_TRUE(heavier.feasible);
  EXPECT_GE(heavier.milliseconds, base.milliseconds);

  LaunchConfig moreSync = l;
  moreSync.interBlockSyncs = g.next(1, 100);
  SimResult synced = simulateLaunch(m, moreSync, w);
  ASSERT_TRUE(synced.feasible);
  EXPECT_GE(synced.milliseconds, base.milliseconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimMonotonicity, ::testing::Range(1u, 25u));

}  // namespace
}  // namespace emm
