// Tests for checked arithmetic, rationals, and the cli argument helper.
#include <gtest/gtest.h>

#include "support/checked_int.h"
#include "support/cli.h"
#include "support/rational.h"

namespace emm {
namespace {

TEST(CheckedInt, BasicOps) {
  EXPECT_EQ(addChecked(2, 3), 5);
  EXPECT_EQ(subChecked(2, 3), -1);
  EXPECT_EQ(mulChecked(-4, 5), -20);
  EXPECT_EQ(mulAddChecked(2, 3, 4, 5), 26);
}

TEST(CheckedInt, NarrowAtLimits) {
  EXPECT_EQ(narrow(static_cast<i128>(INT64_MAX)), INT64_MAX);
  EXPECT_EQ(narrow(static_cast<i128>(INT64_MIN)), INT64_MIN);
  // Overflow is a data-dependent precondition (hostile serialized bytes,
  // pathological programs), so it throws ApiError rather than aborting.
  EXPECT_THROW(narrow(static_cast<i128>(INT64_MAX) + 1), ApiError);
  EXPECT_THROW(mulChecked(INT64_MAX, 2), ApiError);
}

TEST(CheckedInt, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
}

TEST(CheckedInt, FloorCeilDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(Rational, NormalizationAndSign) {
  Rat r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rat(0, 5), Rat(0));
  EXPECT_EQ(Rat(0, 5).den(), 1);
  EXPECT_EQ(Rat(-2, -4), Rat(1, 2));
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(3, 4), Rat(1, 2));
  EXPECT_EQ(Rat(2, 3) / Rat(4, 3), Rat(1, 2));
  EXPECT_EQ(-Rat(1, 2), Rat(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_GT(Rat(-1, 3), Rat(-1, 2));
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_LE(Rat(1, 2), Rat(1, 2));
}

TEST(Rational, FloorCeilRound) {
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(7, 2).ceil(), 4);
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(7, 2).round(), 4);
  EXPECT_EQ(Rat(5, 2).round(), 3);  // ties away from zero
  EXPECT_EQ(Rat(-5, 2).round(), -3);
  EXPECT_EQ(Rat(1, 3).round(), 0);
  EXPECT_EQ(Rat(2, 3).round(), 1);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rat(3).str(), "3");
  EXPECT_EQ(Rat(1, 2).str(), "1/2");
  EXPECT_EQ(Rat(-1, 2).str(), "-1/2");
}

class RationalFieldAxioms : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalFieldAxioms, AddMulConsistency) {
  auto [an, bd] = GetParam();
  Rat a(an, 7), b(bd, 5), c(3, 11);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  if (!b.isZero()) { EXPECT_EQ(a / b * b, a); }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalFieldAxioms,
                         ::testing::Combine(::testing::Values(-9, -1, 0, 2, 14),
                                            ::testing::Values(-10, -3, 1, 6, 25)));

// ---- emm::cli argument helper. ----

TEST(CliArgs, TypedAccessorsAndDefaults) {
  const char* argv[] = {"tool", "--kernel=me", "--size=8,16,4", "--mem=1024", "--no-hoist"};
  cli::Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.str("kernel", "jacobi"), "me");
  EXPECT_EQ(args.str("emit", "plan"), "plan");  // absent -> fallback
  EXPECT_EQ(args.intList("size"), (std::vector<i64>{8, 16, 4}));
  EXPECT_TRUE(args.intList("tile").empty());
  EXPECT_EQ(args.integer("mem", 4096), 1024);
  EXPECT_TRUE(args.flag("no-hoist"));
  EXPECT_FALSE(args.flag("verbose"));
  EXPECT_TRUE(args.unrecognized().empty());
}

TEST(CliArgs, ReportsUnconsumedArguments) {
  const char* argv[] = {"tool", "--kernel=me", "--typo=1"};
  cli::Args args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.str("kernel", ""), "me");
  std::vector<std::string> extra = args.unrecognized();
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0], "--typo=1");
}

TEST(CliArgs, MalformedIntegersThrow) {
  EXPECT_THROW(cli::parseIntList("3,x"), ApiError);
  EXPECT_THROW(cli::parseIntList("12cats"), ApiError);
  EXPECT_EQ(cli::parseIntList("4,-2"), (std::vector<i64>{4, -2}));
  const char* argv[] = {"tool", "--mem=1,2"};
  cli::Args args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.integer("mem", 0), ApiError);
}

}  // namespace
}  // namespace emm
