// Shard-boundary tests for the sharded PlanCache: shard-count resolution
// (power-of-two rounding, capacity clamping), per-shard capacity split and
// eviction (a shard at its slice evicts even when the cache as a whole is
// far under capacity), single-flight leader failure waking followers parked
// on the failing key's shard while other shards keep serving, clear()
// coherence across every shard, and a Zipfian multi-thread hammer whose
// hit/miss/entry counter totals must come out exact. The deterministic
// tests force a fixed shard count so they behave identically on any
// machine; the hammer forces shards > 1 so the cross-shard paths run even
// on single-core CI boxes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "driver/compiler.h"
#include "driver/plan_cache.h"
#include "testgen/generator.h"

namespace emm {
namespace {

/// A tiny but clonable CompileResult whose artifact witnesses its key.
CompileResult syntheticResult(u64 key) {
  CompileResult r;
  r.ok = true;
  r.input = std::make_unique<ProgramBlock>();
  r.artifact = "artifact-" + std::to_string(key);
  return r;
}

PlanKey keyAt(u64 i) {
  PlanKey k;
  k.block = 0x9e3779b97f4a7c15ULL * (i + 1);
  k.options = i;
  return k;
}

/// First `count` keys from the keyAt stream that land on `shard`.
std::vector<PlanKey> keysOnShard(const PlanCache& cache, size_t shard, size_t count) {
  std::vector<PlanKey> out;
  for (u64 i = 0; out.size() < count; ++i)
    if (cache.shardOf(keyAt(i)) == shard) out.push_back(keyAt(i));
  return out;
}

std::vector<FamilyKey> familyKeysOnShard(const PlanCache& cache, size_t shard, size_t count) {
  std::vector<FamilyKey> out;
  for (u64 i = 0; out.size() < count; ++i) {
    FamilyKey k;
    k.block = 0x9e3779b97f4a7c15ULL * (i + 1);
    k.options = i;
    if (cache.shardOfFamily(k) == shard) out.push_back(k);
  }
  return out;
}

TEST(ShardedCache, ShardCountIsPow2AndClampedToCapacity) {
  EXPECT_EQ(PlanCache(1024, 16).shardCount(), 16u);
  EXPECT_EQ(PlanCache(1024, 1).shardCount(), 1u);
  // Non-power-of-two requests round up.
  EXPECT_EQ(PlanCache(1024, 9).shardCount(), 16u);
  EXPECT_EQ(PlanCache(1024, 3).shardCount(), 4u);
  // Every shard must own at least one entry of capacity: a tiny cache
  // cannot have more shards than entries.
  EXPECT_LE(PlanCache(2, 64).shardCount(), 2u);
  EXPECT_EQ(PlanCache(1, 64).shardCount(), 1u);
  // The auto default is some power of two >= 1.
  const size_t n = PlanCache(1024, 0).shardCount();
  EXPECT_GE(n, 1u);
  EXPECT_EQ(n & (n - 1), 0u);
}

TEST(ShardedCache, EvictionIsLeastRecentlyUsedNotOldestInsert) {
  // Single shard, capacity 3, deterministic recency order: hits re-touch,
  // so the victim is the coldest entry, not the oldest insert.
  PlanCache cache(3, 1);
  const PlanKey a = keyAt(0), b = keyAt(1), c = keyAt(2), d = keyAt(3);
  cache.insert(a, syntheticResult(0));
  cache.insert(b, syntheticResult(1));
  cache.insert(c, syntheticResult(2));
  // Touch a (the oldest insert): recency order becomes b, c, a.
  EXPECT_TRUE(cache.lookup(a).has_value());
  cache.insert(d, syntheticResult(3));
  // b — the least recently used — went; a survived its age.
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_TRUE(cache.lookup(d).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);

  // An overwrite counts as a use too: re-inserting c makes a the victim.
  cache.insert(c, syntheticResult(20));
  cache.insert(a, syntheticResult(10));  // order now d, c, a
  cache.insert(b, syntheticResult(11));
  EXPECT_FALSE(cache.lookup(d).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());

  // getOrCompute hits re-touch as well: touch c, then push two new keys —
  // the untouched a and b go first while c outlives both.
  (void)cache.getOrCompute(c, [] { return syntheticResult(99); });
  cache.insert(keyAt(4), syntheticResult(4));
  cache.insert(keyAt(5), syntheticResult(5));
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
}

TEST(ShardedCache, EvictionIsPerShardNotGlobal) {
  // Capacity 8 over 4 shards: each shard owns exactly 2 entries.
  PlanCache cache(8, 4);
  ASSERT_EQ(cache.shardCount(), 4u);
  const std::vector<PlanKey> shard0 = keysOnShard(cache, 0, 3);
  const std::vector<PlanKey> shard1 = keysOnShard(cache, 1, 2);

  // Overfill shard 0 while the cache as a whole is far under capacity:
  // the shard's slice, not the global budget, bounds it.
  for (const PlanKey& k : shard0) cache.insert(k, syntheticResult(k.options));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  // Oldest of shard 0 went; the newer two survive.
  EXPECT_FALSE(cache.lookup(shard0[0]).has_value());
  EXPECT_TRUE(cache.lookup(shard0[1]).has_value());
  EXPECT_TRUE(cache.lookup(shard0[2]).has_value());

  // Other shards are untouched by shard 0's pressure.
  for (const PlanKey& k : shard1) cache.insert(k, syntheticResult(k.options));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup(shard1[0]).has_value());
  EXPECT_TRUE(cache.lookup(shard1[1]).has_value());
}

TEST(ShardedCache, LeaderFailureWakesFollowersOnTheRightShard) {
  PlanCache cache(64, 4);
  ASSERT_EQ(cache.shardCount(), 4u);
  const PlanKey keyA = keysOnShard(cache, 0, 1)[0];
  const PlanKey keyB = keysOnShard(cache, 1, 1)[0];

  std::atomic<bool> leaderIn{false};
  std::atomic<bool> release{false};
  std::atomic<int> failComputes{0};
  std::atomic<int> okComputes{0};

  // Leader parks inside its compute (so followers provably queue behind
  // its in-flight latch), then fails.
  std::thread leader([&] {
    CompileResult r = cache.getOrCompute(keyA, [&] {
      leaderIn.store(true);
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++failComputes;
      CompileResult fail;
      fail.ok = false;
      return fail;
    });
    EXPECT_FALSE(r.ok);
  });
  while (!leaderIn.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // While shard 0 has a parked leader, shard 1 keeps serving: a compute
  // on keyB completes without waiting on keyA's flight.
  CompileResult b = cache.getOrCompute(keyB, [&] { return syntheticResult(keyB.options); });
  EXPECT_TRUE(b.ok);
  EXPECT_FALSE(b.cacheHit);

  // Three followers queue on keyA, then the leader is released to fail.
  // Exactly one follower must be woken into leadership and recompute; the
  // others get its result as hits.
  std::vector<std::thread> followers;
  std::atomic<int> followerHits{0};
  for (int i = 0; i < 3; ++i)
    followers.emplace_back([&] {
      CompileResult r = cache.getOrCompute(keyA, [&] {
        ++okComputes;
        return syntheticResult(keyA.options);
      });
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.artifact, syntheticResult(keyA.options).artifact);
      if (r.cacheHit) ++followerHits;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  leader.join();
  for (std::thread& f : followers) f.join();

  EXPECT_EQ(failComputes.load(), 1);
  EXPECT_EQ(okComputes.load(), 1);
  EXPECT_EQ(followerHits.load(), 2);
  const PlanCache::Stats s = cache.stats();
  // Misses: failed leader on A, retry leader on A, cold B. Hits: the two
  // followers served by the retry leader.
  EXPECT_EQ(s.misses, 3);
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.entries, 2);
  // The failure was never cached; the retry's result was.
  EXPECT_TRUE(cache.lookup(keyA).has_value());
}

TEST(ShardedCache, ClearIsCoherentAcrossShards) {
  PlanCache cache(64, 4);
  ASSERT_EQ(cache.shardCount(), 4u);
  for (u64 i = 0; i < 16; ++i) cache.insert(keyAt(i), syntheticResult(i));
  const FamilyKey fam = familyKeysOnShard(cache, 2, 1)[0];
  cache.insertFamily(fam, /*collisionDigest=*/7, std::make_shared<FamilyPlan>());
  for (u64 i = 0; i < 16; ++i) EXPECT_TRUE(cache.lookup(keyAt(i)).has_value());
  EXPECT_NE(cache.lookupFamily(fam, 7), nullptr);

  cache.clear();

  // Every shard's tiers and counters reset; nothing half-cleared.
  EXPECT_EQ(cache.size(), 0u);
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.familyHits, 0);
  EXPECT_EQ(s.familyMisses, 0);
  EXPECT_EQ(s.familyEntries, 0);
  EXPECT_EQ(s.familyEvictions, 0);
  // The snapshot (lock-free) read path was republished too: a stale
  // pre-clear epoch must not serve evicted entries forever.
  EXPECT_FALSE(cache.lookup(keyAt(0)).has_value());
  EXPECT_EQ(cache.lookupFamily(fam, 7), nullptr);

  // The cache stays fully usable after clear().
  cache.insert(keyAt(99), syntheticResult(99));
  EXPECT_TRUE(cache.lookup(keyAt(99)).has_value());
}

TEST(ShardedCache, FamilyTierEvictsPerShardAndGuardsDigests) {
  PlanCache cache(8, 4);
  ASSERT_EQ(cache.shardCount(), 4u);
  const std::vector<FamilyKey> keys = familyKeysOnShard(cache, 3, 3);
  for (const FamilyKey& k : keys) cache.insertFamily(k, 11, std::make_shared<FamilyPlan>());
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.familyEntries, 2);
  EXPECT_EQ(s.familyEvictions, 1);
  EXPECT_EQ(cache.lookupFamily(keys[0], 11), nullptr);  // shard 3's oldest went
  EXPECT_NE(cache.lookupFamily(keys[1], 11), nullptr);
  EXPECT_NE(cache.lookupFamily(keys[2], 11), nullptr);
  // A colliding 64-bit key with the wrong digest is a miss, on the warm
  // snapshot path too (the second probe is served lock-free).
  EXPECT_EQ(cache.lookupFamily(keys[2], 12), nullptr);
  EXPECT_EQ(cache.lookupFamily(keys[2], 12), nullptr);
}

TEST(ShardedCache, FamilyTierHitsRetouchOnTheSnapshotFastPath) {
  // Regression test: family-tier lookups must refresh recency like the
  // result tier does — including hits served lock-free from a published
  // snapshot. Before the fix, the family order was insertion-only, so a
  // hot family was evicted the moment two colder ones arrived.
  PlanCache cache(2, 1);  // single shard, two family slots
  ASSERT_EQ(cache.shardCount(), 1u);
  const std::vector<FamilyKey> keys = familyKeysOnShard(cache, 0, 3);
  cache.insertFamily(keys[0], 11, std::make_shared<FamilyPlan>());
  cache.insertFamily(keys[1], 11, std::make_shared<FamilyPlan>());
  // Both inserts republished the snapshot, so this hit is served from the
  // lock-free path — and must still move keys[0] to most-recently-used.
  ASSERT_NE(cache.lookupFamily(keys[0], 11), nullptr);
  cache.insertFamily(keys[2], 11, std::make_shared<FamilyPlan>());
  // The untouched keys[1] is the LRU victim; the hot keys[0] survives.
  EXPECT_NE(cache.lookupFamily(keys[0], 11), nullptr);
  EXPECT_EQ(cache.lookupFamily(keys[1], 11), nullptr);
  EXPECT_NE(cache.lookupFamily(keys[2], 11), nullptr);
  EXPECT_EQ(cache.stats().familyEvictions, 1);
}

TEST(ShardedCache, ConcurrentBatchMatchesSingleThreadedCompile) {
  // Concurrency differential: one generated program, 32 copies compiled
  // through the batch path at 8 workers over a sharded cache, must produce
  // results byte-identical to an isolated single-threaded compile — cache
  // sharing and single-flight collapsing must never change the artifact.
  testgen::ProgramGenerator gen;
  const testgen::GeneratedProgram p = gen.generate(3);  // compiles to a unit

  Compiler ref(p.block);
  ref.opts().innerProcs = 4;
  ref.parameters(p.paramValues);
  const CompileResult r0 = ref.compile();
  ASSERT_TRUE(r0.ok) << r0.firstError();
  ASSERT_NE(r0.unit(), nullptr);
  const std::string refArtifact = r0.artifact;
  ASSERT_FALSE(refArtifact.empty());

  PlanCache cache(64, 4);
  Compiler c(p.block);
  c.opts().innerProcs = 4;
  c.parameters(p.paramValues).cache(&cache).jobs(8);
  std::vector<ProgramBlock> blocks(32, p.block);
  const std::vector<CompileResult> results = c.compileBatch(std::move(blocks));
  ASSERT_EQ(results.size(), 32u);
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(results[i].ok) << results[i].firstError();
    EXPECT_EQ(results[i].artifact, refArtifact);
    EXPECT_EQ(results[i].search.subTile, r0.search.subTile);
    EXPECT_EQ(results[i].search.eval.cost, r0.search.eval.cost);  // bit-identical
    ASSERT_NE(results[i].unit(), nullptr);
  }
}

TEST(ShardedCache, ZipfianHammerCountersAreExact) {
  // Force multiple shards so the cross-shard paths run even on a
  // single-core box. Capacity comfortably exceeds the keyspace: no
  // eviction, so every counter total must come out exact.
  constexpr size_t kKeys = 96;
  constexpr int kThreads = 4;
  constexpr i64 kOpsPerThread = 500;
  PlanCache cache(256, 4);
  ASSERT_EQ(cache.shardCount(), 4u);

  // Zipf(s=0.99) inverse-CDF table over the keyspace.
  std::vector<double> cdf(kKeys);
  double sum = 0;
  for (size_t k = 0; k < kKeys; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), 0.99);
    cdf[k] = sum;
  }
  for (double& c : cdf) c /= sum;

  std::vector<std::unique_ptr<std::atomic<int>>> computes;
  for (size_t i = 0; i < kKeys; ++i) computes.push_back(std::make_unique<std::atomic<int>>(0));
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(0xbeefULL + static_cast<u64>(t));
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      for (i64 i = 0; i < kOpsPerThread; ++i) {
        const size_t key = static_cast<size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
        CompileResult r = cache.getOrCompute(keyAt(key), [&] {
          ++*computes[key];
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          return syntheticResult(key);
        });
        if (!r.ok || r.artifact != syntheticResult(key).artifact) mismatch.store(true);
      }
    });
  for (std::thread& w : workers) w.join();

  ASSERT_FALSE(mismatch.load());
  i64 unique = 0;
  for (size_t i = 0; i < kKeys; ++i) {
    EXPECT_LE(computes[i]->load(), 1) << "key " << i << " computed twice";
    unique += computes[i]->load();
  }
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, unique);
  EXPECT_EQ(s.hits + s.misses, static_cast<i64>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.entries, unique);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(static_cast<i64>(cache.size()), unique);
}

}  // namespace
}  // namespace emm
