// Robustness and golden-structure tests:
//  - API misuse raises ApiError (never silently mis-compiles),
//  - internal invariant violations die loudly (EMM_CHECK),
//  - the emitted Figure-1 move-in code reproduces the paper's exact loop
//    bounds, including the max/min clamps on the skewed A region,
//  - additional polyhedral corner cases (parametric divisors, inserted
//    variables, empty-domain statements).
#include <gtest/gtest.h>

#include "codegen/scan.h"
#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "poly/enumerate.h"
#include "smem/data_manage.h"
#include "tiling/multilevel.h"

namespace emm {
namespace {

// ---- Golden: paper Figure 1 move-in code. ----

TEST(Golden, Figure1MoveInLoopsMatchPaper) {
  // The paper's move-in code for array A:
  //   for (i=10;i<=14;i++) for (j=11;j<=20;j++)           LA[i-10][j-11]=A[i][j];
  //   for (i=20;i<=28;i++) for (j=max(i-13,11);j<=min(15,i-9);j++) LA[..]=A[i][j];
  // Our scanner emits the same two pieces (order may differ); the max/min
  // clamps on the second piece must match exactly.
  ProgramBlock block = buildFigure1Block();
  SmemOptions o;
  o.onlyBeneficial = false;
  o.partitionMode = PartitionMode::PerArrayUnion;
  CodeUnit unit = buildScratchpadUnit(block, o);
  std::string code = emitC(unit);

  // Dense rectangular piece.
  EXPECT_NE(code.find("= 10; m0_0 <= 14"), std::string::npos) << code;
  EXPECT_NE(code.find("= 11; m0_1 <= 20"), std::string::npos) << code;
  // Skewed piece with the paper's clamps.
  EXPECT_NE(code.find("= 20; m0_0 <= 28"), std::string::npos) << code;
  EXPECT_NE(code.find("max(m0_0 - 13, 11)"), std::string::npos) << code;
  EXPECT_NE(code.find("min(15, m0_0 - 9)"), std::string::npos) << code;
  // Buffer-relative addressing with the paper's offsets.
  EXPECT_NE(code.find("LA0[m0_0 - 10][m0_1 - 11] = A[m0_0][m0_1];"), std::string::npos)
      << code;
  // Move-out of A covers exactly the written region (i 10..14, j 11..15).
  EXPECT_NE(code.find("A[m0_0][m0_1] = LA0[m0_0 - 10][m0_1 - 11];"), std::string::npos);
}

TEST(Golden, Figure1MoveCountsMatchPaperRegions) {
  // Volumes from the paper's Figure 1 loop bounds:
  //   A move-in: 5*10 (dense A[i][k]) + 25 (skewed band, rows 20..28 with
  //              1..5..1 elements per row)          = 75
  //   A move-out: 5*5                               = 25
  //   B move-in: 9*10                               = 90
  //   B move-out: 5*14                              = 70
  ProgramBlock block = buildFigure1Block();
  SmemOptions o;
  o.onlyBeneficial = false;
  o.partitionMode = PartitionMode::PerArrayUnion;
  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, o, plan);
  ArrayStore store(block.arrays);
  MemTrace t = executeCodeUnit(unit, {}, store);
  EXPECT_EQ(t.globalReads, 75 + 90);
  EXPECT_EQ(t.globalWrites, 25 + 70);
}

// ---- API misuse. ----

TEST(Errors, MalformedBlocksThrow) {
  ProgramBlock block;
  block.name = "bad";
  block.arrays = {{"A", {8}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 7);
  Access w{0, IntMat{{1, 0}}, true};
  s.accesses = {w};
  s.writeAccess = 0;
  s.rhs = Expr::constant(1);
  s.schedule = IntMat(1, 5);  // wrong width
  block.statements.push_back(s);
  EXPECT_THROW(block.validate(), ApiError);

  block.statements[0].schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements[0].writeAccess = 3;  // out of range
  EXPECT_THROW(block.validate(), ApiError);

  block.statements[0].writeAccess = 0;
  block.statements[0].accesses[0].arrayId = 9;  // unknown array
  EXPECT_THROW(block.validate(), ApiError);
}

TEST(Errors, AccessRankMismatchThrows) {
  ProgramBlock block;
  block.name = "rank";
  block.arrays = {{"A", {8, 8}}};  // 2-D array
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 7);
  Access w{0, IntMat{{1, 0}}, true};  // 1-D access function
  s.accesses = {w};
  s.writeAccess = 0;
  s.rhs = Expr::constant(0);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(s);
  EXPECT_THROW(block.validate(), ApiError);
}

TEST(Errors, ScanArityMismatchThrows) {
  Polyhedron p(2, 0);
  p.addRange(0, 0, 3);
  p.addRange(1, 0, 3);
  EXPECT_THROW(
      scanPolyhedron(p, {"i"}, {}, [](const std::vector<std::string>&) {
        return AstNode::comment("x");
      }),
      ApiError);
}

TEST(Errors, TilerRejectsNonRectangular) {
  // Triangular domain: loop-1 bounds depend on loop 0.
  ProgramBlock block;
  block.name = "tri";
  block.arrays = {{"A", {16, 16}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(2, 0);
  s.domain.addRange(0, 0, 9);
  s.domain.addInequality({0, 1, 0});   // j >= 0
  s.domain.addInequality({1, -1, 0});  // j <= i
  Access w{0, IntMat{{1, 0, 0}, {0, 1, 0}}, true};
  s.accesses = {w};
  s.writeAccess = 0;
  s.rhs = Expr::constant(1);
  s.schedule = ProgramBlock::interleavedSchedule(2, 0, {0, 0, 0});
  block.statements.push_back(s);
  block.validate();

  ParallelismPlan plan;
  plan.spaceLoops = {0};
  TileConfig tc;
  tc.subTile = {2, 2};
  tc.blockTile = {2};
  tc.threadTile = {1};
  SmemOptions smem;
  EXPECT_THROW(buildTiledKernel(block, plan, tc, smem), ApiError);
}

TEST(Errors, UnboundedPolytopeDies) {
  Polyhedron p(1, 0);
  p.addInequality({1, 0});  // x >= 0, no upper bound
  EXPECT_DEATH(p.paramBounds(0), "not a polytope");
}

TEST(Errors, InterpreterCatchesUnboundVariable) {
  ProgramBlock block;
  block.name = "ub";
  block.arrays = {{"A", {4}}, {"B", {4}}};
  CodeUnit unit;
  unit.source = &block;
  unit.root = AstNode::block();
  unit.root->addChild(AstNode::copy(1, {AffExpr::var("nowhere")}, 0, {AffExpr::constant(0)}));
  ArrayStore store(block.arrays);
  EXPECT_DEATH(executeCodeUnit(unit, {}, store), "unbound variable");
}

// ---- Polyhedral corner cases. ----

TEST(PolyCorners, EmptyDomainStatementIsHarmless) {
  ProgramBlock block;
  block.name = "empty";
  block.arrays = {{"A", {8}}, {"B", {8}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 5, 2);  // empty
  Access w{1, IntMat{{1, 0}}, true};
  Access r{0, IntMat{{1, 0}}, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(s);
  block.validate();

  ArrayStore a(block.arrays), b(block.arrays);
  executeReference(block, {}, a);
  EXPECT_EQ(ArrayStore::maxAbsDiff(a, b), 0.0);  // nothing executed
  auto deps = computeDependences(block);
  EXPECT_TRUE(deps.empty());
}

TEST(PolyCorners, InsertedVarsPreservePoints) {
  Polyhedron p(1, 1);
  p.addInequality({1, 0, 0});    // x >= 0
  p.addInequality({-1, 1, -1});  // x <= N-1
  Polyhedron q = p.withInsertedVars(0, 2);
  EXPECT_EQ(q.dim(), 3);
  // New leading vars are unconstrained; original constraints re-indexed.
  EXPECT_TRUE(q.contains({-100, 100, 0, 5}));
  EXPECT_TRUE(q.contains({0, 0, 4, 5}));
  EXPECT_FALSE(q.contains({0, 0, 5, 5}));
}

TEST(PolyCorners, ParamsAsVarsFeasibility) {
  // { x : 0 <= x <= N-1 } with N treated as variable: nonempty only with
  // N >= 1; feasibility over combined space holds.
  Polyhedron p(1, 1);
  p.addInequality({1, 0, 0});
  p.addInequality({-1, 1, -1});
  Polyhedron all = p.paramsAsVars();
  EXPECT_EQ(all.dim(), 2);
  EXPECT_EQ(all.nparam(), 0);
  EXPECT_FALSE(all.isEmpty());
}

TEST(PolyCorners, StridedBoundsWithDivisors) {
  // { (i, j) : i == 3j, 0 <= i <= 30 }: scanning j at level 1 uses
  // ceil/floor of i/3; count must be 11.
  Polyhedron p(2, 0);
  p.addEquality({1, -3, 0});
  p.addRange(0, 0, 30);
  EXPECT_EQ(countPoints(p, {}), 11);
  DimBounds b = p.loopBounds(1);
  // At i = 7 (not divisible), lower bound ceil(7/3)=3 > upper floor(7/3)=2.
  EXPECT_GT(b.evalLower({7}), b.evalUpper({7}));
  EXPECT_EQ(b.evalLower({9}), 3);
  EXPECT_EQ(b.evalUpper({9}), 3);
}

TEST(PolyCorners, NegativeCoordinateBoxes) {
  Polyhedron p(2, 0);
  p.addRange(0, -5, -2);
  p.addRange(1, -1, 3);
  EXPECT_EQ(countPoints(p, {}), 20);
  EXPECT_EQ(boundingBoxVolume(p, {}), 20);
  PolySet diff = setDifference(p, p);
  i64 total = 0;
  for (const Polyhedron& piece : diff) total += countPoints(piece, {});
  EXPECT_EQ(total, 0);
}

TEST(PolyCorners, IntersectionOfShiftedDiagonals) {
  // x + y == 10 and x - y == 2 -> single point (6, 4).
  Polyhedron a(2, 0), b(2, 0);
  a.addEquality({1, 1, -10});
  b.addEquality({1, -1, -2});
  Polyhedron inter = Polyhedron::intersect(a, b);
  EXPECT_TRUE(inter.contains({6, 4}));
  a.addRange(0, 0, 20);
  Polyhedron bounded = Polyhedron::intersect(a, b);
  EXPECT_EQ(countPoints(bounded, {}), 1);
}

// ---- Scratchpad framework edge cases. ----

TEST(SmemEdges, WriteOnlyArrayGetsMoveOutOnly) {
  // B[i] = 1: B written, never read.
  ProgramBlock block;
  block.name = "wonly";
  block.arrays = {{"B", {32}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 15);
  Access w{0, IntMat{{1, 0}}, true};
  s.accesses = {w};
  s.writeAccess = 0;
  s.rhs = Expr::constant(7);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(s);
  block.validate();

  SmemOptions o;
  o.onlyBeneficial = false;
  DataPlan plan;
  CodeUnit unit = buildScratchpadUnit(block, o, plan);
  ArrayStore store(block.arrays);
  MemTrace t = executeCodeUnit(unit, {}, store);
  EXPECT_EQ(t.globalReads, 0);    // nothing moved in
  EXPECT_EQ(t.globalWrites, 16);  // results moved out
  for (i64 i = 0; i < 16; ++i) EXPECT_EQ(store.get(0, {i}), 7.0);
}

TEST(SmemEdges, ScalarLikeAccessSizeOneBuffer) {
  // A[0] accumulated over a loop: buffer is 1 element; rank 0 < dim 1 so
  // order-of-magnitude reuse admits it.
  ProgramBlock block;
  block.name = "scalar";
  block.arrays = {{"A", {4}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 9);
  IntMat zero(1, 2);  // A[0]
  Access w{0, zero, true};
  Access r{0, zero, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::constant(1));
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(s);
  block.validate();

  SmemOptions o;
  DataPlan plan = analyzeBlock(block, o);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_TRUE(plan.partitions[0].orderReuse);
  EXPECT_EQ(plan.bufferFootprint(0, {}), 1);

  CodeUnit unit = buildScratchpadUnit(block, o);
  ArrayStore store(block.arrays);
  MemTrace t = executeCodeUnit(unit, {}, store);
  EXPECT_EQ(store.get(0, {0}), 10.0);
  EXPECT_EQ(t.globalReads, 1);
  EXPECT_EQ(t.globalWrites, 1);
  EXPECT_EQ(t.localReads + t.localWrites, 2 + 20);  // copies + 10x(read+write)
}

TEST(SmemEdges, MultiDimBufferWithMixedExtent) {
  // Access A[i][5]: dim-1 extent is 1; buffer is R x 1 (rank-deficient dims
  // kept as size-1, see DESIGN.md).
  ProgramBlock block;
  block.name = "col";
  block.arrays = {{"A", {16, 16}}, {"B", {16}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 11);
  IntMat colFn(2, 2);
  colFn.at(0, 0) = 1;  // row = i
  colFn.at(1, 1) = 5;  // col = 5
  Access w{1, IntMat{{1, 0}}, true};
  Access r{0, colFn, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(s);
  block.validate();

  SmemOptions o;
  o.onlyBeneficial = false;
  DataPlan plan = analyzeBlock(block, o);
  const PartitionPlan* pa = nullptr;
  for (const PartitionPlan& p : plan.partitions)
    if (p.arrayId == 0) pa = &p;
  ASSERT_NE(pa, nullptr);
  std::vector<std::pair<std::string, i64>> env;
  EXPECT_EQ(pa->sizeExpr[0].eval(env), 12);
  EXPECT_EQ(pa->sizeExpr[1].eval(env), 1);
  EXPECT_EQ(pa->offset[1].evalExact(env), 5);

  CodeUnit unit = buildScratchpadUnit(block, o);
  ArrayStore got(block.arrays), want(block.arrays);
  got.fillAllPattern(2);
  want.fillAllPattern(2);
  executeCodeUnit(unit, {}, got);
  executeReference(block, {}, want);
  EXPECT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0);
}

}  // namespace
}  // namespace emm
