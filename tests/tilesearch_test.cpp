// Tests for the Section-4.3 tile-size search: objective evaluation,
// constraint handling, solver vs exhaustive oracle agreement.
#include <gtest/gtest.h>

#include "kernels/blocks.h"
#include "tilesearch/tilesearch.h"

namespace emm {
namespace {

struct MeSetup {
  ProgramBlock block;
  ParallelismPlan plan;
  SmemOptions smem;
  TileSearchOptions opts;

  explicit MeSetup(i64 ni = 64, i64 nj = 64, i64 w = 8) {
    block = buildMeBlock(ni, nj, w);
    auto deps = computeDependences(block);
    plan = findParallelism(block, deps);
    smem.sampleParams = {ni, nj, w};
    opts.paramValues = {ni, nj, w};
    opts.memLimitElems = 2048;
    opts.innerProcs = 32;
    opts.syncCost = 32;
    opts.transferCost = 4;
  }
};

TEST(TileEval, FeasibleAndInfeasible) {
  MeSetup s;
  TileEvaluation ok = evaluateTileSizes(s.block, s.plan, {16, 16, 8, 8}, s.opts, s.smem);
  EXPECT_TRUE(ok.feasible) << ok.reason;
  EXPECT_GT(ok.cost, 0);
  EXPECT_LE(ok.footprint, s.opts.memLimitElems);

  // Footprint violation: huge tiles.
  TileEvaluation big = evaluateTileSizes(s.block, s.plan, {64, 64, 8, 8}, s.opts, s.smem);
  EXPECT_FALSE(big.feasible);
  EXPECT_NE(big.reason.find("footprint"), std::string::npos);

  // Inner-process violation: tile volume < P.
  TileEvaluation tiny = evaluateTileSizes(s.block, s.plan, {1, 1, 2, 2}, s.opts, s.smem);
  EXPECT_FALSE(tiny.feasible);
  EXPECT_NE(tiny.reason.find("process"), std::string::npos);

  // Range violation.
  TileEvaluation over = evaluateTileSizes(s.block, s.plan, {128, 16, 8, 8}, s.opts, s.smem);
  EXPECT_FALSE(over.feasible);
}

TEST(TileEval, HoistingLowersCost) {
  MeSetup s;
  TileSearchOptions noHoist = s.opts;
  noHoist.hoistCopies = false;
  TileEvaluation with = evaluateTileSizes(s.block, s.plan, {16, 16, 4, 4}, s.opts, s.smem);
  TileEvaluation without = evaluateTileSizes(s.block, s.plan, {16, 16, 4, 4}, noHoist, s.smem);
  ASSERT_TRUE(with.feasible);
  ASSERT_TRUE(without.feasible);
  // out's copies run once per (i,j) tile vs once per (i,j,k,l) tile.
  EXPECT_LT(with.cost, without.cost);
}

TEST(TileEval, LargerTilesFewerOccurrences) {
  MeSetup s;
  TileEvaluation small = evaluateTileSizes(s.block, s.plan, {8, 8, 8, 8}, s.opts, s.smem);
  TileEvaluation large = evaluateTileSizes(s.block, s.plan, {16, 16, 8, 8}, s.opts, s.smem);
  ASSERT_TRUE(small.feasible && large.feasible);
  i64 occSmall = 0, occLarge = 0;
  for (const auto& t : small.terms) occSmall += t.occurrences;
  for (const auto& t : large.terms) occLarge += t.occurrences;
  EXPECT_GT(occSmall, occLarge);
}

TEST(TileSearch, SolverMatchesOracleOnMe) {
  MeSetup s(32, 32, 8);
  s.opts.candidates = {{4, 8, 16, 32}, {4, 8, 16, 32}, {4, 8}, {4, 8}};
  TileSearchResult fast = searchTileSizes(s.block, s.plan, s.opts, s.smem);
  TileSearchResult oracle = exhaustiveTileSearch(s.block, s.plan, s.opts, s.smem);
  ASSERT_TRUE(fast.eval.feasible);
  ASSERT_TRUE(oracle.eval.feasible);
  EXPECT_DOUBLE_EQ(fast.eval.cost, oracle.eval.cost)
      << "fast " << fast.subTile[0] << "," << fast.subTile[1] << "," << fast.subTile[2] << ","
      << fast.subTile[3];
  EXPECT_LT(fast.evaluations, oracle.evaluations);
}

TEST(TileSearch, RespectsMemoryLimit) {
  MeSetup s(64, 64, 8);
  s.opts.memLimitElems = 512;  // tight
  TileSearchResult r = searchTileSizes(s.block, s.plan, s.opts, s.smem);
  ASSERT_TRUE(r.eval.feasible) << r.eval.reason;
  EXPECT_LE(r.eval.footprint, 512);
}

TEST(TileSearch, TightMemoryForcesSmallerTiles) {
  MeSetup loose(64, 64, 8);
  MeSetup tight(64, 64, 8);
  tight.opts.memLimitElems = 512;
  loose.opts.memLimitElems = 8192;
  TileSearchResult rl = searchTileSizes(loose.block, loose.plan, loose.opts, loose.smem);
  TileSearchResult rt = searchTileSizes(tight.block, tight.plan, tight.opts, tight.smem);
  ASSERT_TRUE(rl.eval.feasible && rt.eval.feasible);
  EXPECT_LE(rt.eval.footprint, 512);
  // Looser memory never yields higher cost.
  EXPECT_LE(rl.eval.cost, rt.eval.cost);
}

TEST(TileSearch, MatmulOracleAgreement) {
  ProgramBlock block = buildMatmulBlock(32, 32, 32);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  SmemOptions smem;
  smem.sampleParams = {32, 32, 32};
  TileSearchOptions opts;
  opts.paramValues = {32, 32, 32};
  opts.memLimitElems = 1024;
  opts.innerProcs = 16;
  opts.candidates = {{4, 8, 16}, {4, 8, 16}, {4, 8, 16}};
  TileSearchResult fast = searchTileSizes(block, plan, opts, smem);
  TileSearchResult oracle = exhaustiveTileSearch(block, plan, opts, smem);
  ASSERT_TRUE(oracle.eval.feasible);
  ASSERT_TRUE(fast.eval.feasible);
  EXPECT_DOUBLE_EQ(fast.eval.cost, oracle.eval.cost);
}

class SyncCostSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyncCostSweep, HigherSyncCostPushesTowardLargerTiles) {
  // As S grows, the P*S term dominates and fewer, larger copies win; the
  // optimal cost must be monotone in S and the chosen occurrence count
  // non-increasing.
  MeSetup cheap(32, 32, 8);
  MeSetup dear(32, 32, 8);
  cheap.opts.syncCost = 1;
  dear.opts.syncCost = GetParam();
  cheap.opts.candidates = dear.opts.candidates = {{4, 8, 16, 32}, {4, 8, 16, 32}, {8}, {8}};
  TileSearchResult rc = exhaustiveTileSearch(cheap.block, cheap.plan, cheap.opts, cheap.smem);
  TileSearchResult rd = exhaustiveTileSearch(dear.block, dear.plan, dear.opts, dear.smem);
  ASSERT_TRUE(rc.eval.feasible && rd.eval.feasible);
  i64 occCheap = 0, occDear = 0;
  for (const auto& t : rc.eval.terms) occCheap += t.occurrences;
  for (const auto& t : rd.eval.terms) occDear += t.occurrences;
  EXPECT_LE(occDear, occCheap);
  EXPECT_LE(rc.eval.cost, rd.eval.cost);
}

INSTANTIATE_TEST_SUITE_P(Costs, SyncCostSweep, ::testing::Values(8.0, 64.0, 512.0));

}  // namespace
}  // namespace emm
