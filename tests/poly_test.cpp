// Tests for the polyhedral library: Fourier-Motzkin projection, images,
// intersection/difference, emptiness, parametric bounds, enumeration.
#include <gtest/gtest.h>

#include <set>

#include "poly/enumerate.h"
#include "poly/polyhedron.h"

namespace emm {
namespace {

/// 1-D box lo <= x <= hi with no parameters.
Polyhedron box1(i64 lo, i64 hi) {
  Polyhedron p(1, 0);
  p.addRange(0, lo, hi);
  return p;
}

/// 2-D box with no parameters.
Polyhedron box2(i64 lo0, i64 hi0, i64 lo1, i64 hi1) {
  Polyhedron p(2, 0);
  p.addRange(0, lo0, hi0);
  p.addRange(1, lo1, hi1);
  return p;
}

TEST(Polyhedron, ContainsPoint) {
  Polyhedron p = box2(0, 4, 2, 6);
  EXPECT_TRUE(p.contains({0, 2}));
  EXPECT_TRUE(p.contains({4, 6}));
  EXPECT_FALSE(p.contains({5, 2}));
  EXPECT_FALSE(p.contains({0, 1}));
}

TEST(Polyhedron, SimplifyDetectsContradiction) {
  Polyhedron p = box1(5, 3);  // empty
  EXPECT_TRUE(p.isEmpty());
}

TEST(Polyhedron, SimplifyGcdEquality) {
  // 2x == 5 has no integer solution.
  Polyhedron p(1, 0);
  p.addEquality({2, -5});
  EXPECT_TRUE(p.isEmpty());
  // 2x == 6 does.
  Polyhedron q(1, 0);
  q.addEquality({2, -6});
  EXPECT_FALSE(q.isEmpty());
  EXPECT_TRUE(q.contains({3}));
}

TEST(Polyhedron, EliminateVariable) {
  // { (x, y) : 0<=x<=3, x<=y<=x+2 } projected onto x is [0,3].
  Polyhedron p(2, 0);
  p.addRange(0, 0, 3);
  IntVec lo{-1, 1, 0};  // y - x >= 0
  p.addInequality(lo);
  IntVec hi{1, -1, 2};  // x + 2 - y >= 0
  p.addInequality(hi);
  Polyhedron proj = p.eliminated(1);
  EXPECT_EQ(proj.dim(), 1);
  EXPECT_TRUE(proj.contains({0}));
  EXPECT_TRUE(proj.contains({3}));
  EXPECT_FALSE(proj.contains({4}));
}

TEST(Polyhedron, EliminateViaEquality) {
  // { (x, y) : y == 2x + 1, 0 <= x <= 4 } projected onto y: odd y in [1,9].
  Polyhedron p(2, 0);
  p.addEquality({2, -1, 1});  // 2x - y + 1 == 0
  p.addRange(0, 0, 4);
  Polyhedron proj = p.eliminated(0);
  EXPECT_EQ(proj.dim(), 1);
  // Rational projection gives [1,9]; integrality of odd y shows up in
  // bounds rounding during scanning, so count the actual points.
  EXPECT_EQ(countPoints(proj, {}), 9);  // projection is the rational shadow
}

TEST(Polyhedron, ImageShift) {
  // x in [0,9]; y = x + 5 -> y in [5,14].
  Polyhedron p = box1(0, 9);
  IntMat f{{1, 5}};
  Polyhedron img = p.image(f);
  EXPECT_EQ(img.dim(), 1);
  EXPECT_EQ(countPoints(img, {}), 10);
  EXPECT_TRUE(img.contains({5}));
  EXPECT_TRUE(img.contains({14}));
  EXPECT_FALSE(img.contains({4}));
}

TEST(Polyhedron, ImageProjection2DTo1D) {
  // (i,j) in [0,3]x[0,5]; y = i -> [0,3].
  Polyhedron p = box2(0, 3, 0, 5);
  IntMat f{{1, 0, 0}};
  Polyhedron img = p.image(f);
  EXPECT_EQ(countPoints(img, {}), 4);
}

TEST(Polyhedron, ImageSkewed) {
  // (i,j) in [0,2]x[0,2]; y = i + j -> [0,4] (all integers reachable).
  Polyhedron p = box2(0, 2, 0, 2);
  IntMat f{{1, 1, 0}};
  EXPECT_EQ(countPoints(p.image(f), {}), 5);
}

TEST(Polyhedron, ImageWithParams) {
  // x in [0, N-1]; y = x + N -> [N, 2N-1]; with N=4: 4..7.
  Polyhedron p(1, 1);
  IntVec lo{1, 0, 0};
  p.addInequality(lo);  // x >= 0
  IntVec hi{-1, 1, -1};
  p.addInequality(hi);  // N - 1 - x >= 0
  IntMat f{{1, 1, 0}};  // y = x + N
  Polyhedron img = p.image(f);
  EXPECT_EQ(countPoints(img, {4}), 4);
  EXPECT_TRUE(img.contains({4, 4}));
  EXPECT_TRUE(img.contains({7, 4}));
  EXPECT_FALSE(img.contains({8, 4}));
}

TEST(Polyhedron, Preimage) {
  // Target: y in [10, 19]; map y = 2z -> z in [5, 9] (integral halves).
  Polyhedron target = box1(10, 19);
  IntMat f{{2, 0}};  // y = 2z, over [z, 1]
  Polyhedron pre = target.preimage(f, 1);
  EXPECT_EQ(countPoints(pre, {}), 5);
  EXPECT_TRUE(pre.contains({5}));
  EXPECT_TRUE(pre.contains({9}));
  EXPECT_FALSE(pre.contains({10}));
}

TEST(Polyhedron, IntersectAndOverlap) {
  Polyhedron a = box1(0, 10);
  Polyhedron b = box1(8, 20);
  EXPECT_TRUE(overlaps(a, b));
  EXPECT_EQ(countPoints(Polyhedron::intersect(a, b), {}), 3);
  Polyhedron c = box1(11, 20);
  EXPECT_FALSE(overlaps(a, c));
}

TEST(Polyhedron, EmptinessWithParams) {
  // { x : 0 <= x <= N-1, x >= N } is empty for all N.
  Polyhedron p(1, 1);
  p.addInequality({1, 0, 0});    // x >= 0
  p.addInequality({-1, 1, -1});  // x <= N-1
  p.addInequality({1, -1, 0});   // x >= N
  EXPECT_TRUE(p.isEmpty());
}

TEST(Polyhedron, ParamBounds) {
  // x in [N+1, 3N+4]; bounds as functions of N.
  Polyhedron p(1, 1);
  p.addInequality({1, -1, -1});   // x - N - 1 >= 0
  p.addInequality({-1, 3, 4});    // 3N + 4 - x >= 0
  DimBounds b = p.paramBounds(0);
  EXPECT_EQ(b.evalLower({10}), 11);
  EXPECT_EQ(b.evalUpper({10}), 34);
}

TEST(Polyhedron, LoopBoundsTriangular) {
  // { (i,j) : 0<=i<=9, 0<=j<=i }: bounds of j depend on i.
  Polyhedron p(2, 0);
  p.addRange(0, 0, 9);
  p.addInequality({0, 1, 0});   // j >= 0
  p.addInequality({1, -1, 0});  // i - j >= 0
  DimBounds b = p.loopBounds(1);
  EXPECT_EQ(b.evalLower({5}), 0);
  EXPECT_EQ(b.evalUpper({5}), 5);
  EXPECT_EQ(countPoints(p, {}), 55);
}

TEST(SetOps, DifferenceSplitsCorrectly) {
  Polyhedron a = box1(0, 9);
  Polyhedron b = box1(3, 5);
  PolySet diff = setDifference(a, b);
  i64 total = 0;
  for (const Polyhedron& piece : diff) total += countPoints(piece, {});
  EXPECT_EQ(total, 7);
  // Pieces are disjoint from b.
  for (const Polyhedron& piece : diff) EXPECT_FALSE(overlaps(piece, b));
}

TEST(SetOps, DifferenceEmptyResult) {
  EXPECT_TRUE(setDifference(box1(3, 5), box1(0, 9)).empty());
}

TEST(SetOps, MakeDisjointPreservesUnion) {
  PolySet pieces{box1(0, 10), box1(5, 15), box1(12, 20)};
  PolySet disjoint = makeDisjoint(pieces);
  i64 total = 0;
  for (const Polyhedron& piece : disjoint) total += countPoints(piece, {});
  EXPECT_EQ(total, 21);  // 0..20
  for (size_t i = 0; i < disjoint.size(); ++i)
    for (size_t j = i + 1; j < disjoint.size(); ++j)
      EXPECT_FALSE(overlaps(disjoint[i], disjoint[j]));
}

TEST(SetOps, OverlapComponents) {
  PolySet sets{box1(0, 5), box1(4, 9), box1(20, 25), box1(24, 30), box1(100, 101)};
  auto comps = overlapComponents(sets);
  ASSERT_EQ(comps.size(), 3u);
  std::multiset<size_t> sizes;
  for (const auto& c : comps) sizes.insert(c.size());
  EXPECT_EQ(sizes, (std::multiset<size_t>{1, 2, 2}));
}

TEST(Enumerate, VisitsLexicographically) {
  Polyhedron p = box2(0, 1, 0, 1);
  std::vector<IntVec> pts;
  forEachPoint(p, {}, [&](const IntVec& v) { pts.push_back(v); });
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (IntVec{0, 0}));
  EXPECT_EQ(pts[3], (IntVec{1, 1}));
  EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
}

TEST(Enumerate, CountWithCap) {
  Polyhedron p = box1(0, 999);
  EXPECT_EQ(countPoints(p, {}, 10), 10);
  EXPECT_EQ(countPoints(p, {}), 1000);
}

TEST(Enumerate, CountUnionDeduplicates) {
  PolySet sets{box1(0, 9), box1(5, 14)};
  EXPECT_EQ(countUnion(sets, {}), 15);
}

TEST(Enumerate, BoundingBoxVolume) {
  Polyhedron p = box2(2, 5, 10, 12);
  EXPECT_EQ(boundingBoxVolume(p, {}), 12);  // 4 * 3
  EXPECT_EQ(boundingBoxVolume(box1(5, 3), {}), 0);
}

TEST(Enumerate, DiagonalSliceIntegrality) {
  // { (i,j) : 2j == i, 0 <= i <= 10 } has 6 points.
  Polyhedron p(2, 0);
  p.addEquality({1, -2, 0});
  p.addRange(0, 0, 10);
  EXPECT_EQ(countPoints(p, {}), 6);
}

// ---- Property suite: images and projections against brute force. ----

struct ImageCase {
  i64 lo0, hi0, lo1, hi1;  // domain box
  i64 a, b, c, d;          // map rows: y0 = a*i + b*j, y1 = c*i + d*j
};

class ImageProperty : public ::testing::TestWithParam<ImageCase> {};

TEST_P(ImageProperty, ImageMatchesBruteForce) {
  const ImageCase& t = GetParam();
  Polyhedron dom = box2(t.lo0, t.hi0, t.lo1, t.hi1);
  IntMat f{{t.a, t.b, 0}, {t.c, t.d, 0}};
  Polyhedron img = dom.image(f);

  std::set<IntVec> expected;
  for (i64 i = t.lo0; i <= t.hi0; ++i)
    for (i64 j = t.lo1; j <= t.hi1; ++j)
      expected.insert({t.a * i + t.b * j, t.c * i + t.d * j});

  std::set<IntVec> actual;
  forEachPoint(img, {}, [&](const IntVec& v) { actual.insert(v); });
  // The image polyhedron is the rational shadow: it may strictly contain
  // the integer image only when the map is non-surjective on the lattice;
  // for these unimodular-ish cases equality must hold.
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Maps, ImageProperty,
    ::testing::Values(ImageCase{0, 4, 0, 4, 1, 0, 0, 1},    // identity
                      ImageCase{0, 4, 0, 4, 1, 1, 0, 1},    // shear
                      ImageCase{-2, 2, -2, 2, 1, 1, 1, 0},  // swapizer
                      ImageCase{0, 3, 0, 5, 1, 0, 1, 1},    // skew other way
                      ImageCase{2, 6, 1, 3, 1, -1, 0, 1}));

class ProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionProperty, ProjectionOfSimplexCountsMatchBruteForce) {
  int n = GetParam();
  // { (i, j) : 0 <= i, 0 <= j, i + j <= n } projected to i = [0, n].
  Polyhedron p(2, 0);
  p.addInequality({1, 0, 0});
  p.addInequality({0, 1, 0});
  p.addInequality({-1, -1, n});
  EXPECT_EQ(countPoints(p, {}), (static_cast<i64>(n) + 1) * (n + 2) / 2);
  Polyhedron proj = p.eliminated(1);
  EXPECT_EQ(countPoints(proj, {}), n + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProjectionProperty, ::testing::Values(0, 1, 2, 5, 13));

}  // namespace
}  // namespace emm
