// End-to-end kernel tests: the full ME compiler pipeline, the Jacobi
// concurrent-start mapped kernel, and the analytic counter models the
// benchmarks rely on (validated against executed counts).
#include <gtest/gtest.h>

#include <cmath>

#include "ir/interp.h"
#include "kernels/jacobi_mapped.h"
#include "kernels/me_pipeline.h"

namespace emm {
namespace {

// ---- ME pipeline. ----

MeConfig smallMe() {
  MeConfig c;
  c.ni = 16;
  c.nj = 8;
  c.w = 4;
  c.numBlocks = 4;
  c.numThreads = 32;
  c.subTile = {4, 4, 4, 4};
  return c;
}

TEST(MePipeline, EndToEndSemantics) {
  MeConfig c = smallMe();
  MePipeline p = buildMePipeline(c);

  ArrayStore got(p.block.arrays);
  got.fillAllPattern(31);
  std::vector<double> cur = got.raw(0), ref = got.raw(1), out = got.raw(2);
  IntVec ext = p.paramValues;
  ext.resize(p.kernel.analysis.tileBlock->paramNames.size(), 0);
  executeCodeUnit(p.kernel.unit, ext, got);
  referenceMe(cur, ref, out, c.ni, c.nj, c.w);
  for (i64 i = 0; i < c.ni; ++i)
    for (i64 j = 0; j < c.nj; ++j)
      ASSERT_NEAR(got.get(2, {i, j}), out[i * c.nj + j], 1e-9) << i << "," << j;
}

TEST(MePipeline, TransformFindsSpaceLoops) {
  MePipeline p = buildMePipeline(smallMe());
  EXPECT_EQ(p.transform.plan.spaceLoops, (std::vector<int>{0, 1}));
  EXPECT_FALSE(p.transform.plan.needsInterBlockSync);
}

TEST(MePipeline, ModelMatchesInterpreterWithScratchpad) {
  MeConfig c = smallMe();
  MePipeline p = buildMePipeline(c);
  KernelModel m = modelMe(c);

  ArrayStore store(p.block.arrays);
  IntVec ext = p.paramValues;
  ext.resize(p.kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace t = executeCodeUnit(p.kernel.unit, ext, store);

  i64 blocks = p.kernel.numBlockTiles(p.paramValues);
  EXPECT_EQ(blocks, c.numBlocks);
  // Analytic per-block counters * blocks == interpreted totals.
  EXPECT_EQ(m.perBlock.globalElems * blocks, t.globalReads + t.globalWrites);
  EXPECT_EQ(m.perBlock.smemElems * blocks, t.localReads + t.localWrites);
  EXPECT_EQ(m.perBlock.intraSyncs * blocks, t.syncs);
  // Scratchpad footprint matches the model's smem bytes.
  EXPECT_EQ(m.launch.smemBytesPerBlock, 4 * p.kernel.footprintPerBlock(p.paramValues));
}

TEST(MePipeline, ModelMatchesInterpreterWithoutScratchpad) {
  MeConfig c = smallMe();
  c.useScratchpad = false;
  MePipeline p = buildMePipeline(c);
  KernelModel m = modelMe(c);
  ArrayStore store(p.block.arrays);
  IntVec ext = p.paramValues;
  ext.resize(p.kernel.analysis.tileBlock->paramNames.size(), 0);
  MemTrace t = executeCodeUnit(p.kernel.unit, ext, store);
  i64 blocks = p.kernel.numBlockTiles(p.paramValues);
  EXPECT_EQ(m.perBlock.globalElems * blocks, t.globalReads + t.globalWrites);
  EXPECT_EQ(t.localReads + t.localWrites, 0);
}

TEST(MePipeline, ScratchpadCutsGlobalTraffic) {
  MeConfig c = smallMe();
  KernelModel with = modelMe(c);
  c.useScratchpad = false;
  KernelModel without = modelMe(c);
  // At w=4 the per-element reuse factor is ~8; at the paper's w=16 it is
  // far larger (checked below).
  EXPECT_LT(with.perBlock.globalElems * 4, without.perBlock.globalElems);

  MeConfig paper;  // defaults: w=16, tiles {32,16,16,16}
  KernelModel pw = modelMe(paper);
  paper.useScratchpad = false;
  KernelModel pwo = modelMe(paper);
  EXPECT_LT(pw.perBlock.globalElems * 30, pwo.perBlock.globalElems);
}

// ---- Jacobi mapped kernel. ----

JacobiConfig smallJacobi() {
  JacobiConfig c;
  c.n = 200;
  c.timeSteps = 40;
  c.timeTile = 8;
  c.spaceTile = 32;
  c.numBlocks = 4;
  c.numThreads = 16;
  return c;
}

TEST(JacobiMapped, MatchesReference) {
  JacobiConfig c = smallJacobi();
  std::vector<double> a(c.n), b(c.n), ar(c.n), br(c.n);
  for (i64 i = 0; i < c.n; ++i) a[i] = ar[i] = std::sin(static_cast<double>(i)) * 100;
  runJacobiMapped(c, a, b);
  referenceJacobi(ar, br, c.n, c.timeSteps);
  for (i64 i = 0; i < c.n; ++i) ASSERT_NEAR(a[i], ar[i], 1e-9) << "i=" << i;
}

TEST(JacobiMapped, GlobalVariantMatchesReference) {
  JacobiConfig c = smallJacobi();
  c.useScratchpad = false;
  std::vector<double> a(c.n), b(c.n), ar(c.n), br(c.n);
  for (i64 i = 0; i < c.n; ++i) a[i] = ar[i] = std::cos(static_cast<double>(i)) * 50;
  runJacobiMapped(c, a, b);
  referenceJacobi(ar, br, c.n, c.timeSteps);
  for (i64 i = 0; i < c.n; ++i) ASSERT_NEAR(a[i], ar[i], 1e-9);
}

TEST(JacobiMapped, ModelMatchesExecution) {
  JacobiConfig c = smallJacobi();
  std::vector<double> a(c.n, 1.0), b(c.n, 0.0);
  JacobiCounters run = runJacobiMapped(c, a, b);
  JacobiCounters model = modelJacobi(c);
  EXPECT_EQ(run.globalElems, model.globalElems);
  EXPECT_EQ(run.smemElems, model.smemElems);
  EXPECT_EQ(run.computeOps, model.computeOps);
  EXPECT_EQ(run.interBlockSyncs, model.interBlockSyncs);
  EXPECT_EQ(run.intraSyncs, model.intraSyncs);
}

TEST(JacobiMapped, ModelMatchesExecutionGlobalVariant) {
  JacobiConfig c = smallJacobi();
  c.useScratchpad = false;
  std::vector<double> a(c.n, 1.0), b(c.n, 0.0);
  JacobiCounters run = runJacobiMapped(c, a, b);
  JacobiCounters model = modelJacobi(c);
  EXPECT_EQ(run.globalElems, model.globalElems);
  EXPECT_EQ(run.interBlockSyncs, model.interBlockSyncs);
}

TEST(JacobiMapped, ScratchpadCutsGlobalTrafficAndSyncs) {
  JacobiConfig c = smallJacobi();
  JacobiCounters with = modelJacobi(c);
  c.useScratchpad = false;
  JacobiCounters without = modelJacobi(c);
  EXPECT_LT(with.globalElems * 3, without.globalElems);
  EXPECT_EQ(without.interBlockSyncs, c.timeSteps);
  EXPECT_EQ(with.interBlockSyncs, (c.timeSteps + c.timeTile - 1) / c.timeTile);
}

TEST(JacobiMapped, FootprintTracksTiles) {
  JacobiConfig c = smallJacobi();
  JacobiCounters m = modelJacobi(c);
  EXPECT_EQ(m.maxSmemElemsPerBlock, 2 * (c.spaceTile + 2 * c.timeTile + 2));
}

class JacobiShapeSweep
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64>> {};

TEST_P(JacobiShapeSweep, AlwaysMatchesReference) {
  auto [n, t, tt] = GetParam();
  JacobiConfig c;
  c.n = n;
  c.timeSteps = t;
  c.timeTile = tt;
  c.spaceTile = 16;
  std::vector<double> a(c.n), b(c.n), ar(c.n), br(c.n);
  for (i64 i = 0; i < c.n; ++i) a[i] = ar[i] = static_cast<double>((i * 37) % 100);
  runJacobiMapped(c, a, b);
  referenceJacobi(ar, br, c.n, c.timeSteps);
  for (i64 i = 0; i < c.n; ++i) ASSERT_NEAR(a[i], ar[i], 1e-9) << "n=" << n << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JacobiShapeSweep,
    ::testing::Values(std::tuple<i64, i64, i64>{64, 10, 3},   // ragged tiles
                      std::tuple<i64, i64, i64>{100, 17, 8},  // partial last band
                      std::tuple<i64, i64, i64>{33, 5, 5},    // tiny
                      std::tuple<i64, i64, i64>{256, 32, 16}));

}  // namespace
}  // namespace emm
