// Tests for the on-disk plan cache: tiering through the Compiler (memory
// hit -> disk hit -> cold compile, with promotion), durability across
// Compiler instances (the cross-process scenario), and the failure policy —
// truncation, flipped magic bytes, stale format versions, and key
// collisions with differing options must all fall back to a clean cold
// compile, never crash or replay a wrong plan. Also covers LRU eviction
// under the byte cap and the PlanCache stats-snapshot coherence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "driver/compiler.h"
#include "driver/disk_cache.h"
#include "driver/plan_cache.h"
#include "kernels/blocks.h"
#include "support/fingerprint.h"
#include "support/serialize.h"

namespace fs = std::filesystem;

namespace emm {
namespace {

/// Fresh unique cache directory per test, removed on destruction.
struct TempCacheDir {
  fs::path path;
  TempCacheDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("emmplan_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Compiler meCompiler() {
  Compiler c(buildMeBlock(64, 64, 8));
  c.parameters({64, 64, 8}).memoryLimitBytes(16 * 1024);
  return c;
}

/// The single .emmplan entry in `dir` (asserts there is exactly one).
fs::path soleEntry(const fs::path& dir) {
  fs::path found;
  int count = 0;
  for (const fs::directory_entry& de : fs::directory_iterator(dir))
    if (de.path().extension() == ".emmplan") {
      found = de.path();
      ++count;
    }
  EXPECT_EQ(count, 1);
  return found;
}

void corruptFile(const fs::path& path, size_t offset, unsigned char xorMask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(offset));
  byte = static_cast<char>(byte ^ xorMask);
  f.write(&byte, 1);
}

// ---- Tiering. ----

TEST(DiskCache, SecondCompilerInstanceStartsWarm) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());

  Compiler first = meCompiler();
  first.diskCache(&disk);
  CompileResult cold = first.compile();
  ASSERT_TRUE(cold.ok) << cold.firstError();
  EXPECT_FALSE(cold.diskHit);
  EXPECT_EQ(disk.stats().insertions, 1);

  // A brand-new Compiler (standing in for a new process) replays the plan.
  Compiler second = meCompiler();
  second.diskCache(&disk);
  CompileResult warm = second.compile();
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.diskHit);
  EXPECT_FALSE(warm.cacheHit);
  EXPECT_EQ(warm.artifact, cold.artifact);
  EXPECT_EQ(warm.search.subTile, cold.search.subTile);
  EXPECT_EQ(warm.search.eval.cost, cold.search.eval.cost);
  EXPECT_EQ(disk.stats().hits, 1);
}

TEST(DiskCache, CompilerOwnsCacheCreatedFromPath) {
  TempCacheDir dir;
  Compiler c = meCompiler();
  c.diskCache(dir.str());
  ASSERT_NE(c.diskPlanCache(), nullptr);
  EXPECT_EQ(c.diskPlanCache()->directory(), dir.str());
  ASSERT_TRUE(c.compile().ok);
  EXPECT_TRUE(c.compile().diskHit);  // no memory tier attached
}

TEST(DiskCache, MemoryTierWinsOverDiskTier) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  PlanCache memory;
  Compiler c = meCompiler();
  c.cache(&memory).diskCache(&disk);

  CompileResult cold = c.compile();
  ASSERT_TRUE(cold.ok);
  CompileResult warm = c.compile();
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_FALSE(warm.diskHit);        // served from memory, disk untouched
  EXPECT_EQ(disk.stats().hits, 0);
}

TEST(DiskCache, DiskHitIsPromotedIntoTheMemoryTier) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  {
    Compiler seed = meCompiler();
    seed.diskCache(&disk);
    ASSERT_TRUE(seed.compile().ok);
  }
  PlanCache memory;
  Compiler c = meCompiler();
  c.cache(&memory).diskCache(&disk);

  CompileResult viaDisk = c.compile();
  EXPECT_TRUE(viaDisk.diskHit);
  EXPECT_EQ(memory.size(), 1u);  // promoted

  CompileResult viaMemory = c.compile();
  EXPECT_TRUE(viaMemory.cacheHit);
  EXPECT_FALSE(viaMemory.diskHit);
  EXPECT_EQ(disk.stats().hits, 1);  // disk consulted exactly once
  EXPECT_EQ(viaMemory.artifact, viaDisk.artifact);
}

TEST(DiskCache, DistinctOptionsGetDistinctEntries) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler a = meCompiler();
  a.diskCache(&disk);
  ASSERT_TRUE(a.compile().ok);

  Compiler b = meCompiler();
  b.memoryLimitBytes(8 * 1024).diskCache(&disk);
  CompileResult r = b.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.diskHit);  // different options hash -> different entry
  EXPECT_EQ(disk.stats().entries, 2);
}

TEST(DiskCache, FailedCompilesAreNotStored) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler c(buildMeBlock(64, 64, 8));
  c.parameters({64, 64, 8}).memoryLimitBytes(1).diskCache(&disk);  // infeasible
  CompileResult r = c.compile();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(disk.stats().entries, 0);
  EXPECT_EQ(disk.stats().insertions, 0);
}

// ---- Failure policy: corruption and version skew. ----

TEST(DiskCache, TruncatedEntryFallsBackToColdCompile) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler seed = meCompiler();
  seed.diskCache(&disk);
  CompileResult cold = seed.compile();
  ASSERT_TRUE(cold.ok);

  fs::path entry = soleEntry(dir.path);
  fs::resize_file(entry, fs::file_size(entry) / 2);

  Compiler c = meCompiler();
  c.diskCache(&disk);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.diskHit);
  EXPECT_EQ(r.artifact, cold.artifact);
  EXPECT_GE(disk.stats().rejects, 1);
}

TEST(DiskCache, FlippedMagicByteIsRejectedAndUnlinked) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler seed = meCompiler();
  seed.diskCache(&disk);
  CompileResult cold = seed.compile();
  ASSERT_TRUE(cold.ok);

  fs::path entry = soleEntry(dir.path);
  corruptFile(entry, 0, 0xFF);

  Compiler c = meCompiler();
  c.diskCache(&disk);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.diskHit);
  EXPECT_EQ(disk.stats().rejects, 1);
  // The bad per-size entry is unlinked; the request is served by binding
  // the on-disk family record (v4 embeds the size-generic artifact), so no
  // replacement .emmplan is written — the record already covers this size.
  EXPECT_EQ(disk.stats().entries, 0);
  EXPECT_TRUE(r.familyHit);
  EXPECT_TRUE(r.artifactBound);
  EXPECT_EQ(r.artifact, cold.artifact);
  EXPECT_TRUE(c.compile().familyHit);
}

TEST(DiskCache, FamilyRecordServesSizesWithNoPerSizeEntry) {
  // A fresh compiler with ONLY the .emmfam record on disk (every per-size
  // .emmplan removed) still answers in-envelope sizes byte-identically, by
  // deserializing the size-generic record and binding it — no pipeline run.
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler seed = meCompiler();
  seed.diskCache(&disk);
  CompileResult cold = seed.compile();
  ASSERT_TRUE(cold.ok);
  ASSERT_GE(disk.stats().familyEntries, 1);

  fs::remove(soleEntry(dir.path));

  Compiler c = meCompiler();
  c.diskCache(&disk);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.familyHit);
  EXPECT_TRUE(r.artifactBound);
  EXPECT_FALSE(r.diskHit);
  EXPECT_EQ(r.artifact, cold.artifact);
  EXPECT_EQ(r.search.subTile, cold.search.subTile);
  EXPECT_FALSE(r.boundArgs.empty());
  // Still no per-size entry: the record covers the whole envelope.
  EXPECT_EQ(disk.stats().entries, 0);
}

TEST(DiskCache, StaleFormatVersionIsRejected) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler seed = meCompiler();
  seed.diskCache(&disk);
  ASSERT_TRUE(seed.compile().ok);

  // Byte 8 is the low byte of the little-endian u32 format version.
  corruptFile(soleEntry(dir.path), 8, 0x7F);

  Compiler c = meCompiler();
  c.diskCache(&disk);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.diskHit);
  EXPECT_GE(disk.stats().rejects, 1);
}

TEST(DiskCache, SchemaFingerprintDriftIsRejected) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler seed = meCompiler();
  seed.diskCache(&disk);
  ASSERT_TRUE(seed.compile().ok);

  // Bytes 12..19 hold the schema fingerprint.
  corruptFile(soleEntry(dir.path), 12, 0x01);

  Compiler c = meCompiler();
  c.diskCache(&disk);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.diskHit);
  EXPECT_GE(disk.stats().rejects, 1);
}

TEST(DiskCache, PayloadBitFlipFailsTheChecksum) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());
  Compiler seed = meCompiler();
  seed.diskCache(&disk);
  ASSERT_TRUE(seed.compile().ok);

  fs::path entry = soleEntry(dir.path);
  corruptFile(entry, fs::file_size(entry) / 2, 0x10);  // middle of the payload

  Compiler c = meCompiler();
  c.diskCache(&disk);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.diskHit);
  EXPECT_GE(disk.stats().rejects, 1);
}

TEST(DiskCache, KeyCollisionWithDifferingOptionsIsAMissNotAWrongPlan) {
  TempCacheDir dir;
  DiskPlanCache disk(dir.str());

  // Seed an entry compiled with options A.
  Compiler a = meCompiler();
  a.diskCache(&disk);
  CompileResult ra = a.compile();
  ASSERT_TRUE(ra.ok);
  fs::path entryA = soleEntry(dir.path);

  // Forge a 64-bit name collision: copy A's file to the entry name that
  // options B (different memory limit -> different key) would look up.
  Compiler b = meCompiler();
  b.memoryLimitBytes(8 * 1024);
  PlanKey keyB;
  keyB.block = hashProgramBlock(buildMeBlock(64, 64, 8));
  {
    CompileOptions optsB = b.opts();
    keyB.options = hashCompileOptions(optsB);
    Hasher h;
    h.mix(std::vector<std::string>{});  // no skipped passes
    keyB.passes = h.digest();
  }
  fs::copy_file(entryA, dir.path / DiskPlanCache::entryFileName(keyB));

  // B must detect the key-echo mismatch, reject, and cold-compile: its
  // tile choice under the tighter budget differs from A's cached one.
  b.diskCache(&disk);
  CompileResult rb = b.compile();
  ASSERT_TRUE(rb.ok);
  EXPECT_FALSE(rb.diskHit);
  EXPECT_GE(disk.stats().rejects, 1);
  EXPECT_LE(rb.search.eval.footprint, 8 * 1024 / 4);  // B's own plan, not A's
}

TEST(DiskCache, OrphanedTempFilesAreSweptOnOpen) {
  TempCacheDir dir;
  fs::create_directories(dir.path);
  const fs::path orphan = dir.path / "deadbeef.emmplan.tmp.123.0";
  std::ofstream(orphan) << "half-written by a crashed process";
  ASSERT_TRUE(fs::exists(orphan));
  DiskPlanCache disk(dir.str());
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_EQ(disk.stats().entries, 0);
}

TEST(DiskCache, ZeroLengthEntriesAreSweptOnOpenAndIgnoredByStats) {
  TempCacheDir dir;
  fs::create_directories(dir.path);
  // A crash after rename but before the data blocks hit disk leaves a
  // zero-length entry; it can never decode, so the constructor reaps it.
  const fs::path empty = dir.path / "00000000deadbeef.emmplan";
  const fs::path emptyFam = dir.path / "00000000deadbeef.emmfam";
  std::ofstream(empty).flush();
  std::ofstream(emptyFam).flush();
  ASSERT_TRUE(fs::exists(empty));
  {
    DiskPlanCache disk(dir.str());
    EXPECT_FALSE(fs::exists(empty));
    EXPECT_FALSE(fs::exists(emptyFam));
    EXPECT_EQ(disk.stats().entries, 0);
    EXPECT_EQ(disk.stats().familyEntries, 0);
  }
  // Planted while the cache is live (simulating a crashed sibling process):
  // invisible to stats, and a real compile alongside it stays usable.
  Compiler warm = meCompiler();
  warm.diskCache(dir.str());
  ASSERT_TRUE(warm.compile().ok);
  std::ofstream(dir.path / "00000000feedface.emmplan").flush();
  DiskPlanCache::Stats s = warm.diskPlanCache()->stats();
  EXPECT_EQ(s.entries, 1);  // the planted empty file is not an entry
  Compiler again = meCompiler();
  again.diskCache(dir.str());
  EXPECT_TRUE(again.compile().diskHit);
}

// ---- Eviction. ----

TEST(DiskCache, LruEvictionKeepsTheCacheUnderTheByteCap) {
  TempCacheDir dir;
  // First find one entry's size, then cap the cache below two entries.
  i64 entryBytes = 0;
  {
    DiskPlanCache probe(dir.str());
    Compiler c = meCompiler();
    c.diskCache(&probe);
    ASSERT_TRUE(c.compile().ok);
    entryBytes = probe.stats().bytes;
    probe.clear();
  }
  ASSERT_GT(entryBytes, 0);

  DiskPlanCache disk(dir.str(), entryBytes + entryBytes / 2);
  Compiler first = meCompiler();
  first.diskCache(&disk);
  ASSERT_TRUE(first.compile().ok);

  Compiler second = meCompiler();
  second.memoryLimitBytes(8 * 1024).diskCache(&disk);
  ASSERT_TRUE(second.compile().ok);

  DiskPlanCache::Stats s = disk.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_LE(s.bytes, disk.maxBytes());

  // The survivor is the newer entry; the older one cold-compiles again.
  EXPECT_TRUE(second.compile().diskHit);
  Compiler firstAgain = meCompiler();
  firstAgain.diskCache(&disk);
  EXPECT_FALSE(firstAgain.compile().diskHit);
}

// ---- Stats coherence (in-memory tier). ----

TEST(PlanCacheStats, SnapshotStaysCoherentUnderConcurrentTraffic) {
  PlanCache cache(64);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<bool> stop{false};

  // A reader hammers stats() while writers look up and insert; every
  // snapshot must be internally consistent (no torn counter pairs).
  // Violations are recorded and asserted after join (gtest macros are not
  // thread-safe).
  std::atomic<bool> tornSnapshot{false};
  std::thread reader([&] {
    while (!stop.load()) {
      PlanCache::Stats s = cache.stats();
      // Entries only appear via insert after a miss, so at any coherent
      // instant 0 <= entries <= min(capacity, misses).
      if (s.hits < 0 || s.misses < 0 || s.entries < 0 || s.entries > 64 ||
          s.entries > s.misses)
        tornSnapshot.store(true);
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        PlanKey key;
        key.block = static_cast<u64>(t * kOpsPerThread + i);
        CompileResult r = cache.getOrCompute(key, [] {
          CompileResult fresh;
          fresh.ok = true;
          fresh.input = std::make_unique<ProgramBlock>();
          return fresh;
        });
        if (!r.ok) failures.fetch_add(1);
      }
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  stop.store(true);
  reader.join();
  EXPECT_FALSE(tornSnapshot.load());

  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kOpsPerThread);
  EXPECT_EQ(s.misses, kThreads * kOpsPerThread);  // all keys distinct
}

}  // namespace
}  // namespace emm
