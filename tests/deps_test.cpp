// Tests for dependence analysis: dependence polyhedra and distance signs.
#include <gtest/gtest.h>

#include "deps/dependence.h"
#include "kernels/blocks.h"
#include "transform/transform.h"

namespace emm {
namespace {

int countKind(const std::vector<Dependence>& deps, DepKind k) {
  int n = 0;
  for (const Dependence& d : deps)
    if (d.kind == k) ++n;
  return n;
}

TEST(Deps, IndependentLoopHasNoDeps) {
  // B[i] = A[i]: reads and writes never conflict.
  ProgramBlock block;
  block.name = "indep";
  block.arrays = {{"A", {16}}, {"B", {16}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 15);
  Access w{1, IntMat{{1, 0}}, true};
  Access r{0, IntMat{{1, 0}}, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));
  EXPECT_TRUE(computeDependences(block).empty());
}

TEST(Deps, RecurrenceFlowDep) {
  // A[i] = A[i-1]: flow dep with distance exactly 1.
  ProgramBlock block;
  block.name = "rec";
  block.arrays = {{"A", {32}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 1, 31);
  Access w{0, IntMat{{1, 0}}, true};
  Access r{0, IntMat{{1, -1}}, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  auto deps = computeDependences(block);
  ASSERT_FALSE(deps.empty());
  EXPECT_GE(countKind(deps, DepKind::Flow), 1);
  for (const Dependence& d : deps)
    if (d.kind == DepKind::Flow) { EXPECT_EQ(distanceSign(d, 0), SignRange::Positive); }
}

TEST(Deps, AntiDependence) {
  // A[i] = A[i+1]: anti dep (read before overwrite), distance +1.
  ProgramBlock block;
  block.name = "anti";
  block.arrays = {{"A", {32}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 0, 30);
  Access w{0, IntMat{{1, 0}}, true};
  Access r{0, IntMat{{1, 1}}, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  auto deps = computeDependences(block);
  EXPECT_GE(countKind(deps, DepKind::Anti), 1);
}

TEST(Deps, JacobiSigns) {
  // Jacobi (t, i): flow deps from S1 (writes B) to S2 (reads B) at distance
  // (0, 0); deps from S2 (writes A) to S1's next-step reads at t-distance 1
  // with i-distance in {-1, 0, 1}.
  ProgramBlock block = buildJacobiBlock(32, 8);
  auto deps = computeDependences(block);
  ASSERT_FALSE(deps.empty());

  auto sums = summarizeLoops(block, deps, 2);
  EXPECT_EQ(sums[0].sign, SignRange::NonNegative);  // t never decreases
  EXPECT_EQ(sums[1].sign, SignRange::Mixed);        // i goes both ways
}

TEST(Deps, MeAccumulationSigns) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  auto deps = computeDependences(block);
  ASSERT_FALSE(deps.empty());
  auto sums = summarizeLoops(block, deps, 4);
  // i, j carry no dependence (each (i,j) SAD cell independent).
  EXPECT_EQ(sums[0].sign, SignRange::Zero);
  EXPECT_EQ(sums[1].sign, SignRange::Zero);
  // k carries the accumulation.
  EXPECT_TRUE(sums[2].sign == SignRange::NonNegative || sums[2].sign == SignRange::Positive);
}

TEST(Deps, MatmulSigns) {
  ProgramBlock block = buildMatmulBlock(6, 6, 6);
  auto deps = computeDependences(block);
  auto sums = summarizeLoops(block, deps, 3);
  EXPECT_EQ(sums[0].sign, SignRange::Zero);
  EXPECT_EQ(sums[1].sign, SignRange::Zero);
  EXPECT_TRUE(sums[2].sign == SignRange::NonNegative || sums[2].sign == SignRange::Positive);
}

TEST(Deps, FlowDepPolyhedronHasExpectedPoints) {
  // A[i] = A[i-1], i in [1, 5]: flow dep instances are (src=i-1? no:
  // src iter s writes A[s], dst iter d reads A[d-1]; same element when
  // s == d-1; with s < d this is exactly d = s+1, s in [1,4] (s>=1 as a
  // write instance) plus s=0? i starts at 1 so s in [1,4]: 4 pairs.
  ProgramBlock block;
  block.name = "chain";
  block.arrays = {{"A", {8}}};
  Statement s;
  s.name = "S";
  s.domain = Polyhedron(1, 0);
  s.domain.addRange(0, 1, 5);
  Access w{0, IntMat{{1, 0}}, true};
  Access r{0, IntMat{{1, -1}}, false};
  s.accesses = {w, r};
  s.writeAccess = 0;
  s.rhs = Expr::load(1);
  s.schedule = ProgramBlock::interleavedSchedule(1, 0, {0, 0});
  block.statements.push_back(std::move(s));

  auto deps = computeDependences(block);
  i64 flowPairs = 0;
  for (const Dependence& d : deps)
    if (d.kind == DepKind::Flow) {
      // Count integer points of the dependence polyhedron.
      Polyhedron p = d.poly;
      i64 n = 0;
      // 2-D space (s, d), no params.
      for (i64 a = 0; a <= 6; ++a)
        for (i64 b = 0; b <= 6; ++b)
          if (p.contains({a, b})) ++n;
      flowPairs += n;
    }
  EXPECT_EQ(flowPairs, 4);
}

TEST(Deps, CombineSignsTable) {
  using S = SignRange;
  EXPECT_EQ(combineSigns(S::Zero, S::Zero), S::Zero);
  EXPECT_EQ(combineSigns(S::Zero, S::Positive), S::NonNegative);
  EXPECT_EQ(combineSigns(S::Positive, S::Positive), S::Positive);
  EXPECT_EQ(combineSigns(S::Negative, S::Zero), S::NonPositive);
  EXPECT_EQ(combineSigns(S::Positive, S::Negative), S::Mixed);
  EXPECT_EQ(combineSigns(S::Mixed, S::Zero), S::Mixed);
  EXPECT_EQ(combineSigns(S::NonNegative, S::Positive), S::NonNegative);
}

}  // namespace
}  // namespace emm
