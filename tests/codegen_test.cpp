// Tests for polyhedron scanning (CLooG substitute) and schedule-driven
// multi-statement code generation. Semantic checks run generated ASTs
// through the interpreter and compare against direct enumeration.
#include <gtest/gtest.h>

#include <set>

#include "codegen/scan.h"
#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "poly/enumerate.h"

namespace emm {
namespace {

/// Executes a scan AST that copies marker values, collecting visited points
/// by writing i (and j) coordinates into arrays via Copy nodes is clumsy;
/// instead we count visits by copying from A to B at the visited index and
/// compare traces. For point-set equality we run the interpreter and record
/// Copy executions through a dense "visit" array.
struct ScanHarness {
  ProgramBlock block;
  CodeUnit unit;

  explicit ScanHarness(i64 extent0, i64 extent1 = 0) {
    block.name = "scan";
    if (extent1 == 0) {
      block.arrays = {{"src", {extent0}}, {"dst", {extent0}}};
    } else {
      block.arrays = {{"src", {extent0, extent1}}, {"dst", {extent0, extent1}}};
    }
    unit.source = &block;
  }
};

TEST(Scan, Box1D) {
  ScanHarness h(20);
  Polyhedron p(1, 0);
  p.addRange(0, 3, 17);
  h.unit.root = scanPolyhedron(p, {"x"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0])}, 0, {AffExpr::var(it[0])});
  });
  ArrayStore store(h.block.arrays);
  store.fillPattern(0, 1);
  MemTrace t = executeCodeUnit(h.unit, {}, store);
  EXPECT_EQ(t.copyElements, 15);
  EXPECT_EQ(store.get(1, {3}), store.get(0, {3}));
  EXPECT_EQ(store.get(1, {17}), store.get(0, {17}));
  EXPECT_EQ(store.get(1, {2}), 0.0);
}

TEST(Scan, Triangle2D) {
  ScanHarness h(10, 10);
  // { (i,j) : 0<=i<=9, 0<=j<=i }
  Polyhedron p(2, 0);
  p.addRange(0, 0, 9);
  p.addInequality({0, 1, 0});
  p.addInequality({1, -1, 0});
  h.unit.root = scanPolyhedron(p, {"i", "j"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0]), AffExpr::var(it[1])}, 0,
                         {AffExpr::var(it[0]), AffExpr::var(it[1])});
  });
  ArrayStore store(h.block.arrays);
  EXPECT_EQ(executeCodeUnit(h.unit, {}, store).copyElements, 55);
}

TEST(Scan, ParametricBounds) {
  ScanHarness h(64);
  Polyhedron p(1, 1);  // 2 <= x <= N-1
  p.addInequality({1, 0, -2});
  p.addInequality({-1, 1, -1});
  h.unit.root = scanPolyhedron(p, {"x"}, {"N"}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0])}, 0, {AffExpr::var(it[0])});
  });
  h.block.paramNames = {"N"};
  ArrayStore store(h.block.arrays);
  EXPECT_EQ(executeCodeUnit(h.unit, {40}, store).copyElements, 38);
}

TEST(Scan, EmptySetGeneratesNothing) {
  Polyhedron p(1, 0);
  p.addRange(0, 5, 2);
  AstPtr root = scanPolyhedron(p, {"x"}, {}, [&](const std::vector<std::string>&) {
    return AstNode::comment("never");
  });
  EXPECT_TRUE(root->children.empty());
}

TEST(Scan, IntegralityOfStridedSet) {
  // { x : x == 2y for some y, 0 <= x <= 10 } -- via equality with aux var
  // eliminated beforehand, the paper-relevant case is strided bounds with
  // divisors. Scan { (i, j) : i == 2j, 0 <= i <= 10 } over (i, j).
  ScanHarness h(16);
  Polyhedron p(2, 0);
  p.addEquality({1, -2, 0});
  p.addRange(0, 0, 10);
  h.unit.root = scanPolyhedron(p, {"i", "j"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0])}, 0, {AffExpr::var(it[0])});
  });
  ArrayStore store(h.block.arrays);
  // Only even i visited: 0,2,4,6,8,10.
  EXPECT_EQ(executeCodeUnit(h.unit, {}, store).copyElements, 6);
}

TEST(ScanUnion, OverlappingPiecesVisitOnce) {
  ScanHarness h(40);
  Polyhedron a(1, 0), b(1, 0);
  a.addRange(0, 0, 19);
  b.addRange(0, 10, 29);
  h.unit.root = scanUnion({a, b}, {"x"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0])}, 0, {AffExpr::var(it[0])});
  });
  ArrayStore store(h.block.arrays);
  EXPECT_EQ(executeCodeUnit(h.unit, {}, store).copyElements, 30);  // single transfer each
}

TEST(ScanUnion, DisjointPieces) {
  ScanHarness h(40);
  Polyhedron a(1, 0), b(1, 0);
  a.addRange(0, 0, 4);
  b.addRange(0, 30, 34);
  h.unit.root = scanUnion({a, b}, {"x"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0])}, 0, {AffExpr::var(it[0])});
  });
  ArrayStore store(h.block.arrays);
  EXPECT_EQ(executeCodeUnit(h.unit, {}, store).copyElements, 10);
}

TEST(ScanUnion, TwoDimensionalLShape) {
  ScanHarness h(12, 12);
  Polyhedron a(2, 0), b(2, 0);
  a.addRange(0, 0, 7);
  a.addRange(1, 0, 3);
  b.addRange(0, 0, 3);
  b.addRange(1, 0, 7);
  h.unit.root = scanUnion({a, b}, {"i", "j"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0]), AffExpr::var(it[1])}, 0,
                         {AffExpr::var(it[0]), AffExpr::var(it[1])});
  });
  ArrayStore store(h.block.arrays);
  // |A| + |B| - |A and B| = 32 + 32 - 16 = 48.
  EXPECT_EQ(executeCodeUnit(h.unit, {}, store).copyElements, 48);
}

// ---- generateFromSchedules: semantics equal the reference executor. ----

void expectGeneratedMatchesReference(const ProgramBlock& block, const IntVec& params) {
  CodeUnit unit;
  unit.source = &block;
  unit.statements = block.statements;
  unit.root = generateFromSchedules(block);

  ArrayStore genStore(block.arrays), refStore(block.arrays);
  genStore.fillAllPattern(23);
  refStore.fillAllPattern(23);
  executeCodeUnit(unit, params, genStore);
  executeReference(block, params, refStore);
  EXPECT_EQ(ArrayStore::maxAbsDiff(genStore, refStore), 0.0);
}

TEST(ScheduleGen, Figure1Block) {
  expectGeneratedMatchesReference(buildFigure1Block(), {});
}

TEST(ScheduleGen, JacobiInterleaving) {
  expectGeneratedMatchesReference(buildJacobiBlock(24, 6), {24, 6});
}

TEST(ScheduleGen, MeSingleStatement) {
  expectGeneratedMatchesReference(buildMeBlock(5, 4, 3), {5, 4, 3});
}

TEST(ScheduleGen, MatmulSingleStatement) {
  expectGeneratedMatchesReference(buildMatmulBlock(4, 3, 5), {4, 3, 5});
}

TEST(ScheduleGen, EmitsReadableC) {
  ProgramBlock block = buildFigure1Block();
  CodeUnit unit;
  unit.source = &block;
  unit.statements = block.statements;
  unit.root = generateFromSchedules(block);
  std::string code = emitC(unit);
  // Statements share the (i, j) loops; S2's k loop nests inside.
  EXPECT_NE(code.find("for (c0 = 10; c0 <= 14; c0++)"), std::string::npos) << code;
  EXPECT_NE(code.find("for (c2 = 11; c2 <= 20; c2++)"), std::string::npos) << code;
  EXPECT_NE(code.find("/* S1 */"), std::string::npos) << code;
}

class ScanBoxProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScanBoxProperty, VisitCountMatchesEnumeration) {
  auto [e0, e1] = GetParam();
  ScanHarness h(16, 16);
  Polyhedron p(2, 0);
  p.addRange(0, 1, e0);
  p.addRange(1, 2, e1);
  h.unit.root = scanPolyhedron(p, {"i", "j"}, {}, [&](const std::vector<std::string>& it) {
    return AstNode::copy(1, {AffExpr::var(it[0]), AffExpr::var(it[1])}, 0,
                         {AffExpr::var(it[0]), AffExpr::var(it[1])});
  });
  ArrayStore store(h.block.arrays);
  EXPECT_EQ(executeCodeUnit(h.unit, {}, store).copyElements, countPoints(p, {}));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScanBoxProperty,
                         ::testing::Combine(::testing::Values(0, 1, 5, 15),
                                            ::testing::Values(1, 2, 9, 15)));

}  // namespace
}  // namespace emm
