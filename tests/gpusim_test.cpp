// Tests for the simulated two-level machine: occupancy, feasibility rules,
// cost monotonicity, and the qualitative behaviors the figures rely on.
#include <gtest/gtest.h>

#include "gpusim/machine.h"

namespace emm {
namespace {

Machine gtx() { return Machine::geforce8800gtx(); }

BlockWork computeOnly(i64 ops) {
  BlockWork w;
  w.computeOps = ops;
  return w;
}

TEST(Machine, OccupancyLimitedByScratchpad) {
  Machine m = gtx();
  LaunchConfig l;
  l.numBlocks = 256;
  l.threadsPerBlock = 64;
  l.smemBytesPerBlock = 8 * 1024;  // 2 blocks per SM
  SimResult r = simulateLaunch(m, l, computeOnly(1000));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.concurrentBlocks, 2 * m.numSMs);
  // Blocks serialize per SM: 256 blocks over 16 SMs = 16 rounds.
  EXPECT_EQ(r.waves, 256 / m.numSMs);
  // Tighter residency (4x footprint) costs time through lost latency
  // hiding, not through throughput.
  LaunchConfig tight = l;
  tight.smemBytesPerBlock = 16 * 1024;
  BlockWork w;
  w.globalElems = 100000;
  SimResult loose = simulateLaunch(m, l, w);
  SimResult one = simulateLaunch(m, tight, w);
  ASSERT_TRUE(one.feasible);
  EXPECT_GE(one.milliseconds, loose.milliseconds);
}

TEST(Machine, FootprintOverCapacityInfeasible) {
  Machine m = gtx();
  LaunchConfig l;
  l.numBlocks = 16;
  l.threadsPerBlock = 64;
  l.smemBytesPerBlock = 17 * 1024;  // > 16 KB
  SimResult r = simulateLaunch(m, l, computeOnly(1000));
  EXPECT_FALSE(r.feasible);
}

TEST(Machine, GlobalBarrierResidencyRule) {
  // With spin-style barriers (syncRequiresResidency), more blocks than can
  // be resident is infeasible (paper Section 4.1: all synchronizing
  // processes must be active). Relaunch-style barriers (default) tolerate
  // oversubscription.
  Machine m = gtx();
  LaunchConfig l;
  l.numBlocks = 1024;
  l.threadsPerBlock = 64;
  l.smemBytesPerBlock = 8 * 1024;  // 32 resident max
  l.interBlockSyncs = 10;
  l.syncRequiresResidency = true;
  SimResult r = simulateLaunch(m, l, computeOnly(1000));
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.infeasibleReason.find("resident"), std::string::npos);
  l.syncRequiresResidency = false;
  EXPECT_TRUE(simulateLaunch(m, l, computeOnly(1000)).feasible);
  // Without barriers the same launch runs in waves regardless.
  l.interBlockSyncs = 0;
  l.syncRequiresResidency = true;
  EXPECT_TRUE(simulateLaunch(m, l, computeOnly(1000)).feasible);
}

TEST(Machine, GlobalTrafficSlowerThanScratchpad) {
  Machine m = gtx();
  LaunchConfig l;
  l.numBlocks = 32;
  l.threadsPerBlock = 256;
  l.smemBytesPerBlock = 4096;
  BlockWork global;
  global.globalElems = 1'000'000;
  BlockWork local;
  local.smemElems = 1'000'000;
  double tg = simulateLaunch(m, l, global).milliseconds;
  double ts = simulateLaunch(m, l, local).milliseconds;
  EXPECT_GT(tg, 4 * ts);  // scratchpad is much cheaper per element
}

TEST(Machine, TimeScalesWithWork) {
  Machine m = gtx();
  LaunchConfig l;
  l.numBlocks = 32;
  l.threadsPerBlock = 128;
  double t1 = simulateLaunch(m, l, computeOnly(1'000'000)).milliseconds;
  double t2 = simulateLaunch(m, l, computeOnly(2'000'000)).milliseconds;
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(Machine, MoreBlocksAmortizeUntilWavesSaturate) {
  // Fixed total work split across B blocks: time falls until the device is
  // full, then flattens.
  Machine m = gtx();
  const i64 totalOps = 128'000'000;
  auto timeFor = [&](i64 blocks) {
    LaunchConfig l;
    l.numBlocks = blocks;
    l.threadsPerBlock = 64;
    return simulateLaunch(m, l, computeOnly(totalOps / blocks)).milliseconds;
  };
  EXPECT_GT(timeFor(1), timeFor(4));
  EXPECT_GT(timeFor(4), timeFor(16));
  // Beyond full occupancy, time stops improving much.
  EXPECT_NEAR(timeFor(128), timeFor(256), timeFor(128) * 0.5);
}

TEST(Machine, InterBlockSyncCostGrowsWithBlocks) {
  Machine m = gtx();
  auto timeFor = [&](i64 blocks) {
    LaunchConfig l;
    l.numBlocks = blocks;
    l.threadsPerBlock = 64;
    l.smemBytesPerBlock = 64;  // tiny: residency never binds
    l.interBlockSyncs = 128;
    return simulateLaunch(m, l, computeOnly(1000)).milliseconds;
  };
  EXPECT_LT(timeFor(16), timeFor(128));
  EXPECT_LT(timeFor(128), timeFor(250));
}

TEST(Machine, JacobiStyleUShape) {
  // Fixed total work + per-band barriers: sweeping block count produces the
  // Figure-7 U-shape (falling, then rising once sync dominates).
  Machine m = gtx();
  const i64 totalOps = 160'000'000;
  const i64 totalSmem = 480'000'000;
  auto timeFor = [&](i64 blocks) {
    LaunchConfig l;
    l.numBlocks = blocks;
    l.threadsPerBlock = 64;
    l.smemBytesPerBlock = 256;
    l.interBlockSyncs = 128;
    BlockWork w;
    w.computeOps = totalOps / blocks;
    w.smemElems = totalSmem / blocks;
    w.intraSyncs = 128;
    SimResult r = simulateLaunch(m, l, w);
    EXPECT_TRUE(r.feasible);
    return r.milliseconds;
  };
  double t16 = timeFor(16), t64 = timeFor(64), t240 = timeFor(240);
  EXPECT_GT(t16, t64);   // falling edge: parallelism wins
  EXPECT_LT(t64, t240);  // rising edge: sync cost dominates
}

TEST(Machine, CpuBaseline) {
  Machine m = gtx();
  double t = simulateCpuMs(m, 1'000'000, 500'000);
  EXPECT_GT(t, 0);
  // Twice the work, twice the time.
  EXPECT_NEAR(simulateCpuMs(m, 2'000'000, 1'000'000) / t, 2.0, 1e-9);
}

TEST(Machine, BlockWorkArithmetic) {
  BlockWork a;
  a.globalElems = 10;
  a.smemElems = 20;
  a.computeOps = 30;
  a.intraSyncs = 4;
  BlockWork b = a;
  b += a;
  EXPECT_EQ(b.globalElems, 20);
  EXPECT_EQ(b.intraSyncs, 8);
  BlockWork h = a.scaled(0.5);
  EXPECT_EQ(h.globalElems, 5);
  EXPECT_EQ(h.computeOps, 15);
}

class OccupancySweep : public ::testing::TestWithParam<i64> {};

TEST_P(OccupancySweep, ConcurrentBlocksMatchFormula) {
  // Paper Section 5: concurrent blocks cannot exceed smem capacity / block
  // footprint (and the hardware block cap).
  i64 smemPerBlock = GetParam();
  Machine m = gtx();
  LaunchConfig l;
  l.numBlocks = 4096;
  l.threadsPerBlock = 32;
  l.smemBytesPerBlock = smemPerBlock;
  SimResult r = simulateLaunch(m, l, computeOnly(10));
  ASSERT_TRUE(r.feasible);
  i64 perSM = std::min<i64>(m.maxBlocksPerSM, m.smemBytesPerSM / smemPerBlock);
  EXPECT_EQ(r.concurrentBlocks, perSM * m.numSMs);
}

INSTANTIATE_TEST_SUITE_P(Footprints, OccupancySweep,
                         ::testing::Values(2048, 4096, 5000, 8192, 16384));

}  // namespace
}  // namespace emm
