// Tests for size-generic (kernel-family) compilation: one symbolic plan per
// family serving a whole --size sweep.
//
//  - Equivalence: family-instantiated compiles produce byte-identical
//    artifacts, identical chosen tiles and identical cost models to
//    isolated per-size cold compiles, across randomized problem sizes for
//    ME, jacobi 1-D/2-D and matmul.
//  - Accounting: a sweep performs exactly one family miss (the cold run
//    that builds the family plan) and family hits for every further size,
//    in both the memory tier and the disk tier (.emmfam round trip).
//  - Safety: collision-guard digests make foreign entries misses, corrupt
//    family records fall back to clean cold compiles, and footprint-
//    interval box pruning never changes the chosen tile.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <random>

#include "deps/dependence.h"
#include "driver/compiler.h"
#include "driver/disk_cache.h"
#include "driver/family_plan.h"
#include "driver/plan_cache.h"
#include "kernels/blocks.h"
#include "support/serialize.h"
#include "tilesearch/tile_evaluator.h"
#include "transform/transform.h"

namespace fs = std::filesystem;

namespace emm {
namespace {

/// Fresh unique cache directory per test, removed on destruction.
struct TempCacheDir {
  fs::path path;
  TempCacheDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("emmfam_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Builder configured the way the sweeps run: cuda backend (folds the
/// problem sizes into the artifact, so byte equality is meaningful).
Compiler sweepCompiler(const std::string& kernel, const std::vector<i64>& sizes) {
  IntVec params;
  ProgramBlock block = buildKernelByName(kernel, sizes, params);
  Compiler c(std::move(block));
  c.parameters(params).memoryLimitBytes(16 * 1024).backend("cuda");
  return c;
}

/// Isolated cold compile: no caches, no family tier.
CompileResult coldCompile(const std::string& kernel, const std::vector<i64>& sizes) {
  return sweepCompiler(kernel, sizes).compile();
}

void expectSameOutcome(const CompileResult& a, const CompileResult& b, const char* what) {
  ASSERT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.search.subTile, b.search.subTile) << what;
  EXPECT_EQ(a.search.eval.feasible, b.search.eval.feasible) << what;
  EXPECT_DOUBLE_EQ(a.search.eval.cost, b.search.eval.cost) << what;
  EXPECT_EQ(a.search.eval.footprint, b.search.eval.footprint) << what;
  EXPECT_EQ(a.artifact, b.artifact) << what;  // byte-identical
}

// ---- equivalence across a sweep (memory family tier) ---------------------

TEST(FamilyTierTest, MeSweepIsOneColdCompilePlusFamilyHits) {
  const std::vector<std::vector<i64>> sweep = {
      {64, 64, 8}, {128, 64, 8}, {192, 96, 8}, {256, 128, 8}};
  PlanCache cache;
  for (size_t i = 0; i < sweep.size(); ++i) {
    Compiler c = sweepCompiler("me", sweep[i]);
    CompileResult r = c.cache(&cache).compile();
    ASSERT_TRUE(r.ok) << r.firstError();
    EXPECT_EQ(r.familyHit, i > 0) << "size #" << i;
    EXPECT_EQ(r.search.familyAdopted, i > 0) << "size #" << i;
    EXPECT_TRUE(r.search.parametric);
    CompileResult cold = coldCompile("me", sweep[i]);
    expectSameOutcome(r, cold, "me sweep vs cold");
  }
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.familyMisses, 1);  // exactly one cold pipeline per family
  EXPECT_EQ(s.familyHits, static_cast<i64>(sweep.size()) - 1);
  EXPECT_EQ(s.familyEntries, 1);
}

TEST(FamilyTierTest, RandomizedSizesStayByteIdentical) {
  std::mt19937 rng(20260729);
  const struct {
    const char* kernel;
    int nsizes;
    std::vector<std::vector<i64>> pool;  ///< per size slot: values to draw
  } cases[] = {
      {"me", 3, {{48, 64, 96, 128, 160}, {32, 64, 96}, {8, 16}}},
      {"matmul", 3, {{32, 48, 64, 96}, {32, 64, 96}, {32, 48, 64}}},
  };
  for (const auto& kc : cases) {
    PlanCache cache;
    std::vector<std::vector<i64>> drawn;
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<i64> sizes;
      for (int d = 0; d < kc.nsizes; ++d) {
        const std::vector<i64>& pool = kc.pool[d];
        sizes.push_back(pool[rng() % pool.size()]);
      }
      const bool repeat =
          std::find(drawn.begin(), drawn.end(), sizes) != drawn.end();
      drawn.push_back(sizes);
      CompileResult r = sweepCompiler(kc.kernel, sizes).cache(&cache).compile();
      ASSERT_TRUE(r.ok) << kc.kernel << ": " << r.firstError();
      if (trial > 0 && !repeat) EXPECT_TRUE(r.familyHit) << kc.kernel;
      CompileResult cold = coldCompile(kc.kernel, sizes);
      expectSameOutcome(r, cold, kc.kernel);
    }
    EXPECT_EQ(cache.stats().familyMisses, 1) << kc.kernel;
  }
}

// ---- kernels without a tile search: deps/transform family reuse ----------

TEST(FamilyTierTest, JacobiPipelinesReuseDepsAndTransform) {
  // Jacobi bands need inter-block sync, so the pipeline falls back to the
  // block-level analysis — the family tier still serves the dependences
  // and the skewing transform, and the per-size products stay identical to
  // isolated cold compiles.
  for (const char* kernel : {"jacobi", "jacobi2d"}) {
    PlanCache cache;
    const std::vector<std::vector<i64>> sweep =
        std::string(kernel) == "jacobi"
            ? std::vector<std::vector<i64>>{{512, 16}, {1024, 16}, {4096, 32}}
            : std::vector<std::vector<i64>>{{48, 48, 8}, {64, 96, 8}, {128, 64, 8}};
    for (size_t i = 0; i < sweep.size(); ++i) {
      CompileResult r = sweepCompiler(kernel, sweep[i]).cache(&cache).compile();
      ASSERT_TRUE(r.ok) << kernel << ": " << r.firstError();
      EXPECT_EQ(r.familyHit, i > 0) << kernel << " size #" << i;
      ASSERT_TRUE(r.havePlan);
      EXPECT_TRUE(r.plan.needsInterBlockSync);
      CompileResult cold = coldCompile(kernel, sweep[i]);
      EXPECT_EQ(r.deps.size(), cold.deps.size());
      EXPECT_EQ(r.appliedSkews, cold.appliedSkews);
      EXPECT_EQ(r.plan.spaceLoops, cold.plan.spaceLoops);
      ASSERT_NE(r.dataPlan(), nullptr);
      ASSERT_NE(cold.dataPlan(), nullptr);
      ASSERT_EQ(r.dataPlan()->partitions.size(), cold.dataPlan()->partitions.size());
      for (size_t p = 0; p < r.dataPlan()->partitions.size(); ++p) {
        EXPECT_EQ(r.dataPlan()->partitions[p].bufferName,
                  cold.dataPlan()->partitions[p].bufferName);
        EXPECT_EQ(r.dataPlan()->partitions[p].hasBuffer,
                  cold.dataPlan()->partitions[p].hasBuffer);
      }
      EXPECT_EQ(r.artifact, cold.artifact);
    }
    EXPECT_EQ(cache.stats().familyMisses, 1) << kernel;
    EXPECT_EQ(cache.stats().familyHits, 2) << kernel;
  }
}

TEST(FamilyTierTest, ScratchpadOnlyCellSweepIsByteIdentical) {
  // Scratchpad-only + cell backend: the artifact folds the problem sizes,
  // so byte equality is a real check; the family tier serves dependences.
  auto build = [](i64 n, i64 t) {
    Compiler c(buildJacobiBlock(n, t));
    c.parameters({n, t})
        .scratchpadOnly(true)
        .stageEverything(true)
        .backend("cell")
        .memoryLimitBytes(16 * 1024);
    return c;
  };
  PlanCache cache;
  const std::vector<std::pair<i64, i64>> sweep = {{512, 16}, {1024, 16}, {2048, 32}};
  for (size_t i = 0; i < sweep.size(); ++i) {
    Compiler c = build(sweep[i].first, sweep[i].second);
    CompileResult r = c.cache(&cache).compile();
    ASSERT_TRUE(r.ok) << r.firstError();
    EXPECT_EQ(r.familyHit, i > 0);
    CompileResult cold = build(sweep[i].first, sweep[i].second).compile();
    ASSERT_TRUE(cold.ok);
    EXPECT_FALSE(cold.artifact.empty());
    EXPECT_EQ(r.artifact, cold.artifact);
  }
  EXPECT_EQ(cache.stats().familyMisses, 1);
  EXPECT_EQ(cache.stats().familyHits, 2);
}

// ---- the size-generic plan itself ----------------------------------------

TEST(FamilyTierTest, AdoptedPlanMatchesFreshlyBuiltPlanEverywhere) {
  // Build the plan at one size, adopt it at another, and compare every
  // candidate evaluation against an evaluator that rebuilt its own plan.
  ProgramBlock b0 = buildMeBlock(64, 64, 8);
  auto deps0 = computeDependences(b0);
  ParallelismPlan plan0 = findParallelism(b0, deps0);
  TileSearchOptions topts;
  topts.paramValues = {64, 64, 8};
  topts.memLimitElems = 4096;
  SmemOptions smem;
  smem.sampleParams = {64, 64, 8};
  TileEvaluator source(b0, plan0, topts, smem);
  searchTileSizes(source);
  ASSERT_EQ(source.parametricState(), TileEvaluator::ParametricState::Active);
  std::shared_ptr<const ParametricTilePlan> family = source.sharedPlan();
  ASSERT_NE(family, nullptr);
  EXPECT_FALSE(source.familyAdopted());

  ProgramBlock b1 = buildMeBlock(160, 96, 16);
  auto deps1 = computeDependences(b1);
  ParallelismPlan plan1 = findParallelism(b1, deps1);
  TileSearchOptions topts1 = topts;
  topts1.paramValues = {160, 96, 16};
  SmemOptions smem1;
  smem1.sampleParams = {160, 96, 16};
  TileEvaluator adopted(b1, plan1, topts1, smem1);
  adopted.adoptFamilyPlan(family);
  TileEvaluator fresh(b1, plan1, topts1, smem1);

  std::mt19937 rng(7);
  for (int i = 0; i < 40; ++i) {
    std::vector<i64> tile = {i64(1) << (rng() % 8), i64(1) << (rng() % 7),
                             i64(1) << (rng() % 5), i64(1) << (rng() % 5)};
    const TileEvaluation& a = adopted.evaluate(tile);
    const TileEvaluation& f = fresh.evaluate(tile);
    EXPECT_EQ(a.feasible, f.feasible) << "tile " << i;
    EXPECT_EQ(a.reason, f.reason);
    EXPECT_DOUBLE_EQ(a.cost, f.cost);
    EXPECT_EQ(a.footprint, f.footprint);
    ASSERT_EQ(a.terms.size(), f.terms.size());
    for (size_t t = 0; t < a.terms.size(); ++t) {
      EXPECT_EQ(a.terms[t].name, f.terms[t].name);
      EXPECT_EQ(a.terms[t].occurrences, f.terms[t].occurrences);
      EXPECT_EQ(a.terms[t].volumeIn, f.terms[t].volumeIn);
      EXPECT_EQ(a.terms[t].volumeOut, f.terms[t].volumeOut);
      EXPECT_EQ(a.terms[t].hoistLevel, f.terms[t].hoistLevel);
    }
  }
  EXPECT_TRUE(adopted.familyAdopted());
  EXPECT_FALSE(fresh.familyAdopted());
}

TEST(FamilyTierTest, BoxPruningNeverChangesTheChosenTile) {
  // Tight memory budgets prune large-tile boxes; the surviving search must
  // choose exactly the tile the unpruned concrete path chooses.
  for (i64 memBytes : {1024, 4 * 1024, 8 * 1024, 16 * 1024}) {
    Compiler parametric = sweepCompiler("me", {128, 64, 16});
    parametric.memoryLimitBytes(memBytes);
    CompileResult rp = parametric.compile();
    ASSERT_TRUE(rp.ok) << rp.firstError();
    Compiler concrete = sweepCompiler("me", {128, 64, 16});
    concrete.memoryLimitBytes(memBytes).opts().parametricTileAnalysis = false;
    CompileResult rc = concrete.compile();
    ASSERT_TRUE(rc.ok) << rc.firstError();
    EXPECT_EQ(rp.search.subTile, rc.search.subTile) << "mem " << memBytes;
    EXPECT_DOUBLE_EQ(rp.search.eval.cost, rc.search.eval.cost);
    EXPECT_EQ(rp.artifact, rc.artifact);
    EXPECT_EQ(rc.search.prunedBoxes, 0);  // concrete path never prunes
  }
}

TEST(FamilyTierTest, TightBudgetReportsPrunedBoxes) {
  // At 1 KB (256 floats) the large-tile tails of the i/j ladders exceed the
  // budget even with every other loop at its minimum, so the interval
  // oracle can discard them before the solver runs.
  Compiler c = sweepCompiler("me", {256, 128, 16});
  c.memoryLimitBytes(1024);
  CompileResult r = c.compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  ASSERT_TRUE(r.search.parametric);
  EXPECT_GT(r.search.prunedBoxes, 0);
}

// ---- disk round trip ------------------------------------------------------

TEST(FamilyTierTest, FamilyPlanRoundTripsThroughDisk) {
  TempCacheDir dir;
  {
    PlanCache warmers;
    DiskPlanCache disk(dir.str());
    CompileResult r =
        sweepCompiler("me", {64, 64, 8}).cache(&warmers).diskCache(&disk).compile();
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.familyHit);
    EXPECT_EQ(disk.stats().familyInsertions, 1);
    EXPECT_EQ(disk.stats().familyEntries, 1);
  }
  // "Second process": fresh memory cache, fresh disk handle, NEW size.
  PlanCache cache;
  DiskPlanCache disk(dir.str());
  CompileResult r =
      sweepCompiler("me", {192, 96, 16}).cache(&cache).diskCache(&disk).compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_TRUE(r.familyHit);           // family loaded from disk
  EXPECT_TRUE(r.search.familyAdopted);  // no symbolic rebuild
  EXPECT_EQ(disk.stats().familyHits, 1);
  CompileResult cold = coldCompile("me", {192, 96, 16});
  expectSameOutcome(r, cold, "disk family instantiation");
  // The deserialized family was promoted into the memory tier.
  EXPECT_EQ(cache.stats().familyEntries, 1);
}

TEST(FamilyTierTest, CorruptFamilyRecordFallsBackToColdCompile) {
  TempCacheDir dir;
  {
    PlanCache warmers;
    DiskPlanCache disk(dir.str());
    ASSERT_TRUE(
        sweepCompiler("me", {64, 64, 8}).cache(&warmers).diskCache(&disk).compile().ok);
  }
  fs::path fam;
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    if (de.path().extension() == ".emmfam") fam = de.path();
  ASSERT_FALSE(fam.empty());
  {
    // Flip a byte in the middle of the payload: checksum must reject it.
    std::fstream f(fam, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200, std::ios::beg);
    char c = 0x5a;
    f.write(&c, 1);
  }
  PlanCache cache;
  DiskPlanCache disk(dir.str());
  CompileResult r =
      sweepCompiler("me", {128, 64, 8}).cache(&cache).diskCache(&disk).compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_FALSE(r.familyHit);  // record rejected; clean cold compile
  EXPECT_EQ(disk.stats().familyRejects, 1);
  CompileResult cold = coldCompile("me", {128, 64, 8});
  expectSameOutcome(r, cold, "after corrupt family record");
}

TEST(FamilyTierTest, SerializedFamilyPlanEvaluatesIdentically) {
  // Direct serialize -> deserialize of a family plan; the reloaded
  // ParametricTilePlan must evaluate bit-identically, bound at a NEW size.
  ProgramBlock b0 = buildMatmulBlock(64, 64, 64);
  auto deps = computeDependences(b0);
  ParallelismPlan plan0 = findParallelism(b0, deps);
  TileSearchOptions topts;
  topts.paramValues = {64, 64, 64};
  topts.memLimitElems = 4096;
  SmemOptions smem;
  smem.sampleParams = {64, 64, 64};
  TileEvaluator source(b0, plan0, topts, smem);
  searchTileSizes(source);
  ASSERT_EQ(source.parametricState(), TileEvaluator::ParametricState::Active);

  FamilyPlan fam;
  fam.haveDeps = true;
  fam.deps = deps;
  fam.tilePlan = source.sharedPlan();
  std::string bytes = serializeFamilyPlan(fam);
  std::shared_ptr<const FamilyPlan> reloaded = deserializeFamilyPlan(bytes);
  ASSERT_NE(reloaded->tilePlan, nullptr);
  EXPECT_EQ(reloaded->deps.size(), deps.size());

  const IntVec newSizes = {96, 128, 48};
  ParametricTilePlan::SizeBinding ba = fam.tilePlan->bindSizes(newSizes);
  ParametricTilePlan::SizeBinding bb = reloaded->tilePlan->bindSizes(newSizes);
  EXPECT_EQ(ba.ext, bb.ext);
  EXPECT_EQ(ba.loopRange, bb.loopRange);
  for (const std::vector<i64>& tile :
       {std::vector<i64>{8, 8, 8}, {16, 16, 4}, {32, 8, 16}, {64, 64, 48}}) {
    TileEvaluation ea = fam.tilePlan->evaluate(ba, tile);
    TileEvaluation eb = reloaded->tilePlan->evaluate(bb, tile);
    EXPECT_EQ(ea.feasible, eb.feasible);
    EXPECT_EQ(ea.reason, eb.reason);
    EXPECT_DOUBLE_EQ(ea.cost, eb.cost);
    EXPECT_EQ(ea.footprint, eb.footprint);
    ASSERT_EQ(ea.terms.size(), eb.terms.size());
    for (size_t t = 0; t < ea.terms.size(); ++t) {
      EXPECT_EQ(ea.terms[t].name, eb.terms[t].name);
      EXPECT_EQ(ea.terms[t].occurrences, eb.terms[t].occurrences);
      EXPECT_EQ(ea.terms[t].volumeIn, eb.terms[t].volumeIn);
      EXPECT_EQ(ea.terms[t].volumeOut, eb.terms[t].volumeOut);
    }
  }
}

// ---- collision guards -----------------------------------------------------

TEST(FamilyTierTest, MemoryTierRejectsForeignDigests) {
  PlanCache cache;
  FamilyKey key{1, 2, 3};
  auto plan = std::make_shared<FamilyPlan>();
  plan->haveDeps = true;
  cache.insertFamily(key, /*collisionDigest=*/111, plan);
  EXPECT_EQ(cache.lookupFamily(key, 222), nullptr);  // colliding key, other family
  EXPECT_NE(cache.lookupFamily(key, 111), nullptr);
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.familyMisses, 1);
  EXPECT_EQ(s.familyHits, 1);
  EXPECT_EQ(s.familyEntries, 1);
}

TEST(FamilyTierTest, DistinctKernelsAreDistinctFamilies) {
  PlanCache cache;
  ASSERT_TRUE(sweepCompiler("me", {64, 64, 8}).cache(&cache).compile().ok);
  ASSERT_TRUE(sweepCompiler("matmul", {64, 64, 64}).cache(&cache).compile().ok);
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.familyMisses, 2);
  EXPECT_EQ(s.familyHits, 0);
  EXPECT_EQ(s.familyEntries, 2);
}

TEST(FamilyTierTest, FamilyKeyIgnoresCodegenOnlyDifferences) {
  // A cache warmed by full compiles (codegen run, cuda backend) must serve
  // plan-only sweeps (codegen skipped, c backend): codegen consumes
  // products and contributes nothing to the family plan.
  PlanCache cache;
  ASSERT_TRUE(sweepCompiler("me", {64, 64, 8}).cache(&cache).compile().ok);
  Compiler c = sweepCompiler("me", {128, 64, 8});
  c.backend("c").skipPass("codegen");
  CompileResult r = c.cache(&cache).compile();
  ASSERT_TRUE(r.ok) << r.firstError();
  EXPECT_TRUE(r.familyHit);
  EXPECT_TRUE(r.search.familyAdopted);
  EXPECT_EQ(cache.stats().familyMisses, 1);
}

TEST(FamilyTierTest, FamilyHashIgnoresSizesButNotStructure) {
  ProgramBlock a = buildMeBlock(64, 64, 8);
  ProgramBlock b = buildMeBlock(256, 128, 16);
  EXPECT_NE(hashProgramBlock(a), hashProgramBlock(b));
  EXPECT_EQ(hashProgramBlockFamily(a), hashProgramBlockFamily(b));
  ProgramBlock c = buildMatmulBlock(64, 64, 64);
  EXPECT_NE(hashProgramBlockFamily(a), hashProgramBlockFamily(c));

  CompileOptions o1, o2;
  o1.paramValues = {64, 64, 8};
  o2.paramValues = {256, 128, 16};
  EXPECT_EQ(hashCompileOptionsFamily(o1), hashCompileOptionsFamily(o2));
  o2.memLimitBytes = 8 * 1024;
  EXPECT_NE(hashCompileOptionsFamily(o1), hashCompileOptionsFamily(o2));

  // Codegen-only knobs are neutralized; analysis-relevant knobs are not.
  CompileOptions o3 = o1;
  o3.backendName = "cuda";
  o3.kernelName = "other";
  o3.elementType = "double";
  EXPECT_EQ(hashCompileOptionsFamily(o1), hashCompileOptionsFamily(o3));
  o3.stageEverything = true;
  EXPECT_NE(hashCompileOptionsFamily(o1), hashCompileOptionsFamily(o3));
}

}  // namespace
}  // namespace emm
