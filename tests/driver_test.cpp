// Tests for the unified emm::Compiler driver API: builder configuration,
// pass skipping/replacement, backend registry lookup, structured results,
// and diagnostics ordering.
#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "ir/interp.h"
#include "kernels/blocks.h"

namespace emm {
namespace {

// ---- Builder configuration and structured results. ----

TEST(CompilerBuilder, FullPipelineOnMatmul) {
  const i64 n = 32, m = 32, k = 32;
  CompileResult r = Compiler(buildMatmulBlock(n, m, k))
                        .parameters({n, m, k})
                        .memoryLimitBytes(1536 * 4)
                        .tileCandidates({{4, 8, 16}, {4, 8, 16}, {4, 8, 16}})
                        .backend("c")
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_TRUE(r.havePlan);
  EXPECT_EQ(r.plan.spaceLoops.size(), 2u);
  ASSERT_TRUE(r.kernel.has_value());
  EXPECT_NE(r.unit(), nullptr);
  EXPECT_NE(r.dataPlan(), nullptr);
  EXPECT_FALSE(r.artifact.empty());
  EXPECT_TRUE(r.search.eval.feasible);
  EXPECT_GT(r.search.evaluations, 1);

  // One timing entry per standard pass, in pipeline order, all executed.
  // Passes may interleave named sub-stage entries ("pass.sub") after their
  // own — the tilesearch pass reports plan-build vs evaluation time.
  std::vector<std::string> order = Compiler().passNames();
  std::vector<const PassTiming*> mainEntries;
  for (const PassTiming& t : r.timings) {
    if (t.pass.find('.') != std::string::npos) {
      EXPECT_TRUE(t.ran);
      continue;
    }
    mainEntries.push_back(&t);
  }
  ASSERT_EQ(mainEntries.size(), order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(mainEntries[i]->pass, order[i]);
    EXPECT_TRUE(mainEntries[i]->ran);
    EXPECT_FALSE(mainEntries[i]->skipped);
    EXPECT_GE(mainEntries[i]->millis, 0.0);
  }
  // The searched pipeline surfaces the parametric-analysis split.
  EXPECT_NE(r.timing("tilesearch.plan"), nullptr);
  EXPECT_NE(r.timing("tilesearch.eval"), nullptr);
  EXPECT_TRUE(r.search.parametric) << r.search.parametricReason;
}

TEST(CompilerBuilder, CompiledKernelPreservesSemantics) {
  const i64 n = 24, m = 16, k = 20;
  CompileResult r = Compiler(buildMatmulBlock(n, m, k))
                        .parameters({n, m, k})
                        .tileSizes({4, 4, 8})
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  ASSERT_TRUE(r.kernel.has_value());

  ArrayStore store(r.block().arrays);
  store.fillAllPattern(13);
  std::vector<double> a = store.raw(0), b = store.raw(1), c = store.raw(2);
  IntVec ext = {n, m, k};
  ext.resize(r.kernel->analysis.tileBlock->paramNames.size(), 0);
  executeCodeUnit(r.kernel->unit, ext, store);
  referenceMatmul(a, b, c, n, m, k);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < m; ++j) ASSERT_NEAR(store.get(2, {i, j}), c[i * m + j], 1e-9);
}

TEST(CompilerBuilder, ExplicitTileEvaluatesInsteadOfSearching) {
  const i64 n = 32;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .tileSizes({8, 8, 8})
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_EQ(r.search.evaluations, 1);  // evaluated, not searched
  EXPECT_EQ(r.search.subTile, (std::vector<i64>{8, 8, 8}));
  EXPECT_TRUE(r.search.eval.feasible);
  EXPECT_GT(r.search.eval.footprint, 0);
}

TEST(CompilerBuilder, ReusableAcrossCompiles) {
  const i64 n = 16;
  Compiler c(buildMatmulBlock(n, n, n));
  c.parameters({n, n, n}).tileSizes({4, 4, 4});
  CompileResult first = c.compile();
  CompileResult second = c.backend("cuda").kernelName("mm").compile();
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok) << renderDiagnostics(second.diagnostics);
  EXPECT_NE(second.artifact.find("__global__ void mm("), std::string::npos);
}

TEST(CompilerBuilder, CompileWithoutSourceThrows) {
  Compiler c;
  EXPECT_THROW(c.compile(), ApiError);
}

// ---- Pipeline shapes. ----

TEST(CompilerPipeline, ScratchpadOnlyFigure1) {
  CompileResult r = Compiler(buildFigure1Block())
                        .scratchpadOnly()
                        .stageEverything(true)
                        .partition(PartitionMode::PerArrayUnion)
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_FALSE(r.kernel.has_value());
  ASSERT_TRUE(r.scratchpadUnit.has_value());
  ASSERT_NE(r.dataPlan(), nullptr);
  EXPECT_EQ(r.dataPlan()->partitions.size(), 2u);  // one buffer per array
  EXPECT_NE(r.artifact.find("LA0"), std::string::npos) << r.artifact;

  // The generated unit is semantically equivalent to the source block.
  ArrayStore got(r.block().arrays), want(r.block().arrays);
  got.fillAllPattern(7);
  want.fillAllPattern(7);
  executeCodeUnit(*r.unit(), {}, got);
  executeReference(r.block(), {}, want);
  EXPECT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0);
}

TEST(CompilerPipeline, FallsBackOnInterBlockSyncBands) {
  // 1-D Jacobi: after shift+skew the band needs inter-block sync, so the
  // Figure-3 tiler does not apply; the driver reports the analysis instead.
  CompileResult r =
      Compiler(buildJacobiBlock(64, 8)).parameters({64, 8}).compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_TRUE(r.plan.needsInterBlockSync);
  EXPECT_FALSE(r.kernel.has_value());
  EXPECT_FALSE(r.scratchpadUnit.has_value());
  ASSERT_TRUE(r.blockPlan.has_value());
  EXPECT_FALSE(r.blockPlan->partitions.empty());
  EXPECT_FALSE(r.appliedSkews.empty());  // the skew was applied and reported
  bool sawWarning = false;
  for (const Diagnostic& d : r.diagnostics)
    sawWarning |= d.severity == Severity::Warning && d.stage == "transform";
  EXPECT_TRUE(sawWarning) << renderDiagnostics(r.diagnostics);
}

// ---- Pass skipping and replacement. ----

TEST(CompilerPasses, SkipCodegenLeavesArtifactEmpty) {
  const i64 n = 16;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .tileSizes({4, 4, 4})
                        .skipPass("codegen")
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_TRUE(r.artifact.empty());
  ASSERT_NE(r.timing("codegen"), nullptr);
  EXPECT_TRUE(r.timing("codegen")->skipped);
  EXPECT_FALSE(r.timing("codegen")->ran);
  EXPECT_TRUE(r.kernel.has_value());  // earlier passes unaffected
}

TEST(CompilerPasses, SkipTilingFallsBackToBlockAnalysis) {
  const i64 n = 16;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .tileSizes({4, 4, 4})
                        .skipPass("tiling")
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_FALSE(r.kernel.has_value());
  ASSERT_TRUE(r.blockPlan.has_value());  // smem pass analyzed the block
  EXPECT_TRUE(r.artifact.empty());       // nothing executable to emit
}

TEST(CompilerPasses, ReplacePassInjectsCustomStage) {
  // Pin the sub-tile through a replacement tilesearch pass.
  class FixedTilePass : public Pass {
  public:
    FixedTilePass() : Pass("tilesearch") {}
    void run(CompileState& s) override {
      s.search.subTile = {2, 2, 16};
      s.search.eval.feasible = true;
      s.search.evaluations = 0;
      s.note(name(), "fixed tile injected");
    }
  };
  const i64 n = 16;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .replacePass("tilesearch", std::make_shared<FixedTilePass>())
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  ASSERT_TRUE(r.kernel.has_value());
  EXPECT_EQ(r.kernel->analysis.subTile, (std::vector<i64>{2, 2, 16}));
  bool sawInjected = false;
  for (const Diagnostic& d : r.diagnostics)
    sawInjected |= d.message == "fixed tile injected";
  EXPECT_TRUE(sawInjected);
}

TEST(CompilerPasses, UnknownPassNamesThrow) {
  Compiler c;
  EXPECT_THROW(c.skipPass("linker"), ApiError);
  EXPECT_THROW(c.replacePass("linker", nullptr), ApiError);
}

// ---- Backend registry. ----

TEST(BackendRegistryTest, StandardBackendsRegistered) {
  BackendRegistry& reg = BackendRegistry::global();
  ASSERT_NE(reg.lookup("c"), nullptr);
  ASSERT_NE(reg.lookup("cuda"), nullptr);
  ASSERT_NE(reg.lookup("cell"), nullptr);
  EXPECT_EQ(reg.lookup("c")->name(), "c");
  EXPECT_EQ(reg.lookup("spe"), nullptr);
  std::vector<std::string> names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "c"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cuda"), names.end());
}

TEST(BackendRegistryTest, UnknownBackendIsStructuredError) {
  const i64 n = 16;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .tileSizes({4, 4, 4})
                        .backend("vliw")
                        .compile();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.firstError().find("unknown backend 'vliw'"), std::string::npos)
      << r.firstError();
  ASSERT_FALSE(r.diagnostics.empty());
  const Diagnostic& last = r.diagnostics.back();
  EXPECT_EQ(last.severity, Severity::Error);
  EXPECT_EQ(last.stage, "codegen");
  // Earlier stages still produced their structured results.
  EXPECT_TRUE(r.kernel.has_value());
}

TEST(BackendRegistryTest, CudaBackendThroughDriver) {
  const i64 ni = 16, nj = 8, w = 4;
  CompileResult r = Compiler(buildMeBlock(ni, nj, w))
                        .parameters({ni, nj, w})
                        .tileSizes({4, 4, 4, 4})
                        .backend("cuda")
                        .kernelName("me_sad")
                        .compile();
  ASSERT_TRUE(r.ok) << renderDiagnostics(r.diagnostics);
  EXPECT_NE(r.artifact.find("__global__ void me_sad("), std::string::npos) << r.artifact;
  EXPECT_NE(r.artifact.find("__syncthreads();"), std::string::npos);
}

// ---- Diagnostics ordering. ----

TEST(CompilerDiagnostics, OrderedByPipelineStage) {
  const i64 n = 16;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .tileSizes({4, 4, 4})
                        .backend("vliw")  // forces a final codegen error
                        .compile();
  ASSERT_GE(r.diagnostics.size(), 2u);
  // Stages appear in non-decreasing pipeline position.
  std::vector<std::string> order = Compiler().passNames();
  auto position = [&](const std::string& stage) {
    for (size_t i = 0; i < order.size(); ++i)
      if (order[i] == stage) return static_cast<int>(i);
    return -1;
  };
  int prev = -1;
  for (const Diagnostic& d : r.diagnostics) {
    int pos = position(d.stage);
    ASSERT_GE(pos, 0) << "diagnostic from unknown stage " << d.stage;
    EXPECT_GE(pos, prev) << renderDiagnostics(r.diagnostics);
    prev = pos;
  }
  // The error terminates the list.
  EXPECT_EQ(r.diagnostics.back().severity, Severity::Error);
  EXPECT_EQ(r.diagnostics.back().stage, "codegen");
}

TEST(CompilerDiagnostics, InfeasibleSearchReportsError) {
  const i64 n = 32;
  CompileResult r = Compiler(buildMatmulBlock(n, n, n))
                        .parameters({n, n, n})
                        .memoryLimitBytes(4)  // one element: nothing fits
                        .compile();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.firstError().find("no feasible tile"), std::string::npos) << r.firstError();
  // The pipeline stopped: no kernel, no artifact.
  EXPECT_FALSE(r.kernel.has_value());
  EXPECT_TRUE(r.artifact.empty());
}

}  // namespace
}  // namespace emm
