// Coverage for auxiliary behaviors: printable diagnostics, trace
// accumulation, AffExpr rendering corner cases, HNF properties, loop-bound
// string forms, and emitted structure differences under hoisting.
#include <gtest/gtest.h>

#include "gpusim/machine.h"
#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "linalg/matrix.h"
#include "poly/polyhedron.h"
#include "tiling/multilevel.h"

namespace emm {
namespace {

TEST(Printing, AffExprForms) {
  EXPECT_EQ(AffExpr::constant(0).str(), "0");
  EXPECT_EQ(AffExpr::constant(-3).str(), "-3");
  EXPECT_EQ(AffExpr::var("i").str(), "i");
  EXPECT_EQ(AffExpr::var("i", -1).str(), "-i");
  AffExpr e = AffExpr::var("i", -2);
  e.cnst = -7;
  EXPECT_EQ(e.str(), "-2*i - 7");
  AffExpr d = AffExpr::var("n");
  d.den = 4;
  EXPECT_EQ(d.str(true), "ceild(n, 4)");
  EXPECT_EQ(d.str(false), "floord(n, 4)");
}

TEST(Printing, PolyhedronStr) {
  Polyhedron p(1, 1);
  p.addInequality({1, 0, 0});
  p.addInequality({-1, 1, -1});
  std::string s = p.str();
  EXPECT_NE(s.find("dim=1"), std::string::npos);
  EXPECT_NE(s.find(">= 0"), std::string::npos);
}

TEST(Printing, MatrixStr) {
  IntMat m{{1, -2}, {3, 4}};
  std::string s = m.str();
  EXPECT_NE(s.find("-2"), std::string::npos);
  EXPECT_NE(s.find("["), std::string::npos);
}

TEST(Printing, SimResultStr) {
  Machine m = Machine::geforce8800gtx();
  LaunchConfig l;
  l.numBlocks = 16;
  l.threadsPerBlock = 64;
  BlockWork w;
  w.computeOps = 1000;
  SimResult r = simulateLaunch(m, l, w);
  EXPECT_NE(r.str().find("ms"), std::string::npos);
  LaunchConfig bad = l;
  bad.smemBytesPerBlock = 1 << 20;
  SimResult rb = simulateLaunch(m, bad, w);
  EXPECT_NE(rb.str().find("infeasible"), std::string::npos);
}

TEST(Traces, Accumulation) {
  MemTrace a;
  a.globalReads = 1;
  a.localWrites = 2;
  a.syncs = 3;
  MemTrace b;
  b.globalReads = 10;
  b.copyElements = 5;
  a += b;
  EXPECT_EQ(a.globalReads, 11);
  EXPECT_EQ(a.localWrites, 2);
  EXPECT_EQ(a.copyElements, 5);
}

TEST(Hnf, ColumnLatticeInvariants) {
  // HNF pivots divide subsequent pivots' rows deterministically; for a
  // diagonal matrix the HNF is the absolute diagonal.
  IntMat d{{-3, 0}, {0, 5}};
  IntMat h = hermiteNormalForm(d);
  EXPECT_EQ(h.at(0, 0), 3);
  EXPECT_EQ(h.at(1, 1), 5);
  // Lattice membership: every column of A is an integer combination of HNF
  // columns; verify for a shear.
  IntMat a{{2, 4}, {0, 2}};
  IntMat hh = hermiteNormalForm(a);
  // |det| preserved: 4.
  EXPECT_EQ(std::abs(hh.at(0, 0) * hh.at(1, 1)), 4);
}

TEST(Hoisting, EmittedPositionsDiffer) {
  // With hoisting, "move-in Lout" appears before the k-origin loop; without
  // it, after (inside the innermost sub-tile loop).
  ProgramBlock block = buildMeBlock(8, 8, 4);
  auto deps = computeDependences(block);
  ParallelismPlan plan = findParallelism(block, deps);
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};
  TileConfig tc;
  tc.subTile = {4, 4, 2, 2};
  tc.blockTile = {8, 8};
  tc.threadTile = {1, 1};

  TiledKernel hoisted = buildTiledKernel(block, plan, tc, smem);
  tc.hoistCopies = false;
  TiledKernel flat = buildTiledKernel(block, plan, tc, smem);

  std::string ch = emitC(hoisted.unit);
  std::string cf = emitC(flat.unit);
  size_t hoistPos = ch.find("move-in Lout");
  size_t loopPos = ch.find("for (o2");
  ASSERT_NE(hoistPos, std::string::npos);
  ASSERT_NE(loopPos, std::string::npos);
  EXPECT_LT(hoistPos, loopPos) << "hoisted move-in must precede the o2 loop";

  size_t flatHoistPos = cf.find("move-in Lout");
  size_t flatLoopPos = cf.find("for (o3");
  ASSERT_NE(flatHoistPos, std::string::npos);
  ASSERT_NE(flatLoopPos, std::string::npos);
  EXPECT_GT(flatHoistPos, flatLoopPos) << "unhoisted move-in sits inside the o3 loop";
}

TEST(Machine, CellVsGpuThroughputShape) {
  // Same compute-bound work: the GPU profile (128 lanes at 1.35 GHz) beats
  // the Cell profile (32 lanes at 3.2 GHz) by roughly the FLOP ratio.
  BlockWork w;
  w.computeOps = 10'000'000;
  LaunchConfig l;
  l.numBlocks = 128;
  l.threadsPerBlock = 256;
  double gpu = simulateLaunch(Machine::geforce8800gtx(), l, w).milliseconds;
  LaunchConfig lc;
  lc.numBlocks = 8;
  lc.threadsPerBlock = 1;
  BlockWork wc;
  wc.computeOps = w.computeOps * 16;  // same total over 8 blocks vs 128
  double cell = simulateLaunch(Machine::cellLike(), lc, wc).milliseconds;
  double flopRatio = (16 * 8 * 1.35) / (8 * 4 * 3.2);  // ~1.69
  EXPECT_NEAR(cell / gpu, flopRatio, flopRatio * 0.5);
}

TEST(Rationals, MixedIntegerInterop) {
  Rat r = Rat(3) + Rat(1, 2);
  EXPECT_EQ(r, Rat(7, 2));
  EXPECT_TRUE(Rat(4, 2).isInteger());
  EXPECT_FALSE(Rat(5, 2).isInteger());
  EXPECT_EQ(Rat(5, 2).sign(), 1);
  EXPECT_EQ(Rat(-5, 2).sign(), -1);
  EXPECT_EQ(Rat(0).sign(), 0);
  EXPECT_DOUBLE_EQ(Rat(1, 4).toDouble(), 0.25);
}

TEST(BlockWorkScaling, RoundsToNearest) {
  BlockWork w;
  w.globalElems = 10;
  w.computeOps = 3;
  BlockWork h = w.scaled(1.0 / 3.0);
  EXPECT_EQ(h.globalElems, 3);
  EXPECT_EQ(h.computeOps, 1);
}

}  // namespace
}  // namespace emm
