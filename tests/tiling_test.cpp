// Tests for multi-level tiling (Section 4): the Figure-3 structure,
// semantics preservation through tiles + scratchpad buffers, footprint
// accounting, hoisting of data-movement code (Section 4.2).
#include <gtest/gtest.h>

#include "ir/emit.h"
#include "ir/interp.h"
#include "kernels/blocks.h"
#include "tiling/multilevel.h"

namespace emm {
namespace {

/// Executes the tiled unit and the reference; arrays must agree.
void expectTiledMatchesReference(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const TileConfig& config, const IntVec& params,
                                 const SmemOptions& smem, MemTrace* traceOut = nullptr) {
  TiledKernel k = buildTiledKernel(block, plan, config, smem);
  ArrayStore got(block.arrays), want(block.arrays);
  got.fillAllPattern(17);
  want.fillAllPattern(17);
  // Tile origins are bound by the sub-tile loops; dummy zeros fill the
  // extended parameter slots.
  IntVec extParams = params;
  extParams.resize(k.analysis.tileBlock->paramNames.size(), 0);
  MemTrace trace = executeCodeUnit(k.unit, extParams, got);
  executeReference(block, params, want);
  EXPECT_EQ(ArrayStore::maxAbsDiff(got, want), 0.0) << emitC(k.unit);
  if (traceOut != nullptr) *traceOut = trace;
}

ParallelismPlan mePlan(const ProgramBlock& block) {
  auto deps = computeDependences(block);
  return findParallelism(block, deps);
}

TEST(Tiling, MeSemanticsWithScratchpad) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 4, 4};
  tc.blockTile = {4, 8};
  tc.threadTile = {1, 1};
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 8, 4}, smem);
}

TEST(Tiling, MeSemanticsWithoutScratchpad) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 4, 4};
  tc.blockTile = {4, 8};
  tc.threadTile = {1, 1};
  tc.useScratchpad = false;
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};
  MemTrace trace;
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 8, 4}, smem, &trace);
  EXPECT_EQ(trace.localReads + trace.localWrites, 0);  // everything global
}

TEST(Tiling, MeScratchpadMovesTrafficOffGlobal) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 4, 4};
  tc.blockTile = {8, 8};
  tc.threadTile = {1, 1};
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};

  MemTrace with, without;
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 8, 4}, smem, &with);
  tc.useScratchpad = false;
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 8, 4}, smem, &without);

  EXPECT_LT(with.globalReads, without.globalReads / 4);
  EXPECT_GT(with.localReads, 0);
}

TEST(Tiling, MatmulSemantics) {
  ProgramBlock block = buildMatmulBlock(8, 6, 10);
  TileConfig tc;
  tc.subTile = {4, 3, 5};
  tc.blockTile = {4, 6};
  tc.threadTile = {2, 2};
  SmemOptions smem;
  smem.sampleParams = {8, 6, 10};
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 6, 10}, smem);
}

TEST(Tiling, NonDividingTileSizes) {
  // Boundary tiles: sizes that do not divide the loop ranges (7 % 3 != 0,
  // 5 % 4 != 0, 9 % 5 != 0). Block tiles stay multiples of sub-tiles.
  ProgramBlock block = buildMatmulBlock(7, 5, 9);
  TileConfig tc;
  tc.subTile = {3, 4, 5};
  tc.blockTile = {6, 4};
  tc.threadTile = {2, 3};
  SmemOptions smem;
  smem.sampleParams = {7, 5, 9};
  expectTiledMatchesReference(block, mePlan(block), tc, {7, 5, 9}, smem);
}

TEST(Tiling, FootprintMatchesInterpreter) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 4, 4};
  tc.blockTile = {4, 8};
  tc.threadTile = {1, 1};
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};
  TiledKernel k = buildTiledKernel(block, mePlan(block), tc, smem);
  IntVec extParams = {8, 8, 4};
  extParams.resize(k.analysis.tileBlock->paramNames.size(), 0);
  EXPECT_EQ(k.footprintPerBlock({8, 8, 4}), scratchpadFootprint(k.unit, extParams));
  // Hand computation: Lout 4x4 + Lcur 7x7 + Lref 7x7 = 16 + 49 + 49.
  EXPECT_EQ(k.footprintPerBlock({8, 8, 4}), 16 + 49 + 49);
}

TEST(Tiling, NumBlockTiles) {
  ProgramBlock block = buildMeBlock(32, 16, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 4, 4};
  tc.blockTile = {8, 16};
  tc.threadTile = {1, 1};
  SmemOptions smem;
  smem.sampleParams = {32, 16, 4};
  TiledKernel k = buildTiledKernel(block, mePlan(block), tc, smem);
  EXPECT_EQ(k.numBlockTiles({32, 16, 4}), 4);  // 32/8 x 16/16
}

TEST(Tiling, HoistingReducesCopies) {
  // out's copy code does not depend on the k/l tile origins, so hoisting
  // lifts it above those loops: fewer copy executions than unhoisted.
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 2, 2};  // multiple k,l sub-tiles per (i,j) tile
  tc.blockTile = {8, 8};
  tc.threadTile = {1, 1};
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};

  MemTrace hoisted, unhoisted;
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 8, 4}, smem, &hoisted);
  tc.hoistCopies = false;
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 8, 4}, smem, &unhoisted);
  EXPECT_LT(hoisted.copyElements, unhoisted.copyElements);
  EXPECT_LT(hoisted.globalReads, unhoisted.globalReads);
}

TEST(Tiling, HoistLevels) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};
  auto plan = mePlan(block);
  TileAnalysis ta = analyzeTile(block, plan, {4, 4, 2, 2}, smem);
  ASSERT_EQ(ta.plan.partitions.size(), 3u);
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    const PartitionPlan& part = ta.plan.partitions[p];
    if (part.arrayId == 2) {
      EXPECT_EQ(ta.hoistLevel[p], 2) << "out depends only on i,j origins";
    } else {
      EXPECT_EQ(ta.hoistLevel[p], 4) << "cur/ref depend on all origins";
    }
  }
  // Without hoisting everything sits innermost.
  TileAnalysis noHoist = analyzeTile(block, plan, {4, 4, 2, 2}, smem, false);
  for (size_t p = 0; p < noHoist.plan.partitions.size(); ++p)
    EXPECT_EQ(noHoist.hoistLevel[p], 4);
}

TEST(Tiling, EmitterShowsFigure3Structure) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  TileConfig tc;
  tc.subTile = {4, 4, 4, 4};
  tc.blockTile = {4, 8};
  tc.threadTile = {1, 1};
  SmemOptions smem;
  smem.sampleParams = {8, 8, 4};
  TiledKernel k = buildTiledKernel(block, mePlan(block), tc, smem);
  std::string code = emitC(k.unit);
  EXPECT_NE(code.find("FORALL_BLOCKS"), std::string::npos) << code;
  EXPECT_NE(code.find("FORALL_THREADS"), std::string::npos) << code;
  EXPECT_NE(code.find("move-in"), std::string::npos);
  EXPECT_NE(code.find("move-out"), std::string::npos);
  EXPECT_NE(code.find("__syncthreads"), std::string::npos);
}

TEST(Tiling, RejectsInvalidConfigs) {
  ProgramBlock block = buildMeBlock(8, 8, 4);
  auto plan = mePlan(block);
  SmemOptions smem;
  TileConfig tc;
  tc.subTile = {4, 4, 4};  // wrong arity
  tc.blockTile = {4, 8};
  tc.threadTile = {1, 1};
  EXPECT_THROW(buildTiledKernel(block, plan, tc, smem), ApiError);
  tc.subTile = {4, 4, 4, 0};  // zero tile
  EXPECT_THROW(buildTiledKernel(block, plan, tc, smem), ApiError);
}

class TileSizeSweep
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64>> {};

TEST_P(TileSizeSweep, MeAlwaysCorrect) {
  auto [ti, tj, tk, tl] = GetParam();
  ProgramBlock block = buildMeBlock(8, 6, 4);
  TileConfig tc;
  tc.subTile = {ti, tj, tk, tl};
  tc.blockTile = {2 * ti, tj};  // conforming: multiples of the sub-tiles
  tc.threadTile = {2, 3};
  SmemOptions smem;
  smem.sampleParams = {8, 6, 4};
  expectTiledMatchesReference(block, mePlan(block), tc, {8, 6, 4}, smem);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TileSizeSweep,
                         ::testing::Values(std::tuple<i64, i64, i64, i64>{1, 1, 1, 1},
                                           std::tuple<i64, i64, i64, i64>{2, 3, 4, 1},
                                           std::tuple<i64, i64, i64, i64>{8, 6, 4, 4},
                                           std::tuple<i64, i64, i64, i64>{3, 5, 2, 3},
                                           std::tuple<i64, i64, i64, i64>{8, 8, 8, 8}));

}  // namespace
}  // namespace emm
