// Dependence analysis in the polyhedral model.
//
// For every pair of references to the same array where at least one is a
// write, we build dependence polyhedra over the combined space
// [src iteration vector, dst iteration vector, params]: both instances in
// their domains, accessing the same element, with the source scheduled
// strictly before the destination. Lexicographic precedence is split into
// one polyhedron per common schedule depth, as is standard.
//
// Consumers:
//  - the transformation framework (permutable bands need non-negative
//    dependence components; skewing legality),
//  - the Section 3.1.4 copy-set optimization (live-in / live-out elements),
//  - tests asserting dependube preservation of generated code.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace emm {

enum class DepKind { Flow, Anti, Output };  // RAW, WAR, WAW

struct Dependence {
  int srcStmt = -1;
  int dstStmt = -1;
  int srcAccess = -1;  ///< index into src statement's accesses
  int dstAccess = -1;
  DepKind kind = DepKind::Flow;
  /// dim = srcDim + dstDim; column layout [src iters, dst iters, params, 1].
  Polyhedron poly;
  int srcDim = 0;
  int dstDim = 0;

  std::string str(const ProgramBlock& block) const;
};

/// Sign summary of an integer quantity over a (possibly unbounded) set.
enum class SignRange {
  Zero,         ///< always 0
  NonNegative,  ///< >= 0, sometimes > 0
  NonPositive,  ///< <= 0, sometimes < 0
  Positive,     ///< always >= 1
  Negative,     ///< always <= -1
  Mixed,        ///< takes both signs (or unknown)
};

/// All dependences of the block (self-dependences included).
std::vector<Dependence> computeDependences(const ProgramBlock& block);

/// Sign of the dependence distance on common loop `loop` (i.e.
/// dst_iter[loop] - src_iter[loop]) over the whole dependence polyhedron,
/// universally over parameters. Conservative: returns Mixed when bounds
/// cannot be established.
SignRange distanceSign(const Dependence& dep, int loop);

/// Combines per-dependence signs into a per-loop summary across `deps`
/// restricted to loops common to both statements.
SignRange combineSigns(SignRange a, SignRange b);

}  // namespace emm
