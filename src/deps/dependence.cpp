#include "deps/dependence.h"

#include <algorithm>
#include <sstream>

namespace emm {

namespace {

/// Embeds a constraint row of a statement (over [iters, p, 1]) into the
/// combined dependence space [src iters, dst iters, p, 1].
IntVec embedRow(const IntVec& row, int stmtDim, int offset, int srcDim, int dstDim, int nparam) {
  IntVec wide(srcDim + dstDim + nparam + 1, 0);
  for (int j = 0; j < stmtDim; ++j) wide[offset + j] = row[j];
  for (int j = 0; j < nparam + 1; ++j) wide[srcDim + dstDim + j] = row[stmtDim + j];
  return wide;
}

/// Schedule row of a statement evaluated in combined space (same embedding).
IntVec embedScheduleRow(const IntMat& sched, int row, int stmtDim, int offset, int srcDim,
                        int dstDim, int nparam) {
  if (row >= sched.rows()) {
    // Shorter schedules are padded with zero time coordinates.
    return IntVec(srcDim + dstDim + nparam + 1, 0);
  }
  return embedRow(sched.row(row), stmtDim, offset, srcDim, dstDim, nparam);
}

}  // namespace

std::string Dependence::str(const ProgramBlock& block) const {
  std::ostringstream os;
  const char* kinds[] = {"flow", "anti", "output"};
  os << kinds[static_cast<int>(kind)] << " " << block.statements[srcStmt].name << " -> "
     << block.statements[dstStmt].name;
  return os.str();
}

std::vector<Dependence> computeDependences(const ProgramBlock& block) {
  block.validate();
  std::vector<Dependence> out;
  int nparam = block.nparam();

  for (size_t s = 0; s < block.statements.size(); ++s) {
    for (size_t t = 0; t < block.statements.size(); ++t) {
      const Statement& src = block.statements[s];
      const Statement& dst = block.statements[t];
      int sd = src.dim(), td = dst.dim();

      for (size_t sa = 0; sa < src.accesses.size(); ++sa) {
        for (size_t ta = 0; ta < dst.accesses.size(); ++ta) {
          const Access& a = src.accesses[sa];
          const Access& b = dst.accesses[ta];
          if (a.arrayId != b.arrayId) continue;
          if (!a.isWrite && !b.isWrite) continue;
          DepKind kind = a.isWrite ? (b.isWrite ? DepKind::Output : DepKind::Flow) : DepKind::Anti;

          // Base conjunction: both domains + same element.
          Polyhedron base(sd + td, nparam);
          for (int r = 0; r < src.domain.equalities().rows(); ++r)
            base.addEquality(embedRow(src.domain.equalities().row(r), sd, 0, sd, td, nparam));
          for (int r = 0; r < src.domain.inequalities().rows(); ++r)
            base.addInequality(embedRow(src.domain.inequalities().row(r), sd, 0, sd, td, nparam));
          for (int r = 0; r < dst.domain.equalities().rows(); ++r)
            base.addEquality(embedRow(dst.domain.equalities().row(r), td, sd, sd, td, nparam));
          for (int r = 0; r < dst.domain.inequalities().rows(); ++r)
            base.addInequality(
                embedRow(dst.domain.inequalities().row(r), td, sd, sd, td, nparam));
          for (int r = 0; r < a.fn.rows(); ++r) {
            IntVec ra = embedRow(a.fn.row(r), sd, 0, sd, td, nparam);
            IntVec rb = embedRow(b.fn.row(r), td, sd, sd, td, nparam);
            IntVec eq(ra.size());
            for (size_t j = 0; j < ra.size(); ++j) eq[j] = subChecked(ra[j], rb[j]);
            base.addEquality(eq);
          }
          if (!base.simplify() || base.isEmpty()) continue;

          // Precedence: time(src) lexicographically < time(dst); one
          // polyhedron per depth at which the schedules first differ.
          int maxTime = std::max(src.schedule.rows(), dst.schedule.rows());
          for (int level = 0; level < maxTime; ++level) {
            Polyhedron cand = base;
            bool degenerate = false;
            for (int l = 0; l < level; ++l) {
              IntVec ts = embedScheduleRow(src.schedule, l, sd, 0, sd, td, nparam);
              IntVec tt = embedScheduleRow(dst.schedule, l, td, sd, sd, td, nparam);
              IntVec eq(ts.size());
              for (size_t j = 0; j < ts.size(); ++j) eq[j] = subChecked(tt[j], ts[j]);
              cand.addEquality(eq);
            }
            {
              IntVec ts = embedScheduleRow(src.schedule, level, sd, 0, sd, td, nparam);
              IntVec tt = embedScheduleRow(dst.schedule, level, td, sd, sd, td, nparam);
              IntVec gt(ts.size());
              for (size_t j = 0; j < ts.size(); ++j) gt[j] = subChecked(tt[j], ts[j]);
              // tt - ts >= 1
              bool allZero = true;
              for (size_t j = 0; j + 1 < gt.size(); ++j)
                if (gt[j] != 0) allZero = false;
              if (allZero && gt.back() <= 0) degenerate = true;  // cannot be >= 1
              gt.back() = subChecked(gt.back(), 1);
              cand.addInequality(gt);
            }
            if (degenerate) continue;
            if (!cand.simplify() || cand.isEmpty()) continue;
            Dependence d;
            d.srcStmt = static_cast<int>(s);
            d.dstStmt = static_cast<int>(t);
            d.srcAccess = static_cast<int>(sa);
            d.dstAccess = static_cast<int>(ta);
            d.kind = kind;
            d.poly = std::move(cand);
            d.srcDim = sd;
            d.dstDim = td;
            out.push_back(std::move(d));
          }
        }
      }
    }
  }
  return out;
}

SignRange distanceSign(const Dependence& dep, int loop) {
  EMM_REQUIRE(loop >= 0 && loop < dep.srcDim && loop < dep.dstDim,
              "distanceSign: loop not common to both statements");
  // Introduce delta = dst[loop] - src[loop] as variable 0 and eliminate
  // everything else, parameters included (universal sign over params).
  Polyhedron p = dep.poly.withInsertedVars(0, 1);
  IntVec eq(p.cols(), 0);
  eq[0] = -1;                       // -delta
  eq[1 + loop] = -1;                // -src[loop]
  eq[1 + dep.srcDim + loop] = 1;    // +dst[loop]
  p.addEquality(eq);
  Polyhedron all = p.paramsAsVars();
  while (all.dim() > 1) all = all.eliminated(all.dim() - 1);
  if (all.isEmpty()) return SignRange::Zero;  // empty dependence: vacuous

  // Scan remaining constraints on delta.
  bool hasLower = false, hasUpper = false;
  i64 lo = INT64_MIN, hi = INT64_MAX;
  auto absorb = [&](const IntVec& row) {
    i64 c = row[0], k = row.back();
    if (c == 0) return;
    if (c > 0) {
      // c*delta + k >= 0 -> delta >= ceil(-k/c).
      hasLower = true;
      lo = std::max(lo, ceilDiv(-k, c));
    } else {
      hasUpper = true;
      hi = std::min(hi, floorDiv(k, -c));
    }
  };
  for (int r = 0; r < all.equalities().rows(); ++r) {
    IntVec row = all.equalities().row(r);
    if (row[0] != 0) {
      // c*delta + k == 0 -> delta == -k/c (if integral; else empty handled above)
      i64 c = row[0], k = row.back();
      if ((-k) % c == 0) {
        i64 v = -k / c;
        lo = std::max(lo, v);
        hi = std::min(hi, v);
        hasLower = hasUpper = true;
      }
    }
  }
  for (int r = 0; r < all.inequalities().rows(); ++r) absorb(all.inequalities().row(r));

  if (hasLower && hasUpper && lo == 0 && hi == 0) return SignRange::Zero;
  if (hasLower && lo >= 1) return SignRange::Positive;
  if (hasUpper && hi <= -1) return SignRange::Negative;
  if (hasLower && lo >= 0) return SignRange::NonNegative;
  if (hasUpper && hi <= 0) return SignRange::NonPositive;
  return SignRange::Mixed;
}

SignRange combineSigns(SignRange a, SignRange b) {
  if (a == b) return a;
  auto nonneg = [](SignRange s) {
    return s == SignRange::Zero || s == SignRange::NonNegative || s == SignRange::Positive;
  };
  auto nonpos = [](SignRange s) {
    return s == SignRange::Zero || s == SignRange::NonPositive || s == SignRange::Negative;
  };
  if (nonneg(a) && nonneg(b)) {
    if ((a == SignRange::Positive && b == SignRange::Positive)) return SignRange::Positive;
    return SignRange::NonNegative;
  }
  if (nonpos(a) && nonpos(b)) {
    if ((a == SignRange::Negative && b == SignRange::Negative)) return SignRange::Negative;
    return SignRange::NonPositive;
  }
  return SignRange::Mixed;
}

}  // namespace emm
