#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>

#include "driver/compiler.h"
#include "kernels/blocks.h"
#include "support/diagnostics.h"
#include "support/thread_pool.h"

namespace emm::svc {

namespace {

/// Fills a sockaddr_un; the caller has validated the path length.
sockaddr_un socketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

ServiceServer::ServiceServer(Options options)
    : options_(std::move(options)), cache_(options_.cacheCapacity, options_.cacheShards) {
  if (!options_.cacheDir.empty()) disk_ = std::make_unique<DiskPlanCache>(options_.cacheDir);
}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  std::lock_guard<std::mutex> lk(stopMutex_);
  EMM_REQUIRE(!running_.load(), "ServiceServer::start() called while already running");
  const std::string& path = options_.socketPath;
  EMM_REQUIRE(!path.empty(), "ServiceServer needs a socket path");
  EMM_REQUIRE(path.size() < sizeof(sockaddr_un{}.sun_path),
              "socket path '" + path + "' exceeds the unix-domain limit");
  sockaddr_un addr = socketAddress(path);
  // A leftover socket file is common after a crash. Probe it: a live daemon
  // accepts the connect and we refuse to usurp it; a stale file is removed.
  if (std::filesystem::exists(path)) {
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EMM_REQUIRE(probe >= 0, "cannot create a probe socket");
    const bool live =
        ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    ::close(probe);
    EMM_REQUIRE(!live, "socket '" + path + "' is already served by a live daemon");
    ::unlink(path.c_str());
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMM_REQUIRE(fd >= 0, "cannot create the listening socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int err = errno;
    ::close(fd);
    throw ApiError("cannot bind '" + path + "': " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw ApiError("cannot listen on '" + path + "': " + std::strerror(err));
  }
  listenFd_ = fd;
  pool_ = std::make_unique<ThreadPool>(options_.jobs > 0 ? options_.jobs
                                                         : ThreadPool::defaultConcurrency());
  stopping_.store(false);
  running_.store(true);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void ServiceServer::stop() {
  std::lock_guard<std::mutex> lk(stopMutex_);
  if (!running_.load()) return;
  stopping_.store(true);
  // Wake the accept loop (shutdown on a listening socket interrupts
  // accept); the fd is closed only after the thread is joined so its number
  // cannot be reused under the loop.
  ::shutdown(listenFd_, SHUT_RDWR);
  if (acceptThread_.joinable()) acceptThread_.join();
  ::close(listenFd_);
  listenFd_ = -1;
  // Wake idle connection readers without touching their write side, so
  // in-flight compiles still deliver replies and the drain notice below
  // reaches the peer.
  {
    std::lock_guard<std::mutex> lk2(mutex_);
    for (const std::unique_ptr<Connection>& c : connections_)
      if (!c->done.load()) ::shutdown(c->fd, SHUT_RD);
  }
  std::list<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lk2(mutex_);
    drained.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& c : drained)
    if (c->thread.joinable()) c->thread.join();
  // All compiles finished with their connections; disk writes are
  // synchronous inside compile, so the store is flushed. Drop the pool and
  // the socket file last.
  pool_.reset();
  std::error_code ec;
  std::filesystem::remove(options_.socketPath, ec);
  running_.store(false);
}

WireStats ServiceServer::stats() const {
  // Counters are relaxed atomics: a STATS request snapshots them without
  // blocking any connection's reply path (and vice versa).
  WireStats s;
  s.connections = connectionCount_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.compileErrors = compileErrors_.load(std::memory_order_relaxed);
  s.protocolErrors = protocolErrors_.load(std::memory_order_relaxed);
  s.familyFastPath = familyFastPath_.load(std::memory_order_relaxed);
  s.memory = cache_.stats();
  if (disk_ != nullptr) {
    s.haveDisk = true;
    s.disk = disk_->stats();
  }
  return s;
}

void ServiceServer::acceptLoop() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down by stop(), or fatal
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_.load()) {
      writeFrame(fd, MsgType::ErrorReply, encodeErrorReply({true, "server shutting down"}));
      ::close(fd);
      break;
    }
    connectionCount_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { serveConnection(raw); });
    reapFinishedLocked();
  }
}

void ServiceServer::serveConnection(Connection* conn) {
  const int fd = conn->fd;
  for (;;) {
    MsgType type = MsgType::ErrorReply;
    std::string payload;
    std::string error;
    ReadStatus st = readFrame(fd, type, payload, error);
    if (st == ReadStatus::Eof) {
      // Either the client closed, or stop() shut our read side down to
      // wake us; tell a draining peer why instead of vanishing.
      if (stopping_.load())
        writeFrame(fd, MsgType::ErrorReply, encodeErrorReply({true, "server shutting down"}));
      break;
    }
    if (st == ReadStatus::Error) {
      countProtocolError();
      writeFrame(fd, MsgType::ErrorReply,
                 encodeErrorReply({false, "protocol error: " + error}));
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (stopping_.load()) {
      writeFrame(fd, MsgType::ErrorReply, encodeErrorReply({true, "server shutting down"}));
      break;
    }
    bool keepOpen = true;
    switch (type) {
      case MsgType::CompileRequest:
        keepOpen = handleCompile(fd, payload);
        break;
      case MsgType::StatsRequest:
        keepOpen = writeFrame(fd, MsgType::StatsReply, encodeStatsReply(stats()));
        break;
      default:
        countProtocolError();
        writeFrame(fd, MsgType::ErrorReply,
                   encodeErrorReply({false, "unexpected message type on a request channel"}));
        keepOpen = false;
        break;
    }
    if (!keepOpen) break;
  }
  ::close(fd);
  conn->done.store(true);
}

bool ServiceServer::handleCompile(int fd, const std::string& payload) {
  CompileRequest req;
  try {
    req = decodeCompileRequest(payload);
  } catch (const SerializeError& e) {
    countProtocolError();
    writeFrame(fd, MsgType::ErrorReply,
               encodeErrorReply({false, std::string("bad compile request: ") + e.what()}));
    return false;
  }
  if (req.schemaFingerprint != serializeSchemaFingerprint()) {
    countProtocolError();
    writeFrame(fd, MsgType::ErrorReply,
               encodeErrorReply({false, "plan schema fingerprint mismatch (client and server "
                                        "binaries disagree on the plan format)"}));
    return false;
  }
  // Configure the compile on the connection thread so request mistakes
  // (unknown kernel or pass, malformed block) answer immediately.
  auto compiler = std::make_shared<Compiler>();
  try {
    compiler->options(req.options);
    compiler->cache(&cache_);
    if (disk_ != nullptr) compiler->diskCache(disk_.get());
    for (const std::string& pass : req.skipPasses) compiler->skipPass(pass);
    ProgramBlock block;
    if (!req.kernel.empty()) {
      IntVec unusedParams;
      block = buildKernelByName(req.kernel, req.sizes, unusedParams);
    } else {
      block = std::move(*req.block);
    }
    // Family fast path: when the warm store holds a size-generic record for
    // this kernel family, bind it right here on the connection thread — the
    // family lookup reads the cache shard's epoch-published snapshot (no
    // lock) and the bind is guard evaluation plus a plan-only argmin
    // re-check, microseconds of work. No pool dispatch, no pipeline run, no
    // emission; the reply carries the record's artifact with this request's
    // runtime arguments filled in.
    const auto bindStart = std::chrono::steady_clock::now();
    if (std::optional<CompileResult> bound = compiler->tryBindFamily(block)) {
      const double bindMillis = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - bindStart)
                                    .count();
      familyFastPath_.fetch_add(1, std::memory_order_relaxed);
      compiles_.fetch_add(1, std::memory_order_relaxed);
      return writeFrame(fd, MsgType::CompileReply, encodeCompileReply(*bound, bindMillis));
    }
    compiler->source(std::move(block));
  } catch (const ApiError& e) {
    countProtocolError();
    writeFrame(fd, MsgType::ErrorReply, encodeErrorReply({false, e.what()}));
    return false;
  }
  // Dispatch onto the shared pool: CPU concurrency stays bounded by `jobs`
  // no matter how many clients are connected, and identical concurrent
  // requests collapse to one pipeline run via the cache's single-flight.
  auto promise = std::make_shared<std::promise<CompileResult>>();
  std::future<CompileResult> future = promise->get_future();
  const auto start = std::chrono::steady_clock::now();
  pool_->submit([compiler, promise] {
    try {
      promise->set_value(compiler->compile());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  CompileResult result;
  try {
    result = future.get();
  } catch (const std::exception& e) {
    compiles_.fetch_add(1, std::memory_order_relaxed);
    compileErrors_.fetch_add(1, std::memory_order_relaxed);
    writeFrame(fd, MsgType::ErrorReply,
               encodeErrorReply({false, std::string("compile failed: ") + e.what()}));
    return true;
  }
  const double millis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  compiles_.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok) compileErrors_.fetch_add(1, std::memory_order_relaxed);
  return writeFrame(fd, MsgType::CompileReply, encodeCompileReply(result, millis));
}

void ServiceServer::countProtocolError() {
  protocolErrors_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceServer::reapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace emm::svc
