// Wire protocol for the emmapcd compile service.
//
// The daemon (service/server.h, tools/emmapcd.cpp) and its clients
// (service/client.h, `emmapc --connect`) exchange length-prefixed, versioned
// FRAMES over a unix-domain stream socket:
//
//   offset  field
//   0       u32 magic      "EMMR" on the wire (little-endian, like every
//                          multi-byte field — support/serialize encoding)
//   4       u32 version    kWireVersion; readers reject any other value
//   8       u8  type       MsgType
//   9       u64 length     payload byte count, capped at kMaxFramePayloadBytes
//   17      u64 checksum   digestBytes(payload)
//   25      payload        `length` bytes, encoded per MsgType
//
// Requests: CompileRequest (a built-in kernel name + problem sizes, or a
// serialized ProgramBlock, plus the full serialized CompileOptions and the
// skipped-pass list) and StatsRequest (empty payload). Replies:
// CompileReply (server-side hit attribution + the full serialized
// CompileResult), StatsReply (daemon counters + both cache tiers), and
// ErrorReply (diagnostic text; `shuttingDown` marks a graceful-drain
// refusal so clients report "server shutting down" instead of a reset).
//
// Hostile-input discipline mirrors support/serialize: every decoder is
// bounds-checked and throws SerializeError on truncation, bad magic, stale
// version, an oversized length prefix (rejected BEFORE any allocation or
// payload read), checksum mismatch, unknown message type, or trailing
// garbage. Payload schema drift across binaries is caught by the
// serializeSchemaFingerprint() echo every CompileRequest carries: the frame
// version covers the envelope, the schema fingerprint covers the plan
// payloads (version/compat policy: docs/SERVICE.md).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "driver/compiler.h"
#include "driver/disk_cache.h"
#include "driver/options.h"
#include "driver/plan_cache.h"
#include "ir/program.h"
#include "support/serialize.h"

namespace emm::svc {

/// First four wire bytes: 'E' 'M' 'M' 'R' (little-endian u32).
inline constexpr u32 kWireMagic = 0x524D4D45;
/// Frame envelope version; bumped on any framing change. v2 added the
/// familyFastPath counter to the StatsReply payload (the daemon's
/// connection-thread record-bind path).
inline constexpr u32 kWireVersion = 2;
/// Upper bound on a frame payload; a hostile length prefix above this is
/// rejected before any allocation.
inline constexpr u64 kMaxFramePayloadBytes = u64(64) << 20;
/// Fixed frame header size: magic + version + type + length + checksum.
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 1 + 8 + 8;

enum class MsgType : unsigned char {
  CompileRequest = 1,
  StatsRequest = 2,
  CompileReply = 3,
  StatsReply = 4,
  ErrorReply = 5,
};

/// Decoded frame envelope (payload read separately by socket readers).
struct FrameHeader {
  MsgType type = MsgType::ErrorReply;
  u64 payloadBytes = 0;
  u64 checksum = 0;
};

/// Renders header + payload as one contiguous frame.
std::string encodeFrame(MsgType type, std::string_view payload);
/// Decodes exactly kFrameHeaderBytes of header, validating magic, version,
/// type, and the length cap. Throws SerializeError.
FrameHeader decodeFrameHeader(std::string_view header);
/// Validates the payload length and checksum against a decoded header.
/// Throws SerializeError on mismatch.
void verifyFramePayload(const FrameHeader& header, std::string_view payload);
/// Whole-buffer convenience for tests and in-memory use: decodes one frame
/// and rejects trailing bytes.
std::pair<MsgType, std::string> decodeFrame(std::string_view frame);

/// One compile request. Either `kernel` names a built-in (the daemon
/// rebuilds the block from `sizes` via buildKernelByName — the cheap path
/// `emmapc --connect` uses) or `block` ships the full program block;
/// exactly one of the two must be set. `options` is the complete effective
/// option set (problem binding included), so the daemon applies no policy
/// of its own.
struct CompileRequest {
  /// serializeSchemaFingerprint() of the client binary; the server rejects
  /// a mismatch instead of misparsing plan payloads.
  u64 schemaFingerprint = 0;
  std::string kernel;
  std::vector<i64> sizes;
  std::optional<ProgramBlock> block;
  CompileOptions options;
  std::vector<std::string> skipPasses;
};

std::string encodeCompileRequest(const CompileRequest& request);
CompileRequest decodeCompileRequest(std::string_view payload);

/// A compile reply: the full CompileResult plus the SERVER-side cache
/// attribution. The serialized result never carries transport flags
/// (support/serialize strips them), so the daemon's tier attribution rides
/// next to it and clients can distinguish "warm for me" (round-trip time)
/// from "warm on the server" (these flags).
struct WireCompileReply {
  bool serverCacheHit = false;
  bool serverDiskHit = false;
  bool serverFamilyHit = false;
  double serverMillis = 0;  ///< wall-clock of the server-side compile
  /// Client-side: round-trip wall-clock, filled by ServiceClient (never on
  /// the wire).
  double roundTripMillis = 0;
  CompileResult result;
};

std::string encodeCompileReply(const CompileResult& result, double serverMillis);
WireCompileReply decodeCompileReply(std::string_view payload);

/// Daemon counters + both cache tiers, served for a StatsRequest.
struct WireStats {
  i64 connections = 0;
  i64 requests = 0;
  i64 compiles = 0;
  i64 compileErrors = 0;   ///< requests whose pipeline failed
  i64 protocolErrors = 0;  ///< malformed/mismatched frames or payloads
  /// Requests answered on the connection thread by binding a size-generic
  /// family record from the cache's lock-free snapshot — no pool dispatch,
  /// no pipeline run, no emission.
  i64 familyFastPath = 0;
  PlanCache::Stats memory;
  bool haveDisk = false;
  DiskPlanCache::Stats disk;
};

std::string encodeStatsReply(const WireStats& stats);
WireStats decodeStatsReply(std::string_view payload);

struct WireError {
  bool shuttingDown = false;  ///< graceful-drain refusal, not a failure
  std::string message;
};

std::string encodeErrorReply(const WireError& error);
WireError decodeErrorReply(std::string_view payload);

// ---- socket framing ------------------------------------------------------

enum class ReadStatus {
  Ok,
  Eof,    ///< peer closed cleanly before any header byte
  Error,  ///< malformed frame or I/O failure (message in `error`)
};

/// Writes one frame (send with MSG_NOSIGNAL, short writes retried).
/// Returns false on any error — a closed peer must not kill the process.
bool writeFrame(int fd, MsgType type, std::string_view payload);

/// Reads one frame: header, validation, then exactly `length` payload
/// bytes, checksum-verified. Never throws; malformed input and truncation
/// mid-frame report ReadStatus::Error with a diagnostic in `error`.
ReadStatus readFrame(int fd, MsgType& type, std::string& payload, std::string& error);

}  // namespace emm::svc
