#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/diagnostics.h"

namespace emm::svc {

ServiceClient::ServiceClient(std::string socketPath) : socketPath_(std::move(socketPath)) {
  EMM_REQUIRE(!socketPath_.empty(), "ServiceClient needs a socket path");
  EMM_REQUIRE(socketPath_.size() < sizeof(sockaddr_un{}.sun_path),
              "socket path '" + socketPath_ + "' exceeds the unix-domain limit");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socketPath_.c_str(), socketPath_.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMM_REQUIRE(fd >= 0, "cannot create a client socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int err = errno;
    ::close(fd);
    throw ApiError("cannot connect to compile daemon at '" + socketPath_ +
                   "': " + std::strerror(err) + " (is emmapcd running?)");
  }
  fd_ = fd;
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<MsgType, std::string> ServiceClient::roundTrip(MsgType type,
                                                         const std::string& payload) {
  EMM_REQUIRE(connected(), "ServiceClient is closed");
  if (!writeFrame(fd_, type, payload)) {
    // The peer may have refused us with a drain notice before resetting the
    // connection; surface that instead of a bare write error.
    MsgType replyType = MsgType::ErrorReply;
    std::string replyPayload;
    std::string error;
    if (readFrame(fd_, replyType, replyPayload, error) == ReadStatus::Ok &&
        replyType == MsgType::ErrorReply) {
      WireError e = decodeErrorReply(replyPayload);
      close();
      throw ApiError(e.shuttingDown ? "server shutting down" : e.message);
    }
    close();
    throw ApiError("cannot send to compile daemon at '" + socketPath_ + "'");
  }
  MsgType replyType = MsgType::ErrorReply;
  std::string replyPayload;
  std::string error;
  ReadStatus st = readFrame(fd_, replyType, replyPayload, error);
  if (st == ReadStatus::Eof) {
    close();
    throw ApiError("compile daemon at '" + socketPath_ + "' closed the connection");
  }
  if (st == ReadStatus::Error) {
    close();
    throw ApiError("bad frame from compile daemon: " + error);
  }
  if (replyType == MsgType::ErrorReply) {
    WireError e = decodeErrorReply(replyPayload);
    throw ApiError(e.shuttingDown ? "server shutting down" : e.message);
  }
  return {replyType, std::move(replyPayload)};
}

WireCompileReply ServiceClient::compile(CompileRequest request) {
  request.schemaFingerprint = serializeSchemaFingerprint();
  const auto start = std::chrono::steady_clock::now();
  auto [type, payload] = roundTrip(MsgType::CompileRequest, encodeCompileRequest(request));
  if (type != MsgType::CompileReply)
    throw ApiError("compile daemon sent an unexpected reply type");
  WireCompileReply reply = decodeCompileReply(payload);
  reply.roundTripMillis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return reply;
}

WireStats ServiceClient::stats() {
  auto [type, payload] = roundTrip(MsgType::StatsRequest, std::string());
  if (type != MsgType::StatsReply)
    throw ApiError("compile daemon sent an unexpected reply type");
  return decodeStatsReply(payload);
}

}  // namespace emm::svc
