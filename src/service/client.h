// ServiceClient: the client side of the emmapcd compile service.
//
// Wraps one unix-domain connection speaking service/protocol.h frames.
// `emmapc --connect=SOCK` uses this to compile through the daemon's shared
// plan store instead of (or in addition to) its own local tiers; any other
// process can embed it the same way:
//
//   svc::ServiceClient client("/tmp/emmapcd.sock");
//   svc::CompileRequest req;
//   req.kernel = "me";
//   req.sizes = {256, 128, 16};
//   req.options = compiler.opts();   // exact effective options, no policy drift
//   svc::WireCompileReply reply = client.compile(req);
//
// compile() fills in the schema fingerprint, measures the round trip
// (WireCompileReply::roundTripMillis — the client-observed latency, next to
// the daemon's serverMillis and server-side tier attribution), and throws
// ApiError on transport failures, protocol violations, or server-reported
// errors ("server shutting down" during a graceful drain).
#pragma once

#include <string>

#include "service/protocol.h"

namespace emm::svc {

class ServiceClient {
public:
  /// Connects immediately. Throws ApiError when the daemon is unreachable.
  explicit ServiceClient(std::string socketPath);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// One compile round trip. The request's schemaFingerprint is filled in
  /// here; exactly one of kernel/block must be set (the server enforces it
  /// too). Throws ApiError on any failure, including a graceful-drain
  /// refusal (message "server shutting down").
  WireCompileReply compile(CompileRequest request);

  /// Fetches the daemon's counters and cache-tier statistics.
  WireStats stats();

  const std::string& socketPath() const { return socketPath_; }
  bool connected() const { return fd_ >= 0; }
  void close();

private:
  /// Sends one frame and reads one reply frame; decodes ErrorReply into an
  /// ApiError throw on the spot.
  std::pair<MsgType, std::string> roundTrip(MsgType type, const std::string& payload);

  std::string socketPath_;
  int fd_ = -1;
};

}  // namespace emm::svc
