// ServiceServer: the compile-service daemon core behind emmapcd.
//
// One server owns the networked plan store — an in-memory PlanCache (result
// + family tiers) optionally backed by a DiskPlanCache — and serves it over
// a unix-domain stream socket speaking service/protocol.h frames. Every
// client process that connects shares the same warm store, which makes the
// daemon a third, networked cache tier: a fresh `emmapc --connect` whose
// kernel family the daemon has seen is answered on the connection thread
// itself by binding the family's size-generic record straight out of the
// cache's epoch-published snapshot (WireStats::familyFastPath) — no pool
// dispatch, no pipeline run, no emission. Families without a record fall
// back to the pooled bind-and-emit path (CompileReply::serverFamilyHit).
//
// Threading: one accept thread, one lightweight thread per connection
// (clients are expected to be short-lived CLI/batch processes), and compile
// work dispatched onto a shared ThreadPool through Compiler's single-flight
// tiered caches — concurrent requests for the same plan collapse to one
// pipeline run, and CPU concurrency is bounded by `jobs`, not by the number
// of connected clients.
//
// Graceful shutdown (stop(), wired to SIGINT/SIGTERM in emmapcd): the
// listening socket closes first, in-flight compiles drain and their replies
// are delivered, idle connections are woken (read side shut down) and told
// "server shutting down" via an ErrorReply frame instead of seeing
// ECONNRESET, and the socket file is removed. Disk-cache writes happen
// synchronously inside each compile, so a drained server has flushed
// everything it accepted.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "driver/disk_cache.h"
#include "driver/plan_cache.h"
#include "service/protocol.h"

namespace emm {
class ThreadPool;
}

namespace emm::svc {

class ServiceServer {
public:
  struct Options {
    /// Unix-domain socket path; must fit sockaddr_un (~100 bytes). A stale
    /// socket file from a crashed daemon is replaced; a live one makes
    /// start() throw.
    std::string socketPath;
    /// Compile workers on the shared pool (0 = hardware default).
    int jobs = 0;
    /// Persistent plan store directory ("" = memory tiers only).
    std::string cacheDir;
    /// Result-tier capacity of the in-memory cache.
    size_t cacheCapacity = 1024;
    /// Shards of the in-memory cache (0 = one per hardware thread, rounded
    /// to a power of two; 1 = the single-mutex baseline).
    size_t cacheShards = 0;
  };

  /// Configures the store (creating the disk cache directory when set).
  /// Throws ApiError when the cache directory cannot be created.
  explicit ServiceServer(Options options);
  /// stop()s if still running.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Throws ApiError on an
  /// unusable path or a live daemon already owning the socket.
  void start();
  /// Graceful shutdown (see file comment). Idempotent; safe to call while
  /// clients are connected.
  void stop();
  bool running() const { return running_.load(); }
  const std::string& socketPath() const { return options_.socketPath; }

  /// Daemon counters plus both cache tiers (the STATS reply).
  WireStats stats() const;
  PlanCache& planCache() { return cache_; }
  DiskPlanCache* diskCache() { return disk_.get(); }

private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptLoop();
  void serveConnection(Connection* conn);
  /// Decodes, validates, dispatches one compile; returns false when the
  /// connection should close (protocol error). Replies on all paths.
  bool handleCompile(int fd, const std::string& payload);
  void countProtocolError();
  /// Joins and erases finished connection threads; requires mutex_.
  void reapFinishedLocked();

  Options options_;
  PlanCache cache_;
  std::unique_ptr<DiskPlanCache> disk_;
  std::unique_ptr<ThreadPool> pool_;
  int listenFd_ = -1;
  std::thread acceptThread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stopMutex_;      ///< serializes start/stop transitions
  mutable std::mutex mutex_;  ///< guards connections_ only
  std::list<std::unique_ptr<Connection>> connections_;
  // Relaxed atomics: per-request counting never contends with a concurrent
  // STATS snapshot or another connection's reply hot path.
  std::atomic<i64> connectionCount_{0};
  std::atomic<i64> requests_{0};
  std::atomic<i64> compiles_{0};
  std::atomic<i64> compileErrors_{0};
  std::atomic<i64> protocolErrors_{0};
  std::atomic<i64> familyFastPath_{0};
};

}  // namespace emm::svc
