#include "service/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "support/diagnostics.h"

namespace emm::svc {

namespace {

// Payload struct tags, same discipline as the serialize.cpp tag table but
// scoped to the wire payloads (the envelope has its own magic/version).
enum : unsigned char {
  kTagCompileRequest = 0xA1,
  kTagCompileReply = 0xA2,
  kTagStatsReply = 0xA3,
  kTagErrorReply = 0xA4,
};

void expectTag(ByteReader& r, unsigned char tag, const char* what) {
  unsigned char got = r.u8();
  if (got != tag)
    throw SerializeError(std::string("bad tag for ") + what + " (got " + std::to_string(got) +
                         ", want " + std::to_string(tag) + ")");
}

void writeI64Vec(ByteWriter& w, const std::vector<i64>& v) {
  w.u64v(v.size());
  for (i64 x : v) w.i64v(x);
}

std::vector<i64> readI64Vec(ByteReader& r) {
  u64 n = r.count(8);
  std::vector<i64> out;
  out.reserve(n);
  for (u64 i = 0; i < n; ++i) out.push_back(r.i64v());
  return out;
}

void writeStrVec(ByteWriter& w, const std::vector<std::string>& v) {
  w.u64v(v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> readStrVec(ByteReader& r) {
  u64 n = r.count();
  std::vector<std::string> out;
  for (u64 i = 0; i < n; ++i) out.push_back(r.str());
  return out;
}

bool sendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t k = ::send(fd, data, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    data += k;
    n -= static_cast<size_t>(k);
  }
  return true;
}

/// 1 = read all n bytes, 0 = clean EOF before the first byte, -1 = error or
/// EOF mid-buffer.
int recvAll(int fd, char* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t k = ::recv(fd, data + got, n - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (k == 0) return got == 0 ? 0 : -1;
    got += static_cast<size_t>(k);
  }
  return 1;
}

}  // namespace

std::string encodeFrame(MsgType type, std::string_view payload) {
  ByteWriter w;
  w.u32v(kWireMagic);
  w.u32v(kWireVersion);
  w.u8(static_cast<unsigned char>(type));
  w.u64v(payload.size());
  w.u64v(digestBytes(payload));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameHeader decodeFrameHeader(std::string_view header) {
  if (header.size() != kFrameHeaderBytes)
    throw SerializeError("truncated frame header: " + std::to_string(header.size()) + " of " +
                         std::to_string(kFrameHeaderBytes) + " bytes");
  ByteReader r(header);
  if (r.u32v() != kWireMagic) throw SerializeError("bad frame magic");
  u32 version = r.u32v();
  if (version != kWireVersion)
    throw SerializeError("unsupported protocol version " + std::to_string(version) +
                         " (this binary speaks " + std::to_string(kWireVersion) + ")");
  unsigned char type = r.u8();
  if (type < static_cast<unsigned char>(MsgType::CompileRequest) ||
      type > static_cast<unsigned char>(MsgType::ErrorReply))
    throw SerializeError("unknown message type " + std::to_string(type));
  FrameHeader h;
  h.type = static_cast<MsgType>(type);
  h.payloadBytes = r.u64v();
  // The cap check must precede any allocation sized by the prefix.
  if (h.payloadBytes > kMaxFramePayloadBytes)
    throw SerializeError("oversized frame payload: " + std::to_string(h.payloadBytes) +
                         " bytes (cap " + std::to_string(kMaxFramePayloadBytes) + ")");
  h.checksum = r.u64v();
  return h;
}

void verifyFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payloadBytes)
    throw SerializeError("frame payload length mismatch");
  if (digestBytes(payload) != header.checksum)
    throw SerializeError("frame checksum mismatch");
}

std::pair<MsgType, std::string> decodeFrame(std::string_view frame) {
  if (frame.size() < kFrameHeaderBytes)
    throw SerializeError("truncated frame header: " + std::to_string(frame.size()) + " of " +
                         std::to_string(kFrameHeaderBytes) + " bytes");
  FrameHeader h = decodeFrameHeader(frame.substr(0, kFrameHeaderBytes));
  std::string_view rest = frame.substr(kFrameHeaderBytes);
  if (rest.size() < h.payloadBytes) throw SerializeError("truncated frame payload");
  if (rest.size() > h.payloadBytes)
    throw SerializeError("trailing garbage after frame: " +
                         std::to_string(rest.size() - h.payloadBytes) + " bytes");
  verifyFramePayload(h, rest);
  return {h.type, std::string(rest)};
}

std::string encodeCompileRequest(const CompileRequest& request) {
  ByteWriter w;
  w.u8(kTagCompileRequest);
  w.u64v(request.schemaFingerprint);
  w.str(request.kernel);
  writeI64Vec(w, request.sizes);
  w.boolean(request.block.has_value());
  if (request.block.has_value()) w.str(serializeProgramBlock(*request.block));
  w.str(serializeCompileOptions(request.options));
  writeStrVec(w, request.skipPasses);
  return w.take();
}

CompileRequest decodeCompileRequest(std::string_view payload) {
  ByteReader r(payload);
  expectTag(r, kTagCompileRequest, "CompileRequest");
  CompileRequest req;
  req.schemaFingerprint = r.u64v();
  req.kernel = r.str();
  req.sizes = readI64Vec(r);
  if (r.boolean()) req.block = deserializeProgramBlock(r.str());
  req.options = deserializeCompileOptions(r.str());
  req.skipPasses = readStrVec(r);
  r.expectEnd();
  if (req.kernel.empty() && !req.block.has_value())
    throw SerializeError("compile request names no kernel and carries no block");
  if (!req.kernel.empty() && req.block.has_value())
    throw SerializeError("compile request names a kernel AND carries a block");
  return req;
}

std::string encodeCompileReply(const CompileResult& result, double serverMillis) {
  ByteWriter w;
  w.u8(kTagCompileReply);
  w.boolean(result.cacheHit);
  w.boolean(result.diskHit);
  w.boolean(result.familyHit);
  w.f64(serverMillis);
  w.str(serializeCompileResult(result));
  return w.take();
}

WireCompileReply decodeCompileReply(std::string_view payload) {
  ByteReader r(payload);
  expectTag(r, kTagCompileReply, "CompileReply");
  WireCompileReply reply;
  reply.serverCacheHit = r.boolean();
  reply.serverDiskHit = r.boolean();
  reply.serverFamilyHit = r.boolean();
  reply.serverMillis = r.f64();
  reply.result = deserializeCompileResult(r.str());
  r.expectEnd();
  return reply;
}

std::string encodeStatsReply(const WireStats& s) {
  ByteWriter w;
  w.u8(kTagStatsReply);
  w.i64v(s.connections);
  w.i64v(s.requests);
  w.i64v(s.compiles);
  w.i64v(s.compileErrors);
  w.i64v(s.protocolErrors);
  w.i64v(s.familyFastPath);
  w.i64v(s.memory.hits);
  w.i64v(s.memory.misses);
  w.i64v(s.memory.entries);
  w.i64v(s.memory.evictions);
  w.i64v(s.memory.familyHits);
  w.i64v(s.memory.familyMisses);
  w.i64v(s.memory.familyEntries);
  w.i64v(s.memory.familyEvictions);
  w.boolean(s.haveDisk);
  w.i64v(s.disk.hits);
  w.i64v(s.disk.misses);
  w.i64v(s.disk.rejects);
  w.i64v(s.disk.evictions);
  w.i64v(s.disk.insertions);
  w.i64v(s.disk.entries);
  w.i64v(s.disk.bytes);
  w.i64v(s.disk.familyHits);
  w.i64v(s.disk.familyMisses);
  w.i64v(s.disk.familyRejects);
  w.i64v(s.disk.familyInsertions);
  w.i64v(s.disk.familyEntries);
  w.i64v(s.disk.familyBytes);
  return w.take();
}

WireStats decodeStatsReply(std::string_view payload) {
  ByteReader r(payload);
  expectTag(r, kTagStatsReply, "StatsReply");
  WireStats s;
  s.connections = r.i64v();
  s.requests = r.i64v();
  s.compiles = r.i64v();
  s.compileErrors = r.i64v();
  s.protocolErrors = r.i64v();
  s.familyFastPath = r.i64v();
  s.memory.hits = r.i64v();
  s.memory.misses = r.i64v();
  s.memory.entries = r.i64v();
  s.memory.evictions = r.i64v();
  s.memory.familyHits = r.i64v();
  s.memory.familyMisses = r.i64v();
  s.memory.familyEntries = r.i64v();
  s.memory.familyEvictions = r.i64v();
  s.haveDisk = r.boolean();
  s.disk.hits = r.i64v();
  s.disk.misses = r.i64v();
  s.disk.rejects = r.i64v();
  s.disk.evictions = r.i64v();
  s.disk.insertions = r.i64v();
  s.disk.entries = r.i64v();
  s.disk.bytes = r.i64v();
  s.disk.familyHits = r.i64v();
  s.disk.familyMisses = r.i64v();
  s.disk.familyRejects = r.i64v();
  s.disk.familyInsertions = r.i64v();
  s.disk.familyEntries = r.i64v();
  s.disk.familyBytes = r.i64v();
  r.expectEnd();
  return s;
}

std::string encodeErrorReply(const WireError& error) {
  ByteWriter w;
  w.u8(kTagErrorReply);
  w.boolean(error.shuttingDown);
  w.str(error.message);
  return w.take();
}

WireError decodeErrorReply(std::string_view payload) {
  ByteReader r(payload);
  expectTag(r, kTagErrorReply, "ErrorReply");
  WireError e;
  e.shuttingDown = r.boolean();
  e.message = r.str();
  r.expectEnd();
  return e;
}

bool writeFrame(int fd, MsgType type, std::string_view payload) {
  std::string frame = encodeFrame(type, payload);
  return sendAll(fd, frame.data(), frame.size());
}

ReadStatus readFrame(int fd, MsgType& type, std::string& payload, std::string& error) {
  char header[kFrameHeaderBytes];
  int st = recvAll(fd, header, sizeof header);
  if (st == 0) return ReadStatus::Eof;
  if (st < 0) {
    error = "truncated frame header";
    return ReadStatus::Error;
  }
  FrameHeader h;
  try {
    h = decodeFrameHeader(std::string_view(header, sizeof header));
  } catch (const SerializeError& e) {
    error = e.what();
    return ReadStatus::Error;
  }
  payload.resize(h.payloadBytes);
  if (h.payloadBytes > 0 && recvAll(fd, payload.data(), payload.size()) != 1) {
    error = "truncated frame payload";
    return ReadStatus::Error;
  }
  try {
    verifyFramePayload(h, payload);
  } catch (const SerializeError& e) {
    error = e.what();
    return ReadStatus::Error;
  }
  type = h.type;
  return ReadStatus::Ok;
}

}  // namespace emm::svc
