// Cell backend: renders a mapped CodeUnit as SPE-style C with DMA staging.
//
// The paper's second architecture class (Section 3's Cell discussion) has
// explicitly managed 256 KB local stores: compute cannot touch global
// memory at all, so every reference is staged through a local-store buffer
// and data movement is explicit DMA (mfc_get/mfc_put). This emitter renders
// the planned unit in that style: local buffers become local-store arrays
// with extents folded at the parameter binding, Copy nodes become
// element-granularity dma_get/dma_put transfers against effective
// addresses, Sync nodes become DMA-tag fences, and block-parallel loops are
// strided across SPEs.
//
// Like the CUDA backend, the output is source text for inspection and
// structural tests; semantics of the underlying CodeUnit are certified by
// the interpreter. The driver forces CompileOptions::stageEverything when
// this backend is selected, so no reference bypasses the local store.
#pragma once

#include <string>

#include "codegen/artifact_info.h"
#include "ir/ast.h"

namespace emm {

struct CellEmitOptions {
  /// Binding for the block's leading (non-origin) parameters, used to fold
  /// local-store buffer extents to constants. Origin parameters must NOT be
  /// bound.
  IntVec paramValues;
  /// Number of leading parameters the binding covers; -1 = all of
  /// paramValues.
  int numBoundParams = -1;
  std::string kernelName = "emmap_kernel";
  std::string elementType = "float";
  /// Collapse an innermost unit-stride copy loop into ONE strided
  /// dma_get/dma_put covering the whole row, instead of one element-sized
  /// transfer per iteration. Real MFC transfers are sized in bytes, so a
  /// row-granularity transfer is both the realistic artifact and the fast
  /// one; disable only for the element-granularity ablation.
  bool coalesceDma = true;
  /// Double-buffer the innermost move-in stage: the buffers staged there are
  /// declared twice, the steady state prefetches iteration i+1 on the
  /// opposite DMA tag while computing on iteration i, and in-loop fences
  /// become per-tag waits. Requires the doubled footprint to fit
  /// `localStoreBudgetBytes`; otherwise the emitter falls back to the
  /// synchronous schedule and says so in a leading comment.
  bool doubleBuffer = false;
  i64 localStoreBudgetBytes = 256 * 1024;
  i64 elementBytes = 4;  ///< sizeof(elementType), for the fit check
  /// Size-generic emission: global-array strides become runtime SPE
  /// arguments and the launch stub forwards argument names. Local-store
  /// arrays are static (C forbids variable extents there), so every extent
  /// that depends on a bound size parameter is pinned by a BufExtentEq
  /// guard — inside the guarded envelope the folded declarations, the
  /// double-buffer fit verdict and the artifact text are all invariant.
  bool symbolicSizes = false;
};

/// Renders the unit as an SPE kernel plus a PPU-side launch stub.
std::string emitCell(const CodeUnit& unit, const CellEmitOptions& options);

/// As above; `info` (optional) receives the artifact's bind slots and guard
/// predicates when symbolic emission is on.
std::string emitCell(const CodeUnit& unit, const CellEmitOptions& options, ArtifactInfo* info);

}  // namespace emm
