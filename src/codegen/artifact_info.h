// Size-generic artifact metadata: what a family record needs to serve a
// new problem size with NO re-emission.
//
// When an emitter produces size-generic text (problem sizes are runtime
// kernel arguments, buffer geometry is folded in as closed-form
// expressions), it also fills an ArtifactInfo describing (a) the runtime
// argument slots a binder must populate for a requested size and (b) the
// guard predicates under which the emitted text is valid. The RuntimeBinder
// (driver/runtime_binder.h) evaluates the guards against a requested size;
// inside the envelope it fills the slots and returns the cached artifact
// verbatim, outside it rejects cleanly and the full pipeline runs.
#pragma once

#include <string>
#include <vector>

#include "sym/sym_expr.h"

namespace emm {

/// One runtime argument of a size-generic artifact, in kernel-signature
/// order. The binder computes each slot's value from the requested sizes.
struct BindSlot {
  enum class Kind : unsigned char {
    SizeParam = 0,    ///< value = requested size a (param index a)
    ArrayExtent = 1,  ///< value = extent b of array id a (global stride leg)
    Formula = 2,      ///< value = formula->eval([sizes..., 0...]) (fallback
                      ///< table for expressions not renderable inline)
  };
  std::string name;  ///< C identifier in the emitted signature
  Kind kind = Kind::SizeParam;
  int a = 0;        ///< param index / array id
  int b = 0;        ///< dimension (ArrayExtent only)
  SymPtr formula;   ///< Formula only
};

/// One validity predicate of a size-generic artifact. All symbolic guards
/// are evaluated over [requested sizes..., 0 for every further parameter];
/// layout formulas never mention tile origins, so the zeros are inert.
struct FamilyGuard {
  enum class Kind : unsigned char {
    SymLe = 0,        ///< lhs->eval(env) <= rhs->eval(env)
    SymEq = 1,        ///< lhs->eval(env) == rhs->eval(env)
    BufExtentEq = 2,  ///< unit.localBuffers[bufferIndex].paddedExtent(dim,
                      ///< requestEnv) == expected — pins an extent the
                      ///< emitter folded into the text as a constant
  };
  Kind kind = Kind::SymLe;
  SymPtr lhs;  ///< SymLe / SymEq
  SymPtr rhs;  ///< SymLe / SymEq
  int bufferIndex = 0;  ///< BufExtentEq
  int dim = 0;          ///< BufExtentEq
  i64 expected = 0;     ///< BufExtentEq
  std::string what;     ///< diagnostic text on rejection
};

/// Metadata a backend attaches to an emitted artifact. `sizeGeneric` false
/// means the text bakes in concrete sizes (warm path stays bind-and-emit
/// for this family); `note` records why.
struct ArtifactInfo {
  bool sizeGeneric = false;
  std::string note;
  std::vector<BindSlot> slots;
  std::vector<FamilyGuard> guards;
};

}  // namespace emm
