#include "codegen/scan.h"

#include <algorithm>

namespace emm {

BoundExpr toBoundExpr(const std::vector<DivExpr>& parts, bool isLower,
                      const std::vector<std::string>& prefixNames,
                      const std::vector<std::string>& paramNames) {
  BoundExpr b;
  b.isMax = isLower;
  for (const DivExpr& d : parts) {
    AffExpr e;
    EMM_CHECK(d.coeffs.size() == prefixNames.size() + paramNames.size() + 1,
              "bound coefficient arity mismatch");
    size_t idx = 0;
    for (const std::string& n : prefixNames) {
      if (d.coeffs[idx] != 0) e.terms.emplace_back(n, d.coeffs[idx]);
      ++idx;
    }
    for (const std::string& n : paramNames) {
      if (d.coeffs[idx] != 0) e.terms.emplace_back(n, d.coeffs[idx]);
      ++idx;
    }
    e.cnst = d.coeffs[idx];
    e.den = d.den;
    b.parts.push_back(std::move(e));
  }
  return b;
}

AstPtr scanPolyhedron(const Polyhedron& p, const std::vector<std::string>& iterNames,
                      const std::vector<std::string>& paramNames, const BodyMaker& makeBody) {
  EMM_REQUIRE(static_cast<int>(iterNames.size()) == p.dim(), "iterator name arity mismatch");
  EMM_REQUIRE(static_cast<int>(paramNames.size()) == p.nparam(), "parameter name arity mismatch");
  AstPtr root = AstNode::block();
  Polyhedron work = p;
  if (!work.simplify() || work.isEmpty()) return root;

  // Projection chain: proj[k] constrains variables 0..k.
  std::vector<Polyhedron> proj(p.dim());
  for (int k = 0; k < p.dim(); ++k) proj[k] = work.projectedOnto(k + 1);

  AstNode* parent = root.get();
  for (int k = 0; k < p.dim(); ++k) {
    DimBounds b = proj[k].loopBounds(k);
    std::vector<std::string> prefix(iterNames.begin(), iterNames.begin() + k);
    AstPtr loop = AstNode::forLoop(iterNames[k], toBoundExpr(b.lower, true, prefix, paramNames),
                                   toBoundExpr(b.upper, false, prefix, paramNames));
    parent = parent->addChild(std::move(loop));
  }
  parent->addChild(makeBody(iterNames));
  return root;
}

AstPtr scanUnion(const PolySet& pieces, const std::vector<std::string>& iterNames,
                 const std::vector<std::string>& paramNames, const BodyMaker& makeBody) {
  AstPtr root = AstNode::block();
  for (const Polyhedron& piece : makeDisjoint(pieces)) {
    AstPtr sub = scanPolyhedron(piece, iterNames, paramNames, makeBody);
    if (!sub->children.empty()) root->addChild(std::move(sub));
  }
  return root;
}

namespace {

/// Recursive generation from 2d+1 interleaved schedules.
///
/// `timeLevel` alternates: even levels are static positions, odd levels are
/// loops. `active` lists statement ids still alive at this level.
struct ScheduleGen {
  const ProgramBlock& block;
  std::string iterPrefix;
  std::vector<std::vector<Polyhedron>> proj;  // [stmt][depth] domain projections

  void generate(AstNode* parent, const std::vector<int>& active, int loopDepth) {
    // Static level: partition by schedule position, in increasing order.
    std::vector<std::pair<i64, int>> order;
    for (int s : active) {
      const Statement& st = block.statements[s];
      int row = 2 * loopDepth;
      EMM_CHECK(row < st.schedule.rows(), "schedule too shallow");
      // Static rows must be constant.
      for (int j = 0; j < st.schedule.cols() - 1; ++j)
        EMM_CHECK(st.schedule.at(row, j) == 0, "static schedule row is not constant");
      order.emplace_back(st.schedule.at(row, st.schedule.cols() - 1), s);
    }
    std::stable_sort(order.begin(), order.end());

    size_t i = 0;
    while (i < order.size()) {
      size_t j = i;
      while (j < order.size() && order[j].first == order[i].first) ++j;
      std::vector<int> group;
      for (size_t k = i; k < j; ++k) group.push_back(order[k].second);
      generateGroup(parent, group, loopDepth);
      i = j;
    }
  }

  void generateGroup(AstNode* parent, const std::vector<int>& group, int loopDepth) {
    // Statements whose schedule ends at this level have no more loops.
    std::vector<int> withLoop, done;
    for (int s : group) {
      const Statement& st = block.statements[s];
      if (st.dim() > loopDepth)
        withLoop.push_back(s);
      else
        done.push_back(s);
    }
    for (int s : done) parent->addChild(makeCall(s));
    if (withLoop.empty()) return;

    // Verify the loop row is the expected iterator (canonical form).
    for (int s : withLoop) {
      const Statement& st = block.statements[s];
      int row = 2 * loopDepth + 1;
      EMM_CHECK(row < st.schedule.rows(), "schedule too shallow for loop level");
      for (int j = 0; j < st.schedule.cols() - 1; ++j)
        EMM_CHECK(st.schedule.at(row, j) == (j == loopDepth ? 1 : 0),
                  "schedule loop row is not the canonical iterator");
    }

    std::string iter = iterPrefix + std::to_string(loopDepth);
    // Union bounds across the group; per-statement guards restore exactness.
    BoundExpr lb{{}, true}, ub{{}, false};
    bool identicalBounds = true;
    std::vector<DimBounds> perStmt;
    std::vector<std::string> prefix;
    for (int d = 0; d < loopDepth; ++d) prefix.push_back(iterPrefix + std::to_string(d));
    for (int s : withLoop) {
      DimBounds b = proj[s][loopDepth].loopBounds(loopDepth);
      perStmt.push_back(b);
    }
    // Loop range: min of lower bounds, max of upper bounds. Representable
    // only as single parts each; otherwise fall back to per-statement loops
    // in sequence (valid only when the group is a single statement).
    // For identical bounds (the common case) use them directly.
    for (size_t s = 1; s < perStmt.size(); ++s) {
      if (perStmt[s].lower.size() != perStmt[0].lower.size() ||
          perStmt[s].upper.size() != perStmt[0].upper.size()) {
        identicalBounds = false;
        break;
      }
      for (size_t q = 0; q < perStmt[s].lower.size() && identicalBounds; ++q)
        identicalBounds = perStmt[s].lower[q].coeffs == perStmt[0].lower[q].coeffs &&
                          perStmt[s].lower[q].den == perStmt[0].lower[q].den;
      for (size_t q = 0; q < perStmt[s].upper.size() && identicalBounds; ++q)
        identicalBounds = perStmt[s].upper[q].coeffs == perStmt[0].upper[q].coeffs &&
                          perStmt[s].upper[q].den == perStmt[0].upper[q].den;
    }
    EMM_REQUIRE(identicalBounds,
                "generateFromSchedules: statements sharing a loop must have identical "
                "projected bounds at that loop (canonical interleaved form)");
    const std::vector<std::string>& paramNames = block.paramNames;
    lb = toBoundExpr(perStmt[0].lower, true, prefix, paramNames);
    ub = toBoundExpr(perStmt[0].upper, false, prefix, paramNames);

    AstNode* loop = parent->addChild(AstNode::forLoop(iter, lb, ub));
    generate(loop, withLoop, loopDepth + 1);
  }

  AstPtr makeCall(int stmtId) const {
    const Statement& st = block.statements[stmtId];
    std::vector<AffExpr> args;
    for (int d = 0; d < st.dim(); ++d) args.push_back(AffExpr::var(iterPrefix + std::to_string(d)));
    return AstNode::call(stmtId, std::move(args));
  }
};

}  // namespace

AstPtr generateFromSchedules(const ProgramBlock& block, const std::string& iterPrefix) {
  block.validate();
  ScheduleGen gen{block, iterPrefix, {}};
  gen.proj.resize(block.statements.size());
  // proj[s][k] constrains variables 0..k, so loopBounds(k) at depth k only
  // references outer iterators and parameters.
  for (size_t s = 0; s < block.statements.size(); ++s) {
    const Statement& st = block.statements[s];
    std::vector<Polyhedron> chain(st.dim());
    Polyhedron work = st.domain;
    work.simplify();
    for (int k = 0; k < st.dim(); ++k) chain[k] = work.projectedOnto(k + 1);
    gen.proj[s] = std::move(chain);
  }
  AstPtr root = AstNode::block();
  std::vector<int> all;
  for (size_t s = 0; s < block.statements.size(); ++s) all.push_back(static_cast<int>(s));
  gen.generate(root.get(), all, 0);
  return root;
}

}  // namespace emm
