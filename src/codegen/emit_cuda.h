// CUDA backend: renders a mapped CodeUnit as CUDA C kernel source.
//
// This is the concrete artifact the paper's toolchain fed to nvcc: a
// __global__ kernel whose __shared__ arrays are the planned scratchpad
// buffers, whose outer FORALL (block-parallel) loops are distributed over
// blockIdx, whose inner FORALL (thread-parallel) loops are strided over
// threadIdx, and whose Sync nodes become __syncthreads().
//
// The emitter needs a concrete parameter binding because CUDA __shared__
// array extents must be compile-time constants; buffer size expressions are
// evaluated at that binding (tile sizes are already baked into the unit).
// Tile-origin parameters are bound by the generated loops, not the binding.
//
// The output is source text; this repository's substrate executes the same
// CodeUnit through the interpreter instead of a GPU, so the backend is
// validated structurally (declarations, loop mapping, barrier placement)
// and by construction shares the AST whose semantics the interpreter
// certifies.
#pragma once

#include <string>

#include "codegen/artifact_info.h"
#include "ir/ast.h"

namespace emm {

struct BufferLayout;

struct CudaEmitOptions {
  /// Binding for the block's leading (non-origin) parameters, used to fold
  /// buffer extents to constants. Origin parameters must NOT be bound.
  IntVec paramValues;
  /// Number of leading parameters the binding covers; the rest are assumed
  /// loop-bound origins.
  int numBoundParams = -1;  ///< -1: paramValues.size()
  std::string kernelName = "emmap_kernel";
  std::string elementType = "float";
  /// Size-generic emission: problem sizes and global-array strides stay
  /// runtime kernel arguments, shared buffers live in a dynamic
  /// `extern __shared__` arena addressed through the BufferLayout's
  /// closed-form offset/pitch expressions. Requires a layout whenever the
  /// unit has local buffers; without one the emitter falls back to folded
  /// extents and reports the artifact as not size-generic.
  bool symbolicSizes = false;
};

/// Renders the unit as a single CUDA kernel plus a host-side launch stub.
std::string emitCuda(const CodeUnit& unit, const CudaEmitOptions& options);

/// As above; `layout` supplies the packed-arena geometry for symbolic
/// emission and `info` (optional) receives the artifact's bind slots and
/// size-generic verdict.
std::string emitCuda(const CodeUnit& unit, const CudaEmitOptions& options,
                     const BufferLayout* layout, ArtifactInfo* info);

}  // namespace emm
