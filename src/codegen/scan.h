// Polyhedron scanning: the CLooG substitute.
//
// Generates loop nests that visit every integer point of a polyhedron (or a
// union of polyhedra) exactly once, in lexicographic order of the set
// variables. Loop bounds at depth k are quasi-affine (max/min of
// ceil/floor forms) over outer iterators and parameters, obtained by
// Fourier-Motzkin projection — the same shape CLooG emits.
//
// Integrality note: every constraint of the input is enforced as a
// ceil/floor bound at the deepest variable it mentions, so generated nests
// never visit points outside the set even when rational projection is
// inexact; such inexactness only produces (empty) ranges that iterate zero
// times.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/ast.h"
#include "poly/polyhedron.h"

namespace emm {

/// Produces the innermost body for one scanned piece. `iterNames` are the
/// loop iterator names introduced by the scanner, outermost first.
using BodyMaker = std::function<AstPtr(const std::vector<std::string>& iterNames)>;

/// Scans all integer points of `p`. `iterNames` must have p.dim() entries;
/// `paramNames` must have p.nparam() entries and is used to render bounds.
/// Returns an AST Block (possibly empty when `p` is empty).
AstPtr scanPolyhedron(const Polyhedron& p, const std::vector<std::string>& iterNames,
                      const std::vector<std::string>& paramNames, const BodyMaker& makeBody);

/// Scans the union of `pieces` visiting each point exactly once even when
/// pieces overlap (pieces are made disjoint first, earlier pieces keeping
/// their region). Point order is piece-by-piece, which is valid for
/// order-independent bodies such as data-movement copies — the use the
/// paper puts CLooG to in Section 3.1.3.
AstPtr scanUnion(const PolySet& pieces, const std::vector<std::string>& iterNames,
                 const std::vector<std::string>& paramNames, const BodyMaker& makeBody);

/// Converts DimBounds (coefficients over [outer vars, params, 1]) to a
/// named bound expression. `prefixNames` are the outer iterator names the
/// coefficient vector starts with.
BoundExpr toBoundExpr(const std::vector<DivExpr>& parts, bool isLower,
                      const std::vector<std::string>& prefixNames,
                      const std::vector<std::string>& paramNames);

/// Generates interleaved code for a whole block from the statements'
/// schedules. Supports the canonical "2d+1" interleaved schedule shape
/// produced by ProgramBlock::interleavedSchedule (loop rows must be single
/// original iterators, in nesting order). Statement instances execute in
/// exactly the order of executeReference.
AstPtr generateFromSchedules(const ProgramBlock& block, const std::string& iterPrefix = "c");

}  // namespace emm
