#include "transform/transform.h"

#include <algorithm>

namespace emm {

int commonLoopDepth(const ProgramBlock& block) {
  EMM_REQUIRE(!block.statements.empty(), "empty block");
  int depth = block.statements[0].dim();
  for (const Statement& st : block.statements) depth = std::min(depth, st.dim());
  return depth;
}

std::vector<LoopDepSummary> summarizeLoops(const ProgramBlock& block,
                                           const std::vector<Dependence>& deps, int depth) {
  (void)block;
  std::vector<LoopDepSummary> out(depth);
  for (int l = 0; l < depth; ++l) {
    out[l].loop = l;
    SignRange acc = SignRange::Zero;
    for (const Dependence& d : deps) {
      if (l >= d.srcDim || l >= d.dstDim) continue;
      acc = combineSigns(acc, distanceSign(d, l));
    }
    out[l].sign = acc;
  }
  return out;
}

ParallelismPlan findParallelism(const ProgramBlock& block, const std::vector<Dependence>& deps) {
  int depth = commonLoopDepth(block);
  ParallelismPlan plan;
  plan.summaries = summarizeLoops(block, deps, depth);

  // Outermost band: maximal prefix of loops whose distance signs are all
  // non-negative (permutable band criterion).
  auto nonneg = [](SignRange s) {
    return s == SignRange::Zero || s == SignRange::NonNegative || s == SignRange::Positive;
  };
  for (int l = 0; l < depth; ++l) {
    if (!nonneg(plan.summaries[l].sign)) break;
    plan.band.push_back(l);
  }
  EMM_REQUIRE(!plan.band.empty(),
              "no permutable outer band; apply skewing (makeTilable) first");

  for (int l : plan.band)
    if (plan.summaries[l].sign == SignRange::Zero) plan.spaceLoops.push_back(l);

  if (plan.spaceLoops.empty()) {
    // Pipeline parallelism: all but the last band loop become space loops.
    for (size_t i = 0; i + 1 < plan.band.size(); ++i) plan.spaceLoops.push_back(plan.band[i]);
    plan.needsInterBlockSync = true;
  }
  for (int l : plan.band)
    if (std::find(plan.spaceLoops.begin(), plan.spaceLoops.end(), l) == plan.spaceLoops.end())
      plan.timeLoops.push_back(l);
  // Dependences carried on space loops (pipeline case) require sync across
  // outer-level processes; communication-free space loops do not.
  for (int l : plan.spaceLoops)
    if (plan.summaries[l].carriesDependence()) plan.needsInterBlockSync = true;
  return plan;
}

ProgramBlock skewLoop(const ProgramBlock& block, int targetLoop, int sourceLoop, i64 factor) {
  EMM_REQUIRE(targetLoop != sourceLoop, "skew target equals source");
  ProgramBlock out = block;
  for (Statement& st : out.statements) {
    EMM_REQUIRE(targetLoop < st.dim() && sourceLoop < st.dim(),
                "skewLoop: loops must be common to all statements");
    int d = st.dim();
    int np = out.nparam();
    // New iterators z relate to old x by: x = M z where M is identity except
    // x[target] = z[target] - factor * z[source].
    IntMat m(d, d + np + 1);
    for (int i = 0; i < d; ++i) m.at(i, i) = 1;
    m.at(targetLoop, sourceLoop) = narrow(-static_cast<i128>(factor));
    // Domain: substitute x = M z.
    st.domain = st.domain.preimage(m, d);
    // Accesses: F'(z) = F(M z).
    for (Access& acc : st.accesses) {
      IntMat composed(acc.fn.rows(), d + np + 1);
      for (int r = 0; r < acc.fn.rows(); ++r) {
        // Row over [x, p, 1] composed with x = M z.
        for (int c = 0; c < d + np + 1; ++c) {
          i128 v = 0;
          for (int j = 0; j < d; ++j) v += static_cast<i128>(acc.fn.at(r, j)) * m.at(j, c);
          if (c >= d) v += acc.fn.at(r, c);
          composed.at(r, c) = narrow(v);
        }
      }
      acc.fn = composed;
    }
    // Schedules in canonical interleaved form refer to iterators by
    // position, which is unchanged by an in-place skew (iteration order of
    // the skewed nest is exactly the lexicographic order of z).
  }
  return out;
}

ProgramBlock shiftStatementLoop(const ProgramBlock& block, int stmtIdx, int loop, i64 offset) {
  EMM_REQUIRE(stmtIdx >= 0 && stmtIdx < static_cast<int>(block.statements.size()),
              "statement index out of range");
  ProgramBlock out = block;
  Statement& st = out.statements[stmtIdx];
  EMM_REQUIRE(loop >= 0 && loop < st.dim(), "loop index out of range");
  int d = st.dim();
  int np = out.nparam();
  // New iterator z with old = z - offset at position `loop`.
  IntMat m(d, d + np + 1);
  for (int i = 0; i < d; ++i) m.at(i, i) = 1;
  m.at(loop, d + np) = narrow(-static_cast<i128>(offset));
  st.domain = st.domain.preimage(m, d);
  for (Access& acc : st.accesses) {
    IntMat composed(acc.fn.rows(), d + np + 1);
    for (int r = 0; r < acc.fn.rows(); ++r) {
      for (int c = 0; c < d + np + 1; ++c) {
        i128 v = 0;
        for (int j = 0; j < d; ++j) v += static_cast<i128>(acc.fn.at(r, j)) * m.at(j, c);
        if (c >= d) v += acc.fn.at(r, c);
        composed.at(r, c) = narrow(v);
      }
    }
    acc.fn = composed;
  }
  return out;
}

i64 findSkewFactor(const ProgramBlock& block, int targetLoop, int sourceLoop, i64 maxFactor) {
  auto signOf = [&](const ProgramBlock& b) {
    auto deps = computeDependences(b);
    auto sums = summarizeLoops(b, deps, commonLoopDepth(b));
    return sums[targetLoop].sign;
  };
  auto nonneg = [](SignRange s) {
    return s == SignRange::Zero || s == SignRange::NonNegative || s == SignRange::Positive;
  };
  if (nonneg(signOf(block))) return 0;
  for (i64 f = 1; f <= maxFactor; ++f) {
    ProgramBlock candidate = skewLoop(block, targetLoop, sourceLoop, f);
    if (nonneg(signOf(candidate))) return f;
  }
  return -1;
}

TransformResult makeTilable(const ProgramBlock& block) {
  TransformResult result;
  result.block = block;
  int depth = commonLoopDepth(block);
  auto nonneg = [](SignRange s) {
    return s == SignRange::Zero || s == SignRange::NonNegative || s == SignRange::Positive;
  };
  int nstmt = static_cast<int>(block.statements.size());

  // Greedy legalization: walk loops outer-to-inner. A negative/mixed loop is
  // repaired by skewing against an outer positive loop, optionally combined
  // with per-statement shifts (multi-statement stencils need both: for
  // two-statement Jacobi the classic solution shifts the copy statement by
  // one and skews by two). A loop no transformation repairs ends the band;
  // deeper loops are left untouched (findParallelism stops there too).
  for (int l = 0; l < depth; ++l) {
    auto deps = computeDependences(result.block);
    auto sums = summarizeLoops(result.block, deps, depth);
    if (nonneg(sums[l].sign)) continue;
    bool fixed = false;
    for (int src = l - 1; src >= 0 && !fixed; --src) {
      // Skewing by a loop whose dependence distances are never negative
      // cannot invalidate any dependence; deps with zero source distance
      // are handled by the shift component.
      if (!nonneg(sums[src].sign) || sums[src].sign == SignRange::Zero) continue;
      // Shift combinations: statement 0 is the anchor; others shift by
      // 0..2 along loop l. The no-shift combination is tried first.
      std::vector<std::vector<i64>> shiftCombos{{std::vector<i64>(nstmt, 0)}};
      for (i64 s = 1; s <= 2 && nstmt > 1; ++s) {
        // Uniformly shift all statements after the first (covers the
        // compute/copy pattern; larger statement counts fall back to the
        // uniform family rather than the exponential cross product).
        std::vector<i64> combo(nstmt, s);
        combo[0] = 0;
        shiftCombos.push_back(std::move(combo));
      }
      for (const std::vector<i64>& combo : shiftCombos) {
        ProgramBlock candidate = result.block;
        for (int si = 0; si < nstmt; ++si)
          if (combo[si] != 0) candidate = shiftStatementLoop(candidate, si, l, combo[si]);
        i64 f = findSkewFactor(candidate, l, src);
        if (f >= 0) {
          bool any = f > 0;
          for (i64 s : combo) any = any || s != 0;
          if (!any) continue;  // nothing changed; sign was already bad
          if (f > 0) candidate = skewLoop(candidate, l, src, f);
          result.block = std::move(candidate);
          result.appliedSkews.push_back({l, {src, f}});
          fixed = true;
          break;
        }
      }
    }
    if (!fixed) break;  // band ends before loop l
  }
  auto deps = computeDependences(result.block);
  result.plan = findParallelism(result.block, deps);
  return result;
}

}  // namespace emm
