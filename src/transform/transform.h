// Transformation framework: finding parallelism for multi-level mapping.
//
// Substitutes for the Bondhugula-et-al. framework the paper cites [7]. The
// paper consumes exactly two products of that framework: (1) the outermost
// band of permutable loops, and (2) the classification of band loops into
// space loops (communication-free, distributed across parallel units) and
// time loops. We compute both from dependence-distance signs, and provide
// the unit-skewing transformation that legalizes tiling of stencil-style
// bands (negative distance components), which is how time loops of Jacobi
// become tilable.
//
// Scope: statements must share their outer `commonDepth` loops in original
// nesting order (true for the paper's kernels and the canonical interleaved
// schedules this IR produces).
#pragma once

#include <vector>

#include "deps/dependence.h"
#include "ir/program.h"

namespace emm {

/// Per-loop dependence summary over all dependences of a block.
struct LoopDepSummary {
  int loop = 0;
  SignRange sign = SignRange::Zero;  ///< combined distance sign
  bool carriesDependence() const { return sign != SignRange::Zero; }
};

/// Result of parallelism detection.
struct ParallelismPlan {
  /// Loops of the outermost permutable band, in nesting order.
  std::vector<int> band;
  /// Band loops that are communication-free (zero distance on every
  /// dependence): the paper's space loops.
  std::vector<int> spaceLoops;
  /// Band loops that carry dependences: executed sequentially (time loops).
  std::vector<int> timeLoops;
  /// True when dependences cross outer-level tiles, so outer-level parallel
  /// processes must synchronize (the paper's Jacobi case).
  bool needsInterBlockSync = false;
  /// Per-loop summaries for diagnostics and tests.
  std::vector<LoopDepSummary> summaries;
};

/// Number of outer loops every statement of the block shares.
int commonLoopDepth(const ProgramBlock& block);

/// Distance-sign summary for each of the first `depth` common loops.
std::vector<LoopDepSummary> summarizeLoops(const ProgramBlock& block,
                                           const std::vector<Dependence>& deps, int depth);

/// Detects the outermost permutable band and classifies space/time loops
/// following Section 4.1: communication-free loops in the band become space
/// loops; if there are none, all but the last band loop become space loops
/// (pipeline parallelism). Requires all common-loop distance signs to be
/// non-negative (apply skewing first if not).
ParallelismPlan findParallelism(const ProgramBlock& block, const std::vector<Dependence>& deps);

/// Applies the unit skew  loop_target += factor * loop_source  to every
/// statement (domains, access functions; schedules stay canonical since the
/// new iterator replaces the old one in place). Returns the transformed
/// block. Legality (making distance signs non-negative) is the caller's
/// concern; findSkewFactor below searches for a legalizing factor.
ProgramBlock skewLoop(const ProgramBlock& block, int targetLoop, int sourceLoop, i64 factor);

/// Searches factors 1..maxFactor such that after skewing `targetLoop` by
/// `sourceLoop`, every dependence distance on `targetLoop` is non-negative.
/// Returns 0 if none is needed (already non-negative) and -1 if none works.
i64 findSkewFactor(const ProgramBlock& block, int targetLoop, int sourceLoop, i64 maxFactor = 4);

/// Shifts one statement's iterator: new iterator z = old + offset (the
/// statement's instances move `offset` slots later along `loop` relative to
/// other statements). Domains and access functions are rewritten; schedules
/// stay canonical. Together with skewing this spans the enabling
/// transformations the paper's toolchain [7] applies to stencil codes
/// (e.g. two-statement Jacobi needs S2 shifted by +1 and a skew factor 2).
ProgramBlock shiftStatementLoop(const ProgramBlock& block, int stmtIdx, int loop, i64 offset);

/// One-call driver: skews loops as needed to make the outer band permutable,
/// then detects parallelism. This mirrors how the paper's toolchain composes
/// [7] with [27]-style enabling transformations.
struct TransformResult {
  ProgramBlock block;  ///< possibly skewed
  ParallelismPlan plan;
  std::vector<std::pair<int, std::pair<int, i64>>> appliedSkews;  ///< target -> (source, factor)
};
TransformResult makeTilable(const ProgramBlock& block);

}  // namespace emm
