// Scratchpad bank-conflict counter for generated CodeUnits.
//
// The machine simulator charges scratchpad traffic a flat per-element cost;
// this module supplies the missing second-order term: how many of those
// accesses serialize because the lanes of a warp hit the same bank. It is a
// static AST walker, not an interpreter — no array data is touched — so it
// can grade a layout (see src/smem/buffer_layout.h) before any code runs.
//
// Warp model: the OUTERMOST ThreadParallel loop is the lane dimension, as in
// emit_cuda (threadIdx.x). A warp is `warpSize` consecutive iterations of
// that loop at one fixed binding of everything around it. The walker
// executes the subtree in SIMT lockstep: each lane carries its own variable
// environment, inner loops advance all lanes by a shared iteration offset
// while each lane binds its own bound-derived value (so point loops like
// `for (p0 = t0; ...)` keep the lane identity), and guards mask individual
// lanes. At every Copy/Call touching a local buffer the active lanes' flat
// padded addresses map to banks and the warp is charged
// max-per-bank-distinct-addresses cycles — same-address lanes broadcast,
// exactly the G80 rule for a half-warp.
//
// Approximations, all conservative for the generated kernels here:
//  - trip counts are driven by lane 0's bounds (rectangular tiles make the
//    per-lane counts equal anyway; diverging lanes are masked per iteration
//    against their own bounds);
//  - buffers are laid out back to back at bank-row-aligned base offsets,
//    mirroring the packing planner, so inter-buffer interference is modeled
//    the same way the planner prevents it;
//  - accesses outside any ThreadParallel loop are scalar (one cycle, no
//    conflict possible) and tallied separately.
#pragma once

#include "ir/ast.h"

namespace emm {

struct BankConflictOptions {
  int banks = 16;          ///< bank count; <= 1 disables conflicts entirely
  int warpSize = 16;       ///< lanes that access the scratchpad together (G80: half-warp)
  i64 elementBytes = 4;    ///< element size of local buffers
  i64 bankWidthBytes = 4;  ///< successive words of this size map to successive banks
};

/// What the walker counted.
struct BankConflictStats {
  i64 warpAccesses = 0;        ///< warp-wide local access instructions issued
  i64 bankCycles = 0;          ///< cycles after serialization; >= warpAccesses
  i64 conflictedAccesses = 0;  ///< warp accesses that took more than one cycle
  i64 scalarAccesses = 0;      ///< local accesses outside thread-parallel loops

  /// Cycles lost to serialization: 0 for a conflict-free layout.
  i64 excessCycles() const { return bankCycles - warpAccesses; }
  /// Fraction of scratchpad access cycles that are serialization overhead.
  double serializedFraction() const {
    return bankCycles > 0 ? static_cast<double>(excessCycles()) / static_cast<double>(bankCycles)
                          : 0.0;
  }
};

/// Counts bank conflicts of `unit` at a concrete parameter binding. Local
/// buffers are addressed through their padded extents (LocalBuffer::pad), so
/// running this before and after applyBufferLayout measures exactly what the
/// padding bought.
BankConflictStats countBankConflicts(const CodeUnit& unit, const IntVec& paramValues,
                                     const BankConflictOptions& options = {});

}  // namespace emm
