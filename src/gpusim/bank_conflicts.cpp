#include "gpusim/bank_conflicts.h"

#include <algorithm>
#include <map>
#include <set>

namespace emm {

namespace {

using Env = std::vector<std::pair<std::string, i64>>;

class ConflictWalker {
public:
  ConflictWalker(const CodeUnit& unit, const IntVec& params, const BankConflictOptions& options)
      : unit_(unit), options_(options) {
    EMM_CHECK(unit.source != nullptr, "CodeUnit without source block");
    EMM_CHECK(static_cast<int>(params.size()) == unit.source->nparam(),
              "parameter arity mismatch");
    for (int j = 0; j < unit.source->nparam(); ++j)
      env_.emplace_back(unit.source->paramNames[j], params[j]);
    layoutBuffers();
  }

  BankConflictStats run() {
    if (unit_.root != nullptr) walk(*unit_.root);
    return stats_;
  }

private:
  /// Mirrors the packing planner's arena: padded strides, base offsets by
  /// prefix sum rounded to bank-row multiples.
  void layoutBuffers() {
    const i64 banks = std::max<i64>(1, options_.banks);
    i64 offset = 0;
    for (const LocalBuffer& b : unit_.localBuffers) {
      std::vector<i64> padded;
      for (int d = 0; d < b.ndim; ++d) padded.push_back(b.paddedExtent(d, env_));
      std::vector<i64> strides(padded.size(), 1);
      for (int d = static_cast<int>(padded.size()) - 2; d >= 0; --d)
        strides[d] = mulChecked(strides[d + 1], padded[d + 1]);
      i64 footprint = padded.empty() ? 0 : mulChecked(strides[0], padded[0]);
      strides_.push_back(std::move(strides));
      baseOffset_.push_back(offset);
      i64 end = addChecked(offset, footprint);
      offset = banks > 1 ? mulChecked(banks, (end + banks - 1) / banks) : end;
    }
  }

  /// Flat word address of one local access in lane `l`'s environment.
  i64 wordAddr(int localId, const IntVec& index) const {
    const std::vector<i64>& strides = strides_[localId];
    EMM_CHECK(index.size() == strides.size(), "local index arity mismatch");
    i64 flat = baseOffset_[localId];
    for (size_t k = 0; k < strides.size(); ++k)
      flat = addChecked(flat, mulChecked(index[k], strides[k]));
    const i64 wordsPerElem =
        std::max<i64>(1, options_.elementBytes / std::max<i64>(1, options_.bankWidthBytes));
    return mulChecked(flat, wordsPerElem);
  }

  /// Tallies one warp-wide access from the per-lane word addresses; cycles =
  /// max over banks of DISTINCT addresses routed there (same-address lanes
  /// broadcast, the G80 half-warp rule).
  void tally(const std::vector<i64>& laneAddrs) {
    if (laneAddrs.empty()) return;
    ++stats_.warpAccesses;
    i64 cycles = 1;
    if (options_.banks > 1) {
      std::map<i64, std::set<i64>> perBank;
      for (i64 addr : laneAddrs) perBank[addr % options_.banks].insert(addr);
      for (const auto& [bank, addrs] : perBank)
        cycles = std::max<i64>(cycles, static_cast<i64>(addrs.size()));
    }
    stats_.bankCycles += cycles;
    if (cycles > 1) ++stats_.conflictedAccesses;
  }

  /// One local access site inside the warp: `addrOf(l)` evaluates the
  /// address in lane l's environment.
  template <typename AddrFn>
  void warpAccess(AddrFn&& addrOf) {
    std::vector<i64> addrs;
    for (int l = 0; l < options_.warpSize; ++l)
      if (mask_[l]) addrs.push_back(addrOf(l));
    tally(addrs);
  }

  static IntVec evalIndex(const std::vector<AffExpr>& index, const Env& env) {
    IntVec out;
    out.reserve(index.size());
    for (const AffExpr& e : index) out.push_back(e.evalExact(env));
    return out;
  }

  /// The homogeneous (iters, params, 1) vector for a statement access,
  /// mirroring the interpreter's Call handling.
  IntVec callHom(const AstNode& n, const Statement& st, const Env& env) const {
    IntVec hom;
    hom.reserve(st.dim() + st.domain.nparam() + 1);
    for (const AffExpr& a : n.callArgs) hom.push_back(a.evalExact(env));
    for (int j = 0; j < st.domain.nparam(); ++j)
      hom.push_back(AffExpr::var(unit_.source->paramNames[j]).evalExact(env));
    hom.push_back(1);
    return hom;
  }

  bool anyLaneActive() const {
    for (int l = 0; l < options_.warpSize; ++l)
      if (mask_[l]) return true;
    return false;
  }

  void copyNode(const AstNode& n) {
    const int nglobal = unit_.numGlobalArrays();
    if (!inWarp_) {
      if (n.srcArray >= nglobal) ++stats_.scalarAccesses;
      if (n.dstArray >= nglobal) ++stats_.scalarAccesses;
      return;
    }
    if (n.srcArray >= nglobal)
      warpAccess(
          [&](int l) { return wordAddr(n.srcArray - nglobal, evalIndex(n.srcIndex, lane_[l])); });
    if (n.dstArray >= nglobal)
      warpAccess(
          [&](int l) { return wordAddr(n.dstArray - nglobal, evalIndex(n.dstIndex, lane_[l])); });
  }

  void callNode(const AstNode& n) {
    const Statement& st = unit_.statements[n.stmtId];
    if (st.writeAccess < 0) return;
    const int nglobal = unit_.numGlobalArrays();
    for (const Access& acc : st.accesses) {
      if (acc.arrayId < nglobal) continue;
      if (!inWarp_) {
        ++stats_.scalarAccesses;
        continue;
      }
      warpAccess([&](int l) {
        return wordAddr(acc.arrayId - nglobal, acc.fn.apply(callHom(n, st, lane_[l])));
      });
    }
  }

  /// Lockstep SIMT execution of a loop inside the warp: the trip count is
  /// driven by lane 0's bounds, but each lane binds ITS OWN value — its own
  /// lower bound plus the shared iteration offset — and lanes whose value
  /// passes their own upper bound are masked off for that iteration. This
  /// is what carries the lane identity through tiled point loops like
  /// `for (p0 = t0; p0 <= min(.., t0, ..); ...)`, which re-bind the spatial
  /// index per thread.
  void warpInnerFor(const AstNode& n) {
    const i64 lo = n.lb.eval(env_);
    const i64 hi = n.ub.eval(env_);
    env_.emplace_back(n.iter, 0);
    for (Env& le : lane_) le.emplace_back(n.iter, 0);
    const std::vector<bool> savedMask = mask_;
    for (i64 v = lo, k = 0; v <= hi; v += n.step, ++k) {
      env_.back().second = v;
      for (int l = 0; l < options_.warpSize; ++l) {
        if (!savedMask[l]) continue;
        const i64 vl = n.lb.eval(lane_[l]) + k * n.step;
        lane_[l].back().second = vl;
        mask_[l] = vl <= n.ub.eval(lane_[l]);
      }
      if (anyLaneActive())
        for (const AstPtr& c : n.children) walk(*c);
    }
    mask_ = savedMask;
    for (Env& le : lane_) le.pop_back();
    env_.pop_back();
  }

  /// The outermost ThreadParallel loop: lanes are warpSize consecutive
  /// iterations; the walk advances by whole warps.
  void warpFor(const AstNode& n) {
    const i64 lo = n.lb.eval(env_);
    const i64 hi = n.ub.eval(env_);
    env_.emplace_back(n.iter, 0);
    inWarp_ = true;
    lane_.assign(options_.warpSize, env_);
    mask_.assign(options_.warpSize, false);
    const i64 warpStride = mulChecked(n.step, static_cast<i64>(options_.warpSize));
    for (i64 base = lo; base <= hi; base += warpStride) {
      env_.back().second = base;
      for (int l = 0; l < options_.warpSize; ++l) {
        const i64 x = base + l * n.step;
        lane_[l].back().second = x;
        mask_[l] = x <= hi;
      }
      for (const AstPtr& c : n.children) walk(*c);
    }
    inWarp_ = false;
    lane_.clear();
    mask_.clear();
    env_.pop_back();
  }

  void walk(const AstNode& n) {
    switch (n.kind) {
      case AstNode::Kind::Block:
        for (const AstPtr& c : n.children) walk(*c);
        break;
      case AstNode::Kind::For: {
        if (inWarp_) {
          warpInnerFor(n);
        } else if (n.loopKind == LoopKind::ThreadParallel) {
          warpFor(n);
        } else {
          const i64 lo = n.lb.eval(env_);
          const i64 hi = n.ub.eval(env_);
          env_.emplace_back(n.iter, 0);
          for (i64 v = lo; v <= hi; v += n.step) {
            env_.back().second = v;
            for (const AstPtr& c : n.children) walk(*c);
          }
          env_.pop_back();
        }
        break;
      }
      case AstNode::Kind::Guard: {
        if (!inWarp_) {
          for (const AffExpr& g : n.guards)
            if (g.evalFloor(env_) < 0) return;
          for (const AstPtr& c : n.children) walk(*c);
          return;
        }
        // Inside the warp: mask lanes that fail, take the branch if any
        // lane survives.
        const std::vector<bool> savedMask = mask_;
        for (int l = 0; l < options_.warpSize; ++l) {
          if (!mask_[l]) continue;
          for (const AffExpr& g : n.guards) {
            if (g.evalFloor(lane_[l]) < 0) {
              mask_[l] = false;
              break;
            }
          }
        }
        if (anyLaneActive())
          for (const AstPtr& c : n.children) walk(*c);
        mask_ = savedMask;
        break;
      }
      case AstNode::Kind::Call:
        callNode(n);
        break;
      case AstNode::Kind::Copy:
        copyNode(n);
        break;
      case AstNode::Kind::Sync:
      case AstNode::Kind::Comment:
        break;
    }
  }

  const CodeUnit& unit_;
  BankConflictOptions options_;
  Env env_;                                ///< lane-0 environment, drives trip counts
  std::vector<std::vector<i64>> strides_;  ///< padded flattening strides per buffer
  std::vector<i64> baseOffset_;            ///< arena base offset per buffer, elements

  bool inWarp_ = false;
  std::vector<Env> lane_;    ///< per-lane environments (size warpSize)
  std::vector<bool> mask_;   ///< per-lane active mask

  BankConflictStats stats_;
};

}  // namespace

BankConflictStats countBankConflicts(const CodeUnit& unit, const IntVec& paramValues,
                                     const BankConflictOptions& options) {
  ConflictWalker walker(unit, paramValues, options);
  return walker.run();
}

}  // namespace emm
