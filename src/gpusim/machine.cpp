#include "gpusim/machine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace emm {

BlockWork& BlockWork::operator+=(const BlockWork& o) {
  globalElems += o.globalElems;
  smemElems += o.smemElems;
  computeOps += o.computeOps;
  intraSyncs += o.intraSyncs;
  return *this;
}

BlockWork BlockWork::scaled(double f) const {
  BlockWork w;
  w.globalElems = static_cast<i64>(std::llround(static_cast<double>(globalElems) * f));
  w.smemElems = static_cast<i64>(std::llround(static_cast<double>(smemElems) * f));
  w.computeOps = static_cast<i64>(std::llround(static_cast<double>(computeOps) * f));
  w.intraSyncs = static_cast<i64>(std::llround(static_cast<double>(intraSyncs) * f));
  return w;
}

std::string SimResult::str() const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible: " << infeasibleReason;
    return os.str();
  }
  os << milliseconds << " ms (blocks/wave=" << concurrentBlocks << ", waves=" << waves << ")";
  return os.str();
}

SimResult simulateLaunch(const Machine& m, const LaunchConfig& launch, const BlockWork& perBlock) {
  SimResult r;
  EMM_CHECK(launch.numBlocks >= 1 && launch.threadsPerBlock >= 1, "degenerate launch");

  // --- Occupancy: how many blocks are resident per SM. ---
  i64 bySmem = launch.smemBytesPerBlock == 0
                   ? m.maxBlocksPerSM
                   : m.smemBytesPerSM / std::max<i64>(launch.smemBytesPerBlock, 1);
  if (bySmem < 1) {
    r.feasible = false;
    r.infeasibleReason = "scratchpad footprint exceeds per-SM capacity";
    return r;
  }
  i64 blocksPerSM = std::min<i64>(m.maxBlocksPerSM, bySmem);
  i64 concurrent = std::min<i64>(launch.numBlocks, mulChecked(blocksPerSM, m.numSMs));

  if (launch.interBlockSyncs > 0 && launch.syncRequiresResidency &&
      concurrent < launch.numBlocks) {
    // All blocks must be simultaneously active to cross a global barrier
    // (paper Section 4.1).
    r.feasible = false;
    r.infeasibleReason = "global synchronization requires all blocks resident; occupancy " +
                         std::to_string(concurrent) + " < " + std::to_string(launch.numBlocks);
    return r;
  }
  r.concurrentBlocks = concurrent;

  // --- Throughput/stall decomposition. ---
  // Blocks assigned to one SM serialize on its pipelines (SIMD lanes,
  // scratchpad ports, the load/store issue path). Co-residency does not add
  // throughput; what it buys is latency hiding: exposed memory latency and
  // barrier stalls overlap with other resident blocks' work.
  double warpsPerBlock =
      std::ceil(static_cast<double>(launch.threadsPerBlock) / m.warpSize);
  i64 activeSMs = std::min<i64>(m.numSMs, launch.numBlocks);
  i64 blocksAssigned = ceilDiv(launch.numBlocks, activeSMs);
  double bpsEff = static_cast<double>(std::min<i64>(blocksPerSM, blocksAssigned));

  // Throughput terms (cycles one block occupies its SM's pipelines).
  // Utilization < 1 when too few warps are resident to cover pipeline
  // latency (warpsToSaturate); co-resident blocks contribute their warps.
  double utilization =
      std::min(1.0, warpsPerBlock * std::max(1.0, static_cast<double>(std::min<i64>(
                                                      blocksPerSM, blocksAssigned))) /
                        m.warpsToSaturate);
  double computeCycles = static_cast<double>(perBlock.computeOps) * m.computeCyclesPerOp /
                         static_cast<double>(m.simdPerSM) / utilization;
  double smemCycles = static_cast<double>(perBlock.smemElems) * m.smemCyclesPerElem /
                      static_cast<double>(m.simdPerSM) / utilization;
  double issueCycles = static_cast<double>(perBlock.globalElems) / m.warpSize *
                       m.globalIssueCyclesPerWarp;

  // Stall terms, hidden by co-resident blocks (and the block's own warps).
  double latencyStall = static_cast<double>(perBlock.globalElems) / m.warpSize *
                        m.globalLatencyCycles / std::max(1.0, warpsPerBlock * bpsEff);
  double exposedLatency = std::max(0.0, latencyStall - issueCycles);
  double syncStall = static_cast<double>(perBlock.intraSyncs) * m.syncBaseCycles *
                     warpsPerBlock / std::max(1.0, bpsEff);

  // Double buffering hides part of the global-transfer time under compute.
  double globalPart = issueCycles + exposedLatency;
  double computePart = computeCycles + smemCycles;
  double hidden = m.copyComputeOverlap * std::min(globalPart, computePart);
  r.cyclesPerBlock = computePart + globalPart - hidden + syncStall;

  // --- Launch time: per-SM serialization vs device bandwidth floor. ---
  double perSmCycles = r.cyclesPerBlock * static_cast<double>(blocksAssigned);
  double bandwidthCycles = static_cast<double>(perBlock.globalElems) *
                           static_cast<double>(launch.numBlocks) *
                           static_cast<double>(m.elemBytes) / m.globalBytesPerCycle;
  double totalCycles = std::max(perSmCycles, bandwidthCycles);
  totalCycles += static_cast<double>(launch.interBlockSyncs) *
                 (m.interBlockSyncBaseCycles +
                  m.interBlockSyncPerBlockCycles * static_cast<double>(launch.numBlocks));
  r.waves = blocksAssigned;

  r.globalTrafficBytes = static_cast<double>(perBlock.globalElems) *
                         static_cast<double>(launch.numBlocks) *
                         static_cast<double>(m.elemBytes);
  r.milliseconds = totalCycles / (m.clockGHz * 1e6);
  return r;
}

double simulateCpuMs(const Machine& m, i64 ops, i64 memElems) {
  double cycles = static_cast<double>(ops) * m.cpuCyclesPerOp +
                  static_cast<double>(memElems) * m.cpuMemCyclesPerElem;
  return cycles / (m.cpuClockGHz * 1e6);
}

}  // namespace emm
