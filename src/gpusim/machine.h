// Simulated two-level parallel machine with explicitly managed memory.
//
// Substitutes for the paper's NVIDIA GeForce 8800 GTX testbed. The machine
// has `numSMs` outer-level MIMD units; each holds `simdPerSM` SIMD lanes and
// `smemBytesPerSM` of scratchpad shared by the inner-level processes
// (threads) of the blocks resident on it. Blocks are virtual processors
// mapped onto SMs; the number of concurrently resident blocks is limited by
// their scratchpad footprint (paper Section 5: at most X/M concurrent
// blocks) and by `maxBlocksPerSM`.
//
// The timing model charges exactly the quantities the paper's evaluation
// reasons about:
//   - compute: SIMD-retired scalar operations,
//   - scratchpad traffic: low fixed cost per element,
//   - global traffic: max of a latency-bound term (hidden by resident
//     warps) and a bandwidth-bound term (device bandwidth shared by SMs),
//   - intra-block synchronization: cost per barrier scaled by resident
//     warps (the P*S term of Section 4.3),
//   - inter-block synchronization: global barrier cost with a component
//     linear in the number of blocks (drives the Figure 7 U-shape).
// Functional correctness is established separately by the interpreter; the
// simulator converts counted work into time.
#pragma once

#include <string>

#include "support/checked_int.h"

namespace emm {

/// Machine description. Defaults are the calibrated 8800 GTX-like model;
/// constants are calibrated once (see DESIGN.md) and reused by every figure.
struct Machine {
  int numSMs = 16;
  int simdPerSM = 8;
  int warpSize = 32;
  i64 smemBytesPerSM = 16 * 1024;
  /// Scratchpad banking (paper Section 5's conflict discussion): successive
  /// `smemBankWidthBytes` words map to successive banks, and lanes of a
  /// half-warp hitting the same bank serialize. The G80 has 16 banks of
  /// 4-byte words; banks = 1 models an unbanked store (Cell local store),
  /// for which conflict padding is pure waste.
  int smemBanks = 16;
  int smemBankWidthBytes = 4;
  int maxBlocksPerSM = 8;
  double clockGHz = 1.35;  ///< shader clock

  double globalLatencyCycles = 480;   ///< uncontended DRAM access latency
  double globalBytesPerCycle = 64.0;  ///< device-wide DRAM bandwidth
  /// Issue cost of one warp-wide global transaction at the SM's load/store
  /// path. Latency hiding cannot beat this throughput floor; it is what
  /// separates global from scratchpad cost when many warps are resident.
  /// Calibrated for 2007-era coalescing rules (the G80 serialized any warp
  /// access that was not 16-word aligned, which stencil/window accesses
  /// rarely are), reproducing the paper's ~8x ME / ~10x Jacobi scratchpad
  /// speedups.
  double globalIssueCyclesPerWarp = 72.0;
  double smemCyclesPerElem = 1.0;     ///< per element, per SIMD lane group
  double computeCyclesPerOp = 1.0;    ///< per scalar op, per SIMD lane
  double syncBaseCycles = 32.0;       ///< intra-block barrier, per warp
  /// Resident warps needed to keep an SM's pipelines full; fewer warps
  /// leave ALU/memory latency exposed (linear utilization model). This is
  /// what makes low-block-count launches of narrow (64-thread) blocks slow
  /// and produces the falling edge of the paper's Figure 7.
  double warpsToSaturate = 8.0;
  double interBlockSyncBaseCycles = 2000.0;  ///< kernel-relaunch style barrier
  double interBlockSyncPerBlockCycles = 75.0;
  i64 elemBytes = 4;
  /// Fraction of global-transfer time hidden under computation when the
  /// generated code double-buffers its scratchpad tiles (software
  /// pipelining of move-in with the previous tile's compute). 0 = the
  /// paper's synchronous copies; the ext_double_buffering bench explores
  /// the headroom this future-work optimization offers.
  double copyComputeOverlap = 0.0;

  /// Host CPU baseline (single core, the paper's Core2-Duo-class host).
  double cpuClockGHz = 2.13;
  double cpuCyclesPerOp = 1.25;
  double cpuMemCyclesPerElem = 6.0;  ///< effective cached-stream cost

  static Machine geforce8800gtx() { return Machine{}; }

  /// Cell-BE-like profile: 8 SPE-style units, each with a 256 KB local
  /// store and a 4-wide SIMD pipeline, one context per unit, DMA-based
  /// global access. On this machine global memory CANNOT be touched during
  /// compute: kernels must stage everything through the local store
  /// (SmemOptions::onlyBeneficial = false), which is the paper's Cell
  /// discussion in Section 3.
  static Machine cellLike() {
    Machine m;
    m.numSMs = 8;
    m.simdPerSM = 4;
    m.warpSize = 1;
    m.smemBytesPerSM = 256 * 1024;
    m.smemBanks = 1;  // local store: no banking, padding buys nothing
    m.maxBlocksPerSM = 1;
    m.clockGHz = 3.2;
    m.globalLatencyCycles = 1000;        // DMA round trip
    m.globalBytesPerCycle = 8.0;         // ~25 GB/s EIB share
    m.globalIssueCyclesPerWarp = 4.0;    // per element issued into a DMA list
    m.smemCyclesPerElem = 0.5;           // local store is single-cycle, dual-issue
    m.syncBaseCycles = 100;              // mailbox-style signal
    m.interBlockSyncBaseCycles = 4000;   // barrier across SPEs
    m.interBlockSyncPerBlockCycles = 200;
    m.warpsToSaturate = 1;               // no warp scheduling: one context
    return m;
  }

  i64 totalSmemBytes() const { return mulChecked(smemBytesPerSM, numSMs); }
};

/// Work performed by ONE thread block for one kernel launch (totals across
/// all of the block's threads).
struct BlockWork {
  i64 globalElems = 0;   ///< global-memory element transfers (loads+stores)
  i64 smemElems = 0;     ///< scratchpad element accesses
  i64 computeOps = 0;    ///< scalar arithmetic operations
  i64 intraSyncs = 0;    ///< intra-block barriers executed

  BlockWork& operator+=(const BlockWork& o);
  BlockWork scaled(double f) const;
};

/// Launch shape.
struct LaunchConfig {
  i64 numBlocks = 1;
  i64 threadsPerBlock = 1;
  i64 smemBytesPerBlock = 0;
  /// Global barriers executed by the launch (0 when blocks are independent).
  i64 interBlockSyncs = 0;
  /// When true, all blocks must be co-resident to synchronize (spin-style
  /// barrier, Section 4.1's residency argument); infeasible configurations
  /// are reported. The default (false) models kernel-relaunch barriers,
  /// which is how 2007-era CUDA realized global synchronization and how the
  /// paper could sweep up to 250 blocks in Figure 7.
  bool syncRequiresResidency = false;
};

/// Simulation outcome.
struct SimResult {
  bool feasible = true;
  std::string infeasibleReason;
  double milliseconds = 0;
  double cyclesPerBlock = 0;
  i64 concurrentBlocks = 0;  ///< resident across the device
  i64 waves = 0;
  double globalTrafficBytes = 0;

  std::string str() const;
};

/// Simulates a launch where every block performs `perBlock` work.
SimResult simulateLaunch(const Machine& m, const LaunchConfig& launch, const BlockWork& perBlock);

/// Simulates the single-core CPU baseline executing `ops` scalar operations
/// and `memElems` memory element accesses.
double simulateCpuMs(const Machine& m, i64 ops, i64 memElems);

}  // namespace emm
