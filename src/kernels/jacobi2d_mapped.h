// Concurrent-start mapped 2-D Jacobi (5-point stencil) — an extension of
// the paper's 1-D experiment to a 2-D workload, using the same overlapped
// (pyramidal) tiling scheme: per time band of Tt steps, each block loads
// its (Si x Sj) tile plus a halo ring of width Tt, performs the band's
// steps locally on a shrinking region, and writes back the tile interior.
// One inter-block synchronization separates bands.
//
// This exercises the 2-D buffer allocation / halo geometry the Section-3
// framework produces for 2-D stencils, and feeds the ext_jacobi2d bench.
#pragma once

#include <vector>

#include "gpusim/machine.h"
#include "support/checked_int.h"

namespace emm {

struct Jacobi2dConfig {
  i64 n = 512, m = 512;  ///< grid extents
  i64 timeSteps = 64;
  i64 timeTile = 8;           ///< Tt
  i64 spaceTileI = 32, spaceTileJ = 32;
  i64 numBlocks = 128;
  i64 numThreads = 64;
  bool useScratchpad = true;
};

struct Jacobi2dCounters {
  i64 globalElems = 0;
  i64 smemElems = 0;
  i64 computeOps = 0;
  i64 intraSyncs = 0;
  i64 interBlockSyncs = 0;
  i64 maxSmemElemsPerBlock = 0;
};

/// Executes the mapped kernel on `a` (in/out), mutating it exactly as
/// referenceJacobi2d would; returns access counters.
Jacobi2dCounters runJacobi2dMapped(const Jacobi2dConfig& config, std::vector<double>& a);

/// Analytic counters (validated against runJacobi2dMapped in tests).
Jacobi2dCounters modelJacobi2d(const Jacobi2dConfig& config);

struct KernelModelJacobi2d {
  LaunchConfig launch;
  BlockWork perBlock;
  i64 cpuOps = 0;
  i64 cpuMemElems = 0;
};
KernelModelJacobi2d jacobi2dMachineModel(const Jacobi2dConfig& config);

}  // namespace emm
