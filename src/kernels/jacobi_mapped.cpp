#include "kernels/jacobi_mapped.h"

#include <algorithm>

namespace emm {

namespace {

/// Number of space tiles over the stencil interior [1, n-2].
i64 numSpaceTiles(const JacobiConfig& c) {
  return std::max<i64>(1, ceilDiv(c.n - 2, c.spaceTile));
}

}  // namespace

JacobiCounters runJacobiMapped(const JacobiConfig& c, std::vector<double>& a,
                               std::vector<double>& b) {
  EMM_CHECK(static_cast<i64>(a.size()) == c.n && static_cast<i64>(b.size()) == c.n,
            "array size mismatch");
  JacobiCounters ctr;

  if (!c.useScratchpad) {
    // Untiled global-memory variant: every access hits DRAM and every time
    // step ends with a global barrier (kernel relaunch).
    for (i64 step = 0; step < c.timeSteps; ++step) {
      for (i64 i = 1; i <= c.n - 2; ++i) {
        b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
        ctr.globalElems += 4;  // 3 reads + 1 write
        ctr.computeOps += 4;
      }
      for (i64 i = 1; i <= c.n - 2; ++i) {
        a[i] = b[i];
        ctr.globalElems += 2;
      }
      ++ctr.interBlockSyncs;
    }
    return ctr;
  }

  // Overlapped (trapezoidal) tiling with concurrent start: per time band,
  // every tile loads [lo - steps, hi + steps] (clamped), runs `steps` local
  // updates on the shrinking valid region, and writes back [lo, hi].
  const i64 tiles = numSpaceTiles(c);
  std::vector<double> local(static_cast<size_t>(c.spaceTile + 2 * c.timeTile + 2));
  std::vector<double> scratch(local.size());
  ctr.maxSmemElemsPerBlock = static_cast<i64>(local.size() + scratch.size());

  // `snapshot` holds the global state at band start; tiles must all read
  // band-start values even though earlier tiles already wrote their
  // interiors back (blocks run concurrently on the machine; sequential
  // simulation needs the copy).
  std::vector<double> snapshot(a.size());

  for (i64 band = 0; band * c.timeTile < c.timeSteps; ++band) {
    i64 steps = std::min(c.timeTile, c.timeSteps - band * c.timeTile);
    snapshot = a;
    for (i64 tIdx = 0; tIdx < tiles; ++tIdx) {
      i64 lo = 1 + tIdx * c.spaceTile;
      i64 hi = std::min(c.n - 2, lo + c.spaceTile - 1);
      if (lo > hi) continue;
      i64 loH = std::max<i64>(0, lo - steps);
      i64 hiH = std::min<i64>(c.n - 1, hi + steps);
      i64 width = hiH - loH + 1;

      // Move-in (global reads, scratchpad writes).
      for (i64 g = loH; g <= hiH; ++g) local[static_cast<size_t>(g - loH)] = snapshot[g];
      ctr.globalElems += width;
      ctr.smemElems += width;
      ctr.intraSyncs += 1;

      // Local time steps on the shrinking region. The trapezoid does not
      // shrink on a side resting on the physical boundary: the boundary
      // value is loaded and never changes, so it stays valid at every step.
      for (i64 s = 1; s <= steps; ++s) {
        i64 rl = loH == 0 ? 1 : loH + s;
        i64 rh = hiH == c.n - 1 ? c.n - 2 : hiH - s;
        for (i64 g = rl; g <= rh; ++g) {
          size_t p = static_cast<size_t>(g - loH);
          scratch[p] = (local[p - 1] + local[p] + local[p + 1]) / 3;
        }
        for (i64 g = rl; g <= rh; ++g) {
          size_t p = static_cast<size_t>(g - loH);
          local[p] = scratch[p];
        }
        i64 len = std::max<i64>(0, rh - rl + 1);
        ctr.smemElems += 6 * len;
        ctr.computeOps += 4 * len;
        ctr.intraSyncs += 1;
      }

      // Move-out interior (scratchpad reads, global writes).
      for (i64 g = lo; g <= hi; ++g) a[g] = local[static_cast<size_t>(g - loH)];
      ctr.globalElems += hi - lo + 1;
      ctr.smemElems += hi - lo + 1;
      ctr.intraSyncs += 1;
    }
    ++ctr.interBlockSyncs;
  }
  return ctr;
}

JacobiCounters modelJacobi(const JacobiConfig& c) {
  JacobiCounters ctr;
  if (!c.useScratchpad) {
    i64 interior = std::max<i64>(0, c.n - 2);
    ctr.globalElems = mulChecked(6, mulChecked(interior, c.timeSteps));
    ctr.computeOps = mulChecked(4, mulChecked(interior, c.timeSteps));
    ctr.interBlockSyncs = c.timeSteps;
    return ctr;
  }
  const i64 tiles = numSpaceTiles(c);
  ctr.maxSmemElemsPerBlock = 2 * (c.spaceTile + 2 * c.timeTile + 2);
  for (i64 band = 0; band * c.timeTile < c.timeSteps; ++band) {
    i64 steps = std::min(c.timeTile, c.timeSteps - band * c.timeTile);
    for (i64 tIdx = 0; tIdx < tiles; ++tIdx) {
      i64 lo = 1 + tIdx * c.spaceTile;
      i64 hi = std::min(c.n - 2, lo + c.spaceTile - 1);
      if (lo > hi) continue;
      i64 loH = std::max<i64>(0, lo - steps);
      i64 hiH = std::min<i64>(c.n - 1, hi + steps);
      i64 width = hiH - loH + 1;
      ctr.globalElems += width + (hi - lo + 1);
      ctr.smemElems += width + (hi - lo + 1);
      ctr.intraSyncs += 2 + steps;
      for (i64 s = 1; s <= steps; ++s) {
        i64 rl = loH == 0 ? 1 : loH + s;
        i64 rh = hiH == c.n - 1 ? c.n - 2 : hiH - s;
        i64 len = std::max<i64>(0, rh - rl + 1);
        ctr.smemElems += 6 * len;
        ctr.computeOps += 4 * len;
      }
    }
    ++ctr.interBlockSyncs;
  }
  return ctr;
}

KernelModelJacobi jacobiMachineModel(const JacobiConfig& c) {
  JacobiCounters ctr = modelJacobi(c);
  KernelModelJacobi m;
  m.launch.numBlocks = c.numBlocks;
  m.launch.threadsPerBlock = c.numThreads;
  m.launch.interBlockSyncs = ctr.interBlockSyncs;
  m.launch.smemBytesPerBlock = c.useScratchpad ? 4 * ctr.maxSmemElemsPerBlock : 0;
  // Work divides evenly across blocks (tiles are distributed round-robin).
  double inv = 1.0 / static_cast<double>(c.numBlocks);
  BlockWork total;
  total.globalElems = ctr.globalElems;
  total.smemElems = ctr.smemElems;
  total.computeOps = ctr.computeOps;
  total.intraSyncs = ctr.intraSyncs;
  m.perBlock = total.scaled(inv);
  // CPU baseline: a compiler-vectorized streaming 3-point stencil retires
  // roughly one SIMD op-equivalent per point per step with ~0.2 effective
  // memory elements (cache-resident streams). This per-kernel calibration
  // reflects that gcc -O3 vectorizes Jacobi but not the ME SAD loop; the
  // paper's CPU series are measurements of exactly such binaries.
  i64 interior = std::max<i64>(0, c.n - 2);
  m.cpuOps = mulChecked(interior, c.timeSteps);
  m.cpuMemElems = mulChecked(interior, c.timeSteps) / 5;
  return m;
}

}  // namespace emm
