// Workload program blocks.
//
// Builders produce polyhedral ProgramBlocks for the paper's kernels and
// worked example. Array extents are concrete (so blocks are executable);
// loop bounds reference symbolic parameters bound at execution time.
//
//  - Figure 1 block: the paper's worked example for data allocation and
//    movement (two 200x200 arrays, interleaved statements, overlapping
//    non-uniformly generated references).
//  - MPEG-4 Motion Estimation (Figure 2): FORALL i, j over frame positions;
//    FOR k, l over the search window; SAD accumulation
//      out[i][j] += |cur[i+k][j+l] - ref[i+k][j+l]|.
//  - 1-D Jacobi: time-iterated 3-point stencil with a copy-back statement.
//  - Matrix multiplication: extra pipeline example (all three references
//    have order-of-magnitude reuse).
#pragma once

#include "ir/program.h"

namespace emm {

/// Paper Figure 1. Parameters: none (constant bounds). Arrays A, B.
ProgramBlock buildFigure1Block();

/// MPEG-4 ME. Parameters {Ni, Nj, W}; arrays cur/ref of extent
/// (ni+w) x (nj+w) and out of extent ni x nj. Bind {ni, nj, w} at execution.
ProgramBlock buildMeBlock(i64 ni, i64 nj, i64 w);

/// 1-D Jacobi. Parameters {N, T}; arrays A[n], B[n]. Bind {n, t} at
/// execution. S1 computes B from A; S2 copies B back to A, per time step.
ProgramBlock buildJacobiBlock(i64 n, i64 t);

/// 2-D Jacobi (5-point stencil), an extension workload beyond the paper's
/// evaluation. Parameters {N, M, T}; arrays A[n][m], B[n][m]. Domain
/// (t, i, j) with interior i in [1, n-2], j in [1, m-2].
ProgramBlock buildJacobi2dBlock(i64 n, i64 m, i64 t);

/// Matmul C[i][j] += A[i][k] * B[k][j]. Parameters {N, M, K}.
ProgramBlock buildMatmulBlock(i64 n, i64 m, i64 k);

/// Builds a built-in block by name ("me", "jacobi", "jacobi2d", "matmul",
/// "figure1"), applying per-kernel default sizes for entries `sizes` does
/// not provide, and returning the parameter binding through `params`.
/// Throws ApiError for unknown names. Used by emmapc and the examples.
ProgramBlock buildKernelByName(const std::string& name, const std::vector<i64>& sizes,
                               IntVec& params);

/// Names accepted by buildKernelByName.
const std::vector<std::string>& builtinKernelNames();

/// Fast reference implementations (plain loops over raw arrays), used to
/// validate both the polyhedral reference executor and mapped kernels.
void referenceMe(const std::vector<double>& cur, const std::vector<double>& ref,
                 std::vector<double>& out, i64 ni, i64 nj, i64 w);
void referenceJacobi(std::vector<double>& a, std::vector<double>& b, i64 n, i64 t);
void referenceJacobi2d(std::vector<double>& a, std::vector<double>& b, i64 n, i64 m, i64 t);
void referenceMatmul(const std::vector<double>& a, const std::vector<double>& b,
                     std::vector<double>& c, i64 n, i64 m, i64 k);

}  // namespace emm
