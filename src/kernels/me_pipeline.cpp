#include "kernels/me_pipeline.h"

#include "driver/compiler.h"

namespace emm {

MePipeline buildMePipeline(const MeConfig& config) {
  MePipeline p;
  p.block = buildMeBlock(config.ni, config.nj, config.w);
  p.paramValues = {config.ni, config.nj, config.w};

  // Space loops are (i, j); divide the i range equally across blocks (the
  // paper distributes tiles equally, boundary tiles excepted). Block tiles
  // are rounded up to sub-tile multiples so sub-tiles nest exactly.
  i64 blockTileI = std::max<i64>(1, ceilDiv(config.ni, config.numBlocks));
  blockTileI = mulChecked(ceilDiv(blockTileI, config.subTile[0]), config.subTile[0]);
  i64 blockTileJ = mulChecked(ceilDiv(config.nj, config.subTile[1]), config.subTile[1]);

  // Threads cover the (i, j) sub-tile: distribute j across threads, i in
  // chunks of 1 (a thread-tile of 1 x 1 point per thread pass).
  CompileResult r = Compiler(p.block)
                        .parameters(p.paramValues)
                        .tileSizes(config.subTile)
                        .blockTileSizes({blockTileI, blockTileJ})
                        .threadTileSizes({1, 1})
                        .useScratchpad(config.useScratchpad)
                        .hoistCopies(config.hoistCopies)
                        .skipPass("tilesearch")  // sizes are given; no need to re-evaluate
                        .skipPass("codegen")     // callers render through a Backend themselves
                        .compile();
  EMM_REQUIRE(r.ok, "ME pipeline failed: " + r.firstError());
  EMM_REQUIRE(r.plan.spaceLoops.size() == 2, "ME should expose two space loops");
  EMM_REQUIRE(r.kernel.has_value(), "ME pipeline produced no tiled kernel");
  p.transform.block = std::move(*r.transformed);
  p.transform.plan = std::move(r.plan);
  p.transform.appliedSkews = std::move(r.appliedSkews);
  p.kernel = std::move(*r.kernel);
  return p;
}

KernelModel modelMe(const MeConfig& c) {
  KernelModel m;
  // Work decomposition. Every statement instance performs:
  //   1 write + 3 reads (out, cur, ref) and ~5 scalar ops
  // (sub, abs, add, plus addressing folded into the op count).
  i64 points = mulChecked(c.ni, c.nj);
  i64 instances = mulChecked(points, mulChecked(c.w, c.w));
  i64 pointsPerBlock = ceilDiv(points, c.numBlocks);
  i64 instancesPerBlock = mulChecked(pointsPerBlock, mulChecked(c.w, c.w));

  m.launch.numBlocks = c.numBlocks;
  m.launch.threadsPerBlock = c.numThreads;
  m.launch.interBlockSyncs = 0;  // ME needs no inter-block synchronization

  const i64 ti = c.subTile[0], tj = c.subTile[1], tk = c.subTile[2], tl = c.subTile[3];
  if (!c.useScratchpad) {
    m.launch.smemBytesPerBlock = 0;
    m.perBlock.globalElems = mulChecked(4, instancesPerBlock);
    m.perBlock.smemElems = 0;
    m.perBlock.computeOps = mulChecked(5, instancesPerBlock);
    m.perBlock.intraSyncs = 0;
  } else {
    // Buffers per sub-tile: Lout = ti*tj; Lcur = Lref = (ti+tk-1)*(tj+tl-1)
    // ... except k, l tiles covering the full window give (ti+W-1)(tj+W-1).
    i64 kl = mulChecked(ceilDiv(c.w, tk), ceilDiv(c.w, tl));
    i64 curExt = mulChecked(ti + std::min(tk, c.w) - 1, tj + std::min(tl, c.w) - 1);
    m.launch.smemBytesPerBlock =
        mulChecked(4, addChecked(mulChecked(ti, tj), mulChecked(2, curExt)));

    i64 ijTilesPerBlock = ceilDiv(pointsPerBlock, mulChecked(ti, tj));
    // out: moved in+out once per (i,j) sub-tile (hoisted above k', l').
    i64 outTraffic = mulChecked(2, pointsPerBlock);
    // cur/ref: moved in once per full (i,j,k,l) sub-tile.
    i64 windowTraffic = mulChecked(mulChecked(ijTilesPerBlock, kl), mulChecked(2, curExt));
    m.perBlock.globalElems = addChecked(outTraffic, windowTraffic);
    // Compute touches the scratchpad 4x per instance; every copied element
    // additionally costs one scratchpad access (fill on move-in, drain on
    // move-out).
    m.perBlock.smemElems =
        addChecked(mulChecked(4, instancesPerBlock), m.perBlock.globalElems);
    m.perBlock.computeOps = mulChecked(5, instancesPerBlock);
    // One barrier after each copy fragment: 2 per (i,j) tile for out
    // (in+out), 2 per inner sub-tile for cur+ref move-ins.
    m.perBlock.intraSyncs =
        addChecked(mulChecked(2, ijTilesPerBlock), mulChecked(2, mulChecked(ijTilesPerBlock, kl)));
  }

  // CPU baseline: same instances on one core; effective memory touches are
  // mostly cache hits, modeled as one element per instance.
  m.cpuOps = mulChecked(5, instances);
  m.cpuMemElems = instances;
  return m;
}

}  // namespace emm
