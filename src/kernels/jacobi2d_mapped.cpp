#include "kernels/jacobi2d_mapped.h"

#include <algorithm>

namespace emm {

namespace {

struct TileGeom {
  i64 lo, hi;    // interior owned range (inclusive)
  i64 loH, hiH;  // loaded range with halo (inclusive, clamped to [0, n-1])
};

TileGeom geom(i64 tileIdx, i64 tileSize, i64 steps, i64 n) {
  TileGeom t;
  t.lo = 1 + tileIdx * tileSize;
  t.hi = std::min(n - 2, t.lo + tileSize - 1);
  t.loH = std::max<i64>(0, t.lo - steps);
  t.hiH = std::min<i64>(n - 1, t.hi + steps);
  return t;
}

/// Valid compute range of a tile at local step s (1-based). A side resting
/// on the physical boundary never shrinks (boundary values are constant).
std::pair<i64, i64> regionAt(const TileGeom& t, i64 s, i64 n) {
  i64 rl = t.loH == 0 ? 1 : t.loH + s;
  i64 rh = t.hiH == n - 1 ? n - 2 : t.hiH - s;
  return {rl, rh};
}

}  // namespace

Jacobi2dCounters runJacobi2dMapped(const Jacobi2dConfig& c, std::vector<double>& a) {
  EMM_CHECK(static_cast<i64>(a.size()) == c.n * c.m, "array size mismatch");
  Jacobi2dCounters ctr;

  if (!c.useScratchpad) {
    std::vector<double> b(a.size(), 0.0);
    for (i64 step = 0; step < c.timeSteps; ++step) {
      for (i64 i = 1; i <= c.n - 2; ++i)
        for (i64 j = 1; j <= c.m - 2; ++j) {
          b[i * c.m + j] = (a[i * c.m + j] + a[(i - 1) * c.m + j] + a[(i + 1) * c.m + j] +
                            a[i * c.m + j - 1] + a[i * c.m + j + 1]) /
                           5;
          ctr.globalElems += 6;  // 5 reads + 1 write
          ctr.computeOps += 6;
        }
      for (i64 i = 1; i <= c.n - 2; ++i)
        for (i64 j = 1; j <= c.m - 2; ++j) {
          a[i * c.m + j] = b[i * c.m + j];
          ctr.globalElems += 2;
        }
      ++ctr.interBlockSyncs;
    }
    return ctr;
  }

  const i64 tilesI = std::max<i64>(1, ceilDiv(c.n - 2, c.spaceTileI));
  const i64 tilesJ = std::max<i64>(1, ceilDiv(c.m - 2, c.spaceTileJ));
  const i64 li = c.spaceTileI + 2 * c.timeTile + 2;
  const i64 lj = c.spaceTileJ + 2 * c.timeTile + 2;
  std::vector<double> local(static_cast<size_t>(li * lj));
  std::vector<double> scratch(local.size());
  ctr.maxSmemElemsPerBlock = static_cast<i64>(local.size() + scratch.size());
  std::vector<double> snapshot(a.size());

  for (i64 band = 0; band * c.timeTile < c.timeSteps; ++band) {
    i64 steps = std::min(c.timeTile, c.timeSteps - band * c.timeTile);
    snapshot = a;
    for (i64 ti = 0; ti < tilesI; ++ti) {
      for (i64 tj = 0; tj < tilesJ; ++tj) {
        TileGeom gi = geom(ti, c.spaceTileI, steps, c.n);
        TileGeom gj = geom(tj, c.spaceTileJ, steps, c.m);
        if (gi.lo > gi.hi || gj.lo > gj.hi) continue;
        i64 wi = gi.hiH - gi.loH + 1, wj = gj.hiH - gj.loH + 1;

        // Move-in (tile + halo ring).
        for (i64 i = gi.loH; i <= gi.hiH; ++i)
          for (i64 j = gj.loH; j <= gj.hiH; ++j)
            local[static_cast<size_t>((i - gi.loH) * lj + (j - gj.loH))] =
                snapshot[i * c.m + j];
        ctr.globalElems += wi * wj;
        ctr.smemElems += wi * wj;
        ctr.intraSyncs += 1;

        for (i64 s = 1; s <= steps; ++s) {
          auto [ril, rih] = regionAt(gi, s, c.n);
          auto [rjl, rjh] = regionAt(gj, s, c.m);
          for (i64 i = ril; i <= rih; ++i)
            for (i64 j = rjl; j <= rjh; ++j) {
              size_t p = static_cast<size_t>((i - gi.loH) * lj + (j - gj.loH));
              scratch[p] = (local[p] + local[p - static_cast<size_t>(lj)] +
                            local[p + static_cast<size_t>(lj)] + local[p - 1] + local[p + 1]) /
                           5;
            }
          for (i64 i = ril; i <= rih; ++i)
            for (i64 j = rjl; j <= rjh; ++j) {
              size_t p = static_cast<size_t>((i - gi.loH) * lj + (j - gj.loH));
              local[p] = scratch[p];
            }
          i64 len = std::max<i64>(0, rih - ril + 1) * std::max<i64>(0, rjh - rjl + 1);
          ctr.smemElems += 8 * len;  // 5 reads + 1 write + copy (1 read + 1 write)
          ctr.computeOps += 6 * len;
          ctr.intraSyncs += 1;
        }

        // Move-out interior.
        for (i64 i = gi.lo; i <= gi.hi; ++i)
          for (i64 j = gj.lo; j <= gj.hi; ++j)
            a[i * c.m + j] = local[static_cast<size_t>((i - gi.loH) * lj + (j - gj.loH))];
        i64 interior = (gi.hi - gi.lo + 1) * (gj.hi - gj.lo + 1);
        ctr.globalElems += interior;
        ctr.smemElems += interior;
        ctr.intraSyncs += 1;
      }
    }
    ++ctr.interBlockSyncs;
  }
  return ctr;
}

Jacobi2dCounters modelJacobi2d(const Jacobi2dConfig& c) {
  Jacobi2dCounters ctr;
  if (!c.useScratchpad) {
    i64 interior = std::max<i64>(0, c.n - 2) * std::max<i64>(0, c.m - 2);
    ctr.globalElems = mulChecked(8, mulChecked(interior, c.timeSteps));
    ctr.computeOps = mulChecked(6, mulChecked(interior, c.timeSteps));
    ctr.interBlockSyncs = c.timeSteps;
    return ctr;
  }
  const i64 tilesI = std::max<i64>(1, ceilDiv(c.n - 2, c.spaceTileI));
  const i64 tilesJ = std::max<i64>(1, ceilDiv(c.m - 2, c.spaceTileJ));
  ctr.maxSmemElemsPerBlock =
      2 * (c.spaceTileI + 2 * c.timeTile + 2) * (c.spaceTileJ + 2 * c.timeTile + 2);
  for (i64 band = 0; band * c.timeTile < c.timeSteps; ++band) {
    i64 steps = std::min(c.timeTile, c.timeSteps - band * c.timeTile);
    for (i64 ti = 0; ti < tilesI; ++ti) {
      for (i64 tj = 0; tj < tilesJ; ++tj) {
        TileGeom gi = geom(ti, c.spaceTileI, steps, c.n);
        TileGeom gj = geom(tj, c.spaceTileJ, steps, c.m);
        if (gi.lo > gi.hi || gj.lo > gj.hi) continue;
        i64 wi = gi.hiH - gi.loH + 1, wj = gj.hiH - gj.loH + 1;
        i64 interior = (gi.hi - gi.lo + 1) * (gj.hi - gj.lo + 1);
        ctr.globalElems += wi * wj + interior;
        ctr.smemElems += wi * wj + interior;
        ctr.intraSyncs += 2 + steps;
        for (i64 s = 1; s <= steps; ++s) {
          auto [ril, rih] = regionAt(gi, s, c.n);
          auto [rjl, rjh] = regionAt(gj, s, c.m);
          i64 len = std::max<i64>(0, rih - ril + 1) * std::max<i64>(0, rjh - rjl + 1);
          ctr.smemElems += 8 * len;
          ctr.computeOps += 6 * len;
        }
      }
    }
    ++ctr.interBlockSyncs;
  }
  return ctr;
}

KernelModelJacobi2d jacobi2dMachineModel(const Jacobi2dConfig& c) {
  Jacobi2dCounters ctr = modelJacobi2d(c);
  KernelModelJacobi2d m;
  m.launch.numBlocks = c.numBlocks;
  m.launch.threadsPerBlock = c.numThreads;
  m.launch.interBlockSyncs = ctr.interBlockSyncs;
  m.launch.smemBytesPerBlock = c.useScratchpad ? 4 * ctr.maxSmemElemsPerBlock : 0;
  BlockWork total;
  total.globalElems = ctr.globalElems;
  total.smemElems = ctr.smemElems;
  total.computeOps = ctr.computeOps;
  total.intraSyncs = ctr.intraSyncs;
  m.perBlock = total.scaled(1.0 / static_cast<double>(c.numBlocks));
  // CPU: vectorized 5-point stencil, ~1.5 op-equivalents per point per step.
  i64 interior = std::max<i64>(0, c.n - 2) * std::max<i64>(0, c.m - 2);
  m.cpuOps = mulChecked(interior, c.timeSteps) * 3 / 2;
  m.cpuMemElems = mulChecked(interior, c.timeSteps) / 4;
  return m;
}

}  // namespace emm
