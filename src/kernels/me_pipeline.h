// End-to-end compiler pipeline for the Motion Estimation kernel, plus the
// analytic performance-counter model used at benchmark problem sizes.
//
// The pipeline is the real thing: block construction -> dependence analysis
// -> parallelism detection -> multi-level tiling with the Section-3
// scratchpad framework. Tests execute the resulting CodeUnit through the
// interpreter at small sizes and check both semantics (against the plain
// reference) and counters (against the analytic model below); benchmarks
// then evaluate the analytic model at the paper's problem sizes, where
// interpretation would be impractically slow.
#pragma once

#include "gpusim/machine.h"
#include "kernels/blocks.h"
#include "tiling/multilevel.h"

namespace emm {

/// Launch/tiling configuration for ME, mirroring Section 6's setup.
struct MeConfig {
  i64 ni = 64, nj = 64, w = 16;  ///< frame dims and search-window size
  i64 numBlocks = 32;            ///< thread blocks (paper: 32)
  i64 numThreads = 256;          ///< threads per block (paper: 256)
  std::vector<i64> subTile = {32, 16, 16, 16};  ///< (i, j, k, l) sub-tile
  bool useScratchpad = true;
  bool hoistCopies = true;
};

/// The compiled kernel (real pipeline output).
struct MePipeline {
  ProgramBlock block;
  TransformResult transform;
  TiledKernel kernel;
  IntVec paramValues;  ///< {ni, nj, w}
};

/// Runs the full pipeline. Block tiles divide the i-range across
/// `numBlocks` (the paper divides the problem equally among blocks).
MePipeline buildMePipeline(const MeConfig& config);

/// Analytic per-block work and launch shape for the same mapping.
/// Validated against interpreter traces in tests/kernels_test.cpp.
struct KernelModel {
  LaunchConfig launch;
  BlockWork perBlock;
  i64 cpuOps = 0;     ///< scalar ops for the CPU baseline
  i64 cpuMemElems = 0;  ///< memory elements for the CPU baseline
};
KernelModel modelMe(const MeConfig& config);

}  // namespace emm
