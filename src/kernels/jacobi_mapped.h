// Concurrent-start mapped 1-D Jacobi kernel (paper Section 6, Figures 5/7/8).
//
// The paper tiles Jacobi with the concurrent-start framework of [27]
// (Krishnamoorthy et al., PLDI 2007): time is tiled into bands of Tt steps;
// within a band every thread block processes its space tiles independently
// using overlapped (trapezoidal) tiles — each block loads its tile plus a
// halo of Tt elements on each side into the scratchpad, performs Tt steps
// locally (recomputing the shrinking halo region redundantly), and writes
// back the tile interior. One inter-block synchronization separates
// consecutive time bands. This gives concurrent start across all blocks.
//
// We implement that mapped kernel directly as an executable C++ routine that
// also counts memory traffic and synchronizations (the paper likewise
// obtained this code from a separate framework rather than from the
// Section-4 tiler). Tests validate it bit-for-bit against the plain Jacobi
// reference; the counter totals feed the machine simulator.
#pragma once

#include <vector>

#include "gpusim/machine.h"
#include "support/checked_int.h"

namespace emm {

struct JacobiConfig {
  i64 n = 1 << 14;       ///< problem size (elements)
  i64 timeSteps = 4096;  ///< T
  i64 timeTile = 32;     ///< Tt (paper: 32)
  i64 spaceTile = 256;   ///< elements per tile moved to scratchpad (paper: 256)
  i64 numBlocks = 128;   ///< thread blocks (paper: 128 for large sizes)
  i64 numThreads = 64;   ///< threads per block (paper: 64)
  bool useScratchpad = true;
};

/// Counters accumulated by one execution (totals over all blocks).
struct JacobiCounters {
  i64 globalElems = 0;
  i64 smemElems = 0;
  i64 computeOps = 0;
  i64 intraSyncs = 0;      ///< per-block barrier executions (total)
  i64 interBlockSyncs = 0; ///< global barriers
  i64 maxSmemElemsPerBlock = 0;
};

/// Executes the mapped kernel on `a` (in/out) using scratch `b`, mutating
/// them exactly as `referenceJacobi` would, and returns the counters.
/// With useScratchpad=false, executes the untiled global-memory variant
/// (every access charged to global memory; one global barrier per step).
JacobiCounters runJacobiMapped(const JacobiConfig& config, std::vector<double>& a,
                               std::vector<double>& b);

/// Analytic counter model (no execution); agrees with runJacobiMapped.
/// Validated in tests/kernels_test.cpp.
JacobiCounters modelJacobi(const JacobiConfig& config);

/// Converts counters to a launch + per-block work for the simulator.
struct KernelModelJacobi {
  LaunchConfig launch;
  BlockWork perBlock;
  i64 cpuOps = 0;
  i64 cpuMemElems = 0;
};
KernelModelJacobi jacobiMachineModel(const JacobiConfig& config);

}  // namespace emm
