#include "kernels/blocks.h"

#include <cmath>

namespace emm {

namespace {

/// Constraint row helper over [iters(dim), params(np), 1].
IntVec row(int dim, int np, std::initializer_list<std::pair<int, i64>> iterCoeffs,
           std::initializer_list<std::pair<int, i64>> paramCoeffs, i64 cnst) {
  IntVec r(dim + np + 1, 0);
  for (auto [i, c] : iterCoeffs) r[i] = c;
  for (auto [p, c] : paramCoeffs) r[dim + p] = c;
  r.back() = cnst;
  return r;
}

/// Access-function row builder: one row per array dimension.
IntMat accessFn(int dim, int np, std::initializer_list<IntVec> rows) {
  IntMat m(0, dim + np + 1);
  for (const IntVec& r : rows) m.appendRow(r);
  return m;
}

}  // namespace

ProgramBlock buildFigure1Block() {
  // Original code (paper Figure 1):
  //   for (i = 10..14)
  //     for (j = 10..14) {
  //       A[i][j+1] = A[i+j][j+1] * 3;                 // S1
  //       for (k = 11..20)
  //         B[i][j+k] = A[i][k] + B[i+j][k];           // S2
  //     }
  ProgramBlock block;
  block.name = "figure1";
  block.arrays = {{"A", {200, 200}}, {"B", {200, 200}}};

  const int np = 0;
  // S1: dim 2 (i, j).
  {
    Statement s1;
    s1.name = "S1";
    s1.domain = Polyhedron(2, np);
    s1.domain.addRange(0, 10, 14);
    s1.domain.addRange(1, 10, 14);
    // Accesses: write A[i][j+1]; read A[i+j][j+1].
    Access w;
    w.arrayId = 0;
    w.isWrite = true;
    w.fn = accessFn(2, np, {row(2, np, {{0, 1}}, {}, 0), row(2, np, {{1, 1}}, {}, 1)});
    Access r;
    r.arrayId = 0;
    r.isWrite = false;
    r.fn = accessFn(2, np, {row(2, np, {{0, 1}, {1, 1}}, {}, 0), row(2, np, {{1, 1}}, {}, 1)});
    s1.accesses = {w, r};
    s1.writeAccess = 0;
    s1.rhs = Expr::mul(Expr::load(1), Expr::constant(3));
    s1.schedule = ProgramBlock::interleavedSchedule(2, np, {0, 0, 0});
    block.statements.push_back(std::move(s1));
  }
  // S2: dim 3 (i, j, k).
  {
    Statement s2;
    s2.name = "S2";
    s2.domain = Polyhedron(3, np);
    s2.domain.addRange(0, 10, 14);
    s2.domain.addRange(1, 10, 14);
    s2.domain.addRange(2, 11, 20);
    // Write B[i][j+k]; reads A[i][k], B[i+j][k].
    Access w;
    w.arrayId = 1;
    w.isWrite = true;
    w.fn = accessFn(3, np, {row(3, np, {{0, 1}}, {}, 0), row(3, np, {{1, 1}, {2, 1}}, {}, 0)});
    Access ra;
    ra.arrayId = 0;
    ra.isWrite = false;
    ra.fn = accessFn(3, np, {row(3, np, {{0, 1}}, {}, 0), row(3, np, {{2, 1}}, {}, 0)});
    Access rb;
    rb.arrayId = 1;
    rb.isWrite = false;
    rb.fn = accessFn(3, np, {row(3, np, {{0, 1}, {1, 1}}, {}, 0), row(3, np, {{2, 1}}, {}, 0)});
    s2.accesses = {w, ra, rb};
    s2.writeAccess = 0;
    s2.rhs = Expr::add(Expr::load(1), Expr::load(2));
    // Positions: same i, j loops as S1; S2 textually after S1 at depth 2.
    s2.schedule = ProgramBlock::interleavedSchedule(3, np, {0, 0, 1, 0});
    block.statements.push_back(std::move(s2));
  }
  block.validate();
  return block;
}

ProgramBlock buildMeBlock(i64 ni, i64 nj, i64 w) {
  ProgramBlock block;
  block.name = "mpeg4_me";
  block.paramNames = {"Ni", "Nj", "W"};
  block.arrays = {{"cur", {ni + w, nj + w}}, {"ref", {ni + w, nj + w}}, {"out", {ni, nj}}};

  const int np = 3, dim = 4;
  Statement s;
  s.name = "Ssad";
  s.domain = Polyhedron(dim, np);
  // 0 <= i <= Ni-1; 0 <= j <= Nj-1; 0 <= k,l <= W-1.
  s.domain.addInequality(row(dim, np, {{0, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{0, -1}}, {{0, 1}}, -1));
  s.domain.addInequality(row(dim, np, {{1, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{1, -1}}, {{1, 1}}, -1));
  s.domain.addInequality(row(dim, np, {{2, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{2, -1}}, {{2, 1}}, -1));
  s.domain.addInequality(row(dim, np, {{3, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{3, -1}}, {{2, 1}}, -1));

  Access wOut;
  wOut.arrayId = 2;
  wOut.isWrite = true;
  wOut.fn = accessFn(dim, np, {row(dim, np, {{0, 1}}, {}, 0), row(dim, np, {{1, 1}}, {}, 0)});
  Access rOut = wOut;
  rOut.isWrite = false;
  Access rCur;
  rCur.arrayId = 0;
  rCur.isWrite = false;
  rCur.fn = accessFn(
      dim, np, {row(dim, np, {{0, 1}, {2, 1}}, {}, 0), row(dim, np, {{1, 1}, {3, 1}}, {}, 0)});
  Access rRef = rCur;
  rRef.arrayId = 1;
  s.accesses = {wOut, rOut, rCur, rRef};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::abs(Expr::sub(Expr::load(2), Expr::load(3))));
  s.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 0, 0, 0, 0});
  block.statements.push_back(std::move(s));
  block.validate();
  return block;
}

ProgramBlock buildJacobiBlock(i64 n, i64 t) {
  (void)t;
  ProgramBlock block;
  block.name = "jacobi1d";
  block.paramNames = {"N", "T"};
  block.arrays = {{"A", {n}}, {"B", {n}}};

  const int np = 2, dim = 2;  // (t, i)
  auto makeDomain = [&]() {
    Polyhedron d(dim, np);
    d.addInequality(row(dim, np, {{0, 1}}, {}, 0));            // t >= 0
    d.addInequality(row(dim, np, {{0, -1}}, {{1, 1}}, -1));    // t <= T-1
    d.addInequality(row(dim, np, {{1, 1}}, {}, -1));           // i >= 1
    d.addInequality(row(dim, np, {{1, -1}}, {{0, 1}}, -2));    // i <= N-2
    return d;
  };
  {
    Statement s1;
    s1.name = "Sstencil";
    s1.domain = makeDomain();
    Access wB;
    wB.arrayId = 1;
    wB.isWrite = true;
    wB.fn = accessFn(dim, np, {row(dim, np, {{1, 1}}, {}, 0)});
    Access rm;
    rm.arrayId = 0;
    rm.isWrite = false;
    rm.fn = accessFn(dim, np, {row(dim, np, {{1, 1}}, {}, -1)});
    Access rc = rm;
    rc.fn = accessFn(dim, np, {row(dim, np, {{1, 1}}, {}, 0)});
    Access rp = rm;
    rp.fn = accessFn(dim, np, {row(dim, np, {{1, 1}}, {}, 1)});
    s1.accesses = {wB, rm, rc, rp};
    s1.writeAccess = 0;
    s1.rhs = Expr::div(Expr::add(Expr::add(Expr::load(1), Expr::load(2)), Expr::load(3)),
                       Expr::constant(3));
    s1.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 0, 0});
    block.statements.push_back(std::move(s1));
  }
  {
    Statement s2;
    s2.name = "Scopy";
    s2.domain = makeDomain();
    Access wA;
    wA.arrayId = 0;
    wA.isWrite = true;
    wA.fn = accessFn(dim, np, {row(dim, np, {{1, 1}}, {}, 0)});
    Access rB;
    rB.arrayId = 1;
    rB.isWrite = false;
    rB.fn = accessFn(dim, np, {row(dim, np, {{1, 1}}, {}, 0)});
    s2.accesses = {wA, rB};
    s2.writeAccess = 0;
    s2.rhs = Expr::load(1);
    // Same t loop; i loop at position 1 after S1's i loop completes.
    s2.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 1, 0});
    block.statements.push_back(std::move(s2));
  }
  block.validate();
  return block;
}

ProgramBlock buildJacobi2dBlock(i64 n, i64 m, i64 t) {
  (void)t;
  ProgramBlock block;
  block.name = "jacobi2d";
  block.paramNames = {"N", "M", "T"};
  block.arrays = {{"A", {n, m}}, {"B", {n, m}}};

  const int np = 3, dim = 3;  // (t, i, j)
  auto makeDomain = [&]() {
    Polyhedron d(dim, np);
    d.addInequality(row(dim, np, {{0, 1}}, {}, 0));          // t >= 0
    d.addInequality(row(dim, np, {{0, -1}}, {{2, 1}}, -1));  // t <= T-1
    d.addInequality(row(dim, np, {{1, 1}}, {}, -1));         // i >= 1
    d.addInequality(row(dim, np, {{1, -1}}, {{0, 1}}, -2));  // i <= N-2
    d.addInequality(row(dim, np, {{2, 1}}, {}, -1));         // j >= 1
    d.addInequality(row(dim, np, {{2, -1}}, {{1, 1}}, -2));  // j <= M-2
    return d;
  };
  auto point = [&](i64 di, i64 dj) {
    return accessFn(dim, np,
                    {row(dim, np, {{1, 1}}, {}, di), row(dim, np, {{2, 1}}, {}, dj)});
  };
  {
    Statement s1;
    s1.name = "Sstencil2d";
    s1.domain = makeDomain();
    Access wB{1, point(0, 0), true};
    Access rc{0, point(0, 0), false};
    Access rn{0, point(-1, 0), false};
    Access rs{0, point(1, 0), false};
    Access rw{0, point(0, -1), false};
    Access re{0, point(0, 1), false};
    s1.accesses = {wB, rc, rn, rs, rw, re};
    s1.writeAccess = 0;
    s1.rhs = Expr::div(
        Expr::add(Expr::add(Expr::add(Expr::load(1), Expr::load(2)),
                            Expr::add(Expr::load(3), Expr::load(4))),
                  Expr::load(5)),
        Expr::constant(5));
    s1.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 0, 0, 0});
    block.statements.push_back(std::move(s1));
  }
  {
    Statement s2;
    s2.name = "Scopy2d";
    s2.domain = makeDomain();
    Access wA{0, point(0, 0), true};
    Access rB{1, point(0, 0), false};
    s2.accesses = {wA, rB};
    s2.writeAccess = 0;
    s2.rhs = Expr::load(1);
    s2.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 1, 0, 0});
    block.statements.push_back(std::move(s2));
  }
  block.validate();
  return block;
}

ProgramBlock buildMatmulBlock(i64 n, i64 m, i64 k) {
  ProgramBlock block;
  block.name = "matmul";
  block.paramNames = {"N", "M", "K"};
  block.arrays = {{"A", {n, k}}, {"B", {k, m}}, {"C", {n, m}}};

  const int np = 3, dim = 3;  // (i, j, p)
  Statement s;
  s.name = "Smm";
  s.domain = Polyhedron(dim, np);
  s.domain.addInequality(row(dim, np, {{0, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{0, -1}}, {{0, 1}}, -1));
  s.domain.addInequality(row(dim, np, {{1, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{1, -1}}, {{1, 1}}, -1));
  s.domain.addInequality(row(dim, np, {{2, 1}}, {}, 0));
  s.domain.addInequality(row(dim, np, {{2, -1}}, {{2, 1}}, -1));

  Access wC;
  wC.arrayId = 2;
  wC.isWrite = true;
  wC.fn = accessFn(dim, np, {row(dim, np, {{0, 1}}, {}, 0), row(dim, np, {{1, 1}}, {}, 0)});
  Access rC = wC;
  rC.isWrite = false;
  Access rA;
  rA.arrayId = 0;
  rA.isWrite = false;
  rA.fn = accessFn(dim, np, {row(dim, np, {{0, 1}}, {}, 0), row(dim, np, {{2, 1}}, {}, 0)});
  Access rB;
  rB.arrayId = 1;
  rB.isWrite = false;
  rB.fn = accessFn(dim, np, {row(dim, np, {{2, 1}}, {}, 0), row(dim, np, {{1, 1}}, {}, 0)});
  s.accesses = {wC, rC, rA, rB};
  s.writeAccess = 0;
  s.rhs = Expr::add(Expr::load(1), Expr::mul(Expr::load(2), Expr::load(3)));
  s.schedule = ProgramBlock::interleavedSchedule(dim, np, {0, 0, 0, 0});
  block.statements.push_back(std::move(s));
  block.validate();
  return block;
}

void referenceMe(const std::vector<double>& cur, const std::vector<double>& ref,
                 std::vector<double>& out, i64 ni, i64 nj, i64 w) {
  EMM_CHECK(static_cast<i64>(cur.size()) == (ni + w) * (nj + w), "cur size mismatch");
  EMM_CHECK(static_cast<i64>(out.size()) == ni * nj, "out size mismatch");
  i64 stride = nj + w;
  for (i64 i = 0; i < ni; ++i)
    for (i64 j = 0; j < nj; ++j) {
      double acc = out[i * nj + j];
      for (i64 k = 0; k < w; ++k)
        for (i64 l = 0; l < w; ++l)
          acc += std::fabs(cur[(i + k) * stride + (j + l)] - ref[(i + k) * stride + (j + l)]);
      out[i * nj + j] = acc;
    }
}

void referenceJacobi(std::vector<double>& a, std::vector<double>& b, i64 n, i64 t) {
  EMM_CHECK(static_cast<i64>(a.size()) == n && static_cast<i64>(b.size()) == n,
            "array size mismatch");
  for (i64 step = 0; step < t; ++step) {
    for (i64 i = 1; i <= n - 2; ++i) b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
    for (i64 i = 1; i <= n - 2; ++i) a[i] = b[i];
  }
}

void referenceJacobi2d(std::vector<double>& a, std::vector<double>& b, i64 n, i64 m, i64 t) {
  EMM_CHECK(static_cast<i64>(a.size()) == n * m && static_cast<i64>(b.size()) == n * m,
            "array size mismatch");
  for (i64 step = 0; step < t; ++step) {
    for (i64 i = 1; i <= n - 2; ++i)
      for (i64 j = 1; j <= m - 2; ++j)
        b[i * m + j] = (a[i * m + j] + a[(i - 1) * m + j] + a[(i + 1) * m + j] +
                        a[i * m + j - 1] + a[i * m + j + 1]) /
                       5;
    for (i64 i = 1; i <= n - 2; ++i)
      for (i64 j = 1; j <= m - 2; ++j) a[i * m + j] = b[i * m + j];
  }
}

void referenceMatmul(const std::vector<double>& a, const std::vector<double>& b,
                     std::vector<double>& c, i64 n, i64 m, i64 k) {
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < m; ++j) {
      double acc = c[i * m + j];
      for (i64 p = 0; p < k; ++p) acc += a[i * k + p] * b[p * m + j];
      c[i * m + j] = acc;
    }
}

ProgramBlock buildKernelByName(const std::string& name, const std::vector<i64>& sizes,
                               IntVec& params) {
  auto size = [&](size_t i, i64 fallback) { return sizes.size() > i ? sizes[i] : fallback; };
  if (name == "me") {
    params = {size(0, 256), size(1, 128), size(2, 16)};
    return buildMeBlock(params[0], params[1], params[2]);
  }
  if (name == "jacobi") {
    params = {size(0, 4096), size(1, 64)};
    return buildJacobiBlock(params[0], params[1]);
  }
  if (name == "jacobi2d") {
    params = {size(0, 128), size(1, 128), size(2, 16)};
    return buildJacobi2dBlock(params[0], params[1], params[2]);
  }
  if (name == "matmul") {
    params = {size(0, 128), size(1, 128), size(2, 128)};
    return buildMatmulBlock(params[0], params[1], params[2]);
  }
  if (name == "figure1") {
    params = {};
    return buildFigure1Block();
  }
  throw ApiError("unknown kernel '" + name + "'");
}

const std::vector<std::string>& builtinKernelNames() {
  static const std::vector<std::string> names = {"me", "jacobi", "jacobi2d", "matmul",
                                                 "figure1"};
  return names;
}

}  // namespace emm
