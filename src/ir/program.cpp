#include "ir/program.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "poly/enumerate.h"

namespace emm {

// Expr factories. Members are private; we construct via a local mutable
// instance and copy into the shared_ptr (Expr is a value type internally).
struct ExprAccess {
  static ExprPtr make(Expr::Kind k, double c, int idx, ExprPtr a, ExprPtr b) {
    Expr e;
    e.kind_ = k;
    e.cval_ = c;
    e.accessIdx_ = idx;
    e.a_ = std::move(a);
    e.b_ = std::move(b);
    return std::make_shared<const Expr>(std::move(e));
  }
};

ExprPtr Expr::constant(double v) { return ExprAccess::make(Kind::Const, v, -1, nullptr, nullptr); }
ExprPtr Expr::load(int accessIdx) {
  EMM_CHECK(accessIdx >= 0, "negative access index");
  return ExprAccess::make(Kind::Load, 0, accessIdx, nullptr, nullptr);
}
ExprPtr Expr::add(ExprPtr a, ExprPtr b) { return ExprAccess::make(Kind::Add, 0, -1, std::move(a), std::move(b)); }
ExprPtr Expr::sub(ExprPtr a, ExprPtr b) { return ExprAccess::make(Kind::Sub, 0, -1, std::move(a), std::move(b)); }
ExprPtr Expr::mul(ExprPtr a, ExprPtr b) { return ExprAccess::make(Kind::Mul, 0, -1, std::move(a), std::move(b)); }
ExprPtr Expr::div(ExprPtr a, ExprPtr b) { return ExprAccess::make(Kind::Div, 0, -1, std::move(a), std::move(b)); }
ExprPtr Expr::abs(ExprPtr a) { return ExprAccess::make(Kind::Abs, 0, -1, std::move(a), nullptr); }
ExprPtr Expr::min(ExprPtr a, ExprPtr b) { return ExprAccess::make(Kind::Min, 0, -1, std::move(a), std::move(b)); }
ExprPtr Expr::max(ExprPtr a, ExprPtr b) { return ExprAccess::make(Kind::Max, 0, -1, std::move(a), std::move(b)); }

std::string Expr::str(const std::vector<std::string>& accessText) const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::Const: {
      os << cval_;
      break;
    }
    case Kind::Load: {
      EMM_CHECK(accessIdx_ < static_cast<int>(accessText.size()), "access index out of range");
      os << accessText[accessIdx_];
      break;
    }
    case Kind::Abs:
      os << "fabs(" << a_->str(accessText) << ")";
      break;
    case Kind::Min:
      os << "min(" << a_->str(accessText) << ", " << b_->str(accessText) << ")";
      break;
    case Kind::Max:
      os << "max(" << a_->str(accessText) << ", " << b_->str(accessText) << ")";
      break;
    default: {
      const char* op = kind_ == Kind::Add ? " + " : kind_ == Kind::Sub ? " - "
                       : kind_ == Kind::Mul ? " * " : " / ";
      os << "(" << a_->str(accessText) << op << b_->str(accessText) << ")";
      break;
    }
  }
  return os.str();
}

int ProgramBlock::arrayIdByName(const std::string& n) const {
  for (size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == n) return static_cast<int>(i);
  return -1;
}

IntMat ProgramBlock::interleavedSchedule(int dim, int nparam, const std::vector<i64>& positions) {
  EMM_REQUIRE(static_cast<int>(positions.size()) == dim + 1,
              "interleavedSchedule needs dim+1 static positions");
  IntMat s(2 * dim + 1, dim + nparam + 1);
  for (int d = 0; d < dim; ++d) {
    s.at(2 * d, dim + nparam) = positions[d];  // static position
    s.at(2 * d + 1, d) = 1;                    // loop iterator
  }
  s.at(2 * dim, dim + nparam) = positions[dim];
  return s;
}

void ProgramBlock::validate() const {
  for (const Statement& st : statements) {
    EMM_REQUIRE(st.domain.nparam() == nparam(), "statement '" + st.name + "': nparam mismatch");
    EMM_REQUIRE(st.schedule.cols() == st.dim() + nparam() + 1,
                "statement '" + st.name + "': schedule width mismatch");
    for (const Access& a : st.accesses) {
      EMM_REQUIRE(a.arrayId >= 0 && a.arrayId < static_cast<int>(arrays.size()),
                  "statement '" + st.name + "': bad array id");
      EMM_REQUIRE(a.fn.rows() == arrays[a.arrayId].ndim(),
                  "statement '" + st.name + "': access rank mismatch for array " +
                      arrays[a.arrayId].name);
      EMM_REQUIRE(a.fn.cols() == st.dim() + nparam() + 1,
                  "statement '" + st.name + "': access width mismatch");
    }
    if (st.writeAccess >= 0) {
      EMM_REQUIRE(st.writeAccess < static_cast<int>(st.accesses.size()),
                  "statement '" + st.name + "': writeAccess out of range");
      EMM_REQUIRE(st.accesses[st.writeAccess].isWrite,
                  "statement '" + st.name + "': writeAccess is not a write");
      EMM_REQUIRE(st.rhs != nullptr, "statement '" + st.name + "': missing rhs");
    }
  }
}

ArrayStore::ArrayStore(const std::vector<ArrayDecl>& decls) : decls_(decls) {
  data_.reserve(decls.size());
  for (const ArrayDecl& d : decls_) data_.emplace_back(static_cast<size_t>(d.elementCount()), 0.0);
}

size_t ArrayStore::flatten(int arrayId, const IntVec& index) const {
  EMM_CHECK(arrayId >= 0 && arrayId < numArrays(), "array id out of range");
  const ArrayDecl& d = decls_[arrayId];
  EMM_CHECK(static_cast<int>(index.size()) == d.ndim(), "index arity mismatch");
  size_t flat = 0;
  for (int k = 0; k < d.ndim(); ++k) {
    EMM_CHECK(index[k] >= 0 && index[k] < d.extents[k],
              "index out of bounds for array " + d.name + " dim " + std::to_string(k) +
                  ": " + std::to_string(index[k]) + " not in [0," +
                  std::to_string(d.extents[k]) + ")");
    flat = flat * static_cast<size_t>(d.extents[k]) + static_cast<size_t>(index[k]);
  }
  return flat;
}

double ArrayStore::get(int arrayId, const IntVec& index) const {
  return data_[arrayId][flatten(arrayId, index)];
}

void ArrayStore::set(int arrayId, const IntVec& index, double v) {
  data_[arrayId][flatten(arrayId, index)] = v;
}

void ArrayStore::fillPattern(int arrayId, unsigned seed) {
  // Small deterministic LCG; values kept small so double arithmetic is exact.
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (double& v : data_[arrayId]) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<double>((state >> 33) % 1000) - 500.0;
  }
}

void ArrayStore::fillAllPattern(unsigned seed) {
  for (int a = 0; a < numArrays(); ++a) fillPattern(a, seed + static_cast<unsigned>(a) * 977u);
}

double ArrayStore::maxAbsDiff(const ArrayStore& a, const ArrayStore& b) {
  EMM_CHECK(a.numArrays() == b.numArrays(), "array store shape mismatch");
  double worst = 0;
  for (int i = 0; i < a.numArrays(); ++i) {
    EMM_CHECK(a.data_[i].size() == b.data_[i].size(), "array size mismatch");
    for (size_t j = 0; j < a.data_[i].size(); ++j)
      worst = std::max(worst, std::fabs(a.data_[i][j] - b.data_[i][j]));
  }
  return worst;
}

namespace {

double evalExpr(const Expr& e, const Statement& st, const IntVec& iterAndParams,
                const ArrayStore& store) {
  switch (e.kind()) {
    case Expr::Kind::Const:
      return e.constValue();
    case Expr::Kind::Load: {
      const Access& acc = st.accesses[e.accessIndex()];
      IntVec hom = iterAndParams;
      hom.push_back(1);
      return store.get(acc.arrayId, acc.fn.apply(hom));
    }
    case Expr::Kind::Abs:
      return std::fabs(evalExpr(*e.lhs(), st, iterAndParams, store));
    case Expr::Kind::Min:
      return std::min(evalExpr(*e.lhs(), st, iterAndParams, store),
                      evalExpr(*e.rhs(), st, iterAndParams, store));
    case Expr::Kind::Max:
      return std::max(evalExpr(*e.lhs(), st, iterAndParams, store),
                      evalExpr(*e.rhs(), st, iterAndParams, store));
    case Expr::Kind::Add:
      return evalExpr(*e.lhs(), st, iterAndParams, store) +
             evalExpr(*e.rhs(), st, iterAndParams, store);
    case Expr::Kind::Sub:
      return evalExpr(*e.lhs(), st, iterAndParams, store) -
             evalExpr(*e.rhs(), st, iterAndParams, store);
    case Expr::Kind::Mul:
      return evalExpr(*e.lhs(), st, iterAndParams, store) *
             evalExpr(*e.rhs(), st, iterAndParams, store);
    case Expr::Kind::Div:
      return evalExpr(*e.lhs(), st, iterAndParams, store) /
             evalExpr(*e.rhs(), st, iterAndParams, store);
  }
  EMM_CHECK(false, "unreachable expression kind");
}

}  // namespace

/// Executes one statement instance.
static void executeInstance(const Statement& st, const IntVec& iterAndParams, ArrayStore& store) {
  if (st.writeAccess < 0) return;
  double v = evalExpr(*st.rhs, st, iterAndParams, store);
  const Access& w = st.accesses[st.writeAccess];
  IntVec hom = iterAndParams;
  hom.push_back(1);
  store.set(w.arrayId, w.fn.apply(hom), v);
}

namespace {

/// Renders one affine row over [iters(dim), params, 1] as e.g. "i0+2*i1+N0-1".
std::string affineRowText(const IntVec& row, int dim, const std::vector<std::string>& paramNames) {
  std::ostringstream os;
  bool any = false;
  auto term = [&](i64 coeff, const std::string& var) {
    if (coeff == 0) return;
    if (any) os << (coeff > 0 ? "+" : "-");
    else if (coeff < 0) os << "-";
    const i64 mag = coeff < 0 ? -coeff : coeff;
    if (mag != 1) os << mag << "*";
    os << var;
    any = true;
  };
  for (int j = 0; j < dim; ++j) term(row[j], "i" + std::to_string(j));
  for (size_t p = 0; p < paramNames.size(); ++p) term(row[dim + p], paramNames[p]);
  const i64 c = row.back();
  if (c != 0 || !any) {
    if (any && c > 0) os << "+";
    os << c;
  }
  return os.str();
}

}  // namespace

std::string printProgramBlock(const ProgramBlock& block) {
  std::ostringstream os;
  os << "block '" << block.name << "'";
  if (!block.paramNames.empty()) {
    os << " params(";
    for (size_t p = 0; p < block.paramNames.size(); ++p)
      os << (p ? "," : "") << block.paramNames[p];
    os << ")";
  }
  os << "\n";
  for (const ArrayDecl& a : block.arrays) {
    os << "  array " << a.name;
    for (i64 e : a.extents) os << "[" << e << "]";
    os << "\n";
  }
  for (const Statement& st : block.statements) {
    os << "  stmt " << st.name << " dim=" << st.dim() << "\n";
    os << "    domain: " << st.domain.str() << "\n";
    std::vector<std::string> accessText;
    for (const Access& a : st.accesses) {
      std::string t = block.arrays[a.arrayId].name;
      for (int r = 0; r < a.fn.rows(); ++r)
        t += "[" + affineRowText(a.fn.row(r), st.dim(), block.paramNames) + "]";
      accessText.push_back(std::move(t));
    }
    if (st.writeAccess >= 0 && st.rhs != nullptr)
      os << "    " << accessText[st.writeAccess] << " = " << st.rhs->str(accessText) << "\n";
    for (size_t i = 0; i < st.accesses.size(); ++i)
      os << "    access[" << i << "] " << (st.accesses[i].isWrite ? "W " : "R ") << accessText[i]
         << "\n";
    os << "    schedule:";
    for (int r = 0; r < st.schedule.rows(); ++r)
      os << " (" << affineRowText(st.schedule.row(r), st.dim(), block.paramNames) << ")";
    os << "\n";
  }
  return os.str();
}

void executeReference(const ProgramBlock& block, const IntVec& paramValues, ArrayStore& store) {
  block.validate();
  // Collect (time vector, stmt, iter) for every instance, sort, execute.
  struct Instance {
    IntVec time;
    int stmt;
    IntVec iter;
  };
  std::vector<Instance> instances;
  int maxTime = 0;
  for (const Statement& st : block.statements)
    maxTime = std::max(maxTime, st.schedule.rows());
  for (size_t s = 0; s < block.statements.size(); ++s) {
    const Statement& st = block.statements[s];
    forEachPoint(st.domain, paramValues, [&](const IntVec& iter) {
      IntVec hom = iter;
      hom.insert(hom.end(), paramValues.begin(), paramValues.end());
      hom.push_back(1);
      IntVec time = st.schedule.apply(hom);
      time.resize(maxTime, 0);  // pad so lexicographic comparison is aligned
      instances.push_back({std::move(time), static_cast<int>(s), iter});
    });
  }
  std::stable_sort(instances.begin(), instances.end(), [](const Instance& a, const Instance& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.stmt < b.stmt;
  });
  for (const Instance& inst : instances) {
    IntVec ip = inst.iter;
    ip.insert(ip.end(), paramValues.begin(), paramValues.end());
    executeInstance(block.statements[inst.stmt], ip, store);
  }
}

}  // namespace emm
