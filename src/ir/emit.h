// C pretty-printer for generated code.
//
// Renders a CodeUnit as readable C, matching the presentation style of the
// paper's Figure 1 / Figure 3 (declarations for local buffers, move-in /
// move-out loop nests, FORALL markers on parallel loops). Used by the worked
// examples and by golden tests that pin down the structure of generated
// code; semantic checks go through the interpreter instead.
#pragma once

#include <string>

#include "ir/ast.h"

namespace emm {

/// Renders the whole unit: local buffer declarations followed by the code.
std::string emitC(const CodeUnit& unit);

/// Renders just an AST subtree at the given indent level.
std::string emitC(const CodeUnit& unit, const AstNode& node, int indent = 0);

}  // namespace emm
