// Loop AST for generated code.
//
// Code generation (the CLooG substitute, the data-movement generator and the
// multi-level tiler) produce this AST. It is both printable as C (for
// inspection and the worked examples) and executable by the interpreter in
// interp.h, which is how every codegen test validates *semantics* rather
// than text.
//
// Variables are referenced by name. An execution environment binds names to
// integer values; block parameters are pre-bound, loop iterators are bound
// by the enclosing For nodes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace emm {

/// An affine expression over named variables with an optional positive
/// divisor: (sum coeff*var + const) / den, rounded per use (ceil in lower
/// bounds, floor in upper bounds, exact elsewhere).
struct AffExpr {
  std::vector<std::pair<std::string, i64>> terms;
  i64 cnst = 0;
  i64 den = 1;

  static AffExpr constant(i64 c);
  static AffExpr var(const std::string& name, i64 coeff = 1);

  AffExpr plus(i64 c) const;
  bool isConstant() const { return terms.empty(); }
  /// True if the expression mentions `name`.
  bool mentions(const std::string& name) const;

  /// Exact evaluation; aborts if den does not divide the numerator.
  i64 evalExact(const std::vector<std::pair<std::string, i64>>& env) const;
  i64 evalFloor(const std::vector<std::pair<std::string, i64>>& env) const;
  i64 evalCeil(const std::vector<std::pair<std::string, i64>>& env) const;

  std::string str(bool ceilMode = false) const;
};

/// max-of (for lower bounds) or min-of (for upper bounds) a list of AffExpr.
struct BoundExpr {
  std::vector<AffExpr> parts;
  bool isMax = true;  ///< true: lower bound (max/ceil); false: upper (min/floor)

  static BoundExpr single(AffExpr e, bool isMax);

  i64 eval(const std::vector<std::pair<std::string, i64>>& env) const;
  bool mentions(const std::string& name) const;
  std::string str() const;
};

/// Execution flavor of a For node. Parallelism markers are semantic
/// annotations consumed by the machine mapper; the interpreter runs
/// everything sequentially (the framework guarantees this is equivalent).
enum class LoopKind { Sequential, BlockParallel, ThreadParallel };

struct AstNode;
using AstPtr = std::unique_ptr<AstNode>;

/// One node of generated code.
struct AstNode {
  enum class Kind {
    Block,    ///< sequence of children
    For,      ///< counted loop
    Guard,    ///< if (all guards >= 0) body
    Call,     ///< statement instance: args give original iterator values
    Copy,     ///< dst[dstIndex] = src[srcIndex] (one element)
    Sync,     ///< barrier among inner-level processes
    Comment,  ///< emitted verbatim
  };

  Kind kind = Kind::Block;

  // Block / For / Guard body
  std::vector<AstPtr> children;

  // For
  std::string iter;
  BoundExpr lb{{}, true};
  BoundExpr ub{{}, false};
  i64 step = 1;
  LoopKind loopKind = LoopKind::Sequential;

  // Guard: conjunction of affine expressions required to be >= 0
  std::vector<AffExpr> guards;

  // Call
  int stmtId = -1;
  std::vector<AffExpr> callArgs;

  // Copy
  int dstArray = -1;
  int srcArray = -1;
  std::vector<AffExpr> dstIndex;
  std::vector<AffExpr> srcIndex;

  // Comment
  std::string text;

  static AstPtr block();
  static AstPtr forLoop(std::string iter, BoundExpr lb, BoundExpr ub, i64 step = 1,
                        LoopKind kind = LoopKind::Sequential);
  static AstPtr guard(std::vector<AffExpr> guards);
  static AstPtr call(int stmtId, std::vector<AffExpr> args);
  static AstPtr copy(int dstArray, std::vector<AffExpr> dstIndex, int srcArray,
                     std::vector<AffExpr> srcIndex);
  static AstPtr sync();
  static AstPtr comment(std::string text);

  AstNode* addChild(AstPtr child);

  /// Deep copy of the subtree (used by the plan cache to hand out
  /// independently owned results).
  AstPtr clone() const;
};

/// A local (scratchpad) buffer: per-dimension lower/upper bounds as affine
/// expressions over block parameters. `sizeBounds` are the expressions valid
/// for allocation (they must not mention block-local parameters such as tile
/// origins); `offset` is the affine lower bound subtracted from global
/// indices (it may mention block-local parameters).
struct LocalBuffer {
  std::string name;
  int ndim = 0;
  std::vector<AffExpr> offset;       ///< one per dim; global index - offset = local index
  std::vector<BoundExpr> sizeExpr;   ///< one per dim; evaluates to extent
  /// Bank-conflict padding: extra elements allocated per dimension beyond
  /// the logical extent (src/smem/buffer_layout.h chooses them so the padded
  /// innermost pitch is coprime with the scratchpad bank count). Empty means
  /// no padding. Padding widens allocation strides only — logical indices
  /// and therefore semantics are unchanged, which is why the interpreter
  /// oracle certifies padded and unpadded units byte-identical.
  std::vector<i64> pad;

  /// Allocated extent of dimension d at `env`: logical extent plus padding.
  i64 paddedExtent(int d, const std::vector<std::pair<std::string, i64>>& env) const {
    i64 extent = sizeExpr[d].eval(env);
    if (d < static_cast<int>(pad.size())) extent = addChecked(extent, pad[d]);
    return extent;
  }
};

/// A compilable unit: AST plus the statement table it references (possibly
/// rewritten to target local buffers) and the local buffers themselves.
/// Array ids < numGlobalArrays refer to the source block's arrays; ids >=
/// that refer to localBuffers[id - numGlobalArrays].
struct CodeUnit {
  std::string name;
  const ProgramBlock* source = nullptr;
  std::vector<Statement> statements;  ///< bodies for Call nodes (by stmtId)
  std::vector<LocalBuffer> localBuffers;
  AstPtr root;

  int numGlobalArrays() const {
    return source == nullptr ? 0 : static_cast<int>(source->arrays.size());
  }
};

}  // namespace emm
