// Program IR: affine program blocks in the polyhedral model.
//
// A ProgramBlock is the unit the paper's framework operates on: a set of
// statements, each with an iteration-space polytope, affine array access
// functions, an executable body (expression tree over its accesses), and a
// multidimensional affine schedule giving the original execution order.
// Arrays are declared with symbolic dimensionality plus concrete extents so
// the interpreter can execute blocks for semantic testing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "poly/polyhedron.h"

namespace emm {

/// A global (off-chip) array. Extents are concrete so blocks are executable;
/// the compiler itself only uses `ndim`.
struct ArrayDecl {
  std::string name;
  std::vector<i64> extents;  ///< one per dimension

  int ndim() const { return static_cast<int>(extents.size()); }
  i64 elementCount() const {
    i64 n = 1;
    for (i64 e : extents) n = mulChecked(n, e);
    return n;
  }
};

/// One affine reference to an array inside a statement.
struct Access {
  int arrayId = -1;  ///< index into ProgramBlock::arrays
  IntMat fn;         ///< rows = array ndim, cols = stmt dim + nparam + 1
  bool isWrite = false;
};

/// Expression tree for statement bodies. Leaves load from the statement's
/// accesses (by index) or are constants; interior nodes are arithmetic.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
public:
  enum class Kind { Const, Load, Add, Sub, Mul, Div, Abs, Min, Max };

  static ExprPtr constant(double v);
  /// Loads the value read through access `accessIdx` of the statement.
  static ExprPtr load(int accessIdx);
  static ExprPtr add(ExprPtr a, ExprPtr b);
  static ExprPtr sub(ExprPtr a, ExprPtr b);
  static ExprPtr mul(ExprPtr a, ExprPtr b);
  static ExprPtr div(ExprPtr a, ExprPtr b);
  static ExprPtr abs(ExprPtr a);
  static ExprPtr min(ExprPtr a, ExprPtr b);
  static ExprPtr max(ExprPtr a, ExprPtr b);

  Kind kind() const { return kind_; }
  double constValue() const { return cval_; }
  int accessIndex() const { return accessIdx_; }
  const ExprPtr& lhs() const { return a_; }
  const ExprPtr& rhs() const { return b_; }

  /// Renders the expression with access `i` shown as `accessText[i]`.
  std::string str(const std::vector<std::string>& accessText) const;

private:
  friend struct ExprAccess;  // internal factory

  Kind kind_ = Kind::Const;
  double cval_ = 0;
  int accessIdx_ = -1;
  ExprPtr a_, b_;
};

/// A statement: domain, accesses, body, and original schedule.
///
/// The schedule maps (iteration vector, params, 1) to a time vector; global
/// execution order of statement instances is the lexicographic order of time
/// vectors (ties broken by statement id, though schedules should already be
/// disambiguating via constant rows, as in the classic 2d+1 form).
struct Statement {
  std::string name;
  Polyhedron domain;      ///< dim = loop depth, nparam shared across the block
  std::vector<Access> accesses;
  int writeAccess = -1;   ///< index into `accesses`; -1 for pure side-effect-free
  ExprPtr rhs;            ///< value stored through `writeAccess`
  IntMat schedule;        ///< rows = time dims, cols = dim + nparam + 1

  int dim() const { return domain.dim(); }
};

/// A block of affine code: what Section 3's framework takes as input.
struct ProgramBlock {
  std::string name;
  std::vector<std::string> paramNames;  ///< global parameters (problem sizes)
  std::vector<ArrayDecl> arrays;
  std::vector<Statement> statements;

  int nparam() const { return static_cast<int>(paramNames.size()); }

  int arrayIdByName(const std::string& n) const;

  /// Builds the canonical "2d+1"-style schedule for a statement occupying
  /// static position `pos` at each depth: (pos0, i0, pos1, i1, ..., posd).
  /// `positions` has dim+1 entries.
  static IntMat interleavedSchedule(int dim, int nparam, const std::vector<i64>& positions);

  /// Validates internal consistency (access arity, schedule shape, ...).
  /// Throws ApiError on malformed blocks.
  void validate() const;
};

/// Flat storage for all arrays of a block, used by the interpreter and by
/// kernel reference implementations.
class ArrayStore {
public:
  explicit ArrayStore(const std::vector<ArrayDecl>& decls);

  int numArrays() const { return static_cast<int>(decls_.size()); }
  const ArrayDecl& decl(int id) const { return decls_[id]; }

  double get(int arrayId, const IntVec& index) const;
  void set(int arrayId, const IntVec& index, double v);

  /// Fills array `arrayId` with a deterministic pseudo-random pattern.
  void fillPattern(int arrayId, unsigned seed);
  /// Fills every array.
  void fillAllPattern(unsigned seed);

  std::vector<double>& raw(int arrayId) { return data_[arrayId]; }
  const std::vector<double>& raw(int arrayId) const { return data_[arrayId]; }

  /// Max absolute difference across all arrays (shapes must match).
  static double maxAbsDiff(const ArrayStore& a, const ArrayStore& b);

private:
  size_t flatten(int arrayId, const IntVec& index) const;

  std::vector<ArrayDecl> decls_;
  std::vector<std::vector<double>> data_;
};

/// Executes the block with its original schedule at the given parameter
/// binding. This is the semantic oracle for all code-generation tests.
void executeReference(const ProgramBlock& block, const IntVec& paramValues, ArrayStore& store);

/// Human-readable rendering of a block: arrays with extents, every
/// statement's domain, accesses (as `A[i0+1][i1]` subscripts), body
/// expression and schedule matrix. Used by divergence reports from the
/// differential tester and handy for debugging hand-built blocks.
std::string printProgramBlock(const ProgramBlock& block);

}  // namespace emm
