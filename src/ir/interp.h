// AST interpreter: executes generated code against real arrays.
//
// The interpreter is the semantic backbone of the test suite: the original
// block (via executeReference) and any generated CodeUnit (tiled, with
// scratchpad buffers and move-in/move-out code) must leave the global arrays
// in identical states. Parallel loop markers are executed sequentially; the
// framework guarantees that is equivalent.
//
// The interpreter also produces a MemTrace: counts of global-memory and
// local-buffer accesses and synchronizations, which the machine simulator
// converts to time. This keeps "what the code does" and "what it costs" in
// one place.
#pragma once

#include "ir/ast.h"

namespace emm {

/// Access counters gathered while executing a CodeUnit.
struct MemTrace {
  i64 globalReads = 0;    ///< element loads from off-chip arrays
  i64 globalWrites = 0;   ///< element stores to off-chip arrays
  i64 localReads = 0;     ///< element loads from scratchpad buffers
  i64 localWrites = 0;    ///< element stores to scratchpad buffers
  i64 syncs = 0;          ///< Sync nodes executed
  i64 stmtInstances = 0;  ///< statement instances executed
  i64 copyElements = 0;   ///< elements moved by Copy nodes

  MemTrace& operator+=(const MemTrace& o);
};

/// Executes `unit` with the given parameter binding against `globals`.
/// Local buffers are allocated per execution from their size expressions.
/// Returns the access trace.
MemTrace executeCodeUnit(const CodeUnit& unit, const IntVec& paramValues, ArrayStore& globals);

/// Peak scratchpad residency in elements: the sum of all local buffer sizes
/// at the given parameter binding (the framework allocates all buffers for
/// the duration of the block, matching the paper's footprint model).
i64 scratchpadFootprint(const CodeUnit& unit, const IntVec& paramValues);

}  // namespace emm
