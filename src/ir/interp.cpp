#include "ir/interp.h"

#include <cmath>

namespace emm {

MemTrace& MemTrace::operator+=(const MemTrace& o) {
  globalReads += o.globalReads;
  globalWrites += o.globalWrites;
  localReads += o.localReads;
  localWrites += o.localWrites;
  syncs += o.syncs;
  stmtInstances += o.stmtInstances;
  copyElements += o.copyElements;
  return *this;
}

namespace {

using Env = std::vector<std::pair<std::string, i64>>;

/// A local scratchpad buffer instantiated at concrete parameter values.
/// Bounds checks use the LOGICAL extents; flattening strides by the padded
/// (allocated) extents, exactly as the emitted array declarations do.
struct LocalInstance {
  std::vector<i64> extents;        ///< logical, for the bounds check
  std::vector<i64> paddedExtents;  ///< allocated, the flattening strides
  std::vector<double> data;

  size_t flatten(const IntVec& index, const std::string& name) const {
    EMM_CHECK(index.size() == extents.size(), "local index arity mismatch");
    size_t flat = 0;
    for (size_t k = 0; k < extents.size(); ++k) {
      EMM_CHECK(index[k] >= 0 && index[k] < extents[k],
                "local buffer '" + name + "' index out of bounds in dim " + std::to_string(k) +
                    ": " + std::to_string(index[k]) + " not in [0," +
                    std::to_string(extents[k]) + ")");
      flat = flat * static_cast<size_t>(paddedExtents[k]) + static_cast<size_t>(index[k]);
    }
    return flat;
  }
};

class Interp {
public:
  Interp(const CodeUnit& unit, const IntVec& params, ArrayStore& globals)
      : unit_(unit), globals_(globals) {
    EMM_CHECK(unit.source != nullptr, "CodeUnit without source block");
    EMM_CHECK(static_cast<int>(params.size()) == unit.source->nparam(),
              "parameter arity mismatch");
    for (int j = 0; j < unit.source->nparam(); ++j)
      env_.emplace_back(unit.source->paramNames[j], params[j]);
    allocateLocals();
  }

  MemTrace run() {
    if (unit_.root != nullptr) exec(*unit_.root);
    return trace_;
  }

  i64 footprint() const {
    i64 total = 0;
    for (const LocalInstance& li : locals_)
      total = addChecked(total, static_cast<i64>(li.data.size()));
    return total;
  }

private:
  void allocateLocals() {
    for (const LocalBuffer& b : unit_.localBuffers) {
      LocalInstance li;
      for (int d = 0; d < b.ndim; ++d) {
        i64 extent = b.sizeExpr[d].eval(env_);
        EMM_CHECK(extent >= 0, "negative local buffer extent for " + b.name);
        li.extents.push_back(extent);
        li.paddedExtents.push_back(b.paddedExtent(d, env_));
      }
      i64 n = 1;
      for (i64 e : li.paddedExtents) n = mulChecked(n, e);
      li.data.assign(static_cast<size_t>(n), 0.0);
      locals_.push_back(std::move(li));
    }
  }

  double loadArray(int arrayId, const IntVec& index) {
    int nglobal = unit_.numGlobalArrays();
    if (arrayId < nglobal) {
      ++trace_.globalReads;
      return globals_.get(arrayId, index);
    }
    ++trace_.localReads;
    LocalInstance& li = locals_[arrayId - nglobal];
    return li.data[li.flatten(index, unit_.localBuffers[arrayId - nglobal].name)];
  }

  void storeArray(int arrayId, const IntVec& index, double v) {
    int nglobal = unit_.numGlobalArrays();
    if (arrayId < nglobal) {
      ++trace_.globalWrites;
      globals_.set(arrayId, index, v);
      return;
    }
    ++trace_.localWrites;
    LocalInstance& li = locals_[arrayId - nglobal];
    li.data[li.flatten(index, unit_.localBuffers[arrayId - nglobal].name)] = v;
  }

  double evalExpr(const Expr& e, const Statement& st, const IntVec& iterAndParams) {
    switch (e.kind()) {
      case Expr::Kind::Const:
        return e.constValue();
      case Expr::Kind::Load: {
        const Access& acc = st.accesses[e.accessIndex()];
        IntVec hom = iterAndParams;
        hom.push_back(1);
        return loadArray(acc.arrayId, acc.fn.apply(hom));
      }
      case Expr::Kind::Abs:
        return std::fabs(evalExpr(*e.lhs(), st, iterAndParams));
      case Expr::Kind::Min:
        return std::min(evalExpr(*e.lhs(), st, iterAndParams),
                        evalExpr(*e.rhs(), st, iterAndParams));
      case Expr::Kind::Max:
        return std::max(evalExpr(*e.lhs(), st, iterAndParams),
                        evalExpr(*e.rhs(), st, iterAndParams));
      case Expr::Kind::Add:
        return evalExpr(*e.lhs(), st, iterAndParams) + evalExpr(*e.rhs(), st, iterAndParams);
      case Expr::Kind::Sub:
        return evalExpr(*e.lhs(), st, iterAndParams) - evalExpr(*e.rhs(), st, iterAndParams);
      case Expr::Kind::Mul:
        return evalExpr(*e.lhs(), st, iterAndParams) * evalExpr(*e.rhs(), st, iterAndParams);
      case Expr::Kind::Div:
        return evalExpr(*e.lhs(), st, iterAndParams) / evalExpr(*e.rhs(), st, iterAndParams);
    }
    EMM_CHECK(false, "unreachable expression kind");
  }

  void exec(const AstNode& n) {
    switch (n.kind) {
      case AstNode::Kind::Block:
        for (const AstPtr& c : n.children) exec(*c);
        break;
      case AstNode::Kind::For: {
        i64 lo = n.lb.eval(env_);
        i64 hi = n.ub.eval(env_);
        env_.emplace_back(n.iter, 0);
        for (i64 v = lo; v <= hi; v += n.step) {
          env_.back().second = v;
          for (const AstPtr& c : n.children) exec(*c);
        }
        env_.pop_back();
        break;
      }
      case AstNode::Kind::Guard: {
        for (const AffExpr& g : n.guards)
          if (g.evalFloor(env_) < 0) return;
        for (const AstPtr& c : n.children) exec(*c);
        break;
      }
      case AstNode::Kind::Call: {
        const Statement& st = unit_.statements[n.stmtId];
        EMM_CHECK(static_cast<int>(n.callArgs.size()) == st.dim(),
                  "call arity mismatch for " + st.name);
        IntVec iterAndParams;
        iterAndParams.reserve(st.dim() + st.domain.nparam());
        for (const AffExpr& a : n.callArgs) iterAndParams.push_back(a.evalExact(env_));
        // Parameters are looked up by name with the innermost binding
        // winning: tile-origin parameters are rebound by sub-tile loops.
        for (int j = 0; j < st.domain.nparam(); ++j) {
          const std::string& pname = unit_.source->paramNames[j];
          iterAndParams.push_back(AffExpr::var(pname).evalExact(env_));
        }
        ++trace_.stmtInstances;
        if (st.writeAccess < 0) return;
        double v = evalExpr(*st.rhs, st, iterAndParams);
        const Access& w = st.accesses[st.writeAccess];
        IntVec hom = iterAndParams;
        hom.push_back(1);
        storeArray(w.arrayId, w.fn.apply(hom), v);
        break;
      }
      case AstNode::Kind::Copy: {
        IntVec dst, src;
        for (const AffExpr& e : n.dstIndex) dst.push_back(e.evalExact(env_));
        for (const AffExpr& e : n.srcIndex) src.push_back(e.evalExact(env_));
        storeArray(n.dstArray, dst, loadArray(n.srcArray, src));
        // Copy counts: the load/store above already tallied global/local.
        ++trace_.copyElements;
        break;
      }
      case AstNode::Kind::Sync:
        ++trace_.syncs;
        break;
      case AstNode::Kind::Comment:
        break;
    }
  }

  const CodeUnit& unit_;
  ArrayStore& globals_;
  Env env_;
  std::vector<LocalInstance> locals_;
  MemTrace trace_;
};

}  // namespace

MemTrace executeCodeUnit(const CodeUnit& unit, const IntVec& paramValues, ArrayStore& globals) {
  Interp interp(unit, paramValues, globals);
  return interp.run();
}

i64 scratchpadFootprint(const CodeUnit& unit, const IntVec& paramValues) {
  // Allocation happens in the constructor; no code is run.
  // We need a store to construct the interpreter; globals are untouched.
  EMM_CHECK(unit.source != nullptr, "CodeUnit without source block");
  ArrayStore dummy(unit.source->arrays);
  Interp interp(unit, paramValues, dummy);
  return interp.footprint();
}

}  // namespace emm
