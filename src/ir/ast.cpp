#include "ir/ast.h"

#include <algorithm>
#include <sstream>

namespace emm {

namespace {

i64 lookup(const std::vector<std::pair<std::string, i64>>& env, const std::string& name) {
  for (auto it = env.rbegin(); it != env.rend(); ++it)
    if (it->first == name) return it->second;
  EMM_CHECK(false, "unbound variable '" + name + "' in AST evaluation");
}

i128 numerator(const AffExpr& e, const std::vector<std::pair<std::string, i64>>& env) {
  i128 acc = e.cnst;
  for (const auto& [name, coeff] : e.terms) acc += static_cast<i128>(coeff) * lookup(env, name);
  return acc;
}

}  // namespace

AffExpr AffExpr::constant(i64 c) {
  AffExpr e;
  e.cnst = c;
  return e;
}

AffExpr AffExpr::var(const std::string& name, i64 coeff) {
  AffExpr e;
  if (coeff != 0) e.terms.emplace_back(name, coeff);
  return e;
}

AffExpr AffExpr::plus(i64 c) const {
  AffExpr e = *this;
  EMM_CHECK(e.den == 1, "plus() on divided expression");
  e.cnst = addChecked(e.cnst, c);
  return e;
}

bool AffExpr::mentions(const std::string& name) const {
  return std::any_of(terms.begin(), terms.end(),
                     [&](const auto& t) { return t.first == name && t.second != 0; });
}

i64 AffExpr::evalExact(const std::vector<std::pair<std::string, i64>>& env) const {
  i128 num = numerator(*this, env);
  EMM_CHECK(num % den == 0, "non-exact division in AST expression");
  return narrow(num / den);
}

i64 AffExpr::evalFloor(const std::vector<std::pair<std::string, i64>>& env) const {
  return floorDiv(narrow(numerator(*this, env)), den);
}

i64 AffExpr::evalCeil(const std::vector<std::pair<std::string, i64>>& env) const {
  return ceilDiv(narrow(numerator(*this, env)), den);
}

std::string AffExpr::str(bool ceilMode) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, coeff] : terms) {
    if (coeff == 0) continue;
    if (first) {
      if (coeff == -1)
        os << "-";
      else if (coeff != 1)
        os << coeff << "*";
    } else {
      os << (coeff > 0 ? " + " : " - ");
      i64 a = coeff > 0 ? coeff : -coeff;
      if (a != 1) os << a << "*";
    }
    os << name;
    first = false;
  }
  if (first) {
    os << cnst;
  } else if (cnst != 0) {
    os << (cnst > 0 ? " + " : " - ") << (cnst > 0 ? cnst : -cnst);
  }
  std::string body = os.str();
  if (den != 1) {
    return std::string(ceilMode ? "ceild(" : "floord(") + body + ", " + std::to_string(den) + ")";
  }
  return body;
}

BoundExpr BoundExpr::single(AffExpr e, bool isMaxBound) {
  BoundExpr b;
  b.parts.push_back(std::move(e));
  b.isMax = isMaxBound;
  return b;
}

i64 BoundExpr::eval(const std::vector<std::pair<std::string, i64>>& env) const {
  EMM_CHECK(!parts.empty(), "empty bound expression");
  i64 best = isMax ? parts[0].evalCeil(env) : parts[0].evalFloor(env);
  for (size_t i = 1; i < parts.size(); ++i) {
    i64 v = isMax ? parts[i].evalCeil(env) : parts[i].evalFloor(env);
    best = isMax ? std::max(best, v) : std::min(best, v);
  }
  return best;
}

bool BoundExpr::mentions(const std::string& name) const {
  return std::any_of(parts.begin(), parts.end(),
                     [&](const AffExpr& e) { return e.mentions(name); });
}

std::string BoundExpr::str() const {
  EMM_CHECK(!parts.empty(), "empty bound expression");
  if (parts.size() == 1) return parts[0].str(isMax);
  std::ostringstream os;
  os << (isMax ? "max(" : "min(");
  for (size_t i = 0; i < parts.size(); ++i) os << (i ? ", " : "") << parts[i].str(isMax);
  os << ")";
  return os.str();
}

AstPtr AstNode::block() {
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::Block;
  return n;
}

AstPtr AstNode::forLoop(std::string iter, BoundExpr lb, BoundExpr ub, i64 step, LoopKind kind) {
  EMM_CHECK(step > 0, "loop step must be positive");
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::For;
  n->iter = std::move(iter);
  n->lb = std::move(lb);
  n->ub = std::move(ub);
  n->step = step;
  n->loopKind = kind;
  return n;
}

AstPtr AstNode::guard(std::vector<AffExpr> guards) {
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::Guard;
  n->guards = std::move(guards);
  return n;
}

AstPtr AstNode::call(int stmtId, std::vector<AffExpr> args) {
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::Call;
  n->stmtId = stmtId;
  n->callArgs = std::move(args);
  return n;
}

AstPtr AstNode::copy(int dstArray, std::vector<AffExpr> dstIndex, int srcArray,
                     std::vector<AffExpr> srcIndex) {
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::Copy;
  n->dstArray = dstArray;
  n->dstIndex = std::move(dstIndex);
  n->srcArray = srcArray;
  n->srcIndex = std::move(srcIndex);
  return n;
}

AstPtr AstNode::sync() {
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::Sync;
  return n;
}

AstPtr AstNode::comment(std::string text) {
  auto n = std::make_unique<AstNode>();
  n->kind = Kind::Comment;
  n->text = std::move(text);
  return n;
}

AstNode* AstNode::addChild(AstPtr child) {
  EMM_CHECK(kind == Kind::Block || kind == Kind::For || kind == Kind::Guard,
            "node kind cannot have children");
  children.push_back(std::move(child));
  return children.back().get();
}

AstPtr AstNode::clone() const {
  auto n = std::make_unique<AstNode>();
  n->kind = kind;
  n->iter = iter;
  n->lb = lb;
  n->ub = ub;
  n->step = step;
  n->loopKind = loopKind;
  n->guards = guards;
  n->stmtId = stmtId;
  n->callArgs = callArgs;
  n->dstArray = dstArray;
  n->srcArray = srcArray;
  n->dstIndex = dstIndex;
  n->srcIndex = srcIndex;
  n->text = text;
  n->children.reserve(children.size());
  for (const AstPtr& c : children) n->children.push_back(c->clone());
  return n;
}

}  // namespace emm
