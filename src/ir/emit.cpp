#include "ir/emit.h"

#include <sstream>

namespace emm {

namespace {

std::string arrayName(const CodeUnit& unit, int arrayId) {
  int nglobal = unit.numGlobalArrays();
  if (arrayId < nglobal) return unit.source->arrays[arrayId].name;
  int local = arrayId - nglobal;
  EMM_CHECK(local < static_cast<int>(unit.localBuffers.size()), "array id out of range");
  return unit.localBuffers[local].name;
}

std::string indexText(const std::vector<AffExpr>& index) {
  std::ostringstream os;
  for (const AffExpr& e : index) os << "[" << e.str() << "]";
  return os.str();
}

class Emitter {
public:
  explicit Emitter(const CodeUnit& unit) : unit_(unit) {}

  void emit(const AstNode& n, int depth) {
    switch (n.kind) {
      case AstNode::Kind::Block:
        for (const AstPtr& c : n.children) emit(*c, depth);
        break;
      case AstNode::Kind::For: {
        line(depth, forHeader(n));
        for (const AstPtr& c : n.children) emit(*c, depth + 1);
        line(depth, "}");
        break;
      }
      case AstNode::Kind::Guard: {
        std::ostringstream os;
        os << "if (";
        for (size_t i = 0; i < n.guards.size(); ++i)
          os << (i ? " && " : "") << n.guards[i].str() << " >= 0";
        os << ") {";
        line(depth, os.str());
        for (const AstPtr& c : n.children) emit(*c, depth + 1);
        line(depth, "}");
        break;
      }
      case AstNode::Kind::Call: {
        line(depth, callText(n));
        break;
      }
      case AstNode::Kind::Copy: {
        line(depth, arrayName(unit_, n.dstArray) + indexText(n.dstIndex) + " = " +
                        arrayName(unit_, n.srcArray) + indexText(n.srcIndex) + ";");
        break;
      }
      case AstNode::Kind::Sync:
        line(depth, "__syncthreads();");
        break;
      case AstNode::Kind::Comment:
        line(depth, "/* " + n.text + " */");
        break;
    }
  }

  std::string take() { return os_.str(); }

private:
  std::string forHeader(const AstNode& n) const {
    std::ostringstream os;
    switch (n.loopKind) {
      case LoopKind::BlockParallel:
        os << "FORALL_BLOCKS ";
        break;
      case LoopKind::ThreadParallel:
        os << "FORALL_THREADS ";
        break;
      case LoopKind::Sequential:
        break;
    }
    os << "for (" << n.iter << " = " << n.lb.str() << "; " << n.iter << " <= " << n.ub.str()
       << "; " << n.iter << (n.step == 1 ? "++" : " += " + std::to_string(n.step)) << ") {";
    return os.str();
  }

  std::string callText(const AstNode& n) const {
    EMM_CHECK(n.stmtId >= 0 && n.stmtId < static_cast<int>(unit_.statements.size()),
              "call references unknown statement");
    const Statement& st = unit_.statements[n.stmtId];
    // Substitute call args into each access function to print real indices.
    std::vector<std::string> accessText;
    for (const Access& acc : st.accesses) {
      std::ostringstream at;
      at << arrayName(unit_, acc.arrayId);
      for (int r = 0; r < acc.fn.rows(); ++r) {
        // Row over (iter..., params..., 1); compose with callArgs for iters.
        AffExpr composed;
        composed.cnst = acc.fn.at(r, acc.fn.cols() - 1);
        for (int j = 0; j < st.dim(); ++j) {
          i64 c = acc.fn.at(r, j);
          if (c == 0) continue;
          const AffExpr& arg = n.callArgs[j];
          EMM_CHECK(arg.den == 1, "divided expression in call argument");
          for (const auto& [name, coeff] : arg.terms)
            composed.terms.emplace_back(name, mulChecked(coeff, c));
          composed.cnst = addChecked(composed.cnst, mulChecked(arg.cnst, c));
        }
        for (int j = 0; j < st.domain.nparam(); ++j) {
          i64 c = acc.fn.at(r, st.dim() + j);
          if (c != 0) composed.terms.emplace_back(unit_.source->paramNames[j], c);
        }
        at << "[" << composed.str() << "]";
      }
      accessText.push_back(at.str());
    }
    if (st.writeAccess < 0) return "/* " + st.name + " */;";
    return accessText[st.writeAccess] + " = " + st.rhs->str(accessText) + ";  /* " + st.name +
           " */";
  }

  void line(int depth, const std::string& text) {
    for (int i = 0; i < depth; ++i) os_ << "  ";
    os_ << text << "\n";
  }

  const CodeUnit& unit_;
  std::ostringstream os_;
};

}  // namespace

std::string emitC(const CodeUnit& unit, const AstNode& node, int indent) {
  Emitter e(unit);
  e.emit(node, indent);
  return e.take();
}

std::string emitC(const CodeUnit& unit) {
  std::ostringstream os;
  for (const LocalBuffer& b : unit.localBuffers) {
    os << "/* local buffer */ double " << b.name;
    for (int d = 0; d < b.ndim; ++d) {
      os << "[" << b.sizeExpr[d].str();
      if (d < static_cast<int>(b.pad.size()) && b.pad[d] != 0) os << " + " << b.pad[d];
      os << "]";
    }
    os << ";  /* offset:";
    for (int d = 0; d < b.ndim; ++d) os << " " << b.offset[d].str();
    os << " */\n";
  }
  if (unit.root != nullptr) os << emitC(unit, *unit.root, 0);
  return os.str();
}

}  // namespace emm
