// Symbolic quasi-affine expressions over named parameters.
//
// This is the expression layer behind the parametric tile analysis: the
// Section-3 cost model is built once with tile sizes T1..Tk as symbols, and
// every candidate evaluation reduces to evaluating SymExpr trees at a
// concrete binding — no polyhedral work in the inner loop.
//
// The expression language mirrors exactly what the analysis produces:
// affine terms over parameters, floor/ceil division by positive divisors
// (quasi-affine loop and data-space bounds), min/max (CLooG-style bound
// lists), and products (footprints, trip-count occurrences). Three
// evaluators are provided:
//   - eval:         exact i64 evaluation with checked arithmetic,
//   - evalRat:      exact evaluation at rational parameter points (floor /
//                   ceil nodes round to integers, as in the integer model),
//   - evalInterval: conservative [lo, hi] enclosure over a parameter box,
//                   exact for the monotone operators used here; the tile
//                   search uses it to reason about whole candidate ranges
//                   without enumerating them.
//
// Nodes are immutable and shared (shared_ptr DAG); constructors fold
// constants so instantiated plans stay small.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/checked_int.h"
#include "support/rational.h"

namespace emm {

/// Closed integer interval [lo, hi]. An empty box is never produced by
/// evalInterval; callers supply non-empty per-parameter ranges.
struct SymInterval {
  i64 lo = 0;
  i64 hi = 0;
};

class SymExpr;
using SymPtr = std::shared_ptr<const SymExpr>;

class SymExpr {
public:
  enum class Kind { Const, Param, Add, Mul, FloorDiv, CeilDiv, Min, Max };

  static SymPtr constant(i64 v);
  /// Parameter `index` into the evaluation binding; `name` is for printing.
  static SymPtr param(int index, std::string name);
  static SymPtr add(SymPtr a, SymPtr b);
  static SymPtr sub(SymPtr a, SymPtr b);
  static SymPtr mul(SymPtr a, SymPtr b);
  /// floor(num / den); `den` must evaluate to a positive value.
  static SymPtr floorDiv(SymPtr num, SymPtr den);
  /// ceil(num / den); `den` must evaluate to a positive value.
  static SymPtr ceilDiv(SymPtr num, SymPtr den);
  static SymPtr min(SymPtr a, SymPtr b);
  static SymPtr max(SymPtr a, SymPtr b);

  /// Affine combination helper: cnst + sum coeffs[i] * exprs[i] (terms with
  /// zero coefficient are dropped; an empty sum folds to a constant).
  static SymPtr affine(i64 cnst, const std::vector<std::pair<i64, SymPtr>>& terms);

  Kind kind() const { return kind_; }
  i64 constValue() const { return cval_; }
  int paramIndex() const { return paramIdx_; }
  const std::string& paramName() const { return name_; }
  const SymPtr& lhs() const { return a_; }
  const SymPtr& rhs() const { return b_; }

  /// Exact evaluation; `params[i]` binds parameter index i. Checked i64
  /// arithmetic throughout (aborts on overflow, like the concrete analysis).
  i64 eval(const std::vector<i64>& params) const;

  /// Exact evaluation at rational parameter values; FloorDiv/CeilDiv nodes
  /// round to integers exactly as the integer evaluator does.
  Rat evalRat(const std::vector<Rat>& params) const;

  /// Conservative interval enclosure over the parameter box. Exact for
  /// Add/Min/Max/div-by-positive-constant; products use the four-corner
  /// rule (exact interval arithmetic over the reals, a sound enclosure for
  /// the integer points used here).
  SymInterval evalInterval(const std::vector<SymInterval>& params) const;

  /// Largest parameter index mentioned, or -1 for closed expressions.
  int maxParamIndex() const;

  std::string str() const;

private:
  SymExpr() = default;
  static SymPtr node(Kind kind, SymPtr a, SymPtr b);

  Kind kind_ = Kind::Const;
  i64 cval_ = 0;
  int paramIdx_ = -1;
  std::string name_;
  SymPtr a_, b_;
};

}  // namespace emm
