// Rendering SymExpr formulas as C expressions for size-generic emission.
//
// The emitters fold BufferLayout geometry (offsets, pitches, arena size)
// into the artifact text as closed-form integer expressions over the
// kernel's runtime size arguments. Rendering is total for the operator set
// the layout planner produces: affine terms, floor/ceil division by
// positive divisors, min/max. A formula that mentions a parameter outside
// the renderable set (e.g. a tile origin, which layout formulas never
// contain by construction) reports failure so the caller can route the
// value through the precomputed-at-bind fallback table instead of emitting
// wrong text.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sym/sym_expr.h"

namespace emm {

/// Renders `e` as a parenthesized C integer expression. `paramNames[i]` is
/// the C identifier substituted for parameter index i; a parameter index at
/// or beyond `paramNames.size()` makes the formula unrenderable and yields
/// nullopt (caller falls back to a bind-table slot). Division renders with
/// C's truncating `/`, which matches floor division because every divisor
/// the layout planner produces is a positive constant and every dividend is
/// nonnegative over the guarded envelope; ceil division renders as
/// `((a + b - 1) / b)`.
std::optional<std::string> symToC(const SymPtr& e, const std::vector<std::string>& paramNames);

}  // namespace emm
