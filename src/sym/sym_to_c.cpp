#include "sym/sym_to_c.h"

namespace emm {
namespace {

bool render(const SymExpr& e, const std::vector<std::string>& names, std::string& out) {
  switch (e.kind()) {
    case SymExpr::Kind::Const:
      out += std::to_string(e.constValue());
      return true;
    case SymExpr::Kind::Param: {
      const int idx = e.paramIndex();
      if (idx < 0 || static_cast<size_t>(idx) >= names.size()) return false;
      out += names[idx];
      return true;
    }
    case SymExpr::Kind::Add:
      out += '(';
      if (!render(*e.lhs(), names, out)) return false;
      out += " + ";
      if (!render(*e.rhs(), names, out)) return false;
      out += ')';
      return true;
    case SymExpr::Kind::Mul:
      out += '(';
      if (!render(*e.lhs(), names, out)) return false;
      out += " * ";
      if (!render(*e.rhs(), names, out)) return false;
      out += ')';
      return true;
    case SymExpr::Kind::FloorDiv:
      // Truncating `/` equals floor here: divisors are positive constants
      // and dividends are nonnegative over the guarded size envelope.
      out += '(';
      if (!render(*e.lhs(), names, out)) return false;
      out += " / ";
      if (!render(*e.rhs(), names, out)) return false;
      out += ')';
      return true;
    case SymExpr::Kind::CeilDiv: {
      std::string num, den;
      if (!render(*e.lhs(), names, num)) return false;
      if (!render(*e.rhs(), names, den)) return false;
      out += "((" + num + " + " + den + " - 1) / " + den + ")";
      return true;
    }
    case SymExpr::Kind::Min:
    case SymExpr::Kind::Max: {
      std::string a, b;
      if (!render(*e.lhs(), names, a)) return false;
      if (!render(*e.rhs(), names, b)) return false;
      const char* cmp = e.kind() == SymExpr::Kind::Min ? " < " : " > ";
      out += "((" + a + ")" + cmp + "(" + b + ") ? (" + a + ") : (" + b + "))";
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<std::string> symToC(const SymPtr& e, const std::vector<std::string>& paramNames) {
  if (e == nullptr) return std::nullopt;
  std::string out;
  if (!render(*e, paramNames, out)) return std::nullopt;
  return out;
}

}  // namespace emm
