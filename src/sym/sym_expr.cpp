#include "sym/sym_expr.h"

#include <algorithm>
#include <sstream>

namespace emm {

namespace {

bool isConst(const SymPtr& e, i64 v) {
  return e->kind() == SymExpr::Kind::Const && e->constValue() == v;
}

}  // namespace

SymPtr SymExpr::node(Kind kind, SymPtr a, SymPtr b) {
  auto n = std::shared_ptr<SymExpr>(new SymExpr());
  n->kind_ = kind;
  n->a_ = std::move(a);
  n->b_ = std::move(b);
  return n;
}

SymPtr SymExpr::constant(i64 v) {
  auto n = std::shared_ptr<SymExpr>(new SymExpr());
  n->kind_ = Kind::Const;
  n->cval_ = v;
  return n;
}

SymPtr SymExpr::param(int index, std::string name) {
  EMM_REQUIRE(index >= 0, "negative symbolic parameter index");
  auto n = std::shared_ptr<SymExpr>(new SymExpr());
  n->kind_ = Kind::Param;
  n->paramIdx_ = index;
  n->name_ = std::move(name);
  return n;
}

SymPtr SymExpr::add(SymPtr a, SymPtr b) {
  EMM_REQUIRE(a && b, "null symbolic operand");
  if (a->kind() == Kind::Const && b->kind() == Kind::Const)
    return constant(addChecked(a->constValue(), b->constValue()));
  if (isConst(a, 0)) return b;
  if (isConst(b, 0)) return a;
  return node(Kind::Add, std::move(a), std::move(b));
}

SymPtr SymExpr::sub(SymPtr a, SymPtr b) {
  return add(std::move(a), mul(constant(-1), std::move(b)));
}

SymPtr SymExpr::mul(SymPtr a, SymPtr b) {
  EMM_REQUIRE(a && b, "null symbolic operand");
  if (a->kind() == Kind::Const && b->kind() == Kind::Const)
    return constant(mulChecked(a->constValue(), b->constValue()));
  if (isConst(a, 1)) return b;
  if (isConst(b, 1)) return a;
  if (isConst(a, 0) || isConst(b, 0)) return constant(0);
  return node(Kind::Mul, std::move(a), std::move(b));
}

SymPtr SymExpr::floorDiv(SymPtr num, SymPtr den) {
  EMM_REQUIRE(num && den, "null symbolic operand");
  if (isConst(den, 1)) return num;
  if (num->kind() == Kind::Const && den->kind() == Kind::Const) {
    EMM_REQUIRE(den->constValue() > 0, "symbolic division by a non-positive divisor");
    return constant(emm::floorDiv(num->constValue(), den->constValue()));
  }
  return node(Kind::FloorDiv, std::move(num), std::move(den));
}

SymPtr SymExpr::ceilDiv(SymPtr num, SymPtr den) {
  EMM_REQUIRE(num && den, "null symbolic operand");
  if (isConst(den, 1)) return num;
  if (num->kind() == Kind::Const && den->kind() == Kind::Const) {
    EMM_REQUIRE(den->constValue() > 0, "symbolic division by a non-positive divisor");
    return constant(emm::ceilDiv(num->constValue(), den->constValue()));
  }
  return node(Kind::CeilDiv, std::move(num), std::move(den));
}

SymPtr SymExpr::min(SymPtr a, SymPtr b) {
  EMM_REQUIRE(a && b, "null symbolic operand");
  if (a.get() == b.get()) return a;
  if (a->kind() == Kind::Const && b->kind() == Kind::Const)
    return constant(std::min(a->constValue(), b->constValue()));
  return node(Kind::Min, std::move(a), std::move(b));
}

SymPtr SymExpr::max(SymPtr a, SymPtr b) {
  EMM_REQUIRE(a && b, "null symbolic operand");
  if (a.get() == b.get()) return a;
  if (a->kind() == Kind::Const && b->kind() == Kind::Const)
    return constant(std::max(a->constValue(), b->constValue()));
  return node(Kind::Max, std::move(a), std::move(b));
}

SymPtr SymExpr::affine(i64 cnst, const std::vector<std::pair<i64, SymPtr>>& terms) {
  SymPtr acc = constant(cnst);
  for (const auto& [coeff, expr] : terms) {
    if (coeff == 0) continue;
    acc = add(std::move(acc), mul(constant(coeff), expr));
  }
  return acc;
}

i64 SymExpr::eval(const std::vector<i64>& params) const {
  switch (kind_) {
    case Kind::Const:
      return cval_;
    case Kind::Param:
      EMM_CHECK(paramIdx_ < static_cast<int>(params.size()),
                "symbolic evaluation binding too short");
      return params[paramIdx_];
    case Kind::Add:
      return addChecked(a_->eval(params), b_->eval(params));
    case Kind::Mul:
      return mulChecked(a_->eval(params), b_->eval(params));
    case Kind::FloorDiv: {
      i64 d = b_->eval(params);
      EMM_CHECK(d > 0, "symbolic division by a non-positive divisor");
      return emm::floorDiv(a_->eval(params), d);
    }
    case Kind::CeilDiv: {
      i64 d = b_->eval(params);
      EMM_CHECK(d > 0, "symbolic division by a non-positive divisor");
      return emm::ceilDiv(a_->eval(params), d);
    }
    case Kind::Min:
      return std::min(a_->eval(params), b_->eval(params));
    case Kind::Max:
      return std::max(a_->eval(params), b_->eval(params));
  }
  EMM_CHECK(false, "unreachable symbolic kind");
}

Rat SymExpr::evalRat(const std::vector<Rat>& params) const {
  switch (kind_) {
    case Kind::Const:
      return Rat(cval_);
    case Kind::Param:
      EMM_CHECK(paramIdx_ < static_cast<int>(params.size()),
                "symbolic evaluation binding too short");
      return params[paramIdx_];
    case Kind::Add:
      return a_->evalRat(params) + b_->evalRat(params);
    case Kind::Mul:
      return a_->evalRat(params) * b_->evalRat(params);
    case Kind::FloorDiv: {
      Rat d = b_->evalRat(params);
      EMM_CHECK(d.sign() > 0, "symbolic division by a non-positive divisor");
      return Rat((a_->evalRat(params) / d).floor());
    }
    case Kind::CeilDiv: {
      Rat d = b_->evalRat(params);
      EMM_CHECK(d.sign() > 0, "symbolic division by a non-positive divisor");
      return Rat((a_->evalRat(params) / d).ceil());
    }
    case Kind::Min:
      return std::min(a_->evalRat(params), b_->evalRat(params));
    case Kind::Max:
      return std::max(a_->evalRat(params), b_->evalRat(params));
  }
  EMM_CHECK(false, "unreachable symbolic kind");
}

SymInterval SymExpr::evalInterval(const std::vector<SymInterval>& params) const {
  switch (kind_) {
    case Kind::Const:
      return {cval_, cval_};
    case Kind::Param:
      EMM_CHECK(paramIdx_ < static_cast<int>(params.size()),
                "symbolic evaluation binding too short");
      EMM_CHECK(params[paramIdx_].lo <= params[paramIdx_].hi, "empty parameter interval");
      return params[paramIdx_];
    case Kind::Add: {
      SymInterval x = a_->evalInterval(params), y = b_->evalInterval(params);
      return {addChecked(x.lo, y.lo), addChecked(x.hi, y.hi)};
    }
    case Kind::Mul: {
      SymInterval x = a_->evalInterval(params), y = b_->evalInterval(params);
      i64 c[4] = {mulChecked(x.lo, y.lo), mulChecked(x.lo, y.hi), mulChecked(x.hi, y.lo),
                  mulChecked(x.hi, y.hi)};
      return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
    }
    case Kind::FloorDiv: {
      SymInterval x = a_->evalInterval(params), y = b_->evalInterval(params);
      EMM_CHECK(y.lo > 0, "symbolic division by a possibly non-positive divisor");
      // The quotient is monotone in each argument separately (in the
      // divisor the direction depends on the numerator's sign), so its
      // extremes lie at the four corners.
      i64 c[4] = {emm::floorDiv(x.lo, y.lo), emm::floorDiv(x.lo, y.hi),
                  emm::floorDiv(x.hi, y.lo), emm::floorDiv(x.hi, y.hi)};
      return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
    }
    case Kind::CeilDiv: {
      SymInterval x = a_->evalInterval(params), y = b_->evalInterval(params);
      EMM_CHECK(y.lo > 0, "symbolic division by a possibly non-positive divisor");
      i64 c[4] = {emm::ceilDiv(x.lo, y.lo), emm::ceilDiv(x.lo, y.hi),
                  emm::ceilDiv(x.hi, y.lo), emm::ceilDiv(x.hi, y.hi)};
      return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
    }
    case Kind::Min: {
      SymInterval x = a_->evalInterval(params), y = b_->evalInterval(params);
      return {std::min(x.lo, y.lo), std::min(x.hi, y.hi)};
    }
    case Kind::Max: {
      SymInterval x = a_->evalInterval(params), y = b_->evalInterval(params);
      return {std::max(x.lo, y.lo), std::max(x.hi, y.hi)};
    }
  }
  EMM_CHECK(false, "unreachable symbolic kind");
}

int SymExpr::maxParamIndex() const {
  switch (kind_) {
    case Kind::Const:
      return -1;
    case Kind::Param:
      return paramIdx_;
    default:
      return std::max(a_->maxParamIndex(), b_->maxParamIndex());
  }
}

std::string SymExpr::str() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::Const:
      os << cval_;
      break;
    case Kind::Param:
      os << (name_.empty() ? "p" + std::to_string(paramIdx_) : name_);
      break;
    case Kind::Add:
      os << "(" << a_->str() << " + " << b_->str() << ")";
      break;
    case Kind::Mul:
      os << "(" << a_->str() << " * " << b_->str() << ")";
      break;
    case Kind::FloorDiv:
      os << "floord(" << a_->str() << ", " << b_->str() << ")";
      break;
    case Kind::CeilDiv:
      os << "ceild(" << a_->str() << ", " << b_->str() << ")";
      break;
    case Kind::Min:
      os << "min(" << a_->str() << ", " << b_->str() << ")";
      break;
    case Kind::Max:
      os << "max(" << a_->str() << ", " << b_->str() << ")";
      break;
  }
  return os.str();
}

}  // namespace emm
