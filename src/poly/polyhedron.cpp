#include "poly/polyhedron.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace emm {

i64 DivExpr::evalFloor(const IntVec& vals) const {
  EMM_CHECK(vals.size() + 1 == coeffs.size(), "DivExpr evaluation arity mismatch");
  i128 acc = coeffs.back();
  for (size_t i = 0; i < vals.size(); ++i) acc += static_cast<i128>(coeffs[i]) * vals[i];
  return floorDiv(narrow(acc), den);
}

i64 DivExpr::evalCeil(const IntVec& vals) const {
  EMM_CHECK(vals.size() + 1 == coeffs.size(), "DivExpr evaluation arity mismatch");
  i128 acc = coeffs.back();
  for (size_t i = 0; i < vals.size(); ++i) acc += static_cast<i128>(coeffs[i]) * vals[i];
  return ceilDiv(narrow(acc), den);
}

i64 DimBounds::evalLower(const IntVec& vals) const {
  EMM_CHECK(!lower.empty(), "dimension has no lower bound");
  i64 best = lower.front().evalCeil(vals);
  for (size_t i = 1; i < lower.size(); ++i) best = std::max(best, lower[i].evalCeil(vals));
  return best;
}

i64 DimBounds::evalUpper(const IntVec& vals) const {
  EMM_CHECK(!upper.empty(), "dimension has no upper bound");
  i64 best = upper.front().evalFloor(vals);
  for (size_t i = 1; i < upper.size(); ++i) best = std::min(best, upper[i].evalFloor(vals));
  return best;
}

void Polyhedron::addEquality(const IntVec& row) {
  EMM_CHECK(static_cast<int>(row.size()) == cols(), "constraint width mismatch");
  eqs_.appendRow(row);
}

void Polyhedron::addInequality(const IntVec& row) {
  EMM_CHECK(static_cast<int>(row.size()) == cols(), "constraint width mismatch");
  ineqs_.appendRow(row);
}

void Polyhedron::addRange(int var, i64 lo, i64 hi) {
  EMM_CHECK(var >= 0 && var < dim_, "variable index out of range");
  IntVec lower(cols(), 0), upper(cols(), 0);
  lower[var] = 1;
  lower.back() = -lo;  // x - lo >= 0
  upper[var] = -1;
  upper.back() = hi;  // hi - x >= 0
  addInequality(lower);
  addInequality(upper);
}

void Polyhedron::addLowerBound(int var, const IntVec& coeffs) {
  EMM_CHECK(static_cast<int>(coeffs.size()) == cols(), "bound width mismatch");
  IntVec row(cols());
  for (int j = 0; j < cols(); ++j) row[j] = narrow(-static_cast<i128>(coeffs[j]));
  row[var] = addChecked(row[var], 1);  // x - expr >= 0
  addInequality(row);
}

void Polyhedron::addUpperBound(int var, const IntVec& coeffs) {
  EMM_CHECK(static_cast<int>(coeffs.size()) == cols(), "bound width mismatch");
  IntVec row = coeffs;
  row[var] = subChecked(row[var], 1);  // expr - x >= 0
  addInequality(row);
}

namespace {

bool isZeroButConst(const IntVec& row) {
  for (size_t i = 0; i + 1 < row.size(); ++i)
    if (row[i] != 0) return false;
  return true;
}

}  // namespace

bool Polyhedron::simplify() {
  if (markedEmpty_) return false;
  // Equalities: gcd-normalize; an equality a.x + c == 0 with gcd(a) not
  // dividing c has no integer solution.
  IntMat newEqs(0, cols());
  std::set<IntVec> seenEq;
  for (int r = 0; r < eqs_.rows(); ++r) {
    IntVec row = eqs_.row(r);
    if (isZeroButConst(row)) {
      if (row.back() != 0) {
        markedEmpty_ = true;
        return false;
      }
      continue;
    }
    i64 g = 0;
    for (size_t i = 0; i + 1 < row.size(); ++i) g = gcd64(g, row[i]);
    if (g > 0 && row.back() % g != 0) {
      markedEmpty_ = true;  // integer-infeasible equality
      return false;
    }
    if (g > 1)
      for (i64& x : row) x /= g;
    // Canonical sign: first nonzero coefficient positive.
    for (size_t i = 0; i < row.size(); ++i)
      if (row[i] != 0) {
        if (row[i] < 0)
          for (i64& x : row) x = narrow(-static_cast<i128>(x));
        break;
      }
    if (seenEq.insert(row).second) newEqs.appendRow(row);
  }
  eqs_ = std::move(newEqs);

  // Inequalities: gcd-tighten (a.x + c >= 0 -> a/g.x + floor(c/g) >= 0),
  // drop tautologies, detect contradictions, dedupe keeping the tightest.
  std::set<IntVec> keptCoeffs;
  IntMat newIneqs(0, cols());
  std::vector<IntVec> rows;
  for (int r = 0; r < ineqs_.rows(); ++r) {
    IntVec row = ineqs_.row(r);
    if (isZeroButConst(row)) {
      if (row.back() < 0) {
        markedEmpty_ = true;
        return false;
      }
      continue;
    }
    i64 g = 0;
    for (size_t i = 0; i + 1 < row.size(); ++i) g = gcd64(g, row[i]);
    if (g > 1) {
      for (size_t i = 0; i + 1 < row.size(); ++i) row[i] /= g;
      row.back() = floorDiv(row.back(), g);
    }
    rows.push_back(std::move(row));
  }
  // Keep the tightest constant per coefficient vector.
  std::sort(rows.begin(), rows.end());
  for (size_t i = 0; i < rows.size(); ++i) {
    IntVec coeffsOnly(rows[i].begin(), rows[i].end() - 1);
    // rows with same coefficients are adjacent after sort; the first has the
    // smallest constant, which is the tightest (a.x >= -c with smallest c).
    if (i > 0 && std::equal(coeffsOnly.begin(), coeffsOnly.end(), rows[i - 1].begin())) continue;
    newIneqs.appendRow(rows[i]);
  }
  ineqs_ = std::move(newIneqs);
  return true;
}

bool Polyhedron::contains(const IntVec& point) const {
  EMM_CHECK(static_cast<int>(point.size()) == dim_ + nparam_, "point arity mismatch");
  if (markedEmpty_) return false;
  IntVec hom = point;
  hom.push_back(1);
  for (int r = 0; r < eqs_.rows(); ++r)
    if (dot(eqs_.row(r), hom) != 0) return false;
  for (int r = 0; r < ineqs_.rows(); ++r)
    if (dot(ineqs_.row(r), hom) < 0) return false;
  return true;
}

namespace {

/// Combines two rows so that column `var` cancels:
///   result = (pos[var]) * neg  + (-neg[var]) * pos   scaled by 1/g.
IntVec combineRows(const IntVec& pos, const IntVec& neg, int var) {
  i64 a = pos[var];  // > 0
  i64 b = neg[var];  // < 0
  i64 g = gcd64(a, b);
  i64 fp = -b / g;  // multiplier for pos, positive
  i64 fn = a / g;   // multiplier for neg, positive
  IntVec out(pos.size());
  for (size_t j = 0; j < pos.size(); ++j) out[j] = mulAddChecked(fp, pos[j], fn, neg[j]);
  EMM_CHECK(out[var] == 0, "FM combination failed to cancel");
  return out;
}

}  // namespace

Polyhedron Polyhedron::eliminated(int var) const {
  EMM_CHECK(var >= 0 && var < dim_, "variable index out of range");
  Polyhedron work = *this;
  if (!work.simplify()) {
    // Empty set: the projection is the empty set in the smaller space.
    Polyhedron out(dim_ - 1, nparam_);
    out.markedEmpty_ = true;
    return out;
  }

  // Prefer substitution through an equality that mentions `var`.
  int eqIdx = -1;
  for (int r = 0; r < work.eqs_.rows(); ++r)
    if (work.eqs_.at(r, var) != 0) {
      eqIdx = r;
      break;
    }

  auto dropColumn = [&](const IntVec& row) {
    IntVec out;
    out.reserve(row.size() - 1);
    for (size_t j = 0; j < row.size(); ++j)
      if (static_cast<int>(j) != var) out.push_back(row[j]);
    return out;
  };

  Polyhedron out(dim_ - 1, nparam_);
  if (eqIdx >= 0) {
    IntVec eq = work.eqs_.row(eqIdx);
    i64 c = eq[var];
    for (int r = 0; r < work.eqs_.rows(); ++r) {
      if (r == eqIdx) continue;
      IntVec row = work.eqs_.row(r);
      if (row[var] != 0) {
        i64 g = gcd64(c, row[var]);
        i64 fr = (c < 0 ? -c : c) / g;
        i64 fe = -(row[var] * ((c < 0) ? -1 : 1)) / g;
        IntVec comb(row.size());
        for (size_t j = 0; j < row.size(); ++j) comb[j] = mulAddChecked(fr, row[j], fe, eq[j]);
        EMM_CHECK(comb[var] == 0, "equality substitution failed to cancel");
        row = comb;
      }
      out.addEquality(dropColumn(row));
    }
    for (int r = 0; r < work.ineqs_.rows(); ++r) {
      IntVec row = work.ineqs_.row(r);
      if (row[var] != 0) {
        // Multiply the inequality by a positive factor and add a multiple of
        // the equality to cancel `var`.
        i64 g = gcd64(c, row[var]);
        i64 fr = (c < 0 ? -c : c) / g;  // positive scale of inequality
        i64 fe = -(row[var] * ((c < 0) ? -1 : 1)) / g;
        IntVec comb(row.size());
        for (size_t j = 0; j < row.size(); ++j) comb[j] = mulAddChecked(fr, row[j], fe, eq[j]);
        EMM_CHECK(comb[var] == 0, "equality substitution failed to cancel");
        row = comb;
      }
      out.addInequality(dropColumn(row));
    }
    out.simplify();
    return out;
  }

  // Classic Fourier-Motzkin on inequalities.
  std::vector<IntVec> pos, neg, none;
  for (int r = 0; r < work.ineqs_.rows(); ++r) {
    IntVec row = work.ineqs_.row(r);
    if (row[var] > 0)
      pos.push_back(std::move(row));
    else if (row[var] < 0)
      neg.push_back(std::move(row));
    else
      none.push_back(std::move(row));
  }
  for (int r = 0; r < work.eqs_.rows(); ++r) {
    // No equality mentions `var` here.
    out.addEquality(dropColumn(work.eqs_.row(r)));
  }
  for (const IntVec& row : none) out.addInequality(dropColumn(row));
  for (const IntVec& p : pos)
    for (const IntVec& n : neg) {
      IntVec comb = combineRows(p, n, var);
      normalizeByGcd(comb);
      out.addInequality(dropColumn(comb));
    }
  out.simplify();
  return out;
}

Polyhedron Polyhedron::projectedOnto(int keep) const {
  EMM_CHECK(keep >= 0 && keep <= dim_, "projection arity out of range");
  Polyhedron cur = *this;
  while (cur.dim() > keep) cur = cur.eliminated(cur.dim() - 1);
  return cur;
}

Polyhedron Polyhedron::withInsertedVars(int pos, int count) const {
  EMM_CHECK(pos >= 0 && pos <= dim_ && count >= 0, "bad var insertion");
  Polyhedron out(dim_ + count, nparam_);
  out.markedEmpty_ = markedEmpty_;
  auto widen = [&](const IntVec& row) {
    IntVec wide(out.cols(), 0);
    for (int j = 0; j < pos; ++j) wide[j] = row[j];
    for (int j = pos; j < dim_ + nparam_ + 1; ++j) wide[j + count] = row[j];
    return wide;
  };
  for (int r = 0; r < eqs_.rows(); ++r) out.addEquality(widen(eqs_.row(r)));
  for (int r = 0; r < ineqs_.rows(); ++r) out.addInequality(widen(ineqs_.row(r)));
  return out;
}

Polyhedron Polyhedron::intersect(const Polyhedron& a, const Polyhedron& b) {
  EMM_CHECK(a.dim_ == b.dim_ && a.nparam_ == b.nparam_, "intersect arity mismatch");
  Polyhedron out = a;
  out.markedEmpty_ = a.markedEmpty_ || b.markedEmpty_;
  for (int r = 0; r < b.eqs_.rows(); ++r) out.addEquality(b.eqs_.row(r));
  for (int r = 0; r < b.ineqs_.rows(); ++r) out.addInequality(b.ineqs_.row(r));
  out.simplify();
  return out;
}

Polyhedron Polyhedron::image(const IntMat& f) const {
  EMM_CHECK(f.cols() == cols(), "access function width mismatch");
  int outDim = f.rows();
  // Space: [y (outDim), x (dim_)], params unchanged.
  Polyhedron joint(outDim + dim_, nparam_);
  joint.markedEmpty_ = markedEmpty_;
  // Embed the domain constraints on x.
  auto embed = [&](const IntVec& row) {
    IntVec wide(joint.cols(), 0);
    for (int j = 0; j < dim_; ++j) wide[outDim + j] = row[j];
    for (int j = 0; j < nparam_ + 1; ++j) wide[outDim + dim_ + j] = row[dim_ + j];
    return wide;
  };
  for (int r = 0; r < eqs_.rows(); ++r) joint.addEquality(embed(eqs_.row(r)));
  for (int r = 0; r < ineqs_.rows(); ++r) joint.addInequality(embed(ineqs_.row(r)));
  // y_i == f_i(x, p).
  for (int i = 0; i < outDim; ++i) {
    IntVec row(joint.cols(), 0);
    row[i] = -1;
    for (int j = 0; j < dim_; ++j) row[outDim + j] = f.at(i, j);
    for (int j = 0; j < nparam_ + 1; ++j) row[outDim + dim_ + j] = f.at(i, dim_ + j);
    joint.addEquality(row);
  }
  // Eliminate the x block.
  Polyhedron cur = joint;
  for (int k = 0; k < dim_; ++k) cur = cur.eliminated(outDim);
  return cur;
}

Polyhedron Polyhedron::preimage(const IntMat& f, int newDim) const {
  EMM_CHECK(f.rows() == dim_, "preimage map must produce dim() outputs");
  EMM_CHECK(f.cols() == newDim + nparam_ + 1, "preimage map width mismatch");
  Polyhedron out(newDim, nparam_);
  out.markedEmpty_ = markedEmpty_;
  auto substitute = [&](const IntVec& row) {
    // row over [x (dim_), p, 1] with x = f(z, p) becomes a row over [z, p, 1].
    IntVec res(newDim + nparam_ + 1, 0);
    for (int j = 0; j < dim_; ++j) {
      if (row[j] == 0) continue;
      for (int c = 0; c < newDim + nparam_ + 1; ++c)
        res[c] = narrow(static_cast<i128>(res[c]) + static_cast<i128>(row[j]) * f.at(j, c));
    }
    for (int j = 0; j < nparam_ + 1; ++j)
      res[newDim + j] = addChecked(res[newDim + j], row[dim_ + j]);
    return res;
  };
  for (int r = 0; r < eqs_.rows(); ++r) out.addEquality(substitute(eqs_.row(r)));
  for (int r = 0; r < ineqs_.rows(); ++r) out.addInequality(substitute(ineqs_.row(r)));
  out.simplify();
  return out;
}

bool Polyhedron::isEmpty() const {
  Polyhedron work = *this;
  if (!work.simplify()) return true;
  // Eliminate every variable and parameter; what remains are constant rows
  // whose satisfiability simplify() decides.
  // Treat parameters as variables for the feasibility check.
  Polyhedron all = work.paramsAsVars();
  while (all.dim() > 0) {
    all = all.eliminated(all.dim() - 1);
    if (all.markedEmpty_) return true;
  }
  return !all.simplify();
}

Polyhedron Polyhedron::paramsAsVars() const {
  Polyhedron out(dim_ + nparam_, 0);
  out.markedEmpty_ = markedEmpty_;
  for (int r = 0; r < eqs_.rows(); ++r) out.addEquality(eqs_.row(r));
  for (int r = 0; r < ineqs_.rows(); ++r) out.addInequality(ineqs_.row(r));
  return out;
}

namespace {

DimBounds boundsFromConstraints(const Polyhedron& p, int var, int prefixLen) {
  // All constraints mention only vars < prefixLen, `var`, and params.
  DimBounds b;
  auto scan = [&](const IntVec& row, bool equality) {
    i64 c = row[var];
    if (c == 0) return;
    // c*var + rest >= 0  (or == 0)
    // c > 0: var >= ceil(-rest / c);  c < 0: var <= floor(rest / -c).
    DivExpr e;
    e.coeffs.resize(prefixLen + (static_cast<int>(row.size()) - 1 - p.dim()) + 1);
    int nparamPlus1 = static_cast<int>(row.size()) - p.dim();  // params + const
    auto rest = [&](int sign) {
      for (int j = 0; j < prefixLen; ++j) e.coeffs[j] = mulChecked(sign, row[j]);
      for (int j = 0; j < nparamPlus1; ++j)
        e.coeffs[prefixLen + j] = mulChecked(sign, row[p.dim() + j]);
    };
    if (c > 0) {
      rest(-1);
      e.den = c;
      b.lower.push_back(e);
      if (equality) {
        DivExpr u = e;
        b.upper.push_back(u);
      }
    } else {
      rest(1);
      e.den = -c;
      b.upper.push_back(e);
      if (equality) {
        DivExpr l = e;
        b.lower.push_back(l);
      }
    }
  };
  for (int r = 0; r < p.equalities().rows(); ++r) scan(p.equalities().row(r), true);
  for (int r = 0; r < p.inequalities().rows(); ++r) scan(p.inequalities().row(r), false);
  EMM_CHECK(!b.lower.empty() && !b.upper.empty(),
            "dimension is unbounded; polyhedron is not a polytope in var " + std::to_string(var));
  return b;
}

}  // namespace

DimBounds Polyhedron::paramBounds(int var) const {
  EMM_CHECK(var >= 0 && var < dim_, "variable index out of range");
  // Move `var` to position 0 by eliminating everything else.
  Polyhedron cur = *this;
  // Eliminate variables after var.
  while (cur.dim() > var + 1) cur = cur.eliminated(cur.dim() - 1);
  // Eliminate variables before var.
  for (int k = 0; k < var; ++k) cur = cur.eliminated(0);
  EMM_CHECK(!cur.isEmpty(), "paramBounds of empty polyhedron");
  return boundsFromConstraints(cur, 0, 0);
}

DimBounds Polyhedron::loopBounds(int var) const {
  EMM_CHECK(var >= 0 && var < dim_, "variable index out of range");
  Polyhedron cur = *this;
  while (cur.dim() > var + 1) cur = cur.eliminated(cur.dim() - 1);
  return boundsFromConstraints(cur, var, var);
}

std::string Polyhedron::str() const {
  std::ostringstream os;
  os << "{ dim=" << dim_ << " nparam=" << nparam_;
  if (markedEmpty_) os << " EMPTY";
  os << "\n";
  auto rowStr = [&](const IntVec& row, const char* rel) {
    os << "  [";
    for (size_t j = 0; j < row.size(); ++j) os << row[j] << (j + 1 < row.size() ? " " : "");
    os << "] " << rel << " 0\n";
  };
  for (int r = 0; r < eqs_.rows(); ++r) rowStr(eqs_.row(r), "==");
  for (int r = 0; r < ineqs_.rows(); ++r) rowStr(ineqs_.row(r), ">=");
  os << "}";
  return os.str();
}

PolySet setDifference(const Polyhedron& a, const Polyhedron& b) {
  EMM_CHECK(a.dim() == b.dim() && a.nparam() == b.nparam(), "difference arity mismatch");
  // A \ B = union over constraints c of B of (A and previous-constraints(B) and not c).
  PolySet out;
  Polyhedron acc = a;  // A intersected with the B-constraints handled so far
  auto negate = [&](const IntVec& row, bool strictLess) {
    // not(row . v >= 0)  ==  row . v <= -1  ==  -row . v - 1 >= 0 (integers).
    IntVec neg(row.size());
    for (size_t j = 0; j < row.size(); ++j) neg[j] = narrow(-static_cast<i128>(row[j]));
    if (strictLess) neg.back() = subChecked(neg.back(), 1);
    return neg;
  };
  // Equalities of B: v == 0 splits into v >= 1 and v <= -1.
  for (int r = 0; r < b.equalities().rows(); ++r) {
    IntVec row = b.equalities().row(r);
    {
      Polyhedron piece = acc;
      IntVec gt = row;
      gt.back() = subChecked(gt.back(), 1);  // row.v - 1 >= 0
      piece.addInequality(gt);
      if (piece.simplify() && !piece.isEmpty()) out.push_back(piece);
    }
    {
      Polyhedron piece = acc;
      piece.addInequality(negate(row, true));
      if (piece.simplify() && !piece.isEmpty()) out.push_back(piece);
    }
    acc.addEquality(row);
    if (!acc.simplify()) return out;
  }
  for (int r = 0; r < b.inequalities().rows(); ++r) {
    IntVec row = b.inequalities().row(r);
    Polyhedron piece = acc;
    piece.addInequality(negate(row, true));
    if (piece.simplify() && !piece.isEmpty()) out.push_back(piece);
    acc.addInequality(row);
    if (!acc.simplify()) return out;
  }
  return out;
}

PolySet makeDisjoint(const PolySet& pieces) {
  PolySet out;
  for (const Polyhedron& p : pieces) {
    if (p.isEmpty()) continue;
    // Subtract everything already emitted. Pieces that do not overlap an
    // emitted region pass through whole — constraint-wise subtraction would
    // needlessly split them (and produce uglier scan code).
    PolySet remain{p};
    for (const Polyhedron& done : out) {
      PolySet next;
      for (const Polyhedron& r : remain) {
        if (!overlaps(r, done)) {
          next.push_back(r);
          continue;
        }
        PolySet diff = setDifference(r, done);
        next.insert(next.end(), diff.begin(), diff.end());
      }
      remain = std::move(next);
      if (remain.empty()) break;
    }
    for (Polyhedron& r : remain)
      if (!r.isEmpty()) out.push_back(std::move(r));
  }
  return out;
}

DivExpr dropLeadingCoeffs(const DivExpr& e, int count) {
  EMM_CHECK(count >= 0 && static_cast<size_t>(count) < e.coeffs.size(),
            "dropLeadingCoeffs out of range");
  DivExpr out;
  out.den = e.den;
  out.coeffs.assign(e.coeffs.begin() + count, e.coeffs.end());
  return out;
}

i64 evalStrippedLower(const DimBounds& b, int count, const IntVec& params) {
  EMM_CHECK(!b.lower.empty(), "dimension has no lower bound");
  i64 best = INT64_MIN;
  for (const DivExpr& e : b.lower)
    best = std::max(best, dropLeadingCoeffs(e, count).evalCeil(params));
  return best;
}

bool overlaps(const Polyhedron& a, const Polyhedron& b) {
  return !Polyhedron::intersect(a, b).isEmpty();
}

std::vector<std::vector<int>> overlapComponents(const PolySet& sets) {
  int n = static_cast<int>(sets.size());
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (find(i) != find(j) && overlaps(sets[i], sets[j])) parent[find(i)] = find(j);
  std::vector<std::vector<int>> comps;
  std::vector<int> compOf(n, -1);
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    if (compOf[root] < 0) {
      compOf[root] = static_cast<int>(comps.size());
      comps.emplace_back();
    }
    comps[compOf[root]].push_back(i);
  }
  return comps;
}

}  // namespace emm
