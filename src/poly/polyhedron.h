// Parametric integer polyhedra with exact arithmetic.
//
// This module substitutes for PolyLib and PIP in the paper's toolchain:
// it provides images of iteration spaces under affine access functions,
// intersection, emptiness, set difference, and parametric per-dimension
// bounds (the quantity the paper obtains from PIP).
//
// A polyhedron lives in a space of `dim` set variables and `nparam`
// parameters. Every constraint row has dim + nparam + 1 entries laid out as
//   [x_0 ... x_{dim-1}  p_0 ... p_{nparam-1}  const]
// Equalities mean row . v == 0, inequalities mean row . v >= 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace emm {

/// An affine form with an integer divisor, used for quasi-affine loop
/// bounds: value = floor_or_ceil( (coeffs . [outer vars, params, 1]) / den ).
struct DivExpr {
  IntVec coeffs;  ///< over [vars..., params..., 1]; length fixed by context
  i64 den = 1;    ///< positive divisor

  /// Evaluates with `vals` = concatenated variable+parameter values,
  /// applying floor (for upper bounds) or ceil (for lower bounds).
  i64 evalFloor(const IntVec& vals) const;
  i64 evalCeil(const IntVec& vals) const;
};

/// Bounds of one dimension: lower = max over ceil-forms, upper = min over
/// floor-forms. This is exactly the shape of CLooG loop bounds.
struct DimBounds {
  std::vector<DivExpr> lower;
  std::vector<DivExpr> upper;

  /// Evaluates max of lower bounds at a concrete point.
  i64 evalLower(const IntVec& vals) const;
  /// Evaluates min of upper bounds at a concrete point.
  i64 evalUpper(const IntVec& vals) const;
};

/// A conjunction of affine equality/inequality constraints over integer
/// set variables and parameters.
class Polyhedron {
public:
  Polyhedron() = default;
  Polyhedron(int dim, int nparam)
      : dim_(dim), nparam_(nparam), eqs_(0, dim + nparam + 1), ineqs_(0, dim + nparam + 1) {
    EMM_CHECK(dim >= 0 && nparam >= 0, "negative polyhedron shape");
  }

  /// The universe polyhedron (no constraints).
  static Polyhedron universe(int dim, int nparam) { return Polyhedron(dim, nparam); }

  int dim() const { return dim_; }
  int nparam() const { return nparam_; }
  int cols() const { return dim_ + nparam_ + 1; }

  const IntMat& equalities() const { return eqs_; }
  const IntMat& inequalities() const { return ineqs_; }
  int numConstraints() const { return eqs_.rows() + ineqs_.rows(); }

  /// Adds row . v == 0.
  void addEquality(const IntVec& row);
  /// Adds row . v >= 0.
  void addInequality(const IntVec& row);

  /// Convenience: adds lo <= x_var <= hi for constants lo, hi.
  void addRange(int var, i64 lo, i64 hi);
  /// Convenience: x_var >= coeffs . [x,p,1].
  void addLowerBound(int var, const IntVec& coeffs);
  /// Convenience: x_var <= coeffs . [x,p,1].
  void addUpperBound(int var, const IntVec& coeffs);

  /// Gcd-normalizes rows, drops tautologies and duplicates. Returns false if
  /// a trivially unsatisfiable constraint (e.g. 0 >= 1 or gcd test on an
  /// equality) was found, in which case the polyhedron is marked empty.
  bool simplify();

  /// True when the polyhedron is syntactically marked empty or the rational
  /// relaxation is infeasible (Fourier-Motzkin over all variables and
  /// parameters). Exact for the integer sets in this codebase's test
  /// regime; a rational-feasible, integer-empty set would only weaken
  /// (never break) downstream decisions, since callers use emptiness to
  /// prune overlap/dependence candidates.
  bool isEmpty() const;

  /// True if this polyhedron contains the point (vars, params are given as
  /// one concatenated vector of length dim + nparam).
  bool contains(const IntVec& point) const;

  /// Projects out (existentially quantifies) variable `var` in [0, dim).
  Polyhedron eliminated(int var) const;

  /// Projects onto the first `keep` variables (eliminates the rest).
  Polyhedron projectedOnto(int keep) const;

  /// Inserts `count` fresh unconstrained variables starting at position
  /// `pos`; existing constraints are re-indexed.
  Polyhedron withInsertedVars(int pos, int count) const;

  /// Intersection. Both operands must have identical (dim, nparam).
  static Polyhedron intersect(const Polyhedron& a, const Polyhedron& b);

  /// Image of this polyhedron under the affine map `f`. `f` has one row per
  /// output dimension and dim + nparam + 1 columns. The result has f.rows()
  /// set variables and the same parameters:
  ///   { y | exists x in this : y = f(x, p) }.
  Polyhedron image(const IntMat& f) const;

  /// Preimage under the affine map `f`: { x | f(x, p) in this }.
  /// `f` has dim() rows and newDim + nparam + 1 columns.
  Polyhedron preimage(const IntMat& f, int newDim) const;

  /// Parametric bounds of variable `var` as functions of the *parameters
  /// only* (all other set variables are projected out first). DivExpr
  /// coefficient vectors have nparam + 1 entries.
  DimBounds paramBounds(int var) const;

  /// Bounds of variable `var` as functions of variables 0..var-1 and the
  /// parameters (variables var+1.. are projected out). DivExpr coefficient
  /// vectors have var + nparam + 1 entries. This is the loop-bound query
  /// used by code generation.
  DimBounds loopBounds(int var) const;

  /// Renames nothing but returns a copy with parameters turned into set
  /// variables (appended after existing vars), e.g. to test emptiness over
  /// the combined space explicitly.
  Polyhedron paramsAsVars() const;

  std::string str() const;

private:
  bool markedEmpty_ = false;
  int dim_ = 0;
  int nparam_ = 0;
  IntMat eqs_;
  IntMat ineqs_;

  friend class PolyBuilder;
};

/// Drops the leading `count` coefficient slots of a bound form. Used to
/// turn a loop/paramBounds DivExpr over [outer vars, params, 1] into one
/// over [params, 1] when the leading variable coefficients are known to be
/// zero (rectangular bounds) — the single place that encodes this slicing.
DivExpr dropLeadingCoeffs(const DivExpr& e, int count);

/// Max over the ceil-evaluated lower bounds of `b` with the leading `count`
/// variable slots dropped: the canonical "pin this loop's origin at its
/// lower bound" evaluation shared by the tiler and both tile evaluators.
i64 evalStrippedLower(const DimBounds& b, int count, const IntVec& params);

/// Disjunction of polyhedra (all with identical dim/nparam).
using PolySet = std::vector<Polyhedron>;

/// A \ B as a union of disjoint polyhedra.
PolySet setDifference(const Polyhedron& a, const Polyhedron& b);

/// Rewrites a list of (possibly overlapping) polyhedra into an equivalent
/// list of pairwise-disjoint polyhedra covering the same integer points.
/// Order bias: earlier inputs keep their full region; later inputs are
/// trimmed. Empty pieces are dropped.
PolySet makeDisjoint(const PolySet& pieces);

/// True when the two polyhedra share at least one rational point.
bool overlaps(const Polyhedron& a, const Polyhedron& b);

/// Partitions indices [0, n) into connected components of the overlap graph
/// of `sets` (the partitioning step of the paper's Section 3.1).
std::vector<std::vector<int>> overlapComponents(const PolySet& sets);

}  // namespace emm
