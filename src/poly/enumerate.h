// Integer-point enumeration and counting over polyhedra.
//
// The paper's Algorithm 1 compares intersection volumes against a delta
// threshold; we measure volumes by exact integer-point counting at concrete
// parameter bindings (the paper's Polylib-based volume plays the same role).
// Enumeration is also the backbone of the property-test suite: generated
// loop nests must visit exactly the enumerated points.
#pragma once

#include <functional>

#include "poly/polyhedron.h"

namespace emm {

/// Calls `visit` once for every integer point of `p` with the parameters
/// bound to `paramValues`. Points are produced in lexicographic order.
/// Aborts (via EMM_CHECK) if the set is unbounded in some dimension.
void forEachPoint(const Polyhedron& p, const IntVec& paramValues,
                  const std::function<void(const IntVec&)>& visit);

/// Number of integer points of `p` at the given parameter binding.
/// `cap` guards against runaway enumeration: counting stops and the
/// function returns `cap` once that many points have been seen.
i64 countPoints(const Polyhedron& p, const IntVec& paramValues, i64 cap = INT64_MAX);

/// Number of integer points in the intersection of two sets.
i64 countIntersection(const Polyhedron& a, const Polyhedron& b, const IntVec& paramValues,
                      i64 cap = INT64_MAX);

/// Number of distinct integer points in the union of `sets` (each point
/// counted once even when sets overlap).
i64 countUnion(const PolySet& sets, const IntVec& paramValues, i64 cap = INT64_MAX);

/// Product of per-dimension extents of the bounding box at the given
/// parameter binding: the size of the rectangular local buffer Algorithm 2
/// would allocate for this set. Zero if empty.
i64 boundingBoxVolume(const Polyhedron& p, const IntVec& paramValues);

}  // namespace emm
