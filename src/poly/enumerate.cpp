#include "poly/enumerate.h"

#include <set>

namespace emm {

namespace {

/// Recursive lexicographic scan. `proj[k]` is the polyhedron projected onto
/// the first k+1 variables, so loop bounds at depth k only reference outer
/// values and parameters.
void scan(const std::vector<Polyhedron>& proj, const Polyhedron& full, const IntVec& params,
          IntVec& prefix, const std::function<void(const IntVec&)>& visit, bool& aborted,
          i64* budget) {
  int depth = static_cast<int>(prefix.size());
  int dim = full.dim();
  if (depth == dim) {
    IntVec point = prefix;
    point.insert(point.end(), params.begin(), params.end());
    if (full.contains(point)) {
      if (budget != nullptr && --*budget < 0) {
        aborted = true;
        return;
      }
      visit(prefix);
    }
    return;
  }
  DimBounds b = proj[depth].loopBounds(depth);
  IntVec env = prefix;
  env.insert(env.end(), params.begin(), params.end());
  i64 lo = b.evalLower(env);
  i64 hi = b.evalUpper(env);
  for (i64 v = lo; v <= hi && !aborted; ++v) {
    prefix.push_back(v);
    scan(proj, full, params, prefix, visit, aborted, budget);
    prefix.pop_back();
  }
}

void forEachPointImpl(const Polyhedron& p, const IntVec& paramValues,
                      const std::function<void(const IntVec&)>& visit, i64* budget,
                      bool& aborted) {
  EMM_CHECK(static_cast<int>(paramValues.size()) == p.nparam(), "parameter arity mismatch");
  Polyhedron work = p;
  if (!work.simplify() || work.isEmpty()) return;
  // Bind parameters to constants so bounds are finite even when the
  // parametric form would not expose them.
  Polyhedron bound(p.dim(), p.nparam());
  for (int j = 0; j < p.nparam(); ++j) {
    IntVec row(p.cols(), 0);
    row[p.dim() + j] = 1;
    row.back() = narrow(-static_cast<i128>(paramValues[j]));
    bound.addEquality(row);
  }
  work = Polyhedron::intersect(work, bound);
  if (work.isEmpty()) return;

  std::vector<Polyhedron> proj(p.dim());
  for (int k = 0; k < p.dim(); ++k) proj[k] = work.projectedOnto(k + 1);
  IntVec prefix;
  scan(proj, work, paramValues, prefix, visit, aborted, budget);
}

}  // namespace

void forEachPoint(const Polyhedron& p, const IntVec& paramValues,
                  const std::function<void(const IntVec&)>& visit) {
  bool aborted = false;
  forEachPointImpl(p, paramValues, visit, nullptr, aborted);
}

i64 countPoints(const Polyhedron& p, const IntVec& paramValues, i64 cap) {
  i64 budget = cap;
  i64 count = 0;
  bool aborted = false;
  forEachPointImpl(p, paramValues, [&](const IntVec&) { ++count; }, &budget, aborted);
  return aborted ? cap : count;
}

i64 countIntersection(const Polyhedron& a, const Polyhedron& b, const IntVec& paramValues,
                      i64 cap) {
  return countPoints(Polyhedron::intersect(a, b), paramValues, cap);
}

i64 countUnion(const PolySet& sets, const IntVec& paramValues, i64 cap) {
  i64 total = 0;
  for (const Polyhedron& piece : makeDisjoint(sets)) {
    total = addChecked(total, countPoints(piece, paramValues, cap));
    if (total >= cap) return cap;
  }
  return total;
}

i64 boundingBoxVolume(const Polyhedron& p, const IntVec& paramValues) {
  if (p.isEmpty()) return 0;
  i64 vol = 1;
  for (int d = 0; d < p.dim(); ++d) {
    DimBounds b = p.paramBounds(d);
    i64 lo = b.evalLower(paramValues);
    i64 hi = b.evalUpper(paramValues);
    if (hi < lo) return 0;
    vol = mulChecked(vol, hi - lo + 1);
  }
  return vol;
}

}  // namespace emm
