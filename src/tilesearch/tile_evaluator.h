// Memoized candidate evaluation for the Section-4.3 tile-size search.
//
// Every candidate evaluation used to instantiate the full Section-3
// analysis (analyzeTile -> analyzeBlock: data-space images, overlap
// partitioning, volume sampling) from scratch — the dominant cost of the
// whole pipeline (~90% of an ME compile). A TileEvaluator fixes the
// (block, plan, options) context once and then:
//
//  - computes the rectangular loop bounds a single time and shares them
//    across all candidates (they do not depend on the tile sizes), so the
//    range and minimum-volume constraints are checked BEFORE any analysis
//    runs and infeasible candidates cost ~nothing,
//  - memoizes full evaluations by candidate vector, so a tile probed by
//    several descent sweeps, several seeds, or several solvers (the
//    coordinate-descent solver and the exhaustive oracle used to certify
//    it) is analyzed exactly once.
//
// Both searchTileSizes and exhaustiveTileSearch route through a shared
// TileEvaluator; the driver's tilesearch pass holds one per compile.
#pragma once

#include <map>
#include <vector>

#include "tilesearch/tilesearch.h"

namespace emm {

class TileEvaluator {
public:
  /// Binds the evaluation context. `block` and `plan` must outlive the
  /// evaluator. Throws ApiError on arity mismatches (candidates vs depth,
  /// paramValues vs block parameters).
  TileEvaluator(const ProgramBlock& block, const ParallelismPlan& plan,
                const TileSearchOptions& options, const SmemOptions& smemBase);

  /// Memoized Section-4.3 evaluation of one candidate tile-size vector.
  /// The reference stays valid for the evaluator's lifetime.
  const TileEvaluation& evaluate(const std::vector<i64>& subTile);

  int depth() const { return depth_; }
  /// Iteration range of common loop `l` at the bound parameter values.
  i64 loopRange(int l) const { return loopRange_[l]; }
  /// Candidate ladder per loop: options.candidates when given, otherwise the
  /// geometric ladder {1, 2, 4, ...} clipped to each loop's range.
  const std::vector<std::vector<i64>>& candidates() const { return candidates_; }

  const TileSearchOptions& options() const { return options_; }

  /// Number of candidates actually evaluated (memo misses).
  int evaluations() const { return evaluations_; }
  /// Number of evaluate() calls answered from the memo.
  int memoHits() const { return memoHits_; }
  /// Number of evaluations that survived the cheap constraints and paid for
  /// the Section-3 analysis (<= evaluations()).
  int analysesRun() const { return analysesRun_; }

private:
  TileEvaluation evaluateUncached(const std::vector<i64>& subTile);

  const ProgramBlock& block_;
  const ParallelismPlan& plan_;
  TileSearchOptions options_;
  SmemOptions smemBase_;
  int depth_ = 0;
  std::vector<DimBounds> loopBounds_;  ///< tile-size independent, shared
  std::vector<i64> loopRange_;
  std::vector<std::vector<i64>> candidates_;
  std::map<std::vector<i64>, TileEvaluation> memo_;
  int evaluations_ = 0;
  int memoHits_ = 0;
  int analysesRun_ = 0;
};

/// Fast solver (geometric seeding + projected coordinate descent) over a
/// caller-provided evaluator, sharing its memo with other solvers.
TileSearchResult searchTileSizes(TileEvaluator& evaluator);

/// Grid oracle over a caller-provided evaluator.
TileSearchResult exhaustiveTileSearch(TileEvaluator& evaluator);

}  // namespace emm
