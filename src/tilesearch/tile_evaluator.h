// Candidate evaluation for the Section-4.3 tile-size search.
//
// Every candidate evaluation used to instantiate the full Section-3
// analysis (analyzeTile -> analyzeBlock: data-space images, overlap
// partitioning, volume sampling) from scratch — the dominant cost of the
// whole pipeline (~90% of an ME compile). A TileEvaluator fixes the
// (block, plan, options) context once and then:
//
//  - computes the rectangular loop bounds a single time and shares them
//    across all candidates (they do not depend on the tile sizes), so the
//    range and minimum-volume constraints are checked BEFORE any analysis
//    runs and infeasible candidates cost ~nothing,
//  - lazily builds a ParametricTilePlan — the Section-3 analysis run ONCE
//    with tile sizes symbolic — on the first candidate that survives the
//    cheap constraints, validates it against concrete probe evaluations,
//    and from then on serves evaluations as pure expression evaluation
//    (parametric_plan.h); when the block is not parametrically analyzable
//    or a probe disagrees, it falls back to the concrete per-candidate
//    path and records the reason,
//  - may ADOPT a shared family plan (adoptFamilyPlan) instead of building
//    one: the driver's family tier keeps one size-generic ParametricTilePlan
//    per kernel family, and a per-size compile binds it (bindSizes) and
//    revalidates it against the same concrete probes — adoption that fails
//    a probe falls back to building a fresh plan, so a family hit can never
//    change the result of a compile,
//  - prunes whole tile-size boxes before a solver seeds candidates
//    (prepareSearch): when the partition structure is already coarsest at a
//    box's minimum corner, ParametricTilePlan::footprintInterval encloses
//    the true footprint of every candidate in the box, and a box whose
//    lower bound exceeds the memory limit is dropped from the candidate
//    ladders without evaluating anything,
//  - memoizes full evaluations by candidate vector, so a tile probed by
//    several descent sweeps, several seeds, or several solvers (the
//    coordinate-descent solver and the exhaustive oracle used to certify
//    it) is analyzed exactly once.
//
// Both searchTileSizes and exhaustiveTileSearch route through a shared
// TileEvaluator; the driver's tilesearch pass holds one per compile.
//
// Accounting: evaluations() counts memo misses, including the probe
// candidates evaluated during plan validation; analysesRun() counts the
// candidates that paid for a *concrete* Section-3 analysis (probes and
// fallback evaluations — zero extra analyses once a parametric plan is
// active).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "tilesearch/parametric_plan.h"
#include "tilesearch/tilesearch.h"

namespace emm {

class TileEvaluator {
public:
  /// Parametric-plan status. Pending = no candidate has survived the cheap
  /// constraints yet, so no plan has been attempted.
  enum class ParametricState { Pending, Active, Fallback };

  /// Binds the evaluation context. `block` and `plan` must outlive the
  /// evaluator. Throws ApiError on arity mismatches (candidates vs depth,
  /// paramValues vs block parameters).
  TileEvaluator(const ProgramBlock& block, const ParallelismPlan& plan,
                const TileSearchOptions& options, const SmemOptions& smemBase);
  ~TileEvaluator();

  /// Offers a size-generic family plan to adopt instead of building one.
  /// Must be called before the first evaluate()/prepareSearch(). The plan
  /// is revalidated against concrete probe evaluations at THIS evaluator's
  /// problem size; a failed revalidation silently builds a fresh plan, so
  /// adoption never changes any evaluation result.
  void adoptFamilyPlan(std::shared_ptr<const ParametricTilePlan> plan);

  /// Runs plan construction/adoption and candidate-box pruning once, before
  /// a solver reads candidates(). Idempotent; called by both solvers.
  void prepareSearch();

  /// Memoized Section-4.3 evaluation of one candidate tile-size vector.
  /// The reference stays valid for the evaluator's lifetime.
  const TileEvaluation& evaluate(const std::vector<i64>& subTile);

  int depth() const { return depth_; }
  /// Iteration range of common loop `l` at the bound parameter values.
  i64 loopRange(int l) const { return loopRange_[l]; }
  /// Candidate ladder per loop: options.candidates when given, otherwise the
  /// geometric ladder {1, 2, 4, ...} clipped to each loop's range. After
  /// prepareSearch() the ladders exclude pruned boxes.
  const std::vector<std::vector<i64>>& candidates() const { return candidates_; }

  const TileSearchOptions& options() const { return options_; }

  /// Number of candidates actually evaluated (memo misses).
  int evaluations() const { return evaluations_; }
  /// Number of evaluate() calls answered from the memo.
  int memoHits() const { return memoHits_; }
  /// Number of evaluations that survived the cheap constraints and paid for
  /// a concrete Section-3 analysis (<= evaluations(); stays at the probe
  /// count while a parametric plan serves evaluations).
  int analysesRun() const { return analysesRun_; }
  /// Candidate ladder entries removed by footprint-interval box pruning.
  int prunedBoxes() const { return prunedBoxes_; }

  /// Current parametric-plan status (never forces a build).
  ParametricState parametricState() const { return state_; }
  /// Why the fallback is active ("" while Pending/Active).
  const std::string& fallbackReason() const { return fallbackReason_; }
  /// The active plan, or nullptr (Pending or Fallback).
  const ParametricTilePlan* parametricPlan() const { return paramPlan_.get(); }
  /// The active plan as a shareable handle (for the driver's family tier).
  std::shared_ptr<const ParametricTilePlan> sharedPlan() const { return paramPlan_; }
  /// True when the active plan came from adoptFamilyPlan (probe-validated
  /// at this size) rather than a fresh symbolic analysis.
  bool familyAdopted() const { return familyAdopted_; }
  /// Symbolic plan construction + probe-validation time, ms.
  double planBuildMillis() const { return planBuildMillis_; }
  /// Cumulative time spent evaluating memo-miss candidates, ms.
  double evalMillis() const { return evalMillis_; }

private:
  /// Tile-size-independent constraints (range, minimum volume). Returns an
  /// infeasible evaluation when one fails, feasible=false + empty reason
  /// when the candidate survives.
  TileEvaluation cheapCheck(const std::vector<i64>& subTile) const;
  /// Full concrete evaluation (cheap constraints + Section-3 analysis).
  TileEvaluation evaluateConcrete(const std::vector<i64>& subTile);
  /// Builds/adopts and validates the parametric plan once (no-op after).
  void ensurePlan();
  /// Footprint-interval box pruning of the candidate ladders; requires an
  /// Active plan.
  void pruneCandidateBoxes();

  const ProgramBlock& block_;
  const ParallelismPlan& plan_;
  TileSearchOptions options_;
  SmemOptions smemBase_;
  int depth_ = 0;
  std::vector<DimBounds> loopBounds_;  ///< tile-size independent, shared
  std::vector<i64> loopRange_;
  std::vector<std::vector<i64>> candidates_;
  std::map<std::vector<i64>, TileEvaluation> memo_;
  std::shared_ptr<const ParametricTilePlan> paramPlan_;
  ParametricTilePlan::SizeBinding binding_;  ///< paramPlan_ bound at our size
  std::shared_ptr<const ParametricTilePlan> familyCandidate_;
  ParametricState state_ = ParametricState::Pending;
  std::string fallbackReason_;
  bool familyAdopted_ = false;
  bool prepared_ = false;
  double planBuildMillis_ = 0;
  double evalMillis_ = 0;
  int evaluations_ = 0;
  int memoHits_ = 0;
  int analysesRun_ = 0;
  int prunedBoxes_ = 0;
};

/// Fast solver (geometric seeding + projected coordinate descent) over a
/// caller-provided evaluator, sharing its memo with other solvers.
TileSearchResult searchTileSizes(TileEvaluator& evaluator);

/// Grid oracle over a caller-provided evaluator.
TileSearchResult exhaustiveTileSearch(TileEvaluator& evaluator);

}  // namespace emm
