// Tile-size search (paper Section 4.3).
//
// Finds sub-tile sizes (t_1,...,t_m) minimizing the data-movement cost
//   C = sum_k N_k * ((P*S) + V_k*L/P)
// where, per local buffer k, N_k is the number of copy-code executions
// (trip counts of the tiling loops above its hoisted placement), V_k the
// per-execution volume bound (Section 3.1.3), P the number of inner-level
// processes, S the per-process synchronization cost, and L the per-element
// transfer cost. Constraints:
//   0 < t_i <= N_i,  sum_k M_k(t) <= Mup,  prod t_i >= P.
//
// The evaluator instantiates the Section-3 analysis for each candidate, so
// footprints, hoist levels and volumes are the real ones the code generator
// would produce — not closed-form approximations. Candidate evaluation is
// memoized by the TileEvaluator (tile_evaluator.h), which both solvers
// share: cheap constraints are checked before any analysis runs, and a
// candidate probed twice — across descent sweeps, seeds, or solvers — is
// analyzed once.
//
// Two solvers are provided:
//  - searchTileSizes: geometric seeding + projected coordinate descent with
//    integral rounding (the role SQP-plus-rounding plays in the paper),
//  - exhaustiveTileSearch: grid oracle used by tests and the ablation bench
//    to certify the fast solver's answer.
#pragma once

#include <functional>
#include <vector>

#include "tiling/multilevel.h"

namespace emm {

struct TileSearchOptions {
  i64 memLimitElems = 4096;  ///< Mup, in elements
  i64 innerProcs = 32;       ///< P (>= Plow, the warp size on the GPU)
  double syncCost = 32;      ///< S, cycles per process per occurrence
  double transferCost = 4;   ///< L, cycles per element
  /// Concrete binding of the block's parameters (problem sizes).
  IntVec paramValues;
  /// Candidate tile sizes per loop for seeding/exhaustive search. When empty
  /// a geometric ladder {1,2,4,...} clipped to the loop range is used.
  std::vector<std::vector<i64>> candidates;
  bool hoistCopies = true;
  /// Run the Section-3 analysis once with tile sizes symbolic and evaluate
  /// candidates as pure expression evaluation (see parametric_plan.h). The
  /// evaluator validates the symbolic plan against concrete probe
  /// evaluations and falls back to the per-candidate path — with a
  /// diagnostic reason — when the block is not parametrically analyzable.
  bool parametric = true;
};

/// One buffer's Section-4.3 data-movement cost term,
///   occ * (P*S + V*L/P)  (0 when nothing moves).
/// Shared by the concrete and the parametric evaluator: probe validation
/// compares costs EXACTLY, so both paths must combine these quantities
/// with literally the same floating-point expression.
inline double bufferCostTerm(i64 occurrences, i64 volume, double P, double syncCost,
                             double transferCost) {
  return volume > 0 ? static_cast<double>(occurrences) *
                          (P * syncCost + static_cast<double>(volume) * transferCost / P)
                    : 0.0;
}

struct TileEvaluation {
  bool feasible = false;
  std::string reason;
  double cost = 0;
  i64 footprint = 0;
  /// Per-buffer terms for diagnostics: (occurrences, volume in, volume out).
  struct BufferTerm {
    std::string name;
    i64 occurrences = 0;
    i64 volumeIn = 0;
    i64 volumeOut = 0;
    int hoistLevel = 0;
  };
  std::vector<BufferTerm> terms;
};

struct TileSearchResult {
  std::vector<i64> subTile;
  TileEvaluation eval;
  int evaluations = 0;  ///< candidates actually analyzed (memo misses)
  int memoHits = 0;     ///< probes answered from the shared evaluation memo
  /// True when candidates were evaluated through a ParametricTilePlan
  /// (Section-3 analysis run once, symbolically).
  bool parametric = false;
  /// True when that plan was adopted from the driver's family tier (built
  /// once for the kernel family, bound at this compile's problem size and
  /// revalidated against concrete probes) instead of being rebuilt.
  bool familyAdopted = false;
  /// Candidate ladder entries discarded by footprint-interval box pruning
  /// before the solver ran (each entry is a whole box of the grid).
  int prunedBoxes = 0;
  /// Why the concrete fallback was used (empty when parametric).
  std::string parametricReason;
  /// Symbolic plan construction time, including probe validation, in ms.
  double planBuildMillis = 0;
  /// Cumulative candidate evaluation time (memo misses only), in ms.
  double evalMillis = 0;
};

/// Evaluates the Section-4.3 objective for one concrete tile-size vector.
TileEvaluation evaluateTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const std::vector<i64>& subTile,
                                 const TileSearchOptions& options, const SmemOptions& smemBase);

/// Fast solver: geometric seeding + projected coordinate descent.
TileSearchResult searchTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const TileSearchOptions& options, const SmemOptions& smemBase);

/// Oracle: evaluates the full candidate grid.
TileSearchResult exhaustiveTileSearch(const ProgramBlock& block, const ParallelismPlan& plan,
                                      const TileSearchOptions& options,
                                      const SmemOptions& smemBase);

}  // namespace emm
