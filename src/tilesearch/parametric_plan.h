// ParametricTilePlan: the Section-3 cost model built once, symbolically.
//
// The concrete tile-size search instantiates the full Section-3 analysis
// (data-space images, overlap partitioning, buffer geometry, volume bounds)
// per candidate vector. This class runs that analysis a single time with the
// tile sizes T1..Tk as symbolic parameters (analyzeTileSymbolic) and
// compiles everything the Section-4.3 objective needs into closed-form
// pieces over T — and, since PR 5, over the PROBLEM SIZES as well: the
// original block parameters (N, W, ...) and the tile origins stay symbolic
// in every compiled formula, so one plan serves the whole kernel FAMILY and
// a new problem size costs one bindSizes() call instead of a rebuild.
//
// Formula symbols are indexed [sizes (np), origins (depth), tiles (depth)]:
//
//   - per reference: the per-dimension [lo, hi] bounding-box bound formulas
//     of its data space (SymExpr trees over sizes, origins and T), once with
//     the analysis context applied (buffer geometry) and once raw (volume
//     bounds), plus the per-loop origin-dependence bits that drive
//     Section-4.2 hoisting,
//   - per reference pair: the OVERLAP PREDICATE — the region of the full
//     (sizes, origins, tiles) parameter space in which the two data spaces
//     intersect, obtained by projecting their symbolic intersection onto
//     those parameters. Overlap grows monotonically with tile sizes, so the
//     symbolic components (overlap for SOME T >= 1) are the coarsest
//     structure; the concrete structure at a given binding is the
//     refinement induced by the predicates that hold, recovered at
//     evaluation time with a tiny union-find. This is what makes stencil
//     kernels exact: at T_l = 1 a shifted window pair (A[i-1], A[i+1])
//     separates into distinct partitions, and the plan reproduces the split
//     without re-running any polyhedral analysis.
//
// evaluate() is then pure expression evaluation — SymExpr trees plus
// boolean predicate rows — and reproduces the concrete evaluator's
// TileEvaluation field by field (including bit-identical cost doubles: the
// floating-point combination is the same expression in the same order, and
// partition naming follows the same discovery order).
//
// Construction throws ApiError when the block cannot be analyzed
// parametrically (e.g. a reference without order-of-magnitude reuse makes
// the Algorithm-1 benefit verdict tile-dependent); the TileEvaluator
// catches this (and validates the plan against concrete probe evaluations)
// and falls back to the per-candidate path with a diagnostic.
//
// Instances are immutable after construction and safe to share across
// threads and compiles: the driver's family tier (driver/family_plan.h)
// stores one per kernel family and every per-size compile evaluates through
// its own SizeBinding.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sym/sym_expr.h"
#include "tilesearch/tilesearch.h"
#include "tiling/multilevel.h"

namespace emm {

class ByteReader;
class ByteWriter;

class ParametricTilePlan {
public:
  /// Everything evaluation derives from one concrete problem size: the
  /// binding of the leading formula symbols ([sizes, origins]) and the
  /// per-loop iteration ranges. Computing one is a handful of DivExpr
  /// evaluations — the "cheap bind" step of family reuse.
  struct SizeBinding {
    IntVec ext;                  ///< [sizes, origins(sizes)] symbol binding
    std::vector<i64> loopRange;  ///< iteration range per common loop
  };

  /// Runs the symbolic Section-3 analysis and compiles the cost-model
  /// formulas. `loopRange` holds the shared per-loop iteration ranges the
  /// evaluator already computed at options.paramValues (the default
  /// binding); `tileSample` (one size per loop) seeds the sample binding
  /// exactly like concrete sizes would. Throws ApiError when the block is
  /// not parametrically analyzable.
  ParametricTilePlan(const ProgramBlock& block, const ParallelismPlan& plan,
                     const TileSearchOptions& options, const SmemOptions& smemBase,
                     const std::vector<i64>& loopRange, const std::vector<i64>& tileSample);

  /// Binds a concrete problem size: evaluates the tile origins (pinned at
  /// the loop lower bounds, exactly as the concrete evaluator does) and the
  /// per-loop ranges. Throws ApiError on arity mismatch. The binding is a
  /// plain value; one plan may serve many bindings concurrently.
  SizeBinding bindSizes(const IntVec& sizes) const;

  /// The binding of the problem size the plan was constructed at.
  const SizeBinding& defaultBinding() const { return defaultBinding_; }

  /// Pure expression evaluation of one candidate at one size binding. The
  /// caller (TileEvaluator) has already applied the cheap range/volume
  /// constraints; this evaluates footprint feasibility and the Section-4.3
  /// objective.
  TileEvaluation evaluate(const SizeBinding& binding, const std::vector<i64>& subTile) const;
  /// Evaluation at the construction-time size binding.
  TileEvaluation evaluate(const std::vector<i64>& subTile) const {
    return evaluate(defaultBinding_, subTile);
  }

  /// Instantiates the parametric buffer geometry at concrete tile sizes:
  /// the hints let smem::planBufferGeometry adopt the precomputed bounds
  /// (after a cheap validity check) instead of re-deriving them. Hints are
  /// keyed on exact reference sets, so at tile sizes where the partition
  /// structure refines past the symbolic one they simply do not match and
  /// geometry is derived as usual. Hint expressions keep the problem sizes
  /// and origins symbolic (by name), so they are valid for every family
  /// member.
  std::vector<GeometryHint> instantiateGeometry(const std::vector<i64>& subTile) const;

  /// Interval enclosure of the total scratchpad footprint over a tile-size
  /// box (one interval per loop) at a size binding, via SymExpr interval
  /// evaluation of the symbolic (coarsest-structure) footprint formulas.
  SymInterval footprintInterval(const SizeBinding& binding,
                                const std::vector<SymInterval>& tileBox) const;
  SymInterval footprintInterval(const std::vector<SymInterval>& tileBox) const {
    return footprintInterval(defaultBinding_, tileBox);
  }

  /// True when every reference pair of every symbolic component overlaps at
  /// `tiles` under `binding` — the partition structure is the coarsest one,
  /// and (since overlap grows with tile sizes) stays coarsest for every
  /// larger tile vector. When this holds at the minimum corner of a tile
  /// box, footprintInterval() over that box encloses the TRUE footprint of
  /// every candidate in it, which is what makes box pruning sound.
  bool coarsestStructureAt(const SizeBinding& binding, const std::vector<i64>& tiles) const;

  /// Number of tiled loops (= tile symbols T1..Tk the plan is over).
  int depth() const { return depth_; }
  /// Number of original block parameters (problem-size symbols).
  int sizeParams() const { return np_; }
  /// The underlying symbolic analysis (tile block, partitions, ...).
  const TileAnalysis& analysis() const { return analysis_; }

private:
  /// Per-dimension [lo, hi] bound formulas of one polyhedron's box.
  using Box = std::vector<std::pair<SymPtr, SymPtr>>;

  /// Overlap predicate of one reference pair over the full parameter space.
  struct PairPredicate {
    bool always = false;  ///< overlap for every binding and T >= 1
    bool never = false;   ///< empty intersection everywhere
    Polyhedron cond;      ///< otherwise: dim = np + 2*depth vars, no params
  };

  struct RefFormula {
    std::pair<int, int> key;  ///< (stmt, access)
    bool isWrite = false;
    /// Rank-based order-of-magnitude reuse (Algorithm 1's first test); per
    /// reference and independent of every symbol, so it is captured at
    /// construction. A group with any such member is beneficial outright.
    bool orderReuse = false;
    Box ctxBox;  ///< bounds under the analysis context (buffer geometry)
    Box rawBox;  ///< raw bounds (Section-3.1.3 volume estimation)
    std::vector<bool> usesOrigin;  ///< per loop: Section-4.2 dependence bits
  };

  /// One symbolic (coarsest) overlap component of one array.
  struct ComponentFormula {
    std::vector<RefFormula> refs;
    /// Predicates for ref pairs (i, j), i < j, indexed i * nrefs + j.
    std::vector<PairPredicate> pairs;
    int hoistLevel = 0;  ///< of the merged structure (validated vs analysis_)
    /// Per local ref: its per-array discovery index (see ArrayFormula).
    std::vector<int> globalIdx;
  };

  struct ArrayFormula {
    int arrayId = -1;
    std::string arrayName;
    std::vector<ComponentFormula> comps;  ///< ordered by lowest reference
    int numRefs = 0;
    /// Per per-array reference index (ascending (stmt, access) discovery
    /// order): its (component, local index) location. Refinement groups
    /// are formed over these indices so partition discovery order — and
    /// with it buffer naming and the cost summation order — matches the
    /// concrete analysis even when symbolic components interleave by
    /// reference index.
    std::vector<std::pair<int, int>> refLoc;
  };

  /// Geometry record of one symbolic partition, for instantiateGeometry():
  /// the per-dimension buffer-bound candidate pools, derived once over the
  /// symbolic spaces and verified against every reference for ALL tile
  /// sizes. Expressions may mention the tile symbols, the origins and the
  /// problem sizes.
  struct GeometryRecord {
    int arrayId = -1;
    std::vector<std::pair<int, int>> refKeys;  ///< sorted (stmt, access)
    std::vector<std::vector<AffExpr>> lower;   ///< per dim, pool order
    std::vector<std::vector<AffExpr>> upper;
  };

  ParametricTilePlan() = default;  ///< deserialization only

  /// Rebuilds the symbol table (one SymExpr parameter per size/origin/tile)
  /// from analysis_; used by the constructor and the deserializer.
  void rebuildSymbols();

  SymPtr compileDiv(const DivExpr& e, bool ceil) const;
  Box compileBox(const Polyhedron& space) const;
  PairPredicate compilePredicate(const Polyhedron& a, const Polyhedron& b) const;
  bool pairOverlaps(const PairPredicate& p, const IntVec& fullBinding) const;
  AffExpr substituteTiles(const AffExpr& e, const std::vector<i64>& tiles) const;

  int depth_ = 0;
  int np_ = 0;  ///< original block parameters (problem sizes)
  TileSearchOptions options_;
  /// One SymExpr parameter per formula symbol: [sizes, origins, tiles].
  std::vector<SymPtr> symParams_;
  TileAnalysis analysis_;
  SizeBinding defaultBinding_;  ///< binding at options_.paramValues
  std::vector<ArrayFormula> arrays_;  ///< arrays with references, in order
  std::vector<GeometryRecord> geometry_;
  bool hoist_ = true;

  /// Algorithm-1 fallback verdict, compiled: groups without order-of-
  /// magnitude reuse are buffered only when the capped constant-reuse
  /// fraction exceeds the threshold. Construction rejects such references
  /// unless their data spaces are axis-aligned boxes, where the rawBox
  /// point count is exact and the verdict reduces to expression evaluation.
  double benefitDelta_ = 0.0;
  i64 volumeCap_ = 0;
  bool onlyBeneficial_ = false;

  friend void serializeParametricPlanBody(ByteWriter& w, const ParametricTilePlan& plan);
  friend ParametricTilePlan deserializeParametricPlanBody(ByteReader& r);
};

/// Plan-only re-run of the tile-size solver at one size binding: ladder
/// construction, the cheap range/volume constraints, footprint-interval box
/// pruning and the solver itself all run against the compiled formulas —
/// no program block, no concrete Section-3 analysis, no emission. When the
/// plan is Active at this size (probe validation would pass), the chosen
/// tile and its evaluation are identical to what the evaluator-backed
/// pipeline search produces, which is what lets the runtime binder certify
/// that a family record's tile choice is still THE argmin at a new size.
/// Throws ApiError on arity mismatches (binding or options.candidates).
TileSearchResult searchTileSizesWithPlan(const ParametricTilePlan& plan,
                                         const ParametricTilePlan::SizeBinding& binding,
                                         const TileSearchOptions& options,
                                         bool exhaustive = false);

}  // namespace emm
