// ParametricTilePlan: the Section-3 cost model built once, symbolically.
//
// The concrete tile-size search instantiates the full Section-3 analysis
// (data-space images, overlap partitioning, buffer geometry, volume bounds)
// per candidate vector. This class runs that analysis a single time with the
// tile sizes T1..Tk as symbolic parameters (analyzeTileSymbolic) and
// compiles everything the Section-4.3 objective needs into closed-form
// pieces over T:
//
//   - per reference: the per-dimension [lo, hi] bounding-box bound formulas
//     of its data space (SymExpr trees over T), once with the analysis
//     context applied (buffer geometry) and once raw (volume bounds), plus
//     the per-loop origin-dependence bits that drive Section-4.2 hoisting,
//   - per reference pair: the OVERLAP PREDICATE — the tile-size region in
//     which the two data spaces intersect, obtained by projecting their
//     symbolic intersection onto the tile parameters. Overlap grows
//     monotonically with tile sizes, so the symbolic components (overlap
//     for SOME T >= 1) are the coarsest structure; the concrete structure
//     at a given T is the refinement induced by the predicates that hold,
//     recovered at evaluation time with a tiny union-find. This is what
//     makes stencil kernels exact: at T_l = 1 a shifted window pair
//     (A[i-1], A[i+1]) separates into distinct partitions, and the plan
//     reproduces the split without re-running any polyhedral analysis.
//
// evaluate() is then pure expression evaluation — SymExpr trees plus
// boolean predicate rows — and reproduces the concrete evaluator's
// TileEvaluation field by field (including bit-identical cost doubles: the
// floating-point combination is the same expression in the same order, and
// partition naming follows the same discovery order).
//
// Construction throws ApiError when the block cannot be analyzed
// parametrically (e.g. a reference without order-of-magnitude reuse makes
// the Algorithm-1 benefit verdict tile-dependent); the TileEvaluator
// catches this (and validates the plan against concrete probe evaluations)
// and falls back to the per-candidate path with a diagnostic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sym/sym_expr.h"
#include "tilesearch/tilesearch.h"
#include "tiling/multilevel.h"

namespace emm {

class ParametricTilePlan {
public:
  /// Runs the symbolic Section-3 analysis and compiles the cost-model
  /// formulas. `loopRange` holds the shared per-loop iteration ranges the
  /// evaluator already computed; `tileSample` (one size per loop) seeds
  /// the sample binding exactly like concrete sizes would. Throws ApiError
  /// when the block is not parametrically analyzable.
  ParametricTilePlan(const ProgramBlock& block, const ParallelismPlan& plan,
                     const TileSearchOptions& options, const SmemOptions& smemBase,
                     const std::vector<i64>& loopRange, const std::vector<i64>& tileSample);

  /// Pure expression evaluation of one candidate. The caller (TileEvaluator)
  /// has already applied the cheap range/volume constraints; this evaluates
  /// footprint feasibility and the Section-4.3 objective.
  TileEvaluation evaluate(const std::vector<i64>& subTile) const;

  /// Instantiates the parametric buffer geometry at concrete tile sizes:
  /// the hints let smem::planBufferGeometry adopt the precomputed bounds
  /// (after a cheap validity check) instead of re-deriving them. Hints are
  /// keyed on exact reference sets, so at tile sizes where the partition
  /// structure refines past the symbolic one they simply do not match and
  /// geometry is derived as usual.
  std::vector<GeometryHint> instantiateGeometry(const std::vector<i64>& subTile) const;

  /// Interval enclosure of the total scratchpad footprint over a tile-size
  /// box (one interval per loop), via SymExpr interval evaluation of the
  /// symbolic (coarsest-structure) footprint formulas.
  SymInterval footprintInterval(const std::vector<SymInterval>& tileBox) const;

  /// Number of tiled loops (= tile symbols T1..Tk the plan is over).
  int depth() const { return depth_; }
  /// The underlying symbolic analysis (tile block, partitions, ...).
  const TileAnalysis& analysis() const { return analysis_; }

private:
  /// Per-dimension [lo, hi] bound formulas of one polyhedron's box.
  using Box = std::vector<std::pair<SymPtr, SymPtr>>;

  /// Overlap predicate of one reference pair over the tile parameters.
  struct PairPredicate {
    bool always = false;  ///< overlap for every T >= 1
    bool never = false;   ///< empty intersection for every T
    Polyhedron cond;      ///< otherwise: dim = depth vars (T), no params
  };

  struct RefFormula {
    std::pair<int, int> key;  ///< (stmt, access)
    bool isWrite = false;
    Box ctxBox;  ///< bounds under the analysis context (buffer geometry)
    Box rawBox;  ///< raw bounds (Section-3.1.3 volume estimation)
    std::vector<bool> usesOrigin;  ///< per loop: Section-4.2 dependence bits
  };

  /// One symbolic (coarsest) overlap component of one array.
  struct ComponentFormula {
    std::vector<RefFormula> refs;
    /// Predicates for ref pairs (i, j), i < j, indexed i * nrefs + j.
    std::vector<PairPredicate> pairs;
    int hoistLevel = 0;  ///< of the merged structure (validated vs analysis_)
    /// Per local ref: its per-array discovery index (see ArrayFormula).
    std::vector<int> globalIdx;
  };

  struct ArrayFormula {
    int arrayId = -1;
    std::string arrayName;
    std::vector<ComponentFormula> comps;  ///< ordered by lowest reference
    int numRefs = 0;
    /// Per per-array reference index (ascending (stmt, access) discovery
    /// order): its (component, local index) location. Refinement groups
    /// are formed over these indices so partition discovery order — and
    /// with it buffer naming and the cost summation order — matches the
    /// concrete analysis even when symbolic components interleave by
    /// reference index.
    std::vector<std::pair<int, int>> refLoc;
  };

  /// Geometry record of one symbolic partition, for instantiateGeometry():
  /// the per-dimension buffer-bound candidate pools, derived once over the
  /// symbolic spaces and verified against every reference for ALL tile
  /// sizes. Expressions may mention the tile symbols.
  struct GeometryRecord {
    int arrayId = -1;
    std::vector<std::pair<int, int>> refKeys;  ///< sorted (stmt, access)
    std::vector<std::vector<AffExpr>> lower;   ///< per dim, pool order
    std::vector<std::vector<AffExpr>> upper;
  };

  SymPtr compileDiv(const DivExpr& e, bool ceil) const;
  Box compileBox(const Polyhedron& space) const;
  PairPredicate compilePredicate(const Polyhedron& a, const Polyhedron& b) const;
  bool pairOverlaps(const PairPredicate& p, const std::vector<i64>& tiles) const;
  AffExpr substituteTiles(const AffExpr& e, const std::vector<i64>& tiles) const;

  int depth_ = 0;
  TileSearchOptions options_;
  std::vector<i64> loopRange_;
  std::vector<SymPtr> tileSyms_;  ///< one symbolic parameter per loop
  TileAnalysis analysis_;
  /// Concrete binding of the symbolic block's non-tile parameters:
  /// [original params, origins pinned at the loop lower bounds].
  IntVec fixedParams_;
  std::vector<ArrayFormula> arrays_;  ///< arrays with references, in order
  std::vector<GeometryRecord> geometry_;
  bool hoist_ = true;
};

}  // namespace emm
