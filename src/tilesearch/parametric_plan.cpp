#include "tilesearch/parametric_plan.h"

#include <algorithm>
#include <numeric>

namespace emm {

namespace {

/// A constraint row drives Section-4.2 hoisting only when it couples the
/// data space to the origin — pure parameter residues of the projection do
/// not (mirrors the rule in tiling/multilevel.cpp).
bool rowUsesData(const IntVec& row, int dim) {
  for (int j = 0; j < dim; ++j)
    if (row[j] != 0) return true;
  return false;
}

/// Iteration range (trip count at tile 1) of loop `l` from parameter-only
/// bounds; mirrors the TileEvaluator's computation so bindings agree.
i64 strippedRange(const DimBounds& b, int l, const IntVec& params) {
  DimBounds s;
  for (const DivExpr& e : b.lower) s.lower.push_back(dropLeadingCoeffs(e, l));
  for (const DivExpr& e : b.upper) s.upper.push_back(dropLeadingCoeffs(e, l));
  if (s.lower.empty() || s.upper.empty()) return 0;
  return std::max<i64>(0, s.evalUpper(params) - s.evalLower(params) + 1);
}

/// True when every constraint involves at most one set variable: the
/// integer hull is then the product of the per-dimension ranges, so the
/// bounding-box point count IS the exact point count countPoints measures.
bool isAxisAlignedBox(const Polyhedron& p) {
  auto rowOk = [&](const IntVec& row) {
    int nonzero = 0;
    for (int j = 0; j < p.dim(); ++j)
      if (row[j] != 0) ++nonzero;
    return nonzero <= 1;
  };
  for (int r = 0; r < p.equalities().rows(); ++r)
    if (!rowOk(p.equalities().row(r))) return false;
  for (int r = 0; r < p.inequalities().rows(); ++r)
    if (!rowOk(p.inequalities().row(r))) return false;
  return true;
}

}  // namespace

ParametricTilePlan::ParametricTilePlan(const ProgramBlock& block, const ParallelismPlan& plan,
                                       const TileSearchOptions& options,
                                       const SmemOptions& smemBase,
                                       const std::vector<i64>& loopRange,
                                       const std::vector<i64>& tileSample)
    : depth_(static_cast<int>(loopRange.size())),
      np_(block.nparam()),
      options_(options),
      hoist_(options.hoistCopies) {
  EMM_REQUIRE(depth_ > 0, "parametric tile plan needs at least one common loop");
  EMM_REQUIRE(static_cast<int>(options.paramValues.size()) == block.nparam(),
              "paramValues arity mismatch");
  analysis_ = analyzeTileSymbolic(block, plan, tileSample, smemBase, options.hoistCopies);
  benefitDelta_ = smemBase.delta;
  volumeCap_ = smemBase.volumeCap;
  onlyBeneficial_ = smemBase.onlyBeneficial;

  // The Algorithm-1 benefit verdict: references with rank-based
  // order-of-magnitude reuse pass outright (per reference, independent of
  // every symbol). For the fallback constant-reuse test the verdict DOES
  // depend on the tile and problem sizes, so evaluate() recomputes it per
  // binding — which is exact only when the sampled point counts reduce to
  // bounding-box products, i.e. when every such data space is an
  // axis-aligned box. (With unconditional buffers — stageEverything — the
  // verdict is irrelevant.)
  if (onlyBeneficial_) {
    for (const PartitionPlan& p : analysis_.plan.partitions)
      for (const RefSummary& r : p.refs)
        EMM_REQUIRE(r.hasOrderReuse() || isAxisAlignedBox(r.dataSpace),
                    "non-rectangular reference of array " +
                        analysis_.tileBlock->arrays[p.arrayId].name +
                        " lacks order-of-magnitude reuse; the benefit verdict is not "
                        "compilable to closed form");
  }
  // Partitions judged non-beneficial at the sample carry no buffer; every
  // other partition must be buffered for the footprint formulas to stand.
  for (const PartitionPlan& p : analysis_.plan.partitions)
    EMM_REQUIRE(p.hasBuffer || (onlyBeneficial_ && !p.beneficial),
                "parametric plan requires every allocated partition buffered");

  rebuildSymbols();

  // Default binding: the problem size the plan was built at. Cross-checked
  // against the evaluator's shared loop ranges — the two derivations
  // (rectangularLoopBounds vs the analysis' loopBounds) must agree.
  defaultBinding_ = bindSizes(options.paramValues);
  EMM_CHECK(defaultBinding_.loopRange == loopRange,
            "parametric plan loop ranges disagree with the evaluator's");

  // ---- Compile per-array, per-component reference formulas. ----
  const std::optional<Polyhedron>& ctx = analysis_.plan.options.paramContext;
  for (size_t p = 0; p < analysis_.plan.partitions.size(); ++p) {
    const PartitionPlan& part = analysis_.plan.partitions[p];
    if (arrays_.empty() || arrays_.back().arrayId != part.arrayId) {
      ArrayFormula af;
      af.arrayId = part.arrayId;
      af.arrayName = analysis_.tileBlock->arrays[part.arrayId].name;
      arrays_.push_back(std::move(af));
    }
    ComponentFormula comp;
    for (const RefSummary& r : part.refs) {
      RefFormula rf;
      rf.key = {r.stmt, r.access};
      rf.isWrite = r.isWrite;
      rf.orderReuse = r.hasOrderReuse();
      rf.ctxBox = compileBox(spaceWithContext(r.dataSpace, ctx));
      rf.rawBox = compileBox(r.dataSpace);
      rf.usesOrigin.assign(depth_, false);
      const int dim = r.dataSpace.dim();
      for (int l = 0; l < depth_; ++l) {
        const int col = dim + np_ + l;
        for (int rr = 0; rr < r.dataSpace.equalities().rows() && !rf.usesOrigin[l]; ++rr) {
          IntVec row = r.dataSpace.equalities().row(rr);
          if (row[col] != 0 && rowUsesData(row, dim)) rf.usesOrigin[l] = true;
        }
        for (int rr = 0; rr < r.dataSpace.inequalities().rows() && !rf.usesOrigin[l]; ++rr) {
          IntVec row = r.dataSpace.inequalities().row(rr);
          if (row[col] != 0 && rowUsesData(row, dim)) rf.usesOrigin[l] = true;
        }
      }
      comp.refs.push_back(std::move(rf));
    }
    const int n = static_cast<int>(comp.refs.size());
    comp.pairs.resize(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        comp.pairs[static_cast<size_t>(i) * n + j] =
            compilePredicate(part.refs[i].dataSpace, part.refs[j].dataSpace);
    comp.hoistLevel = analysis_.hoistLevel[p];
    if (hoist_ && part.hasBuffer) {
      // The per-reference origin bits must reproduce the partition's hoist
      // level, or refined partitions could hoist differently than the
      // concrete analysis would; bail to the fallback when they cannot.
      // (A partition unbuffered at the sample has no concrete level to
      // check against; the evaluator's probe validation covers it.)
      int level = 0;
      for (int l = 0; l < depth_; ++l)
        for (const RefFormula& rf : comp.refs)
          if (rf.usesOrigin[l]) level = l + 1;
      EMM_REQUIRE(level == comp.hoistLevel,
                  "hoist level of array " + arrays_.back().arrayName +
                      " is not derivable per reference");
    }
    arrays_.back().comps.push_back(std::move(comp));

    // Geometry candidate pools: the same per-reference derivation the
    // concrete planner performs, run once over the symbolic spaces; only
    // candidates valid against every reference for ALL tile sizes survive.
    GeometryRecord g;
    g.arrayId = part.arrayId;
    for (const RefSummary& r : part.refs) g.refKeys.emplace_back(r.stmt, r.access);
    std::sort(g.refKeys.begin(), g.refKeys.end());
    const std::vector<std::string>& extNames = analysis_.tileBlock->paramNames;
    const int ndim = analysis_.tileBlock->arrays[part.arrayId].ndim();
    g.lower.resize(ndim);
    g.upper.resize(ndim);
    auto push = [](std::vector<AffExpr>& list, const AffExpr& e) {
      for (const AffExpr& x : list)
        if (x.str() == e.str()) return;
      list.push_back(e);
    };
    for (int d = 0; d < ndim; ++d) {
      std::vector<AffExpr> lowers, uppers;
      for (const RefSummary& r : part.refs) {
        Polyhedron ctxSpace = spaceWithContext(r.dataSpace, ctx);
        DimBounds b = ctxSpace.paramBounds(d);
        for (const DivExpr& e : b.lower)
          if (auto a = divToAffine(e, extNames)) push(lowers, *a);
        for (const DivExpr& e : b.upper)
          if (auto a = divToAffine(e, extNames)) push(uppers, *a);
      }
      auto validForAll = [&](const AffExpr& e, bool lower) {
        for (const RefSummary& r : part.refs)
          if (!boundIsValidForSpace(r.dataSpace, ctx, d, e, extNames, lower)) return false;
        return true;
      };
      for (const AffExpr& e : lowers)
        if (validForAll(e, true)) g.lower[d].push_back(e);
      for (const AffExpr& e : uppers)
        if (validForAll(e, false)) g.upper[d].push_back(e);
    }
    geometry_.push_back(std::move(g));
  }

  // Per-array reference indexing: analyzeBlock discovers an array's
  // references in ascending (stmt, access) order, and partition discovery
  // order at any tile size follows the lowest such index. Symbolic
  // components can interleave on it, so refinement groups must be formed
  // over these indices, not component by component.
  for (ArrayFormula& af : arrays_) {
    std::vector<std::pair<std::pair<int, int>, std::pair<int, int>>> keyed;
    for (size_t ci = 0; ci < af.comps.size(); ++ci) {
      af.comps[ci].globalIdx.resize(af.comps[ci].refs.size());
      for (size_t li = 0; li < af.comps[ci].refs.size(); ++li)
        keyed.push_back({af.comps[ci].refs[li].key,
                         {static_cast<int>(ci), static_cast<int>(li)}});
    }
    std::sort(keyed.begin(), keyed.end());
    af.numRefs = static_cast<int>(keyed.size());
    af.refLoc.resize(keyed.size());
    for (size_t g = 0; g < keyed.size(); ++g) {
      af.refLoc[g] = keyed[g].second;
      af.comps[keyed[g].second.first].globalIdx[keyed[g].second.second] = static_cast<int>(g);
    }
  }
}

void ParametricTilePlan::rebuildSymbols() {
  EMM_REQUIRE(analysis_.tileBlock != nullptr, "parametric plan needs a tile block");
  const std::vector<std::string>& names = analysis_.tileBlock->paramNames;
  EMM_REQUIRE(static_cast<int>(names.size()) == np_ + 2 * depth_,
              "tile-block parameter arity mismatch");
  symParams_.clear();
  for (int j = 0; j < np_ + 2 * depth_; ++j) symParams_.push_back(SymExpr::param(j, names[j]));
}

ParametricTilePlan::SizeBinding ParametricTilePlan::bindSizes(const IntVec& sizes) const {
  EMM_REQUIRE(static_cast<int>(sizes.size()) == np_,
              "bindSizes: expected " + std::to_string(np_) + " problem sizes, got " +
                  std::to_string(sizes.size()));
  SizeBinding b;
  b.ext = sizes;
  b.loopRange.resize(depth_);
  for (int l = 0; l < depth_; ++l) {
    // Origins pinned at the loop lower bounds — exactly the binding the
    // concrete evaluator uses.
    b.ext.push_back(evalStrippedLower(analysis_.loopBounds[l], l, sizes));
    b.loopRange[l] = strippedRange(analysis_.loopBounds[l], l, sizes);
  }
  return b;
}

SymPtr ParametricTilePlan::compileDiv(const DivExpr& e, bool ceil) const {
  const size_t nsym = static_cast<size_t>(np_) + 2 * static_cast<size_t>(depth_);
  EMM_CHECK(e.coeffs.size() == nsym + 1, "parametric bound arity mismatch");
  std::vector<std::pair<i64, SymPtr>> terms;
  for (size_t j = 0; j < nsym; ++j) terms.emplace_back(e.coeffs[j], symParams_[j]);
  SymPtr num = SymExpr::affine(e.coeffs.back(), terms);
  SymPtr den = SymExpr::constant(e.den);
  return ceil ? SymExpr::ceilDiv(std::move(num), std::move(den))
              : SymExpr::floorDiv(std::move(num), std::move(den));
}

ParametricTilePlan::Box ParametricTilePlan::compileBox(const Polyhedron& space) const {
  Box box;
  for (int d = 0; d < space.dim(); ++d) {
    DimBounds b = space.paramBounds(d);
    EMM_REQUIRE(!b.lower.empty() && !b.upper.empty(),
                "unbounded data-space dimension in parametric analysis");
    SymPtr lo = compileDiv(b.lower[0], /*ceil=*/true);
    for (size_t q = 1; q < b.lower.size(); ++q)
      lo = SymExpr::max(std::move(lo), compileDiv(b.lower[q], true));
    SymPtr hi = compileDiv(b.upper[0], /*ceil=*/false);
    for (size_t q = 1; q < b.upper.size(); ++q)
      hi = SymExpr::min(std::move(hi), compileDiv(b.upper[q], false));
    box.emplace_back(std::move(lo), std::move(hi));
  }
  return box;
}

ParametricTilePlan::PairPredicate ParametricTilePlan::compilePredicate(const Polyhedron& a,
                                                                       const Polyhedron& b) const {
  // Project the symbolic intersection onto the full parameter space
  // (sizes, origins, tiles): the pair overlaps at a concrete binding
  // exactly when the binding satisfies the projection (Fourier-Motzkin is
  // exact for the rational feasibility test the concrete overlap check
  // performs). Only the data-space dimensions are eliminated; keeping the
  // problem sizes as predicate variables is what makes the predicate valid
  // for every member of the kernel family.
  Polyhedron inter = Polyhedron::intersect(a, b);
  Polyhedron q = inter.paramsAsVars();
  const int keep = np_ + 2 * depth_;
  const int drop = q.dim() - keep;
  EMM_CHECK(drop >= 0, "predicate projection shape mismatch");
  for (int i = 0; i < drop; ++i) q = q.eliminated(0);
  q.simplify();
  PairPredicate p;
  if (q.isEmpty()) {
    p.never = true;
    return p;
  }
  if (q.numConstraints() == 0) {
    p.always = true;
    return p;
  }
  p.cond = std::move(q);
  return p;
}

bool ParametricTilePlan::pairOverlaps(const PairPredicate& p, const IntVec& fullBinding) const {
  if (p.always) return true;
  if (p.never) return false;
  return p.cond.contains(fullBinding);
}

namespace {

/// Union-find over `n` members; mirrors poly/overlapComponents: components
/// are reported ordered by lowest member, members ascending.
struct Grouper {
  std::vector<int> parent;
  explicit Grouper(int n) : parent(n) { std::iota(parent.begin(), parent.end(), 0); }
  int find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(int a, int b) { parent[find(a)] = find(b); }
  std::vector<std::vector<int>> groups() {
    const int n = static_cast<int>(parent.size());
    std::vector<std::vector<int>> out;
    std::vector<int> groupOf(n, -1);
    for (int i = 0; i < n; ++i) {
      int root = find(i);
      if (groupOf[root] < 0) {
        groupOf[root] = static_cast<int>(out.size());
        out.emplace_back();
      }
      out[groupOf[root]].push_back(i);
    }
    return out;
  }
};

}  // namespace

TileEvaluation ParametricTilePlan::evaluate(const SizeBinding& binding,
                                            const std::vector<i64>& subTile) const {
  EMM_REQUIRE(static_cast<int>(subTile.size()) == depth_, "subTile arity mismatch");
  EMM_REQUIRE(static_cast<int>(binding.ext.size()) == np_ + depth_,
              "size binding arity mismatch");
  TileEvaluation ev;

  // Full symbol binding [sizes, origins, tiles] for formula evaluation.
  IntVec full = binding.ext;
  full.insert(full.end(), subTile.begin(), subTile.end());

  // ---- Recover the partition structure at these tile sizes. ----
  // Overlap grows with the tile, so the symbolic components are the
  // coarsest structure; evaluating the pairwise predicates refines them to
  // exactly what the concrete analysis would partition.
  struct LiveGroup {
    std::string name;
    const ComponentFormula* comp = nullptr;
    std::vector<int> members;  ///< local ref indices within comp
    int hoistLevel = 0;
    i64 footprint = 0;
  };
  std::vector<LiveGroup> groups;
  int partitionCounter = 0;
  i64 footprint = 0;
  for (const ArrayFormula& af : arrays_) {
    // Refine over the array's whole reference set (overlap edges only ever
    // connect refs of one symbolic component): groups then come out in the
    // lowest-discovery-index order the concrete partitioner uses, even
    // when symbolic components interleave by reference index.
    Grouper grouper(af.numRefs);
    for (const ComponentFormula& comp : af.comps) {
      const int n = static_cast<int>(comp.refs.size());
      for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
          if (pairOverlaps(comp.pairs[static_cast<size_t>(i) * n + j], full))
            grouper.unite(comp.globalIdx[i], comp.globalIdx[j]);
    }
    for (const std::vector<int>& globalMembers : grouper.groups()) {
      LiveGroup g;
      const ComponentFormula& comp = af.comps[af.refLoc[globalMembers[0]].first];
      g.comp = &comp;
      for (int m : globalMembers) g.members.push_back(af.refLoc[m].second);

      // Algorithm-1 benefit verdict, mirroring analyzeBlock: order-of-
      // magnitude reuse passes outright; otherwise the capped constant-
      // reuse fraction must clear the threshold. Box point counts are
      // exact here (construction rejected non-box spaces) and capped per
      // space exactly like countPoints.
      bool beneficial = std::any_of(g.members.begin(), g.members.end(),
                                    [&](int m) { return comp.refs[m].orderReuse; });
      if (!beneficial) {
        // min(true count, cap), exactly like countPoints. An empty
        // dimension zeroes the count even when earlier factors passed cap.
        auto cappedProduct = [&](const std::vector<i64>& lens) -> i64 {
          for (i64 len : lens)
            if (len <= 0) return 0;
          i128 n = 1;
          for (i64 len : lens) {
            n *= len;
            if (n >= volumeCap_) return volumeCap_;
          }
          return narrow(n);
        };
        auto boxCount = [&](const Box& box) -> i64 {
          std::vector<i64> lens;
          for (const auto& [lo, hi] : box)
            lens.push_back(addChecked(subChecked(hi->eval(full), lo->eval(full)), 1));
          return cappedProduct(lens);
        };
        auto interCount = [&](const Box& a, const Box& b) -> i64 {
          std::vector<i64> lens;
          for (size_t d = 0; d < a.size(); ++d) {
            i64 lo = std::max(a[d].first->eval(full), b[d].first->eval(full));
            i64 hi = std::min(a[d].second->eval(full), b[d].second->eval(full));
            lens.push_back(addChecked(subChecked(hi, lo), 1));
          }
          return cappedProduct(lens);
        };
        i64 total = 0;
        for (int m : g.members) total = addChecked(total, boxCount(comp.refs[m].rawBox));
        double frac = 0.0;
        if (total != 0) {
          i64 overlap = 0;
          for (size_t i = 0; i < g.members.size(); ++i)
            for (size_t j = i + 1; j < g.members.size(); ++j)
              overlap = addChecked(overlap, interCount(comp.refs[g.members[i]].rawBox,
                                                       comp.refs[g.members[j]].rawBox));
          frac = static_cast<double>(overlap) / static_cast<double>(total);
        }
        beneficial = frac > benefitDelta_;
      }
      if (!beneficial && onlyBeneficial_) {
        // Not allocated: no buffer, no cost term — but the concrete
        // partitioner still consumes a naming index for it.
        ++partitionCounter;
        continue;
      }

      g.name = "L" + af.arrayName + std::to_string(partitionCounter++);
      g.hoistLevel = depth_;
      if (hoist_) {
        g.hoistLevel = 0;
        for (int l = 0; l < depth_; ++l)
          for (int m : g.members)
            if (comp.refs[m].usesOrigin[l]) g.hoistLevel = l + 1;
      }
      // Buffer footprint: per-dimension bounding box of the group under
      // the analysis context (the optimum the geometry planner derives).
      i64 fp = 1;
      for (int d = 0; d < static_cast<int>(comp.refs[g.members[0]].ctxBox.size()); ++d) {
        i64 lo = INT64_MAX, hi = INT64_MIN;
        for (int m : g.members) {
          lo = std::min(lo, comp.refs[m].ctxBox[d].first->eval(full));
          hi = std::max(hi, comp.refs[m].ctxBox[d].second->eval(full));
        }
        fp = mulChecked(fp, std::max<i64>(0, addChecked(subChecked(hi, lo), 1)));
      }
      g.footprint = fp;
      footprint = addChecked(footprint, fp);
      groups.push_back(std::move(g));
    }
  }

  // Constraint (2): footprint <= Mup.
  ev.footprint = footprint;
  if (footprint > options_.memLimitElems) {
    ev.reason = "scratchpad footprint exceeds limit";
    return ev;
  }

  // ---- Section-4.3 objective, mirroring the concrete evaluator exactly
  // (field order and floating-point expression shapes). ----
  auto volumeOf = [&](const LiveGroup& g, bool writes) {
    // Section-3.1.3: group the (read resp. write) spaces into maximal
    // non-overlapping subsets, sum their bounding-box sizes.
    std::vector<int> side;
    for (int m : g.members)
      if (g.comp->refs[m].isWrite == writes) side.push_back(m);
    const int n = static_cast<int>(g.comp->refs.size());
    Grouper grouper(static_cast<int>(side.size()));
    for (size_t i = 0; i < side.size(); ++i)
      for (size_t j = i + 1; j < side.size(); ++j) {
        int a = std::min(side[i], side[j]), b = std::max(side[i], side[j]);
        if (pairOverlaps(g.comp->pairs[static_cast<size_t>(a) * n + b], full))
          grouper.unite(static_cast<int>(i), static_cast<int>(j));
      }
    i64 total = 0;
    for (const std::vector<int>& sub : grouper.groups()) {
      i64 vol = 1;
      const Box& first = g.comp->refs[side[sub[0]]].rawBox;
      for (int d = 0; d < static_cast<int>(first.size()); ++d) {
        i64 lo = INT64_MAX, hi = INT64_MIN;
        for (int m : sub) {
          const Box& box = g.comp->refs[side[m]].rawBox;
          lo = std::min(lo, box[d].first->eval(full));
          hi = std::max(hi, box[d].second->eval(full));
        }
        if (hi < lo) {
          vol = 0;
          break;
        }
        vol = mulChecked(vol, addChecked(subChecked(hi, lo), 1));
      }
      total = addChecked(total, vol);
    }
    return total;
  };

  double P = static_cast<double>(options_.innerProcs);
  double cost = 0;
  for (const LiveGroup& g : groups) {
    i64 occ = 1;
    for (int l = 0; l < g.hoistLevel; ++l)
      occ = mulChecked(occ, ceilDiv(binding.loopRange[l], subTile[l]));
    i64 vin = volumeOf(g, /*writes=*/false);
    i64 vout = volumeOf(g, /*writes=*/true);
    double termIn = bufferCostTerm(occ, vin, P, options_.syncCost, options_.transferCost);
    double termOut = bufferCostTerm(occ, vout, P, options_.syncCost, options_.transferCost);
    cost += termIn + termOut;
    ev.terms.push_back({g.name, occ, vin, vout, g.hoistLevel});
  }
  ev.feasible = true;
  ev.cost = cost;
  return ev;
}

AffExpr ParametricTilePlan::substituteTiles(const AffExpr& e, const std::vector<i64>& tiles) const {
  AffExpr out;
  out.den = e.den;
  i128 cnst = e.cnst;
  for (const auto& [name, coeff] : e.terms) {
    auto it = std::find(analysis_.tileParams.begin(), analysis_.tileParams.end(), name);
    if (it != analysis_.tileParams.end())
      cnst += static_cast<i128>(coeff) * tiles[it - analysis_.tileParams.begin()];
    else
      out.terms.emplace_back(name, coeff);
  }
  out.cnst = narrow(cnst);
  return out;
}

std::vector<GeometryHint> ParametricTilePlan::instantiateGeometry(
    const std::vector<i64>& subTile) const {
  EMM_REQUIRE(static_cast<int>(subTile.size()) == depth_, "subTile arity mismatch");
  std::vector<GeometryHint> hints;
  for (const GeometryRecord& g : geometry_) {
    GeometryHint h;
    h.arrayId = g.arrayId;
    h.refs = g.refKeys;
    h.lower.resize(g.lower.size());
    h.upper.resize(g.upper.size());
    for (size_t d = 0; d < g.lower.size(); ++d) {
      for (const AffExpr& e : g.lower[d]) h.lower[d].push_back(substituteTiles(e, subTile));
      for (const AffExpr& e : g.upper[d]) h.upper[d].push_back(substituteTiles(e, subTile));
    }
    hints.push_back(std::move(h));
  }
  return hints;
}

SymInterval ParametricTilePlan::footprintInterval(const SizeBinding& binding,
                                                  const std::vector<SymInterval>& tileBox) const {
  EMM_REQUIRE(static_cast<int>(tileBox.size()) == depth_, "tile box arity mismatch");
  EMM_REQUIRE(static_cast<int>(binding.ext.size()) == np_ + depth_,
              "size binding arity mismatch");
  // Sizes and origins are point intervals at the binding; the tile symbols
  // range over the box.
  std::vector<SymInterval> env;
  env.reserve(binding.ext.size() + tileBox.size());
  for (i64 v : binding.ext) env.push_back({v, v});
  env.insert(env.end(), tileBox.begin(), tileBox.end());
  // Enclosure of the symbolic (coarsest-structure) footprint: per
  // component, the interval of the per-dimension bounding-box product.
  SymInterval total{0, 0};
  for (const ArrayFormula& af : arrays_) {
    for (const ComponentFormula& comp : af.comps) {
      SymPtr fp = SymExpr::constant(1);
      for (int d = 0; d < static_cast<int>(comp.refs[0].ctxBox.size()); ++d) {
        SymPtr lo = comp.refs[0].ctxBox[d].first;
        SymPtr hi = comp.refs[0].ctxBox[d].second;
        for (size_t m = 1; m < comp.refs.size(); ++m) {
          lo = SymExpr::min(std::move(lo), comp.refs[m].ctxBox[d].first);
          hi = SymExpr::max(std::move(hi), comp.refs[m].ctxBox[d].second);
        }
        SymPtr extent = SymExpr::add(SymExpr::sub(std::move(hi), std::move(lo)),
                                     SymExpr::constant(1));
        fp = SymExpr::mul(std::move(fp), SymExpr::max(SymExpr::constant(0), std::move(extent)));
      }
      SymInterval fi = fp->evalInterval(env);
      total.lo = addChecked(total.lo, fi.lo);
      total.hi = addChecked(total.hi, fi.hi);
    }
  }
  return total;
}

bool ParametricTilePlan::coarsestStructureAt(const SizeBinding& binding,
                                             const std::vector<i64>& tiles) const {
  EMM_REQUIRE(static_cast<int>(tiles.size()) == depth_, "subTile arity mismatch");
  IntVec full = binding.ext;
  full.insert(full.end(), tiles.begin(), tiles.end());
  for (const ArrayFormula& af : arrays_) {
    for (const ComponentFormula& comp : af.comps) {
      const int n = static_cast<int>(comp.refs.size());
      for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
          if (!pairOverlaps(comp.pairs[static_cast<size_t>(i) * n + j], full)) return false;
    }
  }
  return true;
}

}  // namespace emm
