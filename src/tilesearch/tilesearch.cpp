#include "tilesearch/tilesearch.h"

#include <algorithm>
#include <map>

#include "tilesearch/tile_evaluator.h"

namespace emm {

TileEvaluation evaluateTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const std::vector<i64>& subTile,
                                 const TileSearchOptions& options, const SmemOptions& smemBase) {
  // One-shot evaluation: building a symbolic plan (one analysis + probe
  // validation) costs more than the single concrete analysis it would save.
  TileSearchOptions concrete = options;
  concrete.parametric = false;
  TileEvaluator evaluator(block, plan, concrete, smemBase);
  return evaluator.evaluate(subTile);
}

namespace {

/// Copies the evaluator's parametric/timing bookkeeping into a result.
void recordEvaluatorStats(const TileEvaluator& evaluator, TileSearchResult& result) {
  result.parametric = evaluator.parametricState() == TileEvaluator::ParametricState::Active;
  result.familyAdopted = evaluator.familyAdopted();
  result.prunedBoxes = evaluator.prunedBoxes();
  result.parametricReason = evaluator.fallbackReason();
  result.planBuildMillis = evaluator.planBuildMillis();
  result.evalMillis = evaluator.evalMillis();
}

/// Grid-oracle core over abstract candidate ladders. `evalTile` must return
/// a reference that stays valid for the whole solve (both callers memoize).
template <typename EvalFn>
void solveExhaustive(const std::vector<std::vector<i64>>& cands, EvalFn&& evalTile,
                     TileSearchResult& best) {
  const int depth = static_cast<int>(cands.size());
  std::vector<size_t> idx(depth, 0);
  while (true) {
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) tile[l] = cands[l][idx[l]];
    const TileEvaluation& ev = evalTile(tile);
    if (ev.feasible && (!best.eval.feasible || ev.cost < best.eval.cost)) {
      best.eval = ev;
      best.subTile = tile;
    }
    int l = depth - 1;
    while (l >= 0 && ++idx[l] == cands[l].size()) idx[l--] = 0;
    if (l < 0) break;
  }
}

/// Fast-solver core (geometric seeding + projected coordinate descent) over
/// abstract candidate ladders. Deterministic: with identical ladders and
/// identical per-candidate evaluations the chosen tile is identical, which
/// is what makes the plan-only re-run below a faithful argmin check.
template <typename EvalFn>
void solveDescent(const std::vector<std::vector<i64>>& cands, EvalFn&& evalTile,
                  TileSearchResult& result) {
  const int depth = static_cast<int>(cands.size());

  auto evalPos = [&](const std::vector<size_t>& p) -> const TileEvaluation& {
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) tile[l] = cands[l][p[l]];
    return evalTile(tile);
  };

  // Coordinate descent over ladder positions from one seed. This plays the
  // role of the paper's relaxed continuous solve + rounding; multi-start
  // covers the non-convexity introduced by the constraint boundaries.
  auto descend = [&](std::vector<size_t> pos) {
    TileEvaluation cur = evalPos(pos);
    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 64) {
      improved = false;
      for (int l = 0; l < depth; ++l) {
        for (int dir : {+1, -1}) {
          while (true) {
            if (dir > 0 && pos[l] + 1 >= cands[l].size()) break;
            if (dir < 0 && pos[l] == 0) break;
            std::vector<size_t> next = pos;
            next[l] += dir;
            const TileEvaluation& ev = evalPos(next);
            bool better = ev.feasible && (!cur.feasible || ev.cost < cur.cost);
            if (!better) break;
            pos = std::move(next);
            cur = ev;
            improved = true;
          }
        }
      }
    }
    return std::make_pair(pos, cur);
  };

  // Seeds: midpoint, all-smallest, all-largest, and per-loop extremes.
  std::vector<std::vector<size_t>> seeds;
  std::vector<size_t> mid(depth), lo(depth, 0), hi(depth);
  for (int l = 0; l < depth; ++l) {
    mid[l] = cands[l].size() / 2;
    hi[l] = cands[l].size() - 1;
  }
  seeds.push_back(mid);
  seeds.push_back(lo);
  seeds.push_back(hi);
  for (int l = 0; l < depth; ++l) {
    std::vector<size_t> s = mid;
    s[l] = hi[l];
    seeds.push_back(s);
    s[l] = 0;
    seeds.push_back(s);
  }

  std::vector<size_t> bestPos;
  for (const std::vector<size_t>& seed : seeds) {
    auto [pos, ev] = descend(seed);
    if (ev.feasible && (!result.eval.feasible || ev.cost < result.eval.cost)) {
      result.eval = ev;
      bestPos = pos;
    }
  }
  if (result.eval.feasible) {
    result.subTile.resize(depth);
    for (int l = 0; l < depth; ++l) result.subTile[l] = cands[l][bestPos[l]];
  }
}

}  // namespace

TileSearchResult exhaustiveTileSearch(TileEvaluator& evaluator) {
  evaluator.prepareSearch();  // plan adoption/build + candidate-box pruning
  const int evalsBefore = evaluator.evaluations();
  const int hitsBefore = evaluator.memoHits();

  TileSearchResult best;
  best.eval.feasible = false;
  solveExhaustive(evaluator.candidates(),
                  [&](const std::vector<i64>& tile) -> const TileEvaluation& {
                    return evaluator.evaluate(tile);
                  },
                  best);
  best.evaluations = evaluator.evaluations() - evalsBefore;
  best.memoHits = evaluator.memoHits() - hitsBefore;
  recordEvaluatorStats(evaluator, best);
  return best;
}

TileSearchResult searchTileSizes(TileEvaluator& evaluator) {
  evaluator.prepareSearch();  // plan adoption/build + candidate-box pruning
  const int evalsBefore = evaluator.evaluations();
  const int hitsBefore = evaluator.memoHits();

  TileSearchResult result;
  result.eval.feasible = false;
  // All probes go through the evaluator's value-keyed memo, so the same
  // candidate re-probed across descent sweeps, seeds, or a later solver run
  // (e.g. the exhaustive oracle certifying this answer) is analyzed once.
  solveDescent(evaluator.candidates(),
               [&](const std::vector<i64>& tile) -> const TileEvaluation& {
                 return evaluator.evaluate(tile);
               },
               result);
  result.evaluations = evaluator.evaluations() - evalsBefore;
  result.memoHits = evaluator.memoHits() - hitsBefore;
  recordEvaluatorStats(evaluator, result);
  return result;
}

TileSearchResult searchTileSizesWithPlan(const ParametricTilePlan& plan,
                                         const ParametricTilePlan::SizeBinding& binding,
                                         const TileSearchOptions& options, bool exhaustive) {
  const int depth = plan.depth();
  EMM_REQUIRE(static_cast<int>(binding.loopRange.size()) == depth,
              "size binding arity mismatch");

  // Candidate ladders, exactly as the TileEvaluator constructor builds them
  // at this problem size: the given ladders, or the geometric ladder
  // {1, 2, 4, ...} clipped to each loop's range.
  std::vector<std::vector<i64>> cands;
  if (options.candidates.empty()) {
    for (int l = 0; l < depth; ++l) {
      std::vector<i64> ladder;
      for (i64 t = 1; t < binding.loopRange[l]; t *= 2) ladder.push_back(t);
      ladder.push_back(std::max<i64>(binding.loopRange[l], 1));
      cands.push_back(std::move(ladder));
    }
  } else {
    EMM_REQUIRE(static_cast<int>(options.candidates.size()) == depth,
                "candidate arity mismatch");
    cands = options.candidates;
  }
  for (const std::vector<i64>& ladder : cands)
    EMM_REQUIRE(!ladder.empty(), "empty candidate ladder");

  // Footprint-interval box pruning, mirroring the evaluator (so the solver
  // sees the same ladders and walks the same descent paths). See
  // TileEvaluator::pruneCandidateBoxes for the soundness argument.
  int pruned = 0;
  bool sorted = true;
  for (const std::vector<i64>& ladder : cands)
    sorted = sorted && std::is_sorted(ladder.begin(), ladder.end());
  if (sorted) {
    for (int l = 0; l < depth; ++l) {
      std::vector<i64>& ladder = cands[l];
      size_t cut = ladder.size();
      for (size_t k = 1; k < ladder.size(); ++k) {
        std::vector<SymInterval> box(depth);
        std::vector<i64> minCorner(depth);
        for (int j = 0; j < depth; ++j) {
          const i64 blo = j == l ? ladder[k] : cands[j].front();
          const i64 bhi = j == l ? ladder.back() : cands[j].back();
          box[j] = {blo, bhi};
          minCorner[j] = blo;
        }
        if (!plan.coarsestStructureAt(binding, minCorner)) continue;
        if (plan.footprintInterval(binding, box).lo > options.memLimitElems) {
          cut = k;
          break;
        }
      }
      if (cut < ladder.size()) {
        pruned += static_cast<int>(ladder.size() - cut);
        ladder.resize(cut);
      }
    }
  }

  // Memoized plan-backed evaluation with the evaluator's cheap range and
  // minimum-volume constraints in front.
  std::map<std::vector<i64>, TileEvaluation> memo;
  int evaluations = 0;
  int memoHits = 0;
  auto evalTile = [&](const std::vector<i64>& tile) -> const TileEvaluation& {
    auto it = memo.find(tile);
    if (it != memo.end()) {
      ++memoHits;
      return it->second;
    }
    ++evaluations;
    TileEvaluation ev;
    for (int l = 0; l < depth && ev.reason.empty(); ++l)
      if (tile[l] < 1 || tile[l] > std::max<i64>(binding.loopRange[l], 1))
        ev.reason = "tile size out of loop range";
    if (ev.reason.empty()) {
      i64 tileVolume = 1;
      for (int l = 0; l < depth; ++l) tileVolume = mulChecked(tileVolume, tile[l]);
      if (tileVolume < options.innerProcs)
        ev.reason = "tile smaller than inner-level process count";
    }
    if (ev.reason.empty()) ev = plan.evaluate(binding, tile);
    return memo.emplace(tile, std::move(ev)).first->second;
  };

  TileSearchResult result;
  result.eval.feasible = false;
  if (exhaustive)
    solveExhaustive(cands, evalTile, result);
  else
    solveDescent(cands, evalTile, result);
  result.evaluations = evaluations;
  result.memoHits = memoHits;
  result.parametric = true;
  result.familyAdopted = true;
  result.prunedBoxes = pruned;
  return result;
}

TileSearchResult exhaustiveTileSearch(const ProgramBlock& block, const ParallelismPlan& plan,
                                      const TileSearchOptions& options,
                                      const SmemOptions& smemBase) {
  TileEvaluator evaluator(block, plan, options, smemBase);
  return exhaustiveTileSearch(evaluator);
}

TileSearchResult searchTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const TileSearchOptions& options, const SmemOptions& smemBase) {
  TileEvaluator evaluator(block, plan, options, smemBase);
  return searchTileSizes(evaluator);
}

}  // namespace emm
