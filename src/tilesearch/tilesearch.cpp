#include "tilesearch/tilesearch.h"

#include <algorithm>

#include "tilesearch/tile_evaluator.h"

namespace emm {

TileEvaluation evaluateTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const std::vector<i64>& subTile,
                                 const TileSearchOptions& options, const SmemOptions& smemBase) {
  // One-shot evaluation: building a symbolic plan (one analysis + probe
  // validation) costs more than the single concrete analysis it would save.
  TileSearchOptions concrete = options;
  concrete.parametric = false;
  TileEvaluator evaluator(block, plan, concrete, smemBase);
  return evaluator.evaluate(subTile);
}

namespace {

/// Copies the evaluator's parametric/timing bookkeeping into a result.
void recordEvaluatorStats(const TileEvaluator& evaluator, TileSearchResult& result) {
  result.parametric = evaluator.parametricState() == TileEvaluator::ParametricState::Active;
  result.familyAdopted = evaluator.familyAdopted();
  result.prunedBoxes = evaluator.prunedBoxes();
  result.parametricReason = evaluator.fallbackReason();
  result.planBuildMillis = evaluator.planBuildMillis();
  result.evalMillis = evaluator.evalMillis();
}

}  // namespace

TileSearchResult exhaustiveTileSearch(TileEvaluator& evaluator) {
  evaluator.prepareSearch();  // plan adoption/build + candidate-box pruning
  const std::vector<std::vector<i64>>& cands = evaluator.candidates();
  const int depth = evaluator.depth();
  const int evalsBefore = evaluator.evaluations();
  const int hitsBefore = evaluator.memoHits();

  TileSearchResult best;
  best.eval.feasible = false;
  std::vector<size_t> idx(depth, 0);
  while (true) {
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) tile[l] = cands[l][idx[l]];
    const TileEvaluation& ev = evaluator.evaluate(tile);
    if (ev.feasible && (!best.eval.feasible || ev.cost < best.eval.cost)) {
      best.eval = ev;
      best.subTile = tile;
    }
    int l = depth - 1;
    while (l >= 0 && ++idx[l] == cands[l].size()) idx[l--] = 0;
    if (l < 0) break;
  }
  best.evaluations = evaluator.evaluations() - evalsBefore;
  best.memoHits = evaluator.memoHits() - hitsBefore;
  recordEvaluatorStats(evaluator, best);
  return best;
}

TileSearchResult searchTileSizes(TileEvaluator& evaluator) {
  evaluator.prepareSearch();  // plan adoption/build + candidate-box pruning
  const std::vector<std::vector<i64>>& cands = evaluator.candidates();
  const int depth = evaluator.depth();
  const int evalsBefore = evaluator.evaluations();
  const int hitsBefore = evaluator.memoHits();

  TileSearchResult result;
  result.eval.feasible = false;

  // All probes go through the evaluator's value-keyed memo, so the same
  // candidate re-probed across descent sweeps, seeds, or a later solver run
  // (e.g. the exhaustive oracle certifying this answer) is analyzed once.
  auto evalPos = [&](const std::vector<size_t>& p) -> const TileEvaluation& {
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) tile[l] = cands[l][p[l]];
    return evaluator.evaluate(tile);
  };

  // Coordinate descent over ladder positions from one seed. This plays the
  // role of the paper's relaxed continuous solve + rounding; multi-start
  // covers the non-convexity introduced by the constraint boundaries.
  auto descend = [&](std::vector<size_t> pos) {
    TileEvaluation cur = evalPos(pos);
    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 64) {
      improved = false;
      for (int l = 0; l < depth; ++l) {
        for (int dir : {+1, -1}) {
          while (true) {
            if (dir > 0 && pos[l] + 1 >= cands[l].size()) break;
            if (dir < 0 && pos[l] == 0) break;
            std::vector<size_t> next = pos;
            next[l] += dir;
            const TileEvaluation& ev = evalPos(next);
            bool better = ev.feasible && (!cur.feasible || ev.cost < cur.cost);
            if (!better) break;
            pos = std::move(next);
            cur = ev;
            improved = true;
          }
        }
      }
    }
    return std::make_pair(pos, cur);
  };

  // Seeds: midpoint, all-smallest, all-largest, and per-loop extremes.
  std::vector<std::vector<size_t>> seeds;
  std::vector<size_t> mid(depth), lo(depth, 0), hi(depth);
  for (int l = 0; l < depth; ++l) {
    mid[l] = cands[l].size() / 2;
    hi[l] = cands[l].size() - 1;
  }
  seeds.push_back(mid);
  seeds.push_back(lo);
  seeds.push_back(hi);
  for (int l = 0; l < depth; ++l) {
    std::vector<size_t> s = mid;
    s[l] = hi[l];
    seeds.push_back(s);
    s[l] = 0;
    seeds.push_back(s);
  }

  std::vector<size_t> bestPos;
  for (const std::vector<size_t>& seed : seeds) {
    auto [pos, ev] = descend(seed);
    if (ev.feasible && (!result.eval.feasible || ev.cost < result.eval.cost)) {
      result.eval = ev;
      bestPos = pos;
    }
  }
  if (result.eval.feasible) {
    result.subTile.resize(depth);
    for (int l = 0; l < depth; ++l) result.subTile[l] = cands[l][bestPos[l]];
  }
  result.evaluations = evaluator.evaluations() - evalsBefore;
  result.memoHits = evaluator.memoHits() - hitsBefore;
  recordEvaluatorStats(evaluator, result);
  return result;
}

TileSearchResult exhaustiveTileSearch(const ProgramBlock& block, const ParallelismPlan& plan,
                                      const TileSearchOptions& options,
                                      const SmemOptions& smemBase) {
  TileEvaluator evaluator(block, plan, options, smemBase);
  return exhaustiveTileSearch(evaluator);
}

TileSearchResult searchTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const TileSearchOptions& options, const SmemOptions& smemBase) {
  TileEvaluator evaluator(block, plan, options, smemBase);
  return searchTileSizes(evaluator);
}

}  // namespace emm
