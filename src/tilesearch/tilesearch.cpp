#include "tilesearch/tilesearch.h"

#include <algorithm>
#include <map>

namespace emm {

namespace {

/// Drops the leading `l` iterator coefficient slots (all zero for the
/// rectangular bounds analyzeTile certifies) so bounds evaluate against the
/// parameter vector alone.
DimBounds stripLoopBounds(const DimBounds& b, int l) {
  DimBounds out;
  for (const DivExpr& e : b.lower) {
    DivExpr s;
    s.den = e.den;
    s.coeffs.assign(e.coeffs.begin() + l, e.coeffs.end());
    out.lower.push_back(std::move(s));
  }
  for (const DivExpr& e : b.upper) {
    DivExpr s;
    s.den = e.den;
    s.coeffs.assign(e.coeffs.begin() + l, e.coeffs.end());
    out.upper.push_back(std::move(s));
  }
  return out;
}

/// Trip count of loop `l` at the given binding when tiled by `t`.
i64 tripCount(const DimBounds& bounds, int l, const IntVec& params, i64 t) {
  DimBounds b = stripLoopBounds(bounds, l);
  i64 lo = b.evalLower(params);
  i64 hi = b.evalUpper(params);
  i64 range = std::max<i64>(0, hi - lo + 1);
  return ceilDiv(range, t);
}

/// Binding of the extended (origin-including) parameter vector with origins
/// pinned at their loop lower bounds, for volume/footprint evaluation.
IntVec extendedBinding(const TileAnalysis& ta, const IntVec& params) {
  IntVec ext = params;
  for (int l = 0; l < ta.depth; ++l) {
    std::vector<DivExpr> lower = ta.loopBounds[l].lower;
    i64 best = INT64_MIN;
    for (const DivExpr& e : lower) {
      // Bounds are parameter-only; strip leading iterator slots.
      DivExpr s;
      s.den = e.den;
      s.coeffs.assign(e.coeffs.begin() + l, e.coeffs.end());
      best = std::max(best, s.evalCeil(params));
    }
    ext.push_back(best);
  }
  return ext;
}

}  // namespace

TileEvaluation evaluateTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const std::vector<i64>& subTile,
                                 const TileSearchOptions& options, const SmemOptions& smemBase) {
  TileEvaluation ev;
  int depth = commonLoopDepth(block);
  EMM_REQUIRE(static_cast<int>(subTile.size()) == depth, "subTile arity mismatch");
  EMM_REQUIRE(static_cast<int>(options.paramValues.size()) == block.nparam(),
              "paramValues arity mismatch");

  // Constraint (1): 0 < t_i <= N_i.
  TileAnalysis ta = analyzeTile(block, plan, subTile, smemBase, options.hoistCopies);
  for (int l = 0; l < depth; ++l) {
    i64 range = std::max<i64>(
        0, ta.loopBounds[l].upper.empty() || ta.loopBounds[l].lower.empty()
               ? 0
               : tripCount(ta.loopBounds[l], l, options.paramValues, 1));
    if (subTile[l] < 1 || subTile[l] > std::max<i64>(range, 1)) {
      ev.reason = "tile size out of loop range";
      return ev;
    }
  }

  IntVec ext = extendedBinding(ta, options.paramValues);

  // Constraint (2): footprint <= Mup.
  i64 footprint = 0;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p)
    footprint = addChecked(footprint, ta.plan.bufferFootprint(static_cast<int>(p), ext));
  ev.footprint = footprint;
  if (footprint > options.memLimitElems) {
    ev.reason = "scratchpad footprint exceeds limit";
    return ev;
  }

  // Constraint (3): tile volume keeps all inner-level processes busy.
  i64 tileVolume = 1;
  for (int l = 0; l < depth; ++l) tileVolume = mulChecked(tileVolume, subTile[l]);
  if (tileVolume < options.innerProcs) {
    ev.reason = "tile smaller than inner-level process count";
    return ev;
  }

  // Objective: sum over buffers of occurrences * (P*S + V*L/P).
  double P = static_cast<double>(options.innerProcs);
  double cost = 0;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    const PartitionPlan& part = ta.plan.partitions[p];
    if (!part.hasBuffer) continue;
    // Occurrences: product of tiling-loop trip counts above the placement
    // level (the r_k of Section 4.3).
    i64 occ = 1;
    for (int l = 0; l < ta.hoistLevel[p]; ++l)
      occ = mulChecked(occ, tripCount(ta.loopBounds[l], l, options.paramValues, subTile[l]));
    i64 vin = ta.plan.moveInVolumeBound(static_cast<int>(p), ext);
    i64 vout = ta.plan.moveOutVolumeBound(static_cast<int>(p), ext);
    double termIn = vin > 0 ? static_cast<double>(occ) *
                                  (P * options.syncCost +
                                   static_cast<double>(vin) * options.transferCost / P)
                            : 0.0;
    double termOut = vout > 0 ? static_cast<double>(occ) *
                                    (P * options.syncCost +
                                     static_cast<double>(vout) * options.transferCost / P)
                              : 0.0;
    cost += termIn + termOut;
    ev.terms.push_back({part.bufferName, occ, vin, vout, ta.hoistLevel[p]});
  }
  ev.feasible = true;
  ev.cost = cost;
  return ev;
}

namespace {

std::vector<std::vector<i64>> defaultCandidates(const ProgramBlock& block,
                                                const ParallelismPlan& plan,
                                                const TileSearchOptions& options,
                                                const SmemOptions& smemBase) {
  // Geometric ladder clipped to each loop's range.
  std::vector<i64> probe(commonLoopDepth(block), 1);
  TileAnalysis ta = analyzeTile(block, plan, probe, smemBase, options.hoistCopies);
  std::vector<std::vector<i64>> out;
  for (int l = 0; l < ta.depth; ++l) {
    i64 range = tripCount(ta.loopBounds[l], l, options.paramValues, 1);
    std::vector<i64> ladder;
    for (i64 t = 1; t < range; t *= 2) ladder.push_back(t);
    ladder.push_back(std::max<i64>(range, 1));
    out.push_back(std::move(ladder));
  }
  return out;
}

}  // namespace

TileSearchResult exhaustiveTileSearch(const ProgramBlock& block, const ParallelismPlan& plan,
                                      const TileSearchOptions& options,
                                      const SmemOptions& smemBase) {
  auto cands = options.candidates.empty()
                   ? defaultCandidates(block, plan, options, smemBase)
                   : options.candidates;
  int depth = commonLoopDepth(block);
  EMM_REQUIRE(static_cast<int>(cands.size()) == depth, "candidate arity mismatch");

  TileSearchResult best;
  best.eval.feasible = false;
  std::vector<size_t> idx(depth, 0);
  while (true) {
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) tile[l] = cands[l][idx[l]];
    TileEvaluation ev = evaluateTileSizes(block, plan, tile, options, smemBase);
    ++best.evaluations;
    if (ev.feasible && (!best.eval.feasible || ev.cost < best.eval.cost)) {
      best.eval = ev;
      best.subTile = tile;
    }
    int l = depth - 1;
    while (l >= 0 && ++idx[l] == cands[l].size()) idx[l--] = 0;
    if (l < 0) break;
  }
  return best;
}

TileSearchResult searchTileSizes(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const TileSearchOptions& options, const SmemOptions& smemBase) {
  auto cands = options.candidates.empty()
                   ? defaultCandidates(block, plan, options, smemBase)
                   : options.candidates;
  int depth = commonLoopDepth(block);
  EMM_REQUIRE(static_cast<int>(cands.size()) == depth, "candidate arity mismatch");

  TileSearchResult result;
  result.eval.feasible = false;

  // Memoized evaluation over ladder positions.
  std::map<std::vector<size_t>, TileEvaluation> memo;
  auto evalPos = [&](const std::vector<size_t>& p) -> const TileEvaluation& {
    auto it = memo.find(p);
    if (it != memo.end()) return it->second;
    std::vector<i64> tile(depth);
    for (int l = 0; l < depth; ++l) tile[l] = cands[l][p[l]];
    ++result.evaluations;
    return memo.emplace(p, evaluateTileSizes(block, plan, tile, options, smemBase))
        .first->second;
  };

  // Coordinate descent over ladder positions from one seed. This plays the
  // role of the paper's relaxed continuous solve + rounding; multi-start
  // covers the non-convexity introduced by the constraint boundaries.
  auto descend = [&](std::vector<size_t> pos) {
    TileEvaluation cur = evalPos(pos);
    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 64) {
      improved = false;
      for (int l = 0; l < depth; ++l) {
        for (int dir : {+1, -1}) {
          while (true) {
            if (dir > 0 && pos[l] + 1 >= cands[l].size()) break;
            if (dir < 0 && pos[l] == 0) break;
            std::vector<size_t> next = pos;
            next[l] += dir;
            const TileEvaluation& ev = evalPos(next);
            bool better = ev.feasible && (!cur.feasible || ev.cost < cur.cost);
            if (!better) break;
            pos = std::move(next);
            cur = ev;
            improved = true;
          }
        }
      }
    }
    return std::make_pair(pos, cur);
  };

  // Seeds: midpoint, all-smallest, all-largest, and per-loop extremes.
  std::vector<std::vector<size_t>> seeds;
  std::vector<size_t> mid(depth), lo(depth, 0), hi(depth);
  for (int l = 0; l < depth; ++l) {
    mid[l] = cands[l].size() / 2;
    hi[l] = cands[l].size() - 1;
  }
  seeds.push_back(mid);
  seeds.push_back(lo);
  seeds.push_back(hi);
  for (int l = 0; l < depth; ++l) {
    std::vector<size_t> s = mid;
    s[l] = hi[l];
    seeds.push_back(s);
    s[l] = 0;
    seeds.push_back(s);
  }

  std::vector<size_t> bestPos;
  for (const std::vector<size_t>& seed : seeds) {
    auto [pos, ev] = descend(seed);
    if (ev.feasible && (!result.eval.feasible || ev.cost < result.eval.cost)) {
      result.eval = ev;
      bestPos = pos;
    }
  }
  if (result.eval.feasible) {
    result.subTile.resize(depth);
    for (int l = 0; l < depth; ++l) result.subTile[l] = cands[l][bestPos[l]];
  }
  return result;
}

}  // namespace emm
