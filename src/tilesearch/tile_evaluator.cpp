#include "tilesearch/tile_evaluator.h"

#include <algorithm>

namespace emm {

namespace {

/// Drops the leading `l` iterator coefficient slots (all zero for the
/// rectangular bounds the tiler certifies) so bounds evaluate against the
/// parameter vector alone.
DimBounds stripLoopBounds(const DimBounds& b, int l) {
  DimBounds out;
  for (const DivExpr& e : b.lower) {
    DivExpr s;
    s.den = e.den;
    s.coeffs.assign(e.coeffs.begin() + l, e.coeffs.end());
    out.lower.push_back(std::move(s));
  }
  for (const DivExpr& e : b.upper) {
    DivExpr s;
    s.den = e.den;
    s.coeffs.assign(e.coeffs.begin() + l, e.coeffs.end());
    out.upper.push_back(std::move(s));
  }
  return out;
}

/// Trip count of loop `l` at the given binding when tiled by `t`.
i64 tripCount(const DimBounds& bounds, int l, const IntVec& params, i64 t) {
  DimBounds b = stripLoopBounds(bounds, l);
  i64 lo = b.evalLower(params);
  i64 hi = b.evalUpper(params);
  i64 range = std::max<i64>(0, hi - lo + 1);
  return ceilDiv(range, t);
}

/// Binding of the extended (origin-including) parameter vector with origins
/// pinned at their loop lower bounds, for volume/footprint evaluation.
IntVec extendedBinding(const TileAnalysis& ta, const IntVec& params) {
  IntVec ext = params;
  for (int l = 0; l < ta.depth; ++l) {
    std::vector<DivExpr> lower = ta.loopBounds[l].lower;
    i64 best = INT64_MIN;
    for (const DivExpr& e : lower) {
      // Bounds are parameter-only; strip leading iterator slots.
      DivExpr s;
      s.den = e.den;
      s.coeffs.assign(e.coeffs.begin() + l, e.coeffs.end());
      best = std::max(best, s.evalCeil(params));
    }
    ext.push_back(best);
  }
  return ext;
}

}  // namespace

TileEvaluator::TileEvaluator(const ProgramBlock& block, const ParallelismPlan& plan,
                             const TileSearchOptions& options, const SmemOptions& smemBase)
    : block_(block), plan_(plan), options_(options), smemBase_(smemBase) {
  depth_ = commonLoopDepth(block);
  EMM_REQUIRE(static_cast<int>(options_.paramValues.size()) == block.nparam(),
              "paramValues arity mismatch");
  loopBounds_ = rectangularLoopBounds(block, depth_);
  loopRange_.resize(depth_);
  for (int l = 0; l < depth_; ++l)
    loopRange_[l] = loopBounds_[l].lower.empty() || loopBounds_[l].upper.empty()
                        ? 0
                        : tripCount(loopBounds_[l], l, options_.paramValues, 1);
  if (options_.candidates.empty()) {
    // Geometric ladder clipped to each loop's range.
    for (int l = 0; l < depth_; ++l) {
      std::vector<i64> ladder;
      for (i64 t = 1; t < loopRange_[l]; t *= 2) ladder.push_back(t);
      ladder.push_back(std::max<i64>(loopRange_[l], 1));
      candidates_.push_back(std::move(ladder));
    }
  } else {
    EMM_REQUIRE(static_cast<int>(options_.candidates.size()) == depth_,
                "candidate arity mismatch");
    candidates_ = options_.candidates;
  }
}

const TileEvaluation& TileEvaluator::evaluate(const std::vector<i64>& subTile) {
  auto it = memo_.find(subTile);
  if (it != memo_.end()) {
    ++memoHits_;
    return it->second;
  }
  ++evaluations_;
  return memo_.emplace(subTile, evaluateUncached(subTile)).first->second;
}

TileEvaluation TileEvaluator::evaluateUncached(const std::vector<i64>& subTile) {
  TileEvaluation ev;
  EMM_REQUIRE(static_cast<int>(subTile.size()) == depth_, "subTile arity mismatch");

  // Constraints that need no per-candidate analysis come first, so the
  // search discards infeasible candidates without paying for Section 3.
  // Constraint (1): 0 < t_i <= N_i (shared, tile-size-independent bounds).
  for (int l = 0; l < depth_; ++l) {
    if (subTile[l] < 1 || subTile[l] > std::max<i64>(loopRange_[l], 1)) {
      ev.reason = "tile size out of loop range";
      return ev;
    }
  }

  // Constraint (3): tile volume keeps all inner-level processes busy.
  i64 tileVolume = 1;
  for (int l = 0; l < depth_; ++l) tileVolume = mulChecked(tileVolume, subTile[l]);
  if (tileVolume < options_.innerProcs) {
    ev.reason = "tile smaller than inner-level process count";
    return ev;
  }

  // The candidate survives the cheap constraints: run the Section-3
  // analysis (the dominant cost, memoized by the caller).
  ++analysesRun_;
  TileAnalysis ta = analyzeTile(block_, plan_, subTile, smemBase_, options_.hoistCopies);
  IntVec ext = extendedBinding(ta, options_.paramValues);

  // Constraint (2): footprint <= Mup.
  i64 footprint = 0;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p)
    footprint = addChecked(footprint, ta.plan.bufferFootprint(static_cast<int>(p), ext));
  ev.footprint = footprint;
  if (footprint > options_.memLimitElems) {
    ev.reason = "scratchpad footprint exceeds limit";
    return ev;
  }

  // Objective: sum over buffers of occurrences * (P*S + V*L/P).
  double P = static_cast<double>(options_.innerProcs);
  double cost = 0;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    const PartitionPlan& part = ta.plan.partitions[p];
    if (!part.hasBuffer) continue;
    // Occurrences: product of tiling-loop trip counts above the placement
    // level (the r_k of Section 4.3).
    i64 occ = 1;
    for (int l = 0; l < ta.hoistLevel[p]; ++l)
      occ = mulChecked(occ, tripCount(ta.loopBounds[l], l, options_.paramValues, subTile[l]));
    i64 vin = ta.plan.moveInVolumeBound(static_cast<int>(p), ext);
    i64 vout = ta.plan.moveOutVolumeBound(static_cast<int>(p), ext);
    double termIn = vin > 0 ? static_cast<double>(occ) *
                                  (P * options_.syncCost +
                                   static_cast<double>(vin) * options_.transferCost / P)
                            : 0.0;
    double termOut = vout > 0 ? static_cast<double>(occ) *
                                    (P * options_.syncCost +
                                     static_cast<double>(vout) * options_.transferCost / P)
                              : 0.0;
    cost += termIn + termOut;
    ev.terms.push_back({part.bufferName, occ, vin, vout, ta.hoistLevel[p]});
  }
  ev.feasible = true;
  ev.cost = cost;
  return ev;
}

}  // namespace emm
