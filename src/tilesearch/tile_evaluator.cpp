#include "tilesearch/tile_evaluator.h"

#include <algorithm>
#include <chrono>

namespace emm {

namespace {

/// Drops the leading `l` iterator coefficient slots (all zero for the
/// rectangular bounds the tiler certifies) so bounds evaluate against the
/// parameter vector alone.
DimBounds stripLoopBounds(const DimBounds& b, int l) {
  DimBounds out;
  for (const DivExpr& e : b.lower) out.lower.push_back(dropLeadingCoeffs(e, l));
  for (const DivExpr& e : b.upper) out.upper.push_back(dropLeadingCoeffs(e, l));
  return out;
}

/// Trip count of loop `l` at the given binding when tiled by `t`.
i64 tripCount(const DimBounds& bounds, int l, const IntVec& params, i64 t) {
  DimBounds b = stripLoopBounds(bounds, l);
  i64 lo = b.evalLower(params);
  i64 hi = b.evalUpper(params);
  i64 range = std::max<i64>(0, hi - lo + 1);
  return ceilDiv(range, t);
}

/// Binding of the extended (origin-including) parameter vector with origins
/// pinned at their loop lower bounds, for volume/footprint evaluation.
IntVec extendedBinding(const TileAnalysis& ta, const IntVec& params) {
  IntVec ext = params;
  // Bounds are parameter-only; strip leading iterator slots.
  for (int l = 0; l < ta.depth; ++l)
    ext.push_back(evalStrippedLower(ta.loopBounds[l], l, params));
  return ext;
}

double millisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string joinTile(const std::vector<i64>& tile) {
  std::string out;
  for (size_t i = 0; i < tile.size(); ++i) out += (i ? "," : "") + std::to_string(tile[i]);
  return out;
}

/// Field-by-field equivalence used by probe validation. Costs are compared
/// exactly: both paths combine identical integers with identical
/// floating-point expressions, so any difference is a real model mismatch.
bool sameEvaluation(const TileEvaluation& a, const TileEvaluation& b) {
  if (a.feasible != b.feasible || a.reason != b.reason) return false;
  if (a.footprint != b.footprint || a.cost != b.cost) return false;
  if (a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    const TileEvaluation::BufferTerm& x = a.terms[i];
    const TileEvaluation::BufferTerm& y = b.terms[i];
    if (x.name != y.name || x.occurrences != y.occurrences || x.volumeIn != y.volumeIn ||
        x.volumeOut != y.volumeOut || x.hoistLevel != y.hoistLevel)
      return false;
  }
  return true;
}

}  // namespace

TileEvaluator::TileEvaluator(const ProgramBlock& block, const ParallelismPlan& plan,
                             const TileSearchOptions& options, const SmemOptions& smemBase)
    : block_(block), plan_(plan), options_(options), smemBase_(smemBase) {
  depth_ = commonLoopDepth(block);
  EMM_REQUIRE(static_cast<int>(options_.paramValues.size()) == block.nparam(),
              "paramValues arity mismatch");
  loopBounds_ = rectangularLoopBounds(block, depth_);
  loopRange_.resize(depth_);
  for (int l = 0; l < depth_; ++l)
    loopRange_[l] = loopBounds_[l].lower.empty() || loopBounds_[l].upper.empty()
                        ? 0
                        : tripCount(loopBounds_[l], l, options_.paramValues, 1);
  if (options_.candidates.empty()) {
    // Geometric ladder clipped to each loop's range.
    for (int l = 0; l < depth_; ++l) {
      std::vector<i64> ladder;
      for (i64 t = 1; t < loopRange_[l]; t *= 2) ladder.push_back(t);
      ladder.push_back(std::max<i64>(loopRange_[l], 1));
      candidates_.push_back(std::move(ladder));
    }
  } else {
    EMM_REQUIRE(static_cast<int>(options_.candidates.size()) == depth_,
                "candidate arity mismatch");
    candidates_ = options_.candidates;
  }
}

TileEvaluator::~TileEvaluator() = default;

void TileEvaluator::adoptFamilyPlan(std::shared_ptr<const ParametricTilePlan> plan) {
  EMM_REQUIRE(state_ == ParametricState::Pending && !prepared_,
              "adoptFamilyPlan must precede the first evaluation");
  familyCandidate_ = std::move(plan);
}

const TileEvaluation& TileEvaluator::evaluate(const std::vector<i64>& subTile) {
  auto it = memo_.find(subTile);
  if (it != memo_.end()) {
    ++memoHits_;
    return it->second;
  }
  EMM_REQUIRE(static_cast<int>(subTile.size()) == depth_, "subTile arity mismatch");

  // Constraints that need no analysis come first, so the search discards
  // infeasible candidates without building a plan or paying for Section 3.
  TileEvaluation cheap = cheapCheck(subTile);
  if (!cheap.reason.empty()) {
    ++evaluations_;
    return memo_.emplace(subTile, std::move(cheap)).first->second;
  }

  // First surviving candidate: build (and probe-validate) the symbolic plan.
  ensurePlan();
  it = memo_.find(subTile);  // the candidate may have served as a probe
  if (it != memo_.end()) {
    ++memoHits_;
    return it->second;
  }

  ++evaluations_;
  const auto start = std::chrono::steady_clock::now();
  TileEvaluation ev = paramPlan_ != nullptr ? paramPlan_->evaluate(binding_, subTile)
                                            : evaluateConcrete(subTile);
  evalMillis_ += millisSince(start);
  return memo_.emplace(subTile, std::move(ev)).first->second;
}

TileEvaluation TileEvaluator::cheapCheck(const std::vector<i64>& subTile) const {
  TileEvaluation ev;
  // Constraint (1): 0 < t_i <= N_i (shared, tile-size-independent bounds).
  for (int l = 0; l < depth_; ++l) {
    if (subTile[l] < 1 || subTile[l] > std::max<i64>(loopRange_[l], 1)) {
      ev.reason = "tile size out of loop range";
      return ev;
    }
  }
  // Constraint (3): tile volume keeps all inner-level processes busy.
  i64 tileVolume = 1;
  for (int l = 0; l < depth_; ++l) tileVolume = mulChecked(tileVolume, subTile[l]);
  if (tileVolume < options_.innerProcs) {
    ev.reason = "tile smaller than inner-level process count";
    return ev;
  }
  return ev;  // survived: feasible stays false, reason stays empty
}

void TileEvaluator::ensurePlan() {
  if (state_ != ParametricState::Pending) return;
  if (!options_.parametric) {
    state_ = ParametricState::Fallback;
    fallbackReason_ = "parametric evaluation disabled by options";
    return;
  }
  if (depth_ == 0) {
    state_ = ParametricState::Fallback;
    fallbackReason_ = "block has no common loops";
    return;
  }
  for (const std::vector<i64>& ladder : candidates_) {
    if (ladder.empty()) {
      state_ = ParametricState::Fallback;
      fallbackReason_ = "empty candidate ladder";
      return;
    }
  }
  const auto start = std::chrono::steady_clock::now();
  // Probe tiles: the mid-grid candidate (validates the full feasible-path
  // formulas at a typical point) and the largest grid corner (stresses the
  // footprint formulas, usually against the memory limit). Both are
  // clipped into the loop ranges so user-supplied out-of-range ladders
  // cannot sneak an unvalidated plan past the cheap constraints — the
  // clipped corner has the maximum feasible volume, so it survives the
  // cheap check whenever any candidate does.
  std::vector<i64> mid(depth_), corner(depth_);
  for (int l = 0; l < depth_; ++l) {
    const i64 range = std::max<i64>(loopRange_[l], 1);
    mid[l] = std::min(candidates_[l][candidates_[l].size() / 2], range);
    corner[l] = std::min(candidates_[l].back(), range);
  }

  // Concrete probe evaluations first — they are authoritative regardless of
  // which plan (family or fresh) ends up serving candidates, so a family
  // hit can never change a result the concrete analysis would produce.
  std::vector<std::pair<std::vector<i64>, TileEvaluation>> probes;
  for (const std::vector<i64>& probe : {mid, corner}) {
    if (memo_.count(probe) != 0) continue;
    bool seen = false;
    for (const auto& [tile, ev] : probes) seen = seen || tile == probe;
    if (seen) continue;
    TileEvaluation cheap = cheapCheck(probe);
    ++evaluations_;
    if (!cheap.reason.empty()) {
      memo_.emplace(probe, std::move(cheap));
      continue;  // both paths agree trivially; nothing to validate
    }
    probes.emplace_back(probe, evaluateConcrete(probe));
  }
  if (probes.empty()) {
    // Never serve candidates from a plan no probe could exercise.
    state_ = ParametricState::Fallback;
    fallbackReason_ = "no probe candidate survived the cheap constraints";
    planBuildMillis_ = millisSince(start);
    return;
  }

  // Candidate plans, in preference order: the adopted family plan (bound at
  // this size), then a fresh symbolic build. Either must reproduce every
  // authoritative probe exactly to become active.
  std::string reason;
  for (int attempt = 0; attempt < 2 && state_ != ParametricState::Active; ++attempt) {
    const bool family = attempt == 0;
    if (family && familyCandidate_ == nullptr) continue;
    try {
      std::shared_ptr<const ParametricTilePlan> plan =
          family ? familyCandidate_
                 : std::make_shared<const ParametricTilePlan>(block_, plan_, options_,
                                                              smemBase_, loopRange_, mid);
      ParametricTilePlan::SizeBinding binding = plan->bindSizes(options_.paramValues);
      bool agree = true;
      for (const auto& [tile, concrete] : probes) {
        if (!sameEvaluation(concrete, plan->evaluate(binding, tile))) {
          agree = false;
          reason = std::string(family ? "family plan" : "symbolic plan") +
                   " disagrees with the concrete analysis at tile (" + joinTile(tile) + ")";
          break;
        }
      }
      if (agree) {
        paramPlan_ = std::move(plan);
        binding_ = std::move(binding);
        familyAdopted_ = family;
        state_ = ParametricState::Active;
      }
    } catch (const ApiError& e) {
      reason = e.what();
    }
  }
  if (state_ != ParametricState::Active) {
    state_ = ParametricState::Fallback;
    fallbackReason_ = reason;
    paramPlan_.reset();
  }
  for (auto& [tile, concrete] : probes)
    memo_.emplace(tile, std::move(concrete));  // authoritative either way
  planBuildMillis_ = millisSince(start);
}

void TileEvaluator::prepareSearch() {
  if (prepared_) return;
  prepared_ = true;
  if (depth_ == 0) return;
  ensurePlan();
  if (state_ != ParametricState::Active) return;
  pruneCandidateBoxes();
}

void TileEvaluator::pruneCandidateBoxes() {
  // Box soundness needs "larger ladder index => larger tile", so unsorted
  // user ladders opt out of pruning.
  for (const std::vector<i64>& ladder : candidates_)
    if (!std::is_sorted(ladder.begin(), ladder.end())) return;
  for (int l = 0; l < depth_; ++l) {
    std::vector<i64>& ladder = candidates_[l];
    size_t cut = ladder.size();
    // Box B(l, k) = { t_l in [ladder[k], ladder.back()], t_j in its full
    // ladder range }. If the partition structure is already coarsest at the
    // box's minimum corner it stays coarsest across the box (overlap grows
    // with tile sizes), so footprintInterval().lo is a true lower bound of
    // every candidate's footprint — above the memory limit, the whole box
    // (and, ladders being sorted, every longer-tailed box after it) is
    // infeasible. The smallest ladder entry is always kept so the solvers
    // see a non-empty grid and report infeasibility through evaluation.
    for (size_t k = 1; k < ladder.size(); ++k) {
      std::vector<SymInterval> box(depth_);
      std::vector<i64> minCorner(depth_);
      for (int j = 0; j < depth_; ++j) {
        const i64 lo = j == l ? ladder[k] : candidates_[j].front();
        const i64 hi = j == l ? ladder.back() : candidates_[j].back();
        box[j] = {lo, hi};
        minCorner[j] = lo;
      }
      if (!paramPlan_->coarsestStructureAt(binding_, minCorner)) continue;
      if (paramPlan_->footprintInterval(binding_, box).lo > options_.memLimitElems) {
        cut = k;
        break;
      }
    }
    if (cut < ladder.size()) {
      prunedBoxes_ += static_cast<int>(ladder.size() - cut);
      ladder.resize(cut);
    }
  }
}

TileEvaluation TileEvaluator::evaluateConcrete(const std::vector<i64>& subTile) {
  TileEvaluation ev = cheapCheck(subTile);
  if (!ev.reason.empty()) return ev;

  // The candidate survives the cheap constraints: run the Section-3
  // analysis (the dominant cost, memoized by the caller).
  ++analysesRun_;
  TileAnalysis ta = analyzeTile(block_, plan_, subTile, smemBase_, options_.hoistCopies);
  IntVec ext = extendedBinding(ta, options_.paramValues);

  // Constraint (2): footprint <= Mup.
  i64 footprint = 0;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p)
    footprint = addChecked(footprint, ta.plan.bufferFootprint(static_cast<int>(p), ext));
  ev.footprint = footprint;
  if (footprint > options_.memLimitElems) {
    ev.reason = "scratchpad footprint exceeds limit";
    return ev;
  }

  // Objective: sum over buffers of occurrences * (P*S + V*L/P).
  double P = static_cast<double>(options_.innerProcs);
  double cost = 0;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    const PartitionPlan& part = ta.plan.partitions[p];
    if (!part.hasBuffer) continue;
    // Occurrences: product of tiling-loop trip counts above the placement
    // level (the r_k of Section 4.3).
    i64 occ = 1;
    for (int l = 0; l < ta.hoistLevel[p]; ++l)
      occ = mulChecked(occ, tripCount(ta.loopBounds[l], l, options_.paramValues, subTile[l]));
    i64 vin = ta.plan.moveInVolumeBound(static_cast<int>(p), ext);
    i64 vout = ta.plan.moveOutVolumeBound(static_cast<int>(p), ext);
    double termIn = bufferCostTerm(occ, vin, P, options_.syncCost, options_.transferCost);
    double termOut = bufferCostTerm(occ, vout, P, options_.syncCost, options_.transferCost);
    cost += termIn + termOut;
    ev.terms.push_back({part.bufferName, occ, vin, vout, ta.hoistLevel[p]});
  }
  ev.feasible = true;
  ev.cost = cost;
  return ev;
}

}  // namespace emm
