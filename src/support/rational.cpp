#include "support/rational.h"

#include <ostream>

namespace emm {

void Rat::normalize() {
  EMM_CHECK(d_ != 0, "rational with zero denominator");
  if (d_ < 0) {
    n_ = narrow(-static_cast<i128>(n_));
    d_ = narrow(-static_cast<i128>(d_));
  }
  i64 g = gcd64(n_, d_);
  if (g > 1) {
    n_ /= g;
    d_ /= g;
  }
  if (n_ == 0) d_ = 1;
}

i64 Rat::round() const {
  // floor(x + 1/2) with ties away from zero for negatives handled explicitly.
  if (n_ >= 0) return floorDiv(addChecked(mulChecked(2, n_), d_), mulChecked(2, d_));
  return -(-*this).round();
}

std::string Rat::str() const {
  if (d_ == 1) return std::to_string(n_);
  return std::to_string(n_) + "/" + std::to_string(d_);
}

std::ostream& operator<<(std::ostream& os, const Rat& r) { return os << r.str(); }

}  // namespace emm
