// Diagnostics: fail-fast checks for internal invariants.
//
// The compiler pipeline works with exact integer arithmetic; any violated
// invariant (overflow, malformed polyhedron, bad index) indicates a bug that
// would otherwise silently mis-compile. We therefore abort with a message
// rather than limp on.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace emm {

/// Thrown on violated preconditions in library entry points (user-facing
/// errors, e.g. dimension mismatches in the public API).
class ApiError : public std::runtime_error {
public:
  explicit ApiError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void checkFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "emmap internal check failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " -- ", msg.c_str());
  std::abort();
}

}  // namespace emm

/// Internal invariant check; active in all build types. `msg` may use
/// std::string concatenation.
#define EMM_CHECK(cond, msg)                                     \
  do {                                                           \
    if (!(cond)) ::emm::checkFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (0)

/// Precondition check on a public API entry point: throws ApiError.
#define EMM_REQUIRE(cond, msg)                      \
  do {                                              \
    if (!(cond)) throw ::emm::ApiError((msg));      \
  } while (0)
