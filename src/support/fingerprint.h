// Stable structural fingerprints for compilation-service cache keys.
//
// hashProgramBlock digests everything that determines a ProgramBlock's
// compilation: names, parameters, array shapes, statement domains, access
// functions, schedules, and the expression trees of statement bodies. Two
// blocks built independently through the same sequence of IR constructions
// hash equal; any mutation of a bound, statement, or access changes the
// digest. hashCompileOptions does the same for the full option set, so
// (block fingerprint, options fingerprint) keys the driver's PlanCache.
//
// The digest is 64-bit FNV-1a with length-prefixed fields, which keeps it
// stable across processes and platforms (no pointer or iteration-order
// dependence). It is a cache key, not a cryptographic commitment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/checked_int.h"

namespace emm {

struct ProgramBlock;
struct CompileOptions;

using u64 = std::uint64_t;

/// Incremental FNV-1a digest with typed, length-prefixed field mixing.
class Hasher {
public:
  void bytes(const void* data, size_t n);
  void mix(i64 v);
  void mix(u64 v);
  void mix(int v) { mix(static_cast<i64>(v)); }
  void mix(bool v) { mix(static_cast<i64>(v ? 1 : 0)); }
  void mix(double v);  ///< bit-pattern digest (distinguishes -0.0 from 0.0)
  void mix(const std::string& s);
  void mix(const std::vector<i64>& v);
  void mix(const std::vector<std::vector<i64>>& v);
  void mix(const std::vector<std::string>& v);

  u64 digest() const { return state_; }

private:
  u64 state_ = 14695981039346656037ull;  // FNV offset basis
};

/// Structural fingerprint of a program block (see file comment).
u64 hashProgramBlock(const ProgramBlock& block);

/// Canonical fingerprint of a full option set. Every field that can change
/// any pipeline product participates.
u64 hashCompileOptions(const CompileOptions& options);

/// Order-independent-free combiner for composite keys (hash of hashes).
u64 hashCombine(u64 a, u64 b);

}  // namespace emm
