#include "support/fingerprint.h"

#include <cstring>

#include "driver/options.h"
#include "ir/program.h"

namespace emm {

namespace {

constexpr u64 kFnvPrime = 1099511628211ull;

}  // namespace

void Hasher::bytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state_ ^= p[i];
    state_ *= kFnvPrime;
  }
}

void Hasher::mix(i64 v) {
  unsigned char buf[8];
  u64 u = static_cast<u64>(v);
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(u >> (8 * i));
  bytes(buf, 8);
}

void Hasher::mix(u64 v) { mix(static_cast<i64>(v)); }

void Hasher::mix(double v) {
  u64 bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  mix(bits);
}

void Hasher::mix(const std::string& s) {
  mix(static_cast<i64>(s.size()));
  bytes(s.data(), s.size());
}

void Hasher::mix(const std::vector<i64>& v) {
  mix(static_cast<i64>(v.size()));
  for (i64 x : v) mix(x);
}

void Hasher::mix(const std::vector<std::vector<i64>>& v) {
  mix(static_cast<i64>(v.size()));
  for (const std::vector<i64>& inner : v) mix(inner);
}

void Hasher::mix(const std::vector<std::string>& v) {
  mix(static_cast<i64>(v.size()));
  for (const std::string& s : v) mix(s);
}

u64 hashCombine(u64 a, u64 b) {
  Hasher h;
  h.mix(a);
  h.mix(b);
  return h.digest();
}

namespace {

void mixMatrix(Hasher& h, const IntMat& m) {
  h.mix(m.rows());
  h.mix(m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c) h.mix(m.at(r, c));
}

void mixPolyhedron(Hasher& h, const Polyhedron& p) {
  h.mix(p.dim());
  h.mix(p.nparam());
  mixMatrix(h, p.equalities());
  mixMatrix(h, p.inequalities());
}

void mixExpr(Hasher& h, const ExprPtr& e) {
  if (e == nullptr) {
    h.mix(i64{-1});
    return;
  }
  h.mix(static_cast<i64>(e->kind()));
  switch (e->kind()) {
    case Expr::Kind::Const:
      h.mix(e->constValue());
      break;
    case Expr::Kind::Load:
      h.mix(e->accessIndex());
      break;
    default:
      mixExpr(h, e->lhs());
      mixExpr(h, e->rhs());
      break;
  }
}

}  // namespace

u64 hashProgramBlock(const ProgramBlock& block) {
  Hasher h;
  h.mix(block.name);
  h.mix(block.paramNames);
  h.mix(static_cast<i64>(block.arrays.size()));
  for (const ArrayDecl& a : block.arrays) {
    h.mix(a.name);
    h.mix(a.extents);
  }
  h.mix(static_cast<i64>(block.statements.size()));
  for (const Statement& st : block.statements) {
    h.mix(st.name);
    mixPolyhedron(h, st.domain);
    h.mix(static_cast<i64>(st.accesses.size()));
    for (const Access& acc : st.accesses) {
      h.mix(acc.arrayId);
      h.mix(acc.isWrite);
      mixMatrix(h, acc.fn);
    }
    h.mix(st.writeAccess);
    mixExpr(h, st.rhs);
    mixMatrix(h, st.schedule);
  }
  return h.digest();
}

u64 hashCompileOptions(const CompileOptions& o) {
  Hasher h;
  h.mix(o.paramValues);
  h.mix(static_cast<i64>(o.mode));
  h.mix(o.delta);
  h.mix(static_cast<i64>(o.partitionMode));
  h.mix(o.stageEverything);
  h.mix(o.optimizeCopySets);
  h.mix(o.subTile);
  h.mix(o.blockTile);
  h.mix(o.threadTile);
  h.mix(o.hoistCopies);
  h.mix(o.useScratchpad);
  h.mix(static_cast<i64>(o.searchMode));
  h.mix(o.memLimitBytes);
  h.mix(o.elementBytes);
  h.mix(o.innerProcs);
  h.mix(o.syncCost);
  h.mix(o.transferCost);
  h.mix(o.tileCandidates);
  h.mix(o.parametricTileAnalysis);
  h.mix(o.packBuffers);
  h.mix(o.smemBanks);
  h.mix(o.smemBankWidthBytes);
  h.mix(o.backendName);
  h.mix(o.kernelName);
  h.mix(o.elementType);
  h.mix(o.numBoundParams);
  h.mix(o.doubleBuffer);
  h.mix(o.runtimeSizeArgs);
  return h.digest();
}

}  // namespace emm
