#include "support/thread_pool.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace emm {

ThreadPool::ThreadPool(int threads) {
  int n = std::max(1, threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  EMM_REQUIRE(task != nullptr, "null task submitted to thread pool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EMM_REQUIRE(!stopping_, "submit() on a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allIdle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::defaultConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<int>(n);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) allIdle_.notify_all();
    }
  }
}

}  // namespace emm
