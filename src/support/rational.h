// Exact rational numbers over int64 with checked arithmetic.
//
// Used where polyhedral computations need non-integer values: rational
// feasibility tests, vertex coordinates, volume ratios, and the real
// relaxation in the tile-size search.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "support/checked_int.h"

namespace emm {

/// A rational number n/d in lowest terms with d > 0.
class Rat {
public:
  constexpr Rat() = default;
  Rat(i64 num) : n_(num), d_(1) {}  // NOLINT: implicit from integer is intended
  Rat(i64 num, i64 den) : n_(num), d_(den) { normalize(); }

  i64 num() const { return n_; }
  i64 den() const { return d_; }

  bool isZero() const { return n_ == 0; }
  bool isInteger() const { return d_ == 1; }
  int sign() const { return n_ > 0 ? 1 : (n_ < 0 ? -1 : 0); }

  Rat operator-() const { return Rat(-n_, d_, Raw{}); }

  friend Rat operator+(const Rat& a, const Rat& b) {
    return Rat(mulAddChecked(a.n_, b.d_, b.n_, a.d_), mulChecked(a.d_, b.d_));
  }
  friend Rat operator-(const Rat& a, const Rat& b) { return a + (-b); }
  friend Rat operator*(const Rat& a, const Rat& b) {
    return Rat(mulChecked(a.n_, b.n_), mulChecked(a.d_, b.d_));
  }
  friend Rat operator/(const Rat& a, const Rat& b) {
    EMM_CHECK(b.n_ != 0, "rational division by zero");
    return Rat(mulChecked(a.n_, b.d_), mulChecked(a.d_, b.n_));
  }

  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }
  Rat& operator/=(const Rat& o) { return *this = *this / o; }

  friend bool operator==(const Rat& a, const Rat& b) { return a.n_ == b.n_ && a.d_ == b.d_; }
  friend std::strong_ordering operator<=>(const Rat& a, const Rat& b) {
    i128 lhs = static_cast<i128>(a.n_) * b.d_;
    i128 rhs = static_cast<i128>(b.n_) * a.d_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// Largest integer <= this.
  i64 floor() const { return floorDiv(n_, d_); }
  /// Smallest integer >= this.
  i64 ceil() const { return ceilDiv(n_, d_); }
  /// Nearest integer (ties away from zero).
  i64 round() const;

  double toDouble() const { return static_cast<double>(n_) / static_cast<double>(d_); }
  std::string str() const;

private:
  struct Raw {};
  Rat(i64 n, i64 d, Raw) : n_(n), d_(d) {}
  void normalize();

  i64 n_ = 0;
  i64 d_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rat& r);

}  // namespace emm
