// Small --key=value argument helper shared by emmapc and the examples.
//
// Replaces the per-tool hand-rolled parsers: construct Args from argv, pull
// typed values with defaults, then call unrecognized() to reject typos. All
// flags use the --name=value (or bare --name) form.
#pragma once

#include <string>
#include <vector>

#include "support/checked_int.h"

namespace emm::cli {

/// Parses "1,2,3" into {1,2,3}. Throws ApiError on malformed input.
std::vector<i64> parseIntList(const std::string& text);

class Args {
public:
  Args(int argc, char** argv);

  /// --name=value as a string, or `fallback` when absent.
  std::string str(const std::string& name, const std::string& fallback = "");
  /// --name=value as an integer, or `fallback` when absent.
  i64 integer(const std::string& name, i64 fallback);
  /// --name=v1,v2,... as a list; empty when absent.
  std::vector<i64> intList(const std::string& name);
  /// True when bare --name is present.
  bool flag(const std::string& name);

  /// Arguments no accessor consumed (typos, unknown flags).
  std::vector<std::string> unrecognized() const;
  /// Prints unrecognized arguments to stderr; returns false if any exist.
  bool validate(const char* usage) const;

private:
  struct Entry {
    std::string text;
    bool used = false;
  };
  /// Finds "--name=..." (or exact "--name" when value=false), marks it used,
  /// and returns the value part; nullopt when absent.
  bool consume(const std::string& name, bool wantValue, std::string& valueOut);
  std::vector<Entry> entries_;
};

}  // namespace emm::cli
