// Fixed-size thread pool for the compilation service.
//
// The pipeline is stateless per compile (CompileState is local to one
// Compiler::compile call), so batch and async compilation reduce to
// scheduling independent tasks over a small worker pool. This pool is
// deliberately minimal: a fixed number of workers created up front, a FIFO
// queue, and a blocking wait() barrier; no work stealing, priorities, or
// resizing. Tasks must not throw (wrap and report through their own
// channel, e.g. a promise), and must not submit to the pool they run on
// while another thread is in wait() (the idle accounting would race).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emm {

class ThreadPool {
public:
  /// Creates `threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Throws ApiError after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait();

  /// A sensible default worker count for this machine (>= 1).
  static int defaultConcurrency();

private:
  void workerLoop();

  mutable std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allIdle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stopping_ = false;
};

}  // namespace emm
