// Checked 64-bit integer arithmetic with __int128 intermediates.
//
// All polyhedral computations use int64 coefficients. Row combinations in
// Fourier-Motzkin elimination multiply coefficients, so intermediates are
// computed in __int128 and narrowed with an explicit range check.
#pragma once

#include <cstdint>
#include <numeric>

#include "support/diagnostics.h"

namespace emm {

using i64 = long long;  // 64-bit everywhere we build; matches the %lld printf style
using i128 = __int128;

/// Narrow an __int128 to int64. Overflow throws ApiError rather than
/// aborting: whether a combination overflows depends on the *input* values
/// (a pathological program, or hostile serialized bytes mid-decode), so it
/// is a recoverable precondition failure, not a broken internal invariant —
/// the pipeline turns it into an error diagnostic and the plan decoders
/// into a SerializeError.
inline i64 narrow(i128 v) {
  EMM_REQUIRE(v >= static_cast<i128>(INT64_MIN) && v <= static_cast<i128>(INT64_MAX),
              "int64 overflow in exact arithmetic");
  return static_cast<i64>(v);
}

inline i64 addChecked(i64 a, i64 b) { return narrow(static_cast<i128>(a) + b); }
inline i64 subChecked(i64 a, i64 b) { return narrow(static_cast<i128>(a) - b); }
inline i64 mulChecked(i64 a, i64 b) { return narrow(static_cast<i128>(a) * b); }

/// a*b + c*d in one checked expression (the FM row-combination primitive).
inline i64 mulAddChecked(i64 a, i64 b, i64 c, i64 d) {
  return narrow(static_cast<i128>(a) * b + static_cast<i128>(c) * d);
}

/// Non-negative gcd; gcd(0,0) == 0.
inline i64 gcd64(i64 a, i64 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

inline i64 lcm64(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  i64 g = gcd64(a, b);
  return mulChecked(a / g, b < 0 ? -b : b);
}

/// Floor division (rounds toward negative infinity). A zero divisor is a
/// data-dependent precondition (see narrow), so it throws, not aborts.
inline i64 floorDiv(i64 a, i64 b) {
  EMM_REQUIRE(b != 0, "floorDiv by zero");
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division (rounds toward positive infinity).
inline i64 ceilDiv(i64 a, i64 b) {
  EMM_REQUIRE(b != 0, "ceilDiv by zero");
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

}  // namespace emm
