// Versioned binary serialization for compilation plans.
//
// The on-disk plan cache (driver/disk_cache.h) persists finished
// CompileResults so `emmapc` runs and service restarts start warm. This
// module provides the byte format: a tagged, length-prefixed, endian-stable
// encoding (everything is written little-endian byte by byte, so files are
// portable across hosts) with deserializers that are safe on hostile input —
// every read is bounds-checked and every malformed tag, count, enum value or
// truncation throws SerializeError instead of crashing or fabricating a
// plan.
//
// Versioning has two layers (see docs/PLAN_FORMAT.md for the policy):
//  - kPlanFormatVersion: the container framing (header layout, tag
//    discipline). Bumped when the envelope changes shape.
//  - serializeSchemaFingerprint(): a digest of the schema manifest string in
//    serialize.cpp, which enumerates every serialized struct field by field.
//    Changing any serializer requires editing the manifest, which changes
//    the fingerprint, which makes older files reject cleanly. This is the
//    "build fingerprint" of the .emmplan header.
//
// Round-trip guarantee: deserializeCompileResult(serializeCompileResult(r))
// reproduces r field by field — same emitted artifact bytes, same costs and
// tile choices, same diagnostics and timings — with the internal
// back-pointers (CodeUnit::source, DataPlan::block) rebound to the
// deserialized blocks, exactly as PipelineProducts::clone() rebinds them.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/checked_int.h"

namespace emm {

struct CompileResult;
struct CompileOptions;
struct FamilyPlan;
struct ProgramBlock;

using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Thrown on any malformed input: truncation, tag mismatch, out-of-range
/// enum or count, checksum failure. The disk cache treats every
/// SerializeError as "entry unusable" and falls through to a cold compile.
class SerializeError : public std::runtime_error {
public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Container format version (the .emmplan / .emmfam envelope). Bump on
/// framing changes; readers reject any other value. v2 added the
/// kernel-family records (.emmfam) and the family/pruning fields of the
/// tile-search result; v3 added banked buffer layouts (LocalBuffer padding,
/// the BufferLayout product, and the packing/banking compile options); v4
/// added runtime-size-bound codegen (ArtifactInfo bind slots and guards, the
/// symbolic benefit-verdict plan fields, and the size-generic compiled
/// record embedded in .emmfam files) — see docs/PLAN_FORMAT.md.
inline constexpr u32 kPlanFormatVersion = 4;

/// Digest of the serialization schema compiled into this binary (the
/// manifest string in serialize.cpp). Two binaries agree on this value iff
/// they agree on every serialized struct layout.
u64 serializeSchemaFingerprint();

/// FNV-1a digest of a byte range; used for payload checksums and for the
/// collision-guard digests in the .emmplan header.
u64 digestBytes(std::string_view bytes);

/// Append-only little-endian encoder. All multi-byte values are written
/// byte by byte (no host-endianness dependence).
class ByteWriter {
public:
  void u8(unsigned char v) { buf_.push_back(static_cast<char>(v)); }
  void u32v(u32 v);
  void u64v(u64 v);
  void i64v(i64 v) { u64v(static_cast<u64>(v)); }
  void intv(int v) { i64v(static_cast<i64>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v);  ///< bit-pattern; round-trips -0.0 and NaN exactly
  void str(const std::string& s);
  void bytes(const void* data, size_t n);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range. Every
/// accessor throws SerializeError on truncation; counts are validated
/// against the remaining bytes before any allocation, so a corrupt length
/// field cannot trigger a huge allocation or an out-of-range read.
class ByteReader {
public:
  explicit ByteReader(std::string_view bytes) : data_(bytes) {}

  unsigned char u8();
  u32 u32v();
  u64 u64v();
  i64 i64v() { return static_cast<i64>(u64v()); }
  int intv();  ///< i64 narrowed with range check
  bool boolean();
  double f64();
  std::string str();

  /// Validates a count field: the remaining input must hold at least
  /// `count * minBytesPerElement` bytes. Returns the count.
  u64 count(u64 minBytesPerElement = 1);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool atEnd() const { return pos_ == data_.size(); }
  /// Throws unless the input is fully consumed (trailing garbage check).
  void expectEnd() const;

private:
  const unsigned char* need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Plan payloads -------------------------------------------------------

/// Encodes a finished CompileResult (products, verdict, diagnostics,
/// timings). cacheHit/diskHit are transport flags owned by the cache tiers
/// and are not part of the payload.
std::string serializeCompileResult(const CompileResult& result);

/// Decodes a payload produced by serializeCompileResult, rebinding internal
/// back-pointers. Throws SerializeError on any malformation.
CompileResult deserializeCompileResult(std::string_view bytes);

/// Canonical byte encodings used for the collision-guard digests in the
/// .emmplan header: the 64-bit cache key has no collision resistance, so the
/// disk cache stores digests of these encodings and re-derives them at
/// lookup; a colliding key with a different block or option set is rejected
/// and falls through to a cold compile.
std::string serializeProgramBlock(const ProgramBlock& block);
std::string serializeCompileOptions(const CompileOptions& options);

/// Decodes a payload produced by serializeProgramBlock, validating the
/// reconstructed block (ApiErrors from validation are converted, so hostile
/// bytes never abort). The service wire protocol (service/protocol.h) ships
/// program blocks in this encoding. Throws SerializeError on any
/// malformation.
ProgramBlock deserializeProgramBlock(std::string_view bytes);

/// Decodes a payload produced by serializeCompileOptions (enum fields are
/// range-checked). Throws SerializeError on any malformation.
CompileOptions deserializeCompileOptions(std::string_view bytes);

/// Encodes a kernel-family plan (driver/family_plan.h): the family-invariant
/// dependence/transform products plus the size-generic parametric tile plan
/// (SymExpr formulas, overlap predicates, geometry pools). Backs the
/// .emmfam records of the disk cache.
std::string serializeFamilyPlan(const FamilyPlan& plan);

/// Decodes a payload produced by serializeFamilyPlan. Throws SerializeError
/// on any malformation (ApiErrors from reconstructed-value validation are
/// converted, so hostile bytes never abort).
std::shared_ptr<const FamilyPlan> deserializeFamilyPlan(std::string_view bytes);

}  // namespace emm
