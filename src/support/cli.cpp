#include "support/cli.h"

#include <cstdio>
#include <sstream>

#include "support/diagnostics.h"

namespace emm::cli {

std::vector<i64> parseIntList(const std::string& text) {
  std::vector<i64> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      size_t used = 0;
      out.push_back(std::stoll(item, &used));
      EMM_REQUIRE(used == item.size(), "trailing characters in integer '" + item + "'");
    } catch (const std::logic_error&) {
      throw ApiError("malformed integer list entry '" + item + "'");
    }
  }
  return out;
}

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) entries_.push_back({argv[i], false});
}

bool Args::consume(const std::string& name, bool wantValue, std::string& valueOut) {
  const std::string prefix = "--" + name + "=";
  const std::string bare = "--" + name;
  for (Entry& e : entries_) {
    if (wantValue && e.text.rfind(prefix, 0) == 0) {
      e.used = true;
      valueOut = e.text.substr(prefix.size());
      return true;
    }
    if (!wantValue && e.text == bare) {
      e.used = true;
      return true;
    }
  }
  return false;
}

std::string Args::str(const std::string& name, const std::string& fallback) {
  std::string v;
  return consume(name, true, v) ? v : fallback;
}

i64 Args::integer(const std::string& name, i64 fallback) {
  std::string v;
  if (!consume(name, true, v)) return fallback;
  std::vector<i64> parsed = parseIntList(v);
  EMM_REQUIRE(parsed.size() == 1, "--" + name + " expects a single integer");
  return parsed[0];
}

std::vector<i64> Args::intList(const std::string& name) {
  std::string v;
  if (!consume(name, true, v)) return {};
  return parseIntList(v);
}

bool Args::flag(const std::string& name) {
  std::string v;
  return consume(name, false, v);
}

std::vector<std::string> Args::unrecognized() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_)
    if (!e.used) out.push_back(e.text);
  return out;
}

bool Args::validate(const char* usage) const {
  std::vector<std::string> extra = unrecognized();
  if (extra.empty()) return true;
  for (const std::string& a : extra) std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
  if (usage != nullptr) std::fputs(usage, stderr);
  return false;
}

}  // namespace emm::cli
