#include "support/serialize.h"

#include <cstring>
#include <limits>
#include <utility>

#include "driver/compiler.h"
#include "driver/family_plan.h"
#include "driver/options.h"
#include "support/fingerprint.h"

namespace emm {

namespace {

// Recursion guards for tree payloads. Legitimate plans are far shallower;
// a hostile file claiming deeper nesting is rejected before the stack is.
constexpr int kMaxExprDepth = 512;
constexpr int kMaxAstDepth = 4096;

// Structural sanity cap for dimension/shape fields. Nothing in this
// codebase approaches it; a corrupt shape larger than this is rejected
// before any EMM_CHECK (which would abort) can see it.
constexpr i64 kMaxShape = 1 << 20;

// One tag byte opens every composite value; a reader that lands on the
// wrong byte (truncation, bit flip, format drift) fails on the tag instead
// of misparsing the following fields as something else.
enum : unsigned char {
  kTagIntMat = 0x01,
  kTagPolyhedron,
  kTagDivExpr,
  kTagDimBounds,
  kTagExpr,
  kTagAccess,
  kTagStatement,
  kTagArrayDecl,
  kTagProgramBlock,
  kTagAffExpr,
  kTagBoundExpr,
  kTagAstNode,
  kTagLocalBuffer,
  kTagCodeUnit,
  kTagDependence,
  kTagLoopDepSummary,
  kTagParallelismPlan,
  kTagBufferTerm,
  kTagTileEvaluation,
  kTagTileSearchResult,
  kTagGeometryHint,
  kTagSmemOptions,
  kTagRefSummary,
  kTagPartitionPlan,
  kTagDataPlan,
  kTagTileAnalysis,
  kTagTiledKernel,
  kTagDiagnostic,
  kTagPassTiming,
  kTagPipelineProducts,
  kTagCompileResult,
  kTagCompileOptions,
  kTagSymExpr,
  kTagPairPredicate,
  kTagRefFormula,
  kTagComponentFormula,
  kTagArrayFormula,
  kTagGeometryRecord,
  kTagTileSearchOptions,
  kTagSizeBinding,
  kTagParametricPlan,
  kTagFamilyPlan,
  kTagBufferLayoutEntry,
  kTagBufferLayout,
  kTagBindSlot,
  kTagFamilyGuard,
  kTagArtifactInfo,
  kTagList = 0xA0,
};

// The schema manifest: every serialized struct, field by field, in wire
// order. serializeSchemaFingerprint() digests this string, so ANY change to
// a serializer below must be mirrored here — that edit is what retires
// stale .emmplan files (see docs/PLAN_FORMAT.md for the policy).
constexpr const char* kSchemaManifest =
    "emmplan-schema v4;"
    "IntMat{rows,cols,data[i64]};"
    "Polyhedron{dim,nparam,eqs:IntMat,ineqs:IntMat,empty:bool};"
    "DivExpr{coeffs[i64],den};"
    "DimBounds{lower[DivExpr],upper[DivExpr]};"
    "Expr{kind,cval:f64|accessIdx|lhs,rhs};"
    "Access{arrayId,fn:IntMat,isWrite};"
    "Statement{name,domain,accesses[],writeAccess,rhs?:Expr,schedule:IntMat};"
    "ArrayDecl{name,extents[i64]};"
    "ProgramBlock{name,paramNames[str],arrays[],statements[]};"
    "AffExpr{terms[(str,i64)],cnst,den};"
    "BoundExpr{parts[AffExpr],isMax};"
    "AstNode{kind,children[],iter,lb,ub,step,loopKind,guards[AffExpr],"
    "stmtId,callArgs[AffExpr],dstArray,srcArray,dstIndex[AffExpr],"
    "srcIndex[AffExpr],text};"
    "LocalBuffer{name,ndim,offset[AffExpr],sizeExpr[BoundExpr],pad[i64]};"
    "CodeUnit{name,statements[],localBuffers[],root?:AstNode};"
    "Dependence{srcStmt,dstStmt,srcAccess,dstAccess,kind,poly,srcDim,dstDim};"
    "LoopDepSummary{loop,sign};"
    "ParallelismPlan{band[i64],spaceLoops[i64],timeLoops[i64],"
    "needsInterBlockSync,summaries[]};"
    "BufferTerm{name,occurrences,volumeIn,volumeOut,hoistLevel};"
    "TileEvaluation{feasible,reason,cost:f64,footprint,terms[]};"
    "TileSearchResult{subTile[i64],eval,evaluations,memoHits,parametric,"
    "familyAdopted,prunedBoxes,parametricReason,planBuildMillis:f64,"
    "evalMillis:f64};"
    "GeometryHint{arrayId,refs[(int,int)],lower[[AffExpr]],upper[[AffExpr]]};"
    "SmemOptions{delta:f64,partitionMode,onlyBeneficial,optimizeCopySets,"
    "deadAfterBlock[int],blockLocalParams[str],paramContext?:Polyhedron,"
    "sampleParams[i64],volumeCap,geometryHints[]};"
    "RefSummary{stmt,access,isWrite,rank,iterDim,dataSpace:Polyhedron};"
    "PartitionPlan{arrayId,refs[],orderReuse,constReuseFraction:f64,"
    "beneficial,hasBuffer,bufferName,offset[AffExpr],sizeExpr[BoundExpr]};"
    "DataPlan{options,partitions[],partitionOf[[int]]};"
    "TileAnalysis{tileBlock?:ProgramBlock,plan:DataPlan,originParams[str],"
    "tileParams[str],loopBounds[DimBounds],subTile[i64],depth,hoistLevel[int]};"
    "TiledKernel{analysis,unit:CodeUnit,spaceLoops[int],blockTileSizes[i64],"
    "spaceLoopRange[(BoundExpr,BoundExpr)]};"
    "Diagnostic{severity,stage,message};"
    "PassTiming{pass,millis:f64,ran,skipped};"
    "BufferLayoutEntry{name,extent[SymExpr],rowPadElems,offsetElems:SymExpr,"
    "footprintElems:SymExpr};"
    "BufferLayout{banks,bankWidthBytes,elementBytes,padded,note,buffers[],"
    "totalElems?:SymExpr};"
    "BindSlot{name,kind,a,b,formula?:SymExpr};"
    "FamilyGuard{kind,lhs?:SymExpr,rhs?:SymExpr,bufferIndex,dim,expected,"
    "what};"
    "ArtifactInfo{sizeGeneric,note,slots[],guards[]};"
    "PipelineProducts{input?:ProgramBlock,transformed?:ProgramBlock,deps[],"
    "haveDeps,plan,havePlan,appliedSkews[(int,int,i64)],search,"
    "geometryHints[],kernel?:TiledKernel,scratchpadUnit?:(srcRef,CodeUnit),"
    "blockPlan?:(blockRef,DataPlan),bufferLayout?:BufferLayout,"
    "artifactInfo?:ArtifactInfo,artifact};"
    "CompileResult{products,ok,diagnostics[],timings[]};"
    "CompileOptions{paramValues[i64],mode,delta:f64,partitionMode,"
    "stageEverything,optimizeCopySets,subTile[i64],blockTile[i64],"
    "threadTile[i64],hoistCopies,useScratchpad,searchMode,memLimitBytes,"
    "elementBytes,innerProcs,syncCost:f64,transferCost:f64,"
    "tileCandidates[[i64]],parametricTileAnalysis,packBuffers,smemBanks,"
    "smemBankWidthBytes,backendName,kernelName,elementType,numBoundParams,"
    "doubleBuffer,runtimeSizeArgs};"
    "SymExpr{kind,cval|paramIdx+name|lhs,rhs};"
    "PairPredicate{always,never,cond:Polyhedron};"
    "RefFormula{stmt,access,isWrite,orderReuse,ctxBox[(SymExpr,SymExpr)],"
    "rawBox[(SymExpr,SymExpr)],usesOrigin[bool]};"
    "ComponentFormula{refs[],pairs[],hoistLevel,globalIdx[int]};"
    "ArrayFormula{arrayId,arrayName,comps[],numRefs,refLoc[(int,int)]};"
    "GeometryRecord{arrayId,refKeys[(int,int)],lower[[AffExpr]],"
    "upper[[AffExpr]]};"
    "TileSearchOptions{memLimitElems,innerProcs,syncCost:f64,"
    "transferCost:f64,paramValues[i64],candidates[[i64]],hoistCopies,"
    "parametric};"
    "SizeBinding{ext[i64],loopRange[i64]};"
    "ParametricTilePlan{depth,np,options,analysis,defaultBinding,arrays[],"
    "geometry[],hoist,benefitDelta:f64,volumeCap,onlyBeneficial};"
    "FamilyPlan{haveDeps,deps[],haveTransform,transformedTemplate?:"
    "ProgramBlock,plan,appliedSkews[(int,int,i64)],tilePlan?:"
    "ParametricTilePlan,parametricReason,record?:(CompileOptions,"
    "CompileResult)};";

void expectTag(ByteReader& r, unsigned char tag, const char* what) {
  unsigned char got = r.u8();
  if (got != tag)
    throw SerializeError(std::string("bad tag for ") + what + " (got " + std::to_string(got) +
                         ", want " + std::to_string(tag) + ")");
}

/// Reads an i64 and validates it names a value of an enum with
/// `maxValue + 1` consecutive members starting at 0.
template <typename E>
E readEnum(ByteReader& r, i64 maxValue, const char* what) {
  i64 v = r.i64v();
  if (v < 0 || v > maxValue)
    throw SerializeError(std::string("out-of-range ") + what + " value " + std::to_string(v));
  return static_cast<E>(v);
}

/// Reads a non-negative shape/dimension field with a structural sanity cap.
int readShape(ByteReader& r, const char* what) {
  i64 v = r.i64v();
  if (v < 0 || v > kMaxShape)
    throw SerializeError(std::string("implausible ") + what + " " + std::to_string(v));
  return static_cast<int>(v);
}

template <typename T, typename F>
void writeList(ByteWriter& w, const std::vector<T>& v, F writeElem) {
  w.u8(kTagList);
  w.u64v(v.size());
  for (const T& e : v) writeElem(w, e);
}

template <typename T, typename F>
std::vector<T> readList(ByteReader& r, F readElem) {
  expectTag(r, kTagList, "list");
  u64 n = r.count();
  std::vector<T> out;
  for (u64 i = 0; i < n; ++i) out.push_back(readElem(r));
  return out;
}

void writeI64Vec(ByteWriter& w, const std::vector<i64>& v) {
  w.u8(kTagList);
  w.u64v(v.size());
  for (i64 x : v) w.i64v(x);
}

std::vector<i64> readI64Vec(ByteReader& r) {
  expectTag(r, kTagList, "i64 vector");
  u64 n = r.count(8);
  std::vector<i64> out;
  out.reserve(n);
  for (u64 i = 0; i < n; ++i) out.push_back(r.i64v());
  return out;
}

void writeIntVecOfInt(ByteWriter& w, const std::vector<int>& v) {
  w.u8(kTagList);
  w.u64v(v.size());
  for (int x : v) w.intv(x);
}

std::vector<int> readIntVecOfInt(ByteReader& r) {
  expectTag(r, kTagList, "int vector");
  u64 n = r.count(8);
  std::vector<int> out;
  out.reserve(n);
  for (u64 i = 0; i < n; ++i) out.push_back(r.intv());
  return out;
}

void writeStrVec(ByteWriter& w, const std::vector<std::string>& v) {
  w.u8(kTagList);
  w.u64v(v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> readStrVec(ByteReader& r) {
  expectTag(r, kTagList, "string vector");
  u64 n = r.count();
  std::vector<std::string> out;
  for (u64 i = 0; i < n; ++i) out.push_back(r.str());
  return out;
}

// ---- linalg / poly -------------------------------------------------------

void writeIntMat(ByteWriter& w, const IntMat& m) {
  w.u8(kTagIntMat);
  w.intv(m.rows());
  w.intv(m.cols());
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j) w.i64v(m.at(i, j));
}

IntMat readIntMat(ByteReader& r) {
  expectTag(r, kTagIntMat, "IntMat");
  int rows = readShape(r, "matrix rows");
  int cols = readShape(r, "matrix cols");
  u64 cells = static_cast<u64>(rows) * static_cast<u64>(cols);
  if (cells * 8 > r.remaining()) throw SerializeError("truncated matrix data");
  IntMat m(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) m.at(i, j) = r.i64v();
  return m;
}

void writePoly(ByteWriter& w, const Polyhedron& p) {
  w.u8(kTagPolyhedron);
  w.intv(p.dim());
  w.intv(p.nparam());
  writeIntMat(w, p.equalities());
  writeIntMat(w, p.inequalities());
  // simplify() may have dropped the witness constraint after marking the
  // set empty, so emptiness is carried explicitly.
  w.boolean(p.isEmpty());
}

Polyhedron readPoly(ByteReader& r) {
  expectTag(r, kTagPolyhedron, "Polyhedron");
  int dim = readShape(r, "polyhedron dim");
  int nparam = readShape(r, "polyhedron nparam");
  IntMat eqs = readIntMat(r);
  IntMat ineqs = readIntMat(r);
  bool empty = r.boolean();
  int cols = dim + nparam + 1;
  if ((eqs.rows() > 0 && eqs.cols() != cols) || (ineqs.rows() > 0 && ineqs.cols() != cols))
    throw SerializeError("polyhedron constraint width mismatch");
  Polyhedron p(dim, nparam);
  for (int i = 0; i < eqs.rows(); ++i) p.addEquality(eqs.row(i));
  for (int i = 0; i < ineqs.rows(); ++i) p.addInequality(ineqs.row(i));
  if (empty && !p.isEmpty()) {
    // Original was marked empty by an integer-infeasibility test the
    // rational relaxation cannot reproduce; reinstate with 0 >= 1.
    IntVec contradiction(cols, 0);
    contradiction.back() = -1;
    p.addInequality(contradiction);
  }
  return p;
}

void writeDivExpr(ByteWriter& w, const DivExpr& d) {
  w.u8(kTagDivExpr);
  writeI64Vec(w, d.coeffs);
  w.i64v(d.den);
}

DivExpr readDivExpr(ByteReader& r) {
  expectTag(r, kTagDivExpr, "DivExpr");
  DivExpr d;
  d.coeffs = readI64Vec(r);
  d.den = r.i64v();
  return d;
}

void writeDimBounds(ByteWriter& w, const DimBounds& b) {
  w.u8(kTagDimBounds);
  writeList(w, b.lower, [](ByteWriter& ww, const DivExpr& e) { writeDivExpr(ww, e); });
  writeList(w, b.upper, [](ByteWriter& ww, const DivExpr& e) { writeDivExpr(ww, e); });
}

DimBounds readDimBounds(ByteReader& r) {
  expectTag(r, kTagDimBounds, "DimBounds");
  DimBounds b;
  b.lower = readList<DivExpr>(r, [](ByteReader& rr) { return readDivExpr(rr); });
  b.upper = readList<DivExpr>(r, [](ByteReader& rr) { return readDivExpr(rr); });
  return b;
}

// ---- program IR ----------------------------------------------------------

void writeExpr(ByteWriter& w, const Expr& e) {
  w.u8(kTagExpr);
  w.i64v(static_cast<i64>(e.kind()));
  switch (e.kind()) {
    case Expr::Kind::Const:
      w.f64(e.constValue());
      break;
    case Expr::Kind::Load:
      w.intv(e.accessIndex());
      break;
    case Expr::Kind::Abs:
      writeExpr(w, *e.lhs());
      break;
    default:  // binary
      writeExpr(w, *e.lhs());
      writeExpr(w, *e.rhs());
      break;
  }
}

ExprPtr readExpr(ByteReader& r, int depth) {
  if (depth > kMaxExprDepth) throw SerializeError("expression nesting too deep");
  expectTag(r, kTagExpr, "Expr");
  auto kind = readEnum<Expr::Kind>(r, static_cast<i64>(Expr::Kind::Max), "Expr kind");
  switch (kind) {
    case Expr::Kind::Const:
      return Expr::constant(r.f64());
    case Expr::Kind::Load:
      return Expr::load(r.intv());
    case Expr::Kind::Abs:
      return Expr::abs(readExpr(r, depth + 1));
    default: {
      ExprPtr a = readExpr(r, depth + 1);
      ExprPtr b = readExpr(r, depth + 1);
      switch (kind) {
        case Expr::Kind::Add:
          return Expr::add(std::move(a), std::move(b));
        case Expr::Kind::Sub:
          return Expr::sub(std::move(a), std::move(b));
        case Expr::Kind::Mul:
          return Expr::mul(std::move(a), std::move(b));
        case Expr::Kind::Div:
          return Expr::div(std::move(a), std::move(b));
        case Expr::Kind::Min:
          return Expr::min(std::move(a), std::move(b));
        default:
          return Expr::max(std::move(a), std::move(b));
      }
    }
  }
}

void writeAccess(ByteWriter& w, const Access& a) {
  w.u8(kTagAccess);
  w.intv(a.arrayId);
  writeIntMat(w, a.fn);
  w.boolean(a.isWrite);
}

Access readAccess(ByteReader& r) {
  expectTag(r, kTagAccess, "Access");
  Access a;
  a.arrayId = r.intv();
  a.fn = readIntMat(r);
  a.isWrite = r.boolean();
  return a;
}

void writeStatement(ByteWriter& w, const Statement& s) {
  w.u8(kTagStatement);
  w.str(s.name);
  writePoly(w, s.domain);
  writeList(w, s.accesses, [](ByteWriter& ww, const Access& a) { writeAccess(ww, a); });
  w.intv(s.writeAccess);
  w.boolean(s.rhs != nullptr);
  if (s.rhs) writeExpr(w, *s.rhs);
  writeIntMat(w, s.schedule);
}

Statement readStatement(ByteReader& r) {
  expectTag(r, kTagStatement, "Statement");
  Statement s;
  s.name = r.str();
  s.domain = readPoly(r);
  s.accesses = readList<Access>(r, [](ByteReader& rr) { return readAccess(rr); });
  s.writeAccess = r.intv();
  if (r.boolean()) s.rhs = readExpr(r, 0);
  s.schedule = readIntMat(r);
  return s;
}

void writeArrayDecl(ByteWriter& w, const ArrayDecl& a) {
  w.u8(kTagArrayDecl);
  w.str(a.name);
  writeI64Vec(w, a.extents);
}

ArrayDecl readArrayDecl(ByteReader& r) {
  expectTag(r, kTagArrayDecl, "ArrayDecl");
  ArrayDecl a;
  a.name = r.str();
  a.extents = readI64Vec(r);
  return a;
}

void writeBlock(ByteWriter& w, const ProgramBlock& b) {
  w.u8(kTagProgramBlock);
  w.str(b.name);
  writeStrVec(w, b.paramNames);
  writeList(w, b.arrays, [](ByteWriter& ww, const ArrayDecl& a) { writeArrayDecl(ww, a); });
  writeList(w, b.statements, [](ByteWriter& ww, const Statement& s) { writeStatement(ww, s); });
}

ProgramBlock readBlock(ByteReader& r) {
  expectTag(r, kTagProgramBlock, "ProgramBlock");
  ProgramBlock b;
  b.name = r.str();
  b.paramNames = readStrVec(r);
  b.arrays = readList<ArrayDecl>(r, [](ByteReader& rr) { return readArrayDecl(rr); });
  b.statements = readList<Statement>(r, [](ByteReader& rr) { return readStatement(rr); });
  return b;
}

// ---- loop AST ------------------------------------------------------------

void writeAffExpr(ByteWriter& w, const AffExpr& e) {
  w.u8(kTagAffExpr);
  w.u8(kTagList);
  w.u64v(e.terms.size());
  for (const auto& [name, coeff] : e.terms) {
    w.str(name);
    w.i64v(coeff);
  }
  w.i64v(e.cnst);
  w.i64v(e.den);
}

AffExpr readAffExpr(ByteReader& r) {
  expectTag(r, kTagAffExpr, "AffExpr");
  expectTag(r, kTagList, "AffExpr terms");
  u64 n = r.count();
  AffExpr e;
  for (u64 i = 0; i < n; ++i) {
    std::string name = r.str();
    i64 coeff = r.i64v();
    e.terms.emplace_back(std::move(name), coeff);
  }
  e.cnst = r.i64v();
  e.den = r.i64v();
  return e;
}

void writeAffExprVec(ByteWriter& w, const std::vector<AffExpr>& v) {
  writeList(w, v, [](ByteWriter& ww, const AffExpr& e) { writeAffExpr(ww, e); });
}

std::vector<AffExpr> readAffExprVec(ByteReader& r) {
  return readList<AffExpr>(r, [](ByteReader& rr) { return readAffExpr(rr); });
}

void writeBoundExpr(ByteWriter& w, const BoundExpr& b) {
  w.u8(kTagBoundExpr);
  writeAffExprVec(w, b.parts);
  w.boolean(b.isMax);
}

BoundExpr readBoundExpr(ByteReader& r) {
  expectTag(r, kTagBoundExpr, "BoundExpr");
  BoundExpr b;
  b.parts = readAffExprVec(r);
  b.isMax = r.boolean();
  return b;
}

void writeAst(ByteWriter& w, const AstNode& n) {
  w.u8(kTagAstNode);
  w.i64v(static_cast<i64>(n.kind));
  w.u8(kTagList);
  w.u64v(n.children.size());
  for (const AstPtr& c : n.children) writeAst(w, *c);
  w.str(n.iter);
  writeBoundExpr(w, n.lb);
  writeBoundExpr(w, n.ub);
  w.i64v(n.step);
  w.i64v(static_cast<i64>(n.loopKind));
  writeAffExprVec(w, n.guards);
  w.intv(n.stmtId);
  writeAffExprVec(w, n.callArgs);
  w.intv(n.dstArray);
  w.intv(n.srcArray);
  writeAffExprVec(w, n.dstIndex);
  writeAffExprVec(w, n.srcIndex);
  w.str(n.text);
}

AstPtr readAst(ByteReader& r, int depth) {
  if (depth > kMaxAstDepth) throw SerializeError("AST nesting too deep");
  expectTag(r, kTagAstNode, "AstNode");
  auto node = std::make_unique<AstNode>();
  node->kind = readEnum<AstNode::Kind>(r, static_cast<i64>(AstNode::Kind::Comment), "AST kind");
  expectTag(r, kTagList, "AST children");
  u64 n = r.count();
  for (u64 i = 0; i < n; ++i) node->children.push_back(readAst(r, depth + 1));
  node->iter = r.str();
  node->lb = readBoundExpr(r);
  node->ub = readBoundExpr(r);
  node->step = r.i64v();
  node->loopKind =
      readEnum<LoopKind>(r, static_cast<i64>(LoopKind::ThreadParallel), "loop kind");
  node->guards = readAffExprVec(r);
  node->stmtId = r.intv();
  node->callArgs = readAffExprVec(r);
  node->dstArray = r.intv();
  node->srcArray = r.intv();
  node->dstIndex = readAffExprVec(r);
  node->srcIndex = readAffExprVec(r);
  node->text = r.str();
  return node;
}

void writeLocalBuffer(ByteWriter& w, const LocalBuffer& b) {
  w.u8(kTagLocalBuffer);
  w.str(b.name);
  w.intv(b.ndim);
  writeAffExprVec(w, b.offset);
  writeList(w, b.sizeExpr, [](ByteWriter& ww, const BoundExpr& e) { writeBoundExpr(ww, e); });
  writeI64Vec(w, b.pad);
}

LocalBuffer readLocalBuffer(ByteReader& r) {
  expectTag(r, kTagLocalBuffer, "LocalBuffer");
  LocalBuffer b;
  b.name = r.str();
  b.ndim = r.intv();
  b.offset = readAffExprVec(r);
  b.sizeExpr = readList<BoundExpr>(r, [](ByteReader& rr) { return readBoundExpr(rr); });
  b.pad = readI64Vec(r);
  return b;
}

/// CodeUnit minus `source`, which is a back-pointer the caller rebinds.
void writeUnit(ByteWriter& w, const CodeUnit& u) {
  w.u8(kTagCodeUnit);
  w.str(u.name);
  writeList(w, u.statements, [](ByteWriter& ww, const Statement& s) { writeStatement(ww, s); });
  writeList(w, u.localBuffers,
            [](ByteWriter& ww, const LocalBuffer& b) { writeLocalBuffer(ww, b); });
  w.boolean(u.root != nullptr);
  if (u.root) writeAst(w, *u.root);
}

CodeUnit readUnit(ByteReader& r, const ProgramBlock* source) {
  expectTag(r, kTagCodeUnit, "CodeUnit");
  CodeUnit u;
  u.source = source;
  u.name = r.str();
  u.statements = readList<Statement>(r, [](ByteReader& rr) { return readStatement(rr); });
  u.localBuffers = readList<LocalBuffer>(r, [](ByteReader& rr) { return readLocalBuffer(rr); });
  if (r.boolean()) u.root = readAst(r, 0);
  return u;
}

// ---- analysis products ---------------------------------------------------

void writeDependence(ByteWriter& w, const Dependence& d) {
  w.u8(kTagDependence);
  w.intv(d.srcStmt);
  w.intv(d.dstStmt);
  w.intv(d.srcAccess);
  w.intv(d.dstAccess);
  w.i64v(static_cast<i64>(d.kind));
  writePoly(w, d.poly);
  w.intv(d.srcDim);
  w.intv(d.dstDim);
}

Dependence readDependence(ByteReader& r) {
  expectTag(r, kTagDependence, "Dependence");
  Dependence d;
  d.srcStmt = r.intv();
  d.dstStmt = r.intv();
  d.srcAccess = r.intv();
  d.dstAccess = r.intv();
  d.kind = readEnum<DepKind>(r, static_cast<i64>(DepKind::Output), "dependence kind");
  d.poly = readPoly(r);
  d.srcDim = r.intv();
  d.dstDim = r.intv();
  return d;
}

void writeParallelismPlan(ByteWriter& w, const ParallelismPlan& p) {
  w.u8(kTagParallelismPlan);
  writeIntVecOfInt(w, p.band);
  writeIntVecOfInt(w, p.spaceLoops);
  writeIntVecOfInt(w, p.timeLoops);
  w.boolean(p.needsInterBlockSync);
  writeList(w, p.summaries, [](ByteWriter& ww, const LoopDepSummary& s) {
    ww.u8(kTagLoopDepSummary);
    ww.intv(s.loop);
    ww.i64v(static_cast<i64>(s.sign));
  });
}

ParallelismPlan readParallelismPlan(ByteReader& r) {
  expectTag(r, kTagParallelismPlan, "ParallelismPlan");
  ParallelismPlan p;
  p.band = readIntVecOfInt(r);
  p.spaceLoops = readIntVecOfInt(r);
  p.timeLoops = readIntVecOfInt(r);
  p.needsInterBlockSync = r.boolean();
  p.summaries = readList<LoopDepSummary>(r, [](ByteReader& rr) {
    expectTag(rr, kTagLoopDepSummary, "LoopDepSummary");
    LoopDepSummary s;
    s.loop = rr.intv();
    s.sign = readEnum<SignRange>(rr, static_cast<i64>(SignRange::Mixed), "sign range");
    return s;
  });
  return p;
}

void writeTileEvaluation(ByteWriter& w, const TileEvaluation& e) {
  w.u8(kTagTileEvaluation);
  w.boolean(e.feasible);
  w.str(e.reason);
  w.f64(e.cost);
  w.i64v(e.footprint);
  writeList(w, e.terms, [](ByteWriter& ww, const TileEvaluation::BufferTerm& t) {
    ww.u8(kTagBufferTerm);
    ww.str(t.name);
    ww.i64v(t.occurrences);
    ww.i64v(t.volumeIn);
    ww.i64v(t.volumeOut);
    ww.intv(t.hoistLevel);
  });
}

TileEvaluation readTileEvaluation(ByteReader& r) {
  expectTag(r, kTagTileEvaluation, "TileEvaluation");
  TileEvaluation e;
  e.feasible = r.boolean();
  e.reason = r.str();
  e.cost = r.f64();
  e.footprint = r.i64v();
  e.terms = readList<TileEvaluation::BufferTerm>(r, [](ByteReader& rr) {
    expectTag(rr, kTagBufferTerm, "BufferTerm");
    TileEvaluation::BufferTerm t;
    t.name = rr.str();
    t.occurrences = rr.i64v();
    t.volumeIn = rr.i64v();
    t.volumeOut = rr.i64v();
    t.hoistLevel = rr.intv();
    return t;
  });
  return e;
}

void writeSearchResult(ByteWriter& w, const TileSearchResult& s) {
  w.u8(kTagTileSearchResult);
  writeI64Vec(w, s.subTile);
  writeTileEvaluation(w, s.eval);
  w.intv(s.evaluations);
  w.intv(s.memoHits);
  w.boolean(s.parametric);
  w.boolean(s.familyAdopted);
  w.intv(s.prunedBoxes);
  w.str(s.parametricReason);
  w.f64(s.planBuildMillis);
  w.f64(s.evalMillis);
}

TileSearchResult readSearchResult(ByteReader& r) {
  expectTag(r, kTagTileSearchResult, "TileSearchResult");
  TileSearchResult s;
  s.subTile = readI64Vec(r);
  s.eval = readTileEvaluation(r);
  s.evaluations = r.intv();
  s.memoHits = r.intv();
  s.parametric = r.boolean();
  s.familyAdopted = r.boolean();
  s.prunedBoxes = r.intv();
  s.parametricReason = r.str();
  s.planBuildMillis = r.f64();
  s.evalMillis = r.f64();
  return s;
}

void writeGeometryHint(ByteWriter& w, const GeometryHint& h) {
  w.u8(kTagGeometryHint);
  w.intv(h.arrayId);
  w.u8(kTagList);
  w.u64v(h.refs.size());
  for (const auto& [stmt, access] : h.refs) {
    w.intv(stmt);
    w.intv(access);
  }
  auto writePools = [](ByteWriter& ww, const std::vector<std::vector<AffExpr>>& pools) {
    ww.u8(kTagList);
    ww.u64v(pools.size());
    for (const std::vector<AffExpr>& pool : pools) writeAffExprVec(ww, pool);
  };
  writePools(w, h.lower);
  writePools(w, h.upper);
}

GeometryHint readGeometryHint(ByteReader& r) {
  expectTag(r, kTagGeometryHint, "GeometryHint");
  GeometryHint h;
  h.arrayId = r.intv();
  expectTag(r, kTagList, "hint refs");
  u64 n = r.count();
  for (u64 i = 0; i < n; ++i) {
    int stmt = r.intv();
    int access = r.intv();
    h.refs.emplace_back(stmt, access);
  }
  auto readPools = [](ByteReader& rr) {
    expectTag(rr, kTagList, "hint pools");
    u64 k = rr.count();
    std::vector<std::vector<AffExpr>> pools;
    for (u64 i = 0; i < k; ++i) pools.push_back(readAffExprVec(rr));
    return pools;
  };
  h.lower = readPools(r);
  h.upper = readPools(r);
  return h;
}

void writeSmemOptions(ByteWriter& w, const SmemOptions& o) {
  w.u8(kTagSmemOptions);
  w.f64(o.delta);
  w.i64v(static_cast<i64>(o.partitionMode));
  w.boolean(o.onlyBeneficial);
  w.boolean(o.optimizeCopySets);
  writeIntVecOfInt(w, o.deadAfterBlock);
  writeStrVec(w, o.blockLocalParams);
  w.boolean(o.paramContext.has_value());
  if (o.paramContext) writePoly(w, *o.paramContext);
  writeI64Vec(w, o.sampleParams);
  w.i64v(o.volumeCap);
  writeList(w, o.geometryHints,
            [](ByteWriter& ww, const GeometryHint& h) { writeGeometryHint(ww, h); });
}

SmemOptions readSmemOptions(ByteReader& r) {
  expectTag(r, kTagSmemOptions, "SmemOptions");
  SmemOptions o;
  o.delta = r.f64();
  o.partitionMode =
      readEnum<PartitionMode>(r, static_cast<i64>(PartitionMode::PerArrayUnion), "partition mode");
  o.onlyBeneficial = r.boolean();
  o.optimizeCopySets = r.boolean();
  o.deadAfterBlock = readIntVecOfInt(r);
  o.blockLocalParams = readStrVec(r);
  if (r.boolean()) o.paramContext = readPoly(r);
  o.sampleParams = readI64Vec(r);
  o.volumeCap = r.i64v();
  o.geometryHints = readList<GeometryHint>(r, [](ByteReader& rr) { return readGeometryHint(rr); });
  return o;
}

void writeRefSummary(ByteWriter& w, const RefSummary& s) {
  w.u8(kTagRefSummary);
  w.intv(s.stmt);
  w.intv(s.access);
  w.boolean(s.isWrite);
  w.intv(s.rank);
  w.intv(s.iterDim);
  writePoly(w, s.dataSpace);
}

RefSummary readRefSummary(ByteReader& r) {
  expectTag(r, kTagRefSummary, "RefSummary");
  RefSummary s;
  s.stmt = r.intv();
  s.access = r.intv();
  s.isWrite = r.boolean();
  s.rank = r.intv();
  s.iterDim = r.intv();
  s.dataSpace = readPoly(r);
  return s;
}

void writePartitionPlan(ByteWriter& w, const PartitionPlan& p) {
  w.u8(kTagPartitionPlan);
  w.intv(p.arrayId);
  writeList(w, p.refs, [](ByteWriter& ww, const RefSummary& s) { writeRefSummary(ww, s); });
  w.boolean(p.orderReuse);
  w.f64(p.constReuseFraction);
  w.boolean(p.beneficial);
  w.boolean(p.hasBuffer);
  w.str(p.bufferName);
  writeAffExprVec(w, p.offset);
  writeList(w, p.sizeExpr, [](ByteWriter& ww, const BoundExpr& e) { writeBoundExpr(ww, e); });
}

PartitionPlan readPartitionPlan(ByteReader& r) {
  expectTag(r, kTagPartitionPlan, "PartitionPlan");
  PartitionPlan p;
  p.arrayId = r.intv();
  p.refs = readList<RefSummary>(r, [](ByteReader& rr) { return readRefSummary(rr); });
  p.orderReuse = r.boolean();
  p.constReuseFraction = r.f64();
  p.beneficial = r.boolean();
  p.hasBuffer = r.boolean();
  p.bufferName = r.str();
  p.offset = readAffExprVec(r);
  p.sizeExpr = readList<BoundExpr>(r, [](ByteReader& rr) { return readBoundExpr(rr); });
  return p;
}

/// DataPlan minus `block`, which the caller rebinds.
void writeDataPlan(ByteWriter& w, const DataPlan& p) {
  w.u8(kTagDataPlan);
  writeSmemOptions(w, p.options);
  writeList(w, p.partitions,
            [](ByteWriter& ww, const PartitionPlan& pp) { writePartitionPlan(ww, pp); });
  w.u8(kTagList);
  w.u64v(p.partitionOf.size());
  for (const std::vector<int>& row : p.partitionOf) writeIntVecOfInt(w, row);
}

DataPlan readDataPlan(ByteReader& r, const ProgramBlock* block) {
  expectTag(r, kTagDataPlan, "DataPlan");
  DataPlan p;
  p.block = block;
  p.options = readSmemOptions(r);
  p.partitions = readList<PartitionPlan>(r, [](ByteReader& rr) { return readPartitionPlan(rr); });
  expectTag(r, kTagList, "partitionOf");
  u64 n = r.count();
  for (u64 i = 0; i < n; ++i) p.partitionOf.push_back(readIntVecOfInt(r));
  return p;
}

void writeTileAnalysis(ByteWriter& w, const TileAnalysis& a) {
  w.u8(kTagTileAnalysis);
  w.boolean(a.tileBlock != nullptr);
  if (a.tileBlock) writeBlock(w, *a.tileBlock);
  writeDataPlan(w, a.plan);
  writeStrVec(w, a.originParams);
  writeStrVec(w, a.tileParams);
  writeList(w, a.loopBounds, [](ByteWriter& ww, const DimBounds& b) { writeDimBounds(ww, b); });
  writeI64Vec(w, a.subTile);
  w.intv(a.depth);
  writeIntVecOfInt(w, a.hoistLevel);
}

TileAnalysis readTileAnalysis(ByteReader& r) {
  expectTag(r, kTagTileAnalysis, "TileAnalysis");
  TileAnalysis a;
  if (r.boolean()) a.tileBlock = std::make_unique<ProgramBlock>(readBlock(r));
  a.plan = readDataPlan(r, a.tileBlock.get());
  a.originParams = readStrVec(r);
  a.tileParams = readStrVec(r);
  a.loopBounds = readList<DimBounds>(r, [](ByteReader& rr) { return readDimBounds(rr); });
  a.subTile = readI64Vec(r);
  a.depth = r.intv();
  a.hoistLevel = readIntVecOfInt(r);
  return a;
}

void writeTiledKernel(ByteWriter& w, const TiledKernel& k) {
  w.u8(kTagTiledKernel);
  writeTileAnalysis(w, k.analysis);
  writeUnit(w, k.unit);
  writeIntVecOfInt(w, k.spaceLoops);
  writeI64Vec(w, k.blockTileSizes);
  w.u8(kTagList);
  w.u64v(k.spaceLoopRange.size());
  for (const auto& [lb, ub] : k.spaceLoopRange) {
    writeBoundExpr(w, lb);
    writeBoundExpr(w, ub);
  }
}

TiledKernel readTiledKernel(ByteReader& r) {
  expectTag(r, kTagTiledKernel, "TiledKernel");
  TiledKernel k;
  k.analysis = readTileAnalysis(r);
  k.unit = readUnit(r, k.analysis.tileBlock.get());
  k.spaceLoops = readIntVecOfInt(r);
  k.blockTileSizes = readI64Vec(r);
  expectTag(r, kTagList, "spaceLoopRange");
  u64 n = r.count();
  for (u64 i = 0; i < n; ++i) {
    BoundExpr lb = readBoundExpr(r);
    BoundExpr ub = readBoundExpr(r);
    k.spaceLoopRange.emplace_back(std::move(lb), std::move(ub));
  }
  return k;
}

// ---- driver records ------------------------------------------------------

void writeDiagnostic(ByteWriter& w, const Diagnostic& d) {
  w.u8(kTagDiagnostic);
  w.i64v(static_cast<i64>(d.severity));
  w.str(d.stage);
  w.str(d.message);
}

Diagnostic readDiagnostic(ByteReader& r) {
  expectTag(r, kTagDiagnostic, "Diagnostic");
  Diagnostic d;
  d.severity = readEnum<Severity>(r, static_cast<i64>(Severity::Error), "severity");
  d.stage = r.str();
  d.message = r.str();
  return d;
}

void writePassTiming(ByteWriter& w, const PassTiming& t) {
  w.u8(kTagPassTiming);
  w.str(t.pass);
  w.f64(t.millis);
  w.boolean(t.ran);
  w.boolean(t.skipped);
}

PassTiming readPassTiming(ByteReader& r) {
  expectTag(r, kTagPassTiming, "PassTiming");
  PassTiming t;
  t.pass = r.str();
  t.millis = r.f64();
  t.ran = r.boolean();
  t.skipped = r.boolean();
  return t;
}

// Back-pointer discriminators for DataPlan::block / CodeUnit::source inside
// PipelineProducts (mirrors the remapBlock logic of clone()).
enum : unsigned char { kRefNone = 0, kRefInput = 1, kRefTransformed = 2 };

unsigned char blockRefOf(const PipelineProducts& p, const ProgramBlock* ptr) {
  if (ptr == nullptr) return kRefNone;
  if (ptr == p.input.get()) return kRefInput;
  if (ptr == p.transformed.get()) return kRefTransformed;
  return kRefNone;  // foreign pointer: not representable, drop like clone()
}

const ProgramBlock* resolveBlockRef(const PipelineProducts& p, unsigned char ref) {
  switch (ref) {
    case kRefInput:
      return p.input.get();
    case kRefTransformed:
      return p.transformed.get();
    case kRefNone:
      return nullptr;
    default:
      throw SerializeError("bad block back-reference " + std::to_string(ref));
  }
}

// SymExpr codec (defined with the parametric-plan codecs below; the buffer
// layout reuses it for its extent/offset/footprint formulas).
void writeSymExpr(ByteWriter& w, const SymPtr& e);
SymPtr readSymExpr(ByteReader& r, int depth);

void writeBufferLayoutEntry(ByteWriter& w, const BufferLayoutEntry& e) {
  w.u8(kTagBufferLayoutEntry);
  w.str(e.name);
  writeList(w, e.extent, [](ByteWriter& ww, const SymPtr& s) { writeSymExpr(ww, s); });
  w.i64v(e.rowPadElems);
  writeSymExpr(w, e.offsetElems);
  writeSymExpr(w, e.footprintElems);
}

BufferLayoutEntry readBufferLayoutEntry(ByteReader& r) {
  expectTag(r, kTagBufferLayoutEntry, "BufferLayoutEntry");
  BufferLayoutEntry e;
  e.name = r.str();
  e.extent = readList<SymPtr>(r, [](ByteReader& rr) { return readSymExpr(rr, 0); });
  e.rowPadElems = r.i64v();
  e.offsetElems = readSymExpr(r, 0);
  e.footprintElems = readSymExpr(r, 0);
  return e;
}

void writeBufferLayout(ByteWriter& w, const BufferLayout& l) {
  w.u8(kTagBufferLayout);
  w.i64v(l.bank.banks);
  w.i64v(l.bank.widthBytes);
  w.i64v(l.elementBytes);
  w.boolean(l.padded);
  w.str(l.note);
  writeList(w, l.buffers,
            [](ByteWriter& ww, const BufferLayoutEntry& e) { writeBufferLayoutEntry(ww, e); });
  w.boolean(l.totalElems != nullptr);
  if (l.totalElems) writeSymExpr(w, l.totalElems);
}

BufferLayout readBufferLayout(ByteReader& r) {
  expectTag(r, kTagBufferLayout, "BufferLayout");
  BufferLayout l;
  l.bank.banks = r.i64v();
  l.bank.widthBytes = r.i64v();
  l.elementBytes = r.i64v();
  l.padded = r.boolean();
  l.note = r.str();
  l.buffers =
      readList<BufferLayoutEntry>(r, [](ByteReader& rr) { return readBufferLayoutEntry(rr); });
  if (r.boolean()) l.totalElems = readSymExpr(r, 0);
  return l;
}

void writeBindSlot(ByteWriter& w, const BindSlot& s) {
  w.u8(kTagBindSlot);
  w.str(s.name);
  w.i64v(static_cast<i64>(s.kind));
  w.intv(s.a);
  w.intv(s.b);
  w.boolean(s.formula != nullptr);
  if (s.formula != nullptr) writeSymExpr(w, s.formula);
}

BindSlot readBindSlot(ByteReader& r) {
  expectTag(r, kTagBindSlot, "BindSlot");
  BindSlot s;
  s.name = r.str();
  s.kind = readEnum<BindSlot::Kind>(r, static_cast<i64>(BindSlot::Kind::Formula),
                                    "BindSlot::Kind");
  s.a = r.intv();
  s.b = r.intv();
  if (r.boolean()) s.formula = readSymExpr(r, 0);
  // A Formula slot with no formula would make the binder's argument fill
  // reject every request; hostile bytes must surface here instead.
  if (s.kind == BindSlot::Kind::Formula && s.formula == nullptr)
    throw SerializeError("formula bind slot without a formula");
  return s;
}

void writeFamilyGuard(ByteWriter& w, const FamilyGuard& g) {
  w.u8(kTagFamilyGuard);
  w.i64v(static_cast<i64>(g.kind));
  w.boolean(g.lhs != nullptr);
  if (g.lhs != nullptr) writeSymExpr(w, g.lhs);
  w.boolean(g.rhs != nullptr);
  if (g.rhs != nullptr) writeSymExpr(w, g.rhs);
  w.intv(g.bufferIndex);
  w.intv(g.dim);
  w.i64v(g.expected);
  w.str(g.what);
}

FamilyGuard readFamilyGuard(ByteReader& r) {
  expectTag(r, kTagFamilyGuard, "FamilyGuard");
  FamilyGuard g;
  g.kind = readEnum<FamilyGuard::Kind>(r, static_cast<i64>(FamilyGuard::Kind::BufExtentEq),
                                       "FamilyGuard::Kind");
  if (r.boolean()) g.lhs = readSymExpr(r, 0);
  if (r.boolean()) g.rhs = readSymExpr(r, 0);
  g.bufferIndex = r.intv();
  g.dim = r.intv();
  g.expected = r.i64v();
  g.what = r.str();
  // Symbolic guards without both sides could never be evaluated; reject the
  // bytes rather than admit a guard the binder must treat as violated.
  if (g.kind != FamilyGuard::Kind::BufExtentEq && (g.lhs == nullptr || g.rhs == nullptr))
    throw SerializeError("symbolic family guard missing an operand");
  return g;
}

void writeArtifactInfo(ByteWriter& w, const ArtifactInfo& info) {
  w.u8(kTagArtifactInfo);
  w.boolean(info.sizeGeneric);
  w.str(info.note);
  writeList(w, info.slots, [](ByteWriter& ww, const BindSlot& s) { writeBindSlot(ww, s); });
  writeList(w, info.guards,
            [](ByteWriter& ww, const FamilyGuard& g) { writeFamilyGuard(ww, g); });
}

ArtifactInfo readArtifactInfo(ByteReader& r) {
  expectTag(r, kTagArtifactInfo, "ArtifactInfo");
  ArtifactInfo info;
  info.sizeGeneric = r.boolean();
  info.note = r.str();
  info.slots = readList<BindSlot>(r, [](ByteReader& rr) { return readBindSlot(rr); });
  info.guards = readList<FamilyGuard>(r, [](ByteReader& rr) { return readFamilyGuard(rr); });
  return info;
}

void writeProducts(ByteWriter& w, const PipelineProducts& p) {
  w.u8(kTagPipelineProducts);
  w.boolean(p.input != nullptr);
  if (p.input) writeBlock(w, *p.input);
  w.boolean(p.transformed != nullptr);
  if (p.transformed) writeBlock(w, *p.transformed);
  writeList(w, p.deps, [](ByteWriter& ww, const Dependence& d) { writeDependence(ww, d); });
  w.boolean(p.haveDeps);
  writeParallelismPlan(w, p.plan);
  w.boolean(p.havePlan);
  w.u8(kTagList);
  w.u64v(p.appliedSkews.size());
  for (const auto& [target, srcFactor] : p.appliedSkews) {
    w.intv(target);
    w.intv(srcFactor.first);
    w.i64v(srcFactor.second);
  }
  writeSearchResult(w, p.search);
  writeList(w, p.geometryHints,
            [](ByteWriter& ww, const GeometryHint& h) { writeGeometryHint(ww, h); });
  w.boolean(p.kernel.has_value());
  if (p.kernel) writeTiledKernel(w, *p.kernel);
  w.boolean(p.scratchpadUnit.has_value());
  if (p.scratchpadUnit) {
    w.u8(blockRefOf(p, p.scratchpadUnit->source));
    writeUnit(w, *p.scratchpadUnit);
  }
  w.boolean(p.blockPlan.has_value());
  if (p.blockPlan) {
    w.u8(blockRefOf(p, p.blockPlan->block));
    writeDataPlan(w, *p.blockPlan);
  }
  w.boolean(p.bufferLayout.has_value());
  if (p.bufferLayout) writeBufferLayout(w, *p.bufferLayout);
  w.boolean(p.artifactInfo.has_value());
  if (p.artifactInfo) writeArtifactInfo(w, *p.artifactInfo);
  w.str(p.artifact);
}

PipelineProducts readProducts(ByteReader& r) {
  expectTag(r, kTagPipelineProducts, "PipelineProducts");
  PipelineProducts p;
  if (r.boolean()) p.input = std::make_unique<ProgramBlock>(readBlock(r));
  if (r.boolean()) p.transformed = std::make_unique<ProgramBlock>(readBlock(r));
  p.deps = readList<Dependence>(r, [](ByteReader& rr) { return readDependence(rr); });
  p.haveDeps = r.boolean();
  p.plan = readParallelismPlan(r);
  p.havePlan = r.boolean();
  expectTag(r, kTagList, "appliedSkews");
  u64 nskews = r.count();
  for (u64 i = 0; i < nskews; ++i) {
    int target = r.intv();
    int source = r.intv();
    i64 factor = r.i64v();
    p.appliedSkews.emplace_back(target, std::make_pair(source, factor));
  }
  p.search = readSearchResult(r);
  p.geometryHints =
      readList<GeometryHint>(r, [](ByteReader& rr) { return readGeometryHint(rr); });
  if (r.boolean()) p.kernel.emplace(readTiledKernel(r));
  if (r.boolean()) {
    unsigned char srcRef = r.u8();
    p.scratchpadUnit.emplace(readUnit(r, resolveBlockRef(p, srcRef)));
  }
  if (r.boolean()) {
    unsigned char blockRef = r.u8();
    p.blockPlan.emplace(readDataPlan(r, resolveBlockRef(p, blockRef)));
  }
  if (r.boolean()) p.bufferLayout.emplace(readBufferLayout(r));
  if (r.boolean()) p.artifactInfo.emplace(readArtifactInfo(r));
  p.artifact = r.str();
  return p;
}


// ---- symbolic expressions (parametric family plans) ----------------------

void writeSymExpr(ByteWriter& w, const SymPtr& e) {
  if (e == nullptr) throw SerializeError("null symbolic expression");
  w.u8(kTagSymExpr);
  w.i64v(static_cast<i64>(e->kind()));
  switch (e->kind()) {
    case SymExpr::Kind::Const:
      w.i64v(e->constValue());
      break;
    case SymExpr::Kind::Param:
      w.intv(e->paramIndex());
      w.str(e->paramName());
      break;
    default:
      writeSymExpr(w, e->lhs());
      writeSymExpr(w, e->rhs());
      break;
  }
}

SymPtr readSymExpr(ByteReader& r, int depth) {
  if (depth > kMaxExprDepth) throw SerializeError("symbolic expression nesting too deep");
  expectTag(r, kTagSymExpr, "SymExpr");
  auto kind = readEnum<SymExpr::Kind>(r, static_cast<i64>(SymExpr::Kind::Max), "SymExpr kind");
  switch (kind) {
    case SymExpr::Kind::Const:
      return SymExpr::constant(r.i64v());
    case SymExpr::Kind::Param: {
      int idx = readShape(r, "SymExpr param index");
      return SymExpr::param(idx, r.str());
    }
    default: {
      SymPtr a = readSymExpr(r, depth + 1);
      SymPtr b = readSymExpr(r, depth + 1);
      // Every divisor a compiled plan produces is a positive constant
      // (compileDiv wraps DivExpr::den); anything else would only surface
      // as an eval-time checked-arithmetic abort, so reject it here.
      if ((kind == SymExpr::Kind::FloorDiv || kind == SymExpr::Kind::CeilDiv) &&
          (b->kind() != SymExpr::Kind::Const || b->constValue() <= 0))
        throw SerializeError("symbolic divisor must be a positive constant");
      // The factories fold constant operands with checked (aborting)
      // arithmetic; pre-validate so corrupt constants throw instead.
      if (a->kind() == SymExpr::Kind::Const && b->kind() == SymExpr::Kind::Const) {
        const i128 x = a->constValue();
        const i128 y = b->constValue();
        i128 folded = 0;
        if (kind == SymExpr::Kind::Add) folded = x + y;
        if (kind == SymExpr::Kind::Mul) folded = x * y;
        if (folded < static_cast<i128>(INT64_MIN) || folded > static_cast<i128>(INT64_MAX))
          throw SerializeError("symbolic constant overflow");
      }
      switch (kind) {
        case SymExpr::Kind::Add:
          return SymExpr::add(std::move(a), std::move(b));
        case SymExpr::Kind::Mul:
          return SymExpr::mul(std::move(a), std::move(b));
        case SymExpr::Kind::FloorDiv:
          return SymExpr::floorDiv(std::move(a), std::move(b));
        case SymExpr::Kind::CeilDiv:
          return SymExpr::ceilDiv(std::move(a), std::move(b));
        case SymExpr::Kind::Min:
          return SymExpr::min(std::move(a), std::move(b));
        default:
          return SymExpr::max(std::move(a), std::move(b));
      }
    }
  }
}

void writeSymBox(ByteWriter& w, const std::vector<std::pair<SymPtr, SymPtr>>& box) {
  w.u8(kTagList);
  w.u64v(box.size());
  for (const auto& [lo, hi] : box) {
    writeSymExpr(w, lo);
    writeSymExpr(w, hi);
  }
}

std::vector<std::pair<SymPtr, SymPtr>> readSymBox(ByteReader& r) {
  expectTag(r, kTagList, "symbolic box");
  u64 n = r.count();
  std::vector<std::pair<SymPtr, SymPtr>> box;
  for (u64 i = 0; i < n; ++i) {
    SymPtr lo = readSymExpr(r, 0);
    SymPtr hi = readSymExpr(r, 0);
    box.emplace_back(std::move(lo), std::move(hi));
  }
  return box;
}

void writeIntPairVec(ByteWriter& w, const std::vector<std::pair<int, int>>& v) {
  w.u8(kTagList);
  w.u64v(v.size());
  for (const auto& [a, b] : v) {
    w.intv(a);
    w.intv(b);
  }
}

std::vector<std::pair<int, int>> readIntPairVec(ByteReader& r) {
  expectTag(r, kTagList, "int pair vector");
  u64 n = r.count();
  std::vector<std::pair<int, int>> out;
  for (u64 i = 0; i < n; ++i) {
    int a = r.intv();
    int b = r.intv();
    out.emplace_back(a, b);
  }
  return out;
}

void writeBoolVec(ByteWriter& w, const std::vector<bool>& v) {
  w.u8(kTagList);
  w.u64v(v.size());
  for (bool b : v) w.boolean(b);
}

std::vector<bool> readBoolVec(ByteReader& r) {
  expectTag(r, kTagList, "bool vector");
  u64 n = r.count();
  std::vector<bool> out;
  for (u64 i = 0; i < n; ++i) out.push_back(r.boolean());
  return out;
}

void writeTileSearchOptions(ByteWriter& w, const TileSearchOptions& o) {
  w.u8(kTagTileSearchOptions);
  w.i64v(o.memLimitElems);
  w.i64v(o.innerProcs);
  w.f64(o.syncCost);
  w.f64(o.transferCost);
  writeI64Vec(w, o.paramValues);
  w.u8(kTagList);
  w.u64v(o.candidates.size());
  for (const std::vector<i64>& v : o.candidates) writeI64Vec(w, v);
  w.boolean(o.hoistCopies);
  w.boolean(o.parametric);
}

TileSearchOptions readTileSearchOptions(ByteReader& r) {
  expectTag(r, kTagTileSearchOptions, "TileSearchOptions");
  TileSearchOptions o;
  o.memLimitElems = r.i64v();
  o.innerProcs = r.i64v();
  o.syncCost = r.f64();
  o.transferCost = r.f64();
  o.paramValues = readI64Vec(r);
  expectTag(r, kTagList, "candidate ladders");
  u64 n = r.count();
  for (u64 i = 0; i < n; ++i) o.candidates.push_back(readI64Vec(r));
  o.hoistCopies = r.boolean();
  o.parametric = r.boolean();
  return o;
}

}  // namespace

// ---- public API ----------------------------------------------------------

u64 digestBytes(std::string_view bytes) {
  Hasher h;  // the one FNV-1a implementation, shared with the cache keys
  h.bytes(bytes.data(), bytes.size());
  return h.digest();
}

u64 serializeSchemaFingerprint() {
  static const u64 fp = digestBytes(kSchemaManifest);
  return fp;
}

void ByteWriter::u32v(u32 v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<unsigned char>(v >> (8 * i)));
}

void ByteWriter::u64v(u64 v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<unsigned char>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  u64 bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64v(bits);
}

void ByteWriter::str(const std::string& s) {
  u64v(s.size());
  buf_.append(s);
}

void ByteWriter::bytes(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

const unsigned char* ByteReader::need(size_t n) {
  if (n > remaining()) throw SerializeError("truncated input (" + std::to_string(n) +
                                            " bytes wanted, " + std::to_string(remaining()) +
                                            " left)");
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

unsigned char ByteReader::u8() { return *need(1); }

u32 ByteReader::u32v() {
  const unsigned char* p = need(4);
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}

u64 ByteReader::u64v() {
  const unsigned char* p = need(8);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

int ByteReader::intv() {
  i64 v = i64v();
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
    throw SerializeError("int field out of range: " + std::to_string(v));
  return static_cast<int>(v);
}

bool ByteReader::boolean() {
  unsigned char v = u8();
  if (v > 1) throw SerializeError("bad boolean byte " + std::to_string(v));
  return v == 1;
}

double ByteReader::f64() {
  u64 bits = u64v();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  u64 n = count();
  const unsigned char* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

u64 ByteReader::count(u64 minBytesPerElement) {
  u64 n = u64v();
  if (minBytesPerElement > 0 && n > remaining() / minBytesPerElement)
    throw SerializeError("count " + std::to_string(n) + " exceeds remaining input");
  return n;
}

void ByteReader::expectEnd() const {
  if (!atEnd())
    throw SerializeError("trailing garbage: " + std::to_string(remaining()) + " bytes");
}

// Body writers shared between the standalone entry points and the family
// record (a CompileResult + its CompileOptions embedded in a .emmfam).
// CompileResult::artifactBound/boundArgs are transport-only by contract and
// never serialized.
static void writeCompileResultInto(ByteWriter& w, const CompileResult& result) {
  w.u8(kTagCompileResult);
  writeProducts(w, result);
  w.boolean(result.ok);
  writeList(w, result.diagnostics,
            [](ByteWriter& ww, const Diagnostic& d) { writeDiagnostic(ww, d); });
  writeList(w, result.timings, [](ByteWriter& ww, const PassTiming& t) { writePassTiming(ww, t); });
}

static CompileResult readCompileResultFrom(ByteReader& r) {
  expectTag(r, kTagCompileResult, "CompileResult");
  CompileResult out;
  static_cast<PipelineProducts&>(out) = readProducts(r);
  out.ok = r.boolean();
  out.diagnostics = readList<Diagnostic>(r, [](ByteReader& rr) { return readDiagnostic(rr); });
  out.timings = readList<PassTiming>(r, [](ByteReader& rr) { return readPassTiming(rr); });
  return out;
}

std::string serializeCompileResult(const CompileResult& result) {
  ByteWriter w;
  writeCompileResultInto(w, result);
  return w.take();
}

CompileResult deserializeCompileResult(std::string_view bytes) {
  ByteReader r(bytes);
  try {
    CompileResult out = readCompileResultFrom(r);
    r.expectEnd();
    return out;
  } catch (const ApiError& e) {
    // Reconstruction runs real IR code (polyhedra, symbolic formulas,
    // checked arithmetic) whose preconditions hostile bytes can violate;
    // every such failure is a decode failure, never an escape.
    throw SerializeError(std::string("compile result decode failed: ") + e.what());
  }
}

std::string serializeProgramBlock(const ProgramBlock& block) {
  ByteWriter w;
  writeBlock(w, block);
  return w.take();
}

static void writeCompileOptionsInto(ByteWriter& w, const CompileOptions& o) {
  w.u8(kTagCompileOptions);
  writeI64Vec(w, o.paramValues);
  w.i64v(static_cast<i64>(o.mode));
  w.f64(o.delta);
  w.i64v(static_cast<i64>(o.partitionMode));
  w.boolean(o.stageEverything);
  w.boolean(o.optimizeCopySets);
  writeI64Vec(w, o.subTile);
  writeI64Vec(w, o.blockTile);
  writeI64Vec(w, o.threadTile);
  w.boolean(o.hoistCopies);
  w.boolean(o.useScratchpad);
  w.i64v(static_cast<i64>(o.searchMode));
  w.i64v(o.memLimitBytes);
  w.i64v(o.elementBytes);
  w.i64v(o.innerProcs);
  w.f64(o.syncCost);
  w.f64(o.transferCost);
  w.u8(kTagList);
  w.u64v(o.tileCandidates.size());
  for (const std::vector<i64>& v : o.tileCandidates) writeI64Vec(w, v);
  w.boolean(o.parametricTileAnalysis);
  w.boolean(o.packBuffers);
  w.i64v(o.smemBanks);
  w.i64v(o.smemBankWidthBytes);
  w.str(o.backendName);
  w.str(o.kernelName);
  w.str(o.elementType);
  w.intv(o.numBoundParams);
  w.boolean(o.doubleBuffer);
  w.boolean(o.runtimeSizeArgs);
}

std::string serializeCompileOptions(const CompileOptions& o) {
  ByteWriter w;
  writeCompileOptionsInto(w, o);
  return w.take();
}

ProgramBlock deserializeProgramBlock(std::string_view bytes) {
  ByteReader r(bytes);
  try {
    ProgramBlock b = readBlock(r);
    r.expectEnd();
    b.validate();
    return b;
  } catch (const ApiError& e) {
    throw SerializeError(std::string("program block decode failed: ") + e.what());
  }
}

static CompileOptions readCompileOptionsFrom(ByteReader& r) {
  expectTag(r, kTagCompileOptions, "CompileOptions");
  CompileOptions o;
  o.paramValues = readI64Vec(r);
  o.mode = readEnum<PipelineMode>(r, static_cast<i64>(PipelineMode::ScratchpadOnly),
                                  "PipelineMode");
  o.delta = r.f64();
  o.partitionMode = readEnum<PartitionMode>(r, static_cast<i64>(PartitionMode::PerArrayUnion),
                                            "PartitionMode");
  o.stageEverything = r.boolean();
  o.optimizeCopySets = r.boolean();
  o.subTile = readI64Vec(r);
  o.blockTile = readI64Vec(r);
  o.threadTile = readI64Vec(r);
  o.hoistCopies = r.boolean();
  o.useScratchpad = r.boolean();
  o.searchMode = readEnum<TileSearchMode>(r, static_cast<i64>(TileSearchMode::Exhaustive),
                                          "TileSearchMode");
  o.memLimitBytes = r.i64v();
  o.elementBytes = r.i64v();
  o.innerProcs = r.i64v();
  o.syncCost = r.f64();
  o.transferCost = r.f64();
  expectTag(r, kTagList, "tile candidate pools");
  u64 pools = r.count();
  for (u64 i = 0; i < pools; ++i) o.tileCandidates.push_back(readI64Vec(r));
  o.parametricTileAnalysis = r.boolean();
  o.packBuffers = r.boolean();
  o.smemBanks = r.i64v();
  o.smemBankWidthBytes = r.i64v();
  o.backendName = r.str();
  o.kernelName = r.str();
  o.elementType = r.str();
  o.numBoundParams = r.intv();
  o.doubleBuffer = r.boolean();
  o.runtimeSizeArgs = r.boolean();
  return o;
}

CompileOptions deserializeCompileOptions(std::string_view bytes) {
  ByteReader r(bytes);
  CompileOptions o = readCompileOptionsFrom(r);
  r.expectEnd();
  return o;
}

// ---- parametric family plans ---------------------------------------------
// serializeParametricPlanBody / deserializeParametricPlanBody are friends of
// ParametricTilePlan (parametric_plan.h): the plan's compiled formulas are
// private by design and only the wire format reaches into them.

void serializeParametricPlanBody(ByteWriter& w, const ParametricTilePlan& plan) {
  w.u8(kTagParametricPlan);
  w.intv(plan.depth_);
  w.intv(plan.np_);
  writeTileSearchOptions(w, plan.options_);
  writeTileAnalysis(w, plan.analysis_);
  w.u8(kTagSizeBinding);
  writeI64Vec(w, plan.defaultBinding_.ext);
  writeI64Vec(w, plan.defaultBinding_.loopRange);
  w.u8(kTagList);
  w.u64v(plan.arrays_.size());
  for (const auto& af : plan.arrays_) {
    w.u8(kTagArrayFormula);
    w.intv(af.arrayId);
    w.str(af.arrayName);
    w.u8(kTagList);
    w.u64v(af.comps.size());
    for (const auto& comp : af.comps) {
      w.u8(kTagComponentFormula);
      w.u8(kTagList);
      w.u64v(comp.refs.size());
      for (const auto& rf : comp.refs) {
        w.u8(kTagRefFormula);
        w.intv(rf.key.first);
        w.intv(rf.key.second);
        w.boolean(rf.isWrite);
        w.boolean(rf.orderReuse);
        writeSymBox(w, rf.ctxBox);
        writeSymBox(w, rf.rawBox);
        writeBoolVec(w, rf.usesOrigin);
      }
      w.u8(kTagList);
      w.u64v(comp.pairs.size());
      for (const auto& pred : comp.pairs) {
        w.u8(kTagPairPredicate);
        w.boolean(pred.always);
        w.boolean(pred.never);
        writePoly(w, pred.cond);
      }
      w.intv(comp.hoistLevel);
      writeIntVecOfInt(w, comp.globalIdx);
    }
    w.intv(af.numRefs);
    writeIntPairVec(w, af.refLoc);
  }
  w.u8(kTagList);
  w.u64v(plan.geometry_.size());
  for (const auto& g : plan.geometry_) {
    w.u8(kTagGeometryRecord);
    w.intv(g.arrayId);
    writeIntPairVec(w, g.refKeys);
    auto writePools = [](ByteWriter& ww, const std::vector<std::vector<AffExpr>>& pools) {
      ww.u8(kTagList);
      ww.u64v(pools.size());
      for (const std::vector<AffExpr>& pool : pools) writeAffExprVec(ww, pool);
    };
    writePools(w, g.lower);
    writePools(w, g.upper);
  }
  w.boolean(plan.hoist_);
  w.f64(plan.benefitDelta_);
  w.i64v(plan.volumeCap_);
  w.boolean(plan.onlyBeneficial_);
}

ParametricTilePlan deserializeParametricPlanBody(ByteReader& r) {
  expectTag(r, kTagParametricPlan, "ParametricTilePlan");
  ParametricTilePlan plan;
  plan.depth_ = readShape(r, "plan depth");
  plan.np_ = readShape(r, "plan size-parameter count");
  plan.options_ = readTileSearchOptions(r);
  plan.analysis_ = readTileAnalysis(r);
  expectTag(r, kTagSizeBinding, "SizeBinding");
  plan.defaultBinding_.ext = readI64Vec(r);
  plan.defaultBinding_.loopRange = readI64Vec(r);
  expectTag(r, kTagList, "array formulas");
  u64 narrays = r.count();
  for (u64 i = 0; i < narrays; ++i) {
    expectTag(r, kTagArrayFormula, "ArrayFormula");
    ParametricTilePlan::ArrayFormula af;
    af.arrayId = r.intv();
    af.arrayName = r.str();
    expectTag(r, kTagList, "component formulas");
    u64 ncomps = r.count();
    for (u64 c = 0; c < ncomps; ++c) {
      expectTag(r, kTagComponentFormula, "ComponentFormula");
      ParametricTilePlan::ComponentFormula comp;
      expectTag(r, kTagList, "reference formulas");
      u64 nrefs = r.count();
      for (u64 q = 0; q < nrefs; ++q) {
        expectTag(r, kTagRefFormula, "RefFormula");
        ParametricTilePlan::RefFormula rf;
        rf.key.first = r.intv();
        rf.key.second = r.intv();
        rf.isWrite = r.boolean();
        rf.orderReuse = r.boolean();
        rf.ctxBox = readSymBox(r);
        rf.rawBox = readSymBox(r);
        rf.usesOrigin = readBoolVec(r);
        comp.refs.push_back(std::move(rf));
      }
      expectTag(r, kTagList, "pair predicates");
      u64 npairs = r.count();
      if (npairs != nrefs * nrefs)
        throw SerializeError("pair predicate count mismatch");
      for (u64 q = 0; q < npairs; ++q) {
        expectTag(r, kTagPairPredicate, "PairPredicate");
        ParametricTilePlan::PairPredicate pred;
        pred.always = r.boolean();
        pred.never = r.boolean();
        pred.cond = readPoly(r);
        comp.pairs.push_back(std::move(pred));
      }
      comp.hoistLevel = r.intv();
      comp.globalIdx = readIntVecOfInt(r);
      if (comp.globalIdx.size() != comp.refs.size())
        throw SerializeError("component global index arity mismatch");
      // evaluate()/footprintInterval() index member 0's boxes, so every
      // component needs at least one reference and congruent shapes; ragged
      // or empty components would read out of bounds.
      if (comp.refs.empty()) throw SerializeError("empty component formula");
      for (const ParametricTilePlan::RefFormula& rf : comp.refs) {
        if (rf.ctxBox.size() != comp.refs[0].ctxBox.size() ||
            rf.rawBox.size() != comp.refs[0].rawBox.size())
          throw SerializeError("ragged reference box dimensions");
        if (rf.usesOrigin.size() != static_cast<size_t>(plan.depth_))
          throw SerializeError("reference origin-bit arity mismatch");
      }
      af.comps.push_back(std::move(comp));
    }
    af.numRefs = readShape(r, "array reference count");
    af.refLoc = readIntPairVec(r);
    if (af.refLoc.size() != static_cast<size_t>(af.numRefs))
      throw SerializeError("array reference location arity mismatch");
    for (const auto& [ci, li] : af.refLoc) {
      if (ci < 0 || static_cast<size_t>(ci) >= af.comps.size() || li < 0 ||
          static_cast<size_t>(li) >= af.comps[ci].refs.size())
        throw SerializeError("array reference location out of range");
    }
    // globalIdx must be the exact inverse of refLoc: evaluate() feeds it
    // into an unchecked union-find over numRefs members, so any other
    // value is memory-unsafe, not just wrong.
    for (size_t ci = 0; ci < af.comps.size(); ++ci) {
      const std::vector<int>& gidx = af.comps[ci].globalIdx;
      for (size_t li = 0; li < gidx.size(); ++li) {
        const int g = gidx[li];
        if (g < 0 || g >= af.numRefs ||
            af.refLoc[g] != std::make_pair(static_cast<int>(ci), static_cast<int>(li)))
          throw SerializeError("component global index inconsistent with refLoc");
      }
    }
    plan.arrays_.push_back(std::move(af));
  }
  expectTag(r, kTagList, "geometry records");
  u64 ngeom = r.count();
  for (u64 i = 0; i < ngeom; ++i) {
    expectTag(r, kTagGeometryRecord, "GeometryRecord");
    ParametricTilePlan::GeometryRecord g;
    g.arrayId = r.intv();
    g.refKeys = readIntPairVec(r);
    auto readPools = [](ByteReader& rr) {
      expectTag(rr, kTagList, "geometry pools");
      u64 k = rr.count();
      std::vector<std::vector<AffExpr>> pools;
      for (u64 d = 0; d < k; ++d) pools.push_back(readAffExprVec(rr));
      return pools;
    };
    g.lower = readPools(r);
    g.upper = readPools(r);
    plan.geometry_.push_back(std::move(g));
  }
  plan.hoist_ = r.boolean();
  plan.benefitDelta_ = r.f64();
  plan.volumeCap_ = r.i64v();
  plan.onlyBeneficial_ = r.boolean();
  // Structural validation + symbol-table reconstruction. The checks inside
  // run as EMM_REQUIRE (ApiError); convert so hostile input stays a clean
  // SerializeError for the disk tier.
  try {
    plan.rebuildSymbols();
  } catch (const ApiError& e) {
    throw SerializeError(std::string("parametric plan validation failed: ") + e.what());
  }
  if (static_cast<int>(plan.defaultBinding_.ext.size()) != plan.np_ + plan.depth_ ||
      static_cast<int>(plan.defaultBinding_.loopRange.size()) != plan.depth_)
    throw SerializeError("parametric plan binding arity mismatch");
  if (static_cast<int>(plan.analysis_.loopBounds.size()) != plan.depth_)
    throw SerializeError("parametric plan loop-bound arity mismatch");
  return plan;
}

std::string serializeFamilyPlan(const FamilyPlan& plan) {
  ByteWriter w;
  w.u8(kTagFamilyPlan);
  w.boolean(plan.haveDeps);
  writeList(w, plan.deps, [](ByteWriter& ww, const Dependence& d) { writeDependence(ww, d); });
  w.boolean(plan.haveTransform);
  if (plan.haveTransform) writeBlock(w, plan.transformedTemplate);
  writeParallelismPlan(w, plan.plan);
  w.u8(kTagList);
  w.u64v(plan.appliedSkews.size());
  for (const auto& [target, srcFactor] : plan.appliedSkews) {
    w.intv(target);
    w.intv(srcFactor.first);
    w.i64v(srcFactor.second);
  }
  w.boolean(plan.tilePlan != nullptr);
  if (plan.tilePlan != nullptr) serializeParametricPlanBody(w, *plan.tilePlan);
  w.str(plan.parametricReason);
  // Codegen tier (plan format v4): the size-generic record that lets the
  // binder serve further sizes from disk with no re-emission.
  const bool haveRecord = plan.haveRecord && plan.record != nullptr;
  w.boolean(haveRecord);
  if (haveRecord) {
    writeCompileOptionsInto(w, plan.recordOptions);
    writeCompileResultInto(w, *plan.record);
  }
  return w.take();
}

std::shared_ptr<const FamilyPlan> deserializeFamilyPlan(std::string_view bytes) {
  ByteReader r(bytes);
  auto plan = std::make_shared<FamilyPlan>();
  try {
    expectTag(r, kTagFamilyPlan, "FamilyPlan");
    plan->haveDeps = r.boolean();
    plan->deps = readList<Dependence>(r, [](ByteReader& rr) { return readDependence(rr); });
    plan->haveTransform = r.boolean();
    if (plan->haveTransform) plan->transformedTemplate = readBlock(r);
    plan->plan = readParallelismPlan(r);
    expectTag(r, kTagList, "applied skews");
    u64 nskews = r.count();
    for (u64 i = 0; i < nskews; ++i) {
      int target = r.intv();
      int src = r.intv();
      i64 factor = r.i64v();
      plan->appliedSkews.push_back({target, {src, factor}});
    }
    if (r.boolean())
      plan->tilePlan =
          std::make_shared<const ParametricTilePlan>(deserializeParametricPlanBody(r));
    plan->parametricReason = r.str();
    if (r.boolean()) {
      plan->recordOptions = readCompileOptionsFrom(r);
      plan->record = std::make_shared<const CompileResult>(readCompileResultFrom(r));
      plan->haveRecord = true;
    }
    r.expectEnd();
  } catch (const ApiError& e) {
    // Reconstructed values are validated with API preconditions (e.g. a
    // malformed transformed block); surface them as decode failures.
    throw SerializeError(std::string("family plan decode failed: ") + e.what());
  }
  return plan;
}

}  // namespace emm
