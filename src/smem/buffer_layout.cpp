#include "smem/buffer_layout.h"

#include <limits>
#include <numeric>

#include "support/diagnostics.h"

namespace emm {

namespace {

/// Index of `name` in the unit's parameter table.
int paramIndexOf(const std::vector<std::string>& names, const std::string& name) {
  for (size_t j = 0; j < names.size(); ++j)
    if (names[j] == name) return static_cast<int>(j);
  EMM_CHECK(false, "buffer extent mentions unknown parameter '" + name + "'");
  return -1;
}

SymPtr symFromAff(const AffExpr& e, const std::vector<std::string>& names, bool ceilMode) {
  std::vector<std::pair<i64, SymPtr>> terms;
  for (const auto& [name, coeff] : e.terms) {
    int j = paramIndexOf(names, name);
    terms.emplace_back(coeff, SymExpr::param(j, names[j]));
  }
  SymPtr num = SymExpr::affine(e.cnst, terms);
  if (e.den == 1) return num;
  SymPtr den = SymExpr::constant(e.den);
  return ceilMode ? SymExpr::ceilDiv(num, den) : SymExpr::floorDiv(num, den);
}

/// Compiles a BoundExpr to a SymExpr with the same rounding semantics as
/// BoundExpr::eval: max-of-ceil parts for lower bounds, min-of-floor for
/// upper bounds (extents use the latter).
SymPtr symFromBound(const BoundExpr& b, const std::vector<std::string>& names) {
  EMM_CHECK(!b.parts.empty(), "empty bound expression in buffer extent");
  SymPtr out;
  for (const AffExpr& part : b.parts) {
    SymPtr p = symFromAff(part, names, b.isMax);
    out = out == nullptr ? p : (b.isMax ? SymExpr::max(out, p) : SymExpr::min(out, p));
  }
  return out;
}

/// Smallest innermost pad in [0, banks) minimizing gcd(padded pitch in bank
/// words, banks) — 0 when the natural pitch is already conflict-free, and
/// the full-coprime pad (gcd 1) whenever one exists, which for power-of-two
/// bank counts is any pad making the padded pitch odd.
i64 choosePad(i64 extent, i64 wordsPerElem, i64 banks) {
  if (banks <= 1 || extent <= 0) return 0;
  i64 bestPad = 0;
  i64 bestGcd = std::numeric_limits<i64>::max();
  for (i64 p = 0; p < banks; ++p) {
    i64 g = std::gcd(mulChecked(addChecked(extent, p), wordsPerElem), banks);
    if (g < bestGcd) {
      bestGcd = g;
      bestPad = p;
      if (g == 1) break;
    }
  }
  return bestPad;
}

}  // namespace

i64 BufferLayout::paddingBytes(const std::vector<i64>& params) const {
  i64 elems = 0;
  for (const BufferLayoutEntry& e : buffers) {
    if (e.rowPadElems == 0 || e.extent.empty()) continue;
    i64 rows = 1;
    for (size_t d = 0; d + 1 < e.extent.size(); ++d)
      rows = mulChecked(rows, std::max<i64>(0, e.extent[d]->eval(params)));
    elems = addChecked(elems, mulChecked(rows, e.rowPadElems));
  }
  return mulChecked(elems, elementBytes);
}

i64 BufferLayout::totalBytes(const std::vector<i64>& params) const {
  if (totalElems == nullptr) return 0;
  return mulChecked(totalElems->eval(params), elementBytes);
}

SymInterval BufferLayout::totalElemsInterval(const std::vector<SymInterval>& paramBox) const {
  if (totalElems == nullptr) return {0, 0};
  return totalElems->evalInterval(paramBox);
}

BufferLayout planBufferLayout(const CodeUnit& unit, const BufferLayoutOptions& options) {
  EMM_CHECK(unit.source != nullptr, "CodeUnit without source block");
  const std::vector<std::string>& names = unit.source->paramNames;

  // Sample binding: the leading problem-size parameters; trailing (origin)
  // parameters never appear in extent formulas, so zeros are inert.
  std::vector<i64> sample(names.size(), 0);
  for (size_t j = 0; j < names.size() && j < options.paramValues.size(); ++j)
    sample[j] = options.paramValues[j];
  std::vector<SymInterval> box = options.paramBox;
  if (box.empty())
    for (i64 v : sample) box.push_back({v, v});
  EMM_CHECK(box.size() >= names.size(), "parameter box shorter than the parameter table");

  const i64 wordsPerElem =
      std::max<i64>(1, options.elementBytes / std::max<i64>(1, options.bank.widthBytes));

  // Builds one candidate arena: with or without conflict pads, with or
  // without bank-row-aligned base offsets (alignment keeps packing from
  // rotating a buffer's bank assignment, so it travels with the pads).
  auto build = [&](bool withPads, bool aligned) {
    BufferLayout layout;
    layout.bank = options.bank;
    layout.elementBytes = options.elementBytes;
    layout.totalElems = SymExpr::constant(0);
    SymPtr offset = SymExpr::constant(0);
    SymPtr banksConst = SymExpr::constant(std::max<i64>(1, options.bank.banks));
    bool anyPad = false;
    for (const LocalBuffer& b : unit.localBuffers) {
      BufferLayoutEntry e;
      e.name = b.name;
      for (int d = 0; d < b.ndim; ++d) e.extent.push_back(symFromBound(b.sizeExpr[d], names));
      // Conflict padding targets the row pitch, which only exists (as a
      // lane stride distinct from 1) for buffers with at least two
      // dimensions; 1-D buffers are accessed unit-strided and stay as-is.
      if (withPads && b.ndim >= 2)
        e.rowPadElems =
            choosePad(e.extent.back()->eval(sample), wordsPerElem, options.bank.banks);
      anyPad |= e.rowPadElems != 0;
      SymPtr footprint = SymExpr::constant(1);
      for (int d = 0; d < b.ndim; ++d) {
        SymPtr ext = e.extent[d];
        if (d == b.ndim - 1 && e.rowPadElems != 0)
          ext = SymExpr::add(ext, SymExpr::constant(e.rowPadElems));
        footprint = SymExpr::mul(footprint, ext);
      }
      e.footprintElems = footprint;
      e.offsetElems = offset;
      SymPtr end = SymExpr::add(offset, footprint);
      layout.totalElems = end;
      offset = aligned && options.bank.banks > 1
                   ? SymExpr::mul(banksConst, SymExpr::ceilDiv(end, banksConst))
                   : end;
      layout.buffers.push_back(std::move(e));
    }
    layout.padded = anyPad;
    return layout;
  };

  BufferLayout packed = build(true, true);
  const i64 packedBytes = packed.totalBytes(sample);
  const SymInterval enclosure = packed.totalElemsInterval(box);
  const i64 worstBytes = mulChecked(enclosure.hi, options.elementBytes);
  if (packedBytes <= options.memLimitBytes && worstBytes <= options.memLimitBytes)
    return packed;

  // The padded arena can exceed the budget the (unpadded) tile search
  // certified against; conflicts are cheaper than spilling, so fall back.
  BufferLayout flat = build(false, false);
  flat.padded = false;
  flat.note = "padded footprint " + std::to_string(std::max(packedBytes, worstBytes)) +
              " bytes exceeds the " + std::to_string(options.memLimitBytes) +
              "-byte scratchpad budget; unpadded fallback";
  const i64 flatWorst =
      mulChecked(flat.totalElemsInterval(box).hi, options.elementBytes);
  if (flatWorst > options.memLimitBytes)
    flat.note += " (raw footprint " + std::to_string(flatWorst) +
                 " bytes is itself over budget on this path)";
  return flat;
}

void applyBufferLayout(CodeUnit& unit, const BufferLayout& layout) {
  for (const BufferLayoutEntry& e : layout.buffers) {
    for (LocalBuffer& b : unit.localBuffers) {
      if (b.name != e.name) continue;
      b.pad.clear();
      if (e.rowPadElems != 0 && b.ndim > 0) {
        b.pad.assign(b.ndim, 0);
        b.pad.back() = e.rowPadElems;
      }
      break;
    }
  }
}

}  // namespace emm
