// Automatic data management in scratchpad memories (paper Section 3).
//
// Given a program block (iteration spaces + affine access functions), this
// module:
//   1. computes the data space touched by every reference (image of the
//      iteration polytope under the access function),
//   2. partitions each array's data spaces into maximal non-overlapping
//      groups (connected components of the overlap graph) — Section 3.1,
//   3. runs the reuse-benefit test (Algorithm 1: order-of-magnitude reuse
//      when rank(F) < dim(iteration space); otherwise pairwise intersection
//      volume against the delta threshold, default 30%),
//   4. allocates one local buffer per beneficial group, sized by parametric
//      per-dimension bounds of the group's convex union (Algorithm 2; our
//      FM-based bound extraction substitutes for PIP),
//   5. rewrites access functions to target local buffers (F'(y) - g),
//   6. generates move-in / move-out code scanning the unions of data spaces
//      so each element moves exactly once (Section 3.1.3; our disjoint
//      union scanner substitutes for CLooG),
//   7. optionally shrinks copy sets using flow-dependence information
//      (Section 3.1.4, which the paper outlines as future work),
//   8. reports upper bounds on moved volume for the tile-size cost model.
//
// Dimensions of the original array whose accessed extent is a single point
// are kept as size-1 buffer dimensions rather than dropped; storage cost is
// identical and access-function rewriting stays uniform (see DESIGN.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/ast.h"
#include "ir/program.h"
#include "poly/polyhedron.h"

namespace emm {

/// How references of one array are grouped into local buffers.
///
/// The paper's Section 3.1 text describes maximal disjoint partitioning
/// (connected components of the overlap graph), but its Figure 1 allocates a
/// single buffer per array spanning the convex union of ALL of the array's
/// data spaces (LA[19][10] covers two disjoint row bands). Both behaviors
/// are provided; MaximalDisjoint is the default and PerArrayUnion
/// reproduces the figure exactly (see DESIGN.md).
enum class PartitionMode { MaximalDisjoint, PerArrayUnion };

/// Precomputed buffer-bound candidates for one partition, instantiated from
/// a parametric tile plan. A hint applies when a partition has the same
/// array and exactly the same (stmt, access) reference set;
/// planBufferGeometry then uses the pre-verified candidate pools instead of
/// re-deriving them via per-reference Fourier-Motzkin, and runs the normal
/// minimize-extent selection over them, so the chosen geometry (including
/// tie-breaks against the constant fallbacks) is identical to the derived
/// one.
struct GeometryHint {
  int arrayId = -1;
  std::vector<std::pair<int, int>> refs;  ///< sorted (stmt, access) pairs
  /// Per array dim: valid lower/upper bound candidates in derivation pool
  /// order, already verified against every reference of the partition.
  std::vector<std::vector<AffExpr>> lower;
  std::vector<std::vector<AffExpr>> upper;
};

/// Options controlling the framework.
struct SmemOptions {
  /// Constant-reuse threshold of Algorithm 1 (fraction of total volume that
  /// pairwise overlaps must exceed). The paper fixes 30%.
  double delta = 0.30;
  /// Reference grouping (see PartitionMode).
  PartitionMode partitionMode = PartitionMode::MaximalDisjoint;
  /// GPU-style targets can leave low-reuse data in global memory; Cell-style
  /// targets must copy everything (set to false).
  bool onlyBeneficial = true;
  /// Enables the Section 3.1.4 dependence-based live-in reduction.
  bool optimizeCopySets = false;
  /// Arrays (by id) whose values are dead after the block: move-out is
  /// skipped for them when optimizeCopySets is set.
  std::vector<int> deadAfterBlock;
  /// Parameters (by name) that vary per block instance (e.g. tile origins).
  /// Buffer *sizes* must not depend on these; offsets may.
  std::vector<std::string> blockLocalParams;
  /// Known constraints on parameters (0 set variables, nparam parameters),
  /// used when verifying candidate bounds. Empty = no context.
  std::optional<Polyhedron> paramContext;
  /// Concrete parameter binding for Algorithm 1's volume measurements.
  IntVec sampleParams;
  /// Enumeration cap for volume measurements.
  i64 volumeCap = 4'000'000;
  /// Buffer-geometry hints from a parametric tile plan (see GeometryHint).
  /// Unmatched or invalid hints are ignored and bounds are derived as usual.
  std::vector<GeometryHint> geometryHints;
};

/// One reference of the analyzed array.
struct RefSummary {
  int stmt = -1;
  int access = -1;
  bool isWrite = false;
  int rank = 0;     ///< rank of the access function's iterator part
  int iterDim = 0;  ///< dimensionality of the statement's iteration space
  Polyhedron dataSpace;  ///< dim = array ndim

  /// Algorithm 1's order-of-magnitude reuse condition (1): rank < dim.
  bool hasOrderReuse() const { return rank < iterDim; }
};

/// A maximal non-overlapping group of data spaces of one array, plus the
/// local buffer planned for it.
struct PartitionPlan {
  int arrayId = -1;
  std::vector<RefSummary> refs;
  bool orderReuse = false;        ///< Algorithm 1 line 2-4
  double constReuseFraction = 0;  ///< measured pairwise-overlap fraction
  bool beneficial = false;        ///< Algorithm 1 verdict

  // Buffer geometry (filled when a buffer is allocated).
  bool hasBuffer = false;
  std::string bufferName;
  std::vector<AffExpr> offset;      ///< per array dim, over params
  std::vector<BoundExpr> sizeExpr;  ///< per array dim, over non-block-local params

  PolySet readSpaces() const;
  PolySet writeSpaces() const;
  PolySet allSpaces() const;
};

/// Full analysis result for a block.
struct DataPlan {
  const ProgramBlock* block = nullptr;
  SmemOptions options;
  std::vector<PartitionPlan> partitions;
  /// partitionOf[stmt][access] = partition index, or -1 when the reference
  /// stays in global memory.
  std::vector<std::vector<int>> partitionOf;

  /// Paper Section 3.1.3: upper bound on elements moved in for partition
  /// `p`, computed by summing bounding-box sizes of maximal non-overlapping
  /// subsets of the read (resp. write) spaces, at a concrete binding.
  i64 moveInVolumeBound(int p, const IntVec& paramValues) const;
  i64 moveOutVolumeBound(int p, const IntVec& paramValues) const;
  /// Buffer footprint in elements at a concrete binding (product of size
  /// expressions), 0 for partitions without buffers.
  i64 bufferFootprint(int p, const IntVec& paramValues) const;
};

/// Steps 1-4: analysis and buffer planning. Does not generate code.
DataPlan analyzeBlock(const ProgramBlock& block, const SmemOptions& options);

/// Steps 5-7 packaged as an executable unit:
///   move-in loops; the block's original computation (statements rewritten
///   to hit local buffers); move-out loops.
/// Statement order inside the computation follows the original schedules.
CodeUnit buildScratchpadUnit(const ProgramBlock& block, const SmemOptions& options);

/// Same, but returns the plan too (for inspection and the tiling driver).
CodeUnit buildScratchpadUnit(const ProgramBlock& block, const SmemOptions& options,
                             DataPlan& planOut);

/// Generates only the move-in (direction=true) or move-out (false) code for
/// one partition, as Copy loops. Exposed for the tiling driver, which places
/// these fragments at hoisted positions (Section 4.2).
AstPtr buildCopyCode(const DataPlan& plan, int partition, bool moveIn);

// ---- Bound-candidate machinery, exposed for the parametric tile plan
// (which re-runs the same candidate generation once, symbolically). ----

/// Intersects `space` with the parameter-only context constraints.
Polyhedron spaceWithContext(const Polyhedron& space, const std::optional<Polyhedron>& context);

/// True when the affine form `e` (over parameters) bounds every point of
/// `space` (under the optional context) from below (lower=true) or above.
bool boundIsValidForSpace(const Polyhedron& space, const std::optional<Polyhedron>& context,
                          int dim, const AffExpr& e, const std::vector<std::string>& paramNames,
                          bool lower);

/// Converts a DivExpr over [params, 1] to an AffExpr; nullopt when the
/// divisor is not 1 (such forms are kept out of candidate pools).
std::optional<AffExpr> divToAffine(const DivExpr& d, const std::vector<std::string>& paramNames);

}  // namespace emm
