// Bank-conflict-aware parametric buffer packing (the paper's
// conflict-minimizing scratchpad layout scheme).
//
// The Section-3 planner gives every local buffer its per-dimension extent as
// a closed form over the block parameters (LocalBuffer::sizeExpr). This
// module turns those formulas into a packed, banked arena layout:
//
//  - each buffer's innermost dimension is padded so the padded row pitch is
//    coprime with the scratchpad bank count — unit-strided warp accesses
//    (lane index in the innermost dimension) already hit distinct banks, and
//    tile-strided accesses (lane index in an OUTER dimension, whose bank
//    stride is the row pitch) now do too, instead of serializing when the
//    natural pitch shares a factor with the bank count;
//  - base offsets are assigned by a prefix sum rounded up to bank-row
//    multiples, so packing buffers back to back never rotates a buffer's
//    bank assignment;
//  - the total padded footprint stays a SymExpr over the block parameters,
//    so it can be checked against the scratchpad budget both concretely (at
//    the sample binding) and as an interval over a parameter box — the same
//    discipline as ParametricTilePlan::footprintInterval.
//
// Padding changes allocation strides only, never logical indices, so padded
// and unpadded units are semantically identical (the interpreter oracle
// certifies this; see tests/buffer_layout_test.cpp). When the padded
// footprint exceeds the budget the planner falls back to the unpadded
// layout and says why in BufferLayout::note.
#pragma once

#include <string>
#include <vector>

#include "ir/ast.h"
#include "sym/sym_expr.h"

namespace emm {

/// Scratchpad banking of the target machine (gpusim::Machine mirrors this).
/// banks <= 1 models an unbanked store: no padding is ever added.
struct BankDescriptor {
  i64 banks = 16;
  i64 widthBytes = 4;
};

/// Placement of one local buffer inside the packed arena. All expressions
/// are over the owning CodeUnit's source parameters (by index into
/// source->paramNames), with tile origins never mentioned — the layout is
/// valid for every member of a kernel family.
struct BufferLayoutEntry {
  std::string name;
  std::vector<SymPtr> extent;  ///< logical extent per dimension
  i64 rowPadElems = 0;         ///< innermost-dimension conflict padding
  SymPtr offsetElems;          ///< arena base offset, elements
  SymPtr footprintElems;       ///< padded footprint, elements
};

/// A packed arena layout for a CodeUnit's local buffers.
struct BufferLayout {
  BankDescriptor bank;
  i64 elementBytes = 4;
  /// True when conflict padding is in effect; false for the unpadded
  /// fallback (or when every natural pitch was already conflict-free).
  bool padded = false;
  /// Human-readable record of a fallback decision (empty otherwise).
  std::string note;
  std::vector<BufferLayoutEntry> buffers;
  SymPtr totalElems;  ///< arena size in elements, padded and bank-aligned

  /// Total padding overhead at a concrete binding, in bytes.
  i64 paddingBytes(const std::vector<i64>& params) const;
  /// Arena size at a concrete binding, in bytes.
  i64 totalBytes(const std::vector<i64>& params) const;
  /// Interval enclosure of the arena size (elements) over a parameter box.
  SymInterval totalElemsInterval(const std::vector<SymInterval>& paramBox) const;
};

struct BufferLayoutOptions {
  BankDescriptor bank;
  i64 elementBytes = 4;
  i64 memLimitBytes = 16 * 1024;
  /// Sample binding of the unit's leading source parameters (problem sizes;
  /// tile origins stay unbound). Pads are chosen at this binding.
  IntVec paramValues;
  /// Optional per-parameter box for the symbolic budget check; empty means
  /// the point box at paramValues. Must cover every parameter the extent
  /// formulas mention when non-empty.
  std::vector<SymInterval> paramBox;
};

/// Plans the packed layout for `unit`'s local buffers. Never throws on
/// budget overflow — it falls back to the unpadded layout and records the
/// reason in BufferLayout::note.
BufferLayout planBufferLayout(const CodeUnit& unit, const BufferLayoutOptions& options);

/// Writes the layout's padding into the unit's LocalBuffers (by name), so
/// the interpreter and every emitter allocate the padded geometry.
void applyBufferLayout(CodeUnit& unit, const BufferLayout& layout);

}  // namespace emm
