#include "smem/data_manage.h"

#include <algorithm>

#include "codegen/scan.h"
#include "deps/dependence.h"
#include "poly/enumerate.h"

namespace emm {

PolySet PartitionPlan::readSpaces() const {
  PolySet out;
  for (const RefSummary& r : refs)
    if (!r.isWrite) out.push_back(r.dataSpace);
  return out;
}

PolySet PartitionPlan::writeSpaces() const {
  PolySet out;
  for (const RefSummary& r : refs)
    if (r.isWrite) out.push_back(r.dataSpace);
  return out;
}

PolySet PartitionPlan::allSpaces() const {
  PolySet out;
  for (const RefSummary& r : refs) out.push_back(r.dataSpace);
  return out;
}

namespace {

/// Rank of the iterator part of an access function (paper condition (1):
/// data reuse is order-of-magnitude when rank < iteration dimensionality).
int iteratorRank(const IntMat& fn, int iterDim) {
  IntMat sub(fn.rows(), iterDim);
  for (int r = 0; r < fn.rows(); ++r)
    for (int c = 0; c < iterDim; ++c) sub.at(r, c) = fn.at(r, c);
  return sub.rank();
}

/// Intersects `space` with the parameter-context constraints, widening the
/// context rows to the space's dimensionality.
Polyhedron withContext(const Polyhedron& space, const std::optional<Polyhedron>& context) {
  if (!context.has_value()) return space;
  EMM_CHECK(context->dim() == 0 && context->nparam() == space.nparam(),
            "paramContext must be a parameter-only set");
  Polyhedron out = space;
  auto widen = [&](const IntVec& row) {
    IntVec wide(space.cols(), 0);
    for (int j = 0; j < space.nparam() + 1; ++j) wide[space.dim() + j] = row[j];
    return wide;
  };
  for (int r = 0; r < context->equalities().rows(); ++r)
    out.addEquality(widen(context->equalities().row(r)));
  for (int r = 0; r < context->inequalities().rows(); ++r)
    out.addInequality(widen(context->inequalities().row(r)));
  out.simplify();
  return out;
}

/// True when `e` (an affine form over parameters) satisfies
///   forall x in space (under context): x_d >= e      (lower = true)
///   forall x in space (under context): x_d <= e      (lower = false)
bool boundIsValid(const Polyhedron& space, const std::optional<Polyhedron>& context, int d,
                  const AffExpr& e, const std::vector<std::string>& paramNames, bool lower) {
  EMM_CHECK(e.den == 1, "candidate bounds must be affine");
  // Violation set: lower: e - x_d - 1 >= 0 ; upper: x_d - e - 1 >= 0.
  IntVec row(space.cols(), 0);
  row[d] = lower ? -1 : 1;
  i64 sign = lower ? 1 : -1;
  for (const auto& [name, coeff] : e.terms) {
    auto it = std::find(paramNames.begin(), paramNames.end(), name);
    EMM_CHECK(it != paramNames.end(), "candidate bound mentions unknown parameter " + name);
    int pj = static_cast<int>(it - paramNames.begin());
    row[space.dim() + pj] = addChecked(row[space.dim() + pj], mulChecked(sign, coeff));
  }
  row.back() = addChecked(row.back(), mulChecked(sign, e.cnst));
  row.back() = subChecked(row.back(), 1);
  Polyhedron viol = withContext(space, context);
  viol.addInequality(row);
  return viol.isEmpty();
}

/// Converts a DivExpr over [params, 1] to an AffExpr; returns nullopt when
/// the divisor is not 1 (kept out of candidate sets; the fallbacks cover
/// those cases conservatively).
std::optional<AffExpr> toAffine(const DivExpr& d, const std::vector<std::string>& paramNames) {
  if (d.den != 1) return std::nullopt;
  AffExpr e;
  EMM_CHECK(d.coeffs.size() == paramNames.size() + 1, "bound arity mismatch");
  for (size_t j = 0; j < paramNames.size(); ++j)
    if (d.coeffs[j] != 0) e.terms.emplace_back(paramNames[j], d.coeffs[j]);
  e.cnst = d.coeffs.back();
  return e;
}

bool mentionsAny(const AffExpr& e, const std::vector<std::string>& names) {
  return std::any_of(names.begin(), names.end(),
                     [&](const std::string& n) { return e.mentions(n); });
}

AffExpr affSub(const AffExpr& a, const AffExpr& b, i64 extraConst) {
  EMM_CHECK(a.den == 1 && b.den == 1, "affSub on divided expressions");
  AffExpr out = a;
  for (const auto& [name, coeff] : b.terms) out.terms.emplace_back(name, narrow(-static_cast<i128>(coeff)));
  out.cnst = addChecked(subChecked(out.cnst, b.cnst), extraConst);
  // Merge duplicate terms.
  AffExpr merged;
  merged.cnst = out.cnst;
  for (const auto& [name, coeff] : out.terms) {
    bool found = false;
    for (auto& t : merged.terms)
      if (t.first == name) {
        t.second = addChecked(t.second, coeff);
        found = true;
        break;
      }
    if (!found) merged.terms.emplace_back(name, coeff);
  }
  std::erase_if(merged.terms, [](const auto& t) { return t.second == 0; });
  return merged;
}

/// Finds the geometry hint matching this partition (same array, exact
/// reference set), or nullptr. A matching hint replaces the per-reference
/// Fourier-Motzkin candidate generation; selection and tie-breaking still
/// run so the chosen geometry is identical to what derivation would pick.
const GeometryHint* findGeometryHint(const PartitionPlan& plan, const ProgramBlock& block,
                                     const SmemOptions& options) {
  if (options.geometryHints.empty()) return nullptr;
  const int ndim = block.arrays[plan.arrayId].ndim();
  std::vector<std::pair<int, int>> refKeys;
  for (const RefSummary& r : plan.refs) refKeys.emplace_back(r.stmt, r.access);
  std::sort(refKeys.begin(), refKeys.end());
  for (const GeometryHint& h : options.geometryHints)
    if (h.arrayId == plan.arrayId && h.refs == refKeys &&
        static_cast<int>(h.lower.size()) == ndim && static_cast<int>(h.upper.size()) == ndim)
      return &h;
  return nullptr;
}

/// Evaluates an affine candidate at the sample binding for tie-breaking.
i64 evalAtSample(const AffExpr& e, const std::vector<std::string>& paramNames,
                 const IntVec& sample) {
  std::vector<std::pair<std::string, i64>> env;
  for (size_t j = 0; j < paramNames.size(); ++j) env.emplace_back(paramNames[j], sample[j]);
  return e.evalExact(env);
}

/// Chooses the buffer geometry (offset + size per dimension) for a
/// partition: Algorithm 2 with candidate-and-verify parametric bounds.
void planBufferGeometry(PartitionPlan& plan, const ProgramBlock& block,
                        const SmemOptions& options) {
  const std::vector<std::string>& paramNames = block.paramNames;
  int ndim = block.arrays[plan.arrayId].ndim();
  plan.offset.clear();
  plan.sizeExpr.clear();
  const GeometryHint* hint = findGeometryHint(plan, block, options);

  for (int d = 0; d < ndim; ++d) {
    // Gather candidate lower bounds from every space's parametric bounds,
    // plus the constant-0 fallback (array indices are non-negative). Each
    // candidate records which refs derived it: a projection-derived bound is
    // valid for its own space by Fourier-Motzkin soundness, so it only needs
    // verification against the *other* refs of the partition (fallbacks, with
    // no deriving ref, are verified against all). Duplicate expressions are
    // merged so a bound shared by several refs is verified at most once per
    // non-deriving ref — the hot path of the tile-size search.
    struct Candidate {
      AffExpr expr;
      std::vector<size_t> sources;  ///< indices into plan.refs that derived it
    };
    auto addCandidate = [](std::vector<Candidate>& list, const AffExpr& e,
                           std::optional<size_t> source) {
      for (Candidate& c : list) {
        if (c.expr.str() != e.str()) continue;
        if (source.has_value()) c.sources.push_back(*source);
        return;
      }
      Candidate c;
      c.expr = e;
      if (source.has_value()) c.sources.push_back(*source);
      list.push_back(std::move(c));
    };
    std::vector<Candidate> lowerCandidates, upperCandidates;
    addCandidate(lowerCandidates, AffExpr::constant(0), std::nullopt);
    addCandidate(upperCandidates, AffExpr::constant(block.arrays[plan.arrayId].extents[d] - 1),
                 std::nullopt);
    // A matching geometry hint (from the parametric tile plan) replaces the
    // per-reference Fourier-Motzkin candidate generation: its pools hold
    // the candidates that verified against every reference for ALL tile
    // sizes, in derivation order. Each hinted bound is still re-verified
    // against every reference here (the block the tiler analyzes is not
    // the block the search saw); any failure discards the whole hint for
    // this dimension and derivation runs as usual, so a stale or drifted
    // hint can never produce an undersized buffer. The minimize-extent /
    // first-found tie-break below then chooses exactly what derivation
    // would.
    bool hinted = hint != nullptr && !hint->lower[d].empty() && !hint->upper[d].empty();
    if (hinted) {
      for (const AffExpr& e : hint->lower[d])
        if (e.den != 1) hinted = false;
      for (const AffExpr& e : hint->upper[d])
        if (e.den != 1) hinted = false;
    }
    if (hinted) {
      for (const AffExpr& e : hint->lower[d])
        if (!std::all_of(plan.refs.begin(), plan.refs.end(), [&](const RefSummary& r) {
              return boundIsValid(r.dataSpace, options.paramContext, d, e, paramNames, true);
            }))
          hinted = false;
      for (const AffExpr& e : hint->upper[d])
        if (!std::all_of(plan.refs.begin(), plan.refs.end(), [&](const RefSummary& r) {
              return boundIsValid(r.dataSpace, options.paramContext, d, e, paramNames, false);
            }))
          hinted = false;
    }
    if (hinted) {
      // Verified above: claim every reference as a source so validForAll
      // below does not repeat the work.
      for (const AffExpr& e : hint->lower[d])
        for (size_t ri = 0; ri < plan.refs.size(); ++ri) addCandidate(lowerCandidates, e, ri);
      for (const AffExpr& e : hint->upper[d])
        for (size_t ri = 0; ri < plan.refs.size(); ++ri) addCandidate(upperCandidates, e, ri);
    } else {
      for (size_t ri = 0; ri < plan.refs.size(); ++ri) {
        Polyhedron ctx = withContext(plan.refs[ri].dataSpace, options.paramContext);
        DimBounds b = ctx.paramBounds(d);
        for (const DivExpr& e : b.lower)
          if (auto a = toAffine(e, paramNames)) addCandidate(lowerCandidates, *a, ri);
        for (const DivExpr& e : b.upper)
          if (auto a = toAffine(e, paramNames)) addCandidate(upperCandidates, *a, ri);
      }
    }

    // Keep candidates valid for *every* space in the partition.
    auto validForAll = [&](const Candidate& c, bool lower) {
      for (size_t ri = 0; ri < plan.refs.size(); ++ri) {
        if (std::find(c.sources.begin(), c.sources.end(), ri) != c.sources.end()) continue;
        if (!boundIsValid(plan.refs[ri].dataSpace, options.paramContext, d, c.expr, paramNames,
                          lower))
          return false;
      }
      return true;
    };
    std::vector<AffExpr> validLower, validUpper;
    for (const Candidate& c : lowerCandidates)
      if (validForAll(c, true)) validLower.push_back(c.expr);
    for (const Candidate& c : upperCandidates)
      if (validForAll(c, false)) validUpper.push_back(c.expr);
    EMM_REQUIRE(!validLower.empty() && !validUpper.empty(),
                "no valid parametric bounds for buffer dimension");

    // Choose the (offset, extent) pair that minimizes the buffer extent.
    // For every valid lower bound o, the candidate extents are u - o + 1 for
    // valid upper bounds u, restricted to expressions free of block-local
    // parameters (tile origins) so allocation is uniform across block
    // instances. The pair with the smallest extent at the sample binding
    // wins; this is how offsets like (tile-origin sums) beat the constant-0
    // fallback, whose extents span the whole array.
    bool haveSample = options.sampleParams.size() == paramNames.size();
    bool found = false;
    AffExpr bestOffset;
    AffExpr bestExtent;
    i64 bestVal = INT64_MAX;
    for (const AffExpr& o : validLower) {
      for (const AffExpr& u : validUpper) {
        AffExpr extent = affSub(u, o, 1);
        if (mentionsAny(extent, options.blockLocalParams)) continue;
        i64 v = haveSample ? evalAtSample(extent, paramNames, options.sampleParams) : 0;
        if (!found || v < bestVal) {
          found = true;
          bestOffset = o;
          bestExtent = extent;
          bestVal = v;
        }
        if (!haveSample) break;  // no way to compare; take the first valid pair
      }
      if (found && !haveSample) break;
    }
    EMM_REQUIRE(found,
                "no block-invariant size bound for buffer dimension; add an upper-bound "
                "candidate or mark fewer parameters block-local");
    plan.offset.push_back(bestOffset);
    plan.sizeExpr.push_back(BoundExpr::single(bestExtent, false));
  }
  plan.hasBuffer = true;
}

/// Measures the constant-reuse fraction of Algorithm 1's fallback test.
double constReuseFraction(const PartitionPlan& plan, const SmemOptions& options, int nparam) {
  if (static_cast<int>(options.sampleParams.size()) != nparam) return 0.0;
  PolySet spaces = plan.allSpaces();
  i64 total = 0;
  for (const Polyhedron& s : spaces)
    total = addChecked(total, countPoints(s, options.sampleParams, options.volumeCap));
  if (total == 0) return 0.0;
  i64 overlap = 0;
  for (size_t i = 0; i < spaces.size(); ++i)
    for (size_t j = i + 1; j < spaces.size(); ++j)
      overlap = addChecked(
          overlap, countIntersection(spaces[i], spaces[j], options.sampleParams,
                                     options.volumeCap));
  return static_cast<double>(overlap) / static_cast<double>(total);
}

}  // namespace

Polyhedron spaceWithContext(const Polyhedron& space, const std::optional<Polyhedron>& context) {
  return withContext(space, context);
}

bool boundIsValidForSpace(const Polyhedron& space, const std::optional<Polyhedron>& context,
                          int dim, const AffExpr& e, const std::vector<std::string>& paramNames,
                          bool lower) {
  return boundIsValid(space, context, dim, e, paramNames, lower);
}

std::optional<AffExpr> divToAffine(const DivExpr& d, const std::vector<std::string>& paramNames) {
  return toAffine(d, paramNames);
}

DataPlan analyzeBlock(const ProgramBlock& block, const SmemOptions& options) {
  block.validate();
  DataPlan plan;
  plan.block = &block;
  plan.options = options;
  plan.partitionOf.resize(block.statements.size());
  for (size_t s = 0; s < block.statements.size(); ++s)
    plan.partitionOf[s].assign(block.statements[s].accesses.size(), -1);

  for (int arrayId = 0; arrayId < static_cast<int>(block.arrays.size()); ++arrayId) {
    // Collect every reference of this array with its data space.
    std::vector<RefSummary> refs;
    for (size_t s = 0; s < block.statements.size(); ++s) {
      const Statement& st = block.statements[s];
      for (size_t a = 0; a < st.accesses.size(); ++a) {
        const Access& acc = st.accesses[a];
        if (acc.arrayId != arrayId) continue;
        RefSummary r;
        r.stmt = static_cast<int>(s);
        r.access = static_cast<int>(a);
        r.isWrite = acc.isWrite;
        r.iterDim = st.dim();
        r.rank = iteratorRank(acc.fn, st.dim());
        r.dataSpace = st.domain.image(acc.fn);
        refs.push_back(std::move(r));
      }
    }
    if (refs.empty()) continue;

    // Section 3.1: maximal non-overlapping partitions = connected components
    // of the overlap graph. PerArrayUnion instead groups every reference of
    // the array into a single buffer (the Figure-1 behavior).
    std::vector<std::vector<int>> components;
    if (options.partitionMode == PartitionMode::PerArrayUnion) {
      std::vector<int> all(refs.size());
      for (size_t i = 0; i < refs.size(); ++i) all[i] = static_cast<int>(i);
      components.push_back(std::move(all));
    } else {
      PolySet spaces;
      for (const RefSummary& r : refs) spaces.push_back(r.dataSpace);
      components = overlapComponents(spaces);
    }
    for (const std::vector<int>& comp : components) {
      PartitionPlan part;
      part.arrayId = arrayId;
      for (int idx : comp) part.refs.push_back(refs[idx]);

      // Algorithm 1.
      part.orderReuse = std::any_of(part.refs.begin(), part.refs.end(),
                                    [](const RefSummary& r) { return r.hasOrderReuse(); });
      if (part.orderReuse) {
        part.beneficial = true;
      } else {
        part.constReuseFraction = constReuseFraction(part, options, block.nparam());
        part.beneficial = part.constReuseFraction > options.delta;
      }

      bool allocate = part.beneficial || !options.onlyBeneficial;
      if (allocate) {
        part.bufferName =
            "L" + block.arrays[arrayId].name + std::to_string(plan.partitions.size());
        planBufferGeometry(part, block, options);
        for (const RefSummary& r : part.refs)
          plan.partitionOf[r.stmt][r.access] = static_cast<int>(plan.partitions.size());
      }
      plan.partitions.push_back(std::move(part));
    }
  }
  return plan;
}

i64 DataPlan::bufferFootprint(int p, const IntVec& paramValues) const {
  const PartitionPlan& part = partitions[p];
  if (!part.hasBuffer) return 0;
  std::vector<std::pair<std::string, i64>> env;
  for (int j = 0; j < block->nparam(); ++j) env.emplace_back(block->paramNames[j], paramValues[j]);
  i64 n = 1;
  for (const BoundExpr& s : part.sizeExpr) n = mulChecked(n, std::max<i64>(0, s.eval(env)));
  return n;
}

namespace {

/// Paper 3.1.3 volume bound: partition `spaces` into maximal non-overlapping
/// subsets and sum the bounding-box sizes.
i64 volumeBound(const PolySet& spaces, const IntVec& paramValues) {
  if (spaces.empty()) return 0;
  i64 total = 0;
  for (const std::vector<int>& comp : overlapComponents(spaces)) {
    // Bounding box of the union in this component.
    const Polyhedron& first = spaces[comp[0]];
    i64 vol = 1;
    for (int d = 0; d < first.dim(); ++d) {
      i64 lo = INT64_MAX, hi = INT64_MIN;
      for (int idx : comp) {
        DimBounds b = spaces[idx].paramBounds(d);
        lo = std::min(lo, b.evalLower(paramValues));
        hi = std::max(hi, b.evalUpper(paramValues));
      }
      if (hi < lo) {
        vol = 0;
        break;
      }
      vol = mulChecked(vol, hi - lo + 1);
    }
    total = addChecked(total, vol);
  }
  return total;
}

}  // namespace

i64 DataPlan::moveInVolumeBound(int p, const IntVec& paramValues) const {
  return volumeBound(partitions[p].readSpaces(), paramValues);
}

i64 DataPlan::moveOutVolumeBound(int p, const IntVec& paramValues) const {
  return volumeBound(partitions[p].writeSpaces(), paramValues);
}

namespace {

/// Rewrites one statement's accesses to target local buffers per the plan.
Statement rewriteStatement(const Statement& st, int stmtId, const DataPlan& plan,
                           const ProgramBlock& block, int numGlobals) {
  Statement out = st;
  for (size_t a = 0; a < out.accesses.size(); ++a) {
    int p = plan.partitionOf[stmtId][a];
    if (p < 0) continue;
    const PartitionPlan& part = plan.partitions[p];
    Access& acc = out.accesses[a];
    // F'(y) = F(y) - g : subtract the offset (an affine form over params)
    // from each row of the access function.
    for (int r = 0; r < acc.fn.rows(); ++r) {
      const AffExpr& off = part.offset[r];
      EMM_CHECK(off.den == 1, "buffer offset must be affine");
      for (const auto& [name, coeff] : off.terms) {
        auto it = std::find(block.paramNames.begin(), block.paramNames.end(), name);
        EMM_CHECK(it != block.paramNames.end(), "offset mentions unknown parameter");
        int pj = static_cast<int>(it - block.paramNames.begin());
        acc.fn.at(r, st.dim() + pj) = subChecked(acc.fn.at(r, st.dim() + pj), coeff);
      }
      acc.fn.at(r, acc.fn.cols() - 1) = subChecked(acc.fn.at(r, acc.fn.cols() - 1), off.cnst);
    }
    // Retarget to the local buffer id. Buffer index = position among
    // partitions that have buffers, computed by the caller's table.
    int bufferId = 0;
    for (int q = 0; q < p; ++q)
      if (plan.partitions[q].hasBuffer) ++bufferId;
    acc.arrayId = numGlobals + bufferId;
  }
  return out;
}

/// Live-in reduction (Section 3.1.4): for a read access, the instances
/// covered by an in-partition flow dependence read values produced inside
/// the block, so the elements they touch need not be loaded from global
/// memory (unless also touched by uncovered instances).
PolySet liveInSpaces(const DataPlan& plan, int partition, const std::vector<Dependence>& deps) {
  const PartitionPlan& part = plan.partitions[partition];
  const ProgramBlock& block = *plan.block;
  PolySet result;
  for (const RefSummary& r : part.refs) {
    if (r.isWrite) continue;
    const Statement& st = block.statements[r.stmt];
    // Instances of this read covered by a flow dep whose source writes the
    // same partition (hence the same local buffer).
    PolySet covered;
    for (const Dependence& d : deps) {
      if (d.kind != DepKind::Flow || d.dstStmt != r.stmt || d.dstAccess != r.access) continue;
      if (plan.partitionOf[d.srcStmt][d.srcAccess] != partition) continue;
      // Project the dependence polyhedron onto the destination instance.
      Polyhedron dst = d.poly;
      for (int k = 0; k < d.srcDim; ++k) dst = dst.eliminated(0);
      covered.push_back(dst);
    }
    if (covered.empty()) {
      result.push_back(r.dataSpace);
      continue;
    }
    // Uncovered instances = domain \ covered; their image still loads.
    PolySet uncovered{st.domain};
    for (const Polyhedron& c : covered) {
      PolySet next;
      for (const Polyhedron& u : uncovered) {
        PolySet diff = setDifference(u, c);
        next.insert(next.end(), diff.begin(), diff.end());
      }
      uncovered = std::move(next);
      if (uncovered.empty()) break;
    }
    const Access& acc = st.accesses[r.access];
    for (const Polyhedron& u : uncovered) {
      Polyhedron img = u.image(acc.fn);
      if (!img.isEmpty()) result.push_back(img);
    }
  }
  return result;
}

}  // namespace

AstPtr buildCopyCode(const DataPlan& plan, int partition, bool moveIn) {
  const PartitionPlan& part = plan.partitions[partition];
  EMM_CHECK(part.hasBuffer, "copy code requested for partition without buffer");
  const ProgramBlock& block = *plan.block;
  int ndim = block.arrays[part.arrayId].ndim();

  PolySet spaces;
  if (moveIn) {
    if (plan.options.optimizeCopySets) {
      // Dependences are recomputed here; the driver may cache them later if
      // profiling shows it matters (blocks are small).
      spaces = liveInSpaces(plan, partition, computeDependences(block));
    } else {
      spaces = part.readSpaces();
    }
  } else {
    bool dead = std::find(plan.options.deadAfterBlock.begin(), plan.options.deadAfterBlock.end(),
                          part.arrayId) != plan.options.deadAfterBlock.end();
    if (plan.options.optimizeCopySets && dead) return AstNode::block();
    spaces = part.writeSpaces();
  }
  if (spaces.empty()) return AstNode::block();

  std::vector<std::string> iterNames;
  for (int d = 0; d < ndim; ++d)
    iterNames.push_back("m" + std::to_string(partition) + "_" + std::to_string(d));

  int bufferId = 0;
  for (int q = 0; q < partition; ++q)
    if (plan.partitions[q].hasBuffer) ++bufferId;
  int localArrayId = static_cast<int>(block.arrays.size()) + bufferId;

  auto body = [&](const std::vector<std::string>& iters) {
    std::vector<AffExpr> globalIdx, localIdx;
    for (int d = 0; d < ndim; ++d) {
      globalIdx.push_back(AffExpr::var(iters[d]));
      // local index = y_d - offset_d
      AffExpr local = AffExpr::var(iters[d]);
      const AffExpr& off = part.offset[d];
      for (const auto& [name, coeff] : off.terms)
        local.terms.emplace_back(name, narrow(-static_cast<i128>(coeff)));
      local.cnst = subChecked(local.cnst, off.cnst);
      localIdx.push_back(local);
    }
    if (moveIn) return AstNode::copy(localArrayId, localIdx, part.arrayId, globalIdx);
    return AstNode::copy(part.arrayId, globalIdx, localArrayId, localIdx);
  };
  return scanUnion(spaces, iterNames, block.paramNames, body);
}

CodeUnit buildScratchpadUnit(const ProgramBlock& block, const SmemOptions& options,
                             DataPlan& planOut) {
  planOut = analyzeBlock(block, options);
  CodeUnit unit;
  unit.name = block.name + "_smem";
  unit.source = &block;

  // Local buffer table.
  for (const PartitionPlan& part : planOut.partitions) {
    if (!part.hasBuffer) continue;
    LocalBuffer buf;
    buf.name = part.bufferName;
    buf.ndim = block.arrays[part.arrayId].ndim();
    buf.offset = part.offset;
    buf.sizeExpr = part.sizeExpr;
    unit.localBuffers.push_back(std::move(buf));
  }

  // Rewritten statements.
  int numGlobals = static_cast<int>(block.arrays.size());
  for (size_t s = 0; s < block.statements.size(); ++s)
    unit.statements.push_back(
        rewriteStatement(block.statements[s], static_cast<int>(s), planOut, block, numGlobals));

  // move-in; compute; move-out.
  unit.root = AstNode::block();
  for (size_t p = 0; p < planOut.partitions.size(); ++p) {
    if (!planOut.partitions[p].hasBuffer) continue;
    unit.root->addChild(AstNode::comment("move-in " + planOut.partitions[p].bufferName));
    unit.root->addChild(buildCopyCode(planOut, static_cast<int>(p), true));
  }
  unit.root->addChild(AstNode::comment("computation"));
  unit.root->addChild(generateFromSchedules(block));
  for (size_t p = 0; p < planOut.partitions.size(); ++p) {
    if (!planOut.partitions[p].hasBuffer) continue;
    unit.root->addChild(AstNode::comment("move-out " + planOut.partitions[p].bufferName));
    unit.root->addChild(buildCopyCode(planOut, static_cast<int>(p), false));
  }
  return unit;
}

CodeUnit buildScratchpadUnit(const ProgramBlock& block, const SmemOptions& options) {
  DataPlan plan;
  return buildScratchpadUnit(block, options, plan);
}

}  // namespace emm
